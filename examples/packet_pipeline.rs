//! A user-space packet pipeline: the Maglev load balancer running over
//! the ixgbe driver in every deployment configuration of §6.5/§6.6,
//! processing real packets through the real consistent-hashing table.
//!
//! ```sh
//! cargo run --release --example packet_pipeline
//! ```

use atmosphere::apps::maglev::{MaglevTable, MAGLEV_APP_COST};
use atmosphere::drivers::deploy::{run_rx_tx_scenario, Deployment};
use atmosphere::drivers::ixgbe::{IxgbeDevice, IxgbeDriver};
use atmosphere::drivers::pkt::PktGen;
use atmosphere::drivers::DriverCosts;
use atmosphere::hw::cycles::{CostModel, CpuProfile, CycleMeter};

fn main() {
    let backends: Vec<String> = (0..8).map(|i| format!("10.0.2.{i}")).collect();
    let table = MaglevTable::new(&backends, 65537);
    println!(
        "Maglev table: {} slots over {} backends",
        table.size(),
        table.backend_count()
    );
    let counts = table.slot_counts();
    println!(
        "slot balance: min {} / max {}",
        counts.iter().min().unwrap(),
        counts.iter().max().unwrap()
    );

    // Functional check: flows stick to their backend.
    let mut gen = PktGen::new();
    let mut first = Vec::new();
    for _ in 0..1000 {
        let mut pkt = gen.next_packet();
        let backend = table.process_packet(&mut pkt).expect("UDP frame");
        first.push(backend);
    }
    println!(
        "1000 packets balanced across backends (first: {:?} ...)",
        &first[..8]
    );

    // Drive the driver directly to show the device model at work.
    let profile = CpuProfile::c220g5();
    let mut drv = IxgbeDriver::new(IxgbeDevice::new(profile.freq_hz), DriverCosts::atmosphere());
    let mut meter = CycleMeter::new();
    let mut forwarded = 0u64;
    while forwarded < 100_000 {
        let mut pkts = drv.rx_batch(&mut meter, 32);
        for p in pkts.iter_mut() {
            meter.charge(MAGLEV_APP_COST);
            let _ = table.process_packet(p);
        }
        forwarded += pkts.len() as u64;
        drv.tx_batch(&mut meter, pkts);
    }
    println!(
        "linked pipeline: {forwarded} packets at {:.2} Mpps",
        profile.throughput(forwarded, meter.now()) / 1e6
    );

    // And the three paper configurations, via the scenario runner.
    println!("\ndeployment sweep (echo workload, Figure 4 shape):");
    for deploy in [
        Deployment::Linked { batch: 32 },
        Deployment::CrossCore { batch: 32 },
        Deployment::SameCoreIpc { batch: 32 },
        Deployment::SameCoreIpc { batch: 1 },
    ] {
        let r = run_rx_tx_scenario(
            deploy,
            100_000,
            MAGLEV_APP_COST,
            &DriverCosts::atmosphere(),
            &CostModel::c220g5(),
            &profile,
        );
        println!("  {:<14} {:>6.2} Mpps", deploy.label(), r.mpps);
    }
}
