//! The Figure 1 scenario: two mutually distrusting containers A and B
//! communicate with a verified shared service V, which multiplexes them
//! without leaking resources across the boundary — even when a client
//! crashes.
//!
//! ```sh
//! cargo run --example shared_service
//! ```

use atmosphere::kernel::iso::{domain_sets, endpoint_iso, memory_iso};
use atmosphere::kernel::noninterf::setup_abv;
use atmosphere::kernel::vservice::{VService, OP_CLOSE, OP_GET, OP_PUT};
use atmosphere::kernel::SyscallArgs;
use atmosphere::spec::harness::Invariant;

fn main() {
    let (mut k, sc) = setup_abv();
    let mut v = VService::new(sc.tv, sc.cpu_v);
    println!("containers: A={:#x} B={:#x} V={:#x}", sc.a, sc.b, sc.v);

    // A maps a page and shares it with V while accumulating values.
    let _ = k.syscall(
        sc.cpu_a,
        SyscallArgs::Mmap {
            va_base: 0x40_0000,
            len: 1,
            writable: true,
        },
    );
    for val in [10u64, 20, 12] {
        let _ = k.syscall(
            sc.cpu_a,
            SyscallArgs::Send {
                slot: 0,
                scalars: [OP_PUT, val, 0, 0],
                grant_page_va: if val == 10 { Some(0x40_0000) } else { None },
                grant_endpoint_slot: None,
                grant_iommu_domain: None,
            },
        );
        v.step(&mut k);
    }

    // B uses the service too — without a shared page.
    let _ = k.syscall(
        sc.cpu_b,
        SyscallArgs::Send {
            slot: 0,
            scalars: [OP_PUT, 1000, 0, 0],
            grant_page_va: None,
            grant_endpoint_slot: None,
            grant_iommu_domain: None,
        },
    );
    v.step(&mut k);

    // Each client reads back its own sum via call/reply.
    let _ = k.syscall(
        sc.cpu_a,
        SyscallArgs::Call {
            slot: 0,
            scalars: [OP_GET, 0, 0, 0],
        },
    );
    v.step(&mut k);
    let a_sum = k.syscall(sc.cpu_a, SyscallArgs::TakeMsg).val0();
    let _ = k.syscall(
        sc.cpu_b,
        SyscallArgs::Call {
            slot: 0,
            scalars: [OP_GET, 0, 0, 0],
        },
    );
    v.step(&mut k);
    let b_sum = k.syscall(sc.cpu_b, SyscallArgs::TakeMsg).val0();
    println!("A's sum = {a_sum} (expected 42), B's sum = {b_sum} (expected 1000)");
    assert_eq!((a_sum, b_sum), (42, 1000));

    // V's functional-correctness spec holds: pages stay in per-client
    // windows, nothing crossed the boundary.
    v.spec_wf(&k).expect("V is functionally correct");
    let psi = k.view();
    let da = domain_sets(&psi, sc.a);
    let db = domain_sets(&psi, sc.b);
    assert!(memory_iso(&psi, &da.processes, &db.processes));
    assert!(endpoint_iso(&psi, &da.threads, &db.threads));
    println!("memory_iso ∧ endpoint_iso hold between A and B");

    // B closes cleanly; A crashes. V releases everything either way.
    let _ = k.syscall(
        sc.cpu_b,
        SyscallArgs::Send {
            slot: 0,
            scalars: [OP_CLOSE, 0, 0, 0],
            grant_page_va: None,
            grant_endpoint_slot: None,
            grant_iommu_domain: None,
        },
    );
    v.step(&mut k);
    let _ = k.syscall(0, SyscallArgs::TerminateContainer { cntr: sc.a });
    v.cleanup_client(&mut k, 0);
    v.spec_wf(&k)
        .expect("V released the crashed client's resources");
    k.wf().expect("the kernel is well-formed after the crash");
    println!("A crashed; V released its page — no leak (paper §3 guarantee)");
}
