//! A "verification run" over this artefact, in the spirit of invoking
//! Verus on Atmosphere: measure the repository's spec/proof/exec line
//! counts, replay the modeled verification schedule on several machines,
//! and discharge a live batch of proof obligations (audited syscalls +
//! the non-interference trial), printing a summary report.
//!
//! ```sh
//! cargo run --release --example verification_report
//! ```

use std::path::Path;

use atmosphere::kernel::noninterf::run_noninterference_trial;
use atmosphere::kernel::refine::audited_syscall;
use atmosphere::kernel::{Kernel, KernelConfig, SyscallArgs};
use atmosphere::spec::harness::Obligations;
use atmosphere::verif::loc::classify_workspace;
use atmosphere::verif::schedule::simulate_verification;
use atmosphere::verif::tasks::{system_catalog, SystemId};

fn main() {
    println!("=== Atmosphere reproduction — verification report ===\n");

    // 1. Artefact size, measured live.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let loc = classify_workspace(root);
    println!("source inventory (this checkout):");
    println!("  executable lines : {:>6}", loc.exec);
    println!("  specification    : {:>6}", loc.spec);
    println!("  proof (tests)    : {:>6}", loc.proof);
    println!("  comments/docs    : {:>6}", loc.comment);
    println!(
        "  proof-to-code    : {:>6.2}:1   (paper: 3.32:1 with SMT proofs)",
        loc.proof_to_code()
    );

    // 2. The modeled verification schedule (what Verus+Z3 would take).
    println!("\nmodeled SMT verification wall time (Atmosphere catalog):");
    let cat = system_catalog(SystemId::Atmosphere);
    for (machine, threads, speedup) in [
        ("c220g5", 1usize, 1.0f64),
        ("c220g5", 8, 1.0),
        ("laptop i9-13900HX", 32, 4.45),
    ] {
        let r = simulate_verification(&cat, threads, speedup);
        println!("  {machine:<18} {threads:>2} threads: {:>6.1} s", r.wall_s);
    }

    // 3. A live obligation batch: audited kernel transitions.
    let before = Obligations::count();
    let mut k = Kernel::boot(KernelConfig::default());
    let mut audited = 0u32;
    let calls = [
        SyscallArgs::NewContainer {
            quota: 128,
            cpus: vec![1],
        },
        SyscallArgs::Mmap {
            va_base: 0x4000_0000,
            len: 8,
            writable: true,
        },
        SyscallArgs::NewEndpoint { slot: 0 },
        SyscallArgs::Munmap {
            va_base: 0x4000_0000,
            len: 8,
        },
        SyscallArgs::Yield,
    ];
    for args in calls {
        let (_ret, audit) = audited_syscall(&mut k, 0, args);
        audit.expect("transition verified");
        audited += 1;
    }
    println!("\nlive refinement audit: {audited} transitions, all green");

    // 4. The non-interference trial (the §4.3 theorem, executed).
    run_noninterference_trial(100, 2026).expect("non-interference holds");
    println!("non-interference trial: 100 arbitrary syscalls from A/B, all green");

    println!(
        "\ntotal proof obligations discharged this run: {}",
        Obligations::count() - before
    );
    println!("verdict: VERIFIED (dynamically, per DESIGN.md's substitution)");
}
