//! Trace report: run a mixed workload — process/thread lifecycle, IPC
//! call/reply, memory mapping, scheduling — and print the merged trace
//! snapshot the kernel collected along the way: per-CPU event rings,
//! per-syscall latency histograms and the subsystem counters.
//!
//! ```sh
//! cargo run --example trace_report
//! ```

use atmosphere::kernel::{Kernel, KernelConfig, SyscallArgs};
use atmosphere::spec::harness::Invariant;

fn main() {
    let mut k = Kernel::boot(KernelConfig::default());

    // A service container on CPU 1 with its own process and thread.
    let child = k
        .syscall(
            0,
            SyscallArgs::NewContainer {
                quota: 256,
                cpus: vec![1],
            },
        )
        .val0() as usize;
    let p = k.syscall(0, SyscallArgs::NewProcess { cntr: child }).val0() as usize;
    let _ = k.syscall(0, SyscallArgs::NewThread { proc: p, cpu: 1 });
    k.pm.timer_tick(1);

    // Memory traffic on both CPUs: map, touch, unmap.
    for (cpu, rounds) in [(0usize, 12usize), (1, 8)] {
        for r in 0..rounds {
            let base = 0x4000_0000 + r * 0x8000;
            let _ = k.syscall(
                cpu,
                SyscallArgs::Mmap {
                    va_base: base,
                    len: 4,
                    writable: true,
                },
            );
            if r % 2 == 0 {
                let _ = k.syscall(
                    cpu,
                    SyscallArgs::Munmap {
                        va_base: base,
                        len: 4,
                    },
                );
            }
        }
    }

    // IPC: a second init thread parks in recv; the first calls it.
    let t2 = k
        .syscall(
            0,
            SyscallArgs::NewThread {
                proc: k.init_proc,
                cpu: 0,
            },
        )
        .val0() as usize;
    let e = k.syscall(0, SyscallArgs::NewEndpoint { slot: 0 }).val0() as usize;
    k.pm.install_descriptor(t2, 0, e).unwrap();
    k.pm.timer_tick(0);
    let _ = k.syscall(0, SyscallArgs::Recv { slot: 0 });
    for i in 0..10u64 {
        let _ = k.syscall(
            0,
            SyscallArgs::Call {
                slot: 0,
                scalars: [i, 0, 0, 0],
            },
        );
        let _ = k.syscall(
            0,
            SyscallArgs::Reply {
                scalars: [i * 2, 0, 0, 0],
            },
        );
        let _ = k.syscall(0, SyscallArgs::TakeMsg);
        k.pm.timer_tick(0);
        let _ = k.syscall(0, SyscallArgs::Recv { slot: 0 });
    }

    // A 512-page run in a fresh 2 MiB region: the batched datapath
    // promotes it to one superpage; the partial unmap demotes it back.
    let _ = k.syscall(
        0,
        SyscallArgs::Mmap {
            va_base: 0x6000_0000,
            len: 512,
            writable: true,
        },
    );
    let _ = k.syscall(
        0,
        SyscallArgs::Munmap {
            va_base: 0x6000_5000,
            len: 1,
        },
    );

    // Scheduling churn, and a couple of deliberate failures so the error
    // column of the report is populated.
    for _ in 0..6 {
        let _ = k.syscall(0, SyscallArgs::Yield);
    }
    let _ = k.syscall(
        0,
        SyscallArgs::Munmap {
            va_base: 0x7000_0000,
            len: 1,
        },
    );
    let _ = k.syscall(0, SyscallArgs::NewEndpoint { slot: 0 });

    // The snapshot is also reachable from userspace via the read-only
    // `TraceSnapshot` syscall; here we read it host-side.
    let vals = k
        .syscall(0, SyscallArgs::TraceSnapshot)
        .result
        .expect("trace_snapshot is infallible");
    println!(
        "trace_snapshot syscall: {} syscalls completed, {} events, {} dropped, {} CPUs\n",
        vals[0], vals[1], vals[2], vals[3],
    );
    print!("{}", k.take_trace_snapshot().expect("stashed").render());

    // IPC fastpath telemetry: direct handoffs vs rendezvous fallbacks,
    // broken down by miss reason, plus the descriptor-slot cache.
    let fp = k.trace_snapshot().counters.pm.fastpath;
    println!("\n== IPC fastpath ==");
    println!("direct handoffs (hits)   {}", fp.hits);
    println!(
        "fallbacks                {} (wrong-side {}, queue-full {}, cross-cpu {}, cap-transfer {}, budget {})",
        fp.fallbacks(),
        fp.fallback_wrong_side,
        fp.fallback_queue_full,
        fp.fallback_cross_cpu,
        fp.fallback_cap_transfer,
        fp.fallback_budget,
    );
    println!(
        "slot cache               {} hits, {} misses",
        fp.slot_cache_hits, fp.slot_cache_misses
    );

    // Batched VM datapath telemetry: walk-cache amortization, superpage
    // promotion/demotion, and the deferred-shootdown ledger (trace_wf
    // enforces flushed <= deferred).
    let vm = k.trace_snapshot().counters.vm;
    println!("\n== Batched VM datapath ==");
    println!("walk-cache fills (batch hits)  {}", vm.map_batch_hits);
    println!(
        "superpages               {} promoted, {} demoted",
        vm.superpage_promotions, vm.superpage_demotions
    );
    println!(
        "TLB shootdowns           {} deferred, {} flushed in batches",
        vm.tlb_shootdowns_deferred, vm.tlb_shootdowns_flushed
    );
    assert!(vm.superpage_promotions >= 1, "512-page run promoted");
    assert!(vm.tlb_shootdowns_flushed <= vm.tlb_shootdowns_deferred);

    // Zero-copy network datapath telemetry: a short RX → app → TX pass
    // over a traced pool, then the counters plus the in-flight gauge
    // (trace_wf enforces acquired == released + in_flight).
    {
        use atmosphere::drivers::{DriverCosts, IxgbeDevice, IxgbeDriver, PktPool};
        use atmosphere::hw::cycles::CycleMeter;
        let sink = k.trace.clone();
        let mut drv = IxgbeDriver::new(IxgbeDevice::new(2_200_000_000), DriverCosts::atmosphere());
        drv.attach_trace(sink.clone());
        let mut pool = PktPool::anonymous(8);
        pool.attach_trace(sink);
        let mut meter = CycleMeter::new();
        let mut bufs = Vec::with_capacity(32);
        for _ in 0..4 {
            drv.rx_batch_zc(&mut meter, &mut pool, &mut bufs, 32);
            drv.tx_batch_zc(&mut meter, &mut pool, &mut bufs);
        }
        // One deliberate exhaustion and one counted fallback copy.
        let held: Vec<_> = (0..8).filter_map(|_| pool.try_acquire()).collect();
        assert!(pool.try_acquire().is_none(), "exhaustion is backpressure");
        let mut held = held;
        let last = held.pop().expect("held handles");
        let _pkt = pool.copy_out(last);
        for b in held {
            pool.release(b);
        }
    }
    let snap = k.trace_snapshot();
    let net = snap.counters.net;
    println!("\n== Zero-copy network datapath ==");
    println!(
        "pool ledger              {} acquired, {} released, {} in flight (gauge)",
        net.pool_acquired, net.pool_released, snap.net_in_flight
    );
    println!(
        "zc batches               rx {} ({} frames), tx {} ({} frames)",
        net.rx_zc_batches, net.rx_zc_frames, net.tx_zc_batches, net.tx_zc_frames
    );
    println!(
        "exhaustion / fallbacks   {} exhausted acquires, {} fallback copies",
        net.pool_exhausted, net.fallback_copies
    );
    assert_eq!(
        net.pool_acquired,
        net.pool_released + snap.net_in_flight as u64,
        "pool ledger balances"
    );
    assert!(net.pool_exhausted >= 1 && net.fallback_copies == 1);

    // Verified block datapath telemetry: a short zero-copy batched
    // submit/reap pass over a traced buffer pool and NVMe queue pair,
    // then the blk counters plus the in-flight gauge (trace_wf enforces
    // acquired == released + in_flight and reap_ios <= submit_ios).
    {
        use atmosphere::drivers::nvme::{IoKind, NvmeDevice, NvmeSpec, NvmeZcQueue};
        use atmosphere::drivers::{BlkPool, DriverCosts};
        use atmosphere::hw::cycles::CycleMeter;
        let sink = k.trace.clone();
        let mut q = NvmeZcQueue::new(
            NvmeDevice::new(NvmeSpec::p3700(2_200_000_000)),
            DriverCosts::atmosphere(),
        );
        q.attach_trace(sink.clone());
        let mut pool = BlkPool::anonymous(8);
        pool.attach_trace(sink);
        let mut meter = CycleMeter::new();
        let mut done = Vec::with_capacity(8);
        for _ in 0..4 {
            let bufs: Vec<_> = (0..8).filter_map(|_| pool.try_acquire()).collect();
            q.submit_batch_zc(&mut meter, IoKind::Write, bufs);
            while q.queue_depth() > 0 {
                q.wait_reap_zc(&mut meter, &mut done);
            }
            for b in done.drain(..) {
                pool.release(b);
            }
        }
    }
    let snap = k.trace_snapshot();
    let blk = snap.counters.blk;
    println!("\n== Verified block datapath ==");
    println!(
        "pool ledger              {} acquired, {} released, {} in flight (gauge)",
        blk.pool_acquired, blk.pool_released, snap.blk_in_flight
    );
    println!(
        "batched rings            {} submit batches ({} I/Os), {} reap batches ({} I/Os)",
        blk.submit_batches, blk.submit_ios, blk.reap_batches, blk.reap_ios
    );
    println!(
        "wakeups / fallbacks      {} reaper wakeups, {} fallback copies",
        blk.wakeups, blk.fallback_copies
    );
    assert_eq!(
        blk.pool_acquired,
        blk.pool_released + snap.blk_in_flight as u64,
        "blk pool ledger balances"
    );
    assert_eq!(blk.submit_ios, 32);
    assert_eq!(blk.reap_ios, 32, "every submitted I/O reaped");

    assert!(k.wf().is_ok(), "{:?}", k.wf());
    println!("\ntotal_wf (including trace_wf) holds over the final state.");

    // The same trace sink instruments the sharded kernel's lock
    // domains. The unified kernel above takes no domain locks, so its
    // lock table stays zero; drive a two-CPU sharded kernel and the
    // per-domain acquisition counters fill in.
    let smp = atmosphere::kernel::SmpKernel::new(Kernel::boot(KernelConfig {
        mem_mib: 32,
        ncpus: 2,
        root_quota: 512,
    }));
    let c = smp
        .syscall(
            0,
            SyscallArgs::NewContainer {
                quota: 64,
                cpus: vec![1],
            },
        )
        .val0() as usize;
    let p = smp.syscall(0, SyscallArgs::NewProcess { cntr: c }).val0() as usize;
    let _ = smp.syscall(0, SyscallArgs::NewThread { proc: p, cpu: 1 });
    smp.with_kernel(|k| k.pm.timer_tick(1));
    for r in 0..8usize {
        let base = 0x5000_0000 + r * 0x4000;
        let _ = smp.syscall(
            0,
            SyscallArgs::Mmap {
                va_base: base,
                len: 2,
                writable: true,
            },
        );
        let _ = smp.syscall(1, SyscallArgs::Yield);
        let _ = smp.syscall(
            0,
            SyscallArgs::Munmap {
                va_base: base,
                len: 2,
            },
        );
    }

    println!("\n== Sharded kernel: lock-domain instrumentation ==");
    let locks = smp.trace_snapshot().counters.locks;
    for (name, l) in [
        ("pm", &locks.pm),
        ("mem", &locks.mem),
        ("trace", &locks.trace),
    ] {
        println!(
            "{name:<5} {} acquisitions, {} contended, max hold {} cycles",
            l.acquisitions, l.contended, l.hold_max_cycles
        );
    }
    let audit = smp.audit_total_wf();
    assert!(audit.is_ok(), "{audit:?}");
    println!("total_wf audit (stop-the-world, caches drained) holds on the sharded kernel.");

    // Incremental auditing: switch the sharded kernel's trace sink to
    // delta recording, churn some state, and fold only the touched
    // ledger entries — no domain lock, no cache drain. The audit.*
    // counters below separate the O(touched) folds from the flat
    // rescans they are cross-checked against.
    smp.enable_incremental_audit();
    for r in 0..8usize {
        let base = 0x6000_0000 + r * 0x2000;
        let _ = smp.syscall(
            0,
            SyscallArgs::Mmap {
                va_base: base,
                len: 1,
                writable: true,
            },
        );
        let audit = smp.audit_incremental();
        assert!(audit.is_ok(), "{audit:?}");
    }
    let audit = smp.audit_total_wf();
    assert!(audit.is_ok(), "{audit:?}");

    println!("\n== Incremental wf audits ==");
    let snap = smp.trace_snapshot();
    let a = &snap.counters.audit;
    println!(
        "audit.incremental        {} ledger folds ({} entries folded)",
        a.incremental, a.touched_entries
    );
    println!(
        "audit.full               {} stop-the-world rescans (each cross-checks the ledger)",
        a.full
    );
    println!(
        "audit latency            incremental p50 {}ns, full p50 {}ns",
        snap.audit_incremental_hist.p50(),
        snap.audit_full_hist.p50()
    );
    assert!(
        a.incremental >= a.full,
        "every full audit folds the pending ledger first"
    );
    println!("incremental ledger folds agree with the flat rescan bit-for-bit.");

    // Node replication: per-CPU replicas over a flat-combining op log.
    // The reads below route through CPU-local replicas — no pm/mem
    // lock, no domain model clock — while the writes in between append
    // to the op logs for the readers to replay. The epoch audit then
    // checks replica linearization, the bit-for-bit replica-vs-locked
    // cross-check and the NrAppended ledger balance.
    smp.enable_nr();
    let _ = smp.syscall(0, SyscallArgs::NewEndpoint { slot: 0 });
    for r in 0..6usize {
        let _ = smp.syscall(0, SyscallArgs::Getpid);
        let _ = smp.syscall(0, SyscallArgs::DescriptorResolve { slot: 0 });
        let _ = smp.syscall(
            0,
            SyscallArgs::VmResolve {
                va: 0x6000_0000 + r * 0x2000,
            },
        );
        let _ = smp.syscall(1, SyscallArgs::Getpid);
        let _ = smp.syscall(
            0,
            SyscallArgs::Mmap {
                va_base: 0x7000_0000 + r * 0x1000,
                len: 1,
                writable: false,
            },
        );
    }
    let audit = smp.audit_total_wf();
    assert!(audit.is_ok(), "{audit:?}");

    println!("\n== Node-replicated read path ==");
    let snap = smp.trace_snapshot();
    let nr = snap.counters.nr;
    println!(
        "nr.read_local            {} reads served from per-CPU replicas",
        nr.read_local
    );
    println!(
        "nr.fallback_locked       {} reads via the locked fallback (replication off)",
        nr.fallback_locked
    );
    println!(
        "nr.appended              {} ops appended in {} combiner batches",
        nr.appended, nr.combine_batches
    );
    println!(
        "nr.replayed              {} ops replayed onto replicas",
        nr.replayed
    );
    println!(
        "lock.wait_cycles         pm {} waits (max {}cy), mem {} waits (max {}cy)",
        snap.lock_wait_pm_hist.count(),
        snap.lock_wait_pm_hist.max(),
        snap.lock_wait_mem_hist.count(),
        snap.lock_wait_mem_hist.max(),
    );
    assert!(nr.read_local >= 24, "the reads above are replica-served");
    assert_eq!(nr.fallback_locked, 0, "replication stayed on");
    assert!(nr.combine_batches <= nr.appended, "trace_wf's nr bound");
    println!(
        "replica linearization, the bit-for-bit epoch cross-check and the \
         NrAppended ledger balance hold."
    );

    // Event-driven httpd: a small shard attached to the same sink —
    // accepts, serves, one slowloris reap — then the httpd.* counters,
    // the ready-batch histogram and the conns_live gauge (trace_wf
    // enforces the monotone bounds: closes <= accepts, conns_live ==
    // accepts - closes).
    {
        use atmosphere::apps::event::{HTTP_PAYLOAD_OFFSET, TICK_SHIFT};
        use atmosphere::apps::{ConnTable, EventCoreConfig, EventHttpd};
        use atmosphere::drivers::{
            queue_for_seq, write_udp64, DriverCosts, IxgbeDevice, IxgbeDriver, PktPool,
        };
        use atmosphere::hw::cycles::CycleMeter;
        let cfg = EventCoreConfig::new(0, 2);
        let header_ticks = cfg.header_ticks;
        let mut ev = EventHttpd::new(cfg, ConnTable::anonymous(64, 0, 2));
        ev.attach_trace(smp.trace().clone());
        ev.add_page("/index.html", b"traced event core");
        let mut drv = IxgbeDriver::new(
            IxgbeDevice::steered(2_200_000_000, 2, 0),
            DriverCosts::atmosphere(),
        );
        let mut pool = PktPool::anonymous(16);
        let mut meter = CycleMeter::new();
        let flows: Vec<u64> = (0..)
            .filter(|&r| queue_for_seq(r, 2) == 0)
            .take(9)
            .collect();
        let send =
            |ev: &mut EventHttpd, meter: &mut CycleMeter, pool: &mut PktPool, flow, http: &[u8]| {
                let mut buf = pool.try_acquire().expect("pool has slots");
                let frame = pool.slot_mut(&buf);
                write_udp64(frame, flow);
                frame[HTTP_PAYLOAD_OFFSET..HTTP_PAYLOAD_OFFSET + http.len()].copy_from_slice(http);
                buf.set_len(HTTP_PAYLOAD_OFFSET + http.len());
                let mut bufs = vec![buf];
                ev.ingest(meter, pool, &mut bufs);
            };
        for &flow in &flows[..8] {
            send(
                &mut ev,
                &mut meter,
                &mut pool,
                flow,
                b"GET /index.html HTTP/1.1\r\nHost: r\r\n\r\n",
            );
        }
        while ev.served() < 8 {
            ev.tick(&mut meter, &mut drv, &mut pool);
        }
        // One trickled header dies to the read-header timer.
        send(&mut ev, &mut meter, &mut pool, flows[8], b"GET /index.ht");
        meter.charge((header_ticks + 2) << TICK_SHIFT);
        ev.tick(&mut meter, &mut drv, &mut pool);
        assert_eq!(ev.live(), 8, "slowloris reaped, keep-alive conns kept");

        println!("\n== Event-driven httpd ==");
        let snap = smp.trace_snapshot();
        let h = snap.counters.httpd;
        println!(
            "conns                    {} accepts, {} closes, {} live (gauge)",
            h.accepts, h.closes, snap.httpd_conns_live
        );
        println!(
            "requests                 {} served, timeouts {} keepalive / {} header / {} drain",
            h.served, h.timeouts_keepalive, h.timeouts_header, h.timeouts_drain
        );
        println!(
            "event loop               {} ready batches (p50 {}, max {}), {} wheel cascades, \
             {} parked / {} unparked",
            snap.httpd_ready_hist.count(),
            snap.httpd_ready_hist.p50(),
            snap.httpd_ready_hist.max(),
            h.wheel_cascades,
            h.parked,
            h.unparked,
        );
        assert_eq!(h.accepts, 9);
        assert_eq!(h.served, 8);
        assert!(h.timeouts_header >= 1, "slowloris reap recorded");
        assert!(h.closes <= h.accepts, "trace_wf monotone bound");
        assert_eq!(
            snap.httpd_conns_live,
            (h.accepts - h.closes) as i64,
            "conns_live gauge balances"
        );
        println!("the httpd ledger (closes <= accepts, live == accepts - closes) balances.");
    }

    // Multi-tenant scheduler telemetry: two weighted tenants contend
    // for the root-owned CPUs through the bitmap-indexed MLFQ (tenants
    // own zero CPUs; the ancestor rule shares the root's). Timer ticks
    // generate O(1) picks (histogrammed wall-clock), periodic refills,
    // and — since the light tenant's weight is far under the tick rate
    // — budget-exhaustion throttles; an administrative throttle
    // round-trip exercises the park/unpark path explicitly.
    {
        let mut mt = Kernel::boot(KernelConfig {
            mem_mib: 32,
            ncpus: 2,
            root_quota: 1024,
        });
        let mut cntrs = [0usize; 2];
        for (i, slot) in cntrs.iter_mut().enumerate() {
            let c = mt
                .syscall(
                    0,
                    SyscallArgs::NewContainer {
                        quota: 64,
                        cpus: vec![],
                    },
                )
                .val0() as usize;
            let p = mt.syscall(0, SyscallArgs::NewProcess { cntr: c }).val0() as usize;
            for cpu in 0..2 {
                let r = mt.syscall(0, SyscallArgs::NewThread { proc: p, cpu });
                assert!(r.is_ok(), "{r:?}");
            }
            let weight = 1 + 2 * i as u32; // 1 : 3
            let r = mt.syscall(0, SyscallArgs::SchedSetWeight { cntr: c, weight });
            assert!(r.is_ok(), "{r:?}");
            *slot = c;
        }
        for _ in 0..96 {
            mt.pm.timer_tick(0);
            mt.pm.timer_tick(1);
        }
        let r = mt.syscall(
            0,
            SyscallArgs::SchedThrottle {
                cntr: cntrs[1],
                throttle: true,
            },
        );
        assert!(r.is_ok(), "{r:?}");
        let r = mt.syscall(
            0,
            SyscallArgs::SchedThrottle {
                cntr: cntrs[1],
                throttle: false,
            },
        );
        assert!(r.is_ok(), "{r:?}");
        mt.pm.timer_tick(0);

        println!("\n== Multi-tenant scheduler ==");
        let snap = mt.trace_snapshot();
        let s = snap.counters.sched;
        println!(
            "run queues               {} O(1) picks (p50 {} cycles, max {}), {} enqueues, {} removes",
            s.picks,
            snap.sched_pick_hist.p50(),
            snap.sched_pick_hist.max(),
            s.enqueues,
            s.removes,
        );
        println!(
            "budgets                  {} refills, {} throttles / {} unthrottles, {} parked / {} unparked",
            s.refills, s.throttles, s.unthrottles, s.parked, s.unparked
        );
        println!(
            "inheritance / MLFQ       {} inherited handoffs, {} demotions",
            s.inherited_handoffs, s.demotions
        );
        let (granted, consumed, refunded, remaining) = mt.pm.sched.budget_totals();
        println!(
            "budget ledger            granted {granted} = consumed {consumed} \
             + refunded {refunded} + remaining {remaining}"
        );
        assert_eq!(granted, consumed + refunded + remaining, "ledger balances");
        assert!(s.picks > 0 && s.refills > 0, "contention generated picks");
        assert!(
            s.throttles >= 1 && s.unthrottles >= 1,
            "throttle round trips recorded"
        );
        assert_eq!(snap.sched_pick_hist.count(), s.picks, "trace_wf's balance");
        assert!(mt.wf().is_ok(), "{:?}", mt.wf());
        println!(
            "the budget-conservation ledger (granted = consumed + refunded + remaining) balances."
        );
    }
}
