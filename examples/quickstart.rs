//! Quickstart: boot the kernel, build a small system, exercise the
//! syscall interface, and watch the verification harness at work.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use atmosphere::kernel::refine::audited_syscall;
use atmosphere::kernel::{Kernel, KernelConfig, SyscallArgs};
use atmosphere::spec::harness::{Invariant, Obligations};

fn main() {
    // Boot a 4-CPU machine with 64 MiB of RAM; the root container gets a
    // 2048-page quota.
    let mut k = Kernel::boot(KernelConfig::default());
    println!(
        "booted: root container {:#x}, init thread {:#x}",
        k.root_container, k.init_thread
    );

    // Every syscall below runs under audit: the harness checks
    // `total_wf(Ψ')` and the transition specification afterwards.
    let (ret, audit) = audited_syscall(
        &mut k,
        0,
        SyscallArgs::NewContainer {
            quota: 256,
            cpus: vec![1],
        },
    );
    audit.expect("new_container refines its spec");
    let child = ret.val0() as usize;
    println!("created container {child:#x} with 256-page quota and CPU 1");

    let (ret, audit) = audited_syscall(&mut k, 0, SyscallArgs::NewProcess { cntr: child });
    audit.expect("new_process refines its spec");
    let proc = ret.val0() as usize;

    let (ret, audit) = audited_syscall(&mut k, 0, SyscallArgs::NewThread { proc, cpu: 1 });
    audit.expect("new_thread refines its spec");
    println!("process {proc:#x} with thread {:#x} on CPU 1", ret.val0());

    // The new thread maps memory in its own address space.
    k.pm.timer_tick(1);
    let (ret, audit) = audited_syscall(
        &mut k,
        1,
        SyscallArgs::Mmap {
            va_base: 0x4000_0000,
            len: 8,
            writable: true,
        },
    );
    audit.expect("mmap refines syscall_mmap_spec (Listing 1)");
    println!("mmapped 8 pages at {:#x}", ret.val0());

    // Quota is enforced: asking for more than the container's reservation
    // fails and — per the specs — changes nothing.
    let (ret, audit) = audited_syscall(
        &mut k,
        1,
        SyscallArgs::Mmap {
            va_base: 0x5000_0000,
            len: 10_000,
            writable: true,
        },
    );
    audit.expect("failed mmap is a no-op");
    println!("over-quota mmap rejected: {:?}", ret.result.unwrap_err());

    // Tear the container down; its pages and CPU return to the root.
    let (_ret, audit) = audited_syscall(&mut k, 0, SyscallArgs::TerminateContainer { cntr: child });
    audit.expect("terminate_container refines its spec");
    println!("container terminated; resources harvested");

    k.wf().expect("total_wf holds at the end");
    println!(
        "\nall transitions verified — {} proof obligations discharged",
        Obligations::count()
    );
}
