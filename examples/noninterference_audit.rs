//! The executable non-interference theorem (§4.3): fire hundreds of
//! arbitrary system calls (including garbage arguments) from the isolated
//! containers A and B and check, after every single step, that the other
//! domain's observable state is untouched and both isolation invariants
//! hold — plus the output-consistency replay check.
//!
//! ```sh
//! cargo run --release --example noninterference_audit [steps] [seeds]
//! ```

use atmosphere::kernel::noninterf::{check_output_consistency, run_noninterference_trial};
use atmosphere::spec::harness::Obligations;

fn main() {
    let mut args = std::env::args().skip(1);
    let steps: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(200);
    let seeds: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(5);

    println!("step consistency + isolation preservation ({steps} arbitrary syscalls per seed):");
    for seed in 1..=seeds {
        run_noninterference_trial(steps, seed)
            .unwrap_or_else(|e| panic!("non-interference violated (seed {seed}): {e}"));
        println!("  seed {seed}: OK");
    }

    println!("output consistency (deterministic replay):");
    for seed in 1..=seeds {
        check_output_consistency(steps, seed)
            .unwrap_or_else(|e| panic!("output consistency violated (seed {seed}): {e}"));
        println!("  seed {seed}: OK");
    }

    println!(
        "\nunwinding conditions hold — {} proof obligations discharged",
        Obligations::count()
    );
    println!("(local respect coincides with step consistency in this configuration, §4.3)");
}
