//! Fault injection: deliberately corrupt kernel state and verify that
//! `total_wf` *detects* each corruption class. A verification harness is
//! only as good as its checkers; these tests establish that every
//! invariant family actually refutes the states it is supposed to rule
//! out (the dynamic counterpart of proving the invariants are not
//! vacuous).

use atmosphere::kernel::{Kernel, KernelConfig, SyscallArgs};
use atmosphere::pm::{Container, Thread};
use atmosphere::spec::harness::Invariant;
use atmosphere::spec::PPtr;

fn populated_kernel() -> Kernel {
    let mut k = Kernel::boot(KernelConfig::default());
    let c = k
        .syscall(
            0,
            SyscallArgs::NewContainer {
                quota: 128,
                cpus: vec![1],
            },
        )
        .val0() as usize;
    let p = k.syscall(0, SyscallArgs::NewProcess { cntr: c }).val0() as usize;
    let _ = k.syscall(0, SyscallArgs::NewThread { proc: p, cpu: 1 });
    let _ = k.syscall(0, SyscallArgs::NewEndpoint { slot: 0 });
    let _ = k.syscall(
        0,
        SyscallArgs::Mmap {
            va_base: 0x4000_0000,
            len: 4,
            writable: true,
        },
    );
    assert!(k.wf().is_ok(), "baseline must be healthy: {:?}", k.wf());
    k
}

fn root_container_mut(k: &mut Kernel) -> &mut Container {
    let root = k.root_container;
    PPtr::<Container>::from_usize(root).borrow_mut(k.pm.cntr_perms.tracked_borrow_mut(root))
}

#[test]
fn detects_quota_over_commitment() {
    let mut k = populated_kernel();
    root_container_mut(&mut k).used = 1 << 30;
    let e = k.wf().unwrap_err();
    assert_eq!(e.subsystem, "container_quota");
}

#[test]
fn detects_subtree_ghost_corruption() {
    let mut k = populated_kernel();
    let fake = 0xdead_b000;
    let c = root_container_mut(&mut k);
    c.subtree.assign(c.subtree.insert(fake));
    let e = k.wf().unwrap_err();
    assert_eq!(e.subsystem, "container_tree");
}

#[test]
fn detects_path_ghost_corruption() {
    let mut k = populated_kernel();
    // Corrupt a child container's path.
    let child = *k
        .pm
        .cntr(k.root_container)
        .children
        .to_vec()
        .first()
        .unwrap();
    let perm = k.pm.cntr_perms.tracked_borrow_mut(child);
    let c = PPtr::<Container>::from_usize(child).borrow_mut(perm);
    c.path.assign(atmosphere::spec::Seq::from_slice(&[0x1234]));
    let e = k.wf().unwrap_err();
    assert_eq!(e.subsystem, "container_tree");
}

#[test]
fn detects_stale_thread_container_cache() {
    let mut k = populated_kernel();
    let t = k.init_thread;
    let perm = k.pm.thrd_perms.tracked_borrow_mut(t);
    PPtr::<Thread>::from_usize(t).borrow_mut(perm).owning_cntr = 0x9999;
    let e = k.wf().unwrap_err();
    assert_eq!(e.subsystem, "threads");
}

#[test]
fn detects_endpoint_refcount_drift() {
    let mut k = populated_kernel();
    let e_ptr = *k
        .pm
        .thrd(k.init_thread)
        .edpt_descriptors
        .iter()
        .flatten()
        .next()
        .unwrap();
    let perm = k.pm.edpt_perms.tracked_borrow_mut(e_ptr);
    PPtr::<atmosphere::pm::Endpoint>::from_usize(e_ptr)
        .borrow_mut(perm)
        .refcount = 99;
    let e = k.wf().unwrap_err();
    assert_eq!(e.subsystem, "endpoints");
}

#[test]
fn detects_scheduler_ghost_thread() {
    let mut k = populated_kernel();
    k.pm.sched.enqueue(0, 0xdead_b000);
    let e = k.wf().unwrap_err();
    assert_eq!(e.subsystem, "scheduler");
}

#[test]
fn detects_page_table_refinement_break() {
    // Corrupt the ghost abstract mapping so it disagrees with the MMU.
    let mut k = populated_kernel();
    let as_id = k.pm.proc(k.init_proc).addr_space;
    let pt = k.mem.vm.table_mut(as_id).unwrap();
    let wrong = pt.map_4k.insert(
        0x7777_7000,
        atmosphere::ptable::MapEntry {
            frame: 0x1000,
            flags: atmosphere::hw::paging::EntryFlags::user_rw(),
        },
    );
    pt.map_4k.assign(wrong);
    let e = k.wf().unwrap_err();
    assert_eq!(e.subsystem, "pt_refinement");
}

#[test]
fn detects_leaked_mapped_frame() {
    // A frame marked mapped in the allocator but referenced by no address
    // space is a leak; the kernel-wide equation must flag it.
    let mut k = populated_kernel();
    let _orphan = k
        .mem
        .alloc
        .alloc_mapped(atmosphere::mem::PageSize::Size4K)
        .unwrap();
    let e = k.wf().unwrap_err();
    assert_eq!(e.subsystem, "kernel_memory");
}

#[test]
fn detects_closure_partition_break() {
    // Allocate a kernel page owned by no subsystem: the closure-partition
    // equation (closures == allocated) must fail.
    let mut k = populated_kernel();
    let (_p, perm) = k.mem.alloc.alloc_page_4k().unwrap();
    Box::leak(Box::new(perm)); // deliberately leak the permission
    let e = k.wf().unwrap_err();
    assert_eq!(e.subsystem, "kernel_memory");
}

#[test]
fn detects_ghost_owned_thread_drift() {
    let mut k = populated_kernel();
    let c = root_container_mut(&mut k);
    c.owned_thrds.assign(c.owned_thrds.insert(0xdead_b000));
    let e = k.wf().unwrap_err();
    assert_eq!(e.subsystem, "threads");
}
