//! Steady-state allocation discipline: once warmed up, the event-driven
//! httpd loop — ingest, parse, serve, TX flush, timers — performs zero
//! heap allocations. All buffers (ready ring, TX queue, RX scratch,
//! parked queue, expiry scratch, wheel slab) are preallocated and
//! recycled; responses serialize straight into pool slots.
//!
//! Lives in its own test binary so the counting global allocator does
//! not see other tests' traffic.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use atmosphere::apps::event::HTTP_PAYLOAD_OFFSET;
use atmosphere::apps::{ConnTable, EventCoreConfig, EventHttpd};
use atmosphere::drivers::{
    queue_for_seq, write_udp64, DriverCosts, IxgbeDevice, IxgbeDriver, PktBuf, PktPool,
};
use atmosphere::hw::cycles::CycleMeter;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

const FREQ: u64 = 2_200_000_000;
const NQ: usize = 4;

/// The first `n` flows that RSS-steer to queue 0, precomputed so the
/// measured loop below never touches the heap for flow enumeration.
fn flows(n: usize) -> Vec<u64> {
    (0..)
        .filter(|&r| queue_for_seq(r, NQ) == 0)
        .take(n)
        .collect()
}

/// One request/response round for `flow`, reusing `bufs` as the ingest
/// scratch vector so the round itself allocates nothing.
fn round(
    ev: &mut EventHttpd,
    drv: &mut IxgbeDriver,
    pool: &mut PktPool,
    meter: &mut CycleMeter,
    bufs: &mut Vec<PktBuf>,
    flow: u64,
    req: &[u8],
) {
    let mut buf = pool.try_acquire().expect("pool has slots");
    let frame = pool.slot_mut(&buf);
    write_udp64(frame, flow);
    frame[HTTP_PAYLOAD_OFFSET..HTTP_PAYLOAD_OFFSET + req.len()].copy_from_slice(req);
    buf.set_len(HTTP_PAYLOAD_OFFSET + req.len());
    bufs.push(buf);
    ev.ingest(meter, pool, bufs);
    let served = ev.served();
    while ev.served() == served {
        ev.tick(meter, drv, pool);
    }
}

#[test]
fn steady_state_event_loop_allocates_nothing() {
    let table = ConnTable::anonymous(256, 0, NQ);
    let mut ev = EventHttpd::new(EventCoreConfig::new(0, NQ), table);
    ev.add_page("/index.html", &vec![b'x'; 2048]);
    ev.add_page("/big", &vec![b'y'; 9 * 1024]);
    let mut drv = IxgbeDriver::new(IxgbeDevice::steered(FREQ, NQ, 0), DriverCosts::atmosphere());
    let mut pool = PktPool::anonymous(64);
    let mut meter = CycleMeter::new();
    let mut bufs: Vec<PktBuf> = Vec::with_capacity(8);
    let req_small = b"GET /index.html HTTP/1.1\r\nHost: a\r\n\r\n";
    let req_big = b"GET /big HTTP/1.1\r\nHost: a\r\n\r\n";
    let flows = flows(32);

    // Warm-up: open every flow the measured loop will touch and drive
    // both response sizes through, so every internal Vec has grown to
    // its steady-state capacity.
    for &flow in &flows {
        round(
            &mut ev, &mut drv, &mut pool, &mut meter, &mut bufs, flow, req_small,
        );
        round(
            &mut ev, &mut drv, &mut pool, &mut meter, &mut bufs, flow, req_big,
        );
    }
    assert_eq!(ev.live(), 32);

    // Measured steady state: the same shapes, zero allocations.
    let before = ALLOCS.load(Ordering::Relaxed);
    for rep in 0..16 {
        for (i, &flow) in flows.iter().enumerate() {
            let req: &[u8] = if (rep + i) % 3 == 0 {
                req_big
            } else {
                req_small
            };
            round(
                &mut ev, &mut drv, &mut pool, &mut meter, &mut bufs, flow, req,
            );
        }
    }
    let after = ALLOCS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "steady-state event loop must not allocate"
    );
    assert_eq!(ev.served(), 64 + 16 * 32);
    assert_eq!(pool.in_flight(), 0);
}
