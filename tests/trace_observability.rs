//! End-to-end tests of the trace subsystem: the `TraceSnapshot` syscall
//! returns per-kind counts that exactly match the syscalls issued, the
//! latency histograms cover every completed call, and the subsystem
//! counters reconcile with the instrumented hot paths — all on one CPU
//! so the expected numbers are fully deterministic.

use atmosphere::kernel::{Kernel, KernelConfig, SyscallArgs, SyscallReturn};
use atmosphere::spec::harness::Invariant;
use atmosphere::trace::event::NUM_SYSCALL_KINDS;
use atmosphere::trace::SyscallKind;

/// Issues `args` and tallies the observed (exit, ok, err) per kind, the
/// ground truth the snapshot must reproduce.
fn issue(
    k: &mut Kernel,
    tally: &mut [(u64, u64, u64); NUM_SYSCALL_KINDS],
    args: SyscallArgs,
) -> SyscallReturn {
    let idx = args.trace_kind().index();
    let ret = k.syscall(0, args);
    tally[idx].0 += 1;
    if ret.is_ok() {
        tally[idx].1 += 1;
    } else {
        tally[idx].2 += 1;
    }
    ret
}

#[test]
fn snapshot_counts_match_issued_syscalls_exactly() {
    let mut k = Kernel::boot(KernelConfig {
        mem_mib: 32,
        ncpus: 1,
        root_quota: 512,
    });
    let init_proc = k.init_proc;
    let mut tally = [(0u64, 0u64, 0u64); NUM_SYSCALL_KINDS];

    // A known mix: 4 mmaps, 3 munmaps (one of a hole → error), endpoint
    // creation twice into the same slot (second → error), an empty poll,
    // a thread spawn and a few yields.
    for i in 0..4usize {
        let r = issue(
            &mut k,
            &mut tally,
            SyscallArgs::Mmap {
                va_base: 0x4000_0000 + i * 0x1000,
                len: 1,
                writable: true,
            },
        );
        assert!(r.is_ok(), "{r:?}");
    }
    for i in 0..2usize {
        let r = issue(
            &mut k,
            &mut tally,
            SyscallArgs::Munmap {
                va_base: 0x4000_0000 + i * 0x1000,
                len: 1,
            },
        );
        assert!(r.is_ok(), "{r:?}");
    }
    let r = issue(
        &mut k,
        &mut tally,
        SyscallArgs::Munmap {
            va_base: 0x5000_0000,
            len: 1,
        },
    );
    assert!(!r.is_ok(), "unmapping a hole must fail");
    let r = issue(&mut k, &mut tally, SyscallArgs::NewEndpoint { slot: 0 });
    assert!(r.is_ok(), "{r:?}");
    let r = issue(&mut k, &mut tally, SyscallArgs::NewEndpoint { slot: 0 });
    assert!(!r.is_ok(), "occupied descriptor slot must fail");
    let r = issue(&mut k, &mut tally, SyscallArgs::Poll { slot: 0 });
    assert!(r.is_ok(), "{r:?}");
    let r = issue(
        &mut k,
        &mut tally,
        SyscallArgs::NewThread {
            proc: init_proc,
            cpu: 0,
        },
    );
    assert!(r.is_ok(), "{r:?}");
    for _ in 0..3 {
        let _ = issue(&mut k, &mut tally, SyscallArgs::Yield);
    }
    let issued_exits: u64 = tally.iter().map(|t| t.0).sum();
    assert_eq!(issued_exits, 14);

    // The read-only snapshot syscall: scalar 0 is the number of syscalls
    // completed *before* it (its own exit is not yet recorded when the
    // snapshot is taken inside the handler).
    let ret = k.syscall(0, SyscallArgs::TraceSnapshot);
    assert!(ret.is_ok(), "{ret:?}");
    assert_eq!(ret.val0(), issued_exits);
    let snap = k.take_trace_snapshot().expect("snapshot stashed");

    // Per-kind reconciliation: exactly the issued counts, nothing else.
    for kind in SyscallKind::ALL {
        let (exits, ok, errs) = tally[kind.index()];
        if kind == SyscallKind::TraceSnapshot {
            assert_eq!(snap.syscall(kind).enters, 1, "its own enter is visible");
            assert_eq!(snap.exits(kind), 0);
            continue;
        }
        let s = snap.syscall(kind);
        assert_eq!(s.exits, exits, "{}", kind.name());
        assert_eq!(s.ok, ok, "{}", kind.name());
        assert_eq!(s.errs, errs, "{}", kind.name());
        // Completed calls cost cycles; the histogram saw every one.
        if exits > 0 {
            assert!(s.p50_cycles > 0, "{}: p50 of a completed call", kind.name());
            assert!(s.max_cycles >= s.p50_cycles, "{}", kind.name());
        }
    }
    assert_eq!(snap.total_syscall_exits(), issued_exits);
    assert_eq!(snap.per_cpu.len(), 1);
    assert_eq!(snap.per_cpu[0].syscall_exits(), issued_exits);

    // Subsystem counters reconcile with the instrumented paths: each ok
    // mmap allocated and mapped one frame; each ok munmap unmapped and
    // freed one; the endpoint and thread pages are allocator events too.
    assert_eq!(snap.counters.ptable.maps, 4);
    assert_eq!(snap.counters.ptable.frames_mapped, 4);
    assert_eq!(snap.counters.ptable.unmaps, 2);
    assert_eq!(snap.counters.mem.frees, 2);
    assert_eq!(
        snap.counters.mem.allocs, 9,
        "4 mmap frames + 3 fresh page-table levels + endpoint + thread"
    );

    // A later snapshot sees the first TraceSnapshot call completed.
    let later = k.trace_snapshot();
    assert_eq!(later.exits(SyscallKind::TraceSnapshot), 1);
    assert_eq!(later.total_syscall_exits(), issued_exits + 1);

    // The whole transition left the kernel (incl. trace_wf) well-formed.
    assert!(k.wf().is_ok(), "{:?}", k.wf());
}

#[test]
fn snapshot_render_is_report_styled() {
    let mut k = Kernel::boot(KernelConfig {
        mem_mib: 32,
        ncpus: 1,
        root_quota: 512,
    });
    let _ = k.syscall(
        0,
        SyscallArgs::Mmap {
            va_base: 0x4000_0000,
            len: 2,
            writable: true,
        },
    );
    let _ = k.syscall(0, SyscallArgs::Yield);
    let text = k.trace_snapshot().render();
    assert!(text.contains("== Trace snapshot: per-CPU event rings =="));
    assert!(text.contains("== Trace snapshot: syscall latency (modeled cycles) =="));
    assert!(text.contains("mmap"));
    assert!(text.contains("mem.allocs"));
}
