//! The event-driven httpd core end to end over kernel-backed memory:
//! per-CPU connection shards whose arenas are carved from `Mapped`
//! frames (inside `page_closure()`, covered by the leak-freedom audits
//! for the whole run), RSS-steered request flows, timer-wheel reaping,
//! and park/unpark backpressure — all while the incremental audit and
//! the epoch `total_wf` stay green.

use atmosphere::apps::event::HTTP_PAYLOAD_OFFSET;
use atmosphere::apps::{ConnTable, EventCoreConfig, EventHttpd, CONN_SLOTS_PER_PAGE};
use atmosphere::drivers::{
    queue_for_seq, write_udp64, DriverCosts, IxgbeDevice, IxgbeDriver, PktPool, RSS_FLOW_PERIOD,
};
use atmosphere::hw::cycles::CycleMeter;
use atmosphere::kernel::smp::SmpKernel;
use atmosphere::kernel::{Kernel, KernelConfig, SyscallArgs};
use atmosphere::mem::PagePtr;
use atmosphere::spec::harness::Invariant;
use atmosphere::trace::{TraceSink, DEFAULT_RING_CAPACITY};

const FREQ: u64 = 2_200_000_000;
const NQ: usize = 4;
const VA: usize = 0x4000_0000;
const PAGE_4K: usize = 0x1000;
const PAGES_PER_SHARD: usize = 4;

/// Boots a sharded kernel, maps `NQ * PAGES_PER_SHARD` arena pages and
/// returns the kernel plus each shard's frame slice.
fn arena() -> (SmpKernel, Vec<Vec<PagePtr>>) {
    let total = NQ * PAGES_PER_SHARD;
    let k = SmpKernel::new(Kernel::boot(KernelConfig {
        mem_mib: 64,
        ncpus: NQ,
        root_quota: 2048,
    }));
    let r = k.syscall(
        0,
        SyscallArgs::Mmap {
            va_base: VA,
            len: total,
            writable: true,
        },
    );
    assert!(r.is_ok(), "arena mmap: {r:?}");
    let frames: Vec<PagePtr> = k.with_kernel(|k| {
        let as_id = k.pm.proc(k.init_proc).addr_space;
        let table = k.mem.vm.table(as_id).unwrap();
        (0..total)
            .map(|i| table.map_4k.index(&(VA + i * PAGE_4K)).unwrap().frame)
            .collect()
    });
    k.enable_incremental_audit();
    let per_shard = frames.chunks(PAGES_PER_SHARD).map(|c| c.to_vec()).collect();
    (k, per_shard)
}

/// Unmaps the arena and audits that nothing leaked.
fn teardown(k: &SmpKernel) {
    let r = k.syscall(
        0,
        SyscallArgs::Munmap {
            va_base: VA,
            len: NQ * PAGES_PER_SHARD,
        },
    );
    assert!(r.is_ok(), "arena munmap: {r:?}");
    k.audit_total_wf()
        .unwrap_or_else(|e| panic!("teardown audit: {e}"));
    k.with_kernel(|uk| assert!(uk.mem.alloc.mapped_pages().is_empty(), "frames leaked"));
}

/// The `k`-th flow that RSS-steers to `queue`.
fn flow_for(queue: usize, k: usize) -> u64 {
    let residues: Vec<u64> = (0..RSS_FLOW_PERIOD)
        .filter(|&r| queue_for_seq(r, NQ) == queue)
        .collect();
    residues[k % residues.len()] + (k / residues.len()) as u64 * RSS_FLOW_PERIOD
}

/// Sends one request frame for `flow` into the shard.
fn send(ev: &mut EventHttpd, meter: &mut CycleMeter, pool: &mut PktPool, flow: u64, http: &[u8]) {
    let mut buf = pool.try_acquire().expect("pool has slots");
    let frame = pool.slot_mut(&buf);
    write_udp64(frame, flow);
    frame[HTTP_PAYLOAD_OFFSET..HTTP_PAYLOAD_OFFSET + http.len()].copy_from_slice(http);
    buf.set_len(HTTP_PAYLOAD_OFFSET + http.len());
    let mut bufs = vec![buf];
    ev.ingest(meter, pool, &mut bufs);
}

#[test]
fn four_shards_over_kernel_arena_serve_steered_flows() {
    let (k, shard_frames) = arena();
    let mut total_served = 0u64;
    for (q, frames) in shard_frames.into_iter().enumerate() {
        let table = ConnTable::from_frames(frames, q, NQ);
        assert_eq!(table.capacity(), PAGES_PER_SHARD * CONN_SLOTS_PER_PAGE);
        let mut ev = EventHttpd::new(EventCoreConfig::new(q, NQ), table);
        ev.add_page("/index.html", b"hello from the event core");
        let mut drv =
            IxgbeDriver::new(IxgbeDevice::steered(FREQ, NQ, q), DriverCosts::atmosphere());
        let mut pool = PktPool::anonymous(64);
        let mut meter = CycleMeter::new();
        for i in 0..32 {
            send(
                &mut ev,
                &mut meter,
                &mut pool,
                flow_for(q, i),
                b"GET /index.html HTTP/1.1\r\nHost: t\r\n\r\n",
            );
        }
        while ev.served() < 32 {
            ev.tick(&mut meter, &mut drv, &mut pool);
        }
        assert_eq!(ev.live(), 32, "keep-alive conns stay live");
        assert_eq!(pool.in_flight(), 0, "pool ledger balanced");
        ev.wf().unwrap_or_else(|e| panic!("shard {q} wf: {e}"));
        // The connection state lives in kernel-audited frames: the
        // incremental audit must hold with the shard mid-flight.
        k.audit_incremental()
            .unwrap_or_else(|e| panic!("shard {q} mid-flight audit: {e}"));
        total_served += ev.served();
    }
    assert_eq!(total_served, 32 * NQ as u64);
    teardown(&k);
}

#[test]
fn steered_rx_feeds_only_the_owning_shard() {
    // Line-rate RX through the steered NIC queues auto-accepts flows;
    // every connection a shard holds must steer to that shard's queue
    // (the cross-CPU-sharing ban, checked from the outside).
    let (k, shard_frames) = arena();
    for (q, frames) in shard_frames.into_iter().enumerate() {
        let table = ConnTable::from_frames(frames, q, NQ);
        let mut ev = EventHttpd::new(EventCoreConfig::new(q, NQ), table);
        let mut drv =
            IxgbeDriver::new(IxgbeDevice::steered(FREQ, NQ, q), DriverCosts::atmosphere());
        let mut pool = PktPool::anonymous(64);
        let mut meter = CycleMeter::new();
        meter.charge(1_000_000); // wire-side backlog
        let n = ev.ingest_rx(&mut meter, &mut drv, &mut pool, 32);
        assert!(n > 0, "steered RX delivered frames");
        assert!(ev.live() > 0, "unknown flows auto-accepted");
        for i in 0..ev.live() {
            let flow = flow_for(q, i);
            assert!(
                ev.table().lookup(flow).is_some(),
                "shard {q} owns its steered flows in arrival order"
            );
        }
        ev.wf().unwrap_or_else(|e| panic!("shard {q} wf: {e}"));
    }
    k.audit_incremental()
        .unwrap_or_else(|e| panic!("post-rx audit: {e}"));
    teardown(&k);
}

#[test]
fn backpressure_parks_and_resumes_under_the_audit() {
    // A starved pool against a large response: the connection parks,
    // TX completions resume it, the response completes exactly once —
    // with the arena frames audited throughout.
    let (k, mut shard_frames) = arena();
    let table = ConnTable::from_frames(shard_frames.remove(0), 0, NQ);
    let mut ev = EventHttpd::new(EventCoreConfig::new(0, NQ), table);
    ev.add_page("/big", &vec![b'x'; 9 * 1024]);
    let mut drv = IxgbeDriver::new(IxgbeDevice::steered(FREQ, NQ, 0), DriverCosts::atmosphere());
    let mut pool = PktPool::anonymous(2);
    let mut meter = CycleMeter::new();
    let sink = TraceSink::new(NQ, DEFAULT_RING_CAPACITY);
    ev.attach_trace(sink.clone());
    send(
        &mut ev,
        &mut meter,
        &mut pool,
        flow_for(0, 0),
        b"GET /big HTTP/1.1\r\nHost: t\r\n\r\n",
    );
    while ev.served() < 1 {
        ev.tick(&mut meter, &mut drv, &mut pool);
        k.audit_incremental()
            .unwrap_or_else(|e| panic!("mid-park audit: {e}"));
    }
    // A park and its resume can complete inside a single tick (the TX
    // flush frees the slots that serve just exhausted), so observe them
    // through the trace counters rather than the queue length.
    let snap = sink.snapshot();
    assert!(snap.counters.httpd.parked > 0, "2-slot pool forced a park");
    assert_eq!(
        snap.counters.httpd.parked, snap.counters.httpd.unparked,
        "every park resumed"
    );
    assert_eq!(ev.parked_len(), 0, "nothing left parked");
    assert_eq!(pool.in_flight(), 0, "pool ledger balanced");
    ev.wf().unwrap_or_else(|e| panic!("wf: {e}"));
    teardown(&k);
}
