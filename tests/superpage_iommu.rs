//! Superpage mappings and the IOMMU system-call interface (§3, §4.2):
//! 2 MiB user mappings with quota accounting, DMA protection domains,
//! device attachment, DMA-visibility of own memory only, grant of domain
//! identifiers over IPC, and teardown on container termination.

use atmosphere::hw::{VAddr, PAGE_SIZE_2M, PAGE_SIZE_4K};
use atmosphere::kernel::refine::audited_syscall;
use atmosphere::kernel::{Kernel, KernelConfig, SyscallArgs, SyscallError};
use atmosphere::mem::PageSize;
use atmosphere::spec::harness::Invariant;

fn ok(k: &mut Kernel, cpu: usize, args: SyscallArgs) -> u64 {
    let (ret, audit) = audited_syscall(k, cpu, args.clone());
    audit.unwrap_or_else(|e| panic!("{args:?}: {e}"));
    assert!(ret.is_ok(), "{args:?} failed: {ret:?}");
    ret.val0()
}

#[test]
fn mmap_huge_2m_roundtrip() {
    let mut k = Kernel::boot(KernelConfig {
        mem_mib: 64,
        ncpus: 1,
        root_quota: 2048,
    });
    let used0 = k.pm.cntr(k.root_container).used;
    ok(
        &mut k,
        0,
        SyscallArgs::MmapHuge2M {
            va_base: 0x4000_0000,
            writable: true,
        },
    );
    assert_eq!(
        k.pm.cntr(k.root_container).used,
        used0 + 512,
        "512 pages charged"
    );

    // The MMU resolves an address inside the superpage.
    let as_id = k.pm.proc(k.init_proc).addr_space;
    let r = k
        .mem
        .vm
        .table(as_id)
        .unwrap()
        .resolve(VAddr(0x4000_5000))
        .unwrap();
    assert_eq!(r.size, atmosphere::hw::PAGE_SIZE_2M);

    ok(
        &mut k,
        0,
        SyscallArgs::MunmapHuge2M {
            va_base: 0x4000_0000,
        },
    );
    assert_eq!(k.pm.cntr(k.root_container).used, used0);
    assert!(k.mem.alloc.mapped_pages().is_empty());
    assert!(k.wf().is_ok(), "{:?}", k.wf());
}

#[test]
fn mmap_huge_rejects_bad_arguments() {
    let mut k = Kernel::boot(KernelConfig {
        mem_mib: 64,
        ncpus: 1,
        root_quota: 2048,
    });
    // Misaligned base.
    let (ret, audit) = audited_syscall(
        &mut k,
        0,
        SyscallArgs::MmapHuge2M {
            va_base: 0x4000_1000,
            writable: true,
        },
    );
    assert_eq!(ret.result, Err(SyscallError::Invalid));
    audit.unwrap();
    // Quota too small (needs 512 pages).
    let c = ok(
        &mut k,
        0,
        SyscallArgs::NewContainer {
            quota: 64,
            cpus: vec![],
        },
    ) as usize;
    let p = ok(&mut k, 0, SyscallArgs::NewProcess { cntr: c }) as usize;
    ok(&mut k, 0, SyscallArgs::NewThread { proc: p, cpu: 0 });
    k.pm.timer_tick(0);
    let (ret, audit) = audited_syscall(
        &mut k,
        0,
        SyscallArgs::MmapHuge2M {
            va_base: 0x4000_0000,
            writable: true,
        },
    );
    assert_eq!(ret.result, Err(SyscallError::Quota));
    audit.unwrap();
}

#[test]
fn huge_and_small_mappings_coexist() {
    let mut k = Kernel::boot(KernelConfig {
        mem_mib: 64,
        ncpus: 1,
        root_quota: 2048,
    });
    ok(
        &mut k,
        0,
        SyscallArgs::Mmap {
            va_base: 0x4020_0000,
            len: 2,
            writable: true,
        },
    );
    ok(
        &mut k,
        0,
        SyscallArgs::MmapHuge2M {
            va_base: 0x4040_0000,
            writable: false,
        },
    );
    assert!(k.wf().is_ok(), "{:?}", k.wf());
    // Overlapping 4K map under the superpage conflicts.
    let (ret, _audit) = audited_syscall(
        &mut k,
        0,
        SyscallArgs::Mmap {
            va_base: 0x4040_0000,
            len: 1,
            writable: true,
        },
    );
    assert_eq!(ret.result, Err(SyscallError::Fault));
}

#[test]
fn iommu_dma_visibility_lifecycle() {
    let mut k = Kernel::boot(KernelConfig {
        mem_mib: 64,
        ncpus: 1,
        root_quota: 2048,
    });
    // Map a page, create a domain, attach a device, expose the page.
    ok(
        &mut k,
        0,
        SyscallArgs::Mmap {
            va_base: 0x4000_0000,
            len: 1,
            writable: true,
        },
    );
    let dom = ok(&mut k, 0, SyscallArgs::IommuCreateDomain) as u32;
    ok(
        &mut k,
        0,
        SyscallArgs::IommuAttach {
            domain: dom,
            device: 7,
        },
    );
    ok(
        &mut k,
        0,
        SyscallArgs::IommuMap {
            domain: dom,
            iova: 0x10_0000,
            va: 0x4000_0000,
        },
    );
    assert!(k.wf().is_ok(), "{:?}", k.wf());

    // The device resolves the IOVA to the process's frame.
    let as_id = k.pm.proc(k.init_proc).addr_space;
    let frame = k
        .mem
        .vm
        .table(as_id)
        .unwrap()
        .map_4k
        .index(&0x4000_0000)
        .unwrap()
        .frame;
    let r = k.mem.vm.iommu.translate(7, VAddr(0x10_0000)).unwrap();
    assert_eq!(r.frame.as_usize(), frame);
    assert_eq!(
        k.mem.alloc.map_refcnt(frame),
        2,
        "process + IOMMU references"
    );

    // Unmapping from the process keeps the DMA mapping alive (the driver
    // still owns the buffer) — no dangling DMA.
    ok(
        &mut k,
        0,
        SyscallArgs::Munmap {
            va_base: 0x4000_0000,
            len: 1,
        },
    );
    assert_eq!(k.mem.alloc.map_refcnt(frame), 1);
    assert!(k.mem.vm.iommu.translate(7, VAddr(0x10_0000)).is_some());
    assert!(k.wf().is_ok(), "{:?}", k.wf());

    // IOMMU unmap releases the last reference.
    ok(
        &mut k,
        0,
        SyscallArgs::IommuUnmap {
            domain: dom,
            iova: 0x10_0000,
        },
    );
    assert!(k.mem.alloc.page_is_free(frame));
    ok(&mut k, 0, SyscallArgs::IommuDetach { device: 7 });
    assert_eq!(k.mem.vm.iommu.translate(7, VAddr(0x10_0000)), None);
    assert!(k.wf().is_ok(), "{:?}", k.wf());
}

#[test]
fn iommu_map_requires_own_mapping() {
    let mut k = Kernel::boot(KernelConfig {
        mem_mib: 64,
        ncpus: 1,
        root_quota: 2048,
    });
    let dom = ok(&mut k, 0, SyscallArgs::IommuCreateDomain) as u32;
    // The VA is not mapped in the caller's space: Fault.
    let (ret, audit) = audited_syscall(
        &mut k,
        0,
        SyscallArgs::IommuMap {
            domain: dom,
            iova: 0x10_0000,
            va: 0x4000_0000,
        },
    );
    assert_eq!(ret.result, Err(SyscallError::Fault));
    audit.unwrap();
}

#[test]
fn iommu_domain_access_is_container_scoped_until_granted() {
    let mut k = Kernel::boot(KernelConfig {
        mem_mib: 64,
        ncpus: 2,
        root_quota: 2048,
    });
    let init_proc = k.init_proc;
    // A second container with its own thread.
    let c = ok(
        &mut k,
        0,
        SyscallArgs::NewContainer {
            quota: 64,
            cpus: vec![1],
        },
    ) as usize;
    let p = ok(&mut k, 0, SyscallArgs::NewProcess { cntr: c }) as usize;
    let t2 = ok(&mut k, 0, SyscallArgs::NewThread { proc: p, cpu: 1 }) as usize;
    k.pm.timer_tick(1);

    // Root creates a domain; the child container may not attach devices.
    let dom = ok(&mut k, 0, SyscallArgs::IommuCreateDomain) as u32;
    let (ret, _) = audited_syscall(
        &mut k,
        1,
        SyscallArgs::IommuAttach {
            domain: dom,
            device: 3,
        },
    );
    assert_eq!(ret.result, Err(SyscallError::Denied));

    // Root grants the domain over an endpoint; afterwards the child may.
    let e = ok(&mut k, 0, SyscallArgs::NewEndpoint { slot: 0 }) as usize;
    k.pm.install_descriptor(t2, 0, e).unwrap();
    let (ret, _) = audited_syscall(&mut k, 1, SyscallArgs::Recv { slot: 0 });
    assert!(ret.is_ok());
    ok(
        &mut k,
        0,
        SyscallArgs::Send {
            slot: 0,
            scalars: [0; 4],
            grant_page_va: None,
            grant_endpoint_slot: None,
            grant_iommu_domain: Some(dom),
        },
    );
    let msg = k.syscall(1, SyscallArgs::TakeMsg);
    assert!(msg.is_ok());
    ok(
        &mut k,
        1,
        SyscallArgs::IommuAttach {
            domain: dom,
            device: 3,
        },
    );
    assert!(k.wf().is_ok(), "{:?}", k.wf());
    let _ = init_proc;
}

// ----- transparent 2 MiB promotion on the batched datapath --------------

/// Scratch region for the freelist-aligning filler mapping.
const FILLER_VA: usize = 0x7000_0000;

fn boot_big() -> Kernel {
    Kernel::boot(KernelConfig {
        mem_mib: 64,
        ncpus: 1,
        root_quota: 2048,
    })
}

/// Conditions `k` so its 4 KiB freelist head sits exactly on a fully-free
/// 2 MiB boundary, then maps a 512-page run at `va`. With the batched
/// datapath on, the run promotes to one `Size2M` entry whose frame is the
/// returned head; with it off, the per-page path pops the exact same 512
/// frames in order — which is what makes batched and per-page executions
/// comparable frame-for-frame.
///
/// Returns `(head_frame, filler_pages)`.
fn align_freelist_and_mmap_512(k: &mut Kernel, va: usize) -> (usize, usize) {
    // Warm the upper table levels through a *sibling* 2 MiB region (same
    // L3/L2, different L1): the target's L2 slot must stay empty or the
    // superpage cannot be installed there.
    for base in [va + PAGE_SIZE_2M, FILLER_VA] {
        ok(
            k,
            0,
            SyscallArgs::Mmap {
                va_base: base,
                len: 1,
                writable: true,
            },
        );
        ok(
            k,
            0,
            SyscallArgs::Munmap {
                va_base: base,
                len: 1,
            },
        );
    }
    // First 2 MiB-aligned boundary whose entire run is free.
    let free: std::collections::BTreeSet<usize> =
        k.mem.alloc.free_pages_4k().iter().copied().collect();
    let lowest = *free.iter().next().expect("free memory");
    let mut head = lowest.next_multiple_of(PAGE_SIZE_2M);
    while !(0..512).all(|i| free.contains(&(head + i * PAGE_SIZE_4K))) {
        head += PAGE_SIZE_2M;
    }
    let filler = free.iter().filter(|&&p| p < head).count();
    if filler > 0 {
        ok(
            k,
            0,
            SyscallArgs::Mmap {
                va_base: FILLER_VA,
                len: filler,
                writable: true,
            },
        );
    }
    assert_eq!(
        k.mem.alloc.free_pages_4k().iter().next().copied(),
        Some(head),
        "freelist head must sit on the 2 MiB boundary"
    );
    ok(
        k,
        0,
        SyscallArgs::Mmap {
            va_base: va,
            len: 512,
            writable: true,
        },
    );
    (head, filler)
}

#[test]
fn aligned_512_run_promotes_and_full_unmap_returns_frames() {
    let mut k = boot_big();
    let used0 = k.pm.cntr(k.root_container).used;
    let (head, filler) = align_freelist_and_mmap_512(&mut k, 0x4000_0000);

    let as_id = k.pm.proc(k.init_proc).addr_space;
    let pt = k.mem.vm.table(as_id).unwrap();
    let entry = pt.map_2m.index(&0x4000_0000).expect("run promoted to 2M");
    assert_eq!(entry.frame, head, "promotion took the aligned freelist run");
    assert_eq!(
        pt.resolve(VAddr(0x4000_5000)).unwrap().size,
        PAGE_SIZE_2M,
        "MMU sees one superpage"
    );
    assert_eq!(
        k.pm.cntr(k.root_container).used,
        used0 + filler + 512,
        "promotion charges the same 512-page quota as per-page"
    );
    let snap = k.trace_snapshot();
    assert_eq!(snap.counters.vm.superpage_promotions, 1);
    assert!(snap.counters.vm.tlb_shootdowns_deferred >= 512);
    assert!(
        snap.counters.vm.tlb_shootdowns_flushed <= snap.counters.vm.tlb_shootdowns_deferred,
        "trace_wf inequality"
    );
    assert!(k.wf().is_ok(), "{:?}", k.wf());

    // Full unmap demotes, returns all 512 frames and the quota.
    ok(
        &mut k,
        0,
        SyscallArgs::Munmap {
            va_base: 0x4000_0000,
            len: 512,
        },
    );
    assert_eq!(k.trace_snapshot().counters.vm.superpage_demotions, 1);
    assert_eq!(k.pm.cntr(k.root_container).used, used0 + filler);
    if filler > 0 {
        ok(
            &mut k,
            0,
            SyscallArgs::Munmap {
                va_base: FILLER_VA,
                len: filler,
            },
        );
    }
    assert!(k.mem.alloc.mapped_pages().is_empty(), "no frames leaked");
    assert!(k.wf().is_ok(), "{:?}", k.wf());
}

#[test]
fn audits_preserve_promoted_superpage_entries() {
    // Satellite check: running the audit (total_wf, which rebuilds the
    // abstract space from the radix tree) must not regress a promoted
    // `Size2M` entry into 512 `Size4K` entries in the observed view.
    let mut k = boot_big();
    align_freelist_and_mmap_512(&mut k, 0x4000_0000);
    let as_id = k.pm.proc(k.init_proc).addr_space;

    let view_before = k.mem.vm.view();
    assert!(k.wf().is_ok(), "{:?}", k.wf());
    let (ret, audit) = audited_syscall(&mut k, 0, SyscallArgs::Yield);
    assert!(ret.is_ok() && audit.is_ok(), "{audit:?}");
    let view_after = k.mem.vm.view();

    assert_eq!(view_before, view_after, "audits must not mutate the view");
    let space = view_after.index(&as_id).unwrap();
    let (_, size) = space.index(&0x4000_0000).expect("entry survives audits");
    assert_eq!(*size, PageSize::Size2M, "superpage not regressed to 4K");
    assert_eq!(
        space
            .iter()
            .filter(|&(va, _)| (0x4000_0000..0x4020_0000).contains(va))
            .count(),
        1,
        "exactly one entry covers the promoted run"
    );
}

#[test]
fn unaligned_512_run_stays_4k() {
    let mut k = boot_big();
    // 512 pages starting one page past the 2 MiB boundary: no aligned
    // fully-covered window exists, so nothing may promote.
    ok(
        &mut k,
        0,
        SyscallArgs::Mmap {
            va_base: 0x4000_1000,
            len: 512,
            writable: true,
        },
    );
    let as_id = k.pm.proc(k.init_proc).addr_space;
    let pt = k.mem.vm.table(as_id).unwrap();
    assert!(pt.map_2m.is_empty(), "unaligned run must not promote");
    assert_eq!(pt.resolve(VAddr(0x4000_1000)).unwrap().size, PAGE_SIZE_4K);
    let snap = k.trace_snapshot();
    assert_eq!(snap.counters.vm.superpage_promotions, 0);
    assert!(
        snap.counters.vm.map_batch_hits > 0,
        "walk cache still amortizes the fills"
    );
    ok(
        &mut k,
        0,
        SyscallArgs::Munmap {
            va_base: 0x4000_1000,
            len: 512,
        },
    );
    assert!(k.mem.alloc.mapped_pages().is_empty());
    assert!(k.wf().is_ok(), "{:?}", k.wf());
}

#[test]
fn mixed_permission_runs_never_promote() {
    let mut k = boot_big();
    // Two mmaps with different permissions jointly cover an aligned
    // 2 MiB window; promotion only ever applies within a single
    // uniform-permission call, so the window stays 4 KiB.
    ok(
        &mut k,
        0,
        SyscallArgs::Mmap {
            va_base: 0x4000_0000,
            len: 256,
            writable: true,
        },
    );
    ok(
        &mut k,
        0,
        SyscallArgs::Mmap {
            va_base: 0x4010_0000,
            len: 256,
            writable: false,
        },
    );
    let as_id = k.pm.proc(k.init_proc).addr_space;
    let pt = k.mem.vm.table(as_id).unwrap();
    assert!(pt.map_2m.is_empty(), "mixed permissions must not promote");
    assert_eq!(k.trace_snapshot().counters.vm.superpage_promotions, 0);
    let rw = pt.map_4k.index(&0x4000_0000).unwrap().flags;
    let ro = pt.map_4k.index(&0x4010_0000).unwrap().flags;
    assert_ne!(rw, ro, "each half keeps its own permissions");
    assert!(k.wf().is_ok(), "{:?}", k.wf());
}

#[test]
fn partial_unmap_demotes_and_preserves_the_other_511() {
    let mut k = boot_big();
    let (head, _filler) = align_freelist_and_mmap_512(&mut k, 0x4000_0000);
    let as_id = k.pm.proc(k.init_proc).addr_space;
    let used_before = k.pm.cntr(k.root_container).used;

    // Unmap one page in the middle of the promoted run.
    ok(
        &mut k,
        0,
        SyscallArgs::Munmap {
            va_base: 0x4000_5000,
            len: 1,
        },
    );
    assert_eq!(k.trace_snapshot().counters.vm.superpage_demotions, 1);
    assert_eq!(k.pm.cntr(k.root_container).used, used_before - 1);

    let pt = k.mem.vm.table(as_id).unwrap();
    assert!(pt.map_2m.is_empty(), "entry demoted");
    assert!(pt.resolve(VAddr(0x4000_5000)).is_none(), "hole unmapped");
    // The other 511 pages survive with the frames the superpage covered.
    for i in 0..512usize {
        let va = 0x4000_0000 + i * PAGE_SIZE_4K;
        if i == 5 {
            assert!(pt.map_4k.index(&va).is_none());
            continue;
        }
        let e = pt.map_4k.index(&va).unwrap_or_else(|| panic!("page {i}"));
        assert_eq!(e.frame, head + i * PAGE_SIZE_4K, "page {i} keeps its frame");
    }
    assert!(k.wf().is_ok(), "{:?}", k.wf());

    // The remainder unmaps cleanly around the hole.
    ok(
        &mut k,
        0,
        SyscallArgs::Munmap {
            va_base: 0x4000_0000,
            len: 5,
        },
    );
    ok(
        &mut k,
        0,
        SyscallArgs::Munmap {
            va_base: 0x4000_6000,
            len: 506,
        },
    );
    assert!(k.wf().is_ok(), "{:?}", k.wf());
}

#[test]
fn iommu_view_is_stable_across_promotion_and_pin_demotion() {
    let mut k = boot_big();
    let (head, _filler) = align_freelist_and_mmap_512(&mut k, 0x4000_0000);
    let as_id = k.pm.proc(k.init_proc).addr_space;

    // Pin a page inside the promoted run for DMA: the superpage is
    // transparently demoted (grants and IOMMU references are 4 KiB-only)
    // and the device must see exactly the frame the superpage covered.
    let dom = ok(&mut k, 0, SyscallArgs::IommuCreateDomain) as u32;
    ok(
        &mut k,
        0,
        SyscallArgs::IommuAttach {
            domain: dom,
            device: 7,
        },
    );
    ok(
        &mut k,
        0,
        SyscallArgs::IommuMap {
            domain: dom,
            iova: 0x10_0000,
            va: 0x4000_5000,
        },
    );
    assert_eq!(k.trace_snapshot().counters.vm.superpage_demotions, 1);

    let pt = k.mem.vm.table(as_id).unwrap();
    assert!(pt.map_2m.is_empty(), "pin demoted the superpage");
    let frame = pt.map_4k.index(&0x4000_5000).unwrap().frame;
    assert_eq!(frame, head + 5 * PAGE_SIZE_4K);
    let r = k.mem.vm.iommu.translate(7, VAddr(0x10_0000)).unwrap();
    assert_eq!(
        r.frame.as_usize(),
        frame,
        "device view matches the never-promoted layout"
    );
    assert_eq!(k.mem.alloc.map_refcnt(frame), 2, "process + IOMMU");
    assert!(k.wf().is_ok(), "{:?}", k.wf());

    // Process unmap keeps the DMA pin alive; the IOMMU unmap frees it.
    ok(
        &mut k,
        0,
        SyscallArgs::Munmap {
            va_base: 0x4000_0000,
            len: 512,
        },
    );
    assert_eq!(k.mem.alloc.map_refcnt(frame), 1);
    assert!(k.mem.vm.iommu.translate(7, VAddr(0x10_0000)).is_some());
    ok(
        &mut k,
        0,
        SyscallArgs::IommuUnmap {
            domain: dom,
            iova: 0x10_0000,
        },
    );
    assert!(k.mem.alloc.page_is_free(frame));
    assert!(k.wf().is_ok(), "{:?}", k.wf());
}

#[test]
fn container_termination_tears_down_its_domains() {
    let mut k = Kernel::boot(KernelConfig {
        mem_mib: 64,
        ncpus: 2,
        root_quota: 2048,
    });
    let c = ok(
        &mut k,
        0,
        SyscallArgs::NewContainer {
            quota: 64,
            cpus: vec![1],
        },
    ) as usize;
    let p = ok(&mut k, 0, SyscallArgs::NewProcess { cntr: c }) as usize;
    ok(&mut k, 0, SyscallArgs::NewThread { proc: p, cpu: 1 });
    k.pm.timer_tick(1);

    // The child's thread creates a domain, attaches a device and maps a
    // DMA buffer.
    ok(
        &mut k,
        1,
        SyscallArgs::Mmap {
            va_base: 0x4000_0000,
            len: 1,
            writable: true,
        },
    );
    let dom = ok(&mut k, 1, SyscallArgs::IommuCreateDomain) as u32;
    ok(
        &mut k,
        1,
        SyscallArgs::IommuAttach {
            domain: dom,
            device: 9,
        },
    );
    ok(
        &mut k,
        1,
        SyscallArgs::IommuMap {
            domain: dom,
            iova: 0x20_0000,
            va: 0x4000_0000,
        },
    );
    assert_eq!(k.mem.vm.iommu.domain_count(), 1);

    // Kill the container: the domain, its device binding, its DMA
    // mappings and its frames all disappear; nothing leaks.
    let free_expected = {
        let before = k.mem.alloc.free_pages_4k().len();
        ok(&mut k, 0, SyscallArgs::TerminateContainer { cntr: c });
        before
    };
    assert_eq!(k.mem.vm.iommu.domain_count(), 0);
    assert_eq!(k.mem.vm.iommu.translate(9, VAddr(0x20_0000)), None);
    assert!(
        k.mem.alloc.free_pages_4k().len() > free_expected,
        "frames returned"
    );
    assert!(k.mem.alloc.mapped_pages().is_empty());
    assert!(k.wf().is_ok(), "{:?}", k.wf());
}
