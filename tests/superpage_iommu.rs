//! Superpage mappings and the IOMMU system-call interface (§3, §4.2):
//! 2 MiB user mappings with quota accounting, DMA protection domains,
//! device attachment, DMA-visibility of own memory only, grant of domain
//! identifiers over IPC, and teardown on container termination.

use atmosphere::hw::VAddr;
use atmosphere::kernel::refine::audited_syscall;
use atmosphere::kernel::{Kernel, KernelConfig, SyscallArgs, SyscallError};
use atmosphere::spec::harness::Invariant;

fn ok(k: &mut Kernel, cpu: usize, args: SyscallArgs) -> u64 {
    let (ret, audit) = audited_syscall(k, cpu, args.clone());
    audit.unwrap_or_else(|e| panic!("{args:?}: {e}"));
    assert!(ret.is_ok(), "{args:?} failed: {ret:?}");
    ret.val0()
}

#[test]
fn mmap_huge_2m_roundtrip() {
    let mut k = Kernel::boot(KernelConfig {
        mem_mib: 64,
        ncpus: 1,
        root_quota: 2048,
    });
    let used0 = k.pm.cntr(k.root_container).used;
    ok(
        &mut k,
        0,
        SyscallArgs::MmapHuge2M {
            va_base: 0x4000_0000,
            writable: true,
        },
    );
    assert_eq!(
        k.pm.cntr(k.root_container).used,
        used0 + 512,
        "512 pages charged"
    );

    // The MMU resolves an address inside the superpage.
    let as_id = k.pm.proc(k.init_proc).addr_space;
    let r = k
        .mem
        .vm
        .table(as_id)
        .unwrap()
        .resolve(VAddr(0x4000_5000))
        .unwrap();
    assert_eq!(r.size, atmosphere::hw::PAGE_SIZE_2M);

    ok(
        &mut k,
        0,
        SyscallArgs::MunmapHuge2M {
            va_base: 0x4000_0000,
        },
    );
    assert_eq!(k.pm.cntr(k.root_container).used, used0);
    assert!(k.mem.alloc.mapped_pages().is_empty());
    assert!(k.wf().is_ok(), "{:?}", k.wf());
}

#[test]
fn mmap_huge_rejects_bad_arguments() {
    let mut k = Kernel::boot(KernelConfig {
        mem_mib: 64,
        ncpus: 1,
        root_quota: 2048,
    });
    // Misaligned base.
    let (ret, audit) = audited_syscall(
        &mut k,
        0,
        SyscallArgs::MmapHuge2M {
            va_base: 0x4000_1000,
            writable: true,
        },
    );
    assert_eq!(ret.result, Err(SyscallError::Invalid));
    audit.unwrap();
    // Quota too small (needs 512 pages).
    let c = ok(
        &mut k,
        0,
        SyscallArgs::NewContainer {
            quota: 64,
            cpus: vec![],
        },
    ) as usize;
    let p = ok(&mut k, 0, SyscallArgs::NewProcess { cntr: c }) as usize;
    ok(&mut k, 0, SyscallArgs::NewThread { proc: p, cpu: 0 });
    k.pm.timer_tick(0);
    let (ret, audit) = audited_syscall(
        &mut k,
        0,
        SyscallArgs::MmapHuge2M {
            va_base: 0x4000_0000,
            writable: true,
        },
    );
    assert_eq!(ret.result, Err(SyscallError::Quota));
    audit.unwrap();
}

#[test]
fn huge_and_small_mappings_coexist() {
    let mut k = Kernel::boot(KernelConfig {
        mem_mib: 64,
        ncpus: 1,
        root_quota: 2048,
    });
    ok(
        &mut k,
        0,
        SyscallArgs::Mmap {
            va_base: 0x4020_0000,
            len: 2,
            writable: true,
        },
    );
    ok(
        &mut k,
        0,
        SyscallArgs::MmapHuge2M {
            va_base: 0x4040_0000,
            writable: false,
        },
    );
    assert!(k.wf().is_ok(), "{:?}", k.wf());
    // Overlapping 4K map under the superpage conflicts.
    let (ret, _audit) = audited_syscall(
        &mut k,
        0,
        SyscallArgs::Mmap {
            va_base: 0x4040_0000,
            len: 1,
            writable: true,
        },
    );
    assert_eq!(ret.result, Err(SyscallError::Fault));
}

#[test]
fn iommu_dma_visibility_lifecycle() {
    let mut k = Kernel::boot(KernelConfig {
        mem_mib: 64,
        ncpus: 1,
        root_quota: 2048,
    });
    // Map a page, create a domain, attach a device, expose the page.
    ok(
        &mut k,
        0,
        SyscallArgs::Mmap {
            va_base: 0x4000_0000,
            len: 1,
            writable: true,
        },
    );
    let dom = ok(&mut k, 0, SyscallArgs::IommuCreateDomain) as u32;
    ok(
        &mut k,
        0,
        SyscallArgs::IommuAttach {
            domain: dom,
            device: 7,
        },
    );
    ok(
        &mut k,
        0,
        SyscallArgs::IommuMap {
            domain: dom,
            iova: 0x10_0000,
            va: 0x4000_0000,
        },
    );
    assert!(k.wf().is_ok(), "{:?}", k.wf());

    // The device resolves the IOVA to the process's frame.
    let as_id = k.pm.proc(k.init_proc).addr_space;
    let frame = k
        .mem
        .vm
        .table(as_id)
        .unwrap()
        .map_4k
        .index(&0x4000_0000)
        .unwrap()
        .frame;
    let r = k.mem.vm.iommu.translate(7, VAddr(0x10_0000)).unwrap();
    assert_eq!(r.frame.as_usize(), frame);
    assert_eq!(
        k.mem.alloc.map_refcnt(frame),
        2,
        "process + IOMMU references"
    );

    // Unmapping from the process keeps the DMA mapping alive (the driver
    // still owns the buffer) — no dangling DMA.
    ok(
        &mut k,
        0,
        SyscallArgs::Munmap {
            va_base: 0x4000_0000,
            len: 1,
        },
    );
    assert_eq!(k.mem.alloc.map_refcnt(frame), 1);
    assert!(k.mem.vm.iommu.translate(7, VAddr(0x10_0000)).is_some());
    assert!(k.wf().is_ok(), "{:?}", k.wf());

    // IOMMU unmap releases the last reference.
    ok(
        &mut k,
        0,
        SyscallArgs::IommuUnmap {
            domain: dom,
            iova: 0x10_0000,
        },
    );
    assert!(k.mem.alloc.page_is_free(frame));
    ok(&mut k, 0, SyscallArgs::IommuDetach { device: 7 });
    assert_eq!(k.mem.vm.iommu.translate(7, VAddr(0x10_0000)), None);
    assert!(k.wf().is_ok(), "{:?}", k.wf());
}

#[test]
fn iommu_map_requires_own_mapping() {
    let mut k = Kernel::boot(KernelConfig {
        mem_mib: 64,
        ncpus: 1,
        root_quota: 2048,
    });
    let dom = ok(&mut k, 0, SyscallArgs::IommuCreateDomain) as u32;
    // The VA is not mapped in the caller's space: Fault.
    let (ret, audit) = audited_syscall(
        &mut k,
        0,
        SyscallArgs::IommuMap {
            domain: dom,
            iova: 0x10_0000,
            va: 0x4000_0000,
        },
    );
    assert_eq!(ret.result, Err(SyscallError::Fault));
    audit.unwrap();
}

#[test]
fn iommu_domain_access_is_container_scoped_until_granted() {
    let mut k = Kernel::boot(KernelConfig {
        mem_mib: 64,
        ncpus: 2,
        root_quota: 2048,
    });
    let init_proc = k.init_proc;
    // A second container with its own thread.
    let c = ok(
        &mut k,
        0,
        SyscallArgs::NewContainer {
            quota: 64,
            cpus: vec![1],
        },
    ) as usize;
    let p = ok(&mut k, 0, SyscallArgs::NewProcess { cntr: c }) as usize;
    let t2 = ok(&mut k, 0, SyscallArgs::NewThread { proc: p, cpu: 1 }) as usize;
    k.pm.timer_tick(1);

    // Root creates a domain; the child container may not attach devices.
    let dom = ok(&mut k, 0, SyscallArgs::IommuCreateDomain) as u32;
    let (ret, _) = audited_syscall(
        &mut k,
        1,
        SyscallArgs::IommuAttach {
            domain: dom,
            device: 3,
        },
    );
    assert_eq!(ret.result, Err(SyscallError::Denied));

    // Root grants the domain over an endpoint; afterwards the child may.
    let e = ok(&mut k, 0, SyscallArgs::NewEndpoint { slot: 0 }) as usize;
    k.pm.install_descriptor(t2, 0, e).unwrap();
    let (ret, _) = audited_syscall(&mut k, 1, SyscallArgs::Recv { slot: 0 });
    assert!(ret.is_ok());
    ok(
        &mut k,
        0,
        SyscallArgs::Send {
            slot: 0,
            scalars: [0; 4],
            grant_page_va: None,
            grant_endpoint_slot: None,
            grant_iommu_domain: Some(dom),
        },
    );
    let msg = k.syscall(1, SyscallArgs::TakeMsg);
    assert!(msg.is_ok());
    ok(
        &mut k,
        1,
        SyscallArgs::IommuAttach {
            domain: dom,
            device: 3,
        },
    );
    assert!(k.wf().is_ok(), "{:?}", k.wf());
    let _ = init_proc;
}

#[test]
fn container_termination_tears_down_its_domains() {
    let mut k = Kernel::boot(KernelConfig {
        mem_mib: 64,
        ncpus: 2,
        root_quota: 2048,
    });
    let c = ok(
        &mut k,
        0,
        SyscallArgs::NewContainer {
            quota: 64,
            cpus: vec![1],
        },
    ) as usize;
    let p = ok(&mut k, 0, SyscallArgs::NewProcess { cntr: c }) as usize;
    ok(&mut k, 0, SyscallArgs::NewThread { proc: p, cpu: 1 });
    k.pm.timer_tick(1);

    // The child's thread creates a domain, attaches a device and maps a
    // DMA buffer.
    ok(
        &mut k,
        1,
        SyscallArgs::Mmap {
            va_base: 0x4000_0000,
            len: 1,
            writable: true,
        },
    );
    let dom = ok(&mut k, 1, SyscallArgs::IommuCreateDomain) as u32;
    ok(
        &mut k,
        1,
        SyscallArgs::IommuAttach {
            domain: dom,
            device: 9,
        },
    );
    ok(
        &mut k,
        1,
        SyscallArgs::IommuMap {
            domain: dom,
            iova: 0x20_0000,
            va: 0x4000_0000,
        },
    );
    assert_eq!(k.mem.vm.iommu.domain_count(), 1);

    // Kill the container: the domain, its device binding, its DMA
    // mappings and its frames all disappear; nothing leaks.
    let free_expected = {
        let before = k.mem.alloc.free_pages_4k().len();
        ok(&mut k, 0, SyscallArgs::TerminateContainer { cntr: c });
        before
    };
    assert_eq!(k.mem.vm.iommu.domain_count(), 0);
    assert_eq!(k.mem.vm.iommu.translate(9, VAddr(0x20_0000)), None);
    assert!(
        k.mem.alloc.free_pages_4k().len() > free_expected,
        "frames returned"
    );
    assert!(k.mem.alloc.mapped_pages().is_empty());
    assert!(k.wf().is_ok(), "{:?}", k.wf());
}
