//! End-to-end non-interference: long randomized trials of the A/B/V
//! configuration across many seeds (§4.3's theorem, executed).

use atmosphere::kernel::iso::{domain_sets, endpoint_iso, memory_iso, t_x_wf};
use atmosphere::kernel::noninterf::{
    check_output_consistency, run_noninterference_trial, setup_abv,
};
use atmosphere::kernel::vservice::{VService, OP_GET, OP_PUT};
use atmosphere::kernel::SyscallArgs;
use atmosphere::spec::harness::Invariant;

#[test]
fn noninterference_holds_across_seeds() {
    for seed in [1u64, 42, 0xdead, 0xbeef, 31337] {
        run_noninterference_trial(120, seed).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}

#[test]
fn output_consistency_across_seeds() {
    for seed in [3u64, 17, 255] {
        check_output_consistency(80, seed).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}

#[test]
fn isolation_survives_service_traffic() {
    // A and B both talk to V concurrently; isolation between A and B must
    // hold at every interleaving point.
    let (mut k, sc) = setup_abv();
    let mut v = VService::new(sc.tv, sc.cpu_v);

    for round in 0..20u64 {
        let _ = k.syscall(
            sc.cpu_a,
            SyscallArgs::Send {
                slot: 0,
                scalars: [OP_PUT, round, 0, 0],
                grant_page_va: None,
                grant_endpoint_slot: None,
                grant_iommu_domain: None,
            },
        );
        let _ = k.syscall(
            sc.cpu_b,
            SyscallArgs::Send {
                slot: 0,
                scalars: [OP_PUT, 1000 + round, 0, 0],
                grant_page_va: None,
                grant_endpoint_slot: None,
                grant_iommu_domain: None,
            },
        );
        v.step(&mut k);

        let psi = k.view();
        let da = domain_sets(&psi, sc.a);
        let db = domain_sets(&psi, sc.b);
        assert!(
            memory_iso(&psi, &da.processes, &db.processes),
            "round {round}"
        );
        assert!(
            endpoint_iso(&psi, &da.threads, &db.threads),
            "round {round}"
        );
        assert!(t_x_wf(&psi, sc.a, &da.threads));
        assert!(k.wf().is_ok(), "round {round}: {:?}", k.wf());
    }
    assert!(v.spec_wf(&k).is_ok());

    // Sums stayed per-client.
    let _ = k.syscall(
        sc.cpu_a,
        SyscallArgs::Call {
            slot: 0,
            scalars: [OP_GET, 0, 0, 0],
        },
    );
    v.step(&mut k);
    let a_sum = k.syscall(sc.cpu_a, SyscallArgs::TakeMsg).val0();
    assert_eq!(a_sum, (0..20).sum::<u64>());
}

#[test]
fn terminating_a_client_does_not_disturb_the_other() {
    let (mut k, sc) = setup_abv();
    let mut v = VService::new(sc.tv, sc.cpu_v);

    // B builds up state.
    let _ = k.syscall(
        sc.cpu_b,
        SyscallArgs::Send {
            slot: 0,
            scalars: [OP_PUT, 55, 0, 0],
            grant_page_va: None,
            grant_endpoint_slot: None,
            grant_iommu_domain: None,
        },
    );
    v.step(&mut k);

    let obs_b_before = atmosphere::kernel::noninterf::observable_state(&k.view(), sc.b);

    // A crashes hard.
    let _ = k.syscall(0, SyscallArgs::TerminateContainer { cntr: sc.a });
    v.cleanup_client(&mut k, 0);
    assert!(k.wf().is_ok(), "{:?}", k.wf());

    // B's observable state is unchanged and its session still works.
    let obs_b_after = atmosphere::kernel::noninterf::observable_state(&k.view(), sc.b);
    assert_eq!(obs_b_before, obs_b_after);
    let _ = k.syscall(
        sc.cpu_b,
        SyscallArgs::Call {
            slot: 0,
            scalars: [OP_GET, 0, 0, 0],
        },
    );
    v.step(&mut k);
    assert_eq!(k.syscall(sc.cpu_b, SyscallArgs::TakeMsg).val0(), 55);
}
