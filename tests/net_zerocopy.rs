//! The zero-copy network datapath end to end: DMA-pinned packet pools
//! inside the kernel's leak-freedom closure, RSS flow steering across
//! run-to-completion workers, applications (Maglev, kv-store, httpd)
//! over borrowed NIC slots, and exhaustion as backpressure.

use atmosphere::apps::httpd::Httpd;
use atmosphere::apps::kvstore::{KvRequest, KvResponse, KvStore};
use atmosphere::apps::maglev::MaglevTable;
use atmosphere::drivers::pkt;
use atmosphere::drivers::{
    DriverCosts, IxgbeDevice, IxgbeDriver, PktBuf, PktPool, RssSteer, SpscRing, SLOTS_PER_PAGE,
};
use atmosphere::hw::cycles::CycleMeter;
use atmosphere::hw::PAGE_SIZE_2M;
use atmosphere::kernel::refine::audited_syscall;
use atmosphere::kernel::smp::SmpKernel;
use atmosphere::kernel::{Kernel, KernelConfig, SyscallArgs};
use atmosphere::spec::harness::Invariant;

const FREQ: u64 = 2_200_000_000;
const PAGE_4K: usize = 0x1000;
const VA: usize = 0x4000_0000;
const IOVA: usize = 0x10_0000;

fn ok(k: &mut Kernel, cpu: usize, args: SyscallArgs) -> u64 {
    let (ret, audit) = audited_syscall(k, cpu, args.clone());
    audit.unwrap_or_else(|e| panic!("{args:?}: {e}"));
    assert!(ret.is_ok(), "{args:?} failed: {ret:?}");
    ret.val0()
}

/// Mmaps `npages` at `VA`, DMA-pins each through the IOMMU on `device`,
/// unmaps the process window (the pin keeps the frames alive), and
/// returns the pinned frames — the kernel-side setup for
/// [`PktPool::from_frames`].
fn pin_pool_pages(k: &mut Kernel, npages: usize, device: u16) -> (u32, Vec<usize>) {
    ok(
        k,
        0,
        SyscallArgs::Mmap {
            va_base: VA,
            len: npages,
            writable: true,
        },
    );
    let dom = ok(k, 0, SyscallArgs::IommuCreateDomain) as u32;
    ok(
        k,
        0,
        SyscallArgs::IommuAttach {
            domain: dom,
            device,
        },
    );
    for i in 0..npages {
        ok(
            k,
            0,
            SyscallArgs::IommuMap {
                domain: dom,
                iova: IOVA + i * PAGE_4K,
                va: VA + i * PAGE_4K,
            },
        );
    }
    let as_id = k.pm.proc(k.init_proc).addr_space;
    let frames: Vec<usize> = (0..npages)
        .map(|i| {
            k.mem
                .vm
                .table(as_id)
                .unwrap()
                .map_4k
                .index(&(VA + i * PAGE_4K))
                .unwrap()
                .frame
        })
        .collect();
    ok(
        k,
        0,
        SyscallArgs::Munmap {
            va_base: VA,
            len: npages,
        },
    );
    (dom, frames)
}

/// Unpins the pool's frames and audits that every one returned.
fn unpin_pool_pages(k: &mut Kernel, dom: u32, device: u16, frames: &[usize]) {
    for i in 0..frames.len() {
        ok(
            k,
            0,
            SyscallArgs::IommuUnmap {
                domain: dom,
                iova: IOVA + i * PAGE_4K,
            },
        );
    }
    for &f in frames {
        assert!(k.mem.alloc.page_is_free(f), "frame returned on unpin");
    }
    ok(k, 0, SyscallArgs::IommuDetach { device });
    assert!(k.mem.alloc.mapped_pages().is_empty(), "no frames leaked");
    assert!(k.wf().is_ok(), "{:?}", k.wf());
}

#[test]
fn dma_pinned_pool_stays_in_page_closure_for_its_whole_lifetime() {
    let mut k = Kernel::boot(KernelConfig {
        mem_mib: 64,
        ncpus: 1,
        root_quota: 2048,
    });
    let (dom, frames) = pin_pool_pages(&mut k, 32, 7);
    for &f in &frames {
        assert_eq!(k.mem.alloc.map_refcnt(f), 1, "DMA pin holds the frame");
    }
    assert!(k.wf().is_ok(), "pinned pages: {:?}", k.wf());

    let mut pool = PktPool::from_frames(frames.clone());
    assert_eq!(pool.nslots(), 32 * SLOTS_PER_PAGE);
    let mut drv = IxgbeDriver::new(IxgbeDevice::new(FREQ), DriverCosts::atmosphere());
    let mut meter = CycleMeter::new();
    let mut bufs: Vec<PktBuf> = Vec::new();
    drv.rx_batch_zc(&mut meter, &mut pool, &mut bufs, 16);
    assert!(!bufs.is_empty());

    // Audit leak freedom *while handles are in flight*: the frames'
    // membership in page_closure() comes from the IOMMU pin, so the
    // pool's internal state is irrelevant to the kernel equation.
    assert!(k.wf().is_ok(), "in-flight handles: {:?}", k.wf());
    assert!(pool.is_wf(), "{:?}", pool.wf());

    // A mid-pipeline drop releases through the pool; the rest transmit.
    let dropped = bufs.pop().expect("at least one handle");
    pool.release(dropped);
    drv.tx_batch_zc(&mut meter, &mut pool, &mut bufs);
    assert_eq!(pool.in_flight(), 0);

    let reclaimed = pool.into_frames();
    assert_eq!(reclaimed, frames);
    unpin_pool_pages(&mut k, dom, 7, &reclaimed);
}

#[test]
fn smp_audit_covers_the_pool_with_handles_in_flight() {
    // The sharded kernel's stop-the-world audit must hold while a second
    // CPU's worker keeps pool handles outstanding.
    let mut k = Kernel::boot(KernelConfig {
        mem_mib: 64,
        ncpus: 2,
        root_quota: 2048,
    });
    let (dom, frames) = pin_pool_pages(&mut k, 16, 7);
    let init_proc = k.init_proc;
    ok(
        &mut k,
        0,
        SyscallArgs::NewThread {
            proc: init_proc,
            cpu: 1,
        },
    );
    k.pm.timer_tick(1);
    let k = SmpKernel::new(k);

    let mut pool = PktPool::from_frames(frames);
    pool.attach_trace(k.trace().clone());
    let mut drv = IxgbeDriver::new(IxgbeDevice::new(FREQ), DriverCosts::atmosphere());
    let mut meter = CycleMeter::new();
    let mut bufs: Vec<PktBuf> = Vec::new();
    drv.rx_batch_zc(&mut meter, &mut pool, &mut bufs, 8);
    assert!(!bufs.is_empty());

    // Scheduler churn on CPU 1, then the audit with handles live.
    let r = k.syscall(1, SyscallArgs::Yield);
    assert!(r.is_ok(), "{r:?}");
    let audit = k.audit_total_wf();
    assert!(audit.is_ok(), "audit with in-flight handles: {audit:?}");

    drv.tx_batch_zc(&mut meter, &mut pool, &mut bufs);
    let audit = k.audit_total_wf();
    assert!(audit.is_ok(), "{audit:?}");

    let reclaimed = pool.into_frames();
    k.with_kernel(|uk| unpin_pool_pages(uk, dom, 7, &reclaimed));
}

/// Conditions the 4 KiB freelist so its head sits on a fully-free 2 MiB
/// boundary (compact version of the superpage test helper), making the
/// following 512-page `Mmap` promote.
fn align_freelist_and_mmap_512(k: &mut Kernel, va: usize) -> usize {
    const FILLER_VA: usize = 0x7000_0000;
    for base in [va + PAGE_SIZE_2M, FILLER_VA] {
        ok(
            k,
            0,
            SyscallArgs::Mmap {
                va_base: base,
                len: 1,
                writable: true,
            },
        );
        ok(
            k,
            0,
            SyscallArgs::Munmap {
                va_base: base,
                len: 1,
            },
        );
    }
    let free: std::collections::BTreeSet<usize> =
        k.mem.alloc.free_pages_4k().iter().copied().collect();
    let lowest = *free.iter().next().expect("free memory");
    let mut head = lowest.next_multiple_of(PAGE_SIZE_2M);
    while !(0..512).all(|i| free.contains(&(head + i * PAGE_4K))) {
        head += PAGE_SIZE_2M;
    }
    let filler = free.iter().filter(|&&p| p < head).count();
    if filler > 0 {
        ok(
            k,
            0,
            SyscallArgs::Mmap {
                va_base: FILLER_VA,
                len: filler,
                writable: true,
            },
        );
    }
    ok(
        k,
        0,
        SyscallArgs::Mmap {
            va_base: va,
            len: 512,
            writable: true,
        },
    );
    filler
}

#[test]
fn pinning_pool_pages_demotes_the_superpage_first() {
    // PR 4's demotion rule applied to the pool: pinning pages out of a
    // promoted 2 MiB run transparently demotes it, and the pool's frames
    // are exactly the ones the superpage covered.
    let mut k = Kernel::boot(KernelConfig {
        mem_mib: 64,
        ncpus: 1,
        root_quota: 2048,
    });
    let filler = align_freelist_and_mmap_512(&mut k, VA);
    assert_eq!(k.trace_snapshot().counters.vm.superpage_promotions, 1);

    const NPOOL: usize = 16;
    let dom = ok(&mut k, 0, SyscallArgs::IommuCreateDomain) as u32;
    ok(
        &mut k,
        0,
        SyscallArgs::IommuAttach {
            domain: dom,
            device: 7,
        },
    );
    for i in 0..NPOOL {
        ok(
            &mut k,
            0,
            SyscallArgs::IommuMap {
                domain: dom,
                iova: IOVA + i * PAGE_4K,
                va: VA + i * PAGE_4K,
            },
        );
    }
    let snap = k.trace_snapshot();
    assert_eq!(
        snap.counters.vm.superpage_demotions, 1,
        "the first pin demotes; later pins find 4 KiB entries"
    );

    let as_id = k.pm.proc(k.init_proc).addr_space;
    let frames: Vec<usize> = (0..NPOOL)
        .map(|i| {
            k.mem
                .vm
                .table(as_id)
                .unwrap()
                .map_4k
                .index(&(VA + i * PAGE_4K))
                .unwrap()
                .frame
        })
        .collect();
    // The run's frames are contiguous, so the demoted slice must be too.
    for w in frames.windows(2) {
        assert_eq!(w[1], w[0] + PAGE_4K, "pool frames come from the run");
    }
    ok(
        &mut k,
        0,
        SyscallArgs::Munmap {
            va_base: VA,
            len: 512,
        },
    );
    if filler > 0 {
        ok(
            &mut k,
            0,
            SyscallArgs::Munmap {
                va_base: 0x7000_0000,
                len: filler,
            },
        );
    }
    assert!(k.wf().is_ok(), "{:?}", k.wf());

    let mut pool = PktPool::from_frames(frames);
    let mut buf = pool.try_acquire().expect("fresh pool has slots");
    let len = pkt::write_udp64(pool.slot_mut(&buf), 1);
    buf.set_len(len);
    assert_eq!(pkt::seq_of(pool.data(&buf)), Some(1));
    pool.release(buf);
    assert!(pool.is_wf(), "{:?}", pool.wf());

    let reclaimed = pool.into_frames();
    unpin_pool_pages(&mut k, dom, 7, &reclaimed);
}

#[test]
fn steered_workers_process_pairwise_disjoint_flows() {
    // Four run-to-completion workers on four RSS queues: every frame a
    // worker sees hashes to its queue, and the per-worker flow-key sets
    // are pairwise disjoint — no flow is ever split across CPUs.
    const NQ: usize = 4;
    let table = MaglevTable::new(&(0..4).map(|i| format!("b{i}")).collect::<Vec<_>>(), 65537);
    let steer = RssSteer::new(NQ);
    let mut seen: Vec<std::collections::BTreeSet<[u8; 13]>> = vec![Default::default(); NQ];
    for (q, seen_q) in seen.iter_mut().enumerate() {
        let mut drv =
            IxgbeDriver::new(IxgbeDevice::steered(FREQ, NQ, q), DriverCosts::atmosphere());
        let mut pool = PktPool::anonymous(64);
        let mut meter = CycleMeter::new();
        let mut bufs: Vec<PktBuf> = Vec::new();
        let mut done = 0;
        while done < 2000 {
            done += drv.rx_batch_zc(&mut meter, &mut pool, &mut bufs, 32);
            for buf in bufs.iter() {
                let key = pkt::flow_key_of(pool.data(buf)).expect("generated frames parse");
                assert_eq!(steer.queue_of_key(&key), q, "frame on the wrong queue");
                seen_q.insert(key);
                table
                    .process_frame(pool.data_mut(buf))
                    .expect("generated frames parse");
            }
            drv.tx_batch_zc(&mut meter, &mut pool, &mut bufs);
        }
        assert!(!seen_q.is_empty());
        assert_eq!(pool.in_flight(), 0);
    }
    for a in 0..NQ {
        for b in a + 1..NQ {
            assert!(
                seen[a].is_disjoint(&seen[b]),
                "queues {a} and {b} share a flow"
            );
        }
    }
    let covered: usize = seen.iter().map(|s| s.len()).sum();
    assert_eq!(
        covered,
        atmosphere::drivers::RSS_FLOW_PERIOD as usize,
        "the workers jointly cover the whole flow space"
    );
}

#[test]
fn kv_store_over_the_steered_zero_copy_path() {
    // Two kv-store shards, one per steered queue: requests are derived
    // from each frame's sequence number, written into the NIC slot in
    // place, parsed back out of the borrowed view, and served against a
    // reference model. The shards' request streams are disjoint by RSS.
    const NQ: usize = 2;
    let mut seqs: Vec<std::collections::BTreeSet<u64>> = vec![Default::default(); NQ];
    for (q, seqs_q) in seqs.iter_mut().enumerate() {
        let mut kv = KvStore::with_capacity(1 << 10);
        let mut reference = std::collections::BTreeMap::new();
        let mut drv =
            IxgbeDriver::new(IxgbeDevice::steered(FREQ, NQ, q), DriverCosts::atmosphere());
        let mut pool = PktPool::anonymous(64);
        let mut meter = CycleMeter::new();
        let mut bufs: Vec<PktBuf> = Vec::new();
        let mut served = 0;
        while served < 1000 {
            drv.rx_batch_zc(&mut meter, &mut pool, &mut bufs, 32);
            for buf in bufs.iter_mut() {
                let seq = pkt::seq_of(pool.data(buf)).expect("generated frames parse");
                assert!(seqs_q.insert(seq), "seq delivered twice");
                let key = (seq % 64).to_le_bytes().to_vec();
                let req = match seq % 3 {
                    0 => KvRequest::Set(key.clone(), seq.to_be_bytes().to_vec()),
                    1 => KvRequest::Get(key.clone()),
                    _ => KvRequest::Delete(key.clone()),
                };
                // The request rides in the UDP payload of the NIC slot:
                // written in place, parsed back from the borrowed view.
                let wire = req.encode();
                let slot = pool.slot_mut(buf);
                slot[50..50 + wire.len()].copy_from_slice(&wire);
                buf.set_len(50 + wire.len());
                let decoded =
                    KvRequest::decode(&pool.data(buf)[50..]).expect("wire format roundtrips");
                assert_eq!(decoded, req);
                let resp = kv.serve(&decoded);
                match &req {
                    KvRequest::Set(k, v) => {
                        assert_eq!(resp, KvResponse::Stored);
                        reference.insert(k.clone(), v.clone());
                    }
                    KvRequest::Get(k) => match reference.get(k) {
                        Some(v) => assert_eq!(resp, KvResponse::Value(v.clone())),
                        None => assert_eq!(resp, KvResponse::Miss),
                    },
                    KvRequest::Delete(k) => {
                        if reference.remove(k).is_some() {
                            assert_eq!(resp, KvResponse::Deleted);
                        } else {
                            assert_eq!(resp, KvResponse::Miss);
                        }
                    }
                }
                served += 1;
            }
            drv.tx_batch_zc(&mut meter, &mut pool, &mut bufs);
        }
        assert_eq!(pool.in_flight(), 0);
        assert_eq!(pool.exhausted(), 0);
    }
    assert!(
        seqs[0].is_disjoint(&seqs[1]),
        "RSS must partition the request stream"
    );
}

#[test]
fn httpd_over_the_zero_copy_path() {
    // HTTP requests carried in NIC slots: the request line is written
    // into the borrowed slot, fed to the real server, and every response
    // is checked. One connection per flow residue keeps it round-robin.
    let mut srv = Httpd::new();
    srv.add_page("/p0", b"zero");
    srv.add_page("/p1", b"one");
    let conns: Vec<usize> = (0..4).map(|_| srv.open_connection()).collect();

    let mut drv = IxgbeDriver::new(IxgbeDevice::new(FREQ), DriverCosts::atmosphere());
    let mut pool = PktPool::anonymous(64);
    let mut meter = CycleMeter::new();
    let mut bufs: Vec<PktBuf> = Vec::new();
    let mut sent = 0u64;
    while sent < 200 {
        drv.rx_batch_zc(&mut meter, &mut pool, &mut bufs, 16);
        for buf in bufs.iter_mut() {
            let seq = pkt::seq_of(pool.data(buf)).expect("generated frames parse");
            let req = format!("GET /p{} HTTP/1.1\r\n\r\n", seq % 3);
            let slot = pool.slot_mut(buf);
            slot[50..50 + req.len()].copy_from_slice(req.as_bytes());
            buf.set_len(50 + req.len());
            srv.client_send(conns[(seq % 4) as usize], &pool.data(buf)[50..]);
            sent += 1;
        }
        drv.tx_batch_zc(&mut meter, &mut pool, &mut bufs);
        while srv.poll_step() > 0 {}
    }
    assert_eq!(srv.served, sent);
    for (i, &c) in conns.iter().enumerate() {
        let resp = srv.client_recv(c);
        assert!(!resp.is_empty(), "connection {i} got responses");
        let text = String::from_utf8_lossy(&resp);
        assert!(text.starts_with("HTTP/1.1"), "well-formed response");
        assert!(!text.contains("HTTP/1.1 400"), "no malformed requests");
    }
    assert_eq!(pool.in_flight(), 0);
}

#[test]
fn exhaustion_backpressure_end_to_end() {
    // An app stage that stalls (stops draining its ring) exhausts the
    // pool; RX degrades to taking nothing — never panicking, never
    // dropping a consumed frame — and resumes exactly where it left off
    // once the app drains.
    let mut drv = IxgbeDriver::new(IxgbeDevice::new(FREQ), DriverCosts::atmosphere());
    let mut pool = PktPool::anonymous(16);
    let mut ring: SpscRing<PktBuf> = SpscRing::new(32);
    let mut meter = CycleMeter::new();
    meter.charge(1_000_000); // deep wire-side backlog

    // The stalled app: RX keeps filling the ring until the pool is dry.
    let mut bufs: Vec<PktBuf> = Vec::new();
    let mut taken = 0;
    loop {
        let n = drv.rx_batch_zc(&mut meter, &mut pool, &mut bufs, 8);
        for b in bufs.drain(..) {
            ring.enqueue(b).expect("ring outlasts the pool");
        }
        taken += n;
        if n == 0 {
            break;
        }
    }
    assert_eq!(taken, 16, "RX stopped at pool capacity");
    assert!(pool.exhausted() > 0, "exhaustion observed, not panicked");
    let consumed_at_stall = drv.device.rx_count();

    // The app wakes up and drains: every slot returns, RX resumes.
    let mut app: Vec<PktBuf> = Vec::new();
    ring.dequeue_into(&mut app, 32);
    drv.tx_batch_zc(&mut meter, &mut pool, &mut app);
    assert_eq!(pool.in_flight(), 0);
    let n = drv.rx_batch_zc(&mut meter, &mut pool, &mut bufs, 8);
    assert_eq!(n, 8, "full batch after recovery");
    assert_eq!(
        drv.device.rx_count(),
        consumed_at_stall + 8,
        "no frame was consumed during the stall"
    );
    drv.tx_batch_zc(&mut meter, &mut pool, &mut bufs);
    assert!(pool.is_wf(), "{:?}", pool.wf());
}
