//! The full mixed-criticality deployment of Figure 1, run as a scheduled
//! system: client *programs* in containers A and B execute under timer
//! preemption on their reserved CPUs while the verified service V polls
//! on its own core — all isolation and functional-correctness properties
//! checked at the end of the run.

use atmosphere::kernel::iso::{domain_sets, endpoint_iso, memory_iso};
use atmosphere::kernel::noninterf::setup_abv;
use atmosphere::kernel::runner::{Action, SystemRunner, UserProgram};
use atmosphere::kernel::vservice::{VService, OP_GET, OP_PUT};
use atmosphere::kernel::{SyscallArgs, SyscallReturn};
use atmosphere::spec::harness::Invariant;

/// A client program: PUT `values` one by one, then GET the sum via
/// call/reply, then finish (keeping the thread alive so the container
/// stays populated).
struct Client {
    values: Vec<u64>,
    next: usize,
    state: ClientState,
    observed_sum: Option<u64>,
}

enum ClientState {
    Putting,
    Calling,
    AwaitingReply,
    Finished,
}

impl UserProgram for Client {
    fn next(&mut self, last: Option<SyscallReturn>) -> Action {
        match self.state {
            ClientState::Putting => {
                if self.next < self.values.len() {
                    let v = self.values[self.next];
                    self.next += 1;
                    Action::Syscall(SyscallArgs::Send {
                        slot: 0,
                        scalars: [OP_PUT, v, 0, 0],
                        grant_page_va: None,
                        grant_endpoint_slot: None,
                        grant_iommu_domain: None,
                    })
                } else {
                    self.state = ClientState::Calling;
                    Action::Syscall(SyscallArgs::Call {
                        slot: 0,
                        scalars: [OP_GET, 0, 0, 0],
                    })
                }
            }
            ClientState::Calling => {
                // The call returned (we were woken by the reply); fetch it.
                self.state = ClientState::AwaitingReply;
                Action::Syscall(SyscallArgs::TakeMsg)
            }
            ClientState::AwaitingReply => {
                if let Some(r) = last {
                    if let Ok(vals) = r.result {
                        self.observed_sum = Some(vals[0]);
                        self.state = ClientState::Finished;
                        return Action::Compute; // idle from now on
                    }
                }
                // Reply not there yet; retry.
                Action::Syscall(SyscallArgs::TakeMsg)
            }
            ClientState::Finished => Action::Compute,
        }
    }
}

#[test]
fn scheduled_clients_and_service_interleave_correctly() {
    let (mut k, sc) = setup_abv();
    let mut v = VService::new(sc.tv, sc.cpu_v);
    let mut runner = SystemRunner::new();

    let a_values: Vec<u64> = (1..=10).collect(); // sum 55
    let b_values: Vec<u64> = (100..110).collect(); // sum 1045
    runner.register(
        sc.ta,
        Box::new(Client {
            values: a_values.clone(),
            next: 0,
            state: ClientState::Putting,
            observed_sum: None,
        }),
    );
    runner.register(
        sc.tb,
        Box::new(Client {
            values: b_values.clone(),
            next: 0,
            state: ClientState::Putting,
            observed_sum: None,
        }),
    );

    // Interleave: client quanta on CPUs 1–2 (with preemption), V polling
    // on CPU 3, isolation checked periodically.
    for round in 0..400 {
        runner.step(&mut k, sc.cpu_a);
        runner.step(&mut k, sc.cpu_b);
        v.step(&mut k);
        if round % 25 == 0 {
            let psi = k.view();
            let da = domain_sets(&psi, sc.a);
            let db = domain_sets(&psi, sc.b);
            assert!(
                memory_iso(&psi, &da.processes, &db.processes),
                "round {round}"
            );
            assert!(
                endpoint_iso(&psi, &da.threads, &db.threads),
                "round {round}"
            );
            assert!(k.wf().is_ok(), "round {round}: {:?}", k.wf());
        }
    }

    // Both clients observed exactly their own sums.
    assert_eq!(v.sessions[0].sum, a_values.iter().sum::<u64>());
    assert_eq!(v.sessions[1].sum, b_values.iter().sum::<u64>());
    assert!(v.spec_wf(&k).is_ok(), "{:?}", v.spec_wf(&k));
    assert!(k.wf().is_ok(), "{:?}", k.wf());
    // The runner's program state is internal; verify through V's replies
    // delivered to the clients (their threads hold no stale messages).
    assert!(k.pm.thrd(sc.ta).ipc_buf.is_none());
    assert!(k.pm.thrd(sc.tb).ipc_buf.is_none());
}
