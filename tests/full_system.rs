//! End-to-end system tests spanning all crates: lifecycle, memory
//! accounting, and the kernel-wide safety/leak-freedom equations under
//! sustained audited use.

use atmosphere::kernel::refine::audited_syscall;
use atmosphere::kernel::{Kernel, KernelConfig, SyscallArgs};
use atmosphere::mem::PageClosure;
use atmosphere::spec::harness::Invariant;

/// Runs a syscall and asserts both the result and the audit.
fn ok(k: &mut Kernel, cpu: usize, args: SyscallArgs) -> u64 {
    let (ret, audit) = audited_syscall(k, cpu, args.clone());
    audit.unwrap_or_else(|e| panic!("{args:?}: {e}"));
    assert!(ret.is_ok(), "{args:?} failed: {ret:?}");
    ret.val0()
}

#[test]
fn nested_containers_full_lifecycle() {
    let mut k = Kernel::boot(KernelConfig {
        mem_mib: 64,
        ncpus: 4,
        root_quota: 2048,
    });
    let free_before = k.mem.alloc.free_pages_4k().len();

    // Three-level container hierarchy with processes and threads.
    let c1 = ok(
        &mut k,
        0,
        SyscallArgs::NewContainer {
            quota: 512,
            cpus: vec![1, 2],
        },
    ) as usize;
    let p1 = ok(&mut k, 0, SyscallArgs::NewProcess { cntr: c1 }) as usize;
    ok(&mut k, 0, SyscallArgs::NewThread { proc: p1, cpu: 1 });

    // The child's thread builds a grandchild container.
    k.pm.timer_tick(1);
    let c2 = ok(
        &mut k,
        1,
        SyscallArgs::NewContainer {
            quota: 128,
            cpus: vec![2],
        },
    ) as usize;
    let p2 = ok(&mut k, 1, SyscallArgs::NewProcess { cntr: c2 }) as usize;
    ok(&mut k, 1, SyscallArgs::NewThread { proc: p2, cpu: 2 });

    // The grandchild's thread maps memory.
    k.pm.timer_tick(2);
    ok(
        &mut k,
        2,
        SyscallArgs::Mmap {
            va_base: 0x4000_0000,
            len: 32,
            writable: true,
        },
    );
    assert!(k.wf().is_ok(), "{:?}", k.wf());

    // Root terminates the whole tree; every page must come back.
    ok(&mut k, 0, SyscallArgs::TerminateContainer { cntr: c1 });
    assert_eq!(k.mem.alloc.free_pages_4k().len(), free_before);
    assert!(k.pm.cntr(k.root_container).subtree.is_empty());
    assert!(k.wf().is_ok(), "{:?}", k.wf());
}

#[test]
fn kernel_wide_memory_equation_holds_under_load() {
    // §4.2: subsystem closures partition `allocated`; mapped frames equal
    // address-space references. Exercised with interleaved allocation,
    // mapping, IPC and teardown.
    let mut k = Kernel::boot(KernelConfig::default());
    let c = ok(
        &mut k,
        0,
        SyscallArgs::NewContainer {
            quota: 512,
            cpus: vec![1],
        },
    ) as usize;
    let p = ok(&mut k, 0, SyscallArgs::NewProcess { cntr: c }) as usize;
    ok(&mut k, 0, SyscallArgs::NewThread { proc: p, cpu: 1 });
    k.pm.timer_tick(1);

    for round in 0..8usize {
        let base = 0x4000_0000 + round * 0x10_0000;
        ok(
            &mut k,
            1,
            SyscallArgs::Mmap {
                va_base: base,
                len: 8,
                writable: true,
            },
        );
        if round % 2 == 1 {
            ok(
                &mut k,
                1,
                SyscallArgs::Munmap {
                    va_base: base,
                    len: 4,
                },
            );
        }
        // The equation is re-checked by every audit; assert it explicitly
        // once more via the closures.
        let pm_c = k.pm.page_closure();
        let vm_c = k.mem.vm.page_closure();
        assert!(pm_c.disjoint(&vm_c));
        assert_eq!(pm_c.union(&vm_c), k.mem.alloc.allocated_pages());
    }
    ok(&mut k, 0, SyscallArgs::TerminateContainer { cntr: c });
    assert!(k.wf().is_ok());
}

#[test]
fn quota_exhaustion_and_recovery() {
    let mut k = Kernel::boot(KernelConfig {
        mem_mib: 64,
        ncpus: 2,
        root_quota: 2048,
    });
    let c = ok(
        &mut k,
        0,
        SyscallArgs::NewContainer {
            quota: 16,
            cpus: vec![1],
        },
    ) as usize;
    let p = ok(&mut k, 0, SyscallArgs::NewProcess { cntr: c }) as usize;
    ok(&mut k, 0, SyscallArgs::NewThread { proc: p, cpu: 1 });
    k.pm.timer_tick(1);

    // 16-page quota, 2 already used (process + thread): 14 left.
    let (ret, audit) = audited_syscall(
        &mut k,
        1,
        SyscallArgs::Mmap {
            va_base: 0x4000_0000,
            len: 15,
            writable: true,
        },
    );
    assert!(!ret.is_ok(), "over-quota mmap must fail");
    audit.unwrap();
    // Exactly the remainder works.
    ok(
        &mut k,
        1,
        SyscallArgs::Mmap {
            va_base: 0x4000_0000,
            len: 14,
            writable: true,
        },
    );
    // Releasing pages frees quota again.
    ok(
        &mut k,
        1,
        SyscallArgs::Munmap {
            va_base: 0x4000_0000,
            len: 14,
        },
    );
    ok(
        &mut k,
        1,
        SyscallArgs::Mmap {
            va_base: 0x5000_0000,
            len: 5,
            writable: true,
        },
    );
    assert!(k.wf().is_ok());
}

#[test]
fn shared_memory_grant_end_to_end() {
    // Sender maps a page, grants it over an endpoint; receiver maps it;
    // both unmap; the frame returns to the allocator.
    let mut k = Kernel::boot(KernelConfig::default());
    let init_proc = k.init_proc;
    let t2 = ok(
        &mut k,
        0,
        SyscallArgs::NewThread {
            proc: init_proc,
            cpu: 1,
        },
    ) as usize;
    let e = ok(&mut k, 0, SyscallArgs::NewEndpoint { slot: 0 }) as usize;
    k.pm.install_descriptor(t2, 0, e).unwrap();

    ok(
        &mut k,
        0,
        SyscallArgs::Mmap {
            va_base: 0x4000_0000,
            len: 1,
            writable: true,
        },
    );
    let frame = {
        let as_id = k.pm.proc(k.init_proc).addr_space;
        k.mem
            .vm
            .table(as_id)
            .unwrap()
            .map_4k
            .index(&0x4000_0000)
            .unwrap()
            .frame
    };

    // Receiver waits; sender sends the page.
    k.pm.timer_tick(1);
    let (ret, audit) = audited_syscall(&mut k, 1, SyscallArgs::Recv { slot: 0 });
    assert!(ret.is_ok());
    audit.unwrap();
    let (ret, audit) = audited_syscall(
        &mut k,
        0,
        SyscallArgs::Send {
            slot: 0,
            scalars: [7, 0, 0, 0],
            grant_page_va: Some(0x4000_0000),
            grant_endpoint_slot: None,
            grant_iommu_domain: None,
        },
    );
    assert!(ret.is_ok());
    audit.unwrap();

    // Receiver (woken on CPU 1) takes the message and maps the grant.
    let msg = k.syscall(1, SyscallArgs::TakeMsg);
    assert!(msg.is_ok());
    assert_eq!(msg.result.unwrap()[3], 1, "page grant flagged");
    let (ret, audit) = audited_syscall(&mut k, 1, SyscallArgs::MapGranted { va: 0x7000_0000 });
    assert!(ret.is_ok());
    audit.unwrap();
    assert_eq!(
        k.mem.alloc.map_refcnt(frame),
        2,
        "both threads map the frame"
    );

    // Note: both threads share the init process here, so this is
    // intra-process sharing; cross-container sharing is exercised by the
    // V-service tests.
    ok(
        &mut k,
        1,
        SyscallArgs::Munmap {
            va_base: 0x7000_0000,
            len: 1,
        },
    );
    assert_eq!(k.mem.alloc.map_refcnt(frame), 1);
    k.pm.timer_tick(0);
    ok(
        &mut k,
        0,
        SyscallArgs::Munmap {
            va_base: 0x4000_0000,
            len: 1,
        },
    );
    assert!(k.mem.alloc.page_is_free(frame), "frame fully released");
    assert!(k.wf().is_ok(), "{:?}", k.wf());
}

#[test]
fn terminate_process_releases_mapped_memory() {
    let mut k = Kernel::boot(KernelConfig::default());
    let c = ok(
        &mut k,
        0,
        SyscallArgs::NewContainer {
            quota: 256,
            cpus: vec![1],
        },
    ) as usize;
    let p = ok(&mut k, 0, SyscallArgs::NewProcess { cntr: c }) as usize;
    ok(&mut k, 0, SyscallArgs::NewThread { proc: p, cpu: 1 });
    k.pm.timer_tick(1);
    ok(
        &mut k,
        1,
        SyscallArgs::Mmap {
            va_base: 0x4000_0000,
            len: 16,
            writable: true,
        },
    );
    let used_before = k.pm.cntr(c).used;
    assert!(used_before >= 18, "process + thread + 16 pages");

    ok(&mut k, 0, SyscallArgs::TerminateProcess { proc: p });
    assert_eq!(k.pm.cntr(c).used, 0, "all charges released");
    assert!(k.mem.alloc.mapped_pages().is_empty());
    assert!(k.wf().is_ok(), "{:?}", k.wf());
}
