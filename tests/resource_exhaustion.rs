//! Resource exhaustion: out-of-memory and capacity limits must surface
//! as clean errors, never as corruption — `total_wf` holds across every
//! failure, and failed operations roll back completely (the no-op-on-
//! error discipline of the specifications).

use atmosphere::kernel::refine::audited_syscall;
use atmosphere::kernel::{Kernel, KernelConfig, SyscallArgs, SyscallError};
use atmosphere::spec::harness::Invariant;

/// A machine so small that physical memory, not quota, is the binding
/// constraint (4 MiB = 1024 frames; quota nominally allows much more).
fn tiny_kernel() -> Kernel {
    Kernel::boot(KernelConfig {
        mem_mib: 4,
        ncpus: 1,
        root_quota: 1 << 20,
    })
}

#[test]
fn mmap_hits_physical_oom_cleanly() {
    let mut k = tiny_kernel();
    let mut mapped = 0usize;
    let mut failures = 0usize;
    for i in 0..40 {
        let (ret, audit) = audited_syscall(
            &mut k,
            0,
            SyscallArgs::Mmap {
                va_base: 0x4000_0000 + i * 0x40_000,
                len: 48,
                writable: true,
            },
        );
        audit.unwrap_or_else(|e| panic!("iteration {i}: {e}"));
        match ret.result {
            Ok(_) => mapped += 48,
            Err(SyscallError::NoMem) => {
                failures += 1;
                break;
            }
            Err(other) => panic!("unexpected error {other:?}"),
        }
    }
    assert!(failures > 0, "OOM never hit (mapped {mapped} pages)");
    assert!(mapped > 0, "some mappings succeeded first");
    assert!(k.wf().is_ok(), "{:?}", k.wf());

    // Partial-failure rollback: the failed mmap must not have consumed
    // quota; everything mapped remains exactly accounted.
    let used = k.pm.cntr(k.root_container).used;
    assert_eq!(used, 3 + mapped, "quota reflects only successful maps");
}

#[test]
fn object_creation_hits_oom_cleanly() {
    let mut k = tiny_kernel();
    // Exhaust memory with containers until allocation fails.
    let mut created = Vec::new();
    loop {
        let (ret, audit) = audited_syscall(
            &mut k,
            0,
            SyscallArgs::NewContainer {
                quota: 0,
                cpus: vec![],
            },
        );
        audit.unwrap();
        match ret.result {
            Ok(vals) => {
                created.push(vals[0] as usize);
                if created.len() > 2000 {
                    panic!("never ran out of memory");
                }
            }
            Err(SyscallError::NoMem) | Err(SyscallError::Capacity) => break,
            Err(other) => panic!("unexpected error {other:?}"),
        }
    }
    assert!(!created.is_empty());
    assert!(k.wf().is_ok(), "{:?}", k.wf());

    // Recovery: terminating one container frees a page; creation works
    // again (memory is harvested, not lost).
    let victim = created.pop().unwrap();
    let (ret, audit) = audited_syscall(&mut k, 0, SyscallArgs::TerminateContainer { cntr: victim });
    assert!(ret.is_ok());
    audit.unwrap();
    let (ret, audit) = audited_syscall(
        &mut k,
        0,
        SyscallArgs::NewContainer {
            quota: 0,
            cpus: vec![],
        },
    );
    audit.unwrap();
    assert!(ret.is_ok(), "memory recovered after termination: {ret:?}");
    assert!(k.wf().is_ok(), "{:?}", k.wf());
}

#[test]
fn child_container_capacity_limit() {
    use atmosphere::pm::MAX_CHILD_CONTAINERS;
    let mut k = Kernel::boot(KernelConfig {
        mem_mib: 64,
        ncpus: 1,
        root_quota: 4096,
    });
    for _ in 0..MAX_CHILD_CONTAINERS {
        let (ret, audit) = audited_syscall(
            &mut k,
            0,
            SyscallArgs::NewContainer {
                quota: 0,
                cpus: vec![],
            },
        );
        audit.unwrap();
        assert!(ret.is_ok());
    }
    let (ret, audit) = audited_syscall(
        &mut k,
        0,
        SyscallArgs::NewContainer {
            quota: 0,
            cpus: vec![],
        },
    );
    assert_eq!(ret.result, Err(SyscallError::Capacity));
    audit.unwrap();
    assert!(k.wf().is_ok());
}

#[test]
fn superpage_oom_rolls_back() {
    // 4 MiB cannot host a 2 MiB user block *and* the kernel objects on an
    // aligned run once fragmentation sets in; force the failure and check
    // the rollback.
    let mut k = tiny_kernel();
    // Fragment memory: map single pages spaced out.
    for i in 0..8 {
        let (ret, _) = audited_syscall(
            &mut k,
            0,
            SyscallArgs::Mmap {
                va_base: 0x4000_0000 + i * 0x10_0000,
                len: 1,
                writable: true,
            },
        );
        assert!(ret.is_ok());
    }
    let used_before = k.pm.cntr(k.root_container).used;
    let (ret, audit) = audited_syscall(
        &mut k,
        0,
        SyscallArgs::MmapHuge2M {
            va_base: 0x8000_0000,
            writable: true,
        },
    );
    audit.unwrap();
    if let Err(e) = ret.result {
        assert_eq!(e, SyscallError::NoMem);
        assert_eq!(k.pm.cntr(k.root_container).used, used_before, "rolled back");
    }
    assert!(k.wf().is_ok(), "{:?}", k.wf());
}

#[test]
fn boot_rejects_degenerate_configs() {
    // A quota below the boot objects is unbootable (fail-stop).
    let r = std::panic::catch_unwind(|| {
        Kernel::boot(KernelConfig {
            mem_mib: 4,
            ncpus: 1,
            root_quota: 1,
        })
    });
    assert!(r.is_err(), "boot with quota 1 must fail");
    let r = std::panic::catch_unwind(|| {
        Kernel::boot(KernelConfig {
            mem_mib: 4,
            ncpus: 0,
            root_quota: 64,
        })
    });
    assert!(r.is_err(), "boot with zero CPUs must fail");
}
