//! Randomized refinement exploration: arbitrary syscall sequences
//! (valid and garbage arguments alike), every transition audited against
//! `total_wf` and its specification — the dynamic analogue of the
//! kernel-wide refinement theorem (§4).
//!
//! Randomness comes from the in-repo deterministic [`XorShift64Star`]
//! generator, so every run explores the same sequences and failures
//! reproduce from the printed seed.

use atmosphere::kernel::refine::audited_syscall;
use atmosphere::kernel::{Kernel, KernelConfig, SyscallArgs};
use atmosphere::spec::XorShift64Star;

fn random_va(rng: &mut XorShift64Star) -> usize {
    0x4000_0000 + rng.below(48) * 0x1000
}

fn random_ptr(rng: &mut XorShift64Star) -> usize {
    match rng.below(3) {
        0 => 0,
        1 => 0xdead_b000,
        _ => 0x20_0000 + rng.below(8) * 0x1000,
    }
}

fn random_blk_ops(rng: &mut XorShift64Star) -> Vec<atmosphere::kernel::BlkOp> {
    (0..rng.below(4))
        .map(|i| atmosphere::kernel::BlkOp {
            cookie: rng.next_u64() % 8 + i as u64,
            iova: random_ptr(rng),
            lba: rng.next_u64() % 1024,
            write: rng.chance(1, 2),
        })
        .collect()
}

fn random_syscall(rng: &mut XorShift64Star) -> SyscallArgs {
    match rng.below(18) {
        0 => SyscallArgs::Mmap {
            va_base: random_va(rng),
            len: rng.range(1, 5),
            writable: rng.chance(1, 2),
        },
        1 => SyscallArgs::Munmap {
            va_base: random_va(rng),
            len: rng.range(1, 5),
        },
        2 => SyscallArgs::NewContainer {
            quota: rng.below(64),
            cpus: vec![],
        },
        3 => SyscallArgs::NewProcess {
            cntr: random_ptr(rng),
        },
        4 => SyscallArgs::TerminateContainer {
            cntr: random_ptr(rng),
        },
        5 => SyscallArgs::TerminateProcess {
            proc: random_ptr(rng),
        },
        6 => SyscallArgs::NewThread {
            proc: random_ptr(rng),
            cpu: rng.below(4),
        },
        7 => SyscallArgs::NewEndpoint {
            slot: rng.below(18),
        },
        8 => {
            let grant_page_va = rng.chance(1, 2).then(|| random_va(rng));
            SyscallArgs::Send {
                slot: rng.below(3),
                scalars: [rng.next_u64(), 0, 0, 0],
                grant_page_va,
                grant_endpoint_slot: None,
                grant_iommu_domain: None,
            }
        }
        9 => SyscallArgs::Poll { slot: rng.below(3) },
        10 => SyscallArgs::TakeMsg,
        11 => SyscallArgs::MapGranted { va: random_va(rng) },
        12 => SyscallArgs::DropGrant,
        13 => SyscallArgs::Call {
            slot: rng.below(3),
            scalars: [rng.next_u64(), 0, 0, 0],
        },
        14 => SyscallArgs::ReplyRecv {
            slot: rng.below(3),
            scalars: [rng.next_u64(), 0, 0, 0],
        },
        // Block-ring syscalls with garbage queues/cookies/IOVAs: without
        // an IOMMU-attached device every submit is an audited error path
        // (NotFound / Invalid / WrongState), checked noop-on-error.
        15 => SyscallArgs::BlkSubmitBatch {
            queue: rng.below(3),
            ops: random_blk_ops(rng),
        },
        16 => SyscallArgs::BlkReapBatch {
            queue: rng.below(3),
            max: rng.below(4),
            wait: rng.chance(1, 4),
        },
        _ => SyscallArgs::Yield,
    }
}

#[test]
fn every_transition_is_audited_green() {
    for case in 0..24u64 {
        let mut rng = XorShift64Star::new(0x5eed_0001 + case);
        let mut k = Kernel::boot(KernelConfig {
            mem_mib: 32,
            ncpus: 2,
            root_quota: 512,
        });
        let calls = rng.range(1, 40);
        for _ in 0..calls {
            // CPU 0 may have lost its thread to a blocking call; skip then.
            if k.pm.sched.current(0).is_none() && k.pm.timer_tick(0).is_none() {
                break;
            }
            let args = random_syscall(&mut rng);
            let (_ret, audit) = audited_syscall(&mut k, 0, args.clone());
            assert!(audit.is_ok(), "seed {case}, {args:?}: {audit:?}");
        }
    }
}

/// Drive one client/server exchange on `k`, either through the combined
/// fastpath traps (Call + ReplyRecv) or through the equivalent slow
/// Send/Recv rendezvous sequence, auditing every transition.
fn run_exchange(k: &mut atmosphere::kernel::Kernel, fast: bool) {
    let send = |scalars: [u64; 4]| SyscallArgs::Send {
        slot: 0,
        scalars,
        grant_page_va: None,
        grant_endpoint_slot: None,
        grant_iommu_domain: None,
    };
    let ops: Vec<SyscallArgs> = if fast {
        vec![
            SyscallArgs::Call {
                slot: 0,
                scalars: [11, 0, 0, 0],
            },
            SyscallArgs::TakeMsg,
            SyscallArgs::ReplyRecv {
                slot: 0,
                scalars: [22, 0, 0, 0],
            },
            SyscallArgs::TakeMsg,
        ]
    } else {
        vec![
            send([11, 0, 0, 0]),
            SyscallArgs::Recv { slot: 0 },
            SyscallArgs::TakeMsg,
            send([22, 0, 0, 0]),
            SyscallArgs::Recv { slot: 0 },
            SyscallArgs::TakeMsg,
        ]
    };
    for args in ops {
        let (ret, audit) = audited_syscall(k, 0, args.clone());
        assert!(ret.is_ok(), "{args:?}: {ret:?}");
        assert!(audit.is_ok(), "{args:?}: {audit:?}");
    }
}

#[test]
fn fast_and_slow_interleavings_reach_identical_abstract_states() {
    // Two kernels booted identically; one client/server pair each. The
    // fastpath kernel round-trips via Call/ReplyRecv (direct handoff),
    // the other via the slow Send/Recv rendezvous. The per-step concrete
    // traces differ, but both must land on the *same* abstract Ψ — the
    // dynamic form of `fastpath_refines_rendezvous`.
    let mut kernels: Vec<_> = (0..2)
        .map(|_| {
            let mut k = Kernel::boot(KernelConfig {
                mem_mib: 32,
                ncpus: 1,
                root_quota: 512,
            });
            let (ret, audit) = audited_syscall(&mut k, 0, SyscallArgs::NewEndpoint { slot: 0 });
            assert!(audit.is_ok(), "{audit:?}");
            let e = ret.val0() as usize;
            let init_proc = k.init_proc;
            let (ret, audit) = audited_syscall(
                &mut k,
                0,
                SyscallArgs::NewThread {
                    proc: init_proc,
                    cpu: 0,
                },
            );
            assert!(audit.is_ok(), "{audit:?}");
            let t2 = ret.val0() as usize;
            k.pm.install_descriptor(t2, 0, e).unwrap();
            // Park t2 as the endpoint's receiver (the state both the
            // fast and the slow exchange start from).
            for args in [
                SyscallArgs::Recv { slot: 0 },
                SyscallArgs::Send {
                    slot: 0,
                    scalars: [0; 4],
                    grant_page_va: None,
                    grant_endpoint_slot: None,
                    grant_iommu_domain: None,
                },
                SyscallArgs::Recv { slot: 0 },
                SyscallArgs::TakeMsg,
            ] {
                let (ret, audit) = audited_syscall(&mut k, 0, args);
                assert!(ret.is_ok() && audit.is_ok(), "{audit:?}");
            }
            k
        })
        .collect();
    let mut slow = kernels.pop().unwrap();
    let mut fast = kernels.pop().unwrap();
    assert_eq!(fast.view(), slow.view(), "setup must be identical");

    for _ in 0..3 {
        run_exchange(&mut fast, true);
        run_exchange(&mut slow, false);
        assert_eq!(
            fast.view(),
            slow.view(),
            "fast and slow interleavings diverged in Ψ"
        );
    }
    // The fastpath really took the direct handoff: every round trip is
    // two rendezvous with zero ready-queue traffic in between.
    let snap_fast = fast.trace_snapshot();
    assert_eq!(snap_fast.counters.pm.fastpath.hits, 6);
    let snap_slow = slow.trace_snapshot();
    assert_eq!(snap_slow.counters.pm.fastpath.hits, 0);
}

// ----- batched-VM-datapath equivalence ----------------------------------

fn audited_ok(k: &mut Kernel, args: SyscallArgs) -> u64 {
    let (ret, audit) = audited_syscall(k, 0, args.clone());
    audit.unwrap_or_else(|e| panic!("{args:?}: {e}"));
    assert!(ret.is_ok(), "{args:?} failed: {ret:?}");
    ret.val0()
}

/// Maps and unmaps one page at `base`, leaving the table hierarchy for
/// that 2 MiB region in place (intermediate levels are retained by
/// design). Afterwards the batched and per-page paths pop frames from
/// the allocator in the same order, since neither needs a table frame
/// mid-run — the precondition for bit-identical address spaces.
fn warm_tables(k: &mut Kernel, base: usize) {
    audited_ok(
        k,
        SyscallArgs::Mmap {
            va_base: base,
            len: 1,
            writable: true,
        },
    );
    audited_ok(
        k,
        SyscallArgs::Munmap {
            va_base: base,
            len: 1,
        },
    );
}

#[test]
fn batched_and_per_page_paths_reach_identical_views() {
    // Two identically booted kernels; one takes the walk-cached batched
    // datapath, the other the original per-page path. Every random
    // mmap/munmap (valid and faulting alike) must return the same result
    // and land both kernels on the same abstract state Ψ — including the
    // allocator's free/mapped sets, i.e. bit-identical frames.
    for case in 0..8u64 {
        let mut rng = XorShift64Star::new(0x5eed_2001 + case);
        let boot = || {
            Kernel::boot(KernelConfig {
                mem_mib: 32,
                ncpus: 1,
                root_quota: 512,
            })
        };
        let mut fast = boot();
        let mut slow = boot();
        slow.mem.vm.set_batch(false);
        assert!(fast.mem.vm.batch_enabled());
        for k in [&mut fast, &mut slow] {
            for region in [0x4000_0000usize, 0x4020_0000, 0x4040_0000] {
                warm_tables(k, region);
            }
        }
        assert_eq!(fast.view(), slow.view(), "warm-up must coincide");

        for step in 0..60 {
            // Spans three 2 MiB regions, so ranges cross L1 boundaries
            // and the walk cache re-resolves mid-run.
            let va_base = 0x4000_0000 + rng.below(1024) * 0x1000;
            let len = rng.range(1, 33);
            let args = if rng.chance(1, 2) {
                SyscallArgs::Mmap {
                    va_base,
                    len,
                    writable: rng.chance(1, 2),
                }
            } else {
                SyscallArgs::Munmap { va_base, len }
            };
            let (ret_f, audit_f) = audited_syscall(&mut fast, 0, args.clone());
            let (ret_s, audit_s) = audited_syscall(&mut slow, 0, args.clone());
            assert!(audit_f.is_ok(), "seed {case} step {step}: {audit_f:?}");
            assert!(audit_s.is_ok(), "seed {case} step {step}: {audit_s:?}");
            assert_eq!(
                ret_f.result, ret_s.result,
                "seed {case} step {step} {args:?}: paths disagree"
            );
            assert_eq!(
                fast.view(),
                slow.view(),
                "seed {case} step {step} {args:?}: Ψ diverged"
            );
        }
        // The batched kernel actually exercised the new path.
        let vm = fast.trace_snapshot().counters.vm;
        assert!(vm.map_batch_hits > 0, "walk cache never hit");
        assert!(vm.tlb_shootdowns_flushed > 0, "no epilogue flush ran");
        assert_eq!(slow.trace_snapshot().counters.vm.map_batch_hits, 0);
    }
}

#[test]
fn promoted_and_per_page_runs_normalize_identically() {
    use atmosphere::hw::{PAGE_SIZE_2M, PAGE_SIZE_4K};
    use atmosphere::kernel::abs::normalize_space_4k;

    let boot = || {
        Kernel::boot(KernelConfig {
            mem_mib: 64,
            ncpus: 1,
            root_quota: 2048,
        })
    };
    let mut fast = boot();
    let mut slow = boot();
    slow.mem.vm.set_batch(false);

    const TARGET: usize = 0x4000_0000;
    const FILLER: usize = 0x7000_0000;
    for k in [&mut fast, &mut slow] {
        // Sibling region: warms L3/L2 but leaves the target's L2 slot
        // empty so the batched kernel can install a superpage there.
        warm_tables(k, TARGET + PAGE_SIZE_2M);
        warm_tables(k, FILLER);
    }
    // The per-page kernel additionally gets the target L1 built up front
    // (one map/unmap); its 512-page run then allocates no table frame
    // mid-run and pops the exact frames the promoted superpage covers.
    warm_tables(&mut slow, TARGET);

    // Per kernel: pad the freelist so its head is the first fully-free
    // 2 MiB-aligned run (the per-page kernel has one page less slack —
    // its extra L1 frame — hence per-kernel filler lengths).
    let mut heads = Vec::new();
    for k in [&mut fast, &mut slow] {
        let free: std::collections::BTreeSet<usize> =
            k.mem.alloc.free_pages_4k().iter().copied().collect();
        let mut head = free.iter().next().unwrap().next_multiple_of(PAGE_SIZE_2M);
        while !(0..512).all(|i| free.contains(&(head + i * PAGE_SIZE_4K))) {
            head += PAGE_SIZE_2M;
        }
        let filler = free.iter().filter(|&&p| p < head).count();
        if filler > 0 {
            audited_ok(
                k,
                SyscallArgs::Mmap {
                    va_base: FILLER,
                    len: filler,
                    writable: true,
                },
            );
        }
        assert_eq!(
            k.mem.alloc.free_pages_4k().iter().next().copied(),
            Some(head)
        );
        heads.push(head);
    }
    assert_eq!(heads[0], heads[1], "both kernels see the same aligned run");
    let head = heads[0];

    // The measured transition: one 512-page Mmap on each kernel.
    for k in [&mut fast, &mut slow] {
        audited_ok(
            k,
            SyscallArgs::Mmap {
                va_base: TARGET,
                len: 512,
                writable: true,
            },
        );
    }
    let as_of = |k: &Kernel| k.pm.proc(k.init_proc).addr_space;
    let fast_space = fast.mem.vm.table(as_of(&fast)).unwrap().address_space();
    let slow_space = slow.mem.vm.table(as_of(&slow)).unwrap().address_space();
    assert_eq!(
        fast.mem
            .vm
            .table(as_of(&fast))
            .unwrap()
            .map_2m
            .index(&TARGET)
            .expect("batched kernel promoted")
            .frame,
        head
    );
    assert!(
        slow.mem.vm.table(as_of(&slow)).unwrap().map_2m.is_empty(),
        "per-page kernel stays 4K"
    );
    // The refinement claim: one Size2M entry and 512 Size4K entries
    // normalize to the *bit-identical* per-4K abstract view — same vas,
    // same flags, same frames. (Restricted to the measured run: the
    // filler region's frames legitimately differ by the per-page
    // kernel's extra L1 table frame.)
    let run = |m: &atmosphere::spec::Map<usize, atmosphere::ptable::MapEntry>| {
        m.iter()
            .filter(|&(va, _)| (TARGET..TARGET + PAGE_SIZE_2M).contains(va))
            .map(|(va, e)| (*va, *e))
            .collect::<Vec<_>>()
    };
    assert_eq!(
        run(&normalize_space_4k(&fast_space)),
        run(&normalize_space_4k(&slow_space)),
        "promoted and per-page executions reached different Ψ"
    );

    // Both unwind to the same free frames (audited: leak equations hold
    // with the superpage in the accounting on the way out).
    for k in [&mut fast, &mut slow] {
        audited_ok(
            k,
            SyscallArgs::Munmap {
                va_base: TARGET,
                len: 512,
            },
        );
        for i in 0..512 {
            assert!(
                k.mem.alloc.page_is_free(head + i * PAGE_SIZE_4K),
                "frame {i} of the run not returned"
            );
        }
    }
    assert_eq!(fast.trace_snapshot().counters.vm.superpage_promotions, 1);
    assert_eq!(fast.trace_snapshot().counters.vm.superpage_demotions, 1);
    assert_eq!(slow.trace_snapshot().counters.vm.superpage_promotions, 0);
}

#[test]
fn mmap_munmap_pairs_never_leak() {
    for case in 0..16u64 {
        let mut rng = XorShift64Star::new(0x5eed_1001 + case);
        let mut k = Kernel::boot(KernelConfig {
            mem_mib: 32,
            ncpus: 1,
            root_quota: 512,
        });
        let free0 = k.mem.alloc.free_pages_4k().len();
        let mut live: Vec<(usize, usize)> = Vec::new();
        let pairs = rng.range(1, 20);
        for _ in 0..pairs {
            let va_base = 0x4000_0000 + rng.below(32) * 0x10_000;
            let len = rng.range(1, 6);
            let (ret, audit) = audited_syscall(
                &mut k,
                0,
                SyscallArgs::Mmap {
                    va_base,
                    len,
                    writable: true,
                },
            );
            assert!(audit.is_ok(), "seed {case}: {audit:?}");
            if ret.is_ok() {
                live.push((va_base, len));
            }
        }
        for (va_base, len) in live.drain(..) {
            let (ret, audit) = audited_syscall(&mut k, 0, SyscallArgs::Munmap { va_base, len });
            assert!(audit.is_ok(), "seed {case}: {audit:?}");
            assert!(ret.is_ok());
        }
        // All user frames are back. Intermediate page-table levels are
        // retained by design (freed when the address space dies), so the
        // only frames still out are exactly the VM subsystem's growth.
        assert!(k.mem.alloc.mapped_pages().is_empty(), "user frames leaked");
        let spent = free0 - k.mem.alloc.free_pages_4k().len();
        use atmosphere::mem::PageClosure;
        let as_id = k.pm.proc(k.init_proc).addr_space;
        let pt_frames = k
            .mem
            .vm
            .table(as_id)
            .expect("init space")
            .page_closure()
            .len();
        assert!(
            spent == pt_frames - 1, // minus the boot-time root frame
            "seed {case}: leaked {spent} frames beyond the {} retained table levels",
            pt_frames - 1
        );
    }
}

// ----- crash/recovery refinement fuzz -----------------------------------
//
// The log-structured kv-store's durability claim, fuzzed: power-cut the
// log image at *every* record boundary and at random mid-record offsets;
// the recovered store must refine the abstract map of exactly the
// committed operation prefix (`recovery_refines`, the storage analogue
// of the syscall refinement audit).

use atmosphere::apps::{LogKv, MAX_KV_LEN};
use atmosphere::kernel::refine::recovery_refines;
use atmosphere::spec::storage::AbstractKv;

/// Drives one random mutation against `kv`, mirroring accepted ones
/// into `shadow` — the independently-tracked abstract history.
fn random_kv_step(rng: &mut XorShift64Star, kv: &mut LogKv, shadow: &mut AbstractKv) {
    use atmosphere::spec::storage::KvOp;
    let key = {
        let mut k = vec![b'k'];
        k.extend_from_slice(&(rng.below(24) as u32).to_le_bytes());
        k
    };
    if rng.chance(1, 4) {
        if kv.delete(&key) {
            shadow.apply(&KvOp::Delete(key));
        }
    } else {
        let value = vec![rng.next_u64() as u8; rng.below(MAX_KV_LEN + 1)];
        if kv.set(&key, &value) {
            shadow.apply(&KvOp::Set(key, value));
        }
    }
}

/// Checks that recovering `image` cut at `cut` refines the abstract map
/// of the committed prefix of the truncated image.
fn assert_cut_recovers(image: &[u8], cut: usize, capacity: usize, seg_cap: usize) {
    let truncated = &image[..cut];
    let committed = AbstractKv::from_ops(&LogKv::committed_prefix(truncated));
    let (recovered, _replayed) = LogKv::recover(truncated, capacity, seg_cap);
    recovery_refines(&committed, &recovered.entries())
        .unwrap_or_else(|e| panic!("cut at {cut}/{}: {e}", image.len()));
}

#[test]
fn power_cut_at_every_point_recovers_the_committed_prefix() {
    for case in 0..12u64 {
        let mut rng = XorShift64Star::new(0x5eed_0001 + case);
        let mut kv = LogKv::new(256, 512);
        let mut shadow = AbstractKv::new();
        for _ in 0..rng.range(20, 120) {
            random_kv_step(&mut rng, &mut kv, &mut shadow);
        }
        let image = kv.log_image();

        // Every record boundary is a clean commit point.
        let ends = LogKv::record_ends(&image);
        for &cut in &ends {
            assert_cut_recovers(&image, cut, 256, 512);
        }
        // Mid-record cuts (torn writes): the torn record is not
        // committed, recovery lands on the preceding boundary.
        for _ in 0..64 {
            let cut = rng.below(image.len() + 1);
            assert_cut_recovers(&image, cut, 256, 512);
        }
        // The full image recovers to the independently-tracked shadow —
        // the strong end-to-end check that the log captured *exactly*
        // the accepted mutations (GC included: compaction must not
        // change the recovered state).
        let (recovered, _) = LogKv::recover(&image, 256, 512);
        recovery_refines(&shadow, &recovered.entries())
            .unwrap_or_else(|e| panic!("seed {case}: {e}"));
        assert!(
            ends.last() == Some(&image.len()),
            "the untruncated log must parse to its end"
        );
    }
}

#[test]
fn powercut_corpus_replays_green() {
    // A small checked-in corpus (regression anchors for the fuzzer):
    // `set <key> <value>` / `del <key>` lines drive the store; every
    // cut point of the resulting image must recover refined.
    let corpus = include_str!("corpus/kv_powercut.txt");
    let mut kv = LogKv::new(64, 128);
    let mut shadow = AbstractKv::new();
    use atmosphere::spec::storage::KvOp;
    for line in corpus.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("set") => {
                let k = parts.next().expect("set key").as_bytes().to_vec();
                let v = parts.next().unwrap_or("").as_bytes().to_vec();
                if kv.set(&k, &v) {
                    shadow.apply(&KvOp::Set(k, v));
                }
            }
            Some("del") => {
                let k = parts.next().expect("del key").as_bytes().to_vec();
                if kv.delete(&k) {
                    shadow.apply(&KvOp::Delete(k));
                }
            }
            other => panic!("bad corpus line {line:?}: {other:?}"),
        }
    }
    assert!(kv.compactions() > 0, "corpus must exercise segment GC");
    let image = kv.log_image();
    for cut in 0..=image.len() {
        assert_cut_recovers(&image, cut, 64, 128);
    }
    let (recovered, _) = LogKv::recover(&image, 64, 128);
    recovery_refines(&shadow, &recovered.entries()).expect("corpus end state");
}
