//! Property-based refinement exploration: arbitrary syscall sequences
//! (valid and garbage arguments alike), every transition audited against
//! `total_wf` and its specification — the dynamic analogue of the
//! kernel-wide refinement theorem (§4).

use atmosphere::kernel::refine::audited_syscall;
use atmosphere::kernel::{Kernel, KernelConfig, SyscallArgs};
use proptest::prelude::*;

fn syscall_strategy() -> impl Strategy<Value = SyscallArgs> {
    let va = (0usize..48).prop_map(|i| 0x4000_0000 + i * 0x1000);
    let ptr = prop_oneof![
        Just(0usize),
        Just(0xdead_b000usize),
        (0usize..8).prop_map(|i| 0x20_0000 + i * 0x1000),
    ];
    prop_oneof![
        (va.clone(), 1usize..5, any::<bool>()).prop_map(|(va_base, len, writable)| {
            SyscallArgs::Mmap {
                va_base,
                len,
                writable,
            }
        }),
        (va.clone(), 1usize..5).prop_map(|(va_base, len)| SyscallArgs::Munmap { va_base, len }),
        (0usize..64).prop_map(|quota| SyscallArgs::NewContainer {
            quota,
            cpus: vec![]
        }),
        ptr.clone()
            .prop_map(|cntr| SyscallArgs::NewProcess { cntr }),
        ptr.clone()
            .prop_map(|cntr| SyscallArgs::TerminateContainer { cntr }),
        ptr.clone()
            .prop_map(|proc| SyscallArgs::TerminateProcess { proc }),
        (ptr.clone(), 0usize..4).prop_map(|(proc, cpu)| SyscallArgs::NewThread { proc, cpu }),
        (0usize..18).prop_map(|slot| SyscallArgs::NewEndpoint { slot }),
        (0usize..3, any::<u64>(), proptest::option::of(va.clone())).prop_map(
            |(slot, s0, grant)| SyscallArgs::Send {
                slot,
                scalars: [s0, 0, 0, 0],
                grant_page_va: grant,
                grant_endpoint_slot: None,
                grant_iommu_domain: None,
            }
        ),
        (0usize..3).prop_map(|slot| SyscallArgs::Poll { slot }),
        Just(SyscallArgs::TakeMsg),
        va.prop_map(|va| SyscallArgs::MapGranted { va }),
        Just(SyscallArgs::DropGrant),
        Just(SyscallArgs::Yield),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_transition_is_audited_green(calls in proptest::collection::vec(syscall_strategy(), 1..40)) {
        let mut k = Kernel::boot(KernelConfig { mem_mib: 32, ncpus: 2, root_quota: 512 });
        for args in calls {
            // CPU 0 may have lost its thread to a blocking call; skip then.
            if k.pm.sched.current(0).is_none() && k.pm.timer_tick(0).is_none() {
                break;
            }
            let (_ret, audit) = audited_syscall(&mut k, 0, args.clone());
            prop_assert!(audit.is_ok(), "{args:?}: {:?}", audit);
        }
    }

    #[test]
    fn mmap_munmap_pairs_never_leak(ranges in proptest::collection::vec((0usize..32, 1usize..6), 1..20)) {
        let mut k = Kernel::boot(KernelConfig { mem_mib: 32, ncpus: 1, root_quota: 512 });
        let free0 = k.alloc.free_pages_4k().len();
        let mut live: Vec<(usize, usize)> = Vec::new();
        for (slot, len) in ranges {
            let va_base = 0x4000_0000 + slot * 0x10_000;
            let (ret, audit) = audited_syscall(&mut k, 0, SyscallArgs::Mmap { va_base, len, writable: true });
            prop_assert!(audit.is_ok(), "{:?}", audit);
            if ret.is_ok() {
                live.push((va_base, len));
            }
        }
        for (va_base, len) in live.drain(..) {
            let (ret, audit) = audited_syscall(&mut k, 0, SyscallArgs::Munmap { va_base, len });
            prop_assert!(audit.is_ok(), "{:?}", audit);
            prop_assert!(ret.is_ok());
        }
        // All user frames are back. Intermediate page-table levels are
        // retained by design (freed when the address space dies), so the
        // only frames still out are exactly the VM subsystem's growth.
        prop_assert!(k.alloc.mapped_pages().is_empty(), "user frames leaked");
        let spent = free0 - k.alloc.free_pages_4k().len();
        use atmosphere::mem::PageClosure;
        let as_id = k.pm.proc(k.init_proc).addr_space;
        let pt_frames = k.vm.table(as_id).expect("init space").page_closure().len();
        prop_assert!(
            spent == pt_frames - 1, // minus the boot-time root frame
            "leaked {} frames beyond the {} retained table levels",
            spent,
            pt_frames - 1
        );
    }
}
