//! Randomized refinement exploration: arbitrary syscall sequences
//! (valid and garbage arguments alike), every transition audited against
//! `total_wf` and its specification — the dynamic analogue of the
//! kernel-wide refinement theorem (§4).
//!
//! Randomness comes from the in-repo deterministic [`XorShift64Star`]
//! generator, so every run explores the same sequences and failures
//! reproduce from the printed seed.

use atmosphere::kernel::refine::audited_syscall;
use atmosphere::kernel::{Kernel, KernelConfig, SyscallArgs};
use atmosphere::spec::XorShift64Star;

fn random_va(rng: &mut XorShift64Star) -> usize {
    0x4000_0000 + rng.below(48) * 0x1000
}

fn random_ptr(rng: &mut XorShift64Star) -> usize {
    match rng.below(3) {
        0 => 0,
        1 => 0xdead_b000,
        _ => 0x20_0000 + rng.below(8) * 0x1000,
    }
}

fn random_syscall(rng: &mut XorShift64Star) -> SyscallArgs {
    match rng.below(16) {
        0 => SyscallArgs::Mmap {
            va_base: random_va(rng),
            len: rng.range(1, 5),
            writable: rng.chance(1, 2),
        },
        1 => SyscallArgs::Munmap {
            va_base: random_va(rng),
            len: rng.range(1, 5),
        },
        2 => SyscallArgs::NewContainer {
            quota: rng.below(64),
            cpus: vec![],
        },
        3 => SyscallArgs::NewProcess {
            cntr: random_ptr(rng),
        },
        4 => SyscallArgs::TerminateContainer {
            cntr: random_ptr(rng),
        },
        5 => SyscallArgs::TerminateProcess {
            proc: random_ptr(rng),
        },
        6 => SyscallArgs::NewThread {
            proc: random_ptr(rng),
            cpu: rng.below(4),
        },
        7 => SyscallArgs::NewEndpoint {
            slot: rng.below(18),
        },
        8 => {
            let grant_page_va = rng.chance(1, 2).then(|| random_va(rng));
            SyscallArgs::Send {
                slot: rng.below(3),
                scalars: [rng.next_u64(), 0, 0, 0],
                grant_page_va,
                grant_endpoint_slot: None,
                grant_iommu_domain: None,
            }
        }
        9 => SyscallArgs::Poll { slot: rng.below(3) },
        10 => SyscallArgs::TakeMsg,
        11 => SyscallArgs::MapGranted { va: random_va(rng) },
        12 => SyscallArgs::DropGrant,
        13 => SyscallArgs::Call {
            slot: rng.below(3),
            scalars: [rng.next_u64(), 0, 0, 0],
        },
        14 => SyscallArgs::ReplyRecv {
            slot: rng.below(3),
            scalars: [rng.next_u64(), 0, 0, 0],
        },
        _ => SyscallArgs::Yield,
    }
}

#[test]
fn every_transition_is_audited_green() {
    for case in 0..24u64 {
        let mut rng = XorShift64Star::new(0x5eed_0001 + case);
        let mut k = Kernel::boot(KernelConfig {
            mem_mib: 32,
            ncpus: 2,
            root_quota: 512,
        });
        let calls = rng.range(1, 40);
        for _ in 0..calls {
            // CPU 0 may have lost its thread to a blocking call; skip then.
            if k.pm.sched.current(0).is_none() && k.pm.timer_tick(0).is_none() {
                break;
            }
            let args = random_syscall(&mut rng);
            let (_ret, audit) = audited_syscall(&mut k, 0, args.clone());
            assert!(audit.is_ok(), "seed {case}, {args:?}: {audit:?}");
        }
    }
}

/// Drive one client/server exchange on `k`, either through the combined
/// fastpath traps (Call + ReplyRecv) or through the equivalent slow
/// Send/Recv rendezvous sequence, auditing every transition.
fn run_exchange(k: &mut atmosphere::kernel::Kernel, fast: bool) {
    let send = |scalars: [u64; 4]| SyscallArgs::Send {
        slot: 0,
        scalars,
        grant_page_va: None,
        grant_endpoint_slot: None,
        grant_iommu_domain: None,
    };
    let ops: Vec<SyscallArgs> = if fast {
        vec![
            SyscallArgs::Call {
                slot: 0,
                scalars: [11, 0, 0, 0],
            },
            SyscallArgs::TakeMsg,
            SyscallArgs::ReplyRecv {
                slot: 0,
                scalars: [22, 0, 0, 0],
            },
            SyscallArgs::TakeMsg,
        ]
    } else {
        vec![
            send([11, 0, 0, 0]),
            SyscallArgs::Recv { slot: 0 },
            SyscallArgs::TakeMsg,
            send([22, 0, 0, 0]),
            SyscallArgs::Recv { slot: 0 },
            SyscallArgs::TakeMsg,
        ]
    };
    for args in ops {
        let (ret, audit) = audited_syscall(k, 0, args.clone());
        assert!(ret.is_ok(), "{args:?}: {ret:?}");
        assert!(audit.is_ok(), "{args:?}: {audit:?}");
    }
}

#[test]
fn fast_and_slow_interleavings_reach_identical_abstract_states() {
    // Two kernels booted identically; one client/server pair each. The
    // fastpath kernel round-trips via Call/ReplyRecv (direct handoff),
    // the other via the slow Send/Recv rendezvous. The per-step concrete
    // traces differ, but both must land on the *same* abstract Ψ — the
    // dynamic form of `fastpath_refines_rendezvous`.
    let mut kernels: Vec<_> = (0..2)
        .map(|_| {
            let mut k = Kernel::boot(KernelConfig {
                mem_mib: 32,
                ncpus: 1,
                root_quota: 512,
            });
            let (ret, audit) = audited_syscall(&mut k, 0, SyscallArgs::NewEndpoint { slot: 0 });
            assert!(audit.is_ok(), "{audit:?}");
            let e = ret.val0() as usize;
            let init_proc = k.init_proc;
            let (ret, audit) = audited_syscall(
                &mut k,
                0,
                SyscallArgs::NewThread {
                    proc: init_proc,
                    cpu: 0,
                },
            );
            assert!(audit.is_ok(), "{audit:?}");
            let t2 = ret.val0() as usize;
            k.pm.install_descriptor(t2, 0, e).unwrap();
            // Park t2 as the endpoint's receiver (the state both the
            // fast and the slow exchange start from).
            for args in [
                SyscallArgs::Recv { slot: 0 },
                SyscallArgs::Send {
                    slot: 0,
                    scalars: [0; 4],
                    grant_page_va: None,
                    grant_endpoint_slot: None,
                    grant_iommu_domain: None,
                },
                SyscallArgs::Recv { slot: 0 },
                SyscallArgs::TakeMsg,
            ] {
                let (ret, audit) = audited_syscall(&mut k, 0, args);
                assert!(ret.is_ok() && audit.is_ok(), "{audit:?}");
            }
            k
        })
        .collect();
    let mut slow = kernels.pop().unwrap();
    let mut fast = kernels.pop().unwrap();
    assert_eq!(fast.view(), slow.view(), "setup must be identical");

    for _ in 0..3 {
        run_exchange(&mut fast, true);
        run_exchange(&mut slow, false);
        assert_eq!(
            fast.view(),
            slow.view(),
            "fast and slow interleavings diverged in Ψ"
        );
    }
    // The fastpath really took the direct handoff: every round trip is
    // two rendezvous with zero ready-queue traffic in between.
    let snap_fast = fast.trace_snapshot();
    assert_eq!(snap_fast.counters.pm.fastpath.hits, 6);
    let snap_slow = slow.trace_snapshot();
    assert_eq!(snap_slow.counters.pm.fastpath.hits, 0);
}

#[test]
fn mmap_munmap_pairs_never_leak() {
    for case in 0..16u64 {
        let mut rng = XorShift64Star::new(0x5eed_1001 + case);
        let mut k = Kernel::boot(KernelConfig {
            mem_mib: 32,
            ncpus: 1,
            root_quota: 512,
        });
        let free0 = k.mem.alloc.free_pages_4k().len();
        let mut live: Vec<(usize, usize)> = Vec::new();
        let pairs = rng.range(1, 20);
        for _ in 0..pairs {
            let va_base = 0x4000_0000 + rng.below(32) * 0x10_000;
            let len = rng.range(1, 6);
            let (ret, audit) = audited_syscall(
                &mut k,
                0,
                SyscallArgs::Mmap {
                    va_base,
                    len,
                    writable: true,
                },
            );
            assert!(audit.is_ok(), "seed {case}: {audit:?}");
            if ret.is_ok() {
                live.push((va_base, len));
            }
        }
        for (va_base, len) in live.drain(..) {
            let (ret, audit) = audited_syscall(&mut k, 0, SyscallArgs::Munmap { va_base, len });
            assert!(audit.is_ok(), "seed {case}: {audit:?}");
            assert!(ret.is_ok());
        }
        // All user frames are back. Intermediate page-table levels are
        // retained by design (freed when the address space dies), so the
        // only frames still out are exactly the VM subsystem's growth.
        assert!(k.mem.alloc.mapped_pages().is_empty(), "user frames leaked");
        let spent = free0 - k.mem.alloc.free_pages_4k().len();
        use atmosphere::mem::PageClosure;
        let as_id = k.pm.proc(k.init_proc).addr_space;
        let pt_frames = k
            .mem
            .vm
            .table(as_id)
            .expect("init space")
            .page_closure()
            .len();
        assert!(
            spent == pt_frames - 1, // minus the boot-time root frame
            "seed {case}: leaked {spent} frames beyond the {} retained table levels",
            pt_frames - 1
        );
    }
}
