//! Multiprocessor execution under the big lock (§3): real OS threads
//! drive syscalls on distinct simulated CPUs concurrently; serialization
//! through the global lock must keep the kernel well-formed and all
//! per-domain state consistent.

use std::sync::Arc;

use atmosphere::kernel::{Kernel, KernelConfig, SmpKernel, SyscallArgs};
use atmosphere::spec::harness::Invariant;
use atmosphere::trace::SyscallKind;

#[test]
fn concurrent_syscalls_on_four_cpus() {
    let mut k = Kernel::boot(KernelConfig {
        mem_mib: 64,
        ncpus: 4,
        root_quota: 2048,
    });

    // One container + process + thread per CPU 1..3; CPU 0 keeps init.
    let mut cpus = Vec::new();
    for cpu in 1..4usize {
        let c = k
            .syscall(
                0,
                SyscallArgs::NewContainer {
                    quota: 256,
                    cpus: vec![cpu],
                },
            )
            .val0() as usize;
        let p = k.syscall(0, SyscallArgs::NewProcess { cntr: c }).val0() as usize;
        let _ = k.syscall(0, SyscallArgs::NewThread { proc: p, cpu });
        k.pm.timer_tick(cpu);
        cpus.push(cpu);
    }
    let smp = Arc::new(SmpKernel::new(k));

    let mut handles = Vec::new();
    for cpu in cpus {
        let smp = Arc::clone(&smp);
        handles.push(std::thread::spawn(move || {
            for round in 0..50usize {
                let base = 0x4000_0000 + round * 0x4000;
                let r = smp.with_kernel(|k| {
                    k.syscall(
                        cpu,
                        SyscallArgs::Mmap {
                            va_base: base,
                            len: 2,
                            writable: true,
                        },
                    )
                });
                assert!(r.is_ok(), "cpu {cpu} round {round}: {r:?}");
                let r = smp.with_kernel(|k| {
                    k.syscall(
                        cpu,
                        SyscallArgs::Munmap {
                            va_base: base,
                            len: 2,
                        },
                    )
                });
                assert!(r.is_ok(), "cpu {cpu} round {round}: {r:?}");
                // Interleave invariant checks from the worker threads too.
                if round % 16 == 0 {
                    smp.with_kernel(|k| assert!(k.wf().is_ok(), "{:?}", k.wf()));
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }

    let k = Arc::try_unwrap(smp).ok().unwrap().into_inner();
    assert!(k.wf().is_ok(), "{:?}", k.wf());
    assert!(
        k.mem.alloc.mapped_pages().is_empty(),
        "all user frames released"
    );
    // Each CPU really did 50 map/unmap rounds worth of cycles.
    for cpu in 1..4 {
        assert!(k.cycles(cpu) > 0);
    }
}

#[test]
fn trace_rings_reconcile_across_four_cpus() {
    // Four CPUs hammer the kernel concurrently; afterwards the merged
    // trace snapshot's per-CPU ring counts must reconcile *exactly* with
    // the syscall returns each OS thread observed — no event lost to a
    // race, none double-counted.
    let mut k = Kernel::boot(KernelConfig {
        mem_mib: 64,
        ncpus: 4,
        root_quota: 2048,
    });
    for cpu in 1..4usize {
        let c = k
            .syscall(
                0,
                SyscallArgs::NewContainer {
                    quota: 256,
                    cpus: vec![cpu],
                },
            )
            .val0() as usize;
        let p = k.syscall(0, SyscallArgs::NewProcess { cntr: c }).val0() as usize;
        let _ = k.syscall(0, SyscallArgs::NewThread { proc: p, cpu });
        k.pm.timer_tick(cpu);
    }
    // Baseline: everything traced so far belongs to the setup above.
    let base = k.trace_snapshot();
    let smp = Arc::new(SmpKernel::new(k));

    const ROUNDS: u64 = 40;
    let mut handles = Vec::new();
    for cpu in 1..4usize {
        let smp = Arc::clone(&smp);
        handles.push(std::thread::spawn(move || {
            // Tallies of *observed returns*, the reconciliation ground
            // truth: (mmap ok, munmap ok, yields ok, errors).
            let (mut ok_mmap, mut ok_munmap, mut ok_yield, mut errs) = (0u64, 0u64, 0u64, 0u64);
            for round in 0..ROUNDS {
                let base_va = 0x4000_0000 + (round as usize) * 0x4000;
                let r = smp.with_kernel(|k| {
                    k.syscall(
                        cpu,
                        SyscallArgs::Mmap {
                            va_base: base_va,
                            len: 2,
                            writable: true,
                        },
                    )
                });
                if r.is_ok() {
                    ok_mmap += 1
                } else {
                    errs += 1
                }
                let r = smp.with_kernel(|k| k.syscall(cpu, SyscallArgs::Yield));
                if r.is_ok() {
                    ok_yield += 1
                } else {
                    errs += 1
                }
                let r = smp.with_kernel(|k| {
                    k.syscall(
                        cpu,
                        SyscallArgs::Munmap {
                            va_base: base_va,
                            len: 2,
                        },
                    )
                });
                if r.is_ok() {
                    ok_munmap += 1
                } else {
                    errs += 1
                }
            }
            (cpu, ok_mmap, ok_munmap, ok_yield, errs)
        }));
    }
    let tallies: Vec<(usize, u64, u64, u64, u64)> =
        handles.into_iter().map(|h| h.join().unwrap()).collect();

    let k = Arc::try_unwrap(smp).ok().unwrap().into_inner();
    assert!(k.wf().is_ok(), "{:?}", k.wf());
    let snap = k.trace_snapshot();

    // Per-CPU: the ring on each CPU saw exactly that worker's calls.
    let kinds = [SyscallKind::Mmap, SyscallKind::Munmap, SyscallKind::Yield];
    for &(cpu, ok_mmap, ok_munmap, ok_yield, errs) in &tallies {
        assert_eq!(errs, 0, "cpu {cpu}: every syscall should have succeeded");
        let exits = |s: &atmosphere::trace::Snapshot, kind: SyscallKind| {
            s.per_cpu[cpu].per_kind_exits[kind.index()]
        };
        for (kind, expect) in kinds.iter().zip([ok_mmap, ok_munmap, ok_yield]) {
            assert_eq!(
                exits(&snap, *kind) - exits(&base, *kind),
                expect,
                "cpu {cpu} {}",
                kind.name()
            );
        }
        assert_eq!(
            snap.per_cpu[cpu].syscall_exits() - base.per_cpu[cpu].syscall_exits(),
            3 * ROUNDS,
            "cpu {cpu}: exactly its own 3 calls per round, nothing else"
        );
    }

    // Merged: the snapshot's per-kind totals equal the sum of what the
    // workers observed, and the per-CPU rings sum to the merged view.
    for kind in kinds {
        let total: u64 = tallies
            .iter()
            .map(|&(_, m, u, y, _)| match kind {
                SyscallKind::Mmap => m,
                SyscallKind::Munmap => u,
                _ => y,
            })
            .sum();
        assert_eq!(
            snap.syscall(kind).ok - base.syscall(kind).ok,
            total,
            "merged {} ok-returns",
            kind.name()
        );
        let ring_sum: u64 = snap
            .per_cpu
            .iter()
            .map(|c| c.per_kind_exits[kind.index()])
            .sum();
        assert_eq!(
            ring_sum,
            snap.exits(kind),
            "rings sum to merged {}",
            kind.name()
        );
    }
    assert_eq!(
        snap.total_syscall_exits() - base.total_syscall_exits(),
        9 * ROUNDS,
        "3 workers x 3 calls x ROUNDS, none lost or double-counted"
    );
}

#[test]
fn cross_cpu_ipc_under_the_big_lock() {
    // Two threads of the same process on different CPUs exchange messages
    // from two OS threads.
    let mut k = Kernel::boot(KernelConfig {
        mem_mib: 64,
        ncpus: 2,
        root_quota: 2048,
    });
    let init_proc = k.init_proc;
    let t2 = k
        .syscall(
            0,
            SyscallArgs::NewThread {
                proc: init_proc,
                cpu: 1,
            },
        )
        .val0() as usize;
    let e = k.syscall(0, SyscallArgs::NewEndpoint { slot: 0 }).val0() as usize;
    k.pm.install_descriptor(t2, 0, e).unwrap();
    k.pm.timer_tick(1);
    let smp = Arc::new(SmpKernel::new(k));

    const N: u64 = 200;
    let sender = {
        let smp = Arc::clone(&smp);
        std::thread::spawn(move || {
            let mut sent = 0u64;
            while sent < N {
                let r = smp.with_kernel(|k| {
                    k.syscall(
                        0,
                        SyscallArgs::Send {
                            slot: 0,
                            scalars: [sent, 0, 0, 0],
                            grant_page_va: None,
                            grant_endpoint_slot: None,
                            grant_iommu_domain: None,
                        },
                    )
                });
                match r.result {
                    Ok(_) => sent += 1,
                    Err(_) => std::thread::yield_now(), // queue full / not running
                }
            }
        })
    };
    let receiver = {
        let smp = Arc::clone(&smp);
        std::thread::spawn(move || {
            let mut got = Vec::new();
            while got.len() < N as usize {
                let r = smp.with_kernel(|k| k.syscall(1, SyscallArgs::Poll { slot: 0 }));
                match r.result {
                    Ok(vals) if vals[3] != u64::MAX => got.push(vals[0]),
                    _ => std::thread::yield_now(),
                }
            }
            got
        })
    };
    sender.join().unwrap();
    let got = receiver.join().unwrap();
    // FIFO endpoint: messages arrive in order, none lost or duplicated.
    assert_eq!(got, (0..N).collect::<Vec<_>>());
    let k = Arc::try_unwrap(smp).ok().unwrap().into_inner();
    assert!(k.wf().is_ok(), "{:?}", k.wf());
}

#[test]
fn sharded_domains_four_cpu_stress() {
    // The sharded kernel's counterpart of the big-lock stress test: four
    // OS threads drive `SmpKernel::syscall` directly (no stop-the-world
    // bridge), each against its own container on its own CPU. Afterwards
    // the stop-the-world `total_wf` audit must pass, the trace rings must
    // reconcile exactly with the returns each worker observed, and
    // draining the per-CPU page caches must balance the closure equations.
    let mut k = Kernel::boot(KernelConfig {
        mem_mib: 64,
        ncpus: 4,
        root_quota: 4096,
    });
    for cpu in 1..4usize {
        let c = k
            .syscall(
                0,
                SyscallArgs::NewContainer {
                    quota: 512,
                    cpus: vec![cpu],
                },
            )
            .val0() as usize;
        let p = k.syscall(0, SyscallArgs::NewProcess { cntr: c }).val0() as usize;
        let _ = k.syscall(0, SyscallArgs::NewThread { proc: p, cpu });
        k.pm.timer_tick(cpu);
    }
    let base = k.trace_snapshot();
    let smp = Arc::new(SmpKernel::new(k));

    const ROUNDS: u64 = 40;
    let mut handles = Vec::new();
    for cpu in 0..4usize {
        let smp = Arc::clone(&smp);
        handles.push(std::thread::spawn(move || {
            // Even CPUs are mem-heavy (map/unmap their own ranges); odd
            // CPUs are pm-heavy (yield). Disjoint containers → disjoint
            // abstract state → every call must succeed.
            let (mut ok_mmap, mut ok_munmap, mut ok_yield) = (0u64, 0u64, 0u64);
            for round in 0..ROUNDS {
                if cpu % 2 == 0 {
                    let base_va = 0x4000_0000 + (round as usize) * 0x4000;
                    let r = smp.syscall(
                        cpu,
                        SyscallArgs::Mmap {
                            va_base: base_va,
                            len: 2,
                            writable: true,
                        },
                    );
                    assert!(r.is_ok(), "cpu {cpu} round {round} mmap: {r:?}");
                    ok_mmap += 1;
                    let r = smp.syscall(
                        cpu,
                        SyscallArgs::Munmap {
                            va_base: base_va,
                            len: 2,
                        },
                    );
                    assert!(r.is_ok(), "cpu {cpu} round {round} munmap: {r:?}");
                    ok_munmap += 1;
                } else {
                    let r = smp.syscall(cpu, SyscallArgs::Yield);
                    assert!(r.is_ok(), "cpu {cpu} round {round} yield: {r:?}");
                    ok_yield += 1;
                }
                // Concurrent stop-the-world audits from worker threads:
                // the audit must compose with in-flight dispatches.
                if round % 16 == 0 {
                    let audit = smp.audit_total_wf();
                    assert!(audit.is_ok(), "cpu {cpu} round {round}: {audit:?}");
                }
            }
            (cpu, ok_mmap, ok_munmap, ok_yield)
        }));
    }
    let tallies: Vec<(usize, u64, u64, u64)> =
        handles.into_iter().map(|h| h.join().unwrap()).collect();

    // Stop-the-world audit with everything quiesced.
    let audit = smp.audit_total_wf();
    assert!(audit.is_ok(), "{audit:?}");

    // Exact per-CPU ring reconciliation: each CPU's ring saw exactly the
    // returns its worker observed — no event lost to a shard race, none
    // double-counted, none attributed to the wrong CPU.
    let snap = smp.trace_snapshot();
    for &(cpu, ok_mmap, ok_munmap, ok_yield) in &tallies {
        let exits = |s: &atmosphere::trace::Snapshot, kind: SyscallKind| {
            s.per_cpu[cpu].per_kind_exits[kind.index()]
        };
        for (kind, expect) in [SyscallKind::Mmap, SyscallKind::Munmap, SyscallKind::Yield]
            .iter()
            .zip([ok_mmap, ok_munmap, ok_yield])
        {
            assert_eq!(
                exits(&snap, *kind) - exits(&base, *kind),
                expect,
                "cpu {cpu} {}",
                kind.name()
            );
        }
    }

    // The sharding itself is visible in the lock instrumentation: every
    // syscall took the pm lock, and the odd (pm-only) CPUs' yields never
    // touched mem — so mem acquisitions stay below pm acquisitions.
    let locks = snap.counters.locks;
    let total_calls: u64 = tallies.iter().map(|&(_, m, u, y)| m + u + y).sum();
    assert!(
        locks.pm.acquisitions >= total_calls,
        "pm lock must serialize every dispatch: {} < {total_calls}",
        locks.pm.acquisitions
    );
    assert!(
        locks.mem.acquisitions < locks.pm.acquisitions,
        "pm-only syscalls must not take the mem lock"
    );

    // Cache-drain closure balance: dissolving the sharding drains every
    // per-CPU cache back into the allocator, after which no user frame is
    // still mapped and the flat invariants hold.
    let k = Arc::try_unwrap(smp).ok().unwrap().into_inner();
    assert!(k.wf().is_ok(), "{:?}", k.wf());
    assert!(
        k.mem.alloc.mapped_pages().is_empty(),
        "all user frames released"
    );
    for cpu in 0..4 {
        assert!(k.cycles(cpu) > 0, "cpu {cpu} advanced its modeled clock");
    }
}
