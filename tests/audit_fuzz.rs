//! Differential syscall fuzzing against the incremental audit ledgers.
//!
//! Two oracles run over every fuzzed schedule:
//!
//! * [`SmpKernel::audit_incremental`] after **every** operation — the
//!   O(touched) ledger fold, taken with no domain lock and no cache
//!   drain;
//! * [`SmpKernel::audit_total_wf`] at **epoch boundaries** — the
//!   stop-the-world flat audit, which additionally reconciles the
//!   incremental folds against a fresh full scan bit-for-bit.
//!
//! The differential claim is that they never disagree: any delta a
//! mutation forgets to emit (or emits twice) surfaces as a named
//! divergence at the next epoch, and any equation the incremental fold
//! refutes is a real invariant violation the flat audit would also
//! catch.
//!
//! The fuzzer is *coverage-guided*: schedules live in a population,
//! coverage is the set of `(syscall kind, outcome)` pairs observed, and
//! schedules that light up new coverage are kept and mutated further
//! (ops inserted/removed/rewritten, CPUs reassigned — schedule
//! mutation). Seeds come from `tests/corpus/audit_*.txt`, which also
//! replay verbatim as regression anchors. Set `AUDIT_FUZZ_ROUNDS` to
//! fuzz longer than the CI default.

use std::collections::HashSet;
use std::mem::Discriminant;

use atmosphere::drivers::{BlkPool, PktPool};
use atmosphere::kernel::{BlkOp, Kernel, KernelConfig, SmpKernel, SyscallArgs, SyscallError};
use atmosphere::spec::XorShift64Star;

/// One fuzzed operation: a syscall issued from a simulated CPU.
#[derive(Clone, Debug)]
struct Op {
    cpu: usize,
    args: SyscallArgs,
}

/// A fuzz schedule: the ops, in program order. (Per-CPU interleaving is
/// modeled by the `cpu` field; the DES driver issues them serially, as
/// the single-OS-thread audit points require.)
type Schedule = Vec<Op>;

// ----- corpus text format ------------------------------------------------
//
// One op per line: `<cpu> <name> [args...]`, `#` comments. Only the
// subset of syscalls the fuzzer generates is representable, which is
// exactly what replay needs.

fn format_op(op: &Op) -> String {
    let c = op.cpu;
    match &op.args {
        SyscallArgs::Mmap {
            va_base,
            len,
            writable,
        } => format!("{c} mmap {va_base:#x} {len} {}", u8::from(*writable)),
        SyscallArgs::Munmap { va_base, len } => format!("{c} munmap {va_base:#x} {len}"),
        SyscallArgs::MmapHuge2M { va_base, writable } => {
            format!("{c} mmap2m {va_base:#x} {}", u8::from(*writable))
        }
        SyscallArgs::MunmapHuge2M { va_base } => format!("{c} munmap2m {va_base:#x}"),
        SyscallArgs::NewContainer { quota, .. } => format!("{c} newcontainer {quota}"),
        SyscallArgs::TerminateContainer { cntr } => format!("{c} termcontainer {cntr:#x}"),
        SyscallArgs::NewProcess { cntr } => format!("{c} newprocess {cntr:#x}"),
        SyscallArgs::NewChildProcess => format!("{c} newchild"),
        SyscallArgs::TerminateProcess { proc } => format!("{c} termprocess {proc:#x}"),
        SyscallArgs::NewThread { proc, cpu } => format!("{c} newthread {proc:#x} {cpu}"),
        SyscallArgs::NewEndpoint { slot } => format!("{c} newendpoint {slot}"),
        SyscallArgs::Send {
            slot,
            scalars,
            grant_page_va,
            ..
        } => match grant_page_va {
            Some(va) => format!("{c} send {slot} {} {va:#x}", scalars[0]),
            None => format!("{c} send {slot} {}", scalars[0]),
        },
        SyscallArgs::Poll { slot } => format!("{c} poll {slot}"),
        SyscallArgs::Call { slot, scalars } => format!("{c} call {slot} {}", scalars[0]),
        SyscallArgs::Reply { scalars } => format!("{c} reply {}", scalars[0]),
        SyscallArgs::ReplyRecv { slot, scalars } => {
            format!("{c} replyrecv {slot} {}", scalars[0])
        }
        SyscallArgs::TakeMsg => format!("{c} takemsg"),
        SyscallArgs::MapGranted { va } => format!("{c} mapgranted {va:#x}"),
        SyscallArgs::DropGrant => format!("{c} dropgrant"),
        SyscallArgs::IommuCreateDomain => format!("{c} iommucreate"),
        SyscallArgs::IommuAttach { domain, device } => {
            format!("{c} iommuattach {domain} {device}")
        }
        SyscallArgs::IommuMap { domain, iova, va } => {
            format!("{c} iommumap {domain} {iova:#x} {va:#x}")
        }
        SyscallArgs::IommuUnmap { domain, iova } => format!("{c} iommuunmap {domain} {iova:#x}"),
        SyscallArgs::BlkSubmitBatch { queue, ops } => {
            format!("{c} blksubmit {queue} {}", ops.len())
        }
        SyscallArgs::BlkReapBatch { queue, max, wait } => {
            format!("{c} blkreap {queue} {max} {}", u8::from(*wait))
        }
        SyscallArgs::Getpid => format!("{c} getpid"),
        SyscallArgs::ThreadLookup { thread } => format!("{c} thread_lookup {thread:#x}"),
        SyscallArgs::DescriptorResolve { slot } => format!("{c} descriptor_resolve {slot}"),
        SyscallArgs::VmResolve { va } => format!("{c} vm_resolve {va:#x}"),
        SyscallArgs::SchedSetWeight { cntr, weight } => {
            format!("{c} setweight {cntr:#x} {weight}")
        }
        SyscallArgs::SchedThrottle { cntr, throttle } => {
            format!("{c} throttle {cntr:#x} {}", u8::from(*throttle))
        }
        SyscallArgs::Yield => format!("{c} yield"),
        SyscallArgs::TraceSnapshot => format!("{c} snapshot"),
        other => unreachable!("fuzzer never generates {other:?}"),
    }
}

fn parse_num(s: &str) -> usize {
    match s.strip_prefix("0x") {
        Some(hex) => usize::from_str_radix(hex, 16).expect("hex literal"),
        None => s.parse().expect("decimal literal"),
    }
}

fn parse_op(line: &str) -> Option<Op> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return None;
    }
    let mut p = line.split_whitespace();
    let cpu = parse_num(p.next().expect("cpu"));
    let name = p.next().expect("op name");
    let mut num = || parse_num(p.next().unwrap_or_else(|| panic!("args for {name}")));
    let args = match name {
        "mmap" => SyscallArgs::Mmap {
            va_base: num(),
            len: num(),
            writable: num() != 0,
        },
        "munmap" => SyscallArgs::Munmap {
            va_base: num(),
            len: num(),
        },
        "mmap2m" => SyscallArgs::MmapHuge2M {
            va_base: num(),
            writable: num() != 0,
        },
        "munmap2m" => SyscallArgs::MunmapHuge2M { va_base: num() },
        "newcontainer" => SyscallArgs::NewContainer {
            quota: num(),
            cpus: vec![],
        },
        "termcontainer" => SyscallArgs::TerminateContainer { cntr: num() },
        "newprocess" => SyscallArgs::NewProcess { cntr: num() },
        "newchild" => SyscallArgs::NewChildProcess,
        "termprocess" => SyscallArgs::TerminateProcess { proc: num() },
        "newthread" => SyscallArgs::NewThread {
            proc: num(),
            cpu: num(),
        },
        "newendpoint" => SyscallArgs::NewEndpoint { slot: num() },
        "send" => {
            let slot = num();
            let scalar = num() as u64;
            let grant_page_va = p.next().map(parse_num);
            SyscallArgs::Send {
                slot,
                scalars: [scalar, 0, 0, 0],
                grant_page_va,
                grant_endpoint_slot: None,
                grant_iommu_domain: None,
            }
        }
        "poll" => SyscallArgs::Poll { slot: num() },
        "call" => SyscallArgs::Call {
            slot: num(),
            scalars: [num() as u64, 0, 0, 0],
        },
        "reply" => SyscallArgs::Reply {
            scalars: [num() as u64, 0, 0, 0],
        },
        "replyrecv" => SyscallArgs::ReplyRecv {
            slot: num(),
            scalars: [num() as u64, 0, 0, 0],
        },
        "takemsg" => SyscallArgs::TakeMsg,
        "mapgranted" => SyscallArgs::MapGranted { va: num() },
        "dropgrant" => SyscallArgs::DropGrant,
        "iommucreate" => SyscallArgs::IommuCreateDomain,
        "iommuattach" => SyscallArgs::IommuAttach {
            domain: num() as u32,
            device: num() as u16,
        },
        "iommumap" => SyscallArgs::IommuMap {
            domain: num() as u32,
            iova: num(),
            va: num(),
        },
        "iommuunmap" => SyscallArgs::IommuUnmap {
            domain: num() as u32,
            iova: num(),
        },
        "blksubmit" => {
            let queue = num();
            let n = num();
            SyscallArgs::BlkSubmitBatch {
                queue,
                ops: (0..n)
                    .map(|i| BlkOp {
                        cookie: i as u64,
                        iova: 0x10_0000 + i * 0x1000,
                        lba: i as u64,
                        write: i % 2 == 0,
                    })
                    .collect(),
            }
        }
        "blkreap" => SyscallArgs::BlkReapBatch {
            queue: num(),
            max: num(),
            wait: num() != 0,
        },
        "getpid" => SyscallArgs::Getpid,
        "thread_lookup" => SyscallArgs::ThreadLookup { thread: num() },
        "descriptor_resolve" => SyscallArgs::DescriptorResolve { slot: num() },
        "vm_resolve" => SyscallArgs::VmResolve { va: num() },
        "setweight" => SyscallArgs::SchedSetWeight {
            cntr: num(),
            weight: num() as u32,
        },
        "throttle" => SyscallArgs::SchedThrottle {
            cntr: num(),
            throttle: num() != 0,
        },
        "yield" => SyscallArgs::Yield,
        "snapshot" => SyscallArgs::TraceSnapshot,
        other => panic!("unknown corpus op {other:?}"),
    };
    Some(Op { cpu, args })
}

fn parse_schedule(text: &str) -> Schedule {
    text.lines().filter_map(parse_op).collect()
}

// ----- random op generation and mutation ---------------------------------

fn random_va(rng: &mut XorShift64Star) -> usize {
    0x4000_0000 + rng.below(64) * 0x1000
}

fn random_ptr(rng: &mut XorShift64Star) -> usize {
    match rng.below(3) {
        0 => 0,
        1 => 0xdead_b000,
        _ => 0x20_0000 + rng.below(8) * 0x1000,
    }
}

/// A container pointer for the scheduler-control ops: half the time the
/// root container (always live, so weights/throttles take effect for
/// real), otherwise a guess that exercises the error paths.
fn sched_target(rng: &mut XorShift64Star) -> usize {
    if rng.chance(1, 2) {
        0x20_0000
    } else {
        random_ptr(rng)
    }
}

fn random_op(rng: &mut XorShift64Star, ncpus: usize) -> Op {
    let cpu = rng.below(ncpus);
    let args = match rng.below(31) {
        0 | 1 => SyscallArgs::Mmap {
            va_base: random_va(rng),
            len: rng.range(1, 9),
            writable: rng.chance(1, 2),
        },
        2 | 3 => SyscallArgs::Munmap {
            va_base: random_va(rng),
            len: rng.range(1, 9),
        },
        4 => SyscallArgs::MmapHuge2M {
            va_base: 0x8000_0000 + rng.below(4) * 0x20_0000,
            writable: true,
        },
        5 => SyscallArgs::MunmapHuge2M {
            va_base: 0x8000_0000 + rng.below(4) * 0x20_0000,
        },
        6 => SyscallArgs::NewContainer {
            quota: rng.below(64),
            cpus: vec![],
        },
        7 => SyscallArgs::TerminateContainer {
            cntr: random_ptr(rng),
        },
        8 => SyscallArgs::NewProcess {
            cntr: random_ptr(rng),
        },
        9 => SyscallArgs::TerminateProcess {
            proc: random_ptr(rng),
        },
        10 => SyscallArgs::NewThread {
            proc: random_ptr(rng),
            cpu: rng.below(ncpus),
        },
        11 => SyscallArgs::NewEndpoint {
            slot: rng.below(18),
        },
        12 => {
            let grant_page_va = rng.chance(1, 2).then(|| random_va(rng));
            SyscallArgs::Send {
                slot: rng.below(3),
                scalars: [rng.next_u64() % 100, 0, 0, 0],
                grant_page_va,
                grant_endpoint_slot: None,
                grant_iommu_domain: None,
            }
        }
        13 => SyscallArgs::Poll { slot: rng.below(3) },
        14 => SyscallArgs::TakeMsg,
        15 => SyscallArgs::MapGranted { va: random_va(rng) },
        16 => SyscallArgs::DropGrant,
        17 => SyscallArgs::Call {
            slot: rng.below(3),
            scalars: [rng.next_u64() % 100, 0, 0, 0],
        },
        18 => SyscallArgs::ReplyRecv {
            slot: rng.below(3),
            scalars: [rng.next_u64() % 100, 0, 0, 0],
        },
        19 => SyscallArgs::IommuCreateDomain,
        20 => SyscallArgs::IommuMap {
            domain: rng.below(2) as u32,
            iova: 0x10_0000 + rng.below(8) * 0x1000,
            va: random_va(rng),
        },
        21 => SyscallArgs::BlkSubmitBatch {
            queue: rng.below(2),
            ops: (0..rng.below(3))
                .map(|i| BlkOp {
                    cookie: rng.next_u64() % 8,
                    iova: 0x10_0000 + i * 0x1000,
                    lba: rng.next_u64() % 512,
                    write: rng.chance(1, 2),
                })
                .collect(),
        },
        22 => SyscallArgs::BlkReapBatch {
            queue: rng.below(2),
            max: rng.below(4),
            wait: false,
        },
        // Replicated reads: served from the per-CPU replicas when the
        // fuzzed CPU has a current thread, `WrongState` coverage when
        // it does not. Either way the `NrAppended` ledger balance and
        // the epoch replica cross-check run over them.
        23 => SyscallArgs::Getpid,
        24 => SyscallArgs::ThreadLookup {
            thread: random_ptr(rng),
        },
        25 => SyscallArgs::DescriptorResolve {
            slot: rng.below(18),
        },
        26 => SyscallArgs::VmResolve { va: random_va(rng) },
        // Multi-tenant scheduler control: weight changes (0 tears the
        // account down), throttle/unthrottle, and extra container
        // spawn churn so accounts retire under teardown. The budget
        // ledger must stay conserved through all of it.
        27 => SyscallArgs::SchedSetWeight {
            cntr: sched_target(rng),
            weight: rng.below(5) as u32,
        },
        28 => SyscallArgs::SchedThrottle {
            cntr: sched_target(rng),
            throttle: rng.chance(1, 2),
        },
        29 => SyscallArgs::NewContainer {
            quota: rng.below(16),
            cpus: vec![],
        },
        _ => SyscallArgs::Yield,
    };
    Op { cpu, args }
}

/// Schedule mutation: rewrite, insert, delete ops, or reassign CPUs.
fn mutate(rng: &mut XorShift64Star, parent: &Schedule, ncpus: usize) -> Schedule {
    let mut s = parent.clone();
    for _ in 0..rng.range(1, 5) {
        match rng.below(4) {
            // Insert a fresh op at a random point.
            0 => {
                let at = rng.below(s.len() + 1);
                s.insert(at, random_op(rng, ncpus));
            }
            // Delete an op.
            1 if !s.is_empty() => {
                s.remove(rng.below(s.len()));
            }
            // Rewrite an op wholesale.
            2 if !s.is_empty() => {
                let at = rng.below(s.len());
                s[at] = random_op(rng, ncpus);
            }
            // Schedule mutation: move an op to a different CPU.
            _ if !s.is_empty() => {
                let at = rng.below(s.len());
                s[at].cpu = rng.below(ncpus);
            }
            _ => s.push(random_op(rng, ncpus)),
        }
    }
    s
}

// ----- the differential oracle -------------------------------------------

fn error_code(e: SyscallError) -> u8 {
    match e {
        SyscallError::NoMem => 1,
        SyscallError::Quota => 2,
        SyscallError::Capacity => 3,
        SyscallError::NotFound => 4,
        SyscallError::Invalid => 5,
        SyscallError::Denied => 6,
        SyscallError::WrongState => 7,
        SyscallError::Fault => 8,
    }
}

/// One coverage point: which syscall variant ran and how it returned.
type CovPoint = (Discriminant<SyscallArgs>, u8);

fn boot_smp(ncpus: usize) -> SmpKernel {
    let k = SmpKernel::new(Kernel::boot(KernelConfig {
        mem_mib: 32,
        ncpus,
        root_quota: 1024,
    }));
    // Put a runnable thread on every CPU so fuzzed ops issued there
    // execute for real instead of uniformly failing with `WrongState`.
    // (Thread-capacity errors past the cap are themselves coverage.)
    let init_proc = k.init_proc();
    for cpu in 1..ncpus {
        let _ = k.syscall(
            0,
            SyscallArgs::NewThread {
                proc: init_proc,
                cpu,
            },
        );
    }
    // Node replication on: replicated reads route through the per-CPU
    // replicas, and both audit oracles additionally check replica
    // linearization and the `NrAppended` ledger balance.
    k.enable_nr();
    k.enable_incremental_audit();
    k
}

/// Runs one schedule under the differential oracle: incremental audit
/// after every op, flat cross-check audit every `epoch` ops and at the
/// end. Returns the coverage points the run lit up.
///
/// Panics (test failure) the moment either oracle goes red — the
/// failure message carries the op index, the schedule line, and the
/// structured violation (domain, equation, ledger entry).
fn run_differential(
    k: &SmpKernel,
    schedule: &Schedule,
    epoch: usize,
    tag: &str,
) -> HashSet<CovPoint> {
    let mut cov = HashSet::new();
    for (i, op) in schedule.iter().enumerate() {
        let ret = k.syscall(op.cpu, op.args.clone());
        let outcome = match ret.result {
            Ok(_) => 0,
            Err(e) => error_code(e),
        };
        cov.insert((std::mem::discriminant(&op.args), outcome));
        let audit = k.audit_incremental();
        assert!(
            audit.is_ok(),
            "{tag}: incremental audit red after op {i} `{}`: {}",
            format_op(op),
            audit.unwrap_err()
        );
        if (i + 1) % epoch == 0 {
            let audit = k.audit_total_wf();
            assert!(
                audit.is_ok(),
                "{tag}: flat epoch audit disagreed after op {i} `{}`: {}",
                format_op(op),
                audit.unwrap_err()
            );
        }
    }
    let audit = k.audit_total_wf();
    assert!(
        audit.is_ok(),
        "{tag}: final flat cross-check disagreed: {}",
        audit.unwrap_err()
    );
    cov
}

fn corpus_schedules() -> Vec<(&'static str, Schedule)> {
    vec![
        (
            "audit_mem_lifecycle.txt",
            parse_schedule(include_str!("corpus/audit_mem_lifecycle.txt")),
        ),
        (
            "audit_ipc_grants.txt",
            parse_schedule(include_str!("corpus/audit_ipc_grants.txt")),
        ),
        (
            "audit_smp_mixed.txt",
            parse_schedule(include_str!("corpus/audit_smp_mixed.txt")),
        ),
        (
            "audit_nr_readers.txt",
            parse_schedule(include_str!("corpus/audit_nr_readers.txt")),
        ),
        (
            "audit_nr_mixed.txt",
            parse_schedule(include_str!("corpus/audit_nr_mixed.txt")),
        ),
        (
            "audit_mt_churn.txt",
            parse_schedule(include_str!("corpus/audit_mt_churn.txt")),
        ),
        (
            "audit_mt_throttle.txt",
            parse_schedule(include_str!("corpus/audit_mt_throttle.txt")),
        ),
    ]
}

// ----- tests -------------------------------------------------------------

/// The checked-in corpus replays green under both oracles: these are
/// the regression anchors the fuzzer's interesting finds graduate into.
/// (CI additionally runs this under `lock-order-checks`.)
#[test]
fn corpus_replays_green_under_both_oracles() {
    for (name, schedule) in corpus_schedules() {
        assert!(!schedule.is_empty(), "{name} parsed to an empty schedule");
        let k = boot_smp(8);
        let cov = run_differential(&k, &schedule, 16, name);
        assert!(!cov.is_empty());
        // The corpus round-trips through the text format (replaying a
        // re-serialized corpus is the same schedule).
        for op in &schedule {
            let line = format_op(op);
            let reparsed = parse_op(&line).expect("round-trip");
            assert_eq!(
                std::mem::discriminant(&reparsed.args),
                std::mem::discriminant(&op.args),
                "{name}: `{line}` reparsed to a different op"
            );
            assert_eq!(reparsed.cpu, op.cpu);
        }
    }
}

/// The satellite property: after randomized syscall sequences on 1, 4
/// and 8 CPUs — with cache-resident pages (thread creation refills the
/// per-CPU caches) and in-flight pkt/blk pool handles — the
/// incremental audit and the flat audit agree.
#[test]
fn incremental_agrees_with_flat_on_1_4_8_cpus() {
    for &ncpus in &[1usize, 4, 8] {
        for case in 0..6u64 {
            let mut rng = XorShift64Star::new(0x5eed_a0d1 + case * 131 + ncpus as u64);
            let k = boot_smp(ncpus);

            // In-flight pool handles: acquire packet and block buffers
            // against the kernel's trace sink, release some, keep the
            // rest outstanding across the audits.
            let mut pkt_pool = PktPool::anonymous(8);
            pkt_pool.attach_trace(k.trace().clone());
            let mut blk_pool = BlkPool::anonymous(8);
            blk_pool.attach_trace(k.trace().clone());
            let mut pkts: Vec<_> = (0..rng.range(1, 5))
                .filter_map(|_| pkt_pool.try_acquire())
                .collect();
            let blks: Vec<_> = (0..rng.range(1, 5))
                .filter_map(|_| blk_pool.try_acquire())
                .collect();
            if pkts.len() > 1 {
                pkt_pool.release(pkts.pop().unwrap());
            }

            // Cache-resident pages: thread creation allocates kernel
            // objects through the per-CPU cache, leaving the rest of
            // the refill batch cached.
            let init_proc = k.init_proc();
            let ret = k.syscall(
                0,
                SyscallArgs::NewThread {
                    proc: init_proc,
                    cpu: 0,
                },
            );
            assert!(ret.is_ok(), "{ret:?}");
            assert!(k.cache_stats(0).refills > 0, "cache must be resident");

            let schedule: Schedule = (0..rng.range(10, 40))
                .map(|_| random_op(&mut rng, ncpus))
                .collect();
            run_differential(&k, &schedule, 8, &format!("ncpus={ncpus} case={case}"));

            // Outstanding handles stayed in the fold all along.
            for b in pkts {
                pkt_pool.release(b);
            }
            for b in blks {
                blk_pool.release(b);
            }
            let audit = k.audit_incremental();
            assert!(audit.is_ok(), "{audit:?}");
        }
    }
}

/// The scaled-out tentpole: coverage-guided differential fuzzing over
/// 8–16 simulated CPUs. The population starts from the checked-in
/// corpus plus random schedules; every round mutates a parent and
/// keeps the child iff it lights up new `(syscall, outcome)` coverage.
/// Both oracles run on every schedule; they must never disagree.
#[test]
fn coverage_guided_differential_fuzz() {
    let rounds: u64 = std::env::var("AUDIT_FUZZ_ROUNDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10);
    let mut rng = XorShift64Star::new(0x5eed_c0ff);
    let mut population: Vec<Schedule> = corpus_schedules().into_iter().map(|(_, s)| s).collect();
    let mut coverage: HashSet<CovPoint> = HashSet::new();

    // Seed round: run the corpus on 8 CPUs to establish baseline
    // coverage.
    for (i, s) in population.clone().iter().enumerate() {
        let k = boot_smp(8);
        coverage.extend(run_differential(&k, s, 16, &format!("seed {i}")));
    }
    let seed_cov = coverage.len();

    for round in 0..rounds {
        // 8–16 CPUs, rotating so schedules migrate across widths.
        let ncpus = 8 + (round as usize % 3) * 4;
        let parent = rng.below(population.len());
        let mut child = mutate(&mut rng, &population[parent], ncpus);
        // Parents bred at a wider round carry CPU ids past this
        // round's width; fold them in rather than trap on dispatch.
        for op in &mut child {
            op.cpu %= ncpus;
        }
        let k = boot_smp(ncpus);
        let cov = run_differential(&k, &child, 16, &format!("round {round} ncpus={ncpus}"));
        let novel = cov.iter().any(|p| !coverage.contains(p));
        coverage.extend(cov);
        if novel {
            population.push(child);
        }
    }
    assert!(
        coverage.len() >= seed_cov,
        "coverage can only grow ({} -> {})",
        seed_cov,
        coverage.len()
    );
    // The corpus alone cannot be the whole story: mutation must have
    // found at least one new (syscall, outcome) point in CI-sized runs.
    assert!(
        population.len() > 3 || coverage.len() > seed_cov,
        "fuzzer made no progress: {} coverage points, {} schedules",
        coverage.len(),
        population.len()
    );
}
