//! Fuzzing the verified shared service V: random client behaviour —
//! arbitrary ops (including unknown codes), page grants at arbitrary
//! times, interleaved GETs, closes and re-opens, and client crashes —
//! must never violate V's functional-correctness spec, the kernel's
//! `total_wf`, or isolation between the clients (§3, §4.3).

use atmosphere::kernel::iso::{domain_sets, endpoint_iso, memory_iso};
use atmosphere::kernel::noninterf::{setup_abv, XorShift64};
use atmosphere::kernel::vservice::{VService, OP_CLOSE, OP_GET, OP_PUT};
use atmosphere::kernel::{Kernel, SyscallArgs};
use atmosphere::spec::harness::Invariant;

/// One random client action.
fn client_step(k: &mut Kernel, rng: &mut XorShift64, cpu: usize, mapped: &mut bool) {
    let op = match rng.below(6) {
        0 | 1 => OP_PUT,
        2 => OP_GET,
        3 => OP_CLOSE,
        _ => 77, // unknown op: V must ignore it without leaking grants
    };
    if op == OP_GET {
        let _ = k.syscall(
            cpu,
            SyscallArgs::Call {
                slot: 0,
                scalars: [OP_GET, 0, 0, 0],
            },
        );
        return;
    }
    // Sometimes attach a page grant (mapping the page first if needed).
    let grant = rng.below(3) == 0;
    let va = 0x40_0000;
    if grant && !*mapped {
        let r = k.syscall(
            cpu,
            SyscallArgs::Mmap {
                va_base: va,
                len: 1,
                writable: true,
            },
        );
        *mapped = r.is_ok();
    }
    let _ = k.syscall(
        cpu,
        SyscallArgs::Send {
            slot: 0,
            scalars: [op, rng.below(100), 0, 0],
            grant_page_va: if grant && *mapped { Some(va) } else { None },
            grant_endpoint_slot: None,
            grant_iommu_domain: None,
        },
    );
}

#[test]
fn v_survives_arbitrary_client_behaviour() {
    for seed in [7u64, 99, 4242] {
        let (mut k, sc) = setup_abv();
        let mut v = VService::new(sc.tv, sc.cpu_v);
        let mut rng = XorShift64::new(seed);
        let mut mapped = [false, false];

        for step in 0..150 {
            let client = rng.below(2) as usize;
            let cpu = if client == 0 { sc.cpu_a } else { sc.cpu_b };
            // The client may be blocked in a call; give its CPU a tick.
            if k.pm.sched.current(cpu).is_some() {
                client_step(&mut k, &mut rng, cpu, &mut mapped[client]);
            }
            v.step(&mut k);
            // A caller woken by a reply retrieves it (or not — V must not
            // care whether clients consume replies).
            if rng.below(2) == 0 && k.pm.sched.current(cpu).is_some() {
                let _ = k.syscall(cpu, SyscallArgs::TakeMsg);
            }

            v.spec_wf(&k)
                .unwrap_or_else(|e| panic!("seed {seed} step {step}: V spec violated: {e}"));
            k.wf()
                .unwrap_or_else(|e| panic!("seed {seed} step {step}: total_wf violated: {e}"));
            let psi = k.view();
            let da = domain_sets(&psi, sc.a);
            let db = domain_sets(&psi, sc.b);
            assert!(
                memory_iso(&psi, &da.processes, &db.processes),
                "seed {seed} step {step}"
            );
            assert!(
                endpoint_iso(&psi, &da.threads, &db.threads),
                "seed {seed} step {step}"
            );
        }

        // Finally crash both clients; V cleans up; nothing user-mapped
        // remains anywhere.
        let _ = k.syscall(0, SyscallArgs::TerminateContainer { cntr: sc.a });
        let _ = k.syscall(0, SyscallArgs::TerminateContainer { cntr: sc.b });
        v.cleanup_client(&mut k, 0);
        v.cleanup_client(&mut k, 1);
        assert!(v.spec_wf(&k).is_ok());
        assert!(k.wf().is_ok(), "{:?}", k.wf());
        assert!(
            k.mem.alloc.mapped_pages().is_empty(),
            "seed {seed}: frames leaked"
        );
    }
}
