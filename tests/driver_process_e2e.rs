//! A user-space driver process served over real kernel IPC (§6.5's
//! `atmo-c1` configuration, executed end-to-end through the kernel):
//!
//! * the *driver* thread owns the NIC model and polls it;
//! * the *application* thread invokes the driver through an endpoint
//!   (call/reply) once per batch;
//! * cycle costs accrue on the kernel's per-CPU meter through the real
//!   syscall paths, and the resulting packets/second lands in the same
//!   regime as the Figure 4 `atmo-c1-b32` configuration.

use atmosphere::drivers::ixgbe::{IxgbeDevice, IxgbeDriver};
use atmosphere::drivers::DriverCosts;
use atmosphere::kernel::{Kernel, KernelConfig, SyscallArgs};
use atmosphere::spec::harness::Invariant;

#[test]
fn driver_process_call_reply_pipeline() {
    let mut k = Kernel::boot(KernelConfig {
        mem_mib: 64,
        ncpus: 1,
        root_quota: 2048,
    });
    let init_proc = k.init_proc;

    // The driver runs as a second thread of a separate process on the
    // same CPU, reachable through an endpoint (slot 0 on both sides).
    let drv_proc = k.syscall(0, SyscallArgs::NewChildProcess).val0() as usize;
    let t_drv = k
        .syscall(
            0,
            SyscallArgs::NewThread {
                proc: drv_proc,
                cpu: 0,
            },
        )
        .val0() as usize;
    let e = k.syscall(0, SyscallArgs::NewEndpoint { slot: 0 }).val0() as usize;
    k.pm.install_descriptor(t_drv, 0, e).unwrap();

    // Driver-side state: the NIC model, driven with the kernel's meter.
    let mut nic = IxgbeDriver::new(
        IxgbeDevice::new(k.machine.profile.freq_hz),
        DriverCosts::atmosphere(),
    );

    let t_app = k.init_thread;
    let batch = 32usize;
    let target: u64 = 20_000;
    let mut forwarded = 0u64;
    let start_cycles = k.cycles(0);

    // Park the driver thread in recv.
    k.pm.timer_tick(0);
    assert_eq!(k.pm.sched.current(0), Some(t_drv));
    assert!(k.syscall(0, SyscallArgs::Recv { slot: 0 }).is_ok());
    assert_eq!(k.pm.sched.current(0), Some(t_app));

    while forwarded < target {
        // Application: request a batch from the driver (call blocks the
        // app; the driver wakes with the request).
        let r = k.syscall(
            0,
            SyscallArgs::Call {
                slot: 0,
                scalars: [batch as u64, 0, 0, 0],
            },
        );
        assert!(r.is_ok(), "{r:?}");
        assert_eq!(k.pm.sched.current(0), Some(t_drv));

        // Driver: take the request, service the NIC, reply with the count.
        let req = k.syscall(0, SyscallArgs::TakeMsg);
        assert!(req.is_ok());
        let want = req.val0() as usize;
        let pkts = {
            let meter = k.machine.meter(0);
            let pkts = nic.rx_batch(meter, want);
            nic.tx_batch(meter, pkts.clone());
            pkts
        };
        let r = k.syscall(
            0,
            SyscallArgs::Reply {
                scalars: [pkts.len() as u64, 0, 0, 0],
            },
        );
        assert!(r.is_ok(), "{r:?}");

        // Driver parks itself again; the app resumes with the reply.
        let r = k.syscall(0, SyscallArgs::Recv { slot: 0 });
        assert!(r.is_ok());
        assert_eq!(k.pm.sched.current(0), Some(t_app));
        let reply = k.syscall(0, SyscallArgs::TakeMsg);
        assert!(reply.is_ok());
        forwarded += reply.val0();
    }

    let cycles = k.cycles(0) - start_cycles;
    let mpps = k.machine.profile.throughput(forwarded, cycles) / 1e6;
    // Through the full kernel path (two call/reply round trips worth of
    // syscalls per batch), throughput lands in the multi-Mpps band of the
    // same-core configurations — far above Linux (0.89) and below line
    // rate (14.2).
    assert!(
        (4.0..14.0).contains(&mpps),
        "driver-process pipeline at {mpps} Mpps"
    );
    assert!(k.wf().is_ok(), "{:?}", k.wf());
    assert_eq!(nic.device.tx_count(), nic.device.rx_count());
    let _ = init_proc;
}

#[test]
fn driver_process_survives_client_exit() {
    // The driver blocks in recv; its only client exits; the driver thread
    // must remain intact and serviceable by a new client.
    let mut k = Kernel::boot(KernelConfig {
        mem_mib: 64,
        ncpus: 1,
        root_quota: 2048,
    });
    let init_proc = k.init_proc;
    let drv_proc = k.syscall(0, SyscallArgs::NewChildProcess).val0() as usize;
    let t_drv = k
        .syscall(
            0,
            SyscallArgs::NewThread {
                proc: drv_proc,
                cpu: 0,
            },
        )
        .val0() as usize;
    let e = k.syscall(0, SyscallArgs::NewEndpoint { slot: 0 }).val0() as usize;
    k.pm.install_descriptor(t_drv, 0, e).unwrap();

    // A short-lived client thread calls the driver then dies mid-call.
    let t_client = k
        .syscall(
            0,
            SyscallArgs::NewThread {
                proc: init_proc,
                cpu: 0,
            },
        )
        .val0() as usize;
    k.pm.install_descriptor(t_client, 1, e).unwrap();

    // Driver parks in recv.
    while k.pm.sched.current(0) != Some(t_drv) {
        k.pm.timer_tick(0);
    }
    assert!(k.syscall(0, SyscallArgs::Recv { slot: 0 }).is_ok());

    // Client calls (driver wakes owing a reply), then the client is
    // terminated before the reply arrives.
    while k.pm.sched.current(0) != Some(t_client) {
        k.pm.timer_tick(0);
    }
    assert!(k
        .syscall(
            0,
            SyscallArgs::Call {
                slot: 1,
                scalars: [1, 0, 0, 0]
            }
        )
        .is_ok());

    // The driver wakes with the request and owes the dead-to-be client a
    // reply. Kill the client (kernel-internal path, splitting the borrow
    // between the process manager and the allocator as the kernel does).
    {
        let Kernel { pm, mem, .. } = &mut k;
        pm.terminate_thread(&mut mem.alloc, t_client).unwrap();
    }
    assert!(k.wf().is_ok(), "{:?}", k.wf());

    // The driver can still serve: its reply obligation was cleared, and a
    // fresh client can call it.
    assert_eq!(k.pm.thrd(t_drv).reply_partner, None);
    let t2 = k
        .syscall(
            0,
            SyscallArgs::NewThread {
                proc: init_proc,
                cpu: 0,
            },
        )
        .val0() as usize;
    k.pm.install_descriptor(t2, 1, e).unwrap();
    // Driver takes the stale message and parks again.
    while k.pm.sched.current(0) != Some(t_drv) {
        k.pm.timer_tick(0);
    }
    let _ = k.syscall(0, SyscallArgs::TakeMsg);
    assert!(k.syscall(0, SyscallArgs::Recv { slot: 0 }).is_ok());
    while k.pm.sched.current(0) != Some(t2) {
        k.pm.timer_tick(0);
    }
    assert!(k
        .syscall(
            0,
            SyscallArgs::Call {
                slot: 1,
                scalars: [2, 0, 0, 0]
            }
        )
        .is_ok());
    // The driver received the new request (other ready threads may be
    // scheduled first; rotate to it).
    while k.pm.sched.current(0) != Some(t_drv) {
        k.pm.timer_tick(0);
    }
    assert_eq!(k.pm.thrd(t_drv).reply_partner, Some(t2));
    assert!(k.wf().is_ok(), "{:?}", k.wf());
}
