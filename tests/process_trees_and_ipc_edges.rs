//! Process trees (fork-style child processes), thread exit, and IPC edge
//! cases: endpoint queue overflow, descriptor-table exhaustion, and grant
//! drops.

use atmosphere::kernel::refine::audited_syscall;
use atmosphere::kernel::{Kernel, KernelConfig, SyscallArgs, SyscallError};
use atmosphere::pm::types::MAX_ENDPOINT_SLOTS;
use atmosphere::spec::harness::Invariant;

fn ok(k: &mut Kernel, cpu: usize, args: SyscallArgs) -> u64 {
    let (ret, audit) = audited_syscall(k, cpu, args.clone());
    audit.unwrap_or_else(|e| panic!("{args:?}: {e}"));
    assert!(ret.is_ok(), "{args:?} failed: {ret:?}");
    ret.val0()
}

#[test]
fn child_process_trees_grow_and_die_together() {
    let mut k = Kernel::boot(KernelConfig::default());
    // init forks a child, which forks a grandchild (same container).
    let child = ok(&mut k, 0, SyscallArgs::NewChildProcess) as usize;
    let t_child = ok(
        &mut k,
        0,
        SyscallArgs::NewThread {
            proc: child,
            cpu: 0,
        },
    ) as usize;
    k.pm.timer_tick(0);
    while k.pm.sched.current(0) != Some(t_child) {
        k.pm.timer_tick(0);
    }
    let grandchild = ok(&mut k, 0, SyscallArgs::NewChildProcess) as usize;
    assert_eq!(k.pm.proc(grandchild).parent, Some(child));
    assert!(k.pm.proc(child).children.contains(&grandchild));
    assert!(k.wf().is_ok(), "{:?}", k.wf());

    // Terminating the child takes the grandchild with it.
    k.pm.timer_tick(0); // give init the CPU back
    while k.pm.sched.current(0) != Some(k.init_thread) {
        k.pm.timer_tick(0);
    }
    ok(&mut k, 0, SyscallArgs::TerminateProcess { proc: child });
    assert!(!k.pm.proc_perms.contains(child));
    assert!(!k.pm.proc_perms.contains(grandchild));
    assert!(k.wf().is_ok(), "{:?}", k.wf());
}

#[test]
fn exit_terminates_only_the_calling_thread() {
    let mut k = Kernel::boot(KernelConfig::default());
    let init_proc = k.init_proc;
    let t2 = ok(
        &mut k,
        0,
        SyscallArgs::NewThread {
            proc: init_proc,
            cpu: 0,
        },
    ) as usize;

    // t2 runs and exits.
    k.pm.timer_tick(0);
    assert_eq!(k.pm.sched.current(0), Some(t2));
    let ret = k.syscall(0, SyscallArgs::Exit);
    assert!(ret.is_ok());
    assert!(!k.pm.thrd_perms.contains(t2));
    // The CPU fell back to init.
    assert_eq!(k.pm.sched.current(0), Some(k.init_thread));
    assert!(k.wf().is_ok(), "{:?}", k.wf());
}

#[test]
fn descriptor_table_exhaustion() {
    let mut k = Kernel::boot(KernelConfig {
        mem_mib: 64,
        ncpus: 1,
        root_quota: 2048,
    });
    for slot in 0..MAX_ENDPOINT_SLOTS {
        ok(&mut k, 0, SyscallArgs::NewEndpoint { slot });
    }
    // Every slot taken: both an occupied slot and an out-of-range slot
    // are rejected as invalid.
    for slot in [0, MAX_ENDPOINT_SLOTS] {
        let (ret, audit) = audited_syscall(&mut k, 0, SyscallArgs::NewEndpoint { slot });
        assert_eq!(ret.result, Err(SyscallError::Invalid));
        audit.unwrap();
    }
    assert!(k.wf().is_ok(), "{:?}", k.wf());
}

#[test]
fn endpoint_grant_to_full_table_is_dropped_not_leaked() {
    let mut k = Kernel::boot(KernelConfig::default());
    let init_proc = k.init_proc;
    let t2 = ok(
        &mut k,
        0,
        SyscallArgs::NewThread {
            proc: init_proc,
            cpu: 1,
        },
    ) as usize;
    // Fill t2's descriptor table completely.
    let e0 = ok(&mut k, 0, SyscallArgs::NewEndpoint { slot: 0 }) as usize;
    for slot in 0..MAX_ENDPOINT_SLOTS {
        k.pm.install_descriptor(t2, slot, e0).unwrap();
    }
    let refs_before = k.pm.edpt(e0).refcount;

    // Send t2 another endpoint grant; there is no free slot, so the grant
    // must be dropped without corrupting refcounts.
    let e1 = ok(&mut k, 0, SyscallArgs::NewEndpoint { slot: 1 }) as usize;
    k.pm.timer_tick(1);
    let (ret, _) = audited_syscall(&mut k, 1, SyscallArgs::Recv { slot: 0 });
    assert!(ret.is_ok());
    let (ret, audit) = audited_syscall(
        &mut k,
        0,
        SyscallArgs::Send {
            slot: 1,
            scalars: [0; 4],
            grant_page_va: None,
            grant_endpoint_slot: Some(1),
            grant_iommu_domain: None,
        },
    );
    assert!(ret.is_ok(), "{ret:?}");
    audit.unwrap();
    assert_eq!(k.pm.edpt(e1).refcount, 1, "dropped grant adds no reference");
    assert_eq!(k.pm.edpt(e0).refcount, refs_before);
    assert!(k.wf().is_ok(), "{:?}", k.wf());
}

#[test]
fn endpoint_queue_overflow_reports_capacity() {
    use atmosphere::pm::types::MAX_ENDPOINT_QUEUE;
    let mut k = Kernel::boot(KernelConfig {
        mem_mib: 64,
        ncpus: 1,
        root_quota: 2048,
    });
    let init_proc = k.init_proc;
    let e = ok(&mut k, 0, SyscallArgs::NewEndpoint { slot: 0 }) as usize;

    // Spawn enough threads to overflow the endpoint's sender queue; each
    // blocks sending on the shared endpoint. Threads are spread across
    // child processes (a process holds at most MAX_PROC_THREADS threads).
    let n = MAX_ENDPOINT_QUEUE + 2;
    let mut threads = Vec::new();
    let mut proc = ok(&mut k, 0, SyscallArgs::NewChildProcess) as usize;
    let mut in_proc = 0;
    for _ in 0..n {
        if in_proc == 12 {
            proc = ok(&mut k, 0, SyscallArgs::NewChildProcess) as usize;
            in_proc = 0;
        }
        let t = ok(&mut k, 0, SyscallArgs::NewThread { proc, cpu: 0 }) as usize;
        k.pm.install_descriptor(t, 0, e).unwrap();
        threads.push(t);
        in_proc += 1;
    }
    let _ = init_proc;
    let mut full_seen = false;
    for _ in 0..4 * n {
        // Rotate until some spawned thread is current, then let it send.
        let cur = k.pm.timer_tick(0).unwrap();
        if cur == k.init_thread {
            continue;
        }
        let ret = k.syscall(
            0,
            SyscallArgs::Send {
                slot: 0,
                scalars: [1, 0, 0, 0],
                grant_page_va: None,
                grant_endpoint_slot: None,
                grant_iommu_domain: None,
            },
        );
        if ret.result == Err(SyscallError::Capacity) {
            full_seen = true;
            break;
        }
    }
    assert!(full_seen, "queue overflow surfaced as Capacity");
    assert!(k.wf().is_ok(), "{:?}", k.wf());
}
