//! Application pipelines end to end: kv-store requests travelling as UDP
//! payloads through the NIC model, Maglev flow affinity under churn, and
//! httpd fairness across the 20-connection wrk configuration (§6.6).

use atmosphere::apps::fnv1a;
use atmosphere::apps::httpd::Httpd;
use atmosphere::apps::kvstore::{KvRequest, KvResponse, KvStore};
use atmosphere::apps::maglev::MaglevTable;
use atmosphere::drivers::ixgbe::{IxgbeDevice, IxgbeDriver};
use atmosphere::drivers::pkt::Packet;
use atmosphere::drivers::DriverCosts;
use atmosphere::hw::cycles::CycleMeter;

/// Embeds a kv request into a UDP frame's payload (offset 42, after the
/// headers `Packet::udp64` lays out).
fn kv_frame(seq: u64, req: &KvRequest) -> Packet {
    let mut pkt = Packet::udp64(seq);
    let wire = req.encode();
    let end = 42 + wire.len();
    if pkt.data.len() < end {
        pkt.data.resize(end, 0);
    }
    pkt.data[42..end].copy_from_slice(&wire);
    pkt
}

#[test]
fn kv_store_over_the_nic() {
    // Requests arrive through the NIC model; the server parses payloads,
    // serves them from the real table, and the test verifies every
    // response against a reference model.
    let mut kv = KvStore::with_capacity(1 << 12);
    let mut reference = std::collections::BTreeMap::new();
    let mut nic = IxgbeDriver::new(IxgbeDevice::new(2_200_000_000), DriverCosts::atmosphere());
    let mut meter = CycleMeter::new();

    // A deterministic request stream: interleaved SET/GET/DELETE.
    let mut inbox: Vec<Packet> = Vec::new();
    for i in 0..400u32 {
        let key = (i % 64).to_le_bytes().to_vec();
        let req = match i % 5 {
            0 | 1 => KvRequest::Set(key.clone(), i.to_be_bytes().to_vec()),
            4 => KvRequest::Delete(key.clone()),
            _ => KvRequest::Get(key.clone()),
        };
        inbox.push(kv_frame(i as u64, &req));
    }

    // The NIC "receives" our crafted frames by pacing real device frames
    // and substituting payloads (the device model generates frames; the
    // workload defines their contents).
    let mut served = 0usize;
    let mut idx = 0usize;
    while idx < inbox.len() {
        let arrivals = nic.rx_batch(&mut meter, 32).len().min(inbox.len() - idx);
        for _ in 0..arrivals {
            let pkt = &inbox[idx];
            idx += 1;
            let req = KvRequest::decode(&pkt.data[42..]).expect("well-formed request");
            let resp = kv.serve(&req);
            // Reference model agreement.
            match &req {
                KvRequest::Set(k, v) => {
                    assert_eq!(resp, KvResponse::Stored);
                    reference.insert(k.clone(), v.clone());
                }
                KvRequest::Get(k) => match reference.get(k) {
                    Some(v) => assert_eq!(resp, KvResponse::Value(v.clone())),
                    None => assert_eq!(resp, KvResponse::Miss),
                },
                KvRequest::Delete(k) => {
                    if reference.remove(k).is_some() {
                        assert_eq!(resp, KvResponse::Deleted);
                    } else {
                        assert_eq!(resp, KvResponse::Miss);
                    }
                }
            }
            served += 1;
        }
    }
    assert_eq!(served, 400);
    assert!(meter.now() > 0);
}

#[test]
fn maglev_flow_affinity_through_the_nic() {
    // Flows arriving through the NIC keep hitting the same backend, and
    // rebalance minimally when a backend is drained.
    let backends: Vec<String> = (0..6).map(|i| format!("b{i}")).collect();
    let full = MaglevTable::new(&backends, 65537);
    let drained = MaglevTable::new(&backends[..5], 65537);

    let mut nic = IxgbeDriver::new(IxgbeDevice::new(2_200_000_000), DriverCosts::atmosphere());
    let mut meter = CycleMeter::new();
    let mut first_choice: std::collections::BTreeMap<Vec<u8>, usize> = Default::default();
    let mut moved = 0usize;
    let mut kept = 0usize;

    let mut processed = 0;
    while processed < 3000 {
        let mut pkts = nic.rx_batch(&mut meter, 32);
        for p in pkts.iter_mut() {
            processed += 1;
            let key = p.flow_key().unwrap().to_vec();
            let b = full.lookup(fnv1a(&key));
            // Affinity: repeated packets of a flow choose identically.
            if let Some(&prev) = first_choice.get(&key) {
                assert_eq!(prev, b, "flow changed backend without churn");
            } else {
                first_choice.insert(key.clone(), b);
            }
            // Churn comparison (backend 5 drained).
            if b != 5 {
                kept += 1;
                if drained.lookup(fnv1a(&key)) != b {
                    moved += 1;
                }
            }
        }
        nic.tx_batch(&mut meter, pkts);
    }
    assert!(kept > 0);
    assert!(
        (moved as f64) < 0.25 * kept as f64,
        "{moved}/{kept} flows moved on drain"
    );
}

#[test]
fn httpd_round_robin_is_fair_under_sustained_load() {
    let mut srv = Httpd::new();
    srv.add_page("/a", b"aaaa");
    srv.add_page("/b", b"bbbb");
    let conns: Vec<_> = (0..20).map(|_| srv.open_connection()).collect();
    let mut per_conn = vec![0usize; conns.len()];

    for round in 0..50 {
        for (i, &c) in conns.iter().enumerate() {
            let path = if (round + i) % 2 == 0 { "/a" } else { "/b" };
            srv.client_send(
                c,
                format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes(),
            );
        }
        srv.poll_step();
        for (i, &c) in conns.iter().enumerate() {
            let out = srv.client_recv(c);
            if !out.is_empty() {
                per_conn[i] += 1;
                let text = String::from_utf8(out).unwrap();
                assert!(text.starts_with("HTTP/1.1 200"));
            }
        }
    }
    // Drain what is still queued.
    while srv.poll_step() > 0 {}
    for (i, &c) in conns.iter().enumerate() {
        per_conn[i] += usize::from(!srv.client_recv(c).is_empty());
    }
    // Fairness: no connection starves.
    let (min, max) = (
        per_conn.iter().min().copied().unwrap(),
        per_conn.iter().max().copied().unwrap(),
    );
    assert!(min > 0, "a connection starved: {per_conn:?}");
    assert!(max - min <= 2, "unfair service: {per_conn:?}");
    assert_eq!(srv.served, 20 * 50);
}
