//! Multi-tenant scheduling end-to-end: weighted CPU budgets must track
//! the weight-proportional oracle across CPU counts, and IPC budget
//! inheritance must bill server time to the calling client's account
//! without disabling the handoff-streak starvation guard.

use atmosphere::kernel::{Kernel, KernelConfig, SyscallArgs, SyscallError};
use atmosphere::spec::harness::Invariant;

/// Boots `ncpus` and gives each of the three tenant containers one
/// thread per CPU plus a budget weight; returns the container pointers.
/// Tenants own zero CPUs (CPUs are strictly partitioned on creation):
/// their threads share the root-owned CPUs through the ancestor rule,
/// which is exactly the contended multi-tenant regime.
fn boot_tenants(ncpus: usize, weights: [u32; 3]) -> (Kernel, [usize; 3]) {
    let mut k = Kernel::boot(KernelConfig {
        mem_mib: 64,
        ncpus,
        root_quota: 4096,
    });
    let mut cntrs = [0usize; 3];
    for (i, &w) in weights.iter().enumerate() {
        let c = k
            .syscall(
                0,
                SyscallArgs::NewContainer {
                    quota: 256,
                    cpus: vec![],
                },
            )
            .val0() as usize;
        let p = k.syscall(0, SyscallArgs::NewProcess { cntr: c }).val0() as usize;
        for cpu in 0..ncpus {
            let r = k.syscall(0, SyscallArgs::NewThread { proc: p, cpu });
            assert!(r.is_ok(), "tenant {i} cpu {cpu}: {r:?}");
        }
        let r = k.syscall(0, SyscallArgs::SchedSetWeight { cntr: c, weight: w });
        assert!(r.is_ok(), "setweight tenant {i}: {r:?}");
        cntrs[i] = c;
    }
    (k, cntrs)
}

#[test]
fn weighted_fairness_tracks_weight_proportional_oracle() {
    // Weights 1:2:4 with refills well under tick capacity, so every
    // tenant is refill-bound: long-run consumption must be proportional
    // to weight regardless of how many CPUs the threads spread over.
    let weights = [1u32, 2, 4];
    for ncpus in [1usize, 4, 8] {
        let (mut k, cntrs) = boot_tenants(ncpus, weights);
        const ROUNDS: usize = 4000;
        for round in 0..ROUNDS {
            for cpu in 0..ncpus {
                k.pm.timer_tick(cpu);
            }
            if round % 512 == 0 {
                assert!(k.wf().is_ok(), "ncpus {ncpus} round {round}: {:?}", k.wf());
            }
        }
        // Budget conservation straight from the live ledger.
        let (granted, consumed, refunded, remaining) = k.pm.sched.budget_totals();
        assert_eq!(
            granted,
            consumed + refunded + remaining,
            "ncpus {ncpus}: budget ledger out of balance"
        );

        // Oracle: consumed_i / weight_i equal across tenants. Burst
        // grants and in-flight remainders are both weight-proportional,
        // so the normalized consumption should agree within a few
        // percent after ~250 refill periods.
        let per_weight: Vec<f64> = cntrs
            .iter()
            .zip(weights)
            .map(|(&c, w)| {
                let acct = k.pm.sched.account(c).expect("tenant keeps its account");
                assert!(acct.consumed > 0, "ncpus {ncpus}: tenant {c:#x} starved");
                acct.consumed as f64 / w as f64
            })
            .collect();
        let mean = per_weight.iter().sum::<f64>() / per_weight.len() as f64;
        for (i, pw) in per_weight.iter().enumerate() {
            let dev = (pw - mean).abs() / mean;
            assert!(
                dev < 0.10,
                "ncpus {ncpus}: tenant {i} consumed/weight {pw:.1} deviates \
                 {:.1}% from mean {mean:.1} (oracle: weight-proportional)",
                dev * 100.0
            );
        }
        assert!(k.wf().is_ok(), "{:?}", k.wf());
    }
}

/// Client in container A, server in container B, both weighted, both
/// homed on CPU 0, connected through one endpoint. Returns the kernel,
/// the two containers, and the two threads (client, server) with the
/// server already parked in `recv`.
fn boot_client_server() -> (Kernel, [usize; 2], [usize; 2]) {
    let mut k = Kernel::boot(KernelConfig {
        mem_mib: 64,
        ncpus: 1,
        root_quota: 4096,
    });
    let mut cntrs = [0usize; 2];
    let mut thrds = [0usize; 2];
    for (i, slot) in cntrs.iter_mut().enumerate() {
        let c = k
            .syscall(
                0,
                SyscallArgs::NewContainer {
                    quota: 256,
                    cpus: vec![],
                },
            )
            .val0() as usize;
        let p = k.syscall(0, SyscallArgs::NewProcess { cntr: c }).val0() as usize;
        thrds[i] = k
            .syscall(0, SyscallArgs::NewThread { proc: p, cpu: 0 })
            .val0() as usize;
        // Generous burst so neither side throttles mid-test.
        let r = k.syscall(0, SyscallArgs::SchedSetWeight { cntr: c, weight: 8 });
        assert!(r.is_ok(), "{r:?}");
        *slot = c;
    }
    let e = k.syscall(0, SyscallArgs::NewEndpoint { slot: 0 }).val0() as usize;
    k.pm.install_descriptor(thrds[0], 0, e).unwrap();
    k.pm.install_descriptor(thrds[1], 0, e).unwrap();
    // Rotate the server in and park it as the endpoint's receiver.
    run_until_current(&mut k, thrds[1]);
    assert!(k.syscall(0, SyscallArgs::Recv { slot: 0 }).is_ok());
    run_until_current(&mut k, thrds[0]);
    (k, cntrs, thrds)
}

/// Round-robin ticks CPU 0 until `t` is current (bounded).
fn run_until_current(k: &mut Kernel, t: usize) {
    for _ in 0..64 {
        if k.pm.sched.current(0) == Some(t) {
            return;
        }
        k.pm.timer_tick(0);
    }
    panic!("thread {t:#x} never became current");
}

/// Scheduler-control authority is the strict terminate-container rule:
/// a tenant can never retarget its *own* budget account — otherwise
/// `SchedSetWeight{self, 0}` tears the account down (unmetered),
/// a huge self-weight inflates it, and `SchedThrottle{self, false}`
/// lifts a parent-imposed throttle.
#[test]
fn sched_authority_excludes_the_callers_own_container() {
    let mut k = Kernel::boot(KernelConfig {
        mem_mib: 64,
        ncpus: 1,
        root_quota: 4096,
    });
    let c = k
        .syscall(
            0,
            SyscallArgs::NewContainer {
                quota: 256,
                cpus: vec![],
            },
        )
        .val0() as usize;
    let p = k.syscall(0, SyscallArgs::NewProcess { cntr: c }).val0() as usize;
    let t = k
        .syscall(0, SyscallArgs::NewThread { proc: p, cpu: 0 })
        .val0() as usize;
    // The parent (root) meters the tenant: in-subtree, allowed.
    let r = k.syscall(0, SyscallArgs::SchedSetWeight { cntr: c, weight: 4 });
    assert!(r.is_ok(), "{r:?}");

    // Now the tenant's own thread tries to escape its budget.
    run_until_current(&mut k, t);
    for args in [
        SyscallArgs::SchedSetWeight { cntr: c, weight: 0 },
        SyscallArgs::SchedSetWeight {
            cntr: c,
            weight: u32::MAX,
        },
        SyscallArgs::SchedThrottle {
            cntr: c,
            throttle: false,
        },
    ] {
        let r = k.syscall(0, args.clone());
        assert_eq!(
            r.result,
            Err(SyscallError::Denied),
            "self-targeted {args:?} must be denied"
        );
    }
    assert_eq!(k.pm.sched.weight(c), 4, "account untouched");
    assert!(k.wf().is_ok(), "{:?}", k.wf());
}

/// An administrative throttle parks the container's running thread at
/// its next tick, holds across arbitrarily many refill periods (a
/// refill lifts only exhaustion throttles), and releases the threads
/// on the explicit unthrottle.
#[test]
fn admin_throttle_parks_runners_and_holds_across_refills() {
    let mut k = Kernel::boot(KernelConfig {
        mem_mib: 64,
        ncpus: 1,
        root_quota: 4096,
    });
    let c = k
        .syscall(
            0,
            SyscallArgs::NewContainer {
                quota: 256,
                cpus: vec![],
            },
        )
        .val0() as usize;
    let p = k.syscall(0, SyscallArgs::NewProcess { cntr: c }).val0() as usize;
    let t = k
        .syscall(0, SyscallArgs::NewThread { proc: p, cpu: 0 })
        .val0() as usize;
    // Generous weight: the account keeps budget the whole test, so any
    // unthrottle we observe would be the (wrong) refill path.
    let r = k.syscall(0, SyscallArgs::SchedSetWeight { cntr: c, weight: 8 });
    assert!(r.is_ok(), "{r:?}");

    run_until_current(&mut k, t);
    k.pm.sched_throttle(c, true).unwrap();
    // Still Running: it parks at its next tick, per the documented
    // contract — and must NOT come back via rotate().
    k.pm.timer_tick(0);
    assert_ne!(k.pm.sched.current(0), Some(t), "runner parked at its tick");
    assert!(
        k.pm.sched
            .account(c)
            .unwrap()
            .parked()
            .iter()
            .any(|&(pt, _)| pt == t),
        "thread parked in its account, not on the run queue"
    );
    assert!(k.wf().is_ok(), "{:?}", k.wf());

    let consumed0 = k.pm.sched.account(c).unwrap().consumed;
    // Many refill periods with remaining budget: the admin throttle
    // must hold and the tenant must burn zero CPU.
    for _ in 0..128 {
        k.pm.timer_tick(0);
        assert!(k.pm.sched.throttled(c), "refill lifted an admin throttle");
    }
    assert_eq!(
        k.pm.sched.account(c).unwrap().consumed,
        consumed0,
        "throttled tenant consumed CPU"
    );
    assert!(k.pm.sched.account(c).unwrap().remaining > 0);

    // Explicit unthrottle: the thread re-enqueues and runs again.
    k.pm.sched_throttle(c, false).unwrap();
    assert!(!k.pm.sched.throttled(c));
    run_until_current(&mut k, t);
    assert!(k.wf().is_ok(), "{:?}", k.wf());
}

#[test]
fn ipc_fast_path_bills_server_time_to_the_client() {
    let (mut k, [a, b], [t_client, t_server]) = boot_client_server();

    // Call takes the direct handoff: the server now runs on the
    // client's account.
    let hits0 = k.trace_snapshot().counters.pm.fastpath.hits;
    let r = k.syscall(
        0,
        SyscallArgs::Call {
            slot: 0,
            scalars: [7, 0, 0, 0],
        },
    );
    assert!(r.is_ok(), "{r:?}");
    assert_eq!(k.pm.sched.current(0), Some(t_server));
    assert_eq!(k.trace_snapshot().counters.pm.fastpath.hits, hits0 + 1);
    assert_eq!(
        k.pm.sched.billed(t_server, b),
        a,
        "handoff must inherit the client's billing account"
    );

    // The tick while the server runs is charged to the client.
    let a0 = k.pm.sched.account(a).unwrap().consumed;
    let b0 = k.pm.sched.account(b).unwrap().consumed;
    k.pm.timer_tick(0);
    assert_eq!(k.pm.sched.account(a).unwrap().consumed, a0 + 1);
    assert_eq!(k.pm.sched.account(b).unwrap().consumed, b0);
    // Going through the ready queue ended the handoff: the server is
    // back on its own account.
    assert_eq!(k.pm.sched.billed(t_server, b), b);

    // Reply and re-receive; the caller resumes and is billed to its own
    // account as usual.
    run_until_current(&mut k, t_server);
    let r = k.syscall(
        0,
        SyscallArgs::ReplyRecv {
            slot: 0,
            scalars: [9, 0, 0, 0],
        },
    );
    assert!(r.is_ok(), "{r:?}");
    assert_eq!(k.pm.sched.current(0), Some(t_client));
    assert_eq!(k.pm.sched.billed(t_server, b), b);
    let a1 = k.pm.sched.account(a).unwrap().consumed;
    let b1 = k.pm.sched.account(b).unwrap().consumed;
    k.pm.timer_tick(0);
    assert_eq!(k.pm.sched.account(a).unwrap().consumed, a1 + 1);
    assert_eq!(k.pm.sched.account(b).unwrap().consumed, b1);
    assert!(k.wf().is_ok(), "{:?}", k.wf());
}

#[test]
fn inherited_billing_does_not_disable_the_handoff_guard() {
    let (mut k, [_a, _b], [t_client, t_server]) = boot_client_server();

    // Ping-pong call/reply_recv round trips without a timer tick: each
    // direct handoff grows the streak, and once it reaches the budget
    // the fast path must yield to the run queue even though billing
    // inheritance is active.
    let snap0 = k.trace_snapshot();
    let mut hits = 0u64;
    for round in 0..6 {
        let r = k.syscall(
            0,
            SyscallArgs::Call {
                slot: 0,
                scalars: [round, 0, 0, 0],
            },
        );
        assert!(r.is_ok(), "{r:?}");
        let snap = k.trace_snapshot();
        if snap.counters.pm.fastpath.fallback_budget > snap0.counters.pm.fastpath.fallback_budget {
            // The guard fired on the call: the request went through the
            // slow rendezvous instead of a ninth consecutive handoff.
            assert_eq!(
                snap.counters.pm.fastpath.hits - snap0.counters.pm.fastpath.hits,
                atmosphere::pm::manager::HANDOFF_BUDGET as u64,
                "guard must fire exactly at the handoff budget"
            );
            assert!(k.wf().is_ok(), "{:?}", k.wf());
            // A tick resets the streak; the fast path resumes.
            run_until_current(&mut k, t_server);
            let before = k.trace_snapshot().counters.pm.fastpath.hits;
            let r = k.syscall(
                0,
                SyscallArgs::ReplyRecv {
                    slot: 0,
                    scalars: [0, 0, 0, 0],
                },
            );
            assert!(r.is_ok(), "{r:?}");
            assert_eq!(k.trace_snapshot().counters.pm.fastpath.hits, before + 1);
            assert_eq!(k.pm.sched.current(0), Some(t_client));
            return;
        }
        assert_eq!(k.pm.sched.current(0), Some(t_server));
        hits += 1;
        let r = k.syscall(
            0,
            SyscallArgs::ReplyRecv {
                slot: 0,
                scalars: [0, 0, 0, 0],
            },
        );
        assert!(r.is_ok(), "{r:?}");
        hits += 1;
        let _ = hits;
    }
    panic!("handoff guard never fired within 12 handoffs (budget is 8)");
}
