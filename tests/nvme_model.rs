//! Edge tests for the NVMe completion model (§6.5.2, Figure 5) and the
//! kernel's mirror of its timing constants.
//!
//! The device model promises `complete = max(submit + latency,
//! prev_complete_of_same_kind + service [+ penalty])`. These tests pin
//! the two Figure 5 regimes (QD1 latency-bound, QD32 service-rate-bound),
//! the independence of the read and write service chains, completion
//! monotonicity — and that `atmo_kernel::blk::BlkTiming` (the kernel
//! cannot depend on the drivers crate) stays numerically identical to
//! `atmo_drivers::nvme::NvmeSpec`.

use atmo_drivers::nvme::{IoKind, NvmeDevice, NvmeSpec};
use atmo_drivers::DriverCosts;
use atmo_kernel::blk::{BlkTiming, BLK_WRITE_PENALTY};

/// c220g5 host clock.
const FREQ: u64 = 2_200_000_000;

/// Closed-loop IOPS against the raw device model: keep `qd` I/Os in
/// flight, resubmit on completion, zero host cost.
fn closed_loop_iops(kind: IoKind, qd: u64, total: u64, penalty: u64) -> f64 {
    let mut dev = NvmeDevice::new(NvmeSpec::p3700(FREQ));
    let mut now = 0u64;
    let mut submitted = 0u64;
    while submitted < qd.min(total) {
        dev.submit_with_penalty(now, kind, penalty);
        submitted += 1;
    }
    while dev.completed() < total {
        now += dev.cycles_until_completion(now).expect("I/Os in flight");
        let done = dev.poll(now);
        for _ in 0..done {
            if submitted < total {
                dev.submit_with_penalty(now, kind, penalty);
                submitted += 1;
            }
        }
    }
    total as f64 * FREQ as f64 / now as f64
}

#[test]
fn qd1_reads_are_latency_bound() {
    // One read in flight: each completes `read_latency` (~76 µs) after
    // submission, so everyone lands near 13 K IOPS no matter how cheap
    // the host software is.
    let iops = closed_loop_iops(IoKind::Read, 1, 2_000, 0);
    assert!(
        (12_000.0..14_000.0).contains(&iops),
        "QD1 reads must be latency-bound near 13K IOPS, got {iops:.0}"
    );
}

#[test]
fn qd32_reads_are_service_rate_bound() {
    // 32 in flight: latency is hidden and the device's internal service
    // rate (~450 K IOPS) is the bound.
    let iops = closed_loop_iops(IoKind::Read, 32, 50_000, 0);
    assert!(
        (400_000.0..460_000.0).contains(&iops),
        "QD32 reads must be service-rate-bound near 450K IOPS, got {iops:.0}"
    );
}

#[test]
fn qd32_writes_are_bound_by_the_write_service_chain() {
    let penalty = DriverCosts::atmosphere().nvme_write_extra;
    let iops = closed_loop_iops(IoKind::Write, 32, 50_000, penalty);
    assert!(
        (215_000.0..245_000.0).contains(&iops),
        "QD32 writes with the per-write penalty must land near 230K IOPS, got {iops:.0}"
    );
    // Without the penalty the write cache peaks at its service rate.
    let raw = closed_loop_iops(IoKind::Write, 32, 50_000, 0);
    assert!(raw > iops, "the write penalty must cost throughput");
    assert!(
        (245_000.0..266_000.0).contains(&raw),
        "raw QD32 writes must peak near 256K IOPS, got {raw:.0}"
    );
}

#[test]
fn read_and_write_service_chains_are_independent() {
    // A long read chain must not delay writes: the per-kind `last
    // complete` chains are separate.
    let spec = NvmeSpec::p3700(FREQ);
    let mut dev = NvmeDevice::new(spec);
    for _ in 0..8 {
        dev.submit(0, IoKind::Read);
    }
    dev.submit(0, IoKind::Write);
    // First write completes at max(write_latency, write_service): the
    // read backlog is irrelevant.
    let first_write = spec.write_latency.max(spec.write_service);
    assert_eq!(dev.poll(first_write.saturating_sub(1)), 0);
    assert_eq!(
        dev.poll(first_write),
        1,
        "write must not queue behind reads"
    );
    // The reads then drain on their own chain: the first at the flash
    // latency, the rest spaced by the read service time.
    let last_read = spec.read_latency + 7 * spec.read_service;
    dev.poll(last_read);
    assert_eq!(dev.completed(), 9);
}

#[test]
fn completions_follow_the_max_of_latency_and_service() {
    // Submit reads at staggered times and check every completion
    // boundary against the recurrence
    // `complete = max(submit + latency, prev_complete + service)`.
    let spec = NvmeSpec::p3700(FREQ);
    let mut dev = NvmeDevice::new(spec);
    let submit_times = [0u64, 10, 10, 50_000, 200_000, 200_001];
    let mut expected = Vec::new();
    let mut prev = 0u64;
    for &t in &submit_times {
        dev.submit(t, IoKind::Read);
        prev = (t + spec.read_latency).max(prev + spec.read_service);
        expected.push(prev);
    }
    // The chain is monotone and the queue reports it faithfully.
    assert!(expected.windows(2).all(|w| w[0] <= w[1]));
    for &c in &expected {
        assert_eq!(dev.poll(c - 1), 0, "nothing completes before its boundary");
        assert_eq!(dev.poll(c), 1, "a completion lands exactly at its boundary");
    }
    assert_eq!(dev.completed(), submit_times.len() as u64);
    assert_eq!(dev.queue_depth(), 0);
}

#[test]
fn kernel_timing_mirrors_the_device_model() {
    // `atmo-drivers` depends on `atmo-kernel`, so the kernel carries its
    // own copy of the P3700 constants. This root-level test (which sees
    // both crates) keeps the copies from drifting.
    let k = BlkTiming::p3700(FREQ);
    let d = NvmeSpec::p3700(FREQ);
    assert_eq!(k.read_latency, d.read_latency);
    assert_eq!(k.write_latency, d.write_latency);
    assert_eq!(k.read_service, d.read_service);
    assert_eq!(k.write_service, d.write_service);
    assert_eq!(
        BLK_WRITE_PENALTY,
        DriverCosts::atmosphere().nvme_write_extra,
        "kernel write penalty must mirror the driver cost model"
    );
}

#[test]
fn zero_copy_descriptors_undercut_the_copying_path() {
    // The premise of the zero-copy block datapath: SQE + CQE handling
    // plus an amortized doorbell must be strictly cheaper than the
    // copying per-I/O cost.
    let c = DriverCosts::atmosphere();
    let zc_per_io = c.sq_desc_zc + c.cq_desc_zc + 2 * c.doorbell / 32;
    assert!(
        zc_per_io < c.nvme_io,
        "zc per-I/O ({zc_per_io}) must undercut nvme_io ({})",
        c.nvme_io
    );
}
