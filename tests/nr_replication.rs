//! Replica-linearization property tests for the node-replication layer.
//!
//! The core claim (`nr_wf`) is that every replica at completion tail
//! `t` equals the flat fold of the abstract op sequence `[0, t)` over
//! the initial state, and that a stale replica is *exactly* stale — its
//! state reflects precisely the prefix it has replayed, never anything
//! newer. These tests check the claim two ways:
//!
//! * against a raw [`NodeReplicated`] over a small register machine,
//!   with a shadow log the test folds independently (so the oracle does
//!   not share code with the implementation);
//! * against the kernel's own `PmView`/`MemView` replicas under fuzzed
//!   syscall schedules on 1, 4, 8 and 16 CPUs, where the epoch audit
//!   (`audit_total_wf`) additionally cross-checks each replica
//!   bit-for-bit against a fresh projection of the locked state.

use atmosphere::kernel::{Kernel, KernelConfig, SmpKernel, SyscallArgs};
use atmosphere::nr::{NodeReplicated, NrDispatch, DEFAULT_LOG_CAPACITY};
use atmosphere::spec::XorShift64Star;

// ----- a small, order-sensitive register machine -------------------------

/// Ops over four registers. `Set` after `Add` differs from `Add` after
/// `Set`, so replay *order* (not just multiplicity) is observable.
#[derive(Clone, Copy, Debug)]
enum RegOp {
    Set(usize, u64),
    Add(usize, u64),
}

#[derive(Clone, PartialEq, Eq, Debug, Default)]
struct Regs {
    regs: [u64; 4],
    applied: u64,
}

impl NrDispatch for Regs {
    type Op = RegOp;
    fn apply(&mut self, op: &RegOp) {
        match *op {
            RegOp::Set(r, v) => self.regs[r] = v,
            RegOp::Add(r, d) => self.regs[r] = self.regs[r].wrapping_add(d),
        }
        self.applied += 1;
    }
}

/// The independent oracle: a flat fold of a shadow-log prefix.
fn fold(prefix: &[RegOp]) -> Regs {
    let mut s = Regs::default();
    for op in prefix {
        s.apply(op);
    }
    s
}

fn random_regop(rng: &mut XorShift64Star) -> RegOp {
    let reg = rng.below(4);
    if rng.chance(1, 2) {
        RegOp::Set(reg, rng.next_u64() % 1000)
    } else {
        RegOp::Add(reg, rng.next_u64() % 1000)
    }
}

/// Fuzzed mixes of `execute_mut` (append + local replay) and the
/// fire-and-forget `append` on 1/4/8/16 replicas: at every step, every
/// probed replica equals the fold of exactly its replayed prefix — the
/// stale-read bound — and reads linearize at the published tail.
#[test]
fn replica_equals_fold_of_replayed_prefix() {
    for &ncpus in &[1usize, 4, 8, 16] {
        let mut rng = XorShift64Star::new(0x5eed_11ea + ncpus as u64);
        let nr = NodeReplicated::new(ncpus, Regs::default());
        let mut shadow: Vec<RegOp> = Vec::new();
        for step in 0..400usize {
            let cpu = rng.below(ncpus);
            let batch: Vec<RegOp> = (0..rng.range(1, 4))
                .map(|_| random_regop(&mut rng))
                .collect();
            shadow.extend(batch.iter().copied());
            let stats = if rng.chance(1, 2) {
                nr.execute_mut(cpu, batch)
            } else {
                nr.append(cpu, batch)
            };
            assert!(stats.appended > 0);
            assert_eq!(
                nr.tail() as usize,
                shadow.len(),
                "log order is program order"
            );

            // Stale-read bound: the probed replica's state is the fold
            // of exactly the prefix its tail records — never newer.
            let probe = rng.below(ncpus);
            nr.peek(probe, |s, tail| {
                assert!(tail as usize <= shadow.len());
                assert_eq!(
                    *s,
                    fold(&shadow[..tail as usize]),
                    "replica {probe} at tail {tail} is not the fold of its prefix (ncpus={ncpus})"
                );
            });

            // A read replays to the published tail and answers from it.
            if step % 16 == 0 {
                let (seen, rs) = nr.execute_ro(probe, |s| s.clone());
                assert_eq!(rs.tail as usize, shadow.len());
                assert_eq!(seen, fold(&shadow));
            }
            if step % 64 == 0 {
                nr.sync_all();
                assert!(nr.nr_wf().is_ok(), "{:?}", nr.nr_wf());
            }
        }
        nr.sync_all();
        assert!(nr.nr_wf().is_ok(), "{:?}", nr.nr_wf());
        assert_eq!(nr.fold_to_tail(), fold(&shadow));
        for cpu in 0..ncpus {
            nr.peek(cpu, |s, tail| {
                assert_eq!(tail as usize, shadow.len());
                assert_eq!(*s, fold(&shadow), "replica {cpu} diverged after sync_all");
            });
        }
    }
}

/// Drives the log far past `DEFAULT_LOG_CAPACITY` with fire-and-forget
/// appends: the checkpoint GC must fold the replayed prefix (bounding
/// the retained window) without perturbing the abstract fold.
#[test]
fn gc_checkpoint_preserves_the_fold_past_capacity() {
    let ncpus = 4;
    let mut rng = XorShift64Star::new(0x5eed_6c6c);
    let nr = NodeReplicated::new(ncpus, Regs::default());
    let mut shadow: Vec<RegOp> = Vec::new();
    for step in 0..2600usize {
        let cpu = rng.below(ncpus);
        let batch: Vec<RegOp> = (0..rng.range(4, 9))
            .map(|_| random_regop(&mut rng))
            .collect();
        shadow.extend(batch.iter().copied());
        nr.append(cpu, batch);
        if step % 512 == 511 {
            // Replicas catch up, so the next GC pass has a prefix to fold.
            nr.sync_all();
            assert!(nr.nr_wf().is_ok(), "{:?}", nr.nr_wf());
        }
    }
    nr.sync_all();
    assert!(
        shadow.len() > DEFAULT_LOG_CAPACITY,
        "workload must exceed capacity"
    );
    assert!(nr.checkpoint_tail() > 0, "GC never folded a prefix");
    assert!(
        nr.retained_ops() <= DEFAULT_LOG_CAPACITY + 16,
        "retained window unbounded: {} ops",
        nr.retained_ops()
    );
    assert!(nr.nr_wf().is_ok(), "{:?}", nr.nr_wf());
    assert_eq!(
        nr.fold_to_tail(),
        fold(&shadow),
        "GC changed the abstract fold"
    );
}

// ----- kernel-level replication ------------------------------------------

/// Per-CPU VA arenas inside the shared init address space.
fn va_arena(cpu: usize) -> usize {
    0x4000_0000 + cpu * 0x100_0000
}

/// Boots an NR-enabled sharded kernel: one runnable thread of the init
/// process per CPU (so every CPU reads the same address space), an
/// endpoint in descriptor slot 0 on each, incremental audit armed.
fn boot_nr(ncpus: usize) -> (SmpKernel, Vec<usize>) {
    let mut k = Kernel::boot(KernelConfig {
        mem_mib: 64,
        ncpus,
        root_quota: 16384,
    });
    let mut threads = vec![k.init_thread];
    for cpu in 1..ncpus {
        let proc = k.init_proc;
        let r = k.syscall(0, SyscallArgs::NewThread { proc, cpu });
        assert!(r.is_ok(), "thread for cpu {cpu}: {r:?}");
        threads.push(r.val0() as usize);
        k.pm.timer_tick(cpu);
    }
    for cpu in 0..ncpus {
        let r = k.syscall(cpu, SyscallArgs::NewEndpoint { slot: 0 });
        assert!(r.is_ok(), "endpoint for cpu {cpu}: {r:?}");
    }
    let k = SmpKernel::new(k);
    k.enable_nr();
    k.enable_incremental_audit();
    (k, threads)
}

fn random_syscall(rng: &mut XorShift64Star, cpu: usize, threads: &[usize]) -> SyscallArgs {
    let base = va_arena(cpu);
    match rng.below(12) {
        0 | 1 => SyscallArgs::Getpid,
        2 | 3 => SyscallArgs::ThreadLookup {
            thread: threads[rng.below(threads.len())],
        },
        4 => SyscallArgs::DescriptorResolve { slot: rng.below(3) },
        5 | 6 => SyscallArgs::VmResolve {
            va: base + rng.below(16) * 0x1000,
        },
        7 => SyscallArgs::Mmap {
            va_base: base + rng.below(16) * 0x1000,
            len: rng.range(1, 4),
            writable: rng.chance(1, 2),
        },
        8 => SyscallArgs::Munmap {
            va_base: base + rng.below(16) * 0x1000,
            len: rng.range(1, 4),
        },
        9 => SyscallArgs::NewEndpoint {
            slot: 1 + rng.below(3),
        },
        _ => SyscallArgs::Yield,
    }
}

/// Fuzzed schedules mixing replicated reads with pm/mem mutations on
/// 1, 4, 8 and 16 CPUs: the incremental audit stays green throughout,
/// the epoch audit (replica linearization + bit-for-bit replica vs
/// locked-projection cross-check + `NrAppended` ledger balance) stays
/// green at boundaries, and both kernel replicas converge to their
/// logs' abstract folds.
#[test]
fn kernel_replicas_linearize_under_fuzzed_syscalls() {
    for &ncpus in &[1usize, 4, 8, 16] {
        for case in 0..3u64 {
            let mut rng = XorShift64Star::new(0x5eed_00aa + case * 977 + ncpus as u64);
            let (k, threads) = boot_nr(ncpus);
            for i in 0..240usize {
                let cpu = rng.below(ncpus);
                let args = random_syscall(&mut rng, cpu, &threads);
                // Errors (unmapped resolves, busy slots) are fair game;
                // the audits must stay green either way.
                let _ = k.syscall(cpu, args);
                if i % 32 == 31 {
                    let audit = k.audit_incremental();
                    assert!(audit.is_ok(), "ncpus={ncpus} case={case} op {i}: {audit:?}");
                }
                if i % 120 == 119 {
                    let audit = k.audit_total_wf();
                    assert!(audit.is_ok(), "ncpus={ncpus} case={case} op {i}: {audit:?}");
                }
            }
            let audit = k.audit_total_wf();
            assert!(audit.is_ok(), "ncpus={ncpus} case={case} final: {audit:?}");

            // Every replica, once caught up, equals the abstract fold.
            let nr = k.nr().expect("replication enabled");
            nr.sync_all();
            assert!(nr.nr_wf().is_ok(), "{:?}", nr.nr_wf());
            let pm_fold = nr.pm.fold_to_tail();
            let mem_fold = nr.mem.fold_to_tail();
            for cpu in 0..ncpus {
                nr.pm.peek(cpu, |s, tail| {
                    assert_eq!(tail, nr.pm.tail());
                    assert_eq!(*s, pm_fold, "pm replica {cpu} diverged");
                });
                nr.mem.peek(cpu, |s, tail| {
                    assert_eq!(tail, nr.mem.tail());
                    assert_eq!(*s, mem_fold, "mem replica {cpu} diverged");
                });
            }
        }
    }
}

/// The kernel-level stale-read bound: a peer replica stays exactly at
/// its recorded tail until *it* reads — and that first read replays to
/// the published tail, observing a write another CPU appended.
#[test]
fn kernel_replica_read_observes_cross_cpu_write_on_replay() {
    let (k, _threads) = boot_nr(4);
    let nr = k.nr().expect("replication enabled");
    let va = va_arena(0) + 0x3000;

    // CPU 1 resolves the page before the write: unmapped, served local.
    let r = k.syscall(1, SyscallArgs::VmResolve { va });
    assert!(r.is_ok(), "{r:?}");
    assert_eq!(r.val0(), 0, "page must start unmapped");
    let tail_before = nr.mem.tail();
    assert_eq!(nr.mem.replica_tail(1), tail_before);

    // CPU 0 maps it: the write appends to the mem log (fire-and-forget)
    // without touching CPU 1's replica.
    let r = k.syscall(
        0,
        SyscallArgs::Mmap {
            va_base: va,
            len: 1,
            writable: true,
        },
    );
    assert!(r.is_ok(), "{r:?}");
    let tail_after = nr.mem.tail();
    assert!(tail_after > tail_before, "mmap must append to the mem log");
    assert_eq!(
        nr.mem.replica_tail(1),
        tail_before,
        "peer replica must not advance until it reads"
    );
    // Stale-read bound: CPU 1's replica still resolves the old answer —
    // its state is the fold of exactly [0, tail_before).
    let space = nr
        .pm
        .peek(1, |s, _| s.current_addr_space(1))
        .expect("cpu 1 has a current thread");
    nr.mem.peek(1, |s, tail| {
        assert_eq!(tail, tail_before);
        assert_eq!(s.resolve(space, va), None, "stale replica must miss");
    });

    // CPU 1's next read replays to the published tail and sees the map.
    let r = k.syscall(1, SyscallArgs::VmResolve { va });
    assert!(r.is_ok(), "{r:?}");
    assert_eq!(r.val0(), 1, "replayed read must observe the mapping");
    assert_eq!(nr.mem.replica_tail(1), tail_after);

    let audit = k.audit_total_wf();
    assert!(audit.is_ok(), "{audit:?}");
}
