#!/usr/bin/env bash
# Regenerates every table and figure of the paper into results/.
#
# Usage: scripts/reproduce_all.sh
set -euo pipefail

cd "$(dirname "$0")/.."
mkdir -p results

cargo build --release -p atmo-bench

for target in table1 table2 table3 fig2 fig3 fig4 fig5 fig6 fig7 ablation smp-scaling ipc-fastpath vm-batch net-zerocopy blk-zerocopy audit-scaling nr-scaling httpd-mconn multitenant; do
    bin="./target/release/repro-$target"
    if [ ! -x "$bin" ]; then
        echo "error: $bin is missing (did the atmo-bench build produce it?)" >&2
        exit 1
    fi
    echo "== repro-$target =="
    "$bin" | tee "results/repro-$target.txt"
    echo
done

./target/release/repro-table2 --verif-time | tee results/repro-verif-time.txt

echo "All experiment outputs written to results/."
