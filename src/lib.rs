//! # Atmosphere (reproduction)
//!
//! A full reproduction of *"Atmosphere: Practical Verified Kernels with
//! Rust and Verus"* (SOSP 2025) as a simulated, executable-specification
//! Rust system. This facade crate re-exports the public API of every
//! subsystem:
//!
//! * [`spec`] — the verification substrate (ghost collections, linear
//!   permission pointers, invariant/refinement harness);
//! * [`hw`] — the simulated machine (addresses, MMU walk semantics,
//!   cycle meters and the calibrated cost model, boot info);
//! * [`mem`] — the page allocator (page array, free lists, superpages,
//!   `page_closure` accounting);
//! * [`ptable`] — the flat-permission 4-level page table and the IOMMU;
//! * [`nr`] — node replication: per-CPU replicas kept consistent by a
//!   flat-combining operation log, checked by replica linearization;
//! * [`pm`] — the process manager (containers, processes, threads,
//!   endpoints, scheduler);
//! * [`kernel`] — the microkernel: syscalls, abstract specifications,
//!   `total_wf`, refinement auditing, isolation and non-interference,
//!   and the verified shared service V;
//! * [`verif`] — verification-effort tooling (line classifier, proof-task
//!   catalogs, scheduler simulation, development history);
//! * [`trace`] — the observability subsystem: per-CPU event rings,
//!   syscall latency histograms, subsystem counters and merged
//!   snapshots, audited by `trace_wf`;
//! * [`drivers`] — ixgbe / NVMe device models and polling drivers,
//!   shared-memory rings and deployment scenarios;
//! * [`apps`] — Maglev, the kv-store and httpd;
//! * [`baselines`] — Linux / DPDK / SPDK / fio / seL4 / nginx
//!   comparators.
//!
//! ## Quickstart
//!
//! ```
//! use atmosphere::kernel::{Kernel, KernelConfig, SyscallArgs};
//! use atmosphere::spec::harness::Invariant;
//!
//! let mut k = Kernel::boot(KernelConfig::default());
//! let ret = k.syscall(0, SyscallArgs::Mmap { va_base: 0x40_0000, len: 4, writable: true });
//! assert!(ret.is_ok());
//! assert!(k.wf().is_ok(), "total_wf holds after every transition");
//! ```

pub use atmo_apps as apps;
pub use atmo_baselines as baselines;
pub use atmo_drivers as drivers;
pub use atmo_hw as hw;
pub use atmo_kernel as kernel;
pub use atmo_mem as mem;
pub use atmo_nr as nr;
pub use atmo_pm as pm;
pub use atmo_ptable as ptable;
pub use atmo_spec as spec;
pub use atmo_trace as trace;
pub use atmo_verif as verif;
