//! The grant-backed packet-buffer pool: a contiguous page-backed arena
//! of fixed 2 KiB slots whose handles move through rings, IPC grants and
//! app logic by *permission transfer* — zero copies, zero per-packet
//! allocation.
//!
//! This is the paper's pointer-centric buffer management applied to the
//! network datapath: like `PagePermission` → (`PPtr`, `PointsTo`) in
//! `atmo-mem`, a [`PktBuf`] is an affine token (no `Clone`) granting
//! exclusive access to one slot of one pool. Handing the handle to the
//! next pipeline stage transfers the permission; the bytes never move.
//! The pool's backing pages come from the kernel allocator as `Mapped`
//! frames ([`PktPool::from_frames`]) and are DMA-pinned through the
//! IOMMU, so they stay inside `page_closure()` and the kernel's
//! leak-freedom audit covers the pool for its whole lifetime. Anonymous
//! (frame-less) pools exist for driver-level unit tests.
//!
//! Exhaustion is *backpressure*, not failure: [`PktPool::try_acquire`]
//! returns `None` (counted as `net.pool_exhausted`) and the RX path
//! simply stops taking frames until TX releases slots.

use std::sync::atomic::{AtomicU32, Ordering};

use atmo_mem::PagePtr;
use atmo_spec::harness::{check, Invariant, VerifResult};
use atmo_trace::{NetOutcome, TraceHandle, TraceShare};

use crate::pkt::Packet;

/// Fixed slot size: one 64-byte frame up to a 1500-MTU frame plus
/// headroom fits; two slots per 4 KiB page.
pub const PKT_SLOT_SIZE: usize = 2048;

/// Buffer slots carved from each backing 4 KiB page.
pub const SLOTS_PER_PAGE: usize = 4096 / PKT_SLOT_SIZE;

/// Distinguishes pools so a handle can never be released into (or read
/// through) a pool it does not belong to.
static NEXT_POOL_ID: AtomicU32 = AtomicU32::new(1);

/// An affine handle to one pool slot: the permission to read and write
/// that slot's bytes. Deliberately not `Clone` — moving the handle is
/// the zero-copy transfer; the only ways to retire it are
/// [`PktPool::release`] (slot returns to the free stack) and
/// [`PktPool::copy_out`]'s explicit fallback.
#[derive(Debug, PartialEq, Eq)]
pub struct PktBuf {
    pool: u32,
    slot: u32,
    len: u16,
}

impl PktBuf {
    /// Frame length currently stored in the slot.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// `true` when no frame has been written yet.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Records the frame length after an in-place fill.
    ///
    /// # Panics
    ///
    /// Panics when `len` exceeds [`PKT_SLOT_SIZE`].
    pub fn set_len(&mut self, len: usize) {
        assert!(len <= PKT_SLOT_SIZE, "frame of {len} bytes overflows slot");
        self.len = len as u16;
    }

    /// Slot index within the pool.
    pub fn slot(&self) -> usize {
        self.slot as usize
    }
}

/// The packet-buffer pool: arena + free-slot stack + acquire/release
/// ledger. See the module docs for the ownership story.
#[derive(Debug)]
pub struct PktPool {
    id: u32,
    arena: Vec<u8>,
    /// LIFO stack of free slot indices (hot slots stay cache-warm).
    free: Vec<u32>,
    nslots: usize,
    /// Backing 4 KiB frames ([`PagePtr`]s held `Mapped` by the kernel
    /// allocator and pinned via the IOMMU); empty for anonymous pools.
    frames: Vec<PagePtr>,
    acquired: u64,
    released: u64,
    exhausted: u64,
    trace: TraceShare,
}

impl PktPool {
    fn build(nslots: usize, frames: Vec<PagePtr>) -> Self {
        assert!(nslots > 0, "pool needs at least one slot");
        PktPool {
            id: NEXT_POOL_ID.fetch_add(1, Ordering::Relaxed),
            arena: vec![0u8; nslots * PKT_SLOT_SIZE],
            free: (0..nslots as u32).rev().collect(),
            nslots,
            frames,
            acquired: 0,
            released: 0,
            exhausted: 0,
            trace: TraceShare::detached(),
        }
    }

    /// An anonymous pool of `nslots` slots with no kernel-accounted
    /// backing frames (driver-level tests and benches).
    pub fn anonymous(nslots: usize) -> Self {
        PktPool::build(nslots, Vec::new())
    }

    /// A pool carved from kernel-allocated `Mapped` frames, two slots
    /// per page. The caller keeps the frames alive in `page_closure()`
    /// (typically by DMA-pinning them through the IOMMU) and reclaims
    /// them with [`PktPool::into_frames`] at teardown.
    ///
    /// # Panics
    ///
    /// Panics when `frames` is empty.
    pub fn from_frames(frames: Vec<PagePtr>) -> Self {
        let nslots = frames.len() * SLOTS_PER_PAGE;
        PktPool::build(nslots, frames)
    }

    /// Routes pool events (`net.pool_*`) into `sink`.
    pub fn attach_trace(&mut self, sink: TraceHandle) {
        self.trace.attach(sink);
    }

    /// Total slots.
    pub fn nslots(&self) -> usize {
        self.nslots
    }

    /// Backing frames (empty for anonymous pools).
    pub fn frames(&self) -> &[PagePtr] {
        &self.frames
    }

    /// Slots currently held by outstanding [`PktBuf`]s.
    pub fn in_flight(&self) -> usize {
        self.nslots - self.free.len()
    }

    /// Slots handed out so far.
    pub fn acquired(&self) -> u64 {
        self.acquired
    }

    /// Slots returned so far.
    pub fn released(&self) -> u64 {
        self.released
    }

    /// Acquire attempts that found the pool empty.
    pub fn exhausted(&self) -> u64 {
        self.exhausted
    }

    /// Takes a free slot, or `None` under exhaustion (backpressure: the
    /// caller retries after the TX side releases slots).
    pub fn try_acquire(&mut self) -> Option<PktBuf> {
        match self.free.pop() {
            Some(slot) => {
                self.acquired += 1;
                self.trace.net(NetOutcome::PoolAcquire, 1);
                Some(PktBuf {
                    pool: self.id,
                    slot,
                    len: 0,
                })
            }
            None => {
                self.exhausted += 1;
                self.trace.net(NetOutcome::PoolExhausted, 1);
                None
            }
        }
    }

    /// Returns a slot to the pool, consuming the handle. This is the
    /// only discard path — a pipeline stage that drops a frame releases
    /// its handle rather than letting it fall on the floor.
    ///
    /// # Panics
    ///
    /// Panics (verification failure) when the handle belongs to a
    /// different pool.
    pub fn release(&mut self, buf: PktBuf) {
        assert_eq!(buf.pool, self.id, "PktBuf released into a foreign pool");
        debug_assert!(
            !self.free.contains(&buf.slot),
            "slot {} already free",
            buf.slot
        );
        self.free.push(buf.slot);
        self.released += 1;
        self.trace.net(NetOutcome::PoolRelease, 1);
    }

    /// The full slot as a writable view (for in-place frame fills; set
    /// the resulting length with [`PktBuf::set_len`]).
    pub fn slot_mut(&mut self, buf: &PktBuf) -> &mut [u8] {
        assert_eq!(buf.pool, self.id, "PktBuf from a foreign pool");
        let start = buf.slot as usize * PKT_SLOT_SIZE;
        &mut self.arena[start..start + PKT_SLOT_SIZE]
    }

    /// The frame bytes the handle currently holds.
    pub fn data(&self, buf: &PktBuf) -> &[u8] {
        assert_eq!(buf.pool, self.id, "PktBuf from a foreign pool");
        let start = buf.slot as usize * PKT_SLOT_SIZE;
        &self.arena[start..start + buf.len as usize]
    }

    /// The frame bytes as a mutable view (in-place header rewrite on the
    /// app stage).
    pub fn data_mut(&mut self, buf: &PktBuf) -> &mut [u8] {
        assert_eq!(buf.pool, self.id, "PktBuf from a foreign pool");
        let start = buf.slot as usize * PKT_SLOT_SIZE;
        &mut self.arena[start..start + buf.len as usize]
    }

    /// The explicit non-zero-copy fallback: clones the frame into an
    /// owned [`Packet`] (counted as `net.fallback_copies`) for consumers
    /// that still want ownership, releasing the slot.
    pub fn copy_out(&mut self, buf: PktBuf) -> Packet {
        let pkt = Packet {
            data: self.data(&buf).to_vec(),
        };
        self.trace.net(NetOutcome::Fallback, 1);
        self.release(buf);
        pkt
    }

    /// Tears the pool down, returning the backing frames so the caller
    /// can unpin and free them.
    ///
    /// # Panics
    ///
    /// Panics (verification failure) when handles are still in flight —
    /// freeing the frames under a live handle would dangle it.
    pub fn into_frames(self) -> Vec<PagePtr> {
        assert_eq!(self.in_flight(), 0, "pool torn down with handles in flight");
        self.frames
    }
}

impl Invariant for PktPool {
    /// Pool well-formedness:
    ///
    /// 1. the arena covers exactly `nslots` slots;
    /// 2. backing frames (when present) carve to exactly `nslots`;
    /// 3. every free-stack entry is a distinct valid slot;
    /// 4. the ledger balances: `acquired == released + in_flight` (a
    ///    slot is either free, or held by exactly one outstanding
    ///    handle — the pool-level leak-freedom equation `trace_wf`
    ///    re-checks globally from the counters).
    fn wf(&self) -> VerifResult {
        check(
            self.arena.len() == self.nslots * PKT_SLOT_SIZE,
            "pkt_pool",
            "arena size disagrees with slot count",
        )?;
        check(
            self.frames.is_empty() || self.frames.len() * SLOTS_PER_PAGE == self.nslots,
            "pkt_pool",
            "backing frames disagree with slot count",
        )?;
        check(
            self.free.len() <= self.nslots,
            "pkt_pool",
            "free stack larger than the pool",
        )?;
        let mut seen = vec![false; self.nslots];
        for &s in &self.free {
            check(
                (s as usize) < self.nslots,
                "pkt_pool",
                format!("free slot {s} out of range"),
            )?;
            check(
                !seen[s as usize],
                "pkt_pool",
                format!("slot {s} on the free stack twice"),
            )?;
            seen[s as usize] = true;
        }
        check(
            self.acquired == self.released + self.in_flight() as u64,
            "pkt_pool",
            format!(
                "ledger imbalance: {} acquired != {} released + {} in flight",
                self.acquired,
                self.released,
                self.in_flight()
            ),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pkt::{self, UDP64_LEN};
    use atmo_trace::{trace_wf, TraceSink};

    #[test]
    fn acquire_fill_release_roundtrip() {
        let mut pool = PktPool::anonymous(4);
        assert!(pool.is_wf());
        let mut buf = pool.try_acquire().unwrap();
        let len = pkt::write_udp64(pool.slot_mut(&buf), 9);
        buf.set_len(len);
        assert_eq!(buf.len(), UDP64_LEN);
        assert_eq!(pool.data(&buf), &Packet::udp64(9).data[..]);
        assert_eq!(pool.in_flight(), 1);
        assert!(pool.is_wf());
        pool.release(buf);
        assert_eq!(pool.in_flight(), 0);
        assert_eq!(pool.acquired(), 1);
        assert_eq!(pool.released(), 1);
        assert!(pool.is_wf());
    }

    #[test]
    fn exhaustion_is_backpressure_not_panic() {
        let mut pool = PktPool::anonymous(2);
        let a = pool.try_acquire().unwrap();
        let b = pool.try_acquire().unwrap();
        assert!(pool.try_acquire().is_none(), "empty pool yields None");
        assert!(pool.try_acquire().is_none());
        assert_eq!(pool.exhausted(), 2);
        assert!(pool.is_wf());
        // Releasing makes the slot immediately reusable.
        pool.release(a);
        assert!(pool.try_acquire().is_some());
        pool.release(b);
        assert!(pool.is_wf());
    }

    #[test]
    #[should_panic(expected = "foreign pool")]
    fn cross_pool_release_is_a_verification_failure() {
        let mut a = PktPool::anonymous(2);
        let mut b = PktPool::anonymous(2);
        let buf = a.try_acquire().unwrap();
        b.release(buf);
    }

    #[test]
    #[should_panic(expected = "handles in flight")]
    fn teardown_with_live_handles_is_a_verification_failure() {
        let mut pool = PktPool::anonymous(2);
        let _live = pool.try_acquire().unwrap();
        let _ = pool.into_frames();
    }

    #[test]
    fn copy_out_counts_the_fallback_and_frees_the_slot() {
        let sink = TraceSink::new(1, 16);
        let mut pool = PktPool::anonymous(2);
        pool.attach_trace(sink.clone());
        let mut buf = pool.try_acquire().unwrap();
        let len = pkt::write_udp64(pool.slot_mut(&buf), 3);
        buf.set_len(len);
        let pkt = pool.copy_out(buf);
        assert_eq!(pkt, Packet::udp64(3));
        assert_eq!(pool.in_flight(), 0);
        let snap = sink.snapshot();
        assert_eq!(snap.counters.net.fallback_copies, 1);
        assert_eq!(snap.counters.net.pool_acquired, 1);
        assert_eq!(snap.counters.net.pool_released, 1);
        assert_eq!(snap.net_in_flight, 0);
        assert!(trace_wf(&sink).is_ok(), "{:?}", trace_wf(&sink));
    }

    #[test]
    fn traced_pool_balances_the_sink_ledger() {
        let sink = TraceSink::new(1, 16);
        let mut pool = PktPool::anonymous(8);
        pool.attach_trace(sink.clone());
        let bufs: Vec<PktBuf> = (0..5).map(|_| pool.try_acquire().unwrap()).collect();
        assert_eq!(sink.net_in_flight(), 5);
        assert!(trace_wf(&sink).is_ok(), "in-flight handles balance");
        for b in bufs {
            pool.release(b);
        }
        assert_eq!(sink.net_in_flight(), 0);
        assert!(trace_wf(&sink).is_ok());
        assert!(pool.is_wf());
    }
}
