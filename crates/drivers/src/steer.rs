//! RSS-style flow steering: hash the flow key, pick a queue/CPU.
//!
//! The ixgbe NIC's receive-side scaling hashes each frame's flow 5-tuple
//! and delivers it to one RX queue; with one run-to-completion worker
//! per queue, every flow is processed by exactly one CPU and the workers
//! share no packet state. The generator's flow identity is periodic in
//! the sequence number with period [`RSS_FLOW_PERIOD`] (see
//! [`crate::pkt::flow_key_for_seq`]), so a queue's exact share of line
//! rate is the fraction of the 4096 flow residues that hash to it.

use crate::pkt::flow_key_for_seq;

/// Period (in generator sequence numbers) after which flow keys repeat.
pub const RSS_FLOW_PERIOD: u64 = 4096;

/// FNV-1a 64-bit over the flow key (the same hash family the Maglev and
/// kv-store apps use, implemented locally so the driver crate stays
/// independent of the app crate).
pub fn rss_hash(key: &[u8; 13]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in key {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The queue (of `nqueues`) a flow key steers to.
pub fn queue_for_key(key: &[u8; 13], nqueues: usize) -> usize {
    (rss_hash(key) % nqueues as u64) as usize
}

/// The queue the generator frame for `seq` steers to.
pub fn queue_for_seq(seq: u64, nqueues: usize) -> usize {
    queue_for_key(&flow_key_for_seq(seq), nqueues)
}

/// A fixed RSS indirection: `nqueues` queues, flow-hash modulo.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RssSteer {
    nqueues: usize,
}

impl RssSteer {
    /// Steering across `nqueues` queues.
    ///
    /// # Panics
    ///
    /// Panics when `nqueues == 0`.
    pub fn new(nqueues: usize) -> Self {
        assert!(nqueues > 0, "need at least one queue");
        RssSteer { nqueues }
    }

    /// Number of queues.
    pub fn nqueues(&self) -> usize {
        self.nqueues
    }

    /// The queue a flow key steers to.
    pub fn queue_of_key(&self, key: &[u8; 13]) -> usize {
        queue_for_key(key, self.nqueues)
    }

    /// The queue the generator frame for `seq` steers to.
    pub fn queue_of_seq(&self, seq: u64) -> usize {
        queue_for_seq(seq, self.nqueues)
    }

    /// `queue`'s exact share of offered load: the fraction of the
    /// [`RSS_FLOW_PERIOD`] flow residues that steer to it.
    pub fn share(&self, queue: usize) -> f64 {
        let hits = (0..RSS_FLOW_PERIOD)
            .filter(|&seq| self.queue_of_seq(seq) == queue)
            .count();
        hits as f64 / RSS_FLOW_PERIOD as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queues_partition_the_flow_space() {
        // Every flow residue steers to exactly one of the 4 queues, and
        // the shares sum to 1 (the queues partition offered load).
        let s = RssSteer::new(4);
        let mut owned = [0usize; 4];
        for seq in 0..RSS_FLOW_PERIOD {
            owned[s.queue_of_seq(seq)] += 1;
        }
        assert_eq!(owned.iter().sum::<usize>(), RSS_FLOW_PERIOD as usize);
        let total: f64 = (0..4).map(|q| s.share(q)).sum();
        assert!((total - 1.0).abs() < 1e-12);
        // And the hash spreads flows roughly evenly (within 20%).
        for (q, &n) in owned.iter().enumerate() {
            let expect = RSS_FLOW_PERIOD as f64 / 4.0;
            assert!(
                (n as f64 - expect).abs() < expect * 0.2,
                "queue {q} owns {n} of {RSS_FLOW_PERIOD}"
            );
        }
    }

    #[test]
    fn steering_is_stable_per_flow() {
        let s = RssSteer::new(4);
        for seq in 0..64u64 {
            // A flow's queue never changes, and repeats with the period.
            assert_eq!(s.queue_of_seq(seq), s.queue_of_seq(seq + RSS_FLOW_PERIOD));
        }
    }

    #[test]
    fn single_queue_owns_everything() {
        let s = RssSteer::new(1);
        assert_eq!(s.share(0), 1.0);
        assert_eq!(s.queue_of_seq(12345), 0);
    }
}
