//! The NVMe SSD model (Intel P3700-class) and polling driver (§6.5.2).
//!
//! The device model captures the two regimes visible in Figure 5:
//!
//! * at queue depth 1, throughput is **latency-bound** — reads complete
//!   after the flash read latency (~76 µs), so everyone (fio, SPDK,
//!   Atmosphere) lands near 13 K IOPS;
//! * at queue depth 32, throughput is bound by the device's internal
//!   service rate (≈450 K IOPS 4 KiB reads, 256 K IOPS writes to the
//!   write cache) — unless the host software costs more per I/O than the
//!   device's service time, which is what limits fio/Linux to 141 K.
//!
//! Completion model per I/O: `complete = max(submit + latency,
//! prev_complete_of_same_kind + service)`.

use std::collections::VecDeque;

use atmo_hw::cycles::CycleMeter;
use atmo_trace::{BlkOutcome, DeviceKind, KernelEvent, TraceHandle, TraceShare};

use crate::blkpool::{BlkBuf, BlkPool};
use crate::DriverCosts;

/// Kind of block I/O.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IoKind {
    /// 4 KiB sequential read.
    Read,
    /// 4 KiB sequential write.
    Write,
}

/// Device timing parameters, in cycles of the host clock.
#[derive(Clone, Copy, Debug)]
pub struct NvmeSpec {
    /// Read completion latency (flash array read).
    pub read_latency: u64,
    /// Write completion latency (write cache hit).
    pub write_latency: u64,
    /// Minimum spacing between read completions (1 / peak read IOPS).
    pub read_service: u64,
    /// Minimum spacing between write completions (1 / peak write IOPS).
    pub write_service: u64,
}

impl NvmeSpec {
    /// P3700 400 GB-class timings on a 2.2 GHz host:
    /// 76 µs read latency, ~450 K IOPS peak 4 KiB reads,
    /// ~3.9 µs cached write latency, 256 K IOPS peak writes.
    pub const fn p3700(freq_hz: u64) -> Self {
        let per_us = freq_hz / 1_000_000;
        NvmeSpec {
            read_latency: 76 * per_us,
            write_latency: 4 * per_us,
            read_service: freq_hz / 450_000,
            write_service: freq_hz / 256_000,
        }
    }
}

/// The NVMe device model: submission queue + completion times.
#[derive(Debug)]
pub struct NvmeDevice {
    spec: NvmeSpec,
    inflight: VecDeque<u64>, // completion times, ascending
    last_read_complete: u64,
    last_write_complete: u64,
    completed: u64,
}

impl NvmeDevice {
    /// A device with the given timing spec.
    pub fn new(spec: NvmeSpec) -> Self {
        NvmeDevice {
            spec,
            inflight: VecDeque::new(),
            last_read_complete: 0,
            last_write_complete: 0,
            completed: 0,
        }
    }

    /// Submits one I/O at time `now`.
    pub fn submit(&mut self, now: u64, kind: IoKind) {
        self.submit_with_penalty(now, kind, 0);
    }

    /// Submits one I/O whose device service is inflated by `penalty`
    /// cycles (models per-I/O doorbell/flush interaction — the source of
    /// the Atmosphere write overhead of §6.5.2).
    pub fn submit_with_penalty(&mut self, now: u64, kind: IoKind, penalty: u64) {
        let (lat, service, last) = match kind {
            IoKind::Read => (
                self.spec.read_latency,
                self.spec.read_service,
                &mut self.last_read_complete,
            ),
            IoKind::Write => (
                self.spec.write_latency,
                self.spec.write_service,
                &mut self.last_write_complete,
            ),
        };
        let complete = (now + lat).max(*last + service + penalty);
        *last = complete;
        // Completions are in submission order per kind; merge keeps the
        // queue sorted because both per-kind chains are monotone.
        let pos = self
            .inflight
            .iter()
            .position(|&c| c > complete)
            .unwrap_or(self.inflight.len());
        self.inflight.insert(pos, complete);
    }

    /// Reaps completions that have finished by `now`.
    pub fn poll(&mut self, now: u64) -> u64 {
        let mut n = 0;
        while let Some(&c) = self.inflight.front() {
            if c <= now {
                self.inflight.pop_front();
                n += 1;
            } else {
                break;
            }
        }
        self.completed += n;
        n
    }

    /// Cycles from `now` until the next completion (0 when one is ready,
    /// `None` when nothing is in flight).
    pub fn cycles_until_completion(&self, now: u64) -> Option<u64> {
        self.inflight.front().map(|&c| c.saturating_sub(now))
    }

    /// I/Os completed in total.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// I/Os currently in flight.
    pub fn queue_depth(&self) -> usize {
        self.inflight.len()
    }
}

/// The polling NVMe driver.
#[derive(Debug)]
pub struct NvmeDriver {
    /// The device being driven.
    pub device: NvmeDevice,
    costs: DriverCosts,
    /// Batch-event sink (always-equal share: tracing does not change
    /// driver state).
    trace: TraceShare,
}

impl NvmeDriver {
    /// Binds a driver to a device.
    pub fn new(device: NvmeDevice, costs: DriverCosts) -> Self {
        NvmeDriver {
            device,
            costs,
            trace: TraceShare::detached(),
        }
    }

    /// Routes submit/completion batch events into `sink`.
    pub fn attach_trace(&mut self, sink: TraceHandle) {
        self.trace.attach(sink);
    }

    /// Per-I/O CPU cost (submission + completion processing).
    pub fn io_cpu_cost(&self, _kind: IoKind) -> u64 {
        self.costs.nvme_io
    }

    /// Submits `n` I/Os of `kind`, charging per-I/O CPU cost. Writes pay
    /// the per-write doorbell penalty at the device (§6.5.2's 10% write
    /// overhead).
    pub fn submit_batch(&mut self, meter: &mut CycleMeter, kind: IoKind, n: usize) {
        for _ in 0..n {
            meter.charge(self.io_cpu_cost(kind));
            let penalty = match kind {
                IoKind::Read => 0,
                IoKind::Write => self.costs.nvme_write_extra,
            };
            self.device.submit_with_penalty(meter.now(), kind, penalty);
        }
        self.trace.emit(KernelEvent::DriverTx {
            device: DeviceKind::Nvme,
            batch: n as u64,
        });
    }

    /// Polls until at least one completion arrives (waiting if needed);
    /// returns the number reaped.
    pub fn wait_completions(&mut self, meter: &mut CycleMeter) -> u64 {
        if let Some(wait) = self.device.cycles_until_completion(meter.now()) {
            meter.charge(wait);
        }
        let n = self.device.poll(meter.now());
        self.trace.emit(KernelEvent::DriverRx {
            device: DeviceKind::Nvme,
            batch: n,
        });
        n
    }
}

/// The zero-copy NVMe queue pair: an io_uring-shaped submission /
/// completion ring over the device model that moves [`BlkBuf`] handles
/// instead of copying payloads.
///
/// Submission transfers the handle's slot permission to the DMA engine
/// (the SQ entry carries the slot's pinned IOVA); reaping a completion
/// transfers it back. Per-I/O host work is therefore a descriptor write
/// ([`DriverCosts::sq_desc_zc`]) and a descriptor read
/// ([`DriverCosts::cq_desc_zc`]) — strictly cheaper than the per-I/O
/// copying path's [`DriverCosts::nvme_io`] — with one doorbell per
/// batch in each direction.
///
/// Handles come back in submission order: the device model's per-kind
/// completion chains are monotone, so for single-kind workloads (what
/// the closed loops drive) FIFO order matches completion order.
#[derive(Debug)]
pub struct NvmeZcQueue {
    /// The device being driven.
    pub device: NvmeDevice,
    costs: DriverCosts,
    /// Handles whose slots the device currently owns, submission order.
    pending: VecDeque<BlkBuf>,
    trace: TraceShare,
}

impl NvmeZcQueue {
    /// Binds a zero-copy queue pair to a device.
    pub fn new(device: NvmeDevice, costs: DriverCosts) -> Self {
        NvmeZcQueue {
            device,
            costs,
            pending: VecDeque::new(),
            trace: TraceShare::detached(),
        }
    }

    /// Routes submit/reap batch events into `sink`.
    pub fn attach_trace(&mut self, sink: TraceHandle) {
        self.trace.attach(sink);
    }

    /// Handles currently owned by the device.
    pub fn queue_depth(&self) -> usize {
        self.pending.len()
    }

    /// Submits a batch of filled buffers as `kind` I/Os, transferring
    /// the handles to the device. Charges one zero-copy SQ descriptor
    /// per I/O plus a single doorbell for the whole batch; writes pay
    /// the per-write device penalty (§6.5.2's 10% write overhead).
    pub fn submit_batch_zc(&mut self, meter: &mut CycleMeter, kind: IoKind, bufs: Vec<BlkBuf>) {
        let n = bufs.len();
        if n == 0 {
            return;
        }
        for buf in bufs {
            meter.charge(self.costs.sq_desc_zc);
            let penalty = match kind {
                IoKind::Read => 0,
                IoKind::Write => self.costs.nvme_write_extra,
            };
            self.device.submit_with_penalty(meter.now(), kind, penalty);
            self.pending.push_back(buf);
        }
        meter.charge(self.costs.doorbell);
        self.trace.emit(KernelEvent::DriverTx {
            device: DeviceKind::Nvme,
            batch: n as u64,
        });
        self.trace.blk(BlkOutcome::SubmitBatch, n as u64);
    }

    /// Reaps every completion that has finished by now, pushing the
    /// returned handles into `out`; charges one zero-copy CQ descriptor
    /// per completion plus a single CQ-head doorbell when any arrived.
    pub fn reap_batch_zc(&mut self, meter: &mut CycleMeter, out: &mut Vec<BlkBuf>) -> u64 {
        let n = self.device.poll(meter.now());
        if n == 0 {
            return 0;
        }
        for _ in 0..n {
            meter.charge(self.costs.cq_desc_zc);
            out.push(
                self.pending
                    .pop_front()
                    .expect("completion without a submission"),
            );
        }
        meter.charge(self.costs.doorbell);
        self.trace.emit(KernelEvent::DriverRx {
            device: DeviceKind::Nvme,
            batch: n,
        });
        self.trace.blk(BlkOutcome::ReapBatch, n);
        n
    }

    /// Waits (advancing the meter) until at least one completion is
    /// ready, then reaps; returns the number reaped (0 only when nothing
    /// is in flight).
    pub fn wait_reap_zc(&mut self, meter: &mut CycleMeter, out: &mut Vec<BlkBuf>) -> u64 {
        if let Some(wait) = self.device.cycles_until_completion(meter.now()) {
            meter.charge(wait);
        }
        self.reap_batch_zc(meter, out)
    }
}

/// Runs a closed-loop sequential workload on the zero-copy queue at
/// queue depth `batch`, completing `total` I/Os: acquire → fill-in-place
/// → submit (handles move to the device) → reap (handles move back) →
/// release. Returns IOPS given the host frequency.
pub fn run_closed_loop_zc(
    queue: &mut NvmeZcQueue,
    pool: &mut BlkPool,
    meter: &mut CycleMeter,
    kind: IoKind,
    batch: usize,
    total: u64,
) -> f64 {
    let start = meter.now();
    let mut completed = 0u64;
    let first: Vec<BlkBuf> = (0..batch)
        .map(|_| pool.try_acquire().expect("pool sized below queue depth"))
        .collect();
    queue.submit_batch_zc(meter, kind, first);
    let mut reaped = Vec::with_capacity(batch);
    while completed < total {
        let done = queue.wait_reap_zc(meter, &mut reaped);
        completed += done;
        if done > 0 {
            // Resubmit the same slots: the payload is refilled in place,
            // no allocation and no copy on the steady-state path.
            let resubmit = std::mem::take(&mut reaped);
            queue.submit_batch_zc(meter, kind, resubmit);
        }
    }
    // Drain the tail so every handle returns to the pool.
    while queue.queue_depth() > 0 {
        queue.wait_reap_zc(meter, &mut reaped);
    }
    for buf in reaped {
        pool.release(buf);
    }
    let cycles = meter.since(start);
    completed as f64 * 2_200_000_000.0 / cycles as f64
}

/// Runs a closed-loop sequential workload at queue depth `batch`,
/// completing `total` I/Os; returns IOPS given the host frequency.
pub fn run_closed_loop(
    driver: &mut NvmeDriver,
    meter: &mut CycleMeter,
    kind: IoKind,
    batch: usize,
    total: u64,
    extra_cpu_per_io: u64,
) -> f64 {
    let start = meter.now();
    let mut completed = 0u64;
    driver.submit_batch(meter, kind, batch);
    while completed < total {
        meter.charge(extra_cpu_per_io / 4); // polling loop body
        let done = driver.wait_completions(meter);
        completed += done;
        if done > 0 {
            meter.charge(extra_cpu_per_io * done);
            driver.submit_batch(meter, kind, done as usize);
        }
    }
    let cycles = meter.since(start);
    completed as f64 * 2_200_000_000.0 / cycles as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use atmo_spec::harness::Invariant;

    const FREQ: u64 = 2_200_000_000;

    fn driver() -> NvmeDriver {
        NvmeDriver::new(
            NvmeDevice::new(NvmeSpec::p3700(FREQ)),
            DriverCosts::atmosphere(),
        )
    }

    #[test]
    fn qd1_reads_are_latency_bound() {
        let mut d = driver();
        let mut m = CycleMeter::new();
        let iops = run_closed_loop(&mut d, &mut m, IoKind::Read, 1, 2_000, 0);
        // ≈ 1 / 76 µs ≈ 13 K IOPS (§6.5.2: fio 13K, Atmosphere similar).
        assert!((12_000.0..14_000.0).contains(&iops), "{iops}");
    }

    #[test]
    fn qd32_reads_reach_device_peak() {
        let mut d = driver();
        let mut m = CycleMeter::new();
        let iops = run_closed_loop(&mut d, &mut m, IoKind::Read, 32, 50_000, 0);
        // "Maximum device read performance" ≈ 450 K IOPS.
        assert!((400_000.0..460_000.0).contains(&iops), "{iops}");
    }

    #[test]
    fn atmo_writes_show_ten_percent_overhead() {
        let mut d = driver();
        let mut m = CycleMeter::new();
        let iops = run_closed_loop(&mut d, &mut m, IoKind::Write, 32, 50_000, 0);
        // Device peak is 256 K; the per-write extra keeps Atmosphere near
        // the paper's 232 K (10% below).
        assert!((215_000.0..245_000.0).contains(&iops), "{iops}");
    }

    #[test]
    fn completions_obey_latency() {
        let mut dev = NvmeDevice::new(NvmeSpec::p3700(FREQ));
        dev.submit(0, IoKind::Read);
        assert_eq!(dev.poll(1000), 0, "nothing completes before latency");
        let lat = NvmeSpec::p3700(FREQ).read_latency;
        assert_eq!(dev.poll(lat), 1);
        assert_eq!(dev.completed(), 1);
    }

    #[test]
    fn service_rate_spaces_completions() {
        let mut dev = NvmeDevice::new(NvmeSpec::p3700(FREQ));
        let spec = NvmeSpec::p3700(FREQ);
        for _ in 0..3 {
            dev.submit(0, IoKind::Read);
        }
        // First at latency; the rest spaced by the service time.
        assert_eq!(dev.poll(spec.read_latency), 1);
        assert_eq!(dev.poll(spec.read_latency + spec.read_service), 1);
        assert_eq!(dev.poll(spec.read_latency + 2 * spec.read_service), 1);
    }

    #[test]
    fn zc_queue_matches_the_device_regimes() {
        let costs = DriverCosts::atmosphere();
        let mut q = NvmeZcQueue::new(NvmeDevice::new(NvmeSpec::p3700(FREQ)), costs);
        let mut pool = BlkPool::anonymous(64);
        let mut m = CycleMeter::new();
        let qd1 = run_closed_loop_zc(&mut q, &mut pool, &mut m, IoKind::Read, 1, 2_000);
        assert!((12_000.0..14_000.0).contains(&qd1), "{qd1}");
        let mut q = NvmeZcQueue::new(NvmeDevice::new(NvmeSpec::p3700(FREQ)), costs);
        let qd32 = run_closed_loop_zc(&mut q, &mut pool, &mut m, IoKind::Read, 32, 50_000);
        assert!((400_000.0..460_000.0).contains(&qd32), "{qd32}");
        assert_eq!(pool.in_flight(), 0, "every handle came back");
        assert!(pool.is_wf());
    }

    #[test]
    fn zc_per_io_host_cost_beats_the_copying_path() {
        let costs = DriverCosts::atmosphere();
        // Steady state at QD32: one SQ + one CQ descriptor per I/O plus
        // two doorbells amortized over the batch, vs the copying path's
        // per-I/O submission+completion processing alone.
        let zc = costs.sq_desc_zc + costs.cq_desc_zc + 2 * costs.doorbell / 32;
        assert!(zc < costs.nvme_io, "{zc} >= {}", costs.nvme_io);
    }

    #[test]
    fn zc_queue_hands_back_the_submitted_handles() {
        let mut q = NvmeZcQueue::new(
            NvmeDevice::new(NvmeSpec::p3700(FREQ)),
            DriverCosts::atmosphere(),
        );
        let mut pool = BlkPool::anonymous(4);
        let mut m = CycleMeter::new();
        let mut bufs = Vec::new();
        for i in 0..3u8 {
            let mut b = pool.try_acquire().unwrap();
            pool.slot_mut(&b)[0] = i;
            b.set_len(1);
            bufs.push(b);
        }
        let slots: Vec<usize> = bufs.iter().map(|b| b.slot()).collect();
        q.submit_batch_zc(&mut m, IoKind::Write, bufs);
        assert_eq!(q.queue_depth(), 3);
        let mut back = Vec::new();
        while q.queue_depth() > 0 {
            q.wait_reap_zc(&mut m, &mut back);
        }
        assert_eq!(back.iter().map(|b| b.slot()).collect::<Vec<_>>(), slots);
        for (i, b) in back.into_iter().enumerate() {
            assert_eq!(pool.data(&b), &[i as u8], "payload untouched in place");
            pool.release(b);
        }
        assert!(pool.is_wf());
    }

    #[test]
    fn queue_depth_tracks_inflight() {
        let mut dev = NvmeDevice::new(NvmeSpec::p3700(FREQ));
        dev.submit(0, IoKind::Write);
        dev.submit(0, IoKind::Write);
        assert_eq!(dev.queue_depth(), 2);
        let _ = dev.poll(u64::MAX >> 1);
        assert_eq!(dev.queue_depth(), 0);
    }
}
