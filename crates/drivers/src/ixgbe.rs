//! The Intel 82599 (ixgbe) 10 GbE NIC model and polling driver (§6.5.1).
//!
//! The device model exposes descriptor-ring semantics with the physical
//! ceiling of the medium: 64-byte frames on 10 GbE arrive at most at
//! ~14.88 Mpps theoretical; the paper measures **14.2 Mpps** line rate
//! with pktgen, which is the ceiling this model enforces. RX packets
//! become available as device time advances; a driver that polls faster
//! than line rate waits for the next frame, so measured throughput is
//! `min(CPU rate, line rate)` — exactly the behaviour behind Figure 4.

use atmo_hw::cycles::CycleMeter;
use atmo_trace::{DeviceKind, KernelEvent, NetOutcome, TraceHandle, TraceShare};

use crate::pkt::{Packet, PktGen};
use crate::pool::{PktBuf, PktPool};
use crate::ring::SpscRing;
use crate::steer::RssSteer;
use crate::DriverCosts;

/// RX descriptor-ring depth (the 82599 default configuration).
const RX_RING_DEPTH: usize = 512;

/// Line rate for 64-byte frames as measured in the paper (packets/s).
pub const IXGBE_LINE_RATE_64B_PPS: f64 = 14_200_000.0;

/// The NIC device model.
#[derive(Debug)]
pub struct IxgbeDevice {
    freq_hz: f64,
    pps: f64,
    rx_consumed: u64,
    tx_sent: u64,
    gen: PktGen,
}

impl IxgbeDevice {
    /// A NIC on a machine running at `freq_hz`, receiving 64-byte frames
    /// at line rate (a pktgen peer saturates the link, §6.5.1).
    pub fn new(freq_hz: u64) -> Self {
        IxgbeDevice {
            freq_hz: freq_hz as f64,
            pps: IXGBE_LINE_RATE_64B_PPS,
            rx_consumed: 0,
            tx_sent: 0,
            gen: PktGen::new(),
        }
    }

    /// One RSS queue of a NIC shared by `nqueues` run-to-completion
    /// workers: this queue sees exactly its hash share of line rate, and
    /// every frame it delivers steers to `queue` (receive-side scaling
    /// partitions the flow space across queues).
    pub fn steered(freq_hz: u64, nqueues: usize, queue: usize) -> Self {
        let share = RssSteer::new(nqueues).share(queue);
        IxgbeDevice {
            freq_hz: freq_hz as f64,
            pps: IXGBE_LINE_RATE_64B_PPS * share,
            rx_consumed: 0,
            tx_sent: 0,
            gen: PktGen::steered(nqueues, queue),
        }
    }

    /// Frames that have arrived by cycle `now` and not yet been consumed.
    pub fn rx_available(&self, now: u64) -> u64 {
        let arrived = (now as f64 * self.pps / self.freq_hz) as u64;
        arrived.saturating_sub(self.rx_consumed)
    }

    /// Cycles from `now` until at least one frame is available.
    pub fn cycles_until_rx(&self, now: u64) -> u64 {
        if self.rx_available(now) > 0 {
            return 0;
        }
        let needed = self.rx_consumed + 1;
        let t = (needed as f64 * self.freq_hz / self.pps).ceil() as u64;
        t.saturating_sub(now)
    }

    /// Takes up to `max` received frames at time `now`.
    pub fn rx_take(&mut self, now: u64, max: usize) -> Vec<Packet> {
        let n = self.rx_available(now).min(max as u64);
        self.rx_consumed += n;
        (0..n).map(|_| self.gen.next_packet()).collect()
    }

    /// Zero-copy receive: takes up to `max` frames at time `now`, each
    /// written by the NIC *directly into a pool slot* (the RX descriptor
    /// names the slot — no allocation, no payload copy). Handles are
    /// appended to `out`. Stops early when the pool runs dry: unconsumed
    /// frames stay on the wire-side backlog, so exhaustion is
    /// backpressure rather than drop or panic.
    pub fn rx_take_zc(
        &mut self,
        now: u64,
        max: usize,
        pool: &mut PktPool,
        out: &mut Vec<PktBuf>,
    ) -> usize {
        let avail = self.rx_available(now).min(max as u64) as usize;
        let mut taken = 0;
        for _ in 0..avail {
            let Some(mut buf) = pool.try_acquire() else {
                break;
            };
            let len = self.gen.fill_next(pool.slot_mut(&buf));
            buf.set_len(len);
            out.push(buf);
            taken += 1;
        }
        self.rx_consumed += taken as u64;
        taken
    }

    /// Submits frames for transmission (the TX path is not the bottleneck
    /// for 64-byte echo workloads; the model accepts at line rate).
    pub fn tx_submit(&mut self, frames: usize) {
        self.tx_sent += frames as u64;
    }

    /// Frames transmitted so far.
    pub fn tx_count(&self) -> u64 {
        self.tx_sent
    }

    /// Frames received (consumed by the driver) so far.
    pub fn rx_count(&self) -> u64 {
        self.rx_consumed
    }
}

/// The polling ixgbe driver.
#[derive(Debug)]
pub struct IxgbeDriver {
    /// The device being driven.
    pub device: IxgbeDevice,
    costs: DriverCosts,
    /// RX descriptor staging ring: the device deposits received frames
    /// here; the poll loop drains it into the caller's buffer.
    rx_ring: SpscRing<Packet>,
    /// Batch-event sink (always-equal share: tracing does not change
    /// driver state).
    trace: TraceShare,
}

impl IxgbeDriver {
    /// Binds a driver to a device.
    pub fn new(device: IxgbeDevice, costs: DriverCosts) -> Self {
        IxgbeDriver {
            device,
            costs,
            rx_ring: SpscRing::new(RX_RING_DEPTH),
            trace: TraceShare::detached(),
        }
    }

    /// Routes rx/tx batch events into `sink`.
    pub fn attach_trace(&mut self, sink: TraceHandle) {
        self.trace.attach(sink);
    }

    /// Polls until up to `batch` frames are received, charging descriptor
    /// and doorbell costs (and idle-wait cycles when ahead of line rate).
    pub fn rx_batch(&mut self, meter: &mut CycleMeter, batch: usize) -> Vec<Packet> {
        let mut pkts = Vec::with_capacity(batch);
        self.rx_batch_into(meter, &mut pkts, batch);
        pkts
    }

    /// [`rx_batch`](Self::rx_batch) into a caller-provided buffer:
    /// received frames are appended to `out` (which keeps its capacity),
    /// so a steady-state poll loop that clears and reuses one `Vec` is
    /// allocation-free. Returns the number of frames received.
    pub fn rx_batch_into(
        &mut self,
        meter: &mut CycleMeter,
        out: &mut Vec<Packet>,
        batch: usize,
    ) -> usize {
        // Busy-poll until at least one frame is there.
        let wait = self.device.cycles_until_rx(meter.now());
        if wait > 0 {
            meter.charge(wait);
        }
        // The device writes frames into the descriptor ring; the driver
        // drains the ring into the caller's buffer.
        let room = self.rx_ring.capacity() - self.rx_ring.len();
        for pkt in self.device.rx_take(meter.now(), batch.min(room)) {
            self.rx_ring
                .enqueue(pkt)
                .unwrap_or_else(|_| unreachable!("bounded by ring room"));
        }
        let n = self.rx_ring.dequeue_into(out, batch);
        meter.charge(self.costs.rx_desc * n as u64 + self.costs.doorbell);
        self.trace.emit(KernelEvent::DriverRx {
            device: DeviceKind::Ixgbe,
            batch: n as u64,
        });
        n
    }

    /// Zero-copy receive batch: busy-polls for the next frame, then
    /// takes up to `batch` frames straight into pool slots
    /// ([`IxgbeDevice::rx_take_zc`]), appending the handles to `out`.
    ///
    /// Costs per non-empty batch: `rx_desc_zc` per frame (strictly below
    /// the cloning path's `rx_desc` — the descriptor only names a slot),
    /// plus one amortized `refill_batch` (re-posting freed slots to the
    /// ring in one pass) and one doorbell. A batch that comes back empty
    /// (pool exhausted before the first frame) charges nothing beyond
    /// the wait and processes no descriptors — pure backpressure.
    pub fn rx_batch_zc(
        &mut self,
        meter: &mut CycleMeter,
        pool: &mut PktPool,
        out: &mut Vec<PktBuf>,
        batch: usize,
    ) -> usize {
        let wait = self.device.cycles_until_rx(meter.now());
        if wait > 0 {
            meter.charge(wait);
        }
        let n = self.device.rx_take_zc(meter.now(), batch, pool, out);
        if n == 0 {
            return 0;
        }
        meter.charge(
            self.costs.rx_desc_zc * n as u64 + self.costs.refill_batch + self.costs.doorbell,
        );
        self.trace.emit(KernelEvent::DriverRx {
            device: DeviceKind::Ixgbe,
            batch: n as u64,
        });
        self.trace.net(NetOutcome::RxBatch, n as u64);
        n
    }

    /// Zero-copy transmit batch: the TX descriptors name the slots, the
    /// device consumes the frames, and every handle is released back to
    /// the pool (completion reclaims the slot). Drains `bufs` in place
    /// so the caller's buffer keeps its capacity. Returns the number of
    /// frames sent.
    pub fn tx_batch_zc(
        &mut self,
        meter: &mut CycleMeter,
        pool: &mut PktPool,
        bufs: &mut Vec<PktBuf>,
    ) -> usize {
        let n = bufs.len();
        if n == 0 {
            return 0;
        }
        meter.charge(self.costs.tx_desc_zc * n as u64 + self.costs.doorbell);
        self.device.tx_submit(n);
        for buf in bufs.drain(..) {
            pool.release(buf);
        }
        self.trace.emit(KernelEvent::DriverTx {
            device: DeviceKind::Ixgbe,
            batch: n as u64,
        });
        self.trace.net(NetOutcome::TxBatch, n as u64);
        n
    }

    /// Transmits a batch, charging descriptor and doorbell costs.
    pub fn tx_batch(&mut self, meter: &mut CycleMeter, pkts: Vec<Packet>) {
        let n = pkts.len();
        meter.charge(self.costs.tx_desc * n as u64 + self.costs.doorbell);
        self.device.tx_submit(n);
        self.trace.emit(KernelEvent::DriverTx {
            device: DeviceKind::Ixgbe,
            batch: n as u64,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atmo_hw::cycles::CpuProfile;

    const FREQ: u64 = 2_200_000_000;

    #[test]
    fn rx_respects_line_rate() {
        let dev = IxgbeDevice::new(FREQ);
        // After one second of device time, ~14.2M frames have arrived.
        let one_sec = FREQ;
        let avail = dev.rx_available(one_sec);
        assert!((avail as f64 - 14_200_000.0).abs() < 10.0, "{avail}");
        assert_eq!(dev.rx_available(0), 0);
    }

    #[test]
    fn cycles_until_rx_is_inter_frame_gap() {
        let dev = IxgbeDevice::new(FREQ);
        let gap = dev.cycles_until_rx(0);
        // 2.2 GHz / 14.2 Mpps ≈ 155 cycles per frame.
        assert!((150..=160).contains(&gap), "{gap}");
    }

    #[test]
    fn driver_waits_when_faster_than_line_rate() {
        let mut drv = IxgbeDriver::new(IxgbeDevice::new(FREQ), DriverCosts::atmosphere());
        let mut meter = CycleMeter::new();
        let pkts = drv.rx_batch(&mut meter, 32);
        assert!(!pkts.is_empty());
        assert!(meter.now() > 0, "waiting charged cycles");
    }

    #[test]
    fn linked_echo_reaches_line_rate_at_batch_32() {
        // The atmo-driver configuration of Figure 4: driver + app in one
        // process, batch 32 → line rate.
        let mut drv = IxgbeDriver::new(IxgbeDevice::new(FREQ), DriverCosts::atmosphere());
        let mut meter = CycleMeter::new();
        let mut done = 0u64;
        let target = 200_000;
        while done < target {
            let pkts = drv.rx_batch(&mut meter, 32);
            done += pkts.len() as u64;
            meter.charge(30 * pkts.len() as u64); // trivial echo app
            drv.tx_batch(&mut meter, pkts);
        }
        let mpps = CpuProfile::c220g5().throughput(done, meter.now()) / 1e6;
        assert!((14.0..14.3).contains(&mpps), "{mpps} Mpps");
    }

    #[test]
    fn rx_batch_into_reuses_buffer_without_reallocating() {
        let mut drv = IxgbeDriver::new(IxgbeDevice::new(FREQ), DriverCosts::atmosphere());
        let mut meter = CycleMeter::new();
        let mut buf: Vec<Packet> = Vec::with_capacity(32);
        let cap0 = buf.capacity();
        let mut total = 0;
        for _ in 0..100 {
            buf.clear();
            total += drv.rx_batch_into(&mut meter, &mut buf, 32);
            assert!(buf.len() <= 32);
            assert_eq!(buf.capacity(), cap0, "steady-state RX must not allocate");
        }
        assert!(total > 0);
        assert_eq!(drv.device.rx_count(), total as u64);
    }

    #[test]
    fn rx_batch_into_matches_rx_batch_costs() {
        // Both entry points charge identical descriptor/doorbell costs.
        let mut a = IxgbeDriver::new(IxgbeDevice::new(FREQ), DriverCosts::atmosphere());
        let mut b = IxgbeDriver::new(IxgbeDevice::new(FREQ), DriverCosts::atmosphere());
        let mut ma = CycleMeter::new();
        let mut mb = CycleMeter::new();
        for _ in 0..50 {
            let pkts = a.rx_batch(&mut ma, 16);
            let mut buf = Vec::new();
            let n = b.rx_batch_into(&mut mb, &mut buf, 16);
            assert_eq!(pkts.len(), n);
        }
        assert_eq!(ma.now(), mb.now());
    }

    #[test]
    fn zc_echo_reaches_line_rate_at_batch_32() {
        // The zero-copy datapath at batch 32 is CPU-cheap enough that the
        // echo is line-rate bound, matching Figure 4's ceiling.
        let mut drv = IxgbeDriver::new(IxgbeDevice::new(FREQ), DriverCosts::atmosphere());
        let mut pool = PktPool::anonymous(1024);
        let mut meter = CycleMeter::new();
        let mut bufs: Vec<PktBuf> = Vec::with_capacity(32);
        let mut done = 0u64;
        let target = 200_000;
        while done < target {
            let n = drv.rx_batch_zc(&mut meter, &mut pool, &mut bufs, 32);
            done += n as u64;
            meter.charge(30 * n as u64); // trivial echo app
            drv.tx_batch_zc(&mut meter, &mut pool, &mut bufs);
        }
        let mpps = CpuProfile::c220g5().throughput(done, meter.now()) / 1e6;
        assert!((14.0..14.3).contains(&mpps), "{mpps} Mpps");
        assert_eq!(pool.exhausted(), 0);
        assert_eq!(pool.in_flight(), 0);
    }

    #[test]
    fn zc_batch_is_strictly_cheaper_than_cloning_per_packet() {
        // Same frames, same batch size: the zero-copy path must charge
        // strictly fewer descriptor cycles than the cloning path.
        let costs = DriverCosts::atmosphere();
        let mut a = IxgbeDriver::new(IxgbeDevice::new(FREQ), costs);
        let mut b = IxgbeDriver::new(IxgbeDevice::new(FREQ), costs);
        let mut pool = PktPool::anonymous(64);
        let mut ma = CycleMeter::new();
        let mut mb = CycleMeter::new();
        // Deep wire-side backlog so every batch is full and wait is zero:
        // the deltas below measure pure datapath work.
        ma.charge(10_000_000);
        mb.charge(10_000_000);
        let (a0, b0) = (ma.now(), mb.now());
        let mut bufs = Vec::with_capacity(32);
        let mut clone_pkts = 0u64;
        let mut zc_pkts = 0u64;
        for _ in 0..200 {
            let pkts = a.rx_batch(&mut ma, 32);
            clone_pkts += pkts.len() as u64;
            a.tx_batch(&mut ma, pkts);
            let n = b.rx_batch_zc(&mut mb, &mut pool, &mut bufs, 32);
            zc_pkts += n as u64;
            b.tx_batch_zc(&mut mb, &mut pool, &mut bufs);
        }
        assert_eq!(clone_pkts, 200 * 32);
        assert_eq!(zc_pkts, 200 * 32);
        let clone_cycles = (ma.now() - a0) as f64 / clone_pkts as f64;
        let zc_cycles = (mb.now() - b0) as f64 / zc_pkts as f64;
        assert!(
            zc_cycles < clone_cycles,
            "zc {zc_cycles} cycles/pkt !< cloning {clone_cycles}"
        );
    }

    #[test]
    fn zc_steady_state_is_allocation_free() {
        let mut drv = IxgbeDriver::new(IxgbeDevice::new(FREQ), DriverCosts::atmosphere());
        let mut pool = PktPool::anonymous(64);
        let mut meter = CycleMeter::new();
        let mut bufs: Vec<PktBuf> = Vec::with_capacity(32);
        let cap0 = bufs.capacity();
        let mut total = 0;
        for _ in 0..100 {
            total += drv.rx_batch_zc(&mut meter, &mut pool, &mut bufs, 32);
            assert!(bufs.len() <= 32);
            drv.tx_batch_zc(&mut meter, &mut pool, &mut bufs);
            assert_eq!(
                bufs.capacity(),
                cap0,
                "steady-state zc RX must not allocate"
            );
        }
        assert!(total > 0);
        assert_eq!(pool.exhausted(), 0, "a 2-batch pool never runs dry");
        assert_eq!(pool.acquired(), total as u64);
        assert_eq!(pool.released(), total as u64);
    }

    #[test]
    fn zc_pool_exhaustion_is_backpressure_then_resumes() {
        // A pool smaller than the batch: the driver takes what fits, the
        // rest stays on the wire. Releasing the handles lets RX resume —
        // no frame is dropped from the consumed count, nothing panics.
        let mut drv = IxgbeDriver::new(IxgbeDevice::new(FREQ), DriverCosts::atmosphere());
        let mut pool = PktPool::anonymous(8);
        let mut meter = CycleMeter::new();
        meter.charge(1_000_000); // plenty of frames queued on the wire
        let mut held = Vec::new();
        let n = drv.rx_batch_zc(&mut meter, &mut pool, &mut held, 32);
        assert_eq!(n, 8, "partial batch: pool capacity, not batch size");
        assert_eq!(pool.in_flight(), 8);
        // Pool dry: the next poll is pure backpressure.
        let mut more = Vec::new();
        let n2 = drv.rx_batch_zc(&mut meter, &mut pool, &mut more, 32);
        assert_eq!(n2, 0);
        assert!(pool.exhausted() > 0);
        // App finishes with the held frames; RX resumes.
        drv.tx_batch_zc(&mut meter, &mut pool, &mut held);
        let n3 = drv.rx_batch_zc(&mut meter, &mut pool, &mut more, 32);
        assert_eq!(n3, 8);
        drv.tx_batch_zc(&mut meter, &mut pool, &mut more);
        assert_eq!(pool.in_flight(), 0);
    }

    #[test]
    fn steered_queues_partition_line_rate() {
        // Four RSS queues: their per-queue arrival rates sum to the full
        // line rate, and each queue only ever sees its own flows.
        let nq = 4;
        let one_sec = FREQ;
        let mut total = 0u64;
        for q in 0..nq {
            let mut dev = IxgbeDevice::steered(FREQ, nq, q);
            let avail = dev.rx_available(one_sec);
            total += avail;
            let mut pool = PktPool::anonymous(32);
            let mut bufs = Vec::new();
            dev.rx_take_zc(one_sec, 16, &mut pool, &mut bufs);
            let steer = RssSteer::new(nq);
            for b in bufs.drain(..) {
                let key =
                    crate::pkt::flow_key_of(pool.data(&b)).expect("generated frames always parse");
                assert_eq!(steer.queue_of_key(&key), q, "frame on the wrong queue");
                pool.release(b);
            }
        }
        let line = IXGBE_LINE_RATE_64B_PPS as u64;
        assert!(
            total.abs_diff(line) < 16,
            "queue shares must sum to line rate: {total} vs {line}"
        );
    }

    #[test]
    fn traced_zc_pass_reconciles_events_and_counters() {
        use atmo_trace::TraceSink;

        let sink = TraceSink::new(1, 4096);
        let mut drv = IxgbeDriver::new(IxgbeDevice::new(FREQ), DriverCosts::atmosphere());
        drv.attach_trace(sink.clone());
        let mut pool = PktPool::anonymous(64);
        pool.attach_trace(sink.clone());
        let mut meter = CycleMeter::new();
        let mut bufs = Vec::with_capacity(32);
        let mut total = 0u64;
        for _ in 0..10 {
            total += drv.rx_batch_zc(&mut meter, &mut pool, &mut bufs, 32) as u64;
            drv.tx_batch_zc(&mut meter, &mut pool, &mut bufs);
        }
        atmo_trace::trace_wf(&sink).expect("net ledger balances");
        let snap = sink.snapshot();
        assert_eq!(snap.counters.net.pool_acquired, total);
        assert_eq!(snap.counters.net.pool_released, total);
        assert_eq!(snap.counters.net.rx_zc_frames, total);
        assert_eq!(snap.counters.net.tx_zc_frames, total);
        assert_eq!(snap.counters.net.rx_zc_batches, 10);
        assert_eq!(snap.counters.net.tx_zc_batches, 10);
        assert_eq!(snap.net_in_flight, 0);
    }

    #[test]
    fn tx_counts_frames() {
        let mut drv = IxgbeDriver::new(IxgbeDevice::new(FREQ), DriverCosts::atmosphere());
        let mut meter = CycleMeter::new();
        meter.charge(1_000_000);
        let pkts = drv.rx_batch(&mut meter, 8);
        let n = pkts.len() as u64;
        drv.tx_batch(&mut meter, pkts);
        assert_eq!(drv.device.tx_count(), n);
    }
}
