//! The Intel 82599 (ixgbe) 10 GbE NIC model and polling driver (§6.5.1).
//!
//! The device model exposes descriptor-ring semantics with the physical
//! ceiling of the medium: 64-byte frames on 10 GbE arrive at most at
//! ~14.88 Mpps theoretical; the paper measures **14.2 Mpps** line rate
//! with pktgen, which is the ceiling this model enforces. RX packets
//! become available as device time advances; a driver that polls faster
//! than line rate waits for the next frame, so measured throughput is
//! `min(CPU rate, line rate)` — exactly the behaviour behind Figure 4.

use atmo_hw::cycles::CycleMeter;
use atmo_trace::{DeviceKind, KernelEvent, TraceHandle, TraceShare};

use crate::pkt::{Packet, PktGen};
use crate::DriverCosts;

/// Line rate for 64-byte frames as measured in the paper (packets/s).
pub const IXGBE_LINE_RATE_64B_PPS: f64 = 14_200_000.0;

/// The NIC device model.
#[derive(Debug)]
pub struct IxgbeDevice {
    freq_hz: f64,
    pps: f64,
    rx_consumed: u64,
    tx_sent: u64,
    gen: PktGen,
}

impl IxgbeDevice {
    /// A NIC on a machine running at `freq_hz`, receiving 64-byte frames
    /// at line rate (a pktgen peer saturates the link, §6.5.1).
    pub fn new(freq_hz: u64) -> Self {
        IxgbeDevice {
            freq_hz: freq_hz as f64,
            pps: IXGBE_LINE_RATE_64B_PPS,
            rx_consumed: 0,
            tx_sent: 0,
            gen: PktGen::new(),
        }
    }

    /// Frames that have arrived by cycle `now` and not yet been consumed.
    pub fn rx_available(&self, now: u64) -> u64 {
        let arrived = (now as f64 * self.pps / self.freq_hz) as u64;
        arrived.saturating_sub(self.rx_consumed)
    }

    /// Cycles from `now` until at least one frame is available.
    pub fn cycles_until_rx(&self, now: u64) -> u64 {
        if self.rx_available(now) > 0 {
            return 0;
        }
        let needed = self.rx_consumed + 1;
        let t = (needed as f64 * self.freq_hz / self.pps).ceil() as u64;
        t.saturating_sub(now)
    }

    /// Takes up to `max` received frames at time `now`.
    pub fn rx_take(&mut self, now: u64, max: usize) -> Vec<Packet> {
        let n = self.rx_available(now).min(max as u64);
        self.rx_consumed += n;
        (0..n).map(|_| self.gen.next_packet()).collect()
    }

    /// Submits frames for transmission (the TX path is not the bottleneck
    /// for 64-byte echo workloads; the model accepts at line rate).
    pub fn tx_submit(&mut self, frames: usize) {
        self.tx_sent += frames as u64;
    }

    /// Frames transmitted so far.
    pub fn tx_count(&self) -> u64 {
        self.tx_sent
    }

    /// Frames received (consumed by the driver) so far.
    pub fn rx_count(&self) -> u64 {
        self.rx_consumed
    }
}

/// The polling ixgbe driver.
#[derive(Debug)]
pub struct IxgbeDriver {
    /// The device being driven.
    pub device: IxgbeDevice,
    costs: DriverCosts,
    /// Batch-event sink (always-equal share: tracing does not change
    /// driver state).
    trace: TraceShare,
}

impl IxgbeDriver {
    /// Binds a driver to a device.
    pub fn new(device: IxgbeDevice, costs: DriverCosts) -> Self {
        IxgbeDriver {
            device,
            costs,
            trace: TraceShare::detached(),
        }
    }

    /// Routes rx/tx batch events into `sink`.
    pub fn attach_trace(&mut self, sink: TraceHandle) {
        self.trace.attach(sink);
    }

    /// Polls until up to `batch` frames are received, charging descriptor
    /// and doorbell costs (and idle-wait cycles when ahead of line rate).
    pub fn rx_batch(&mut self, meter: &mut CycleMeter, batch: usize) -> Vec<Packet> {
        // Busy-poll until at least one frame is there.
        let wait = self.device.cycles_until_rx(meter.now());
        if wait > 0 {
            meter.charge(wait);
        }
        let pkts = self.device.rx_take(meter.now(), batch);
        meter.charge(self.costs.rx_desc * pkts.len() as u64 + self.costs.doorbell);
        self.trace.emit(KernelEvent::DriverRx {
            device: DeviceKind::Ixgbe,
            batch: pkts.len() as u64,
        });
        pkts
    }

    /// Transmits a batch, charging descriptor and doorbell costs.
    pub fn tx_batch(&mut self, meter: &mut CycleMeter, pkts: Vec<Packet>) {
        let n = pkts.len();
        meter.charge(self.costs.tx_desc * n as u64 + self.costs.doorbell);
        self.device.tx_submit(n);
        self.trace.emit(KernelEvent::DriverTx {
            device: DeviceKind::Ixgbe,
            batch: n as u64,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atmo_hw::cycles::CpuProfile;

    const FREQ: u64 = 2_200_000_000;

    #[test]
    fn rx_respects_line_rate() {
        let dev = IxgbeDevice::new(FREQ);
        // After one second of device time, ~14.2M frames have arrived.
        let one_sec = FREQ;
        let avail = dev.rx_available(one_sec);
        assert!((avail as f64 - 14_200_000.0).abs() < 10.0, "{avail}");
        assert_eq!(dev.rx_available(0), 0);
    }

    #[test]
    fn cycles_until_rx_is_inter_frame_gap() {
        let dev = IxgbeDevice::new(FREQ);
        let gap = dev.cycles_until_rx(0);
        // 2.2 GHz / 14.2 Mpps ≈ 155 cycles per frame.
        assert!((150..=160).contains(&gap), "{gap}");
    }

    #[test]
    fn driver_waits_when_faster_than_line_rate() {
        let mut drv = IxgbeDriver::new(IxgbeDevice::new(FREQ), DriverCosts::atmosphere());
        let mut meter = CycleMeter::new();
        let pkts = drv.rx_batch(&mut meter, 32);
        assert!(!pkts.is_empty());
        assert!(meter.now() > 0, "waiting charged cycles");
    }

    #[test]
    fn linked_echo_reaches_line_rate_at_batch_32() {
        // The atmo-driver configuration of Figure 4: driver + app in one
        // process, batch 32 → line rate.
        let mut drv = IxgbeDriver::new(IxgbeDevice::new(FREQ), DriverCosts::atmosphere());
        let mut meter = CycleMeter::new();
        let mut done = 0u64;
        let target = 200_000;
        while done < target {
            let pkts = drv.rx_batch(&mut meter, 32);
            done += pkts.len() as u64;
            meter.charge(30 * pkts.len() as u64); // trivial echo app
            drv.tx_batch(&mut meter, pkts);
        }
        let mpps = CpuProfile::c220g5().throughput(done, meter.now()) / 1e6;
        assert!((14.0..14.3).contains(&mpps), "{mpps} Mpps");
    }

    #[test]
    fn tx_counts_frames() {
        let mut drv = IxgbeDriver::new(IxgbeDevice::new(FREQ), DriverCosts::atmosphere());
        let mut meter = CycleMeter::new();
        meter.charge(1_000_000);
        let pkts = drv.rx_batch(&mut meter, 8);
        let n = pkts.len() as u64;
        drv.tx_batch(&mut meter, pkts);
        assert_eq!(drv.device.tx_count(), n);
    }
}
