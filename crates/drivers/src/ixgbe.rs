//! The Intel 82599 (ixgbe) 10 GbE NIC model and polling driver (§6.5.1).
//!
//! The device model exposes descriptor-ring semantics with the physical
//! ceiling of the medium: 64-byte frames on 10 GbE arrive at most at
//! ~14.88 Mpps theoretical; the paper measures **14.2 Mpps** line rate
//! with pktgen, which is the ceiling this model enforces. RX packets
//! become available as device time advances; a driver that polls faster
//! than line rate waits for the next frame, so measured throughput is
//! `min(CPU rate, line rate)` — exactly the behaviour behind Figure 4.

use atmo_hw::cycles::CycleMeter;
use atmo_trace::{DeviceKind, KernelEvent, TraceHandle, TraceShare};

use crate::pkt::{Packet, PktGen};
use crate::ring::SpscRing;
use crate::DriverCosts;

/// RX descriptor-ring depth (the 82599 default configuration).
const RX_RING_DEPTH: usize = 512;

/// Line rate for 64-byte frames as measured in the paper (packets/s).
pub const IXGBE_LINE_RATE_64B_PPS: f64 = 14_200_000.0;

/// The NIC device model.
#[derive(Debug)]
pub struct IxgbeDevice {
    freq_hz: f64,
    pps: f64,
    rx_consumed: u64,
    tx_sent: u64,
    gen: PktGen,
}

impl IxgbeDevice {
    /// A NIC on a machine running at `freq_hz`, receiving 64-byte frames
    /// at line rate (a pktgen peer saturates the link, §6.5.1).
    pub fn new(freq_hz: u64) -> Self {
        IxgbeDevice {
            freq_hz: freq_hz as f64,
            pps: IXGBE_LINE_RATE_64B_PPS,
            rx_consumed: 0,
            tx_sent: 0,
            gen: PktGen::new(),
        }
    }

    /// Frames that have arrived by cycle `now` and not yet been consumed.
    pub fn rx_available(&self, now: u64) -> u64 {
        let arrived = (now as f64 * self.pps / self.freq_hz) as u64;
        arrived.saturating_sub(self.rx_consumed)
    }

    /// Cycles from `now` until at least one frame is available.
    pub fn cycles_until_rx(&self, now: u64) -> u64 {
        if self.rx_available(now) > 0 {
            return 0;
        }
        let needed = self.rx_consumed + 1;
        let t = (needed as f64 * self.freq_hz / self.pps).ceil() as u64;
        t.saturating_sub(now)
    }

    /// Takes up to `max` received frames at time `now`.
    pub fn rx_take(&mut self, now: u64, max: usize) -> Vec<Packet> {
        let n = self.rx_available(now).min(max as u64);
        self.rx_consumed += n;
        (0..n).map(|_| self.gen.next_packet()).collect()
    }

    /// Submits frames for transmission (the TX path is not the bottleneck
    /// for 64-byte echo workloads; the model accepts at line rate).
    pub fn tx_submit(&mut self, frames: usize) {
        self.tx_sent += frames as u64;
    }

    /// Frames transmitted so far.
    pub fn tx_count(&self) -> u64 {
        self.tx_sent
    }

    /// Frames received (consumed by the driver) so far.
    pub fn rx_count(&self) -> u64 {
        self.rx_consumed
    }
}

/// The polling ixgbe driver.
#[derive(Debug)]
pub struct IxgbeDriver {
    /// The device being driven.
    pub device: IxgbeDevice,
    costs: DriverCosts,
    /// RX descriptor staging ring: the device deposits received frames
    /// here; the poll loop drains it into the caller's buffer.
    rx_ring: SpscRing<Packet>,
    /// Batch-event sink (always-equal share: tracing does not change
    /// driver state).
    trace: TraceShare,
}

impl IxgbeDriver {
    /// Binds a driver to a device.
    pub fn new(device: IxgbeDevice, costs: DriverCosts) -> Self {
        IxgbeDriver {
            device,
            costs,
            rx_ring: SpscRing::new(RX_RING_DEPTH),
            trace: TraceShare::detached(),
        }
    }

    /// Routes rx/tx batch events into `sink`.
    pub fn attach_trace(&mut self, sink: TraceHandle) {
        self.trace.attach(sink);
    }

    /// Polls until up to `batch` frames are received, charging descriptor
    /// and doorbell costs (and idle-wait cycles when ahead of line rate).
    pub fn rx_batch(&mut self, meter: &mut CycleMeter, batch: usize) -> Vec<Packet> {
        let mut pkts = Vec::with_capacity(batch);
        self.rx_batch_into(meter, &mut pkts, batch);
        pkts
    }

    /// [`rx_batch`](Self::rx_batch) into a caller-provided buffer:
    /// received frames are appended to `out` (which keeps its capacity),
    /// so a steady-state poll loop that clears and reuses one `Vec` is
    /// allocation-free. Returns the number of frames received.
    pub fn rx_batch_into(
        &mut self,
        meter: &mut CycleMeter,
        out: &mut Vec<Packet>,
        batch: usize,
    ) -> usize {
        // Busy-poll until at least one frame is there.
        let wait = self.device.cycles_until_rx(meter.now());
        if wait > 0 {
            meter.charge(wait);
        }
        // The device writes frames into the descriptor ring; the driver
        // drains the ring into the caller's buffer.
        let room = self.rx_ring.capacity() - self.rx_ring.len();
        for pkt in self.device.rx_take(meter.now(), batch.min(room)) {
            self.rx_ring
                .enqueue(pkt)
                .unwrap_or_else(|_| unreachable!("bounded by ring room"));
        }
        let n = self.rx_ring.dequeue_into(out, batch);
        meter.charge(self.costs.rx_desc * n as u64 + self.costs.doorbell);
        self.trace.emit(KernelEvent::DriverRx {
            device: DeviceKind::Ixgbe,
            batch: n as u64,
        });
        n
    }

    /// Transmits a batch, charging descriptor and doorbell costs.
    pub fn tx_batch(&mut self, meter: &mut CycleMeter, pkts: Vec<Packet>) {
        let n = pkts.len();
        meter.charge(self.costs.tx_desc * n as u64 + self.costs.doorbell);
        self.device.tx_submit(n);
        self.trace.emit(KernelEvent::DriverTx {
            device: DeviceKind::Ixgbe,
            batch: n as u64,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atmo_hw::cycles::CpuProfile;

    const FREQ: u64 = 2_200_000_000;

    #[test]
    fn rx_respects_line_rate() {
        let dev = IxgbeDevice::new(FREQ);
        // After one second of device time, ~14.2M frames have arrived.
        let one_sec = FREQ;
        let avail = dev.rx_available(one_sec);
        assert!((avail as f64 - 14_200_000.0).abs() < 10.0, "{avail}");
        assert_eq!(dev.rx_available(0), 0);
    }

    #[test]
    fn cycles_until_rx_is_inter_frame_gap() {
        let dev = IxgbeDevice::new(FREQ);
        let gap = dev.cycles_until_rx(0);
        // 2.2 GHz / 14.2 Mpps ≈ 155 cycles per frame.
        assert!((150..=160).contains(&gap), "{gap}");
    }

    #[test]
    fn driver_waits_when_faster_than_line_rate() {
        let mut drv = IxgbeDriver::new(IxgbeDevice::new(FREQ), DriverCosts::atmosphere());
        let mut meter = CycleMeter::new();
        let pkts = drv.rx_batch(&mut meter, 32);
        assert!(!pkts.is_empty());
        assert!(meter.now() > 0, "waiting charged cycles");
    }

    #[test]
    fn linked_echo_reaches_line_rate_at_batch_32() {
        // The atmo-driver configuration of Figure 4: driver + app in one
        // process, batch 32 → line rate.
        let mut drv = IxgbeDriver::new(IxgbeDevice::new(FREQ), DriverCosts::atmosphere());
        let mut meter = CycleMeter::new();
        let mut done = 0u64;
        let target = 200_000;
        while done < target {
            let pkts = drv.rx_batch(&mut meter, 32);
            done += pkts.len() as u64;
            meter.charge(30 * pkts.len() as u64); // trivial echo app
            drv.tx_batch(&mut meter, pkts);
        }
        let mpps = CpuProfile::c220g5().throughput(done, meter.now()) / 1e6;
        assert!((14.0..14.3).contains(&mpps), "{mpps} Mpps");
    }

    #[test]
    fn rx_batch_into_reuses_buffer_without_reallocating() {
        let mut drv = IxgbeDriver::new(IxgbeDevice::new(FREQ), DriverCosts::atmosphere());
        let mut meter = CycleMeter::new();
        let mut buf: Vec<Packet> = Vec::with_capacity(32);
        let cap0 = buf.capacity();
        let mut total = 0;
        for _ in 0..100 {
            buf.clear();
            total += drv.rx_batch_into(&mut meter, &mut buf, 32);
            assert!(buf.len() <= 32);
            assert_eq!(buf.capacity(), cap0, "steady-state RX must not allocate");
        }
        assert!(total > 0);
        assert_eq!(drv.device.rx_count(), total as u64);
    }

    #[test]
    fn rx_batch_into_matches_rx_batch_costs() {
        // Both entry points charge identical descriptor/doorbell costs.
        let mut a = IxgbeDriver::new(IxgbeDevice::new(FREQ), DriverCosts::atmosphere());
        let mut b = IxgbeDriver::new(IxgbeDevice::new(FREQ), DriverCosts::atmosphere());
        let mut ma = CycleMeter::new();
        let mut mb = CycleMeter::new();
        for _ in 0..50 {
            let pkts = a.rx_batch(&mut ma, 16);
            let mut buf = Vec::new();
            let n = b.rx_batch_into(&mut mb, &mut buf, 16);
            assert_eq!(pkts.len(), n);
        }
        assert_eq!(ma.now(), mb.now());
    }

    #[test]
    fn tx_counts_frames() {
        let mut drv = IxgbeDriver::new(IxgbeDevice::new(FREQ), DriverCosts::atmosphere());
        let mut meter = CycleMeter::new();
        meter.charge(1_000_000);
        let pkts = drv.rx_batch(&mut meter, 8);
        let n = pkts.len() as u64;
        drv.tx_batch(&mut meter, pkts);
        assert_eq!(drv.device.tx_count(), n);
    }
}
