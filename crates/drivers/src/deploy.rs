//! Deployment scenarios: `atmo-driver`, `atmo-c2`, `atmo-c1-bN` (§6.5).
//!
//! The paper evaluates each driver in three configurations:
//!
//! * **`atmo-driver` (Linked)** — benchmark application statically linked
//!   with the driver, like DPDK/SPDK;
//! * **`atmo-c2` (CrossCore)** — application and driver are separate
//!   processes on separate cores, connected by a shared-memory ring;
//! * **`atmo-c1-bN` (SameCoreIpc)** — application and driver share one
//!   core; the application batches `N` requests into the ring and then
//!   invokes the driver through an IPC endpoint (one context switch per
//!   batch in each direction).
//!
//! The runners below execute the real driver/ring code against the device
//! models, charging the calibrated cycle costs, and report throughput.

use atmo_hw::cycles::{CostModel, CpuProfile, CycleMeter};

use crate::ixgbe::{IxgbeDevice, IxgbeDriver};
use crate::nvme::{run_closed_loop, IoKind, NvmeDevice, NvmeDriver, NvmeSpec};
use crate::pkt::Packet;
use crate::ring::SpscRing;
use crate::DriverCosts;

/// The deployment configurations of §6.5.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Deployment {
    /// Application statically linked with the driver (`atmo-driver`).
    Linked {
        /// Descriptor batch size.
        batch: usize,
    },
    /// Driver on a dedicated core, shared ring (`atmo-c2`).
    CrossCore {
        /// Descriptor batch size.
        batch: usize,
    },
    /// Driver process on the same core, invoked per batch (`atmo-c1-bN`).
    SameCoreIpc {
        /// Requests per IPC invocation.
        batch: usize,
    },
}

impl Deployment {
    /// The configuration label used in the paper's figures.
    pub fn label(&self) -> String {
        match self {
            Deployment::Linked { .. } => "atmo-driver".to_string(),
            Deployment::CrossCore { .. } => "atmo-c2".to_string(),
            Deployment::SameCoreIpc { batch } => format!("atmo-c1-b{batch}"),
        }
    }
}

/// Result of a network RX/TX scenario run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NetScenarioReport {
    /// Packets moved end to end.
    pub packets: u64,
    /// Bottleneck-core cycles consumed.
    pub cycles: u64,
    /// Millions of packets per second.
    pub mpps: f64,
}

/// Runs an RX→process→TX echo workload over the ixgbe driver in the given
/// deployment, applying `app_cost` cycles of application work per packet.
pub fn run_rx_tx_scenario(
    deploy: Deployment,
    npackets: u64,
    app_cost: u64,
    costs: &DriverCosts,
    model: &CostModel,
    profile: &CpuProfile,
) -> NetScenarioReport {
    match deploy {
        Deployment::Linked { batch } => {
            let mut drv = IxgbeDriver::new(IxgbeDevice::new(profile.freq_hz), *costs);
            let mut m = CycleMeter::new();
            let mut done = 0u64;
            while done < npackets {
                let pkts = drv.rx_batch(&mut m, batch);
                m.charge(app_cost * pkts.len() as u64);
                done += pkts.len() as u64;
                drv.tx_batch(&mut m, pkts);
            }
            report(done, m.now(), profile)
        }
        Deployment::SameCoreIpc { batch } => {
            let mut drv = IxgbeDriver::new(IxgbeDevice::new(profile.freq_hz), *costs);
            let mut m = CycleMeter::new();
            let mut ring: SpscRing<Packet> = SpscRing::new(1024);
            let mut done = 0u64;
            while done < npackets {
                // Driver half: receive a batch into the shared ring.
                let pkts = drv.rx_batch(&mut m, batch);
                for p in pkts {
                    m.charge(model.ring_op);
                    let _ = ring.enqueue(p);
                }
                // One context switch per batch: the driver and the
                // application ping-pong through the endpoint, each
                // activation carrying a full batch (§6.5.1: "one context
                // switching per packet" at batch size 1).
                m.charge(model.ipc_one_way());
                // Application half: drain, process, hand back for TX.
                let mut out = Vec::new();
                while let Some(p) = ring.dequeue() {
                    m.charge(app_cost);
                    out.push(p);
                }
                done += out.len() as u64;
                drv.tx_batch(&mut m, out);
            }
            report(done, m.now(), profile)
        }
        Deployment::CrossCore { batch } => {
            // Two cores: the driver core moves frames between the NIC and
            // the ring; the app core processes. The pipeline throughput is
            // set by the slower core (meters advance independently; the
            // consumer syncs to the producer when it runs dry).
            let mut drv = IxgbeDriver::new(IxgbeDevice::new(profile.freq_hz), *costs);
            let mut m_drv = CycleMeter::new();
            let mut m_app = CycleMeter::new();
            let mut ring: SpscRing<Packet> = SpscRing::new(4096);
            let mut done = 0u64;
            while done < npackets {
                let pkts = drv.rx_batch(&mut m_drv, batch);
                for p in pkts {
                    m_drv.charge(model.ring_op);
                    let _ = ring.enqueue(p);
                }
                // The app cannot read data the driver has not written yet.
                m_app.sync_to(
                    m_drv
                        .now()
                        .min(m_app.now() + 4 * model.ring_op * batch as u64),
                );
                let mut out = Vec::new();
                while let Some(p) = ring.dequeue() {
                    m_app.charge(model.ring_op + app_cost);
                    out.push(p);
                }
                m_app.sync_to(m_drv.now());
                done += out.len() as u64;
                drv.tx_batch(&mut m_drv, out);
            }
            let bottleneck = m_drv.now().max(m_app.now());
            report(done, bottleneck, profile)
        }
    }
}

fn report(packets: u64, cycles: u64, profile: &CpuProfile) -> NetScenarioReport {
    NetScenarioReport {
        packets,
        cycles,
        mpps: profile.throughput(packets, cycles) / 1e6,
    }
}

/// Runs a sequential NVMe workload in the given deployment; returns IOPS.
///
/// `extra_cpu_per_io` models the client application's per-I/O work.
pub fn run_nvme_scenario(
    deploy: Deployment,
    kind: IoKind,
    total: u64,
    costs: &DriverCosts,
    model: &CostModel,
    profile: &CpuProfile,
) -> f64 {
    let mut drv = NvmeDriver::new(NvmeDevice::new(NvmeSpec::p3700(profile.freq_hz)), *costs);
    let mut m = CycleMeter::new();
    match deploy {
        Deployment::Linked { batch } => run_closed_loop(&mut drv, &mut m, kind, batch, total, 0),
        Deployment::SameCoreIpc { batch } => {
            // Each batch costs one endpoint invocation plus per-request
            // ring traffic.
            let per_io = 2 * model.ring_op + model.ipc_one_way() / batch as u64;
            run_closed_loop(&mut drv, &mut m, kind, batch, total, per_io)
        }
        Deployment::CrossCore { batch } => {
            // The driver core does the device work; the client core's ring
            // traffic overlaps and is not the bottleneck for 4 KiB I/O.
            let per_io = model.ring_op;
            run_closed_loop(&mut drv, &mut m, kind, batch, total, per_io)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_net(deploy: Deployment) -> NetScenarioReport {
        run_rx_tx_scenario(
            deploy,
            150_000,
            45,
            &DriverCosts::atmosphere(),
            &CostModel::c220g5(),
            &CpuProfile::c220g5(),
        )
    }

    #[test]
    fn figure4_linked_batch32_hits_line_rate() {
        let r = run_net(Deployment::Linked { batch: 32 });
        assert!((13.9..14.3).contains(&r.mpps), "{} Mpps", r.mpps);
    }

    #[test]
    fn figure4_same_core_batch1_near_2_3_mpps() {
        let r = run_net(Deployment::SameCoreIpc { batch: 1 });
        assert!((2.0..2.7).contains(&r.mpps), "{} Mpps", r.mpps);
    }

    #[test]
    fn figure4_same_core_batch32_near_11_mpps() {
        let r = run_net(Deployment::SameCoreIpc { batch: 32 });
        assert!((10.0..12.2).contains(&r.mpps), "{} Mpps", r.mpps);
    }

    #[test]
    fn figure4_cross_core_reaches_line_rate() {
        let r = run_net(Deployment::CrossCore { batch: 32 });
        assert!((13.5..14.3).contains(&r.mpps), "{} Mpps", r.mpps);
    }

    #[test]
    fn figure4_ordering_matches_paper() {
        // linked ≥ c2 ≥ c1-b32 ≥ c1-b1: batching and core separation
        // recover most of the isolation cost.
        let linked = run_net(Deployment::Linked { batch: 32 }).mpps;
        let c2 = run_net(Deployment::CrossCore { batch: 32 }).mpps;
        let c1b32 = run_net(Deployment::SameCoreIpc { batch: 32 }).mpps;
        let c1b1 = run_net(Deployment::SameCoreIpc { batch: 1 }).mpps;
        let tol = 0.1; // both top configurations sit at line rate
        assert!(
            linked >= c2 - tol && c2 >= c1b32 - tol && c1b32 >= c1b1,
            "{linked} {c2} {c1b32} {c1b1}"
        );
    }

    #[test]
    fn figure5_nvme_reads_shape() {
        let model = CostModel::c220g5();
        let profile = CpuProfile::c220g5();
        let costs = DriverCosts::atmosphere();
        let b1 = run_nvme_scenario(
            Deployment::Linked { batch: 1 },
            IoKind::Read,
            2_000,
            &costs,
            &model,
            &profile,
        );
        let b32 = run_nvme_scenario(
            Deployment::Linked { batch: 32 },
            IoKind::Read,
            40_000,
            &costs,
            &model,
            &profile,
        );
        assert!((12_000.0..14_000.0).contains(&b1), "{b1}");
        assert!((400_000.0..460_000.0).contains(&b32), "{b32}");
    }

    #[test]
    fn figure5_ipc_configs_still_reach_device_read_peak() {
        // §6.5.2: "On a batch size of 1 and 32, the Atmosphere driver
        // performs similar to SPDK" — the IPC cost amortizes away.
        let model = CostModel::c220g5();
        let profile = CpuProfile::c220g5();
        let costs = DriverCosts::atmosphere();
        let c1b32 = run_nvme_scenario(
            Deployment::SameCoreIpc { batch: 32 },
            IoKind::Read,
            40_000,
            &costs,
            &model,
            &profile,
        );
        assert!(c1b32 > 350_000.0, "{c1b32}");
    }

    #[test]
    fn deployment_labels() {
        assert_eq!(Deployment::Linked { batch: 32 }.label(), "atmo-driver");
        assert_eq!(Deployment::CrossCore { batch: 32 }.label(), "atmo-c2");
        assert_eq!(Deployment::SameCoreIpc { batch: 32 }.label(), "atmo-c1-b32");
    }
}
