//! Packets and the pktgen-style traffic source.
//!
//! Parsing and synthesis are exposed in two layers: borrow-based free
//! functions ([`flow_key_of`], [`seq_of`], [`write_udp64`]) that operate
//! on any `&[u8]` — including a packet-pool slot on the zero-copy
//! datapath — and the owned [`Packet`] wrapper whose methods delegate to
//! them.

/// Byte length of the canonical 64-byte UDP test frame.
pub const UDP64_LEN: usize = 64;

/// Builds the canonical 64-byte UDP frame for `seq` directly into
/// `frame` (Ethernet 14 + IPv4 20 + UDP 8 + payload 22) and returns the
/// frame length. The zero-copy receive path uses this to synthesise
/// frames in place inside a pool slot, with no allocation.
///
/// # Panics
///
/// Panics when `frame` is shorter than [`UDP64_LEN`].
pub fn write_udp64(frame: &mut [u8], seq: u64) -> usize {
    let data = &mut frame[..UDP64_LEN];
    data.fill(0);
    // Destination/source MAC (fixed), EtherType IPv4.
    data[..6].copy_from_slice(&[0x52, 0x54, 0, 0, 0, 1]);
    data[6..12].copy_from_slice(&[0x52, 0x54, 0, 0, 0, 2]);
    data[12] = 0x08;
    data[13] = 0x00;
    // IPv4 header: version/IHL, protocol UDP, addresses derived from seq.
    data[14] = 0x45;
    data[23] = 17; // UDP
    data[26..30].copy_from_slice(&(0x0a00_0001u32).to_be_bytes());
    data[30..34].copy_from_slice(&(0x0a00_0100u32 | (seq as u32 & 0xff)).to_be_bytes());
    // UDP ports derived from seq (flow identifier for the load
    // balancer experiments).
    let sport = 1024 + (seq % 4096) as u16;
    data[34..36].copy_from_slice(&sport.to_be_bytes());
    data[36..38].copy_from_slice(&80u16.to_be_bytes());
    // Payload: the sequence number.
    data[42..50].copy_from_slice(&seq.to_be_bytes());
    UDP64_LEN
}

/// The flow 5-tuple hash input (source ip/port, dest ip/port, proto) of
/// a borrowed frame, if it looks like a UDP/IPv4 frame: at least 42
/// bytes (through the UDP header), EtherType 0x0800, IP proto 17.
pub fn flow_key_of(frame: &[u8]) -> Option<[u8; 13]> {
    if frame.len() < 42 || frame[12] != 0x08 || frame[13] != 0x00 || frame[23] != 17 {
        return None;
    }
    let mut key = [0u8; 13];
    key[..4].copy_from_slice(&frame[26..30]);
    key[4..8].copy_from_slice(&frame[30..34]);
    key[8..10].copy_from_slice(&frame[34..36]);
    key[10..12].copy_from_slice(&frame[36..38]);
    key[12] = frame[23];
    Some(key)
}

/// The flow key [`write_udp64`] would give the frame for `seq`, computed
/// without materialising the frame. Flow identity is periodic in `seq`
/// with period 4096 (the source-port range; the dst-ip low byte is
/// `seq & 0xff` and 256 divides 4096, so it adds no extra period).
pub fn flow_key_for_seq(seq: u64) -> [u8; 13] {
    let mut key = [0u8; 13];
    key[..4].copy_from_slice(&(0x0a00_0001u32).to_be_bytes());
    key[4..8].copy_from_slice(&(0x0a00_0100u32 | (seq as u32 & 0xff)).to_be_bytes());
    let sport = 1024 + (seq % 4096) as u16;
    key[8..10].copy_from_slice(&sport.to_be_bytes());
    key[10..12].copy_from_slice(&80u16.to_be_bytes());
    key[12] = 17;
    key
}

/// The sequence number embedded by [`write_udp64`], or `None` for frames
/// too short to carry the 8-byte payload field at offset 42.
pub fn seq_of(frame: &[u8]) -> Option<u64> {
    let bytes = frame.get(42..50)?;
    let mut b = [0u8; 8];
    b.copy_from_slice(bytes);
    Some(u64::from_be_bytes(b))
}

/// A network packet (Ethernet frame payload).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Packet {
    /// Frame bytes (the paper's microbenchmarks use 64-byte UDP frames).
    pub data: Vec<u8>,
}

impl Packet {
    /// A 64-byte UDP frame with a deterministic payload derived from
    /// `seq` (Ethernet 14 + IPv4 20 + UDP 8 + payload 22).
    pub fn udp64(seq: u64) -> Self {
        let mut data = vec![0u8; UDP64_LEN];
        write_udp64(&mut data, seq);
        Packet { data }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` for an empty frame (never produced by the generator).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The flow 5-tuple hash input (source ip/port, dest ip/port, proto),
    /// if this looks like a UDP/IPv4 frame.
    pub fn flow_key(&self) -> Option<[u8; 13]> {
        flow_key_of(&self.data)
    }

    /// The sequence number embedded by [`Packet::udp64`].
    ///
    /// # Panics
    ///
    /// Panics for frames shorter than 50 bytes; use [`seq_of`] on
    /// untrusted input.
    pub fn seq(&self) -> u64 {
        seq_of(&self.data).expect("frame too short for a sequence number")
    }
}

/// A pktgen-style source producing 64-byte UDP frames at line rate.
/// With `nqueues > 1` the generator models one RSS queue: it emits only
/// the sequence numbers whose flow key steers to `queue`, skipping the
/// rest (the NIC's receive-side scaling delivers each flow to exactly
/// one queue).
#[derive(Debug)]
pub struct PktGen {
    next_seq: u64,
    produced: u64,
    nqueues: usize,
    queue: usize,
}

impl Default for PktGen {
    fn default() -> Self {
        PktGen::new()
    }
}

impl PktGen {
    /// A fresh generator over all flows.
    pub fn new() -> Self {
        PktGen {
            next_seq: 0,
            produced: 0,
            nqueues: 1,
            queue: 0,
        }
    }

    /// A generator for one RSS queue of `nqueues`: only sequence numbers
    /// whose flow key hashes to `queue` are emitted.
    ///
    /// # Panics
    ///
    /// Panics when `queue >= nqueues` or `nqueues == 0`.
    pub fn steered(nqueues: usize, queue: usize) -> Self {
        assert!(nqueues > 0, "need at least one queue");
        assert!(queue < nqueues, "queue {queue} out of range 0..{nqueues}");
        PktGen {
            next_seq: 0,
            produced: 0,
            nqueues,
            queue,
        }
    }

    /// The next sequence number this queue will emit.
    fn advance(&mut self) -> u64 {
        loop {
            let seq = self.next_seq;
            self.next_seq += 1;
            if self.nqueues <= 1 || crate::steer::queue_for_seq(seq, self.nqueues) == self.queue {
                return seq;
            }
        }
    }

    /// Produces the next frame.
    pub fn next_packet(&mut self) -> Packet {
        let p = Packet::udp64(self.advance());
        self.produced += 1;
        p
    }

    /// Produces the next frame in place inside `frame` (zero-copy RX
    /// path) and returns the frame length.
    pub fn fill_next(&mut self, frame: &mut [u8]) -> usize {
        let len = write_udp64(frame, self.advance());
        self.produced += 1;
        len
    }

    /// Frames generated so far.
    pub fn generated(&self) -> u64 {
        self.produced
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn udp64_is_64_bytes_and_parsable() {
        let p = Packet::udp64(7);
        assert_eq!(p.len(), 64);
        assert!(!p.is_empty());
        assert_eq!(p.seq(), 7);
        assert!(p.flow_key().is_some());
    }

    #[test]
    fn flow_keys_differ_across_flows() {
        let a = Packet::udp64(1).flow_key().unwrap();
        let b = Packet::udp64(2).flow_key().unwrap();
        assert_ne!(a, b);
        // Same seq → same flow key (deterministic).
        assert_eq!(a, Packet::udp64(1).flow_key().unwrap());
    }

    #[test]
    fn non_udp_frame_has_no_flow_key() {
        let mut p = Packet::udp64(1);
        p.data[23] = 6; // TCP
        assert!(p.flow_key().is_none());
    }

    #[test]
    fn short_frames_have_no_flow_key_or_seq() {
        // Truncated runt frames must parse to None, never panic.
        for len in [0usize, 1, 10, 14, 41] {
            let frame = vec![0u8; len];
            assert_eq!(flow_key_of(&frame), None, "len {len}");
            assert_eq!(seq_of(&frame), None, "len {len}");
        }
    }

    #[test]
    fn flow_key_boundary_is_exactly_42_bytes() {
        // A well-formed header truncated to 41 bytes parses to None; the
        // same header at 42 bytes (through the UDP header) parses.
        let full = Packet::udp64(5).data;
        assert_eq!(flow_key_of(&full[..41]), None);
        let key = flow_key_of(&full[..42]).expect("42 bytes suffice");
        assert_eq!(key, flow_key_for_seq(5));
        // The seq payload field needs 50 bytes.
        assert_eq!(seq_of(&full[..49]), None);
        assert_eq!(seq_of(&full[..50]), Some(5));
    }

    #[test]
    fn non_ipv4_ethertype_has_no_flow_key() {
        let mut p = Packet::udp64(3);
        p.data[12] = 0x08;
        p.data[13] = 0x06; // ARP (0x0806)
        assert!(p.flow_key().is_none());
        p.data[12] = 0x86;
        p.data[13] = 0xdd; // IPv6
        assert!(p.flow_key().is_none());
    }

    #[test]
    fn flow_key_for_seq_matches_materialised_frame() {
        for seq in [0u64, 1, 255, 256, 4095, 4096, 123_456] {
            assert_eq!(
                flow_key_for_seq(seq),
                Packet::udp64(seq).flow_key().unwrap(),
                "seq {seq}"
            );
        }
    }

    #[test]
    fn write_udp64_matches_owned_constructor() {
        let mut slot = [0xffu8; 128];
        let len = write_udp64(&mut slot, 42);
        assert_eq!(len, UDP64_LEN);
        assert_eq!(&slot[..len], &Packet::udp64(42).data[..]);
        assert!(slot[len..].iter().all(|&b| b == 0xff), "no overrun");
    }

    #[test]
    fn generator_is_sequential() {
        let mut g = PktGen::new();
        assert_eq!(g.next_packet().seq(), 0);
        assert_eq!(g.next_packet().seq(), 1);
        assert_eq!(g.generated(), 2);
    }

    #[test]
    fn fill_next_matches_next_packet() {
        let mut a = PktGen::new();
        let mut b = PktGen::new();
        let mut slot = [0u8; UDP64_LEN];
        for _ in 0..8 {
            let len = a.fill_next(&mut slot);
            assert_eq!(&slot[..len], &b.next_packet().data[..]);
        }
        assert_eq!(a.generated(), b.generated());
    }

    #[test]
    fn steered_generator_emits_only_its_queue() {
        let mut g = PktGen::steered(4, 2);
        for _ in 0..64 {
            let p = g.next_packet();
            let key = p.flow_key().unwrap();
            assert_eq!(crate::steer::queue_for_key(&key, 4), 2);
        }
        assert_eq!(g.generated(), 64);
    }
}
