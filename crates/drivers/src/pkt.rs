//! Packets and the pktgen-style traffic source.

/// A network packet (Ethernet frame payload).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Packet {
    /// Frame bytes (the paper's microbenchmarks use 64-byte UDP frames).
    pub data: Vec<u8>,
}

impl Packet {
    /// A 64-byte UDP frame with a deterministic payload derived from
    /// `seq` (Ethernet 14 + IPv4 20 + UDP 8 + payload 22).
    pub fn udp64(seq: u64) -> Self {
        let mut data = vec![0u8; 64];
        // Destination/source MAC (fixed), EtherType IPv4.
        data[..6].copy_from_slice(&[0x52, 0x54, 0, 0, 0, 1]);
        data[6..12].copy_from_slice(&[0x52, 0x54, 0, 0, 0, 2]);
        data[12] = 0x08;
        data[13] = 0x00;
        // IPv4 header: version/IHL, protocol UDP, addresses derived from seq.
        data[14] = 0x45;
        data[23] = 17; // UDP
        data[26..30].copy_from_slice(&(0x0a00_0001u32).to_be_bytes());
        data[30..34].copy_from_slice(&(0x0a00_0100u32 | (seq as u32 & 0xff)).to_be_bytes());
        // UDP ports derived from seq (flow identifier for the load
        // balancer experiments).
        let sport = 1024 + (seq % 4096) as u16;
        data[34..36].copy_from_slice(&sport.to_be_bytes());
        data[36..38].copy_from_slice(&80u16.to_be_bytes());
        // Payload: the sequence number.
        data[42..50].copy_from_slice(&seq.to_be_bytes());
        Packet { data }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` for an empty frame (never produced by the generator).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The flow 5-tuple hash input (source ip/port, dest ip/port, proto),
    /// if this looks like a UDP/IPv4 frame.
    pub fn flow_key(&self) -> Option<[u8; 13]> {
        if self.data.len() < 42 || self.data[12] != 0x08 || self.data[23] != 17 {
            return None;
        }
        let mut key = [0u8; 13];
        key[..4].copy_from_slice(&self.data[26..30]);
        key[4..8].copy_from_slice(&self.data[30..34]);
        key[8..10].copy_from_slice(&self.data[34..36]);
        key[10..12].copy_from_slice(&self.data[36..38]);
        key[12] = self.data[23];
        Some(key)
    }

    /// The sequence number embedded by [`Packet::udp64`].
    pub fn seq(&self) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.data[42..50]);
        u64::from_be_bytes(b)
    }
}

/// A pktgen-style source producing 64-byte UDP frames at line rate.
#[derive(Debug, Default)]
pub struct PktGen {
    next_seq: u64,
}

impl PktGen {
    /// A fresh generator.
    pub fn new() -> Self {
        PktGen::default()
    }

    /// Produces the next frame.
    pub fn next_packet(&mut self) -> Packet {
        let p = Packet::udp64(self.next_seq);
        self.next_seq += 1;
        p
    }

    /// Frames generated so far.
    pub fn generated(&self) -> u64 {
        self.next_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn udp64_is_64_bytes_and_parsable() {
        let p = Packet::udp64(7);
        assert_eq!(p.len(), 64);
        assert!(!p.is_empty());
        assert_eq!(p.seq(), 7);
        assert!(p.flow_key().is_some());
    }

    #[test]
    fn flow_keys_differ_across_flows() {
        let a = Packet::udp64(1).flow_key().unwrap();
        let b = Packet::udp64(2).flow_key().unwrap();
        assert_ne!(a, b);
        // Same seq → same flow key (deterministic).
        assert_eq!(a, Packet::udp64(1).flow_key().unwrap());
    }

    #[test]
    fn non_udp_frame_has_no_flow_key() {
        let mut p = Packet::udp64(1);
        p.data[23] = 6; // TCP
        assert!(p.flow_key().is_none());
    }

    #[test]
    fn generator_is_sequential() {
        let mut g = PktGen::new();
        assert_eq!(g.next_packet().seq(), 0);
        assert_eq!(g.next_packet().seq(), 1);
        assert_eq!(g.generated(), 2);
    }
}
