//! Single-producer/single-consumer shared-memory rings.
//!
//! Applications and driver processes communicate through shared-memory
//! ring buffers established over endpoints (§3, §6.5: "communicates with
//! the driver ... through a shared-memory ring buffer"). The ring is the
//! classic power-of-two head/tail design; each enqueue/dequeue costs one
//! `ring_op` in the cycle model.

/// A bounded SPSC ring.
#[derive(Debug)]
pub struct SpscRing<T> {
    slots: Vec<Option<T>>,
    head: usize, // next dequeue
    tail: usize, // next enqueue
}

impl<T> SpscRing<T> {
    /// A ring with capacity `cap` (rounded up to a power of two).
    ///
    /// # Panics
    ///
    /// Panics when `cap == 0`.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "ring capacity must be positive");
        let cap = cap.next_power_of_two();
        SpscRing {
            slots: (0..cap).map(|_| None).collect(),
            head: 0,
            tail: 0,
        }
    }

    /// Capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Entries currently queued.
    pub fn len(&self) -> usize {
        self.tail - self.head
    }

    /// `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.head == self.tail
    }

    /// `true` when no further entry fits.
    pub fn is_full(&self) -> bool {
        self.len() == self.slots.len()
    }

    /// Enqueues `item`; returns it back when the ring is full.
    pub fn enqueue(&mut self, item: T) -> Result<(), T> {
        if self.is_full() {
            return Err(item);
        }
        let mask = self.slots.len() - 1;
        self.slots[self.tail & mask] = Some(item);
        self.tail += 1;
        Ok(())
    }

    /// Dequeues the oldest entry.
    pub fn dequeue(&mut self) -> Option<T> {
        if self.is_empty() {
            return None;
        }
        let mask = self.slots.len() - 1;
        let item = self.slots[self.head & mask].take();
        self.head += 1;
        item
    }

    /// Dequeues up to `n` entries.
    pub fn dequeue_batch(&mut self, n: usize) -> Vec<T> {
        let mut out = Vec::with_capacity(n.min(self.len()));
        self.dequeue_into(&mut out, n);
        out
    }

    /// Dequeues up to `n` entries, appending them to `out`; returns how
    /// many were moved. `out` keeps its existing contents and capacity,
    /// so a steady-state consumer (the driver RX poll loop) can recycle
    /// one buffer across batches instead of allocating a fresh `Vec`
    /// per call.
    pub fn dequeue_into(&mut self, out: &mut Vec<T>, n: usize) -> usize {
        let take = n.min(self.len());
        out.reserve(take);
        for _ in 0..take {
            let x = self.dequeue().expect("len() promised an entry");
            out.push(x);
        }
        take
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut r = SpscRing::new(4);
        r.enqueue(1).unwrap();
        r.enqueue(2).unwrap();
        assert_eq!(r.dequeue(), Some(1));
        assert_eq!(r.dequeue(), Some(2));
        assert_eq!(r.dequeue(), None);
    }

    #[test]
    fn full_ring_rejects() {
        let mut r = SpscRing::new(2);
        r.enqueue(1).unwrap();
        r.enqueue(2).unwrap();
        assert!(r.is_full());
        assert_eq!(r.enqueue(3), Err(3));
        r.dequeue();
        assert!(r.enqueue(3).is_ok());
    }

    #[test]
    fn wraparound_preserves_items() {
        let mut r = SpscRing::new(4);
        for round in 0..10 {
            for i in 0..3 {
                r.enqueue(round * 10 + i).unwrap();
            }
            assert_eq!(
                r.dequeue_batch(3),
                vec![round * 10, round * 10 + 1, round * 10 + 2]
            );
        }
        assert!(r.is_empty());
    }

    #[test]
    fn capacity_rounds_to_power_of_two() {
        let r: SpscRing<u8> = SpscRing::new(5);
        assert_eq!(r.capacity(), 8);
    }

    #[test]
    fn dequeue_batch_stops_at_empty() {
        let mut r = SpscRing::new(8);
        r.enqueue(1).unwrap();
        assert_eq!(r.dequeue_batch(5), vec![1]);
    }

    #[test]
    fn dequeue_into_appends_and_reports_count() {
        let mut r = SpscRing::new(8);
        for i in 0..5 {
            r.enqueue(i).unwrap();
        }
        let mut buf = vec![100];
        assert_eq!(r.dequeue_into(&mut buf, 3), 3);
        assert_eq!(buf, vec![100, 0, 1, 2]);
        assert_eq!(r.dequeue_into(&mut buf, 8), 2);
        assert_eq!(buf, vec![100, 0, 1, 2, 3, 4]);
        assert!(r.is_empty());
        assert_eq!(r.dequeue_into(&mut buf, 8), 0);
    }

    #[test]
    fn dequeue_into_reuses_capacity_across_batches() {
        let mut r = SpscRing::new(64);
        let mut buf: Vec<u32> = Vec::with_capacity(32);
        for _ in 0..10 {
            for i in 0..32 {
                r.enqueue(i).unwrap();
            }
            buf.clear();
            assert_eq!(r.dequeue_into(&mut buf, 32), 32);
            assert_eq!(buf.capacity(), 32, "steady state must not reallocate");
        }
    }
}
