//! The grant-pinned DMA block-buffer pool: a contiguous page-backed
//! arena of fixed 4 KiB slots whose handles flow through the NVMe
//! submit/complete rings by *permission transfer* — zero copies, zero
//! per-I/O allocation.
//!
//! This is the packet-pool ownership story ([`crate::pool`]) applied to
//! the block datapath, with two differences forced by the device:
//!
//! * a slot is exactly one 4 KiB frame ([`BLK_SLOT_SIZE`]), because NVMe
//!   transfers whole logical blocks and the IOMMU maps whole pages — one
//!   slot per pinned frame keeps `slot index == frame index`;
//! * a kernel-backed pool carries a [`DmaWindow`] recording the IOVA
//!   range its frames were pinned at, so [`BlkPool::iova_of`] turns a
//!   handle into the device address a submission-queue entry carries
//!   without re-walking the IOMMU tables.
//!
//! A [`BlkBuf`] is an affine token (no `Clone`) granting exclusive
//! access to one slot; submitting it to the device transfers the
//! permission to the DMA engine, reaping the completion transfers it
//! back. The pool ledger (`acquired == released + in_flight`) is folded
//! into the pool's `wf()` and — via `blk.pool_*` counters — into the
//! global `trace_wf` leak-freedom equation.
//!
//! Exhaustion is *backpressure*, not failure: [`BlkPool::try_acquire`]
//! returns `None` (counted as `blk.pool_exhausted`) and the submitter
//! stops issuing I/Os until completions release slots.

use std::sync::atomic::{AtomicU32, Ordering};

use atmo_mem::{DmaWindow, PagePtr};
use atmo_spec::harness::{check, Invariant, VerifResult};
use atmo_trace::{BlkOutcome, TraceHandle, TraceShare};

/// Fixed slot size: one NVMe logical block / one pinned 4 KiB frame.
pub const BLK_SLOT_SIZE: usize = 4096;

/// Distinguishes pools so a handle can never be released into (or read
/// through) a pool it does not belong to.
static NEXT_BLK_POOL_ID: AtomicU32 = AtomicU32::new(1);

/// An affine handle to one pool slot: the permission to read and write
/// that slot's 4 KiB. Deliberately not `Clone` — moving the handle into
/// the submission ring is the zero-copy transfer; the only ways to
/// retire it are [`BlkPool::release`] and [`BlkPool::copy_out`]'s
/// explicit fallback.
#[derive(Debug, PartialEq, Eq)]
pub struct BlkBuf {
    pool: u32,
    slot: u32,
    len: u16,
}

impl BlkBuf {
    /// Payload length currently stored in the slot.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// `true` when no payload has been written yet.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Records the payload length after an in-place fill.
    ///
    /// # Panics
    ///
    /// Panics when `len` exceeds [`BLK_SLOT_SIZE`].
    pub fn set_len(&mut self, len: usize) {
        assert!(
            len <= BLK_SLOT_SIZE,
            "payload of {len} bytes overflows slot"
        );
        self.len = len as u16;
    }

    /// Slot index within the pool.
    pub fn slot(&self) -> usize {
        self.slot as usize
    }
}

/// The block-buffer pool: arena + free-slot stack + acquire/release
/// ledger, optionally bound to the [`DmaWindow`] its frames are pinned
/// at. See the module docs for the ownership story.
#[derive(Debug)]
pub struct BlkPool {
    id: u32,
    arena: Vec<u8>,
    /// LIFO stack of free slot indices (hot slots stay cache-warm).
    free: Vec<u32>,
    nslots: usize,
    /// The pinned device-visible window backing the pool (`None` for
    /// anonymous pools): frame `i` backs slot `i`.
    window: Option<DmaWindow>,
    acquired: u64,
    released: u64,
    exhausted: u64,
    trace: TraceShare,
}

impl BlkPool {
    fn build(nslots: usize, window: Option<DmaWindow>) -> Self {
        assert!(nslots > 0, "pool needs at least one slot");
        BlkPool {
            id: NEXT_BLK_POOL_ID.fetch_add(1, Ordering::Relaxed),
            arena: vec![0u8; nslots * BLK_SLOT_SIZE],
            free: (0..nslots as u32).rev().collect(),
            nslots,
            window,
            acquired: 0,
            released: 0,
            exhausted: 0,
            trace: TraceShare::detached(),
        }
    }

    /// An anonymous pool of `nslots` slots with no pinned backing frames
    /// (driver-level tests and benches).
    pub fn anonymous(nslots: usize) -> Self {
        BlkPool::build(nslots, None)
    }

    /// A pool whose slots are the frames of a pinned DMA window, one
    /// slot per frame. The caller established the window through the
    /// kernel's `IommuMap` grant path (keeping the frames inside
    /// `page_closure()`) and reclaims it with [`BlkPool::into_window`]
    /// at teardown for the `IommuUnmap` loop.
    ///
    /// # Panics
    ///
    /// Panics when the window is empty.
    pub fn from_window(window: DmaWindow) -> Self {
        let nslots = window.frames().len();
        BlkPool::build(nslots, Some(window))
    }

    /// Routes pool events (`blk.pool_*`) into `sink`.
    pub fn attach_trace(&mut self, sink: TraceHandle) {
        self.trace.attach(sink);
    }

    /// Total slots.
    pub fn nslots(&self) -> usize {
        self.nslots
    }

    /// Backing frames (empty for anonymous pools).
    pub fn frames(&self) -> &[PagePtr] {
        self.window.as_ref().map_or(&[], |w| w.frames())
    }

    /// Slots currently held by outstanding [`BlkBuf`]s.
    pub fn in_flight(&self) -> usize {
        self.nslots - self.free.len()
    }

    /// Slots handed out so far.
    pub fn acquired(&self) -> u64 {
        self.acquired
    }

    /// Slots returned so far.
    pub fn released(&self) -> u64 {
        self.released
    }

    /// Acquire attempts that found the pool empty.
    pub fn exhausted(&self) -> u64 {
        self.exhausted
    }

    /// Takes a free slot, or `None` under exhaustion (backpressure: the
    /// submitter retries after completions release slots).
    pub fn try_acquire(&mut self) -> Option<BlkBuf> {
        match self.free.pop() {
            Some(slot) => {
                self.acquired += 1;
                self.trace.blk(BlkOutcome::PoolAcquire, 1);
                Some(BlkBuf {
                    pool: self.id,
                    slot,
                    len: 0,
                })
            }
            None => {
                self.exhausted += 1;
                self.trace.blk(BlkOutcome::PoolExhausted, 1);
                None
            }
        }
    }

    /// Returns a slot to the pool, consuming the handle. This is the
    /// only discard path — a stage that abandons an I/O releases its
    /// handle rather than letting it fall on the floor.
    ///
    /// # Panics
    ///
    /// Panics (verification failure) when the handle belongs to a
    /// different pool.
    pub fn release(&mut self, buf: BlkBuf) {
        assert_eq!(buf.pool, self.id, "BlkBuf released into a foreign pool");
        debug_assert!(
            !self.free.contains(&buf.slot),
            "slot {} already free",
            buf.slot
        );
        self.free.push(buf.slot);
        self.released += 1;
        self.trace.blk(BlkOutcome::PoolRelease, 1);
    }

    /// The device address of the handle's slot — what the submission
    /// queue entry carries as its data pointer.
    ///
    /// # Panics
    ///
    /// Panics when the pool is anonymous (no pinned window: the slot has
    /// no device-visible address) or the handle is foreign.
    pub fn iova_of(&self, buf: &BlkBuf) -> usize {
        assert_eq!(buf.pool, self.id, "BlkBuf from a foreign pool");
        self.window
            .as_ref()
            .expect("anonymous pool has no device-visible addresses")
            .iova_of(buf.slot as usize * BLK_SLOT_SIZE)
    }

    /// The full slot as a writable view (for in-place fills; set the
    /// resulting length with [`BlkBuf::set_len`]).
    pub fn slot_mut(&mut self, buf: &BlkBuf) -> &mut [u8] {
        assert_eq!(buf.pool, self.id, "BlkBuf from a foreign pool");
        let start = buf.slot as usize * BLK_SLOT_SIZE;
        &mut self.arena[start..start + BLK_SLOT_SIZE]
    }

    /// The payload bytes the handle currently holds.
    pub fn data(&self, buf: &BlkBuf) -> &[u8] {
        assert_eq!(buf.pool, self.id, "BlkBuf from a foreign pool");
        let start = buf.slot as usize * BLK_SLOT_SIZE;
        &self.arena[start..start + buf.len as usize]
    }

    /// The payload bytes as a mutable view (in-place record rewrite).
    pub fn data_mut(&mut self, buf: &BlkBuf) -> &mut [u8] {
        assert_eq!(buf.pool, self.id, "BlkBuf from a foreign pool");
        let start = buf.slot as usize * BLK_SLOT_SIZE;
        &mut self.arena[start..start + buf.len as usize]
    }

    /// The explicit non-zero-copy fallback: clones the payload into an
    /// owned buffer (counted as `blk.fallback_copies`) for consumers
    /// that still want ownership, releasing the slot.
    pub fn copy_out(&mut self, buf: BlkBuf) -> Vec<u8> {
        let bytes = self.data(&buf).to_vec();
        self.trace.blk(BlkOutcome::Fallback, 1);
        self.release(buf);
        bytes
    }

    /// Tears the pool down, returning the pinned window so the caller
    /// can walk its IOVAs through `IommuUnmap` and free the frames.
    ///
    /// # Panics
    ///
    /// Panics (verification failure) when handles are still in flight —
    /// unpinning the frames under a live handle would let the device DMA
    /// into freed memory.
    pub fn into_window(self) -> Option<DmaWindow> {
        assert_eq!(self.in_flight(), 0, "pool torn down with handles in flight");
        self.window
    }
}

impl Invariant for BlkPool {
    /// Pool well-formedness:
    ///
    /// 1. the arena covers exactly `nslots` slots;
    /// 2. the pinned window (when present) carves to exactly `nslots`
    ///    frames and is itself well-formed;
    /// 3. every free-stack entry is a distinct valid slot;
    /// 4. the ledger balances: `acquired == released + in_flight` (a
    ///    slot is either free, or held by exactly one outstanding
    ///    handle — the same leak-freedom equation `trace_wf` re-checks
    ///    globally from the `blk.pool_*` counters).
    fn wf(&self) -> VerifResult {
        check(
            self.arena.len() == self.nslots * BLK_SLOT_SIZE,
            "blk_pool",
            "arena size disagrees with slot count",
        )?;
        if let Some(w) = &self.window {
            check(
                w.frames().len() == self.nslots,
                "blk_pool",
                "pinned window disagrees with slot count",
            )?;
            w.wf()?;
        }
        check(
            self.free.len() <= self.nslots,
            "blk_pool",
            "free stack larger than the pool",
        )?;
        let mut seen = vec![false; self.nslots];
        for &s in &self.free {
            check(
                (s as usize) < self.nslots,
                "blk_pool",
                format!("free slot {s} out of range"),
            )?;
            check(
                !seen[s as usize],
                "blk_pool",
                format!("slot {s} on the free stack twice"),
            )?;
            seen[s as usize] = true;
        }
        check(
            self.acquired == self.released + self.in_flight() as u64,
            "blk_pool",
            format!(
                "ledger imbalance: {} acquired != {} released + {} in flight",
                self.acquired,
                self.released,
                self.in_flight()
            ),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atmo_trace::{trace_wf, TraceSink};

    #[test]
    fn acquire_fill_release_roundtrip() {
        let mut pool = BlkPool::anonymous(4);
        assert!(pool.is_wf());
        let mut buf = pool.try_acquire().unwrap();
        pool.slot_mut(&buf)[..4].copy_from_slice(b"atmo");
        buf.set_len(4);
        assert_eq!(pool.data(&buf), b"atmo");
        assert_eq!(pool.in_flight(), 1);
        assert!(pool.is_wf());
        pool.release(buf);
        assert_eq!(pool.in_flight(), 0);
        assert_eq!(pool.acquired(), 1);
        assert_eq!(pool.released(), 1);
        assert!(pool.is_wf());
    }

    #[test]
    fn exhaustion_is_backpressure_not_panic() {
        let mut pool = BlkPool::anonymous(2);
        let a = pool.try_acquire().unwrap();
        let b = pool.try_acquire().unwrap();
        assert!(pool.try_acquire().is_none(), "empty pool yields None");
        assert_eq!(pool.exhausted(), 1);
        assert!(pool.is_wf());
        pool.release(a);
        assert!(pool.try_acquire().is_some());
        pool.release(b);
        assert!(pool.is_wf());
    }

    #[test]
    #[should_panic(expected = "foreign pool")]
    fn cross_pool_release_is_a_verification_failure() {
        let mut a = BlkPool::anonymous(2);
        let mut b = BlkPool::anonymous(2);
        let buf = a.try_acquire().unwrap();
        b.release(buf);
    }

    #[test]
    #[should_panic(expected = "handles in flight")]
    fn teardown_with_live_handles_is_a_verification_failure() {
        let mut pool = BlkPool::anonymous(2);
        let _live = pool.try_acquire().unwrap();
        let _ = pool.into_window();
    }

    #[test]
    fn pinned_pool_translates_slots_to_device_addresses() {
        let window = DmaWindow::new(0x10_0000, vec![0x8000, 0x9000, 0xa000]);
        let mut pool = BlkPool::from_window(window);
        assert_eq!(pool.nslots(), 3);
        assert_eq!(pool.frames(), &[0x8000, 0x9000, 0xa000]);
        assert!(pool.is_wf());
        // LIFO: slot 0 comes off the stack first.
        let a = pool.try_acquire().unwrap();
        let b = pool.try_acquire().unwrap();
        assert_eq!(pool.iova_of(&a), 0x10_0000);
        assert_eq!(pool.iova_of(&b), 0x10_1000);
        pool.release(a);
        pool.release(b);
        let w = pool.into_window().unwrap();
        assert_eq!(w.into_frames(), vec![0x8000, 0x9000, 0xa000]);
    }

    #[test]
    #[should_panic(expected = "no device-visible addresses")]
    fn anonymous_pool_has_no_iova() {
        let mut pool = BlkPool::anonymous(1);
        let buf = pool.try_acquire().unwrap();
        let _ = pool.iova_of(&buf);
    }

    #[test]
    fn copy_out_counts_the_fallback_and_frees_the_slot() {
        let sink = TraceSink::new(1, 16);
        let mut pool = BlkPool::anonymous(2);
        pool.attach_trace(sink.clone());
        let mut buf = pool.try_acquire().unwrap();
        pool.slot_mut(&buf)[..3].copy_from_slice(b"kv!");
        buf.set_len(3);
        let bytes = pool.copy_out(buf);
        assert_eq!(bytes, b"kv!");
        assert_eq!(pool.in_flight(), 0);
        let snap = sink.snapshot();
        assert_eq!(snap.counters.blk.fallback_copies, 1);
        assert_eq!(snap.counters.blk.pool_acquired, 1);
        assert_eq!(snap.counters.blk.pool_released, 1);
        assert_eq!(snap.blk_in_flight, 0);
        assert!(trace_wf(&sink).is_ok(), "{:?}", trace_wf(&sink));
    }

    #[test]
    fn traced_pool_balances_the_sink_ledger() {
        let sink = TraceSink::new(1, 16);
        let mut pool = BlkPool::anonymous(8);
        pool.attach_trace(sink.clone());
        let bufs: Vec<BlkBuf> = (0..5).map(|_| pool.try_acquire().unwrap()).collect();
        assert_eq!(sink.blk_in_flight(), 5);
        assert!(trace_wf(&sink).is_ok(), "in-flight handles balance");
        for b in bufs {
            pool.release(b);
        }
        assert_eq!(sink.blk_in_flight(), 0);
        assert!(trace_wf(&sink).is_ok());
        assert!(pool.is_wf());
    }
}
