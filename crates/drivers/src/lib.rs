//! User-space device drivers and device models (§6.5 of the paper).
//!
//! In Atmosphere, drivers run in user space — either statically linked
//! into the application (like DPDK/SPDK) or as separate processes that
//! clients reach over shared-memory rings and IPC endpoints. This crate
//! provides:
//!
//! * [`pkt`] — packets and the pktgen-style line-rate traffic source;
//! * [`ring`] — the single-producer/single-consumer shared-memory
//!   descriptor ring used between applications and driver processes;
//! * [`ixgbe`] — a model of the Intel 82599 10 GbE NIC (descriptor rings,
//!   64-byte-frame line rate of 14.2 Mpps as measured in the paper) and
//!   the polling driver;
//! * [`nvme`] — a model of the Intel P3700 NVMe SSD (submission /
//!   completion queues, measured-class latency and peak IOPS) and the
//!   polling driver;
//! * [`deploy`] — the three deployment scenarios the paper evaluates:
//!   `atmo-driver` (linked), `atmo-c2` (driver on its own core, shared
//!   ring), and `atmo-c1-bN` (driver process on the same core, invoked
//!   through an IPC endpoint per batch of N requests).
//!
//! Device *behaviour* is modeled (descriptor protocols, capacity
//! ceilings); driver and application code executes for real against the
//! models, charging the calibrated per-operation cycle costs, so
//! throughput emerges from execution rather than being asserted.

pub mod blkpool;
pub mod deploy;
pub mod ixgbe;
pub mod nvme;
pub mod pkt;
pub mod pool;
pub mod ring;
pub mod steer;

pub use blkpool::{BlkBuf, BlkPool, BLK_SLOT_SIZE};
pub use deploy::{run_nvme_scenario, run_rx_tx_scenario, Deployment, NetScenarioReport};
pub use ixgbe::{IxgbeDevice, IxgbeDriver, IXGBE_LINE_RATE_64B_PPS};
pub use nvme::{IoKind, NvmeDevice, NvmeDriver, NvmeSpec, NvmeZcQueue};
pub use pkt::{flow_key_for_seq, seq_of, write_udp64, Packet, PktGen, UDP64_LEN};
pub use pool::{PktBuf, PktPool, PKT_SLOT_SIZE, SLOTS_PER_PAGE};
pub use ring::SpscRing;
pub use steer::{queue_for_key, queue_for_seq, RssSteer, RSS_FLOW_PERIOD};

/// Per-operation driver costs (cycles on the c220g5), calibrated so the
/// measured configurations land on the paper's Figure 4/5 numbers.
#[derive(Clone, Copy, Debug)]
pub struct DriverCosts {
    /// ixgbe RX descriptor processing per packet.
    pub rx_desc: u64,
    /// ixgbe TX descriptor processing per packet.
    pub tx_desc: u64,
    /// Doorbell write + head/tail sync, once per batch per direction.
    pub doorbell: u64,
    /// NVMe submission+completion CPU work per I/O (SPDK-class polling).
    pub nvme_io: u64,
    /// Extra per-write driver work in the Atmosphere NVMe driver
    /// (per-write doorbell, §6.5.2's 10% write overhead).
    pub nvme_write_extra: u64,
    /// Zero-copy RX descriptor processing per packet: the descriptor
    /// names a pool slot, so there is no per-packet allocation or
    /// payload copy — only the descriptor read and handle creation.
    /// Strictly cheaper than [`DriverCosts::rx_desc`].
    pub rx_desc_zc: u64,
    /// Zero-copy TX descriptor processing per packet (descriptor write
    /// naming the slot; no payload copy). Strictly cheaper than
    /// [`DriverCosts::tx_desc`].
    pub tx_desc_zc: u64,
    /// Amortized descriptor-ring refill, once per zero-copy RX batch
    /// (posting the freed slots back to the NIC in one pass — the
    /// walk-cache treatment applied to the descriptor ring).
    pub refill_batch: u64,
    /// Zero-copy NVMe submission-queue entry per I/O: the SQE names a
    /// pinned pool slot's IOVA, so there is no bounce-buffer allocation
    /// or payload copy — only the 64-byte descriptor write. Strictly
    /// cheaper than [`DriverCosts::nvme_io`].
    pub sq_desc_zc: u64,
    /// Zero-copy NVMe completion-queue entry per I/O (CQE read + handle
    /// return; no payload copy back). Strictly cheaper than
    /// [`DriverCosts::nvme_io`].
    pub cq_desc_zc: u64,
}

impl DriverCosts {
    /// Calibrated values (see Figure 4/5 reproduction notes in
    /// EXPERIMENTS.md).
    pub const fn atmosphere() -> Self {
        DriverCosts {
            rx_desc: 55,
            tx_desc: 48,
            doorbell: 90,
            nvme_io: 500,
            nvme_write_extra: 900,
            rx_desc_zc: 22,
            tx_desc_zc: 18,
            refill_batch: 40,
            sq_desc_zc: 120,
            cq_desc_zc: 80,
        }
    }
}
