//! Criterion benchmarks of the memory substrates: the page allocator's
//! free lists and superpage merging, and the page table's map/walk paths.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use atmo_hw::boot::BootInfo;
use atmo_hw::paging::EntryFlags;
use atmo_hw::VAddr;
use atmo_mem::{PageAllocator, PageSize};
use atmo_ptable::{refinement_wf, PageTable};

fn alloc_free_4k(c: &mut Criterion) {
    let mut alloc = PageAllocator::new(&BootInfo::simulated(16, 1, ""));
    c.bench_function("page_alloc_free_4k", |b| {
        b.iter(|| {
            let (p, perm) = alloc.alloc_page_4k().unwrap();
            alloc.free_page_4k(perm);
            black_box(p)
        })
    });
}

fn superpage_merge_split(c: &mut Criterion) {
    let mut alloc = PageAllocator::new(&BootInfo::simulated(8, 1, ""));
    c.bench_function("superpage_merge_split_2m", |b| {
        b.iter(|| {
            assert!(alloc.merge_2m());
            let head = *alloc.free_pages_2m().choose().unwrap();
            alloc.split_2m(head);
            black_box(head)
        })
    });
}

fn page_table_map_resolve_unmap(c: &mut Criterion) {
    let mut alloc = PageAllocator::new(&BootInfo::simulated(32, 1, ""));
    let mut pt = PageTable::new(&mut alloc).unwrap();
    let frame = alloc.alloc_mapped(PageSize::Size4K).unwrap();
    // Warm the intermediate levels.
    pt.map_4k_page(&mut alloc, VAddr(0x3f_f000), frame, EntryFlags::user_rw())
        .unwrap();
    pt.unmap_4k_page(VAddr(0x3f_f000)).unwrap();
    c.bench_function("pt_map_resolve_unmap_4k", |b| {
        b.iter(|| {
            pt.map_4k_page(&mut alloc, VAddr(0x40_0000), frame, EntryFlags::user_rw())
                .unwrap();
            let r = pt.resolve(VAddr(0x40_0000));
            pt.unmap_4k_page(VAddr(0x40_0000)).unwrap();
            black_box(r)
        })
    });
    alloc.dec_map_ref(frame);
}

fn page_table_refinement_check(c: &mut Criterion) {
    // Cost of checking the MMU-walk refinement over a populated space.
    let mut alloc = PageAllocator::new(&BootInfo::simulated(32, 1, ""));
    let mut pt = PageTable::new(&mut alloc).unwrap();
    for i in 0..64usize {
        let f = alloc.alloc_mapped(PageSize::Size4K).unwrap();
        pt.map_4k_page(
            &mut alloc,
            VAddr(0x40_0000 + i * 0x1000),
            f,
            EntryFlags::user_rw(),
        )
        .unwrap();
    }
    c.bench_function("pt_refinement_wf_64_mappings", |b| {
        b.iter(|| black_box(refinement_wf(&pt).is_ok()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3));
    targets = alloc_free_4k, superpage_merge_split, page_table_map_resolve_unmap, page_table_refinement_check
}
criterion_main!(benches);
