//! Microbenchmarks of the memory substrates: the page allocator's
//! free lists and superpage merging, and the page table's map/walk paths.
//!
//! Runs with the in-repo harness (`harness = false`, no external
//! benchmarking dependency): `cargo bench -p atmo-bench --bench memory`.

use std::hint::black_box;

use atmo_bench::microbench::bench;
use atmo_hw::boot::BootInfo;
use atmo_hw::paging::EntryFlags;
use atmo_hw::VAddr;
use atmo_mem::{PageAllocator, PageSize};
use atmo_ptable::{refinement_wf, PageTable};

fn alloc_free_4k() {
    let mut alloc = PageAllocator::new(&BootInfo::simulated(16, 1, ""));
    bench("page_alloc_free_4k", || {
        let (p, perm) = alloc.alloc_page_4k().unwrap();
        alloc.free_page_4k(perm);
        black_box(p)
    });
}

fn superpage_merge_split() {
    let mut alloc = PageAllocator::new(&BootInfo::simulated(8, 1, ""));
    bench("superpage_merge_split_2m", || {
        assert!(alloc.merge_2m());
        let head = *alloc.free_pages_2m().choose().unwrap();
        alloc.split_2m(head);
        black_box(head)
    });
}

fn page_table_map_resolve_unmap() {
    let mut alloc = PageAllocator::new(&BootInfo::simulated(32, 1, ""));
    let mut pt = PageTable::new(&mut alloc).unwrap();
    let frame = alloc.alloc_mapped(PageSize::Size4K).unwrap();
    // Warm the intermediate levels.
    pt.map_4k_page(&mut alloc, VAddr(0x3f_f000), frame, EntryFlags::user_rw())
        .unwrap();
    pt.unmap_4k_page(VAddr(0x3f_f000)).unwrap();
    bench("pt_map_resolve_unmap_4k", || {
        pt.map_4k_page(&mut alloc, VAddr(0x40_0000), frame, EntryFlags::user_rw())
            .unwrap();
        let r = pt.resolve(VAddr(0x40_0000));
        pt.unmap_4k_page(VAddr(0x40_0000)).unwrap();
        black_box(r)
    });
    alloc.dec_map_ref(frame);
}

fn page_table_refinement_check() {
    // Cost of checking the MMU-walk refinement over a populated space.
    let mut alloc = PageAllocator::new(&BootInfo::simulated(32, 1, ""));
    let mut pt = PageTable::new(&mut alloc).unwrap();
    for i in 0..64usize {
        let f = alloc.alloc_mapped(PageSize::Size4K).unwrap();
        pt.map_4k_page(
            &mut alloc,
            VAddr(0x40_0000 + i * 0x1000),
            f,
            EntryFlags::user_rw(),
        )
        .unwrap();
    }
    bench("pt_refinement_wf_64_mappings", || {
        black_box(refinement_wf(&pt).is_ok())
    });
}

fn main() {
    alloc_free_4k();
    superpage_merge_split();
    page_table_map_resolve_unmap();
    page_table_refinement_check();
}
