//! Microbenchmarks of the kernel's real hot paths.
//!
//! These measure the wall-clock cost of *this implementation* (the
//! simulated kernel running on the host), complementing the modeled
//! cycle numbers of the `repro-*` binaries. The interesting outputs are
//! the relative costs: IPC fast path vs map/unmap vs full `total_wf`
//! invariant checking (the price of the executable verification).
//!
//! Runs with the in-repo harness (`harness = false`, no external
//! benchmarking dependency): `cargo bench -p atmo-bench --bench kernel_paths`.

use std::hint::black_box;

use atmo_bench::microbench::bench;
use atmo_kernel::{Kernel, KernelConfig, SyscallArgs};
use atmo_spec::harness::Invariant;

fn ipc_round_trip() {
    // T2 parked in recv; each iteration: T1 call → T2 reply → take msg.
    let mut k = Kernel::boot(KernelConfig::default());
    let t2 = k
        .syscall(
            0,
            SyscallArgs::NewThread {
                proc: k.init_proc,
                cpu: 0,
            },
        )
        .val0() as usize;
    let e = k.syscall(0, SyscallArgs::NewEndpoint { slot: 0 }).val0() as usize;
    k.pm.install_descriptor(t2, 0, e).unwrap();
    k.pm.timer_tick(0);
    let _ = k.syscall(0, SyscallArgs::Recv { slot: 0 });

    bench("ipc_call_reply_round_trip", || {
        let r1 = k.syscall(
            0,
            SyscallArgs::Call {
                slot: 0,
                scalars: [1, 2, 3, 4],
            },
        );
        let r2 = k.syscall(
            0,
            SyscallArgs::Reply {
                scalars: [9, 0, 0, 0],
            },
        );
        let msg = k.syscall(0, SyscallArgs::TakeMsg);
        // Park T2 back into recv for the next iteration.
        k.pm.timer_tick(0);
        let r3 = k.syscall(0, SyscallArgs::Recv { slot: 0 });
        black_box((r1, r2, msg, r3))
    });
}

fn mmap_munmap() {
    let mut k = Kernel::boot(KernelConfig::default());
    bench("mmap_munmap_4_pages", || {
        let r1 = k.syscall(
            0,
            SyscallArgs::Mmap {
                va_base: 0x40_0000,
                len: 4,
                writable: true,
            },
        );
        let r2 = k.syscall(
            0,
            SyscallArgs::Munmap {
                va_base: 0x40_0000,
                len: 4,
            },
        );
        black_box((r1, r2))
    });
}

fn total_wf_check() {
    // The cost of one full `total_wf()` pass over a populated kernel —
    // the per-transition price of executable verification.
    let mut k = Kernel::boot(KernelConfig::default());
    let child = k
        .syscall(
            0,
            SyscallArgs::NewContainer {
                quota: 128,
                cpus: vec![1],
            },
        )
        .val0() as usize;
    let p = k.syscall(0, SyscallArgs::NewProcess { cntr: child }).val0() as usize;
    let _ = k.syscall(0, SyscallArgs::NewThread { proc: p, cpu: 1 });
    let _ = k.syscall(
        0,
        SyscallArgs::Mmap {
            va_base: 0x40_0000,
            len: 16,
            writable: true,
        },
    );
    bench("total_wf_full_check", || black_box(k.wf().is_ok()));
}

fn syscall_yield() {
    let mut k = Kernel::boot(KernelConfig::default());
    let _ = k.syscall(
        0,
        SyscallArgs::NewThread {
            proc: k.init_proc,
            cpu: 0,
        },
    );
    bench("yield_round_robin", || {
        black_box(k.syscall(0, SyscallArgs::Yield))
    });
}

fn main() {
    ipc_round_trip();
    mmap_munmap();
    total_wf_check();
    syscall_yield();
}
