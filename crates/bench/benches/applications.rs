//! Criterion benchmarks of the application data paths: Maglev lookup,
//! kv-store operations and HTTP parsing — the real per-request work of
//! §6.6.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use atmo_apps::fnv1a;
use atmo_apps::httpd::parse_request;
use atmo_apps::kvstore::{KvRequest, KvStore};
use atmo_apps::maglev::MaglevTable;
use atmo_drivers::pkt::Packet;

fn maglev_process_packet(c: &mut Criterion) {
    let backends: Vec<String> = (0..16).map(|i| format!("backend-{i}")).collect();
    let table = MaglevTable::new(&backends, 65537);
    let mut pkt = Packet::udp64(1234);
    c.bench_function("maglev_process_packet", |b| {
        b.iter(|| black_box(table.process_packet(&mut pkt)))
    });
}

fn maglev_table_build(c: &mut Criterion) {
    let backends: Vec<String> = (0..16).map(|i| format!("backend-{i}")).collect();
    c.bench_function("maglev_table_build_65537", |b| {
        b.iter(|| black_box(MaglevTable::new(&backends, 65537)))
    });
}

fn kv_get_set(c: &mut Criterion) {
    let mut kv = KvStore::with_capacity(1 << 20);
    for i in 0..100_000u32 {
        kv.set(&i.to_le_bytes(), b"valuevalue");
    }
    let mut i = 0u32;
    c.bench_function("kv_get_hit", |b| {
        b.iter(|| {
            i = (i + 1) % 100_000;
            black_box(kv.get(&i.to_le_bytes()))
        })
    });
    c.bench_function("kv_set_update", |b| {
        b.iter(|| {
            i = (i + 1) % 100_000;
            black_box(kv.set(&i.to_le_bytes(), b"othervalue"))
        })
    });
    let req = KvRequest::Get(7u32.to_le_bytes().to_vec()).encode();
    c.bench_function("kv_decode_serve", |b| {
        b.iter(|| {
            let r = KvRequest::decode(&req).unwrap();
            black_box(kv.serve(&r))
        })
    });
}

fn http_parse(c: &mut Criterion) {
    let raw = b"GET /index.html HTTP/1.1\r\nHost: bench\r\nUser-Agent: wrk\r\nAccept: */*\r\n\r\n";
    c.bench_function("http_parse_request", |b| {
        b.iter(|| black_box(parse_request(raw)))
    });
}

fn fnv_hash(c: &mut Criterion) {
    let key = Packet::udp64(42).flow_key().unwrap();
    c.bench_function("fnv1a_flow_key", |b| b.iter(|| black_box(fnv1a(&key))));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3));
    targets = maglev_process_packet, maglev_table_build, kv_get_set, http_parse, fnv_hash
}
criterion_main!(benches);
