//! Microbenchmarks of the application data paths: Maglev lookup,
//! kv-store operations and HTTP parsing — the real per-request work of
//! §6.6.
//!
//! Runs with the in-repo harness (`harness = false`, no external
//! benchmarking dependency): `cargo bench -p atmo-bench --bench applications`.

use std::hint::black_box;

use atmo_apps::fnv1a;
use atmo_apps::httpd::parse_request;
use atmo_apps::kvstore::{KvRequest, KvStore};
use atmo_apps::maglev::MaglevTable;
use atmo_bench::microbench::bench;
use atmo_drivers::pkt::Packet;

fn maglev_process_packet() {
    let backends: Vec<String> = (0..16).map(|i| format!("backend-{i}")).collect();
    let table = MaglevTable::new(&backends, 65537);
    let mut pkt = Packet::udp64(1234);
    bench("maglev_process_packet", || {
        black_box(table.process_packet(&mut pkt))
    });
}

fn maglev_table_build() {
    let backends: Vec<String> = (0..16).map(|i| format!("backend-{i}")).collect();
    bench("maglev_table_build_65537", || {
        black_box(MaglevTable::new(&backends, 65537))
    });
}

fn kv_get_set() {
    let mut kv = KvStore::with_capacity(1 << 20);
    for i in 0..100_000u32 {
        kv.set(&i.to_le_bytes(), b"valuevalue");
    }
    let mut i = 0u32;
    bench("kv_get_hit", || {
        i = (i + 1) % 100_000;
        black_box(kv.get(&i.to_le_bytes()).is_some())
    });
    let mut j = 0u32;
    bench("kv_set_update", || {
        j = (j + 1) % 100_000;
        black_box(kv.set(&j.to_le_bytes(), b"othervalue"))
    });
    let req = KvRequest::Get(7u32.to_le_bytes().to_vec()).encode();
    bench("kv_decode_serve", || {
        let r = KvRequest::decode(&req).unwrap();
        black_box(kv.serve(&r))
    });
}

fn http_parse() {
    let raw = b"GET /index.html HTTP/1.1\r\nHost: bench\r\nUser-Agent: wrk\r\nAccept: */*\r\n\r\n";
    bench("http_parse_request", || black_box(parse_request(raw)));
}

fn fnv_hash() {
    let key = Packet::udp64(42).flow_key().unwrap();
    bench("fnv1a_flow_key", || black_box(fnv1a(&key)));
}

fn main() {
    maglev_process_packet();
    maglev_table_build();
    kv_get_set();
    http_parse();
    fnv_hash();
}
