//! Benchmark harness for the Atmosphere reproduction.
//!
//! One `repro-*` binary per table/figure of the paper (see DESIGN.md's
//! experiment index), plus Criterion microbenchmarks of the real hot
//! paths in `benches/`. This library holds the shared measurement
//! helpers: Table 3-style cycle measurements against the simulated
//! kernel, and plain-text table rendering.

use atmo_kernel::{Kernel, KernelConfig, SyscallArgs};

/// Renders an aligned plain-text table.
pub fn render_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    out.push_str(&format!("== {title} ==\n"));
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<w$}", c, w = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Boots a kernel with thread T2 parked in `recv` on the shared
/// endpoint and T1 (the init thread) current — the starting state for
/// both call/reply measurements.
fn boot_call_reply_pair(k: &mut Kernel) {
    // Build T2 in the init process, both on CPU 0.
    let t2 = k
        .syscall(
            0,
            SyscallArgs::NewThread {
                proc: k.init_proc,
                cpu: 0,
            },
        )
        .val0() as usize;
    let e = k.syscall(0, SyscallArgs::NewEndpoint { slot: 0 }).val0() as usize;
    k.pm.install_descriptor(t2, 0, e).unwrap();

    // Switch to T2 and park it in recv.
    k.pm.timer_tick(0);
    assert_eq!(k.pm.sched.current(0), Some(t2));
    let r = k.syscall(0, SyscallArgs::Recv { slot: 0 });
    assert!(r.is_ok());
}

/// Measures the Atmosphere call/reply round trip in cycles on the
/// simulated kernel (Table 3, row 1): thread T2 waits in `recv`, T1
/// `call`s, T2 `reply`s; the meter delta across call+reply is the cost.
/// This is the paper's configuration — the slow rendezvous path, with
/// the direct-handoff fast path held off by exhausting the per-CPU
/// handoff budget first (a budget miss charges exactly the classic
/// rendezvous cost and dispatches the same thread).
pub fn measure_call_reply_cycles() -> u64 {
    let mut k = Kernel::boot(KernelConfig::default());
    boot_call_reply_pair(&mut k);

    // Burn the handoff budget with un-measured fastpath round trips so
    // the measured Call falls back to the rendezvous arm.
    for _ in 0..atmo_pm::manager::HANDOFF_BUDGET / 2 {
        let r = k.syscall(
            0,
            SyscallArgs::Call {
                slot: 0,
                scalars: [0; 4],
            },
        );
        assert_eq!(r.val0(), 1, "warm-up call should take the handoff");
        let _ = k.syscall(0, SyscallArgs::TakeMsg);
        let r = k.syscall(
            0,
            SyscallArgs::ReplyRecv {
                slot: 0,
                scalars: [0; 4],
            },
        );
        assert_eq!(r.val0(), 1, "warm-up reply should take the handoff");
        let _ = k.syscall(0, SyscallArgs::TakeMsg);
    }

    // T1 (the init thread, now current) performs the measured round trip.
    let start = k.cycles(0);
    let r = k.syscall(
        0,
        SyscallArgs::Call {
            slot: 0,
            scalars: [1, 2, 3, 4],
        },
    );
    assert!(r.is_ok());
    assert_eq!(r.val0(), 0, "measured call must take the rendezvous path");
    // T2 is current again (the call delivered into its recv); it replies.
    let r = k.syscall(
        0,
        SyscallArgs::Reply {
            scalars: [42, 0, 0, 0],
        },
    );
    assert!(r.is_ok());
    k.cycles(0) - start
}

/// Measures the same round trip on the IPC fast path (direct handoff):
/// T1 `Call`s (handoff to T2), T2 `ReplyRecv`s (handoff back). Not a
/// paper row — the fast path is this reproduction's optimisation on
/// top of the paper's kernel.
pub fn measure_call_reply_fastpath_cycles() -> u64 {
    let mut k = Kernel::boot(KernelConfig::default());
    boot_call_reply_pair(&mut k);

    let start = k.cycles(0);
    let r = k.syscall(
        0,
        SyscallArgs::Call {
            slot: 0,
            scalars: [1, 2, 3, 4],
        },
    );
    assert_eq!(r.val0(), 1, "expected the direct handoff");
    let r = k.syscall(
        0,
        SyscallArgs::ReplyRecv {
            slot: 0,
            scalars: [42, 0, 0, 0],
        },
    );
    assert_eq!(r.val0(), 1, "expected the direct handoff back");
    k.cycles(0) - start
}

/// Measures mapping one 4 KiB page in cycles on the simulated kernel
/// (Table 3, row 2). The neighbouring page is mapped first so the
/// intermediate table levels exist (steady-state cost, as measured in the
/// paper's loop). The paper's number is for the per-page datapath, so the
/// batched datapath (which trades a higher single-page setup cost for
/// amortization across a run) is switched off for this probe; the
/// `repro-vm-batch` binary measures both paths side by side.
pub fn measure_map_page_cycles() -> u64 {
    let mut k = Kernel::boot(KernelConfig::default());
    k.mem.vm.set_batch(false);
    let r = k.syscall(
        0,
        SyscallArgs::Mmap {
            va_base: 0x40_0000,
            len: 1,
            writable: true,
        },
    );
    assert!(r.is_ok());
    let start = k.cycles(0);
    let r = k.syscall(
        0,
        SyscallArgs::Mmap {
            va_base: 0x40_1000,
            len: 1,
            writable: true,
        },
    );
    assert!(r.is_ok());
    k.cycles(0) - start
}

/// Minimal wall-clock microbenchmark harness for the `benches/` binaries
/// (`harness = false`). No external dependency: each benchmark runs a
/// short calibration pass to pick an iteration count that fills the
/// measurement window, then reports per-iteration medians over several
/// samples.
pub mod microbench {
    use std::hint::black_box;
    use std::time::{Duration, Instant};

    const SAMPLES: usize = 7;
    const TARGET_SAMPLE: Duration = Duration::from_millis(40);

    /// Runs `f` repeatedly and prints `name: <median> ns/iter (min .. max)`.
    pub fn bench<T>(name: &str, mut f: impl FnMut() -> T) {
        // Calibrate: grow the batch until one batch takes ~the target.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= TARGET_SAMPLE || iters >= 1 << 24 {
                break;
            }
            // At least double; overshoot towards the target if way under.
            let scale = (TARGET_SAMPLE.as_nanos() / elapsed.as_nanos().max(1)).clamp(2, 64);
            iters = iters.saturating_mul(scale as u64);
        }

        let mut per_iter: Vec<f64> = (0..SAMPLES)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..iters {
                    black_box(f());
                }
                start.elapsed().as_nanos() as f64 / iters as f64
            })
            .collect();
        per_iter.sort_by(|a, b| a.total_cmp(b));
        let median = per_iter[per_iter.len() / 2];
        let (min, max) = (per_iter[0], per_iter[per_iter.len() - 1]);
        println!(
            "{name}: {median:>12.1} ns/iter  (min {min:.1} .. max {max:.1}, {iters} iters/sample)"
        );
    }
}

/// Formats a Mpps value for figure rows.
pub fn fmt_mpps(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats an IOPS value in thousands.
pub fn fmt_kiops(v: f64) -> String {
    format!("{:.0}K", v / 1000.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn call_reply_matches_table3() {
        assert_eq!(measure_call_reply_cycles(), 1058);
    }

    #[test]
    fn call_reply_fastpath_beats_table3() {
        // entry + ipc_fastpath + exit, twice: (140 + 110 + 109) * 2.
        assert_eq!(measure_call_reply_fastpath_cycles(), 718);
    }

    #[test]
    fn map_page_matches_table3() {
        assert_eq!(measure_map_page_cycles(), 1984);
    }

    #[test]
    fn table_rendering_aligns() {
        let t = render_table(
            "T",
            &["a", "long-header"],
            &[vec!["xxx".into(), "1".into()]],
        );
        assert!(t.contains("== T =="));
        assert!(t.contains("long-header"));
        assert!(t.lines().count() >= 4);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_mpps(14.2), "14.20");
        assert_eq!(fmt_kiops(141_000.0), "141K");
    }
}
