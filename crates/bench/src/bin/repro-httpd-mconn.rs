//! Reproduces the **million-connection httpd** experiment: the
//! event-driven connection core (per-CPU shards, hierarchical timer
//! wheels, epoll-style readiness) sustains one million live simulated
//! connections on 4 RSS-steered CPUs, with per-iteration cost
//! O(ready + expired) instead of O(live).
//!
//! The connection arenas are carved from kernel-`Mapped` frames, so
//! every byte of connection state sits inside `page_closure()` and the
//! incremental leak-freedom audit covers it for the whole run.
//!
//! Four scenarios, each driven per shard by its own cycle meter:
//!
//! 1. **flash-crowd** — the shards idle near capacity, then 100k new
//!    connections arrive in one burst, each sending a request;
//! 2. **slowloris / idle churn** — at one million live connections,
//!    idle event-loop iterations are measured against the O(live) scan
//!    baseline (the >= 10x claim), and headers that trickle in are
//!    reaped by the read-header timer while the idle mass is untouched;
//! 3. **incast** — a deliberately tiny packet pool against thousands of
//!    simultaneous large responses: exhaustion parks connections,
//!    TX completions unpark them, and the pool ledger stays balanced;
//! 4. **long-tail** — a mixed object-size workload (128 B to 256 KiB)
//!    reporting p50/p99/p999 request latency.
//!
//! Acceptance (asserted): >= 1M live connections at the target scale;
//! idle iteration >= 10x cheaper than the O(live) scan; zero pm/mem
//! domain-lock acquisitions inside the steady-state loops;
//! `audit_incremental` and the epoch `audit_total_wf` green throughout;
//! the arena unmaps cleanly at the end (no leaked frame).
//!
//! `HTTPD_MCONN_CONNS` scales the connection count (default 1,000,000;
//! CI smoke runs use a few tens of thousands).

use std::time::Instant;

use atmo_apps::event::{EV_SCAN_VISIT_COST, HTTP_PAYLOAD_OFFSET, TICK_SHIFT};
use atmo_apps::{ConnTable, EventCoreConfig, EventHttpd, CONN_SLOTS_PER_PAGE};
use atmo_bench::render_table;
use atmo_drivers::{
    queue_for_seq, write_udp64, DriverCosts, IxgbeDevice, IxgbeDriver, PktPool, RSS_FLOW_PERIOD,
};
use atmo_hw::CycleMeter;
use atmo_kernel::{Kernel, KernelConfig, SmpKernel, SyscallArgs};
use atmo_mem::PagePtr;
use atmo_spec::harness::Invariant;
use atmo_spec::rng::XorShift64Star;
use atmo_trace::{LatencyHist, TraceSink, DEFAULT_RING_CAPACITY};

const FREQ: u64 = 2_200_000_000;
const NQUEUES: usize = 4;
const ARENA_VA: usize = 0x4000_0000;
const PAGE_4K: usize = 0x1000;
/// Mmap chunk small enough to never trigger superpage promotion (the
/// frame extraction below needs the 4 KiB mappings to stay 4 KiB).
const MMAP_CHUNK: usize = 256;
/// Packet-pool slots per shard in the throughput scenarios.
const POOL_SLOTS: usize = 8192;
/// Packet-pool slots per shard in the incast scenario (deliberately
/// starved).
const INCAST_POOL_SLOTS: usize = 512;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The `k`-th distinct flow that RSS-steers to `queue`: steering is
/// periodic in the 4096-residue flow space, so enumerate the queue's
/// residues once and stride by the period.
struct FlowGen {
    residues: Vec<u64>,
}

impl FlowGen {
    fn new(queue: usize) -> Self {
        let residues = (0..RSS_FLOW_PERIOD)
            .filter(|&r| queue_for_seq(r, NQUEUES) == queue)
            .collect();
        FlowGen { residues }
    }

    fn flow(&self, k: usize) -> u64 {
        let n = self.residues.len();
        self.residues[k % n] + (k / n) as u64 * RSS_FLOW_PERIOD
    }
}

/// One shard's rig: event core over a kernel-backed arena slice, a
/// steered NIC queue, a packet pool and a worker cycle meter.
struct Shard {
    ev: EventHttpd,
    drv: IxgbeDriver,
    pool: PktPool,
    meter: CycleMeter,
    flows: FlowGen,
}

impl Shard {
    fn build(queue: usize, frames: Vec<PagePtr>, pool_slots: usize) -> Self {
        let table = ConnTable::from_frames(frames, queue, NQUEUES);
        // A realistic keepalive (~60 s of modeled time at 2.2 GHz); the
        // unit-test default (5000 ticks ~ 19 ms) would reap the idle
        // masses mid-scenario at million-connection scale.
        let mut cfg = EventCoreConfig::new(queue, NQUEUES);
        cfg.keepalive_ticks = 16_000_000;
        let mut ev = EventHttpd::new(cfg, table);
        ev.add_page("/index.html", &page_body(2048));
        ev.add_page("/obj-128", &page_body(128));
        ev.add_page("/obj-2k", &page_body(2048));
        ev.add_page("/obj-16k", &page_body(16 * 1024));
        ev.add_page("/obj-256k", &page_body(256 * 1024));
        Shard {
            ev,
            drv: IxgbeDriver::new(
                IxgbeDevice::steered(FREQ, NQUEUES, queue),
                DriverCosts::atmosphere(),
            ),
            pool: PktPool::anonymous(pool_slots),
            meter: CycleMeter::new(),
            flows: FlowGen::new(queue),
        }
    }

    /// Sends one request frame for `flow` (client side, uncharged).
    fn send(&mut self, flow: u64, http: &[u8]) -> bool {
        let Some(mut buf) = self.pool.try_acquire() else {
            return false;
        };
        let frame = self.pool.slot_mut(&buf);
        write_udp64(frame, flow);
        frame[HTTP_PAYLOAD_OFFSET..HTTP_PAYLOAD_OFFSET + http.len()].copy_from_slice(http);
        buf.set_len(HTTP_PAYLOAD_OFFSET + http.len());
        let mut bufs = vec![buf];
        self.ev.ingest(&mut self.meter, &mut self.pool, &mut bufs);
        true
    }

    fn tick(&mut self) -> usize {
        self.ev.tick(&mut self.meter, &mut self.drv, &mut self.pool)
    }

    /// Fills the shard with idle keep-alive connections until `live`.
    fn fill_idle(&mut self, live: usize) {
        let mut k = self.ev.table().opened() as usize;
        while self.ev.live() < live {
            let flow = self.flows.flow(k);
            k += 1;
            if self.ev.table().lookup(flow).is_some() {
                continue;
            }
            self.ev
                .accept(&mut self.meter, flow)
                .expect("arena sized for the fill");
        }
    }
}

fn page_body(len: usize) -> Vec<u8> {
    (0..len).map(|i| b'a' + (i % 26) as u8).collect()
}

fn cycles_to_us(c: u64) -> f64 {
    c as f64 / (FREQ as f64 / 1e6)
}

struct ScenarioRow {
    name: &'static str,
    live: usize,
    requests: u64,
    hist: LatencyHist,
    note: String,
}

fn report_rows(rows: &[ScenarioRow]) -> Vec<Vec<String>> {
    rows.iter()
        .map(|r| {
            vec![
                r.name.to_string(),
                format!("{}", r.live),
                format!("{}", r.requests),
                format!("{:.1}", cycles_to_us(r.hist.p50())),
                format!("{:.1}", cycles_to_us(r.hist.percentile(99.0))),
                format!("{:.1}", cycles_to_us(r.hist.percentile(99.9))),
                r.note.clone(),
            ]
        })
        .collect()
}

/// In-flight requests per shard in [`drive_requests`] — a closed-loop
/// load generator's admission window.
const CLIENT_WINDOW: usize = 512;

/// Drives `per_shard` requests per shard through the event loop as a
/// closed-loop client.
fn drive_requests(
    shards: &mut [Shard],
    per_shard: usize,
    flow_base: usize,
    path: impl Fn(usize, &mut XorShift64Star) -> &'static str,
) -> u64 {
    let mut rng = XorShift64Star::new(0x1775_0BA5);
    let mut served = 0u64;
    for shard in shards.iter_mut() {
        let base_served = shard.ev.served();
        let mut sent = 0usize;
        let mut stalled = 0u32;
        loop {
            let done = (shard.ev.served() - base_served) as usize;
            if done >= per_shard {
                break;
            }
            // Closed-loop client: keep at most CLIENT_WINDOW requests
            // in flight, so response backlogs (ready ring, parked
            // queue) stay bounded the way an admission-controlled load
            // generator keeps them; TX completions refill pool slots.
            while sent < per_shard && sent - done < CLIENT_WINDOW {
                let p = path(sent, &mut rng);
                let req = format!("GET {p} HTTP/1.1\r\nHost: b\r\n\r\n");
                let flow = shard.flows.flow(flow_base + sent);
                if !shard.send(flow, req.as_bytes()) {
                    break;
                }
                sent += 1;
            }
            shard.tick();
            // Fail loudly instead of spinning if the loop stops making
            // progress (e.g. a timeout reaped a conn mid-response).
            if (shard.ev.served() - base_served) as usize == done {
                stalled += 1;
                assert!(
                    stalled < 10_000,
                    "drive stalled: sent {sent} served {done}/{per_shard}, live {} \
                     parked {} ready {} pool in-flight {}",
                    shard.ev.live(),
                    shard.ev.parked_len(),
                    shard.ev.ready_len(),
                    shard.pool.in_flight(),
                );
            } else {
                stalled = 0;
            }
        }
        served += shard.ev.served() - base_served;
    }
    served
}

#[allow(clippy::too_many_lines)]
fn main() {
    let conns = env_usize("HTTPD_MCONN_CONNS", 1_000_000);
    let per_shard = conns.div_ceil(NQUEUES);
    let pages_per_shard = per_shard.div_ceil(CONN_SLOTS_PER_PAGE);
    let cap_per_shard = pages_per_shard * CONN_SLOTS_PER_PAGE;
    let total_pages = pages_per_shard * NQUEUES;
    let live_target = cap_per_shard * NQUEUES;

    println!("== repro-httpd-mconn: million-connection event-driven httpd ==");
    println!(
        "target {conns} conns -> {} slots on {NQUEUES} shards ({total_pages} arena pages, 64 B/conn)",
        live_target
    );

    // -- Kernel-backed connection arenas ---------------------------------
    let t0 = Instant::now();
    let mem_mib = ((total_pages * PAGE_4K) >> 20) + 32;
    let k = SmpKernel::new(Kernel::boot(KernelConfig {
        mem_mib,
        ncpus: NQUEUES,
        root_quota: total_pages + 4096,
    }));
    let mut va = ARENA_VA;
    let mut left = total_pages;
    while left > 0 {
        let len = MMAP_CHUNK.min(left);
        let r = k.syscall(
            0,
            SyscallArgs::Mmap {
                va_base: va,
                len,
                writable: true,
            },
        );
        assert!(r.is_ok(), "arena mmap at {va:#x}: {r:?}");
        va += len * PAGE_4K;
        left -= len;
    }
    let frames: Vec<PagePtr> = k.with_kernel(|k| {
        let as_id = k.pm.proc(k.init_proc).addr_space;
        let table = k.mem.vm.table(as_id).unwrap();
        (0..total_pages)
            .map(|i| table.map_4k.index(&(ARENA_VA + i * PAGE_4K)).unwrap().frame)
            .collect()
    });
    k.enable_incremental_audit();
    let shard_frames = |q: usize| frames[q * pages_per_shard..(q + 1) * pages_per_shard].to_vec();
    println!(
        "arena mapped: {} pages in {:.2}s, incremental audit baselined",
        total_pages,
        t0.elapsed().as_secs_f64()
    );

    // pm/mem domain-lock acquisition counts; sampled around every
    // steady-state loop below to assert the event core never enters the
    // kernel (the audits between scenarios do lock, legitimately).
    let locks = |k: &SmpKernel| {
        let s = k.trace_snapshot();
        (
            s.counters.locks.pm.acquisitions,
            s.counters.locks.mem.acquisitions,
        )
    };
    let locks_before = locks(&k);

    let mut rows: Vec<ScenarioRow> = Vec::new();
    let sink = TraceSink::new(NQUEUES, DEFAULT_RING_CAPACITY);

    // -- Scenario 1: flash crowd -----------------------------------------
    let t = Instant::now();
    let burst_per_shard = (cap_per_shard / 10).clamp(1, 25_000);
    // Scenario 2's slowloris trickle tops the shards up to exactly full
    // capacity, so the flash-crowd fill leaves that much headroom.
    let loris_per_shard = 512.min(burst_per_shard);
    let idle_fill = cap_per_shard - burst_per_shard - loris_per_shard;
    let mut shards: Vec<Shard> = (0..NQUEUES)
        .map(|q| {
            let mut s = Shard::build(q, shard_frames(q), POOL_SLOTS);
            s.ev.attach_trace(sink.clone());
            s.fill_idle(idle_fill);
            s
        })
        .collect();
    let l0 = locks(&k);
    let served = drive_requests(&mut shards, burst_per_shard, idle_fill, |_, _| {
        "/index.html"
    });
    assert_eq!(locks(&k), l0, "flash-crowd loop took a pm/mem lock");
    let mut hist = LatencyHist::default();
    let mut live = 0;
    for s in &shards {
        hist.merge(s.ev.latency());
        live += s.ev.live();
    }
    k.audit_incremental()
        .unwrap_or_else(|e| panic!("flash-crowd incremental audit: {e}"));
    for s in &shards {
        s.ev.wf().unwrap_or_else(|e| panic!("flash-crowd wf: {e}"));
    }
    assert_eq!(served, (burst_per_shard * NQUEUES) as u64);
    assert_eq!(
        live,
        live_target - loris_per_shard * NQUEUES,
        "burst conns stay live (keep-alive)"
    );
    rows.push(ScenarioRow {
        name: "flash-crowd",
        live,
        requests: served,
        hist,
        note: format!(
            "{}-conn burst, {:.2}s",
            burst_per_shard * NQUEUES,
            t.elapsed().as_secs_f64()
        ),
    });

    // -- Scenario 2: slowloris + idle churn (the O(ready) claim) ---------
    // Reuse the fully-live shards from scenario 1: every connection idle,
    // keep-alive timers armed. Idle event-loop iterations must not scan
    // the live mass.
    let t = Instant::now();
    let idle_iters = 2000u64;
    let mut idle_cycles = 0u64;
    let mut scan_cycles = 0u64;
    let l0 = locks(&k);
    for s in shards.iter_mut() {
        let c0 = s.meter.now();
        for _ in 0..idle_iters {
            s.tick();
        }
        idle_cycles += s.meter.now() - c0;
        // The O(live) comparison: one full scan per iteration.
        let c1 = s.meter.now();
        s.ev.scan_step_baseline(&mut s.meter);
        scan_cycles += (s.meter.now() - c1) * idle_iters;
    }
    let idle_per_iter = idle_cycles / (idle_iters * NQUEUES as u64);
    let scan_per_iter = scan_cycles / (idle_iters * NQUEUES as u64);
    let idle_ratio = scan_per_iter as f64 / idle_per_iter.max(1) as f64;
    // Slowloris: trickled headers top the shards up to full capacity,
    // then die to the read-header timer while the idle mass is
    // untouched.
    let mut peak_live = 0usize;
    for s in shards.iter_mut() {
        let live0 = s.ev.live();
        for i in 0..loris_per_shard {
            // Burst flows completed their request and are idle again;
            // open *new* conns beyond the filled range for the trickle.
            let flow = s.flows.flow(cap_per_shard + i);
            s.send(flow, b"GET /index.ht");
        }
        assert_eq!(s.ev.live(), live0 + loris_per_shard, "trickles accepted");
        assert_eq!(s.ev.live(), cap_per_shard, "shard momentarily full");
        peak_live += s.ev.live();
        let header_ticks = EventCoreConfig::new(0, NQUEUES).header_ticks;
        s.meter.charge((header_ticks + 2) << TICK_SHIFT);
        s.tick();
        assert_eq!(s.ev.live(), live0, "slowloris reaped, idle mass kept");
    }
    assert_eq!(locks(&k), l0, "idle/slowloris loops took a pm/mem lock");
    let snap = sink.snapshot();
    assert!(
        snap.counters.httpd.timeouts_header >= (loris_per_shard * NQUEUES) as u64,
        "header timeouts recorded"
    );
    k.audit_incremental()
        .unwrap_or_else(|e| panic!("slowloris incremental audit: {e}"));
    let mut hist = LatencyHist::default();
    for s in &shards {
        hist.merge(s.ev.latency());
    }
    rows.push(ScenarioRow {
        name: "slowloris/idle",
        live: peak_live,
        requests: 0,
        hist: LatencyHist::default(),
        note: format!(
            "idle {idle_per_iter} cyc/iter vs scan {scan_per_iter} ({idle_ratio:.0}x), {:.2}s",
            t.elapsed().as_secs_f64()
        ),
    });
    let _ = hist;

    // -- Scenario 3: incast ----------------------------------------------
    // Fresh shards over the same arena frames, against a starved pool:
    // thousands of simultaneous 16 KiB responses must park and resume
    // without dropping anything or unbalancing the pool ledger.
    let t = Instant::now();
    drop(shards);
    let mut shards: Vec<Shard> = (0..NQUEUES)
        .map(|q| {
            let mut s = Shard::build(q, shard_frames(q), INCAST_POOL_SLOTS);
            s.ev.attach_trace(sink.clone());
            s
        })
        .collect();
    let incast_per_shard = 4096.min(cap_per_shard / 2).max(1);
    let l0 = locks(&k);
    let served = drive_requests(&mut shards, incast_per_shard, 0, |_, _| "/obj-16k");
    assert_eq!(locks(&k), l0, "incast loop took a pm/mem lock");
    assert_eq!(served, (incast_per_shard * NQUEUES) as u64);
    let snap = sink.snapshot();
    assert!(snap.counters.httpd.parked > 0, "incast forced parking");
    assert_eq!(
        snap.counters.httpd.parked, snap.counters.httpd.unparked,
        "every parked conn resumed"
    );
    for s in &shards {
        assert_eq!(s.pool.in_flight(), 0, "pool ledger balanced after incast");
        s.ev.wf().unwrap_or_else(|e| panic!("incast wf: {e}"));
    }
    k.audit_incremental()
        .unwrap_or_else(|e| panic!("incast incremental audit: {e}"));
    k.audit_total_wf()
        .unwrap_or_else(|e| panic!("incast epoch full audit: {e}"));
    let mut hist = LatencyHist::default();
    for s in &shards {
        hist.merge(s.ev.latency());
    }
    rows.push(ScenarioRow {
        name: "incast",
        live: shards.iter().map(|s| s.ev.live()).sum(),
        requests: served,
        hist,
        note: format!(
            "{} parked / {} unparked, {:.2}s",
            snap.counters.httpd.parked,
            snap.counters.httpd.unparked,
            t.elapsed().as_secs_f64()
        ),
    });

    // -- Scenario 4: long-tail object mix --------------------------------
    let t = Instant::now();
    drop(shards);
    let mut shards: Vec<Shard> = (0..NQUEUES)
        .map(|q| {
            let mut s = Shard::build(q, shard_frames(q), POOL_SLOTS);
            s.ev.attach_trace(sink.clone());
            s.fill_idle(cap_per_shard / 2);
            s
        })
        .collect();
    let tail_per_shard = 25_000.min(cap_per_shard / 2).max(1);
    let l0 = locks(&k);
    let served = drive_requests(&mut shards, tail_per_shard, 0, |_, rng| {
        // 60% tiny, 30% small, 9% medium, 1% huge.
        match rng.below(100) {
            0..=59 => "/obj-128",
            60..=89 => "/obj-2k",
            90..=98 => "/obj-16k",
            _ => "/obj-256k",
        }
    });
    assert_eq!(served, (tail_per_shard * NQUEUES) as u64);
    assert_eq!(locks(&k), l0, "long-tail loop took a pm/mem lock");
    let mut hist = LatencyHist::default();
    for s in &shards {
        hist.merge(s.ev.latency());
    }
    k.audit_incremental()
        .unwrap_or_else(|e| panic!("long-tail incremental audit: {e}"));
    rows.push(ScenarioRow {
        name: "long-tail",
        live: shards.iter().map(|s| s.ev.live()).sum(),
        requests: served,
        hist,
        note: format!("128B..256KiB mix, {:.2}s", t.elapsed().as_secs_f64()),
    });

    // -- Steady-state lock discipline ------------------------------------
    let locks_after = locks(&k);

    // -- Teardown: arena back out of the closure -------------------------
    drop(shards);
    let mut va = ARENA_VA;
    let mut left = total_pages;
    while left > 0 {
        let len = MMAP_CHUNK.min(left);
        let r = k.syscall(0, SyscallArgs::Munmap { va_base: va, len });
        assert!(r.is_ok(), "arena munmap at {va:#x}: {r:?}");
        va += len * PAGE_4K;
        left -= len;
    }
    k.audit_total_wf()
        .unwrap_or_else(|e| panic!("teardown full audit: {e}"));
    k.with_kernel(|k| {
        assert!(
            k.mem.alloc.mapped_pages().is_empty(),
            "arena frames leaked past teardown"
        );
    });

    // -- Report ----------------------------------------------------------
    println!();
    println!(
        "{}",
        render_table(
            "Million-connection httpd scenarios (latency in us on the c220g5)",
            &["Scenario", "Live", "Requests", "p50", "p99", "p999", "Notes"],
            &report_rows(&rows),
        )
    );
    let snap = sink.snapshot();
    println!(
        "httpd counters: accepts {} closes {} served {} timeouts(k/h/d) {}/{}/{} cascades {} parked {} unparked {} malformed {}",
        snap.counters.httpd.accepts,
        snap.counters.httpd.closes,
        snap.counters.httpd.served,
        snap.counters.httpd.timeouts_keepalive,
        snap.counters.httpd.timeouts_header,
        snap.counters.httpd.timeouts_drain,
        snap.counters.httpd.wheel_cascades,
        snap.counters.httpd.parked,
        snap.counters.httpd.unparked,
        snap.counters.httpd.malformed,
    );
    println!(
        "ready-batch sizes: count {} mean {} p50 {} p99 {} max {}",
        snap.httpd_ready_hist.count(),
        snap.httpd_ready_hist.mean(),
        snap.httpd_ready_hist.p50(),
        snap.httpd_ready_hist.percentile(99.0),
        snap.httpd_ready_hist.max(),
    );
    println!(
        "idle iteration: {idle_per_iter} cycles vs O(live) scan {scan_per_iter} cycles \
         ({idle_ratio:.0}x cheaper; scan visit = {EV_SCAN_VISIT_COST} cyc/conn)"
    );
    println!(
        "domain locks across the run: pm {} -> {}, mem {} -> {} (all from the audits; \
         every steady-state loop asserted lock-free)",
        locks_before.0, locks_after.0, locks_before.1, locks_after.1
    );

    // -- Acceptance -------------------------------------------------------
    assert_eq!(
        rows[1].live, live_target,
        "idle scenario holds every slot live"
    );
    assert!(
        idle_ratio >= 10.0,
        "idle iteration must be >= 10x cheaper than the O(live) scan, got {idle_ratio:.1}x"
    );
    for r in &rows {
        if r.requests > 0 {
            assert!(r.hist.percentile(99.9) > 0, "{}: p999 recorded", r.name);
        }
    }
    println!();
    println!(
        "PASS: {} live conns on {NQUEUES} steered CPUs; idle iteration {idle_ratio:.0}x \
         cheaper than O(live) scan; audits green; arena closure clean.",
        live_target
    );
}
