//! Reproduces **Figure 3**: the Atmosphere commit history — cumulative
//! lines over the three development versions (vertical separators at the
//! clean-slate rewrites).

use atmo_verif::history::{development_history, VERSION_BOUNDARIES};

fn main() {
    println!("== Figure 3: Atmosphere commit history ==");
    println!("week  ver  people  exec_loc  proof_loc  chart (exec #, proof *)");
    let history = development_history();
    for p in &history {
        if VERSION_BOUNDARIES.contains(&p.week) {
            println!("{}", "-".repeat(72));
        }
        let exec_bar = "#".repeat(p.exec_loc / 400);
        let proof_bar = "*".repeat(p.proof_loc / 1200);
        println!(
            "{:>4}  v{}   {:>5}  {:>8}  {:>9}  {}{}",
            p.week, p.version, p.people, p.exec_loc, p.proof_loc, exec_bar, proof_bar
        );
    }
    let last = history.last().expect("nonempty history");
    println!(
        "\nfinal: {} exec / {} proof+spec lines over {} weeks (paper: 6K exec, 20.1K proof, ~14 months, 3 versions)",
        last.exec_loc,
        last.proof_loc,
        last.week + 1
    );
}
