//! Reproduces the **zero-copy network datapath** experiment: the
//! grant-backed packet-buffer pool ([`PktPool`]) versus the cloning
//! datapath, on the Maglev load-balancer pipeline.
//!
//! Both modes execute the identical RX → ring → app → TX pipeline with
//! real code (frames are generated, parsed and header-rewritten); only
//! the buffer management differs:
//!
//! * **cloning** — the driver materialises an owned `Packet` per frame
//!   (`heap_alloc` + `copy_cacheline`), ships it through the SPSC ring,
//!   and the TX side copies it back out into the descriptor ring;
//! * **zero-copy** — the NIC writes into pool slots, [`PktBuf`] handles
//!   move through the ring by permission transfer, Maglev rewrites
//!   headers in place, and TX releases the slots; nothing is copied and
//!   nothing is allocated on the steady path (asserted from the pool
//!   counters).
//!
//! Multi-CPU rows run per-CPU run-to-completion workers on RSS-steered
//! queues ([`IxgbeDevice::steered`]): each queue sees its exact hash
//! share of the 14.2 Mpps line rate, so per-worker throughput is
//! `min(CPU rate, queue line rate)` and the aggregate recovers the
//! Figure-4 shape. A kernel-backed section builds the pool from
//! DMA-pinned frames via the IOMMU syscalls and audits leak freedom
//! (`wf` / `page_closure`) with handles dropped mid-pipeline.
//!
//! The run fails if zero-copy does not save at least 40% cycles/packet
//! at one CPU, or if four steered CPUs do not beat one in aggregate.

use atmo_apps::maglev::{MaglevTable, MAGLEV_APP_COST};
use atmo_bench::render_table;
use atmo_drivers::pkt::Packet;
use atmo_drivers::{
    DriverCosts, IxgbeDevice, IxgbeDriver, PktBuf, PktPool, SpscRing, IXGBE_LINE_RATE_64B_PPS,
};
use atmo_hw::cycles::{CostModel, CpuProfile, CycleMeter};
use atmo_kernel::{Kernel, KernelConfig, SyscallArgs};
use atmo_spec::harness::Invariant;
use atmo_trace::{trace_wf, TraceHandle, TraceSink};

const FREQ: u64 = 2_200_000_000;
const BATCH: usize = 32;
const POOL_SLOTS: usize = 1024;

/// One measured pipeline configuration.
struct RunStats {
    packets: u64,
    cycles: u64,
}

impl RunStats {
    fn cycles_per_pkt(&self) -> f64 {
        self.cycles as f64 / self.packets as f64
    }

    fn mpps(&self, profile: &CpuProfile) -> f64 {
        profile.throughput(self.packets, self.cycles) / 1e6
    }
}

fn backends() -> Vec<String> {
    (0..8).map(|i| format!("backend-{i}")).collect()
}

/// The cloning Maglev pipeline on one CPU at full line rate: every frame
/// is cloned into an owned `Packet` (`heap_alloc` + one cache-line copy),
/// handed through the SPSC ring, rewritten, copied into the TX
/// descriptors and freed.
fn run_cloning(table: &MaglevTable, rounds: usize, costs: &CostModel) -> RunStats {
    let mut drv = IxgbeDriver::new(IxgbeDevice::new(FREQ), DriverCosts::atmosphere());
    let mut ring: SpscRing<Packet> = SpscRing::new(2 * BATCH);
    let mut meter = CycleMeter::new();
    let mut rx: Vec<Packet> = Vec::with_capacity(BATCH);
    let mut app: Vec<Packet> = Vec::with_capacity(BATCH);
    let mut done = 0u64;
    for _ in 0..rounds {
        rx.clear();
        let n = drv.rx_batch_into(&mut meter, &mut rx, BATCH);
        // Clone each frame out of the descriptor ring into an app-owned
        // buffer (the allocation + copy the zero-copy path eliminates).
        meter.charge((costs.heap_alloc + costs.copy_cacheline) * n as u64);
        for pkt in rx.drain(..) {
            ring.enqueue(pkt)
                .unwrap_or_else(|_| unreachable!("ring sized for the batch"));
            meter.charge(costs.ring_op);
        }
        app.clear();
        let taken = ring.dequeue_into(&mut app, BATCH);
        meter.charge(costs.ring_op * taken as u64);
        for pkt in app.iter_mut() {
            table.process_packet(pkt).expect("generated frames parse");
        }
        meter.charge(MAGLEV_APP_COST * taken as u64);
        // TX copies the rewritten frames back into the descriptor ring.
        meter.charge(costs.copy_cacheline * taken as u64);
        drv.tx_batch(&mut meter, std::mem::take(&mut app));
        done += taken as u64;
    }
    RunStats {
        packets: done,
        cycles: meter.now(),
    }
}

/// The zero-copy Maglev pipeline for one run-to-completion worker on one
/// RSS queue: handles move RX → ring → app → TX by permission transfer,
/// the rewrite happens in the NIC slot, TX releases the slots.
fn run_zerocopy_worker(
    table: &MaglevTable,
    rounds: usize,
    costs: &CostModel,
    nqueues: usize,
    queue: usize,
    sink: Option<&TraceHandle>,
) -> RunStats {
    let device = if nqueues == 1 {
        IxgbeDevice::new(FREQ)
    } else {
        IxgbeDevice::steered(FREQ, nqueues, queue)
    };
    let mut drv = IxgbeDriver::new(device, DriverCosts::atmosphere());
    let mut pool = PktPool::anonymous(POOL_SLOTS);
    if let Some(sink) = sink {
        sink.set_cpu(queue);
        drv.attach_trace(sink.clone());
        pool.attach_trace(sink.clone());
    }
    let mut ring: SpscRing<PktBuf> = SpscRing::new(2 * BATCH);
    let mut meter = CycleMeter::new();
    let mut rx: Vec<PktBuf> = Vec::with_capacity(BATCH);
    let mut app: Vec<PktBuf> = Vec::with_capacity(BATCH);
    let rx_cap = rx.capacity();
    let mut done = 0u64;
    for _ in 0..rounds {
        let n = drv.rx_batch_zc(&mut meter, &mut pool, &mut rx, BATCH);
        for buf in rx.drain(..) {
            ring.enqueue(buf)
                .unwrap_or_else(|_| unreachable!("ring sized for the batch"));
            meter.charge(costs.ring_op);
        }
        let taken = ring.dequeue_into(&mut app, BATCH);
        meter.charge(costs.ring_op * taken as u64);
        for buf in app.iter() {
            table
                .process_frame(pool.data_mut(buf))
                .expect("generated frames parse");
        }
        meter.charge(MAGLEV_APP_COST * taken as u64);
        drv.tx_batch_zc(&mut meter, &mut pool, &mut app);
        done += n as u64;
        assert_eq!(rx.capacity(), rx_cap, "steady-state RX buffer reallocated");
    }
    assert_eq!(pool.exhausted(), 0, "pool sized for the pipeline depth");
    assert_eq!(pool.in_flight(), 0, "every handle released by TX");
    assert_eq!(
        pool.acquired(),
        done,
        "ledger: one acquire per delivered frame"
    );
    assert!(pool.is_wf(), "{:?}", pool.wf());
    RunStats {
        packets: done,
        cycles: meter.now(),
    }
}

/// Aggregate zero-copy throughput over `nqueues` steered workers, each a
/// run-to-completion loop on its own CPU. RSS gives the workers disjoint
/// flow spaces, so no cross-worker synchronisation exists to model; the
/// aggregate is the sum of the per-worker steady-state rates.
fn run_zerocopy_smp(
    table: &MaglevTable,
    rounds: usize,
    costs: &CostModel,
    nqueues: usize,
    profile: &CpuProfile,
    sink: Option<&TraceHandle>,
) -> (f64, Vec<RunStats>) {
    let stats: Vec<RunStats> = (0..nqueues)
        .map(|q| run_zerocopy_worker(table, rounds, costs, nqueues, q, sink))
        .collect();
    let agg = stats.iter().map(|s| s.mpps(profile)).sum();
    (agg, stats)
}

/// Builds a kernel-backed pool: `NPAGES` frames are mmapped, DMA-pinned
/// through the IOMMU (device 7), then unmapped from the process — they
/// survive in `page_closure()` through `iommu.mapped_frames()` alone,
/// exactly like a long-lived driver buffer. Runs a short zero-copy
/// pipeline over it **dropping every third frame mid-pipeline** (the
/// handle is released through the pool, never transmitted), then tears
/// everything down and audits leak freedom at every step.
fn kernel_backed_pool_audit(table: &MaglevTable) {
    const VA: usize = 0x4000_0000;
    const IOVA: usize = 0x10_0000;
    const NPAGES: usize = 64;
    let mut k = Kernel::boot(KernelConfig {
        mem_mib: 64,
        ncpus: 1,
        root_quota: 2048,
    });
    let ok = |k: &mut Kernel, args: SyscallArgs| {
        let r = k.syscall(0, args.clone());
        assert!(r.is_ok(), "{args:?} failed: {r:?}");
        r.val0()
    };
    ok(
        &mut k,
        SyscallArgs::Mmap {
            va_base: VA,
            len: NPAGES,
            writable: true,
        },
    );
    let dom = ok(&mut k, SyscallArgs::IommuCreateDomain) as u32;
    ok(
        &mut k,
        SyscallArgs::IommuAttach {
            domain: dom,
            device: 7,
        },
    );
    for i in 0..NPAGES {
        ok(
            &mut k,
            SyscallArgs::IommuMap {
                domain: dom,
                iova: IOVA + i * 0x1000,
                va: VA + i * 0x1000,
            },
        );
    }
    let as_id = k.pm.proc(k.init_proc).addr_space;
    let frames: Vec<usize> = (0..NPAGES)
        .map(|i| {
            k.mem
                .vm
                .table(as_id)
                .unwrap()
                .map_4k
                .index(&(VA + i * 0x1000))
                .unwrap()
                .frame
        })
        .collect();
    // The process unmaps its window; the DMA pin keeps every frame
    // alive (refcnt 1) and inside the leak-freedom closure.
    ok(
        &mut k,
        SyscallArgs::Munmap {
            va_base: VA,
            len: NPAGES,
        },
    );
    for &f in &frames {
        assert_eq!(k.mem.alloc.map_refcnt(f), 1, "DMA pin holds the frame");
    }
    let wf = k.wf();
    assert!(wf.is_ok(), "pinned pool pages break page_closure: {wf:?}");

    let mut pool = PktPool::from_frames(frames);
    let mut drv = IxgbeDriver::new(IxgbeDevice::new(FREQ), DriverCosts::atmosphere());
    let mut meter = CycleMeter::new();
    let mut rx: Vec<PktBuf> = Vec::with_capacity(BATCH);
    let mut app: Vec<PktBuf> = Vec::with_capacity(BATCH);
    let (mut forwarded, mut dropped) = (0u64, 0u64);
    for _ in 0..64 {
        drv.rx_batch_zc(&mut meter, &mut pool, &mut rx, BATCH);
        for (i, buf) in rx.drain(..).enumerate() {
            if i % 3 == 2 {
                // A mid-pipeline drop: the handle goes back through the
                // pool's only discard path, so the slot cannot leak.
                pool.release(buf);
                dropped += 1;
            } else {
                app.push(buf);
            }
        }
        for buf in app.iter() {
            table
                .process_frame(pool.data_mut(buf))
                .expect("generated frames parse");
        }
        meter.charge(MAGLEV_APP_COST * app.len() as u64);
        forwarded += drv.tx_batch_zc(&mut meter, &mut pool, &mut app) as u64;
    }
    assert!(
        forwarded > 0 && dropped > 0,
        "both pipeline fates exercised"
    );
    assert_eq!(pool.in_flight(), 0, "drops and TX together release all");
    assert_eq!(pool.acquired(), forwarded + dropped);
    assert!(pool.is_wf(), "{:?}", pool.wf());
    assert!(k.wf().is_ok(), "pool in service: {:?}", k.wf());

    // Teardown: reclaim the frames from the pool, unpin each from the
    // IOMMU (the last reference), and audit that nothing leaked.
    let frames = pool.into_frames();
    for i in 0..NPAGES {
        ok(
            &mut k,
            SyscallArgs::IommuUnmap {
                domain: dom,
                iova: IOVA + i * 0x1000,
            },
        );
    }
    for &f in &frames {
        assert!(k.mem.alloc.page_is_free(f), "frame returned on unpin");
    }
    ok(&mut k, SyscallArgs::IommuDetach { device: 7 });
    assert!(k.mem.alloc.mapped_pages().is_empty(), "no frames leaked");
    let wf = k.wf();
    assert!(wf.is_ok(), "teardown: {wf:?}");
    println!(
        "kernel-backed pool: {NPAGES} DMA-pinned pages, {forwarded} forwarded + \
         {dropped} dropped mid-pipeline, page_closure() covered the pool \
         throughout (wf audited at pin, in service, and after teardown)."
    );
}

fn main() {
    let rounds: usize = std::env::var("NET_ZC_ROUNDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(6000);
    let profile = CpuProfile::c220g5();
    let costs = CostModel::c220g5();
    let table = MaglevTable::new(&backends(), 65537);
    let line_mpps = IXGBE_LINE_RATE_64B_PPS / 1e6;

    // One traced single-CPU pass first: the sink's pool ledger
    // (`acquired == released + in_flight`) must balance under trace_wf.
    let sink = TraceSink::new(4, 4096);
    let traced = run_zerocopy_worker(&table, rounds.min(500), &costs, 1, 0, Some(&sink));
    trace_wf(&sink).expect("net ledger balances");
    let snap = sink.snapshot();
    assert_eq!(snap.counters.net.pool_acquired, traced.packets);
    assert_eq!(snap.counters.net.pool_released, traced.packets);
    assert_eq!(snap.net_in_flight, 0);

    let cloning = run_cloning(&table, rounds, &costs);
    let (zc1, zc1_stats) = run_zerocopy_smp(&table, rounds, &costs, 1, &profile, None);
    let (zc2, _) = run_zerocopy_smp(&table, rounds, &costs, 2, &profile, None);
    let (zc4, zc4_stats) = run_zerocopy_smp(&table, rounds, &costs, 4, &profile, None);

    let clone_cpp = cloning.cycles_per_pkt();
    let zc_cpp = zc1_stats[0].cycles_per_pkt();
    let savings = 1.0 - zc_cpp / clone_cpp;

    let mut rows = vec![
        vec![
            "1".into(),
            "cloning".into(),
            format!("{clone_cpp:.0}"),
            format!("{:.2}", cloning.mpps(&profile)),
            String::new(),
        ],
        vec![
            "1".into(),
            "zero-copy".into(),
            format!("{zc_cpp:.0}"),
            format!("{zc1:.2}"),
            format!("{:.1}%", savings * 100.0),
        ],
        vec![
            "2".into(),
            "zero-copy".into(),
            String::new(),
            format!("{zc2:.2}"),
            String::new(),
        ],
        vec![
            "4".into(),
            "zero-copy".into(),
            String::new(),
            format!("{zc4:.2}"),
            String::new(),
        ],
    ];
    rows.push(vec![
        "-".into(),
        "line rate".into(),
        String::new(),
        format!("{line_mpps:.2}"),
        String::new(),
    ]);
    print!(
        "{}",
        render_table(
            &format!(
                "Zero-copy network datapath, Maglev pipeline \
                 ({rounds} batches of {BATCH}, modeled c220g5 cycles)"
            ),
            &["CPUs", "Mode", "Cycles/pkt", "Mpps (agg)", "Savings"],
            &rows,
        )
    );
    println!();
    println!(
        "steady path: 0 heap allocations, 0 payload copies ({} frames, \
         pool ledger acquired == released, exhausted == 0, trace_wf ok \
         on the traced pass)",
        zc1_stats[0].packets
    );
    println!();
    kernel_backed_pool_audit(&table);
    println!();
    println!(
        "zero-copy saves {:.1}% cycles/packet at 1 CPU (acceptance: >= 40%); \
         aggregate {zc4:.2} Mpps on 4 steered CPUs vs {zc1:.2} on 1.",
        savings * 100.0
    );

    // Acceptance: the zero-copy rework must be a >= 40% per-packet win,
    // flow steering must scale the aggregate, and every configuration
    // must sit on the min(CPU rate, line rate) curve.
    assert!(
        savings >= 0.40,
        "zero-copy must save >= 40% cycles/packet, got {:.1}%",
        savings * 100.0
    );
    assert!(zc4 > zc1, "4 steered CPUs must beat 1 in aggregate");
    let cpu_rate = FREQ as f64 / zc_cpp / 1e6;
    let predicted1 = cpu_rate.min(line_mpps);
    assert!(
        (zc1 - predicted1).abs() / predicted1 < 0.05,
        "1-CPU zero-copy off the min(CPU, line) curve: {zc1} vs {predicted1}"
    );
    assert!(
        zc1 < line_mpps * 0.99,
        "1 CPU must be CPU-bound below line rate: {zc1}"
    );
    assert!(
        (14.0..14.3).contains(&zc4),
        "4 steered queues must aggregate to line rate: {zc4}"
    );
    for (q, s) in zc4_stats.iter().enumerate() {
        let share = atmo_drivers::RssSteer::new(4).share(q);
        let queue_line = line_mpps * share;
        let rate = s.mpps(&profile);
        assert!(
            (rate - queue_line).abs() / queue_line < 0.05,
            "queue {q} off its line-rate share: {rate} vs {queue_line}"
        );
    }
}
