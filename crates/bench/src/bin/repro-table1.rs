//! Reproduces **Table 1**: proof effort across verified-systems projects,
//! plus the *measured* proof-to-code ratio of this reproduction.

use std::path::Path;

use atmo_bench::render_table;
use atmo_verif::loc::classify_workspace;
use atmo_verif::published_ratios;

fn main() {
    let mut rows: Vec<Vec<String>> = published_ratios()
        .into_iter()
        .map(|r| {
            vec![
                r.name.to_string(),
                r.language.to_string(),
                r.spec_language.to_string(),
                format!("{:.1}:1", r.ratio),
            ]
        })
        .collect();

    // Measure this artefact: walk the workspace the binary was built from.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .unwrap_or(Path::new("."));
    let loc = classify_workspace(root);
    rows.push(vec![
        "Atmosphere (this repro, measured)".to_string(),
        "Rust".to_string(),
        "executable specs".to_string(),
        format!("{:.2}:1", loc.proof_to_code()),
    ]);

    print!(
        "{}",
        render_table(
            "Table 1: Proof effort for existing verification projects",
            &["Name", "Language", "Spec Lang.", "Proof-to-Code"],
            &rows,
        )
    );
    println!(
        "\nThis repository: {} exec, {} spec, {} proof lines ({} comments, {} blank).",
        loc.exec, loc.spec, loc.proof, loc.comment, loc.blank
    );
}
