//! Reproduces the **zero-copy block datapath** experiment: io_uring-style
//! batched submission/completion rings over the NVMe model
//! ([`NvmeZcQueue`] + [`BlkPool`]) versus the per-I/O copying baseline
//! ([`NvmeDriver`]), plus the crash-consistent log-structured kv-store.
//!
//! Both modes drive the identical closed-loop workload against the same
//! P3700-class device model; only the host-side datapath differs:
//!
//! * **copying** — each I/O pays the full per-command driver cost
//!   (`nvme_io`) plus an allocation and a 4 KiB payload copy
//!   (`heap_alloc` + 64 × `copy_cacheline`), one doorbell per command;
//! * **zero-copy batched** — DMA happens in grant-pinned pool slots;
//!   [`BlkBuf`] handles move to the device on submit and back on reap by
//!   permission transfer; the host writes one SQ descriptor and reads
//!   one CQ descriptor per I/O (`sq_desc_zc`/`cq_desc_zc`) with a single
//!   doorbell per batch in each direction. Nothing is copied, nothing is
//!   allocated on the steady path (asserted from the pool counters).
//!
//! At QD1 both modes are latency-bound near 13 K IOPS (Figure 5's left
//! regime: host software cannot matter when one 76 µs flash read is in
//! flight); at QD32 both sit on the device-bound closed-loop curve
//! `qd / max(latency, qd * service)` (~420 K reads / ~232 K writes with
//! the per-write penalty) — the zero-copy win shows up as *host busy
//! cycles per I/O* (CPU left for the application), measured by
//! separating wait cycles from work cycles in the loops below.
//!
//! A kernel-backed section pins the pool through the IOMMU grant path
//! (device 7) and drives the real `BlkSubmitBatch`/`BlkReapBatch`
//! syscalls on the sharded SMP kernel, auditing `total_wf` (which now
//! folds the blk queue-pair and ledger invariants) stop-the-world via
//! `with_kernel`/`audit_total_wf`. A power-cut section then cuts the
//! log-structured kv-store's segment log at every record boundary and at
//! random mid-record offsets and checks `recovery_refines` at each cut.
//!
//! The run fails if zero-copy does not save at least 40% host
//! cycles/I/O at QD32, if the QD1/QD32 IOPS leave the Figure-5 regimes
//! by more than 5%, or if any power-cut point fails the refinement
//! check.

use atmo_apps::{LogKv, MAX_KV_LEN};
use atmo_bench::{fmt_kiops, render_table};
use atmo_drivers::nvme::{
    run_closed_loop_zc, IoKind, NvmeDevice, NvmeDriver, NvmeSpec, NvmeZcQueue,
};
use atmo_drivers::{BlkBuf, BlkPool, DriverCosts, BLK_SLOT_SIZE};
use atmo_hw::cycles::{CostModel, CycleMeter};
use atmo_kernel::refine::recovery_refines;
use atmo_kernel::{
    BlkOp, Kernel, KernelConfig, SmpKernel, SyscallArgs, BLK_DEVICE_ID, BLK_SQ_CAPACITY,
};
use atmo_mem::DmaWindow;
use atmo_spec::harness::Invariant;
use atmo_spec::storage::AbstractKv;
use atmo_spec::XorShift64Star;
use atmo_trace::{trace_wf, TraceSink};

const FREQ: u64 = 2_200_000_000;
const QD: usize = 32;
const POOL_SLOTS: usize = 64;

/// One measured closed-loop configuration.
struct RunStats {
    ios: u64,
    /// Host busy cycles: total minus cycles spent waiting on the device.
    host_cycles: u64,
    iops: f64,
}

impl RunStats {
    fn host_per_io(&self) -> f64 {
        self.host_cycles as f64 / self.ios as f64
    }
}

fn device() -> NvmeDevice {
    NvmeDevice::new(NvmeSpec::p3700(FREQ))
}

/// The copying baseline at queue depth `qd`: per-I/O driver cost plus an
/// allocation and a full 4 KiB payload copy, tracking device-wait cycles
/// separately so the host share is measurable.
fn run_copying(kind: IoKind, qd: usize, total: u64, costs: &CostModel) -> RunStats {
    let mut drv = NvmeDriver::new(device(), DriverCosts::atmosphere());
    let mut meter = CycleMeter::new();
    let extra = costs.heap_alloc + (BLK_SLOT_SIZE as u64 / 64) * costs.copy_cacheline;
    let mut waited = 0u64;
    let mut completed = 0u64;
    drv.submit_batch(&mut meter, kind, qd);
    meter.charge(extra * qd as u64);
    while completed < total {
        meter.charge(extra / 4); // polling loop body
        waited += drv.device.cycles_until_completion(meter.now()).unwrap_or(0);
        let done = drv.wait_completions(&mut meter);
        completed += done;
        if done > 0 {
            drv.submit_batch(&mut meter, kind, done as usize);
            meter.charge(extra * done);
        }
    }
    RunStats {
        ios: completed,
        host_cycles: meter.now() - waited,
        iops: completed as f64 * FREQ as f64 / meter.now() as f64,
    }
}

/// The zero-copy batched ring at queue depth `qd`: handles cycle
/// acquire → submit → reap → resubmit with the payload refilled in
/// place; wait cycles tracked separately.
fn run_zerocopy(kind: IoKind, qd: usize, total: u64) -> RunStats {
    let mut q = NvmeZcQueue::new(device(), DriverCosts::atmosphere());
    let mut pool = BlkPool::anonymous(POOL_SLOTS);
    let mut meter = CycleMeter::new();
    let mut waited = 0u64;
    let mut completed = 0u64;
    let first: Vec<BlkBuf> = (0..qd)
        .map(|_| pool.try_acquire().expect("pool sized above QD"))
        .collect();
    q.submit_batch_zc(&mut meter, kind, first);
    let mut reaped: Vec<BlkBuf> = Vec::with_capacity(qd);
    while completed < total {
        waited += q.device.cycles_until_completion(meter.now()).unwrap_or(0);
        let done = q.wait_reap_zc(&mut meter, &mut reaped);
        completed += done;
        if done > 0 {
            let resubmit = std::mem::take(&mut reaped);
            q.submit_batch_zc(&mut meter, kind, resubmit);
        }
    }
    while q.queue_depth() > 0 {
        waited += q.device.cycles_until_completion(meter.now()).unwrap_or(0);
        q.wait_reap_zc(&mut meter, &mut reaped);
    }
    for buf in reaped {
        pool.release(buf);
    }
    assert_eq!(pool.in_flight(), 0, "every handle returned");
    assert_eq!(pool.exhausted(), 0, "pool sized for the queue depth");
    assert!(pool.is_wf(), "{:?}", pool.wf());
    RunStats {
        ios: completed,
        host_cycles: meter.now() - waited,
        iops: completed as f64 * FREQ as f64 / meter.now() as f64,
    }
}

/// Kernel-backed ring audit: `NPAGES` frames are mmapped, DMA-pinned
/// through the IOMMU for the block device, unmapped from the process
/// (the pin keeps them live), wrapped into a [`BlkPool`] — then the
/// real `BlkSubmitBatch`/`BlkReapBatch` syscalls drive the in-kernel
/// queue pair on the sharded SMP kernel with blocking reaps (completion
/// wakeups ride the Call/ReplyRecv fast-path cost). `audit_total_wf`
/// (stop-the-world, under `with_kernel`) checks the whole invariant
/// stack — including the blk queue-pair ordering/ledger equations now
/// folded into `mem_domain_wf` — at pin, in service, and at teardown.
fn kernel_backed_ring_audit(rounds: usize) {
    const VA: usize = 0x4000_0000;
    const IOVA: usize = 0x10_0000;
    const NPAGES: usize = POOL_SLOTS;
    let smp = SmpKernel::new(Kernel::boot(KernelConfig {
        mem_mib: 64,
        ncpus: 2,
        root_quota: 2048,
    }));
    let ok = |args: SyscallArgs| {
        let r = smp.syscall(0, args.clone());
        assert!(r.is_ok(), "{args:?} failed: {r:?}");
        r.val0()
    };
    ok(SyscallArgs::Mmap {
        va_base: VA,
        len: NPAGES,
        writable: true,
    });
    let dom = ok(SyscallArgs::IommuCreateDomain) as u32;
    ok(SyscallArgs::IommuAttach {
        domain: dom,
        device: BLK_DEVICE_ID,
    });
    for i in 0..NPAGES {
        ok(SyscallArgs::IommuMap {
            domain: dom,
            iova: IOVA + i * 0x1000,
            va: VA + i * 0x1000,
        });
    }
    let frames: Vec<usize> = smp.with_kernel(|k| {
        let as_id = k.pm.proc(k.init_proc).addr_space;
        (0..NPAGES)
            .map(|i| {
                k.mem
                    .vm
                    .table(as_id)
                    .unwrap()
                    .map_4k
                    .index(&(VA + i * 0x1000))
                    .unwrap()
                    .frame
            })
            .collect()
    });
    // The process unmaps its window; the DMA pin alone keeps every
    // frame alive and inside the leak-freedom closure.
    ok(SyscallArgs::Munmap {
        va_base: VA,
        len: NPAGES,
    });
    let audit = smp.audit_total_wf();
    assert!(audit.is_ok(), "pinned ring pages break total_wf: {audit:?}");

    let mut pool = BlkPool::from_window(DmaWindow::new(IOVA, frames));
    let mut in_flight: Vec<BlkBuf> = Vec::new();
    let (mut submitted, mut reaped_total) = (0u64, 0u64);
    for round in 0..rounds {
        let batch = (round % (BLK_SQ_CAPACITY / 2)) + 1;
        let bufs: Vec<BlkBuf> = (0..batch).filter_map(|_| pool.try_acquire()).collect();
        let ops: Vec<BlkOp> = bufs
            .iter()
            .map(|b| BlkOp {
                cookie: b.slot() as u64,
                iova: pool.iova_of(b),
                lba: (submitted + b.slot() as u64) % 4096,
                write: round % 3 == 0,
            })
            .collect();
        let n = ops.len() as u64;
        let r = smp.syscall(0, SyscallArgs::BlkSubmitBatch { queue: 0, ops });
        assert!(r.is_ok(), "submit failed: {r:?}");
        assert_eq!(r.val0(), n, "every op accepted");
        submitted += n;
        in_flight.extend(bufs);

        // Blocking reap: the kernel parks the thread and charges the
        // fast-path wakeup when nothing has completed yet.
        while !in_flight.is_empty() {
            let r = smp.syscall(
                0,
                SyscallArgs::BlkReapBatch {
                    queue: 0,
                    max: BLK_SQ_CAPACITY,
                    wait: true,
                },
            );
            assert!(r.is_ok(), "reap failed: {r:?}");
            let cookies = smp.with_kernel(|k| k.mem.blk.queues[0].drain_reaped());
            assert_eq!(
                cookies.len() as u64,
                r.val0(),
                "CQ ring drains what reap returned"
            );
            reaped_total += cookies.len() as u64;
            for cookie in cookies {
                let pos = in_flight
                    .iter()
                    .position(|b| b.slot() as u64 == cookie)
                    .expect("reaped cookie matches an in-flight handle");
                pool.release(in_flight.swap_remove(pos));
            }
        }
    }
    assert_eq!(submitted, reaped_total, "ring drained");
    assert_eq!(pool.in_flight(), 0);
    assert_eq!(pool.acquired(), submitted);
    assert!(pool.is_wf(), "{:?}", pool.wf());

    // The blk ledger balances under the stop-the-world audit and in the
    // merged trace: acquired == released + in_flight, reaps ≤ submits.
    let audit = smp.audit_total_wf();
    assert!(audit.is_ok(), "ring in service: {audit:?}");
    let snap = smp.trace_snapshot();
    assert_eq!(snap.counters.blk.submit_ios, submitted);
    assert_eq!(snap.counters.blk.reap_ios, submitted);
    assert_eq!(snap.blk_in_flight, 0, "trace gauge balanced");
    assert!(
        snap.counters.blk.wakeups > 0,
        "blocking reaps parked at least once"
    );
    let (qp_submitted, qp_reaped) = smp.with_kernel(|k| {
        let q = &k.mem.blk.queues[0];
        (q.submitted(), q.reaped())
    });
    assert_eq!(qp_submitted, submitted);
    assert_eq!(qp_reaped, submitted);

    // Teardown: reclaim the frames, unpin each from the IOMMU (the last
    // reference), and audit that nothing leaked.
    let window = pool.into_window().expect("kernel-backed pool has a window");
    let frames = window.into_frames();
    for i in 0..NPAGES {
        ok(SyscallArgs::IommuUnmap {
            domain: dom,
            iova: IOVA + i * 0x1000,
        });
    }
    smp.with_kernel(|k| {
        for &f in &frames {
            assert!(k.mem.alloc.page_is_free(f), "frame returned on unpin");
        }
    });
    ok(SyscallArgs::IommuDetach {
        device: BLK_DEVICE_ID,
    });
    let audit = smp.audit_total_wf();
    assert!(audit.is_ok(), "teardown: {audit:?}");
    smp.with_kernel(|k| assert!(k.mem.alloc.mapped_pages().is_empty(), "no frames leaked"));
    println!(
        "kernel-backed ring: {NPAGES} DMA-pinned slots, {submitted} I/Os through \
         BlkSubmitBatch/BlkReapBatch ({} wakeups), blk ledger balanced, \
         audit_total_wf green at pin, in service, and after teardown.",
        snap.counters.blk.wakeups
    );
}

/// Power-cut the log-structured kv-store at every record boundary and at
/// random mid-record offsets; every cut must recover to a state that
/// refines the abstract map of the committed prefix.
fn power_cut_recovery() -> (usize, usize) {
    let mut rng = XorShift64Star::new(0x5eed_b10c);
    let mut kv = LogKv::new(256, 1024);
    let mut shadow = AbstractKv::new();
    use atmo_spec::storage::KvOp;
    for i in 0..300u32 {
        let mut key = vec![b'b'];
        key.extend_from_slice(&(rng.below(32) as u32).to_le_bytes());
        if rng.chance(1, 5) {
            if kv.delete(&key) {
                shadow.apply(&KvOp::Delete(key));
            }
        } else {
            let value = vec![(i % 251) as u8; rng.below(MAX_KV_LEN + 1)];
            if kv.set(&key, &value) {
                shadow.apply(&KvOp::Set(key, value));
            }
        }
    }
    let image = kv.log_image();
    let ends = LogKv::record_ends(&image);
    assert_eq!(*ends.last().unwrap(), image.len(), "log parses to its end");

    let mut cuts = 0usize;
    let mut check = |cut: usize| {
        let truncated = &image[..cut];
        let committed = AbstractKv::from_ops(&LogKv::committed_prefix(truncated));
        let (recovered, _) = LogKv::recover(truncated, 256, 1024);
        recovery_refines(&committed, &recovered.entries())
            .unwrap_or_else(|e| panic!("power cut at byte {cut}: {e}"));
        cuts += 1;
    };
    for &cut in &ends {
        check(cut);
    }
    for _ in 0..256 {
        check(rng.below(image.len() + 1));
    }
    // The untruncated log recovers to the independently-tracked shadow.
    let (recovered, _) = LogKv::recover(&image, 256, 1024);
    recovery_refines(&shadow, &recovered.entries()).expect("full-image recovery");
    assert!(kv.compactions() > 0, "workload exercised segment GC");
    (cuts, ends.len() - 1)
}

fn main() {
    let total: u64 = std::env::var("BLK_ZC_ROUNDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20_000);
    let costs = CostModel::c220g5();
    let spec = NvmeSpec::p3700(FREQ);

    // One traced zero-copy pass first: the sink's blk ledger
    // (`acquired == released + in_flight`, `reap_ios <= submit_ios`)
    // must balance under trace_wf.
    let sink = TraceSink::new(4, 4096);
    {
        let mut q = NvmeZcQueue::new(device(), DriverCosts::atmosphere());
        let mut pool = BlkPool::anonymous(POOL_SLOTS);
        q.attach_trace(sink.clone());
        pool.attach_trace(sink.clone());
        let mut meter = CycleMeter::new();
        let traced = total.min(2_000);
        run_closed_loop_zc(&mut q, &mut pool, &mut meter, IoKind::Read, QD, traced);
        trace_wf(&sink).expect("blk ledger balances");
        let snap = sink.snapshot();
        assert_eq!(snap.counters.blk.pool_acquired, QD as u64);
        assert_eq!(snap.counters.blk.pool_released, QD as u64);
        assert_eq!(snap.blk_in_flight, 0);
        assert!(snap.counters.blk.submit_ios >= traced);
        assert_eq!(snap.counters.blk.pool_exhausted, 0);
    }

    let copy_qd1 = run_copying(IoKind::Read, 1, total / 8, &costs);
    let copy_qd32 = run_copying(IoKind::Read, QD, total, &costs);
    let copy_w32 = run_copying(IoKind::Write, QD, total, &costs);
    let zc_qd1 = run_zerocopy(IoKind::Read, 1, total / 8);
    let zc_qd32 = run_zerocopy(IoKind::Read, QD, total);
    let zc_w32 = run_zerocopy(IoKind::Write, QD, total);

    let savings = 1.0 - zc_qd32.host_per_io() / copy_qd32.host_per_io();
    let row = |qd: &str, kind: &str, mode: &str, s: &RunStats, save: String| {
        vec![
            qd.into(),
            kind.into(),
            mode.into(),
            format!("{:.0}", s.host_per_io()),
            fmt_kiops(s.iops),
            save,
        ]
    };
    let rows = vec![
        row("1", "read", "copying", &copy_qd1, String::new()),
        row("1", "read", "zero-copy", &zc_qd1, String::new()),
        row("32", "read", "copying", &copy_qd32, String::new()),
        row(
            "32",
            "read",
            "zero-copy",
            &zc_qd32,
            format!("{:.1}%", savings * 100.0),
        ),
        row("32", "write", "copying", &copy_w32, String::new()),
        row("32", "write", "zero-copy", &zc_w32, String::new()),
    ];
    print!(
        "{}",
        render_table(
            &format!(
                "Zero-copy block datapath, P3700 model \
                 ({total} I/Os closed-loop, modeled c220g5 cycles)"
            ),
            &["QD", "Kind", "Mode", "Host cyc/IO", "KIOPS", "Savings"],
            &rows,
        )
    );
    println!();
    println!(
        "steady path: 0 heap allocations, 0 payload copies; trace_wf ok on \
         the traced pass (pool ledger acquired == released, exhausted == 0)"
    );
    println!();
    kernel_backed_ring_audit((total / 400).clamp(8, 200) as usize);
    println!();
    let (cuts, records) = power_cut_recovery();
    println!(
        "crash consistency: {records} committed records, {cuts} power-cut points \
         (every record boundary + 256 random mid-record cuts) all recover \
         refined against the committed prefix."
    );
    println!();
    println!(
        "zero-copy batched rings save {:.1}% host cycles/I/O at QD32 \
         (acceptance: >= 40%); QD1 {} vs QD32 {} KIOPS reproduce the \
         latency-bound/service-rate-bound regimes.",
        savings * 100.0,
        fmt_kiops(zc_qd1.iops),
        fmt_kiops(zc_qd32.iops),
    );

    // Acceptance: the zero-copy rework must be a >= 40% host-cycle win
    // at QD32, and both paths must sit on the Figure-5 closed-loop
    // curve within 5%: `qd * freq / max(latency, qd * service)` — QD1
    // latency-bound (~13K), QD32 bound by whichever of the latency
    // pipe and the device service chain saturates first.
    assert!(
        savings >= 0.40,
        "zero-copy must save >= 40% host cycles/I/O, got {:.1}%",
        savings * 100.0
    );
    let curve =
        |qd: u64, lat: u64, service: u64| qd as f64 * FREQ as f64 / lat.max(qd * service) as f64;
    let qd1_bound = curve(1, spec.read_latency, spec.read_service);
    let qd32_bound = curve(QD as u64, spec.read_latency, spec.read_service);
    for (name, s, bound) in [
        ("zc QD1", &zc_qd1, qd1_bound),
        ("copying QD1", &copy_qd1, qd1_bound),
        ("zc QD32", &zc_qd32, qd32_bound),
        ("copying QD32", &copy_qd32, qd32_bound),
    ] {
        assert!(
            (s.iops - bound).abs() / bound < 0.05,
            "{name} off the Figure-5 curve: {:.0} vs bound {:.0}",
            s.iops,
            bound
        );
    }
    assert!(
        (12_000.0..14_000.0).contains(&zc_qd1.iops),
        "QD1 must land near 13K IOPS: {:.0}",
        zc_qd1.iops
    );
    let w_bound = curve(
        QD as u64,
        spec.write_latency,
        spec.write_service + DriverCosts::atmosphere().nvme_write_extra,
    );
    assert!(
        (zc_w32.iops - w_bound).abs() / w_bound < 0.05,
        "QD32 writes off the penalty-bound curve: {:.0} vs {:.0}",
        zc_w32.iops,
        w_bound
    );
    assert!(
        zc_w32.iops < zc_qd32.iops,
        "writes must trail reads at QD32"
    );
}
