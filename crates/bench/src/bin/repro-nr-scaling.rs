//! Reproduces the **node-replication read scaling** experiment:
//! aggregate throughput of the replicated read path (`getpid`,
//! `thread_lookup`, `descriptor_resolve`, `vm_resolve` served from
//! per-CPU replicas over the flat-combining op log) vs the locked
//! fallback path, at 1–16 CPUs.
//!
//! Two workload mixes, both per-CPU-disjoint and run as a
//! deterministic discrete-event simulation (smallest modeled clock
//! issues next):
//!
//! * **read-mostly** — 48 replicated reads + 1 yield per round, plus a
//!   single-page `mmap`/`munmap` pair every 8th round (so the logs
//!   carry real update traffic and readers actually replay). With
//!   replication on, a read touches no domain lock and *no domain
//!   model clock*, so reader CPUs advance independently; with it off,
//!   every read serializes through the pm domain's release timestamp.
//! * **write-heavy** — the smp-scaling mix (even CPUs map/unmap, odd
//!   CPUs yield), replication on vs off: the log appends ride the
//!   already-locked write path, so the overhead must stay under 5%.
//!
//! Epoch checks run throughout: the incremental audit every
//! `AUDIT_EVERY` ops and the stop-the-world `audit_total_wf` (replica
//! linearization + bit-for-bit replica-vs-projection cross-check +
//! `NrAppended` ledger balance) at every run boundary.
//!
//! Acceptance: replicated read-mostly aggregate throughput >= 6x the
//! 1-CPU baseline at 8 CPUs and >= 10x at 16; write-heavy replication
//! overhead <= 5%; every audit green.

use std::collections::VecDeque;

use atmo_bench::render_table;
use atmo_hw::cycles::CpuProfile;
use atmo_kernel::smp::SmpKernel;
use atmo_kernel::{Kernel, KernelConfig, SyscallArgs};

/// Replicated reads per round in the read-mostly mix.
const READS_PER_ROUND: usize = 48;

/// A map/unmap pair lands every this-many rounds in the read-mostly
/// mix, keeping the op logs warm under the readers.
const WRITE_EVERY: usize = 8;

/// Incremental-audit cadence (ops) during the DES loop.
const AUDIT_EVERY: u64 = 512;

/// Per-CPU VA arenas never overlap.
fn va_arena(cpu: usize) -> usize {
    0x4000_0000 + cpu * 0x100_0000
}

/// Boots a kernel with one runnable thread per CPU (its own container
/// and process; CPU 0 keeps the init thread), each with an endpoint
/// descriptor in slot 0 so `descriptor_resolve` has something to find.
/// Returns the flat kernel plus the per-CPU thread ids.
fn boot(ncpus: usize) -> (Kernel, Vec<usize>) {
    let mut k = Kernel::boot(KernelConfig {
        mem_mib: 64,
        ncpus,
        root_quota: 16384,
    });
    let mut threads = vec![k.init_thread];
    for cpu in 1..ncpus {
        let c = k
            .syscall(
                0,
                SyscallArgs::NewContainer {
                    quota: 512,
                    cpus: vec![cpu],
                },
            )
            .val0() as usize;
        let p = k.syscall(0, SyscallArgs::NewProcess { cntr: c }).val0() as usize;
        let r = k.syscall(0, SyscallArgs::NewThread { proc: p, cpu });
        assert!(r.is_ok(), "setup thread for cpu {cpu}: {r:?}");
        threads.push(r.val0() as usize);
        k.pm.timer_tick(cpu);
    }
    for cpu in 0..ncpus {
        let r = k.syscall(cpu, SyscallArgs::NewEndpoint { slot: 0 });
        assert!(r.is_ok(), "setup endpoint for cpu {cpu}: {r:?}");
    }
    (k, threads)
}

/// The read-mostly op list for one CPU.
fn read_mostly_ops(cpu: usize, thread: usize, rounds: usize) -> VecDeque<SyscallArgs> {
    let base = va_arena(cpu);
    let mut ops = VecDeque::new();
    for round in 0..rounds {
        for i in 0..READS_PER_ROUND {
            ops.push_back(match i % 4 {
                0 => SyscallArgs::Getpid,
                1 => SyscallArgs::ThreadLookup { thread },
                2 => SyscallArgs::DescriptorResolve { slot: 0 },
                _ => SyscallArgs::VmResolve {
                    va: base + (round % WRITE_EVERY) * 0x1000,
                },
            });
        }
        ops.push_back(SyscallArgs::Yield);
        if round % WRITE_EVERY == 0 {
            let va_base = base + round * 0x1000;
            ops.push_back(SyscallArgs::Mmap {
                va_base,
                len: 1,
                writable: true,
            });
            ops.push_back(SyscallArgs::Munmap { va_base, len: 1 });
        }
    }
    ops
}

/// The write-heavy op list (the smp-scaling mix): even CPUs map+unmap
/// one page per round, odd CPUs yield 8 times per round.
fn write_heavy_ops(cpu: usize, rounds: usize) -> VecDeque<SyscallArgs> {
    let base = va_arena(cpu);
    let mut ops = VecDeque::new();
    for round in 0..rounds {
        if cpu.is_multiple_of(2) {
            let va_base = base + round * 0x1000;
            ops.push_back(SyscallArgs::Mmap {
                va_base,
                len: 1,
                writable: true,
            });
            ops.push_back(SyscallArgs::Munmap { va_base, len: 1 });
        } else {
            for _ in 0..8 {
                ops.push_back(SyscallArgs::Yield);
            }
        }
    }
    ops
}

struct RunStats {
    ops: u64,
    max_cycles: u64,
    read_local: u64,
    fallback_locked: u64,
    replayed: u64,
}

/// Deterministic DES over per-CPU queues with periodic incremental
/// audits and a closing stop-the-world epoch audit.
fn run(k: &SmpKernel, mut queues: Vec<VecDeque<SyscallArgs>>) -> RunStats {
    let ncpus = queues.len();
    let mut ops = 0u64;
    loop {
        let next = (0..ncpus)
            .filter(|&c| !queues[c].is_empty())
            .min_by_key(|&c| k.cycles(c));
        let Some(cpu) = next else { break };
        let args = queues[cpu].pop_front().expect("non-empty queue");
        let r = k.syscall(cpu, args);
        assert!(r.is_ok(), "cpu {cpu}: {r:?}");
        ops += 1;
        if ops.is_multiple_of(AUDIT_EVERY) {
            let audit = k.audit_incremental();
            assert!(audit.is_ok(), "incremental audit failed: {audit:?}");
        }
    }
    let audit = k.audit_total_wf();
    assert!(audit.is_ok(), "epoch total_wf audit failed: {audit:?}");
    let nr = k.trace_snapshot().counters.nr;
    RunStats {
        ops,
        max_cycles: (0..ncpus).map(|c| k.cycles(c)).max().unwrap_or(0),
        read_local: nr.read_local,
        fallback_locked: nr.fallback_locked,
        replayed: nr.replayed,
    }
}

fn mops_per_sec(stats: &RunStats, profile: &CpuProfile) -> f64 {
    stats.ops as f64 / profile.cycles_to_seconds(stats.max_cycles) / 1e6
}

/// Boots a sharded kernel (replication on or off) and runs one mix.
fn run_mix(ncpus: usize, rounds: usize, replicated: bool, read_mostly: bool) -> RunStats {
    let (kernel, threads) = boot(ncpus);
    let k = SmpKernel::new(kernel);
    if replicated {
        k.enable_nr();
    }
    k.enable_incremental_audit();
    let queues = (0..ncpus)
        .map(|c| {
            if read_mostly {
                read_mostly_ops(c, threads[c], rounds)
            } else {
                write_heavy_ops(c, rounds)
            }
        })
        .collect();
    run(&k, queues)
}

fn main() {
    let rounds: usize = std::env::var("NR_SCALING_ROUNDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(40);
    let profile = CpuProfile::c220g5();

    // ---- read-mostly: replicated vs locked, 1..16 CPUs -------------
    let mut rows = Vec::new();
    let mut base_tp = 0.0;
    let mut speedup_at = std::collections::BTreeMap::new();
    for ncpus in [1usize, 2, 4, 8, 16] {
        let locked = run_mix(ncpus, rounds, false, true);
        let locked_tp = mops_per_sec(&locked, &profile);
        let repl = run_mix(ncpus, rounds, true, true);
        let repl_tp = mops_per_sec(&repl, &profile);
        if ncpus == 1 {
            base_tp = repl_tp;
        }
        let speedup = repl_tp / base_tp;
        speedup_at.insert(ncpus, speedup);
        assert_eq!(
            locked.read_local, 0,
            "replication off must never serve a replica read"
        );
        assert_eq!(
            repl.fallback_locked, 0,
            "replication on must never fall back on this mix"
        );
        for (name, stats, tp, sp) in [
            ("locked", &locked, locked_tp, String::new()),
            ("replicated", &repl, repl_tp, format!("{speedup:.2}x")),
        ] {
            rows.push(vec![
                format!("{ncpus}"),
                name.to_string(),
                format!("{}", stats.ops),
                format!("{}", stats.read_local),
                format!("{}", stats.replayed),
                format!("{}k", stats.max_cycles / 1000),
                format!("{tp:.2}"),
                sp,
            ]);
        }
    }
    print!(
        "{}",
        render_table(
            &format!(
                "NR read scaling: locked vs per-CPU replicas \
                 ({rounds} rounds, {READS_PER_ROUND} reads/round, modeled c220g5 cycles)"
            ),
            &[
                "CPUs",
                "Reads via",
                "Ops",
                "Replica reads",
                "Replayed",
                "Longest CPU",
                "Mops/s",
                "Speedup vs 1-CPU",
            ],
            &rows,
        )
    );
    println!();

    // ---- write-heavy: replication overhead on the locked path ------
    let mut wrows = Vec::new();
    let mut worst_ratio = f64::INFINITY;
    for ncpus in [4usize, 16] {
        let off = run_mix(ncpus, rounds, false, false);
        let off_tp = mops_per_sec(&off, &profile);
        let on = run_mix(ncpus, rounds, true, false);
        let on_tp = mops_per_sec(&on, &profile);
        let ratio = on_tp / off_tp;
        worst_ratio = worst_ratio.min(ratio);
        wrows.push(vec![
            format!("{ncpus}"),
            format!("{off_tp:.2}"),
            format!("{on_tp:.2}"),
            format!("{:.1}%", (1.0 - ratio) * 100.0),
        ]);
    }
    print!(
        "{}",
        render_table(
            &format!("NR write-heavy overhead ({rounds} rounds, smp-scaling mix)"),
            &["CPUs", "NR off Mops/s", "NR on Mops/s", "Overhead"],
            &wrows,
        )
    );
    println!();
    println!(
        "read-mostly mix: {READS_PER_ROUND} replicated reads + 1 yield per round, \
         mmap+munmap every {WRITE_EVERY}th round;"
    );
    println!(
        "audits: incremental every {AUDIT_EVERY} ops, stop-the-world epoch \
         (replica linearization + bit-for-bit cross-check + NrAppended balance) per run."
    );
    let s8 = speedup_at[&8];
    let s16 = speedup_at[&16];
    println!(
        "replicated read speedup: {s8:.2}x @ 8 CPUs (acceptance >= 6x), \
         {s16:.2}x @ 16 CPUs (acceptance >= 10x); \
         write-heavy overhead {:.1}% (acceptance <= 5%)",
        (1.0 - worst_ratio) * 100.0
    );
    assert!(s8 >= 6.0, "need >= 6x at 8 CPUs, got {s8:.2}x");
    assert!(s16 >= 10.0, "need >= 10x at 16 CPUs, got {s16:.2}x");
    assert!(
        worst_ratio >= 0.95,
        "write-heavy replication overhead above 5%: ratio {worst_ratio:.3}"
    );
}
