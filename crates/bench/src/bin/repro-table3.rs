//! Reproduces **Table 3**: latency of IPC call/reply and the map-a-page
//! system call (cycles), Atmosphere vs seL4. The Atmosphere numbers are
//! measured from the simulated kernel's cycle meters; the seL4 numbers
//! are the published baselines.

use atmo_baselines::{SEL4_CALL_REPLY_CYCLES, SEL4_MAP_PAGE_CYCLES};
use atmo_bench::{
    measure_call_reply_cycles, measure_call_reply_fastpath_cycles, measure_map_page_cycles,
    render_table,
};

fn main() {
    let call_reply = measure_call_reply_cycles();
    let call_reply_fast = measure_call_reply_fastpath_cycles();
    let map_page = measure_map_page_cycles();
    let rows = vec![
        vec![
            "Call/reply".to_string(),
            call_reply.to_string(),
            SEL4_CALL_REPLY_CYCLES.to_string(),
        ],
        vec![
            "Call/reply (fastpath)".to_string(),
            call_reply_fast.to_string(),
            "-".to_string(),
        ],
        vec![
            "Map a page".to_string(),
            map_page.to_string(),
            SEL4_MAP_PAGE_CYCLES.to_string(),
        ],
    ];
    print!(
        "{}",
        render_table(
            "Table 3: Latency of communication and typical system calls (cycles)",
            &["System call", "Atmosphere", "seL4"],
            &rows,
        )
    );
    println!(
        "\npaper: call/reply 1058 vs 1026; map a page 1984 vs 2650 (calls not strictly equivalent)"
    );
    println!(
        "fastpath row: this reproduction's direct-handoff Call/ReplyRecv (not in the paper); \
         see repro-ipc-fastpath for the full study"
    );
}
