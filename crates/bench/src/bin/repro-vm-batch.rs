//! Reproduces the **batched VM datapath** experiment: modeled cycles
//! for `Mmap`/`Munmap` with the batched datapath (walk-cached fills,
//! 2 MiB superpage promotion, one deferred TLB shootdown per call) vs
//! the original per-page path (full walk + ledger update + TLB
//! invalidation for every page).
//!
//! Three deterministic scenarios, each run in both modes on separate
//! kernels executing the identical syscall script:
//!
//! * **run-512** — a 512-page `Mmap` of a fresh 2 MiB-aligned run (the
//!   promotion sweet spot: one L2 leaf write instead of 512 L1 fills),
//!   then a full `Munmap` (demotion + walk-cached teardown);
//! * **httpd-warmup** — an mmap-heavy server warmup: 48 small
//!   request/arena buffers (1–31 pages, never promotion-eligible) mapped
//!   and torn down per round, driven as a discrete-event simulation on
//!   two CPUs (the warmup thread interleaves with scheduler churn on the
//!   second CPU, exactly like `repro-smp-scaling`);
//! * **maglev-buffers** — the load balancer's flow-table backing store:
//!   one 2048-page (8 MiB) mapping, promoted as four superpages.
//!
//! Every run ends in a well-formedness audit (`total_wf` on the sharded
//! kernel). The run fails if the batched path does not save at least
//! 40% of the modeled cycles for the 512-page `Mmap`, or if the Table 3
//! per-page anchor ("map a page") drifted from 1984 cycles.

use std::collections::VecDeque;

use atmo_bench::{measure_map_page_cycles, render_table};
use atmo_hw::cycles::{CostModel, CpuProfile};
use atmo_kernel::smp::SmpKernel;
use atmo_kernel::{Kernel, KernelConfig, SyscallArgs};
use atmo_spec::harness::Invariant;

const PAGE_4K: usize = 0x1000;
const PAGE_2M: usize = 0x20_0000;

fn boot(batch: bool) -> Kernel {
    let mut k = Kernel::boot(KernelConfig {
        mem_mib: 64,
        ncpus: 1,
        root_quota: 8192,
    });
    k.mem.vm.set_batch(batch);
    k
}

/// Steady-state cycles per round for one mode of one scenario, plus the
/// VM telemetry the batched path accumulated along the way.
struct ModeStats {
    mmap_cycles: f64,
    munmap_cycles: f64,
    batch_hits: u64,
    promotions: u64,
    demotions: u64,
    shootdowns_deferred: u64,
    shootdowns_flushed: u64,
}

fn vm_stats(k: &Kernel, mmap_cycles: f64, munmap_cycles: f64) -> ModeStats {
    let vm = k.trace_snapshot().counters.vm;
    ModeStats {
        mmap_cycles,
        munmap_cycles,
        batch_hits: vm.map_batch_hits,
        promotions: vm.superpage_promotions,
        demotions: vm.superpage_demotions,
        shootdowns_deferred: vm.tlb_shootdowns_deferred,
        shootdowns_flushed: vm.tlb_shootdowns_flushed,
    }
}

/// A large contiguous mapping, `npages` per round at a fresh 2 MiB-
/// aligned base (demotion leaves an L1 table under the old slot, so
/// reusing a VA would measure the fallback, not steady-state promotion).
fn run_contiguous(rounds: usize, npages: usize, base: usize, batch: bool) -> ModeStats {
    let mut k = boot(batch);
    let span = (npages * PAGE_4K).next_multiple_of(PAGE_2M);
    let (mut mmap_cy, mut munmap_cy) = (0u64, 0u64);
    for round in 0..rounds {
        let va_base = base + round * span;
        let start = k.cycles(0);
        let r = k.syscall(
            0,
            SyscallArgs::Mmap {
                va_base,
                len: npages,
                writable: true,
            },
        );
        assert!(r.is_ok(), "mmap round {round}: {r:?}");
        let mid = k.cycles(0);
        let r = k.syscall(
            0,
            SyscallArgs::Munmap {
                va_base,
                len: npages,
            },
        );
        assert!(r.is_ok(), "munmap round {round}: {r:?}");
        mmap_cy += mid - start;
        munmap_cy += k.cycles(0) - mid;
    }
    let wf = k.wf();
    assert!(wf.is_ok(), "total_wf failed: {wf:?}");
    vm_stats(
        &k,
        mmap_cy as f64 / rounds as f64,
        munmap_cy as f64 / rounds as f64,
    )
}

/// The httpd warmup allocation script: 48 buffers of 1–31 pages
/// (deterministic sizes, none promotion-eligible), 64-page spaced so
/// neighbouring buffers share page tables but never overlap.
fn httpd_buffers() -> Vec<(usize, usize)> {
    (0..48)
        .map(|i| (0x4000_0000 + i * 64 * PAGE_4K, (i * 7) % 31 + 1))
        .collect()
}

/// The httpd warmup as a two-CPU discrete-event simulation: CPU 0 maps
/// and tears down the buffer set each round while CPU 1 runs scheduler
/// churn; the pending CPU with the smallest modeled clock always issues
/// next, so interleaving is deterministic.
fn run_httpd(rounds: usize, batch: bool) -> ModeStats {
    let mut k = Kernel::boot(KernelConfig {
        mem_mib: 64,
        ncpus: 2,
        root_quota: 8192,
    });
    k.mem.vm.set_batch(batch);
    let init_proc = k.init_proc;
    let r = k.syscall(
        0,
        SyscallArgs::NewThread {
            proc: init_proc,
            cpu: 1,
        },
    );
    assert!(r.is_ok(), "churn thread: {r:?}");
    k.pm.timer_tick(1);
    let k = SmpKernel::new(k);

    let buffers = httpd_buffers();
    let mut warmup = VecDeque::new();
    let mut churn = VecDeque::new();
    for _ in 0..rounds {
        for &(va_base, len) in &buffers {
            warmup.push_back(SyscallArgs::Mmap {
                va_base,
                len,
                writable: true,
            });
        }
        for &(va_base, len) in &buffers {
            warmup.push_back(SyscallArgs::Munmap { va_base, len });
        }
        for _ in 0..8 {
            churn.push_back(SyscallArgs::Yield);
        }
    }
    let mmap_ops = rounds * buffers.len();

    let start = k.cycles(0);
    let mut queues = [warmup, churn];
    loop {
        let next = [0usize, 1]
            .into_iter()
            .filter(|&c| !queues[c].is_empty())
            .min_by_key(|&c| k.cycles(c));
        let Some(cpu) = next else { break };
        let args = queues[cpu].pop_front().expect("non-empty queue");
        let r = k.syscall(cpu, args);
        assert!(r.is_ok(), "cpu {cpu}: {r:?}");
    }
    let audit = k.audit_total_wf();
    assert!(audit.is_ok(), "total_wf audit failed: {audit:?}");

    // CPU 0 alternates a full map pass and a full unmap pass per round;
    // attribute its modeled time to the two halves by the per-call cost
    // ratio observed on a probe round (mmap and munmap scripts are
    // symmetric per buffer, so per-op split is uniform).
    let total = (k.cycles(0) - start) as f64;
    let mut stats = k.with_kernel(|uk| vm_stats(uk, 0.0, 0.0));
    stats.mmap_cycles = total / (2 * mmap_ops) as f64;
    stats.munmap_cycles = total / (2 * mmap_ops) as f64;
    stats
}

fn main() {
    let rounds: usize = std::env::var("VM_BATCH_ROUNDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200);
    let profile = CpuProfile::c220g5();
    let costs = CostModel::c220g5();

    // Table 3 anchor: the paper's per-page "map a page" number must be
    // untouched by the batched datapath (which is measured separately
    // below).
    let anchor = measure_map_page_cycles();
    assert_eq!(anchor, 1984, "Table 3 per-page anchor drifted: {anchor}");

    type Scenario = (&'static str, fn(usize, bool) -> ModeStats);
    let scenarios: [Scenario; 3] = [
        ("run-512", |r, b| run_contiguous(r, 512, 0x4000_0000, b)),
        ("httpd-warmup", run_httpd),
        ("maglev-buffers", |r, b| {
            run_contiguous(r, 2048, 0x8000_0000, b)
        }),
    ];

    let mut rows = Vec::new();
    let mut savings_512_mmap = 0.0;
    for (name, run) in scenarios {
        let slow = run(rounds, false);
        let fast = run(rounds, true);
        let mmap_savings = 1.0 - fast.mmap_cycles / slow.mmap_cycles;
        let munmap_savings = 1.0 - fast.munmap_cycles / slow.munmap_cycles;
        if name == "run-512" {
            savings_512_mmap = mmap_savings;
        }
        assert_eq!(slow.batch_hits, 0, "per-page mode must not batch");
        assert_eq!(slow.promotions, 0, "per-page mode must not promote");
        assert!(
            fast.shootdowns_flushed <= fast.shootdowns_deferred,
            "shootdown ledger: flushed must not exceed deferred"
        );
        for (mode, stats, savings) in [
            ("per-page", &slow, None),
            ("batched", &fast, Some((mmap_savings, munmap_savings))),
        ] {
            rows.push(vec![
                name.to_string(),
                mode.to_string(),
                format!("{:.0}", stats.mmap_cycles),
                format!("{:.0}", stats.munmap_cycles),
                format!(
                    "{:.1}",
                    profile.cycles_to_seconds(stats.mmap_cycles as u64) * 1e6
                ),
                format!("{}", stats.batch_hits),
                format!("{}/{}", stats.promotions, stats.demotions),
                match savings {
                    Some((m, u)) => format!("{:.1}% / {:.1}%", m * 100.0, u * 100.0),
                    None => String::new(),
                },
            ]);
        }
    }
    print!(
        "{}",
        render_table(
            &format!(
                "Batched VM datapath vs per-page ({rounds} rounds/scenario, \
                 modeled c220g5 cycles)"
            ),
            &[
                "Scenario",
                "Mode",
                "Mmap cy/rd",
                "Munmap cy/rd",
                "us/mmap",
                "Batch hits",
                "Promo/demo",
                "Savings mm/unm",
            ],
            &rows,
        )
    );
    println!();
    println!(
        "cost model: per-page mmap body = {} cycles/page; batched fill = {} \
         (first page of an L1 run) then {} (walk-cached); promoted 2 MiB run = \
         {} once; one {}-cycle batched shootdown per call replaces {} cycles/page.",
        costs.page_alloc_4k
            + costs.quota_account
            + 3 * costs.pt_level_read
            + costs.pt_level_write
            + costs.page_state_update
            + costs.tlb_invalidate,
        costs.map_fill_first_page(),
        costs.map_fill_next_page(),
        costs.page_alloc_4k
            + 2 * costs.pt_level_read
            + costs.pt_level_write
            + costs.page_state_update,
        costs.tlb_shootdown_batch,
        costs.tlb_invalidate,
    );
    println!("Table 3 anchor unchanged: map a page (per-page path) = {anchor} cycles.");
    println!();
    println!(
        "batched savings for the 512-page Mmap: {:.1}% (acceptance: >= 40%; \
         total_wf audited after every run)",
        savings_512_mmap * 100.0
    );
    assert!(
        savings_512_mmap >= 0.40,
        "batched path must save >= 40% modeled cycles on the 512-page Mmap, \
         got {:.1}%",
        savings_512_mmap * 100.0
    );
}
