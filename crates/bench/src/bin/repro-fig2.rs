//! Reproduces **Figure 2**: verification time for each function of the
//! Atmosphere kernel (the per-function distribution whose long poles
//! limit parallel scaling).

use atmo_bench::render_table;
use atmo_trace::LatencyHist;
use atmo_verif::tasks::{catalog_total_ms, system_catalog, SystemId};

fn main() {
    let tasks = system_catalog(SystemId::Atmosphere);

    // Histogram over duration buckets.
    let buckets = [
        ("< 0.25 s", 0u64, 250u64),
        ("0.25–1 s", 250, 1_000),
        ("1–2 s", 1_000, 2_000),
        ("2–5 s", 2_000, 5_000),
        ("5–20 s", 5_000, 20_000),
        ("> 20 s", 20_000, u64::MAX),
    ];
    let rows: Vec<Vec<String>> = buckets
        .iter()
        .map(|(label, lo, hi)| {
            let n = tasks
                .iter()
                .filter(|t| t.cost_ms >= *lo && t.cost_ms < *hi)
                .count();
            let bar = "#".repeat((n / 4).max(usize::from(n > 0)));
            vec![label.to_string(), n.to_string(), bar]
        })
        .collect();
    print!(
        "{}",
        render_table(
            "Figure 2: Verification time for each function (distribution)",
            &["Duration", "Functions", ""],
            &rows,
        )
    );

    // The slowest functions — the poles visible in the figure.
    let mut sorted = tasks.clone();
    sorted.sort_by_key(|t| std::cmp::Reverse(t.cost_ms));
    let top: Vec<Vec<String>> = sorted
        .iter()
        .take(8)
        .map(|t| {
            vec![
                t.name.clone(),
                t.module.to_string(),
                format!("{:.2} s", t.cost_ms as f64 / 1000.0),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table("Slowest functions", &["Function", "Module", "Time"], &top)
    );
    // Percentile summary of the same distribution, through the trace
    // subsystem's histogram (the one the kernel uses for syscall latency).
    let mut hist = LatencyHist::new();
    for t in &tasks {
        hist.record(t.cost_ms);
    }
    println!(
        "\nPer-function time: p50 {} ms, p90 {} ms, p99 {} ms, max {} ms \
         (log2-bucket resolution).",
        hist.p50(),
        hist.p90(),
        hist.p99(),
        hist.max()
    );
    println!(
        "{} functions, {:.1} s single-thread total (paper: full verification 3m29s on 1 thread).",
        tasks.len(),
        catalog_total_ms(&tasks) as f64 / 1000.0
    );
}
