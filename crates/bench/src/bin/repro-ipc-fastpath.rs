//! Reproduces the **IPC fast path** experiment: modeled cycles per
//! round trip for the direct-handoff `Call`/`ReplyRecv` pair vs the
//! slow `Send`+`Recv` rendezvous, at 1, 2 and 4 CPUs, plus an N-client
//! server scenario.
//!
//! Each CPU hosts one client/server thread pair sharing an endpoint
//! (both homed on that CPU — the fast path refuses cross-CPU partners).
//! In **fast** mode a round trip is `Call` → `TakeMsg` → `ReplyRecv` →
//! `TakeMsg`: when the partner is already parked on the endpoint the
//! kernel hands the CPU straight across without touching the ready
//! queue, charging the strictly cheaper `ipc_fastpath` body. In **slow**
//! mode the same exchange is decomposed into `Send`/`Recv` pairs, which
//! always pay the full rendezvous body (queue op + transfer + context
//! switch) in each direction.
//!
//! Execution is the same deterministic discrete-event simulation as
//! `repro-smp-scaling`: the pending CPU with the smallest modeled clock
//! issues its next syscall. Every run ends in a stop-the-world
//! `total_wf` audit; the run fails if the fast path does not save at
//! least 30% of the modeled cycles per round trip at 1 CPU.

use std::collections::VecDeque;

use atmo_bench::render_table;
use atmo_hw::cycles::{CostModel, CpuProfile};
use atmo_kernel::smp::SmpKernel;
use atmo_kernel::{Kernel, KernelConfig, SyscallArgs};

/// One client/server pair with its endpoint, homed on `cpu`.
struct Pair {
    cpu: usize,
}

/// Boots a kernel with one client/server thread pair per CPU, each pair
/// in its own container with a shared endpoint in both threads' slot 0.
/// CPU 0 reuses the init thread as its client.
fn boot(ncpus: usize) -> (Kernel, Vec<Pair>) {
    let mut k = Kernel::boot(KernelConfig {
        mem_mib: 64,
        ncpus,
        root_quota: 4096,
    });
    let mut pairs = Vec::new();
    // CPU 0: the init thread is the client; the endpoint descriptor
    // lands in its slot 0 via the ordinary syscall.
    let init_proc = k.init_proc;
    let server0 = k
        .syscall(
            0,
            SyscallArgs::NewThread {
                proc: init_proc,
                cpu: 0,
            },
        )
        .val0() as usize;
    let e0 = k.syscall(0, SyscallArgs::NewEndpoint { slot: 0 }).val0() as usize;
    k.pm.install_descriptor(server0, 0, e0).unwrap();
    pairs.push(Pair { cpu: 0 });

    for cpu in 1..ncpus {
        let c = k
            .syscall(
                0,
                SyscallArgs::NewContainer {
                    quota: 512,
                    cpus: vec![cpu],
                },
            )
            .val0() as usize;
        let p = k.syscall(0, SyscallArgs::NewProcess { cntr: c }).val0() as usize;
        let client = k.syscall(0, SyscallArgs::NewThread { proc: p, cpu }).val0() as usize;
        let server = k.syscall(0, SyscallArgs::NewThread { proc: p, cpu }).val0() as usize;
        // The endpoint is created through the init thread (temp slot),
        // then installed into both pair members.
        let e = k.syscall(0, SyscallArgs::NewEndpoint { slot: cpu }).val0() as usize;
        k.pm.install_descriptor(client, 0, e).unwrap();
        k.pm.install_descriptor(server, 0, e).unwrap();
        // Dispatch the client (creation order put it at the queue front).
        k.pm.timer_tick(cpu);
        pairs.push(Pair { cpu });
    }
    (k, pairs)
}

/// The priming script for one pair: parks the server as the endpoint's
/// receiver and leaves the client current with an empty mailbox.
/// Identical for both modes, so steady-state measurements start from
/// the same concrete state.
fn prime_ops() -> VecDeque<SyscallArgs> {
    let send = SyscallArgs::Send {
        slot: 0,
        scalars: [0; 4],
        grant_page_va: None,
        grant_endpoint_slot: None,
        grant_iommu_domain: None,
    };
    VecDeque::from(vec![
        // client recv-blocks; the server is dispatched…
        SyscallArgs::Recv { slot: 0 },
        // …sends the client awake…
        send,
        // …and parks as the receiver; the client is dispatched.
        SyscallArgs::Recv { slot: 0 },
        SyscallArgs::TakeMsg,
    ])
}

/// One fast round trip: combined syscalls, direct handoff both ways.
fn fast_round() -> [SyscallArgs; 4] {
    [
        SyscallArgs::Call {
            slot: 0,
            scalars: [1, 0, 0, 0],
        },
        SyscallArgs::TakeMsg,
        SyscallArgs::ReplyRecv {
            slot: 0,
            scalars: [2, 0, 0, 0],
        },
        SyscallArgs::TakeMsg,
    ]
}

/// One slow round trip: the same exchange decomposed into Send+Recv
/// pairs (every leg pays the full rendezvous body).
fn slow_round() -> [SyscallArgs; 6] {
    let send = |v: u64| SyscallArgs::Send {
        slot: 0,
        scalars: [v, 0, 0, 0],
        grant_page_va: None,
        grant_endpoint_slot: None,
        grant_iommu_domain: None,
    };
    [
        send(1),
        SyscallArgs::Recv { slot: 0 },
        SyscallArgs::TakeMsg,
        send(2),
        SyscallArgs::Recv { slot: 0 },
        SyscallArgs::TakeMsg,
    ]
}

/// Discrete-event drain: always advance the pending CPU with the
/// smallest modeled clock.
fn drain(k: &SmpKernel, queues: &mut [VecDeque<SyscallArgs>], cpus: &[usize]) {
    loop {
        let next = cpus
            .iter()
            .enumerate()
            .filter(|&(i, _)| !queues[i].is_empty())
            .min_by_key(|&(_, &c)| k.cycles(c));
        let Some((i, &cpu)) = next else { break };
        let args = queues[i].pop_front().expect("non-empty queue");
        let r = k.syscall(cpu, args);
        assert!(r.is_ok(), "cpu {cpu}: {r:?}");
    }
}

struct ModeStats {
    /// Modeled cycles per round trip on the longest-running CPU.
    cycles_per_rt: f64,
    fast_hits: u64,
    fast_fallbacks: u64,
}

/// Runs `rounds` ping-pong round trips on every CPU in `mode` (fast:
/// Call/ReplyRecv; slow: Send/Recv) and returns steady-state cycles per
/// round trip.
fn run_pingpong(ncpus: usize, rounds: usize, fast: bool) -> ModeStats {
    let (k, pairs) = boot(ncpus);
    let k = SmpKernel::new(k);
    let cpus: Vec<usize> = pairs.iter().map(|p| p.cpu).collect();

    let mut queues: Vec<VecDeque<SyscallArgs>> = cpus.iter().map(|_| prime_ops()).collect();
    drain(&k, &mut queues, &cpus);
    let start: Vec<u64> = cpus.iter().map(|&c| k.cycles(c)).collect();

    let mut queues: Vec<VecDeque<SyscallArgs>> = cpus
        .iter()
        .map(|_| {
            let mut q = VecDeque::new();
            for _ in 0..rounds {
                if fast {
                    q.extend(fast_round());
                } else {
                    q.extend(slow_round());
                }
            }
            q
        })
        .collect();
    drain(&k, &mut queues, &cpus);

    let audit = k.audit_total_wf();
    assert!(audit.is_ok(), "total_wf audit failed: {audit:?}");

    let steady_max = cpus
        .iter()
        .zip(&start)
        .map(|(&c, &s)| k.cycles(c) - s)
        .max()
        .unwrap_or(0);
    let fp = k.trace_snapshot().counters.pm.fastpath;
    ModeStats {
        cycles_per_rt: steady_max as f64 / rounds as f64,
        fast_hits: fp.hits,
        fast_fallbacks: fp.fallbacks(),
    }
}

/// The N-client server scenario on one CPU: clients round-robin through
/// `Call`, the server answers every request with `ReplyRecv`. Every
/// trap takes the direct handoff (the inter-client `Yield` resets the
/// handoff budget), and no client is starved — each is served exactly
/// `rounds / nclients` times by construction of the rotation.
fn run_nclient_server(nclients: usize, rounds: usize) -> (f64, u64) {
    let mut k = Kernel::boot(KernelConfig {
        mem_mib: 64,
        ncpus: 1,
        root_quota: 4096,
    });
    let init_proc = k.init_proc;
    // Creation order fixes the ready queue: server first, then the
    // extra clients; the init thread is client 0 and stays current.
    let server = k
        .syscall(
            0,
            SyscallArgs::NewThread {
                proc: init_proc,
                cpu: 0,
            },
        )
        .val0() as usize;
    let mut clients = vec![k.init_thread];
    for _ in 1..nclients {
        let t = k
            .syscall(
                0,
                SyscallArgs::NewThread {
                    proc: init_proc,
                    cpu: 0,
                },
            )
            .val0() as usize;
        clients.push(t);
    }
    let e = k.syscall(0, SyscallArgs::NewEndpoint { slot: 0 }).val0() as usize;
    k.pm.install_descriptor(server, 0, e).unwrap();
    for &c in &clients[1..] {
        k.pm.install_descriptor(c, 0, e).unwrap();
    }
    let k = SmpKernel::new(k);

    // Prime: client 0 yields (server, queue front, is dispatched), the
    // server parks as the receiver, the next client is dispatched.
    let mut queues = [VecDeque::from(vec![
        SyscallArgs::Yield,
        SyscallArgs::Recv { slot: 0 },
    ])];
    drain(&k, &mut queues, &[0]);
    let start = k.cycles(0);

    let mut ops = VecDeque::new();
    for _ in 0..rounds {
        ops.extend(fast_round());
        // The served client yields so the next client gets its turn
        // (this also resets the per-CPU handoff budget).
        ops.push_back(SyscallArgs::Yield);
    }
    let mut queues = [ops];
    drain(&k, &mut queues, &[0]);

    let audit = k.audit_total_wf();
    assert!(audit.is_ok(), "total_wf audit failed: {audit:?}");
    let fp = k.trace_snapshot().counters.pm.fastpath;
    assert_eq!(
        fp.hits,
        2 * rounds as u64,
        "every Call and ReplyRecv in the server loop must take the handoff"
    );
    ((k.cycles(0) - start) as f64 / rounds as f64, fp.hits)
}

fn main() {
    let rounds: usize = std::env::var("IPC_FASTPATH_ROUNDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200);
    let profile = CpuProfile::c220g5();
    let costs = CostModel::c220g5();

    let mut rows = Vec::new();
    let mut savings_at_1 = 0.0;
    for ncpus in [1usize, 2, 4] {
        let slow = run_pingpong(ncpus, rounds, false);
        let fast = run_pingpong(ncpus, rounds, true);
        let savings = 1.0 - fast.cycles_per_rt / slow.cycles_per_rt;
        if ncpus == 1 {
            savings_at_1 = savings;
        }
        for (name, stats) in [("send+recv", &slow), ("fastpath", &fast)] {
            rows.push(vec![
                format!("{ncpus}"),
                name.to_string(),
                format!("{:.0}", stats.cycles_per_rt),
                format!(
                    "{:.2}",
                    profile.cycles_to_seconds(stats.cycles_per_rt as u64) * 1e6
                ),
                format!("{}", stats.fast_hits),
                format!("{}", stats.fast_fallbacks),
                if name == "fastpath" {
                    format!("{:.1}%", savings * 100.0)
                } else {
                    String::new()
                },
            ]);
        }
    }
    print!(
        "{}",
        render_table(
            &format!(
                "IPC round trip: direct-handoff fast path vs Send+Recv rendezvous \
                 ({rounds} rounds/CPU, modeled c220g5 cycles)"
            ),
            &[
                "CPUs",
                "Mode",
                "Cycles/RT",
                "us/RT",
                "FP hits",
                "FP fallbacks",
                "Savings",
            ],
            &rows,
        )
    );
    println!();
    println!(
        "cost model: slow rendezvous body = {} + {} + {} = {} cycles/leg; \
         fastpath body = {} cycles/leg",
        costs.endpoint_queue_op,
        costs.ipc_transfer,
        costs.thread_switch,
        costs.endpoint_queue_op + costs.ipc_transfer + costs.thread_switch,
        costs.ipc_fastpath,
    );
    println!(
        "fallbacks in fast mode are the handoff-budget guard (every {} consecutive \
         handoffs the fast path yields to the ready queue).",
        atmo_pm::manager::HANDOFF_BUDGET,
    );

    let nclients = 4;
    let (cy_rt, hits) = run_nclient_server(nclients, rounds);
    println!();
    println!(
        "{nclients}-client server (1 CPU, {rounds} requests round-robin): \
         {cy_rt:.0} cycles/request incl. client yield, {hits} handoffs, 0 fallbacks, \
         every client served equally."
    );
    println!();
    println!(
        "fastpath savings at 1 CPU: {:.1}% (acceptance: >= 30%; \
         total_wf audited after every run)",
        savings_at_1 * 100.0
    );
    assert!(
        savings_at_1 >= 0.30,
        "fast path must save >= 30% modeled cycles per round trip at 1 CPU, \
         got {:.1}%",
        savings_at_1 * 100.0
    );
}
