//! Reproduces the **multi-tenant scale-out** experiment: 1000+
//! containers with per-container CPU budgets, live churn and
//! adversarial neighbors, against a latency-sensitive victim tenant
//! that owns one CPU exclusively.
//!
//! Topology (4 CPUs): CPU 0 runs the root control plane (endpoint
//! draining — the wakeup storms — plus container churn: every churn
//! period one tenant is terminated mid-life and respawned). CPUs 1–2
//! carry the tenant fleet: zero-CPU containers whose threads share the
//! root-owned CPUs, weighted so the aggregate refill rate far exceeds
//! capacity — the fleet perpetually exhausts its budgets, throttles,
//! parks and unparks. CPU 1 tenants flood a shared endpoint (blocking
//! sender storms drained by the control plane), CPU 2 tenants burn
//! their quotas (process spawns and mmaps until `QuotaExceeded`). The
//! victim owns CPU 3 exclusively (strict partition) and runs a
//! yield+map+unmap loop; each iteration's modeled cycles are recorded.
//!
//! Execution is the same discrete-event interleaving as the SMP
//! scaling experiment: the CPU with the smallest modeled clock issues
//! its next syscall, so lock serialization is visible through each
//! domain's modeled release timestamps.
//!
//! Acceptance gates (the scheduler's O(1) claims):
//! * victim p99 latency with the full fleet shifts ≤ 5% relative to a
//!   4-tenant baseline running the identical adversarial schedule;
//! * mean scheduler pick cost (wall-clock, measured inside the
//!   scheduler and recorded in the trace histogram) at 1000+ containers
//!   stays within 2x of the 4-container run, plus an absolute slack
//!   floor for timer noise;
//! * the incremental audit stays green throughout, and the final
//!   stop-the-world audit — which cross-checks the budget-conservation
//!   ledger bit-for-bit against a full scan — passes.

use std::collections::HashMap;

use atmo_bench::render_table;
use atmo_kernel::smp::SmpKernel;
use atmo_kernel::{Kernel, KernelConfig, SyscallArgs, SyscallError};
use atmo_trace::ns_to_cycles;

/// One control-plane churn (terminate + respawn a tenant) per this many
/// control-plane turns.
const CHURN_EVERY: u64 = 48;
/// Modeled halt-poll cost when a CPU has nothing runnable.
const IDLE_CYCLES: u64 = 2_000;
/// Victim budget weight: refills comfortably above its tick rate, so
/// the victim itself never throttles.
const VICTIM_WEIGHT: u32 = 16;

/// Direct children are capped at 32 per container, so the fleet is a
/// two-level hierarchy: root -> 32 racks -> up to 32 tenants each
/// (rack 0 also hosts the victim).
const RACKS: usize = 32;

struct Tenant {
    cntr: usize,
    thrd: usize,
    rack: usize,
}

struct Fleet {
    tenants: Vec<Tenant>,
    /// thread -> container, for the quota-exhaustion ops that target
    /// whichever tenant happens to be current.
    cntr_of: HashMap<usize, usize>,
    flood_endpoint: usize,
}

fn tenant_weight(i: usize) -> u32 {
    1 + (i % 4) as u32
}

/// Spawns tenant `i` as a child of `rack` (direct pm calls — the
/// syscall surface always parents to the caller's container, and
/// tenants are grandchildren of root) and installs the flood endpoint
/// in its descriptor slot 0.
fn spawn_tenant(k: &mut Kernel, rack: usize, i: usize, flood_endpoint: usize) -> Tenant {
    let cntr =
        k.pm.new_container(&mut k.mem.alloc, rack, 8, &[])
            .expect("tenant container");
    let proc_ =
        k.pm.new_process(&mut k.mem.alloc, cntr, None)
            .expect("tenant process");
    let as_id = k.pm.proc(proc_).addr_space;
    k.mem
        .vm
        .create_space(&mut k.mem.alloc, as_id)
        .expect("tenant address space");
    let thrd =
        k.pm.new_thread(&mut k.mem.alloc, proc_, 1 + i % 2)
            .expect("tenant thread");
    k.pm.sched_set_weight(cntr, tenant_weight(i))
        .expect("tenant weight");
    k.pm.install_descriptor(thrd, 0, flood_endpoint).unwrap();
    Tenant { cntr, thrd, rack }
}

fn boot(tenants: usize) -> (SmpKernel, Fleet) {
    let mut k = Kernel::boot(KernelConfig {
        mem_mib: 128,
        ncpus: 4,
        root_quota: 32 * 1024,
    });
    // The racks: root's direct children. Rack 0 takes CPU 3 and hands
    // it on to the victim.
    let mut racks = Vec::with_capacity(RACKS);
    for r in 0..RACKS {
        let rack = k
            .syscall(
                0,
                SyscallArgs::NewContainer {
                    quota: 384,
                    cpus: if r == 0 { vec![3] } else { vec![] },
                },
            )
            .val0() as usize;
        racks.push(rack);
    }
    // Victim: exclusive ownership of CPU 3 (strict partition takes the
    // CPU away from rack 0), its own budget account.
    let v_cntr =
        k.pm.new_container(&mut k.mem.alloc, racks[0], 64, &[3])
            .expect("victim container");
    let v_proc =
        k.pm.new_process(&mut k.mem.alloc, v_cntr, None)
            .expect("victim process");
    let v_as = k.pm.proc(v_proc).addr_space;
    k.mem
        .vm
        .create_space(&mut k.mem.alloc, v_as)
        .expect("victim address space");
    k.pm.new_thread(&mut k.mem.alloc, v_proc, 3)
        .expect("victim thread");
    k.pm.sched_set_weight(v_cntr, VICTIM_WEIGHT)
        .expect("victim weight");
    k.pm.timer_tick(3);

    // The shared endpoint the CPU-1 tenants flood; `NewEndpoint` already
    // installs it in the creating (init) thread's slot 0, so the root
    // control plane can drain it directly.
    let flood_endpoint = k.syscall(0, SyscallArgs::NewEndpoint { slot: 0 }).val0() as usize;

    // Rack slot per tenant: rack 0 has room for 31 (the victim took a
    // slot), the rest for 32 each.
    let mut slots = Vec::new();
    for (ri, &rack) in racks.iter().enumerate() {
        for _ in 0..(if ri == 0 { 31 } else { 32 }) {
            slots.push(rack);
        }
    }
    assert!(
        tenants <= slots.len(),
        "fleet of {tenants} exceeds the {} rack slots",
        slots.len()
    );
    let mut fleet = Fleet {
        tenants: Vec::with_capacity(tenants),
        cntr_of: HashMap::new(),
        flood_endpoint,
    };
    for (i, &slot) in slots.iter().enumerate().take(tenants) {
        let t = spawn_tenant(&mut k, slot, i, flood_endpoint);
        fleet.cntr_of.insert(t.thrd, t.cntr);
        fleet.tenants.push(t);
    }
    for cpu in 1..3 {
        k.pm.timer_tick(cpu);
    }
    let smp = SmpKernel::new(k);
    smp.enable_incremental_audit();
    (smp, fleet)
}

/// No runnable thread answered the trap: tick the scheduler directly
/// (refills may have unparked someone) and model a halt-poll so the
/// DES clock keeps moving.
fn idle_turn(smp: &SmpKernel, cpu: usize) {
    smp.with_kernel(|k| {
        if k.pm.timer_tick(cpu).is_none() {
            k.machine.meter(cpu).charge(IDLE_CYCLES);
        }
    });
}

/// One adversary syscall on `cpu`; errors are the point (quota
/// exhaustion, endpoint overflow), only a missing current thread gets
/// the scheduler re-dispatched.
fn adversary_turn(smp: &SmpKernel, fleet: &Fleet, cpu: usize, turn: u64) {
    let args = if cpu == 1 {
        // Endpoint flood: blocking sender storms, drained (woken) by
        // the control plane on CPU 0.
        if turn.is_multiple_of(2) {
            SyscallArgs::Send {
                slot: 0,
                scalars: [turn, 0, 0, 0],
                grant_page_va: None,
                grant_endpoint_slot: None,
                grant_iommu_domain: None,
            }
        } else {
            SyscallArgs::Yield
        }
    } else {
        // Quota exhaustion: spawn processes and map pages in whichever
        // tenant is current until its quota refuses.
        match turn % 4 {
            0 => {
                let cur = smp.with_kernel(|k| k.pm.sched.current(cpu));
                let Some(t) = cur else {
                    idle_turn(smp, cpu);
                    return;
                };
                match fleet.cntr_of.get(&t) {
                    Some(&cntr) => SyscallArgs::NewProcess { cntr },
                    None => SyscallArgs::Yield,
                }
            }
            1 | 2 => SyscallArgs::Mmap {
                va_base: 0x6000_0000 + (turn % 512) as usize * 0x1000,
                len: 1,
                writable: true,
            },
            _ => SyscallArgs::Yield,
        }
    };
    let r = smp.syscall(cpu, args);
    if r.result == Err(SyscallError::WrongState) {
        // Nothing dispatched on this CPU (the whole queue is parked or
        // blocked): let the scheduler try again.
        idle_turn(smp, cpu);
    }
}

/// One control-plane turn on CPU 0: drain the flood endpoint (waking
/// blocked senders) or, every [`CHURN_EVERY`] turns, churn one tenant —
/// terminate its container mid-life and respawn it.
fn control_turn(smp: &SmpKernel, fleet: &mut Fleet, turn: u64, next_churn: &mut usize) {
    if turn % CHURN_EVERY == CHURN_EVERY - 1 && !fleet.tenants.is_empty() {
        let i = *next_churn % fleet.tenants.len();
        *next_churn += 1;
        let old = &fleet.tenants[i];
        let rack = old.rack;
        let r = smp.syscall(0, SyscallArgs::TerminateContainer { cntr: old.cntr });
        assert!(r.is_ok(), "churn terminate tenant {i}: {r:?}");
        fleet.cntr_of.remove(&old.thrd);
        let flood = fleet.flood_endpoint;
        let t = smp.with_kernel(|k| spawn_tenant(k, rack, i, flood));
        fleet.cntr_of.insert(t.thrd, t.cntr);
        fleet.tenants[i] = t;
        return;
    }
    let args = match turn % 3 {
        0 => SyscallArgs::Recv { slot: 0 },
        1 => SyscallArgs::TakeMsg,
        _ => SyscallArgs::Yield,
    };
    let r = smp.syscall(0, args);
    if r.result == Err(SyscallError::WrongState) {
        idle_turn(smp, 0);
    }
}

struct ScenarioStats {
    tenants: usize,
    victim_ops: usize,
    victim_mean: u64,
    victim_p99: u64,
    pick_mean: u64,
    pick_p99: u64,
    picks: u64,
    budget: (u64, u64, u64, u64),
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    let idx = ((sorted.len() as f64 * p) as usize).min(sorted.len() - 1);
    sorted[idx]
}

fn run_scenario(tenants: usize, victim_ops: usize) -> ScenarioStats {
    let (smp, mut fleet) = boot(tenants);
    let mut lat = Vec::with_capacity(victim_ops);
    let mut turns = [0u64; 4];
    let mut next_churn = 0usize;
    let victim_va = 0x5000_0000usize;

    while lat.len() < victim_ops {
        let cpu = (0..4usize)
            .min_by_key(|&c| smp.cycles(c))
            .expect("four CPUs");
        turns[cpu] += 1;
        match cpu {
            3 => {
                let t0 = smp.cycles(3);
                for args in [
                    SyscallArgs::Yield,
                    SyscallArgs::Mmap {
                        va_base: victim_va,
                        len: 1,
                        writable: true,
                    },
                    SyscallArgs::Munmap {
                        va_base: victim_va,
                        len: 1,
                    },
                ] {
                    let r = smp.syscall(3, args.clone());
                    assert!(r.is_ok(), "victim op {} {args:?}: {r:?}", lat.len());
                }
                lat.push(smp.cycles(3) - t0);
                if lat.len() % 256 == 0 {
                    let a = smp.audit_incremental();
                    assert!(a.is_ok(), "incremental audit at op {}: {a:?}", lat.len());
                }
            }
            0 => control_turn(&smp, &mut fleet, turns[0], &mut next_churn),
            c => adversary_turn(&smp, &fleet, c, turns[c]),
        }
    }

    // Epoch audit: flat invariants plus the bit-for-bit cross-check of
    // the incremental fold — including the budget-conservation ledger.
    let a = smp.audit_total_wf();
    assert!(a.is_ok(), "stop-the-world audit: {a:?}");
    let budget = smp.with_kernel(|k| k.pm.sched.budget_totals());
    let (granted, consumed, refunded, remaining) = budget;
    assert_eq!(
        granted,
        consumed + refunded + remaining,
        "budget ledger out of balance"
    );

    lat.sort_unstable();
    let snap = smp.trace_snapshot();
    let picks = &snap.sched_pick_hist;
    ScenarioStats {
        tenants,
        victim_ops,
        victim_mean: lat.iter().sum::<u64>() / lat.len() as u64,
        victim_p99: percentile(&lat, 0.99),
        pick_mean: picks.mean(),
        pick_p99: picks.percentile(99.0),
        picks: picks.count(),
        budget,
    }
}

fn main() {
    let victim_ops: usize = std::env::var("MULTITENANT_ROUNDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1500);
    let fleet_size: usize = std::env::var("MULTITENANT_TENANTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1000);

    let small = run_scenario(4, victim_ops);
    let large = run_scenario(fleet_size, victim_ops);

    let mut rows = Vec::new();
    for s in [&small, &large] {
        rows.push(vec![
            format!("{}", s.tenants + RACKS + 2), // + racks + root + victim
            format!("{}", s.victim_ops),
            format!("{}", s.victim_mean),
            format!("{}", s.victim_p99),
            format!("{}", s.pick_mean),
            format!("{}", s.pick_p99),
            format!("{}", s.picks),
        ]);
    }
    print!(
        "{}",
        render_table(
            &format!(
                "Multi-tenant scale-out: {fleet_size} tenants + churn + adversaries \
                 vs a 4-tenant baseline ({victim_ops} victim ops, modeled c220g5 cycles; \
                 pick cost wall-clock)"
            ),
            &[
                "Containers",
                "Victim ops",
                "Victim mean",
                "Victim p99",
                "Pick mean",
                "Pick p99",
                "Picks",
            ],
            &rows,
        )
    );
    let (g, c, r, m) = large.budget;
    println!();
    println!(
        "budget ledger at {fleet_size} tenants: granted {g} = consumed {c} + refunded {r} \
         + remaining {m}"
    );

    // Gate 1: victim isolation. The fleet behind CPUs 0-2 grows 256x;
    // the victim's p99 on its exclusively-owned CPU must not move more
    // than 5% (small absolute floor for quantization).
    let p99_limit = large.victim_p99 as f64;
    let base = small.victim_p99 as f64;
    assert!(
        p99_limit <= base * 1.05 + 64.0,
        "victim p99 shifted {:.1}% ({} -> {} cycles) at {fleet_size} tenants",
        (p99_limit / base - 1.0) * 100.0,
        small.victim_p99,
        large.victim_p99,
    );
    println!(
        "victim p99 shift at {fleet_size} tenants: {:+.2}% (gate: <= 5%)",
        (p99_limit / base - 1.0) * 100.0
    );

    // Gate 2: O(1) pick. Mean wall-clock pick cost may not grow more
    // than 2x from 4 to 1000+ containers (plus a 500ns noise floor).
    let floor = ns_to_cycles(500);
    assert!(
        large.pick_mean <= 2 * small.pick_mean + floor,
        "pick cost grew from {} to {} cycles ({}x) at {fleet_size} tenants",
        small.pick_mean,
        large.pick_mean,
        large.pick_mean as f64 / small.pick_mean.max(1) as f64,
    );
    println!(
        "pick cost: {} -> {} cycles mean over {} picks (gate: <= 2x + {floor} cycles)",
        small.pick_mean, large.pick_mean, large.picks
    );
    println!("both audits green: incremental every 256 victim ops, stop-the-world at exit.");
}
