//! Reproduces **Figure 4**: ixgbe driver performance — 64-byte UDP
//! packets, batch sizes 1 and 32, across Linux, DPDK and the Atmosphere
//! configurations.

use atmo_baselines::{dpdk_echo_mpps, linux_socket_echo_mpps};
use atmo_bench::{fmt_mpps, render_table};
use atmo_drivers::deploy::{run_rx_tx_scenario, Deployment};
use atmo_drivers::DriverCosts;
use atmo_hw::cycles::{CostModel, CpuProfile};

const PACKETS: u64 = 200_000;
/// Echo application work per packet (header touch + counter).
const ECHO_APP_COST: u64 = 45;

fn atmo(deploy: Deployment) -> f64 {
    run_rx_tx_scenario(
        deploy,
        PACKETS,
        ECHO_APP_COST,
        &DriverCosts::atmosphere(),
        &CostModel::c220g5(),
        &CpuProfile::c220g5(),
    )
    .mpps
}

fn main() {
    let profile = CpuProfile::c220g5();
    let rows = vec![
        ("linux", linux_socket_echo_mpps(&profile), "0.89"),
        ("dpdk-b1", dpdk_echo_mpps(1, &profile), "~7"),
        ("dpdk-b32", dpdk_echo_mpps(32, &profile), "14.2 (line rate)"),
        (
            "atmo-driver-b1",
            atmo(Deployment::Linked { batch: 1 }),
            "~7",
        ),
        (
            "atmo-driver-b32",
            atmo(Deployment::Linked { batch: 32 }),
            "14.2 (line rate)",
        ),
        ("atmo-c2", atmo(Deployment::CrossCore { batch: 32 }), "~14"),
        (
            "atmo-c1-b1",
            atmo(Deployment::SameCoreIpc { batch: 1 }),
            "2.3",
        ),
        (
            "atmo-c1-b32",
            atmo(Deployment::SameCoreIpc { batch: 32 }),
            "11.1",
        ),
    ]
    .into_iter()
    .map(|(name, mpps, paper)| {
        let bar = "#".repeat((mpps * 3.0) as usize);
        vec![name.to_string(), fmt_mpps(mpps), paper.to_string(), bar]
    })
    .collect::<Vec<_>>();

    print!(
        "{}",
        render_table(
            "Figure 4: Ixgbe driver performance (64B UDP, Mpps per core)",
            &["Config", "Mpps", "Paper", ""],
            &rows,
        )
    );
}
