//! Reproduces **Table 2**: verification times of different systems on the
//! CloudLab c220g5 (1 vs 8 threads), with proof/exec line counts, and the
//! §6.1 full-verification times (pass `--verif-time` for the server +
//! laptop thread sweep).

use atmo_bench::render_table;
use atmo_verif::schedule::simulate_verification;
use atmo_verif::tasks::{system_catalog, system_loc, SystemId};

fn fmt_time(s: f64) -> String {
    let s = s.round() as u64;
    if s >= 60 {
        format!("{}m {:02}s", s / 60, s % 60)
    } else {
        format!("{s}s")
    }
}

fn main() {
    let verif_time_mode = std::env::args().any(|a| a == "--verif-time");

    if verif_time_mode {
        // §6.1: server (1, 8 threads) + laptop (1, 32 threads).
        let cat = system_catalog(SystemId::Atmosphere);
        let rows = vec![
            ("c220g5", 1usize, 1.0f64),
            ("c220g5", 8, 1.0),
            ("laptop i9-13900HX", 1, 4.45),
            ("laptop i9-13900HX", 32, 4.45),
        ]
        .into_iter()
        .map(|(m, threads, speedup)| {
            let r = simulate_verification(&cat, threads, speedup);
            vec![m.to_string(), threads.to_string(), fmt_time(r.wall_s)]
        })
        .collect::<Vec<_>>();
        print!(
            "{}",
            render_table(
                "§6.1: Atmosphere full-verification wall time",
                &["Machine", "Threads", "Wall time"],
                &rows,
            )
        );
        return;
    }

    let systems = [
        ("NrOS page table", SystemId::NrosPageTable, true),
        ("Atmo. page table", SystemId::AtmoPageTable, false),
        ("Mimalloc", SystemId::Mimalloc, true),
        ("VeriSMo", SystemId::VeriSmo, true),
        ("Atmosphere", SystemId::Atmosphere, true),
    ];
    let rows: Vec<Vec<String>> = systems
        .iter()
        .map(|(name, id, has_8t)| {
            let cat = system_catalog(*id);
            let t1 = simulate_verification(&cat, 1, 1.0);
            let (proof, exec) = system_loc(*id);
            let t8 = if *has_8t {
                fmt_time(simulate_verification(&cat, 8, 1.0).wall_s)
            } else {
                "—".to_string()
            };
            vec![
                name.to_string(),
                fmt_time(t1.wall_s),
                t8,
                proof.to_string(),
                exec.to_string(),
                format!("{:.2}", proof as f64 / exec as f64),
            ]
        })
        .collect();

    print!(
        "{}",
        render_table(
            "Table 2: Verification time of different systems on CloudLab c220g5",
            &[
                "System",
                "1 thread",
                "8 threads",
                "Proof",
                "Exec.",
                "P/E Ratio"
            ],
            &rows,
        )
    );
}
