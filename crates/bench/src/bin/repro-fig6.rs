//! Reproduces **Figure 6**: Maglev load-balancer throughput and httpd
//! requests/s across Linux, DPDK/nginx and the Atmosphere configurations.
//!
//! The Maglev data path really executes (flow hash → table lookup →
//! header rewrite over the real `MaglevTable`); cycle costs follow the
//! calibrated model. The same-core configurations use call semantics: the
//! application invokes the driver endpoint and the driver returns — two
//! one-way crossings per batch.

use atmo_apps::httpd::{Httpd, HTTPD_REQUEST_COST};
use atmo_apps::maglev::{MaglevTable, DEFAULT_TABLE_SIZE, MAGLEV_APP_COST};
use atmo_baselines::{dpdk_maglev_mpps, linux_maglev_mpps, nginx_rps};
use atmo_bench::{fmt_mpps, render_table};
use atmo_drivers::ixgbe::{IxgbeDevice, IxgbeDriver};
use atmo_drivers::DriverCosts;
use atmo_hw::cycles::{CostModel, CpuProfile, CycleMeter};
use atmo_trace::{TraceSink, DEFAULT_RING_CAPACITY};

const PACKETS: u64 = 200_000;

/// Maglev in the same-core configuration (`atmo-c1-bN`): per batch, one
/// shared doorbell plus a call/return endpoint crossing pair.
fn maglev_same_core(batch: usize, table: &MaglevTable) -> f64 {
    let costs = DriverCosts::atmosphere();
    let model = CostModel::c220g5();
    let profile = CpuProfile::c220g5();
    let mut drv = IxgbeDriver::new(IxgbeDevice::new(profile.freq_hz), costs);
    let mut m = CycleMeter::new();
    let mut done = 0u64;
    while done < PACKETS {
        let mut pkts = drv.rx_batch(&mut m, batch);
        // Call into the application and return (two one-way crossings).
        m.charge(2 * model.ipc_one_way());
        for p in pkts.iter_mut() {
            m.charge(model.ring_op + MAGLEV_APP_COST);
            let _ = table.process_packet(p);
        }
        done += pkts.len() as u64;
        drv.tx_batch(&mut m, pkts);
    }
    // The rx_batch/tx_batch helpers charge one doorbell each; Maglev's
    // driver shares a doorbell across directions — credit one back.
    profile.throughput(done, m.now() - (done / batch as u64) * costs.doorbell) / 1e6
}

/// Maglev with the driver on its own core (`atmo-c2`): the app core is
/// the bottleneck (ring in + lookup + ring out + poll).
fn maglev_cross_core(table: &MaglevTable) -> f64 {
    let model = CostModel::c220g5();
    let profile = CpuProfile::c220g5();
    let costs = DriverCosts::atmosphere();
    let mut drv = IxgbeDriver::new(IxgbeDevice::new(profile.freq_hz), costs);
    let mut m_drv = CycleMeter::new();
    let mut m_app = CycleMeter::new();
    let mut done = 0u64;
    while done < PACKETS {
        let mut pkts = drv.rx_batch(&mut m_drv, 32);
        for p in pkts.iter_mut() {
            m_drv.charge(model.ring_op);
            m_app.charge(2 * model.ring_op + MAGLEV_APP_COST + 20);
            let _ = table.process_packet(p);
        }
        done += pkts.len() as u64;
        drv.tx_batch(&mut m_drv, pkts);
    }
    profile.throughput(done, m_drv.now().max(m_app.now())) / 1e6
}

fn main() {
    let profile = CpuProfile::c220g5();
    let backends: Vec<String> = (0..16).map(|i| format!("backend-{i}")).collect();
    let table = MaglevTable::new(&backends, DEFAULT_TABLE_SIZE);

    let rows = vec![
        ("linux (sockets)", linux_maglev_mpps(&profile), "1.0"),
        ("dpdk", dpdk_maglev_mpps(&profile), "9.72"),
        ("atmo-c2", maglev_cross_core(&table), "13.3"),
        ("atmo-c1-b1", maglev_same_core(1, &table), "1.66"),
        ("atmo-c1-b32", maglev_same_core(32, &table), "8.8"),
    ]
    .into_iter()
    .map(|(name, mpps, paper)| {
        let bar = "#".repeat((mpps * 3.0) as usize);
        vec![name.to_string(), fmt_mpps(mpps), paper.to_string(), bar]
    })
    .collect::<Vec<_>>();
    print!(
        "{}",
        render_table(
            "Figure 6a: Maglev load balancer (Mpps per core)",
            &["Config", "Mpps", "Paper", ""],
            &rows,
        )
    );
    println!();

    // httpd: run the real server over 20 keep-alive connections (the wrk
    // configuration), charging the calibrated per-request data-path cost.
    let mut srv = Httpd::new();
    let conns: Vec<_> = (0..20).map(|_| srv.open_connection()).collect();
    let mut meter = CycleMeter::new();
    let request = b"GET / HTTP/1.1\r\nHost: bench\r\n\r\n";
    let target = 50_000u64;
    while srv.served < target {
        for &c in &conns {
            srv.client_send(c, request);
        }
        let handled = srv.poll_step();
        meter.charge(HTTPD_REQUEST_COST * handled as u64);
        for &c in &conns {
            let _ = srv.client_recv(c);
        }
    }
    let atmo_rps = profile.throughput(srv.served, meter.now());

    let rows = vec![
        vec![
            "nginx (linux)".to_string(),
            format!("{:.1}K", nginx_rps(&profile) / 1000.0),
            "70.9K".to_string(),
        ],
        vec![
            "atmo-httpd (linked)".to_string(),
            format!("{:.1}K", atmo_rps / 1000.0),
            "99.4K".to_string(),
        ],
    ];
    print!(
        "{}",
        render_table(
            "Figure 6b: httpd static content (requests/s)",
            &["Config", "Req/s", "Paper"],
            &rows,
        )
    );

    // Observability: the same Maglev data path, run once more with a
    // trace sink attached to the driver. The driver counters in the
    // snapshot reconcile exactly with the packets this pass processed.
    let sink = TraceSink::new(1, DEFAULT_RING_CAPACITY);
    let costs = DriverCosts::atmosphere();
    let mut drv = IxgbeDriver::new(IxgbeDevice::new(profile.freq_hz), costs);
    drv.attach_trace(sink.clone());
    let mut m = CycleMeter::new();
    let mut done = 0u64;
    while done < 20_000 {
        let mut pkts = drv.rx_batch(&mut m, 32);
        for p in pkts.iter_mut() {
            let _ = table.process_packet(p);
        }
        done += pkts.len() as u64;
        drv.tx_batch(&mut m, pkts);
    }
    let snap = sink.snapshot();
    let d = snap.counters.drivers;
    assert_eq!(d.rx_items, done, "trace saw every received packet");
    assert_eq!(d.tx_items, done, "trace saw every transmitted packet");
    let rows: Vec<Vec<String>> = [
        ("drivers.rx_batches", d.rx_batches),
        ("drivers.rx_items", d.rx_items),
        ("drivers.tx_batches", d.tx_batches),
        ("drivers.tx_items", d.tx_items),
    ]
    .iter()
    .map(|(n, v)| vec![n.to_string(), v.to_string()])
    .collect();
    println!();
    print!(
        "{}",
        render_table(
            "Traced Maglev pass (20K packets): driver counters",
            &["Counter", "Value"],
            &rows,
        )
    );
}
