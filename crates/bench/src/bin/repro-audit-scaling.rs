//! Reproduces the **audit scaling** experiment: incremental ledger-fold
//! audits cost O(touched entries), independent of kernel size, while
//! the stop-the-world flat audit rescans every closure and so grows
//! with the kernel.
//!
//! Three kernels of increasing size (16 / 64 / 256 MiB, 8 CPUs; the
//! largest holds >= 4096 mapped pages) are each audited two ways:
//!
//! * `audit_total_wf()` — drain caches, rescan every domain, re-derive
//!   all closure/leak equations, and cross-check them against the
//!   incremental ledger state bit-for-bit;
//! * `audit_incremental()` — fold only the deltas emitted since the
//!   last audit, after touching K in {1, 16, 256} pages.
//!
//! Acceptance (asserted): on the largest state the incremental audit at
//! K=16 is >= 10x cheaper than the flat audit; the deltas folded grow
//! with K, not with kernel size; and a burst of incremental audits
//! leaves the per-CPU cache hit counters untouched (no drain, no domain
//! lock).

use std::time::Instant;

use atmo_bench::render_table;
use atmo_kernel::{Kernel, KernelConfig, SmpKernel, SyscallArgs};

const TOUCH_SIZES: [usize; 3] = [1, 16, 256];

struct Sized {
    mem_mib: usize,
    mapped_pages: usize,
}

const SIZES: [Sized; 3] = [
    Sized {
        mem_mib: 16,
        mapped_pages: 512,
    },
    Sized {
        mem_mib: 64,
        mapped_pages: 2048,
    },
    Sized {
        mem_mib: 256,
        mapped_pages: 8192,
    },
];

/// Scratch VA range the touch loop churns, disjoint from the resident
/// mappings.
const SCRATCH_VA: usize = 0x7000_0000;

fn boot(s: &Sized) -> SmpKernel {
    let k = SmpKernel::new(Kernel::boot(KernelConfig {
        mem_mib: s.mem_mib,
        ncpus: 8,
        root_quota: s.mapped_pages + 1024,
    }));
    // Grow the kernel: a resident working set of `mapped_pages` pages
    // (page tables, closure sets and leak-equation support all scale
    // with this).
    let chunk = 8;
    let mut va = 0x4000_0000;
    let mut left = s.mapped_pages;
    while left > 0 {
        let len = chunk.min(left);
        let r = k.syscall(
            0,
            SyscallArgs::Mmap {
                va_base: va,
                len,
                writable: true,
            },
        );
        assert!(r.is_ok(), "grow mmap at {va:#x}: {r:?}");
        va += len * 0x1000;
        left -= len;
    }
    k.enable_incremental_audit();
    k
}

/// Touches `k` pages (map+unmap churn in the scratch range), emitting a
/// touched set proportional to `k` and independent of kernel size.
fn touch(kern: &SmpKernel, k: usize) {
    for i in 0..k {
        let va_base = SCRATCH_VA + (i % 64) * 0x1000;
        let r = kern.syscall(
            0,
            SyscallArgs::Mmap {
                va_base,
                len: 1,
                writable: true,
            },
        );
        assert!(r.is_ok(), "touch mmap: {r:?}");
        let r = kern.syscall(0, SyscallArgs::Munmap { va_base, len: 1 });
        assert!(r.is_ok(), "touch munmap: {r:?}");
    }
}

/// Best-of-`trials` wall-clock nanoseconds of `f`.
fn best_ns(trials: usize, mut f: impl FnMut()) -> u64 {
    let mut best = u64::MAX;
    for _ in 0..trials {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_nanos() as u64);
    }
    best
}

fn main() {
    let trials: usize = std::env::var("AUDIT_SCALING_TRIALS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(9);

    let mut rows = Vec::new();
    let mut flat_large = 0u64;
    let mut inc16_large = 0u64;
    let mut inc16_by_size = Vec::new();
    let mut touched_by_k: Vec<u64> = Vec::new();

    for (si, s) in SIZES.iter().enumerate() {
        let k = boot(s);

        // Flat audit cost: drain the pending ledger once so every timed
        // flat audit starts from a clean incremental state.
        let r = k.audit_incremental();
        assert!(r.is_ok(), "baseline incremental audit: {r:?}");
        let flat_ns = best_ns(trials, || {
            let r = k.audit_total_wf();
            assert!(r.is_ok(), "flat audit: {r:?}");
        });

        // Incremental audit cost at each touched-set size. The touch
        // churn runs outside the timed region; only the ledger fold and
        // equation check are measured.
        let mut inc_ns = [0u64; TOUCH_SIZES.len()];
        let mut touched = [0u64; TOUCH_SIZES.len()];
        for (ki, &ksz) in TOUCH_SIZES.iter().enumerate() {
            let before = k.trace_snapshot().counters.audit.touched_entries;
            let mut audits = 0u64;
            // Each trial touches K pages outside the timed region, then
            // times only the ledger fold + equation check.
            let mut best = u64::MAX;
            for _ in 0..trials {
                touch(&k, ksz);
                let t = Instant::now();
                let r = k.audit_incremental();
                best = best.min(t.elapsed().as_nanos() as u64);
                assert!(r.is_ok(), "incremental audit (K={ksz}): {r:?}");
                audits += 1;
            }
            inc_ns[ki] = best;
            let after = k.trace_snapshot().counters.audit.touched_entries;
            touched[ki] = (after - before) / audits.max(1);
        }

        // Cache hit-rates are unperturbed by incremental audits: no
        // domain lock is taken, no cache is drained.
        let stats_before = k.cache_stats(0);
        for _ in 0..100 {
            let r = k.audit_incremental();
            assert!(r.is_ok(), "{r:?}");
        }
        let stats_after = k.cache_stats(0);
        assert_eq!(
            (
                stats_before.fast_allocs,
                stats_before.refills,
                stats_before.drains
            ),
            (
                stats_after.fast_allocs,
                stats_after.refills,
                stats_after.drains
            ),
            "incremental audits must not perturb cache hit-rates"
        );

        if si == SIZES.len() - 1 {
            flat_large = flat_ns;
            inc16_large = inc_ns[1];
            touched_by_k = touched.to_vec();
        }
        inc16_by_size.push(inc_ns[1]);

        rows.push(vec![
            format!("{}", s.mem_mib),
            format!("{}", s.mapped_pages),
            format!("{:.1}", flat_ns as f64 / 1e3),
            format!("{:.2}", inc_ns[0] as f64 / 1e3),
            format!("{:.2}", inc_ns[1] as f64 / 1e3),
            format!("{:.2}", inc_ns[2] as f64 / 1e3),
            format!("{}/{}/{}", touched[0], touched[1], touched[2]),
            format!("{:.0}x", flat_ns as f64 / inc_ns[1] as f64),
        ]);
    }

    print!(
        "{}",
        render_table(
            &format!(
                "Audit scaling: flat rescan vs incremental ledger fold \
                 (8 CPUs, best of {trials} trials, wall-clock)"
            ),
            &[
                "MiB",
                "Pages",
                "Flat us",
                "Inc K=1 us",
                "K=16 us",
                "K=256 us",
                "Entries K=1/16/256",
                "Flat/Inc16",
            ],
            &rows,
        )
    );
    println!();
    println!(
        "touched entries folded per audit grow with K (the touched set), \
         not with kernel size;"
    );
    println!("flat audits rescan every closure so their cost tracks the mapped working set.");

    // Acceptance: >= 10x on the large state.
    let speedup = flat_large as f64 / inc16_large as f64;
    println!(
        "large-state (>= 4096 pages) flat/incremental(K=16): {speedup:.0}x \
         (acceptance: >= 10x)"
    );
    assert!(
        speedup >= 10.0,
        "incremental audit must be >= 10x cheaper than the flat audit on the \
         large state, got {speedup:.2}x"
    );
    // Deltas folded are a function of K alone (deterministic), ordered
    // by touched-set size.
    assert!(
        touched_by_k[0] < touched_by_k[1] && touched_by_k[1] < touched_by_k[2],
        "folded entries must grow with the touched set: {touched_by_k:?}"
    );
    // Kernel-size independence: the K=16 incremental audit on the 16x
    // larger kernel stays within noise of the small one — and in
    // particular far below even the *small* kernel's flat audit.
    let inc_small = inc16_by_size[0].max(1);
    let inc_large = *inc16_by_size.last().unwrap();
    assert!(
        (inc_large as f64) < (flat_large as f64) / 10.0,
        "incremental cost must not track kernel size \
         (inc {inc_large}ns vs flat {flat_large}ns)"
    );
    println!(
        "incremental K=16 across kernel sizes: {} -> {} ns (flat grew to {} ns)",
        inc_small, inc_large, flat_large
    );
}
