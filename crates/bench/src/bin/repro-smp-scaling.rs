//! Reproduces the **SMP scaling** experiment: aggregate syscall
//! throughput of the big-lock kernel vs the sharded lock-domain kernel
//! at 1, 2, 4, 8 and 16 CPUs.
//!
//! The workload is per-CPU-disjoint (each CPU owns its container,
//! process, thread and address-space range): even CPUs are mem-heavy
//! (single-page `mmap`/`munmap` rounds), odd CPUs are pm-heavy
//! (yields). Execution is a deterministic discrete-event simulation:
//! the runnable CPU with the smallest modeled clock issues its next
//! syscall, which is exactly how concurrently free-running cores
//! interleave on lock acquisitions. Serialization is visible through
//! the locks' modeled release timestamps — a big-lock kernel's clock
//! chain accumulates *every* CPU's work, while the sharded kernel only
//! chains work through the domains it actually contends on.
//!
//! Aggregate throughput = total ops / modeled seconds of the
//! longest-running CPU. The run fails if the sharded kernel does not
//! reach 2x the big-lock baseline at 4 CPUs, or if any stop-the-world
//! `total_wf` audit fails.

use std::collections::VecDeque;

use atmo_bench::render_table;
use atmo_hw::cycles::CpuProfile;
use atmo_kernel::kernel::BigLockKernel;
use atmo_kernel::smp::SmpKernel;
use atmo_kernel::{Kernel, KernelConfig, SyscallArgs, SyscallReturn};
use atmo_spec::harness::{Invariant, VerifResult};

/// Yields an odd (pm-heavy) CPU performs per even-CPU map/unmap round;
/// chosen so the pm and mem domain chains carry comparable work under
/// the big lock while the sharded pm chain (dispatch only — the
/// trampolines are per-CPU) stays below the mem chain.
const YIELDS_PER_ROUND: usize = 8;

/// Common surface of the two kernels under test.
trait SmpSyscall {
    fn call(&self, cpu: usize, args: SyscallArgs) -> SyscallReturn;
    fn clock(&self, cpu: usize) -> u64;
    fn audit(&self) -> VerifResult;
}

impl SmpSyscall for BigLockKernel {
    fn call(&self, cpu: usize, args: SyscallArgs) -> SyscallReturn {
        self.syscall(cpu, args)
    }
    fn clock(&self, cpu: usize) -> u64 {
        self.with_kernel(|k| k.cycles(cpu))
    }
    fn audit(&self) -> VerifResult {
        self.with_kernel(|k| k.wf())
    }
}

impl SmpSyscall for SmpKernel {
    fn call(&self, cpu: usize, args: SyscallArgs) -> SyscallReturn {
        self.syscall(cpu, args)
    }
    fn clock(&self, cpu: usize) -> u64 {
        self.cycles(cpu)
    }
    fn audit(&self) -> VerifResult {
        self.audit_total_wf()
    }
}

/// Boots a kernel with one runnable thread per CPU, each in its own
/// container (CPU 0 keeps the init thread).
fn boot(ncpus: usize) -> Kernel {
    let mut k = Kernel::boot(KernelConfig {
        mem_mib: 64,
        ncpus,
        root_quota: 16384,
    });
    for cpu in 1..ncpus {
        let c = k
            .syscall(
                0,
                SyscallArgs::NewContainer {
                    quota: 512,
                    cpus: vec![cpu],
                },
            )
            .val0() as usize;
        let p = k.syscall(0, SyscallArgs::NewProcess { cntr: c }).val0() as usize;
        let r = k.syscall(0, SyscallArgs::NewThread { proc: p, cpu });
        assert!(r.is_ok(), "setup thread for cpu {cpu}: {r:?}");
        k.pm.timer_tick(cpu);
    }
    k
}

/// The per-CPU op list: even CPUs map+unmap one page per round, odd
/// CPUs yield `YIELDS_PER_ROUND` times per round.
fn ops_for(cpu: usize, rounds: usize) -> VecDeque<SyscallArgs> {
    let mut ops = VecDeque::new();
    for round in 0..rounds {
        if cpu.is_multiple_of(2) {
            let va_base = 0x4000_0000 + round * 0x1000;
            ops.push_back(SyscallArgs::Mmap {
                va_base,
                len: 1,
                writable: true,
            });
            ops.push_back(SyscallArgs::Munmap { va_base, len: 1 });
        } else {
            for _ in 0..YIELDS_PER_ROUND {
                ops.push_back(SyscallArgs::Yield);
            }
        }
    }
    ops
}

struct RunStats {
    ops: u64,
    max_cycles: u64,
}

/// Discrete-event simulation: always advance the pending CPU with the
/// smallest modeled clock (free-running cores reach their next lock
/// acquisition in clock order).
fn run(k: &dyn SmpSyscall, ncpus: usize, rounds: usize) -> RunStats {
    let mut queues: Vec<VecDeque<SyscallArgs>> = (0..ncpus).map(|c| ops_for(c, rounds)).collect();
    let mut ops = 0u64;
    loop {
        let next = (0..ncpus)
            .filter(|&c| !queues[c].is_empty())
            .min_by_key(|&c| k.clock(c));
        let Some(cpu) = next else { break };
        let args = queues[cpu].pop_front().expect("non-empty queue");
        let r = k.call(cpu, args);
        assert!(r.is_ok(), "cpu {cpu}: {r:?}");
        ops += 1;
    }
    let audit = k.audit();
    assert!(audit.is_ok(), "total_wf audit failed: {audit:?}");
    RunStats {
        ops,
        max_cycles: (0..ncpus).map(|c| k.clock(c)).max().unwrap_or(0),
    }
}

fn mops_per_sec(stats: &RunStats, profile: &CpuProfile) -> f64 {
    stats.ops as f64 / profile.cycles_to_seconds(stats.max_cycles) / 1e6
}

fn main() {
    let rounds: usize = std::env::var("SMP_SCALING_ROUNDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200);
    let profile = CpuProfile::c220g5();

    let mut rows = Vec::new();
    let mut speedup_at_4 = 0.0;
    for ncpus in [1usize, 2, 4, 8, 16] {
        // Baselines boot identically; only the lock structure differs.
        let big = BigLockKernel::new(boot(ncpus));
        let big_stats = run(&big, ncpus, rounds);
        let big_tp = mops_per_sec(&big_stats, &profile);

        let shard = SmpKernel::new(boot(ncpus));
        let shard_stats = run(&shard, ncpus, rounds);
        let shard_tp = mops_per_sec(&shard_stats, &profile);

        let speedup = shard_tp / big_tp;
        if ncpus == 4 {
            speedup_at_4 = speedup;
        }
        for (name, stats, tp) in [
            ("big-lock", &big_stats, big_tp),
            ("sharded", &shard_stats, shard_tp),
        ] {
            rows.push(vec![
                format!("{ncpus}"),
                name.to_string(),
                format!("{}", stats.ops),
                format!("{:.0}k", stats.max_cycles as f64 / 1e3),
                format!("{tp:.2}"),
                if name == "sharded" {
                    format!("{speedup:.2}x")
                } else {
                    String::new()
                },
            ]);
        }

        // Lock instrumentation from the sharded run: the contention
        // profile behind the scaling numbers.
        let locks = shard.trace_snapshot().counters.locks;
        println!(
            "[{ncpus} cpu] lock acquisitions: pm {} (contended {}), mem {} (contended {}), \
             trace {}; max hold: pm {}cy, mem {}cy",
            locks.pm.acquisitions,
            locks.pm.contended,
            locks.mem.acquisitions,
            locks.mem.contended,
            locks.trace.acquisitions,
            locks.pm.hold_max_cycles,
            locks.mem.hold_max_cycles,
        );
    }
    println!();
    print!(
        "{}",
        render_table(
            &format!(
                "SMP scaling: big lock vs sharded lock domains \
                 ({rounds} rounds, modeled c220g5 cycles)"
            ),
            &["CPUs", "Config", "Ops", "Longest CPU", "Mops/s", "Speedup"],
            &rows,
        )
    );
    println!();
    println!(
        "workload: even CPUs mmap+munmap 1 page/round, odd CPUs {YIELDS_PER_ROUND} yields/round;"
    );
    println!("aggregate throughput = total ops / modeled time of the longest-running CPU.");
    println!(
        "sharded speedup at 4 CPUs: {speedup_at_4:.2}x (acceptance: >= 2.0x; \
         total_wf audited after every run)"
    );
    assert!(
        speedup_at_4 >= 2.0,
        "sharded kernel must reach 2x aggregate throughput at 4 CPUs, got {speedup_at_4:.2}x"
    );
}
