//! Reproduces **Figure 7**: the network-attached key-value store —
//! C+DPDK on Linux vs `atmo-c2` vs `atmo-c1-b32`, for 1M- and 8M-entry
//! tables and <8B,8B> / <16B,16B> / <32B,32B> key-value pairs.
//!
//! Requests really execute against the open-addressing/linear-probing
//! FNV table; the per-request memory-hierarchy cost is modeled by
//! [`kv_app_cost`] (an 8M-entry table misses to DRAM, a 1M-entry table
//! largely hits the LLC).

use atmo_apps::kvstore::{kv_app_cost, KvRequest, KvStore};
use atmo_bench::render_table;
use atmo_drivers::DriverCosts;
use atmo_hw::cycles::{CostModel, CpuProfile};

const REQUESTS: u64 = 100_000;

#[derive(Clone, Copy)]
enum Config {
    DpdkC,
    AtmoC2,
    AtmoC1B32,
}

impl Config {
    fn label(self) -> &'static str {
        match self {
            Config::DpdkC => "c+dpdk",
            Config::AtmoC2 => "atmo-c2",
            Config::AtmoC1B32 => "atmo-c1-b32",
        }
    }

    /// Per-request data-path cost excluding the kv operation itself.
    fn path_cost(self, model: &CostModel, costs: &DriverCosts) -> u64 {
        match self {
            // DPDK driver + framework mbuf handling.
            Config::DpdkC => 50 + 45 + 50 + costs.doorbell / 32,
            // App core of the two-core pipeline: ring in/out + poll.
            Config::AtmoC2 => 2 * model.ring_op + 20,
            // Same core: driver descriptors + ring + amortized call pair.
            Config::AtmoC1B32 => {
                costs.rx_desc
                    + costs.tx_desc
                    + model.ring_op
                    + (costs.doorbell + 2 * model.ipc_one_way()) / 32
            }
        }
    }
}

/// Runs a 90% GET / 10% SET workload against a real table, charging the
/// modeled per-request cost; returns Mops.
fn run(config: Config, entries: usize, kv_bytes: usize) -> f64 {
    let model = CostModel::c220g5();
    let costs = DriverCosts::atmosphere();
    let profile = CpuProfile::c220g5();

    // Functional stand-in table (full-size tables would only change the
    // *cost model*, which takes `entries` directly).
    let mut kv = KvStore::with_capacity(1 << 16);
    let mut key = vec![0u8; kv_bytes];
    let value = vec![0xabu8; kv_bytes];
    // Preload.
    for i in 0..20_000u32 {
        key[..4].copy_from_slice(&i.to_le_bytes());
        kv.set(&key, &value);
    }

    let per_request = config.path_cost(&model, &costs) + kv_app_cost(entries, kv_bytes);
    let mut cycles = 0u64;
    for i in 0..REQUESTS {
        let idx = ((i * 2_654_435_761) % 20_000) as u32;
        key[..4].copy_from_slice(&idx.to_le_bytes());
        let req = if i % 10 == 0 {
            KvRequest::Set(key.clone(), value.clone())
        } else {
            KvRequest::Get(key.clone())
        };
        let _resp = kv.serve(&req);
        cycles += per_request;
    }
    profile.throughput(REQUESTS, cycles) / 1e6
}

fn main() {
    for &entries in &[1_000_000usize, 8_000_000] {
        let rows: Vec<Vec<String>> = [Config::DpdkC, Config::AtmoC2, Config::AtmoC1B32]
            .iter()
            .map(|cfg| {
                let mut row = vec![cfg.label().to_string()];
                for &kv_bytes in &[8usize, 16, 32] {
                    row.push(format!("{:.2}", run(*cfg, entries, kv_bytes)));
                }
                row
            })
            .collect();
        print!(
            "{}",
            render_table(
                &format!(
                    "Figure 7: kv-store throughput, {}M-entry table (Mops per core)",
                    entries / 1_000_000
                ),
                &["Config", "<8B,8B>", "<16B,16B>", "<32B,32B>"],
                &rows,
            )
        );
        println!();
    }
    println!("shape: atmo-c2 > c+dpdk > atmo-c1-b32; larger tables and larger");
    println!("key-value pairs reduce throughput (DRAM misses, copy cost).");
}
