//! Ablation of the paper's key design choices (§4.1, §6.2): flat ghost
//! state vs. recursive tree reasoning, measured on this artefact.
//!
//! Two comparisons:
//!
//! 1. **Runtime checking cost** — the flat `container_tree_wf` loops vs.
//!    a recursive descent re-deriving paths/subtrees, over growing trees
//!    (chain and bushy shapes). The flat check is what this artefact runs
//!    on every audited transition; the recursive check is the shape a
//!    hierarchical-ownership design would verify.
//! 2. **Proof-effort analog** — the paper's own §6.2 numbers: the NrOS
//!    page table (recursive ownership, unrolled induction) vs. the
//!    Atmosphere page table (flat per-level permissions), replayed from
//!    the verification-task catalogs.

use std::time::Instant;

use atmo_bench::render_table;
use atmo_pm::ablation::{
    build_tree, flat_subtree, flat_tree_check, recursive_subtree, recursive_tree_check,
};
use atmo_verif::schedule::simulate_verification;
use atmo_verif::tasks::{system_catalog, system_loc, SystemId};

fn time_us(mut f: impl FnMut() -> bool, iters: u32) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        assert!(f());
    }
    start.elapsed().as_micros() as f64 / iters as f64
}

fn main() {
    println!("-- structural validation: flat vs recursive (µs per full check) --");
    println!("(the flat check is quantifier-shaped — O(n²) pairwise conditions a");
    println!(" runtime checker pays for but an SMT solver discharges directly; the");
    println!(" recursive descent is O(n) at runtime but is exactly the inductive");
    println!(" shape the paper shows SMT solvers cannot handle at scale)\n");
    let mut rows = Vec::new();
    for &(n, fanout, shape) in &[
        (32usize, 1usize, "chain"),
        (32, 4, "bushy"),
        (128, 1, "chain"),
        (128, 4, "bushy"),
        (512, 4, "bushy"),
    ] {
        let (root, cntrs) = build_tree(n, fanout);
        let iters = if n >= 512 { 3 } else { 10 };
        let flat = time_us(|| flat_tree_check(root, &cntrs), iters);
        let rec = time_us(|| recursive_tree_check(root, &cntrs), iters);
        rows.push(vec![
            format!("{n} nodes ({shape})"),
            format!("{flat:.0}"),
            format!("{rec:.0}"),
            format!("{:.2}x", rec / flat.max(1.0)),
        ]);
    }
    print!(
        "{}",
        render_table(
            "Tree validation cost",
            &["Tree", "flat µs", "recursive µs", "ratio"],
            &rows,
        )
    );

    println!("\n-- subtree query: ghost set vs recursive walk (µs) --");
    println!("(what the isolation/non-interference proofs actually consume: the");
    println!(" flat ghost subtree is a lookup; recursive reachability re-walks the");
    println!(" tree — the T_A construction cost of §4.3)\n");
    let mut rows = Vec::new();
    for &n in &[64usize, 256, 1024] {
        let (root, cntrs) = build_tree(n, 4);
        let flat = time_us(|| !flat_subtree(&cntrs, root).is_empty(), 50);
        let rec = time_us(|| !recursive_subtree(&cntrs, root).is_empty(), 50);
        rows.push(vec![
            format!("{n} nodes"),
            format!("{flat:.1}"),
            format!("{rec:.1}"),
            format!("{:.1}x", rec / flat.max(0.1)),
        ]);
    }
    print!(
        "{}",
        render_table(
            "Subtree query cost",
            &["Tree", "flat µs", "recursive µs", "ratio"],
            &rows
        )
    );

    println!("\n-- §6.2 proof-effort analog: page-table designs --\n");
    let nros = system_catalog(SystemId::NrosPageTable);
    let atmo = system_catalog(SystemId::AtmoPageTable);
    let (nros_p, nros_e) = system_loc(SystemId::NrosPageTable);
    let (atmo_p, atmo_e) = system_loc(SystemId::AtmoPageTable);
    let rows = vec![
        vec![
            "NrOS PT (recursive ownership)".to_string(),
            format!("{:.0}s", simulate_verification(&nros, 1, 1.0).wall_s),
            format!("{:.1}:1", nros_p as f64 / nros_e as f64),
        ],
        vec![
            "Atmo PT (flat permissions)".to_string(),
            format!("{:.0}s", simulate_verification(&atmo, 1, 1.0).wall_s),
            format!("{:.1}:1", atmo_p as f64 / atmo_e as f64),
        ],
    ];
    print!(
        "{}",
        render_table(
            "Page-table verification (paper §6.2: 3x faster, 3x lower ratio)",
            &["Design", "1-thread verif", "proof/code"],
            &rows,
        )
    );
}
