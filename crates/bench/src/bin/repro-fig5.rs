//! Reproduces **Figure 5**: NVMe driver performance — 4 KiB sequential
//! reads and writes, batch sizes 1 and 32, across Linux fio, SPDK and the
//! Atmosphere configurations.

use atmo_baselines::{fio_iops, spdk_iops};
use atmo_bench::{fmt_kiops, render_table};
use atmo_drivers::deploy::{run_nvme_scenario, Deployment};
use atmo_drivers::nvme::IoKind;
use atmo_drivers::DriverCosts;
use atmo_hw::cycles::{CostModel, CpuProfile};

fn atmo(deploy: Deployment, kind: IoKind, total: u64) -> f64 {
    run_nvme_scenario(
        deploy,
        kind,
        total,
        &DriverCosts::atmosphere(),
        &CostModel::c220g5(),
        &CpuProfile::c220g5(),
    )
}

fn main() {
    let profile = CpuProfile::c220g5();
    for (kind, label) in [
        (IoKind::Read, "sequential read"),
        (IoKind::Write, "sequential write"),
    ] {
        let total = 30_000;
        let rows = vec![
            ("linux-fio-b1", fio_iops(kind, 1, 2_000, &profile)),
            ("linux-fio-b32", fio_iops(kind, 32, total, &profile)),
            ("spdk-b1", spdk_iops(kind, 1, 2_000, &profile)),
            ("spdk-b32", spdk_iops(kind, 32, total, &profile)),
            (
                "atmo-driver-b1",
                atmo(Deployment::Linked { batch: 1 }, kind, 2_000),
            ),
            (
                "atmo-driver-b32",
                atmo(Deployment::Linked { batch: 32 }, kind, total),
            ),
            (
                "atmo-c2",
                atmo(Deployment::CrossCore { batch: 32 }, kind, total),
            ),
            (
                "atmo-c1-b1",
                atmo(Deployment::SameCoreIpc { batch: 1 }, kind, 2_000),
            ),
            (
                "atmo-c1-b32",
                atmo(Deployment::SameCoreIpc { batch: 32 }, kind, total),
            ),
        ]
        .into_iter()
        .map(|(name, iops)| {
            let bar = "#".repeat((iops / 12_000.0) as usize);
            vec![name.to_string(), fmt_kiops(iops), bar]
        })
        .collect::<Vec<_>>();
        print!(
            "{}",
            render_table(
                &format!("Figure 5: NVMe driver performance — {label} (4 KiB, IOPS per core)"),
                &["Config", "IOPS", ""],
                &rows,
            )
        );
        println!();
    }
    println!("paper anchors: fio read 13K (b1) / 141K (b32); atmo ≈ SPDK at device peak reads;");
    println!("writes: device ~256K, Linux within 3%, Atmosphere ~232K (10% overhead).");
}
