//! The block-datapath system calls: `BlkSubmitBatch` / `BlkReapBatch`.
//!
//! These are the io_uring-shaped kernel half of the zero-copy block
//! subsystem. The caller fills DMA-pinned buffers in place, posts a
//! batch of submission entries naming them by IOVA, and later harvests
//! completion cookies — the kernel never copies payload bytes, it only
//! validates and accounts:
//!
//! * every entry's IOVA must translate through the IOMMU domain the
//!   queue's device is attached to (the same tables `IommuMap` filled
//!   when the pool was pinned) — a stale or foreign address is refused
//!   with `Denied` *before any entry is accepted*, preserving the
//!   noop-on-error discipline the audit enforces;
//! * per-I/O host work is one submission-queue entry
//!   ([`atmo_hw::cycles::CostModel::blk_sqe`]) or completion-queue
//!   entry (`blk_cqe`), with the doorbell charged once per batch —
//!   strictly cheaper than a per-I/O copying path;
//! * a blocking reap with nothing ready parks the caller until the next
//!   device completion and charges the IPC fast-path cost for the
//!   wakeup — the PR 3 direct-handoff machinery reused as the
//!   completion-notification path (counted as `blk.wakeups`).

use atmo_hw::VAddr;
use atmo_pm::types::ThrdPtr;
use atmo_trace::{BlkOutcome, DeviceKind, KernelEvent};

use crate::blk::{BlkOp, BLK_SQ_CAPACITY};
use crate::syscall::{ExecCtx, SyscallError, SyscallReturn};

/// Internal result alias for the block handlers.
type Ret = SyscallReturn;

fn ok(vals: [u64; 4]) -> Ret {
    SyscallReturn { result: Ok(vals) }
}

fn err(e: SyscallError) -> Ret {
    SyscallReturn { result: Err(e) }
}

impl ExecCtx<'_> {
    /// `blk_submit_batch`: validates and posts `ops` on queue pair
    /// `queue`, ringing the doorbell once. Returns
    /// `[accepted, in_flight, 0, 0]`.
    ///
    /// Error paths change nothing: every entry is checked (queue exists,
    /// capacity, distinct cookies, IOVA translates for the queue's
    /// device under a domain the caller is authorized on) before the
    /// first entry is accepted.
    pub(crate) fn sys_blk_submit(&mut self, t: ThrdPtr, queue: usize, ops: &[BlkOp]) -> Ret {
        let costs = self.costs;
        self.charge(costs.syscall_validate);
        let cntr = self.pm.thrd(t).owning_cntr;
        let m = self.mem.domain();
        let Some(q) = m.blk.queues.get(queue) else {
            return err(SyscallError::NotFound);
        };
        if ops.is_empty() {
            return err(SyscallError::Invalid);
        }
        if q.in_flight() + q.done_pending() + ops.len() > BLK_SQ_CAPACITY {
            return err(SyscallError::Capacity);
        }
        let mut cookies: Vec<u64> = ops.iter().map(|op| op.cookie).collect();
        cookies.sort_unstable();
        cookies.dedup();
        if cookies.len() != ops.len() || ops.iter().any(|op| q.cookie_pending(op.cookie)) {
            return err(SyscallError::Invalid);
        }
        let dev = q.device();
        // The queue's device must sit in an IOMMU domain the caller may
        // drive, and every buffer must be pinned there: DMA stays inside
        // the caller's own granted memory (§3's isolation rule).
        let Some(domain) = m.vm.iommu.domain_of(dev) else {
            return err(SyscallError::WrongState);
        };
        if !m.iommu_authorized(domain, cntr) {
            return err(SyscallError::Denied);
        }
        if ops
            .iter()
            .any(|op| m.vm.iommu.translate(dev, VAddr(op.iova)).is_none())
        {
            return err(SyscallError::Denied);
        }
        // Validated: accept the whole batch.
        self.meter
            .charge(ops.len() as u64 * costs.blk_sqe + costs.blk_doorbell);
        let now = self.meter.now();
        let q = m.blk.queues.get_mut(queue).expect("checked above");
        for op in ops {
            q.submit(now, op);
        }
        self.trace.emit(KernelEvent::DriverTx {
            device: DeviceKind::Nvme,
            batch: ops.len() as u64,
        });
        self.trace
            .blk_event(BlkOutcome::SubmitBatch, ops.len() as u64);
        ok([ops.len() as u64, q.in_flight() as u64, 0, 0])
    }

    /// `blk_reap_batch`: harvests up to `max` finished completions from
    /// queue pair `queue` into the caller's completion ring (readable
    /// host-side through `BlkQueuePair::drain_reaped`). Returns
    /// `[reaped, in_flight, still_done, 0]`.
    ///
    /// With `wait` set and nothing ready, the caller sleeps until the
    /// next device completion; the wakeup is delivered through the IPC
    /// fast path and charged accordingly. A reap on a queue with nothing
    /// in flight *and* nothing done is `WrongState` (there is no
    /// completion to ever arrive), checked before any mutation.
    pub(crate) fn sys_blk_reap(
        &mut self,
        _t: ThrdPtr,
        queue: usize,
        max: usize,
        wait: bool,
    ) -> Ret {
        let costs = self.costs;
        self.charge(costs.syscall_validate);
        let m = self.mem.domain();
        let Some(q) = m.blk.queues.get(queue) else {
            return err(SyscallError::NotFound);
        };
        if max == 0 {
            return err(SyscallError::Invalid);
        }
        if q.in_flight() == 0 && q.done_pending() == 0 {
            return err(SyscallError::WrongState);
        }
        let q = m.blk.queues.get_mut(queue).expect("checked above");
        q.poll(self.meter.now());
        if q.done_pending() == 0 {
            if !wait {
                return ok([0, q.in_flight() as u64, 0, 0]);
            }
            // Park until the next completion: the device's interrupt
            // wakes the caller through the direct-handoff fast path.
            let sleep = q
                .cycles_until_completion(self.meter.now())
                .expect("in_flight > 0");
            self.meter.charge(sleep + costs.ipc_fastpath);
            self.trace.blk_event(BlkOutcome::Wakeup, 1);
            q.poll(self.meter.now());
        }
        let n = q.take_done(max);
        self.meter
            .charge(n as u64 * costs.blk_cqe + costs.blk_doorbell);
        self.trace.emit(KernelEvent::DriverRx {
            device: DeviceKind::Nvme,
            batch: n as u64,
        });
        self.trace.blk_event(BlkOutcome::ReapBatch, n as u64);
        ok([n as u64, q.in_flight() as u64, q.done_pending() as u64, 0])
    }
}
