//! The Atmosphere microkernel (the paper's primary contribution).
//!
//! This crate assembles the substrates — simulated hardware (`atmo-hw`),
//! the page allocator (`atmo-mem`), page tables and IOMMU (`atmo-ptable`),
//! and the process manager (`atmo-pm`) — into the full microkernel and
//! implements the artefacts the paper proves about it:
//!
//! * [`kernel`] — the kernel state Ψ, boot, the mem lock domain, and the
//!   big-lock SMP wrapper (§3: "all interrupts and system calls execute
//!   in the microkernel under one global lock");
//! * [`domain`] — lock domains: ordered, instrumented locks with an
//!   optional runtime lock-order checker (`lock-order-checks`);
//! * [`smp`] — the sharded SMP kernel: per-subsystem lock domains
//!   (pm / mem / trace) with a per-CPU free-page cache fast path;
//! * [`vm`] — the virtual-memory subsystem owning every page table and
//!   the IOMMU (§4.2's closure hierarchy);
//! * [`syscall`] — the system-call interface: `mmap`, `munmap`,
//!   container/process/thread lifecycle, endpoints and IPC
//!   (`send`/`recv`/`call`/`reply`), page grants, yield;
//! * [`abs`] — the abstract kernel state Ψ the specifications quantify
//!   over;
//! * [`spec`] — per-syscall transition specifications
//!   (`syscall_mmap_spec` and friends, Listing 1);
//! * [`refine`] (well-formedness) — the `total_wf()` theorem, including the
//!   kernel-wide memory-safety and leak-freedom equations;
//! * [`refine`] — the refinement harness: every audited syscall checks
//!   `total_wf(Ψ')` and its transition spec;
//! * [`iso`] — the isolation invariants `memory_iso` / `endpoint_iso` and
//!   the flat `C_A`/`P_A`/`T_A` constructions of §4.3;
//! * [`noninterf`] — observable state, the unwinding conditions (output
//!   consistency, step consistency, local respect) and the A/B/V scenario;
//! * [`vservice`] — the verified shared-service container V: an
//!   event-driven state machine with its own functional-correctness spec.

pub mod abs;
pub mod audit;
pub mod blk;
pub mod domain;
pub mod interrupt;
pub mod iso;
pub mod kernel;
pub mod noninterf;
pub mod nr;
pub mod refine;
pub mod runner;
pub mod smp;
pub mod spec;
pub mod syscall;
pub mod syscall_blk;
pub mod syscall_ext;
pub mod vm;
pub mod vservice;

pub use abs::AbstractKernel;
pub use audit::{AuditState, Auditor};
pub use blk::{BlkOp, BlkQueuePair, BlkState, BlkTiming, BLK_DEVICE_ID, BLK_SQ_CAPACITY};
pub use domain::{DomainGuard, DomainLock, LockLevel};
pub use kernel::{BigLockKernel, Kernel, KernelConfig, MemDomain};
pub use nr::{KernelNr, MemOp, MemView, PmOp, PmView};
pub use refine::{cross_domain_wf, mem_domain_wf, pm_domain_wf, recovery_refines, total_wf_parts};
pub use smp::{PmShard, SmpKernel};
pub use syscall::{SyscallArgs, SyscallError, SyscallReturn};
pub use vm::VmSubsystem;
