//! Extended system calls: 2 MiB superpage mappings and the IOMMU
//! interface.
//!
//! * **Superpages** (§4.2): "We support allocation of 2MB and 1GB
//!   superpages to support construction of large address spaces with low
//!   TLB pressure." `MmapHuge2M` allocates and maps one 2 MiB block
//!   (512 pages of quota); `MunmapHuge2M` releases it.
//! * **IOMMU** (§3, §5): device drivers live in user space and DMA is
//!   confined by IOMMU protection domains. Containers create domains,
//!   attach devices, map their own pages for DMA, and may pass domain
//!   identifiers to other containers through endpoints
//!   (`IpcPayload::iommu_grant`).
//!
//! Like the core handlers, these run against an
//! [`ExecCtx`](crate::syscall::ExecCtx): every IOMMU table and the
//! superpage allocator live in the mem domain, so the sharded kernel
//! takes the mem lock lazily on first touch.

use atmo_hw::paging::EntryFlags;
use atmo_hw::VAddr;
use atmo_mem::PageSize;
use atmo_pm::types::ThrdPtr;
use atmo_ptable::DeviceId;

use crate::syscall::{ExecCtx, SyscallError, SyscallReturn};

/// Internal result alias for the extension handlers.
type Ret = SyscallReturn;

fn ok(vals: [u64; 4]) -> Ret {
    SyscallReturn { result: Ok(vals) }
}

fn err(e: SyscallError) -> Ret {
    SyscallReturn { result: Err(e) }
}

impl ExecCtx<'_> {
    /// Maps one 2 MiB superpage at `va_base` in the caller's space,
    /// charging 512 pages of quota.
    pub(crate) fn sys_mmap_huge_2m(&mut self, t: ThrdPtr, va_base: usize, writable: bool) -> Ret {
        let costs = self.costs;
        self.charge(
            costs.syscall_validate
                + costs.page_alloc_4k
                + costs.quota_account
                + 2 * costs.pt_level_read
                + costs.pt_level_write
                + costs.page_state_update
                + costs.tlb_invalidate,
        );
        let va = VAddr(va_base);
        if !va.is_aligned(atmo_hw::PAGE_SIZE_2M) || !va.is_canonical() {
            return err(SyscallError::Invalid);
        }
        let (proc_ptr, cntr) = {
            let th = self.pm.thrd(t);
            (th.owning_proc, th.owning_cntr)
        };
        let as_id = self.pm.proc(proc_ptr).addr_space;
        let frames = PageSize::Size2M.frames();
        if let Err(e) = self.pm.charge(cntr, frames) {
            return err(e.into());
        }
        let m = self.mem.domain();
        let frame = match m.alloc.alloc_mapped(PageSize::Size2M) {
            Ok(f) => f,
            Err(_) => {
                self.pm.uncharge(cntr, frames);
                return err(SyscallError::NoMem);
            }
        };
        let flags = if writable {
            EntryFlags::user_rw()
        } else {
            EntryFlags::user_ro()
        };
        let pt = m.vm.table_mut(as_id).expect("space exists");
        match pt.map_2m_page(&mut m.alloc, va, frame, flags) {
            Ok(()) => ok([va_base as u64, frames as u64, 0, 0]),
            Err(e) => {
                m.alloc.dec_map_ref(frame);
                self.pm.uncharge(cntr, frames);
                err(e.into())
            }
        }
    }

    /// Unmaps the 2 MiB superpage at `va_base`, releasing its quota.
    pub(crate) fn sys_munmap_huge_2m(&mut self, t: ThrdPtr, va_base: usize) -> Ret {
        let costs = self.costs;
        self.charge(
            costs.syscall_validate
                + costs.pt_level_write
                + costs.page_state_update
                + costs.tlb_invalidate,
        );
        let (proc_ptr, cntr) = {
            let th = self.pm.thrd(t);
            (th.owning_proc, th.owning_cntr)
        };
        let as_id = self.pm.proc(proc_ptr).addr_space;
        let m = self.mem.domain();
        let pt = m.vm.table_mut(as_id).expect("space exists");
        match pt.unmap_2m_page(VAddr(va_base)) {
            Ok(frame) => {
                m.alloc.dec_map_ref(frame);
                self.pm.uncharge(cntr, PageSize::Size2M.frames());
                ok([PageSize::Size2M.frames() as u64, 0, 0, 0])
            }
            Err(e) => err(e.into()),
        }
    }

    /// Creates an IOMMU protection domain owned by the caller's
    /// container (its translation root is a kernel page).
    pub(crate) fn sys_iommu_create_domain(&mut self, t: ThrdPtr) -> Ret {
        let costs = self.costs;
        self.charge(costs.page_alloc_4k + costs.quota_account);
        let cntr = self.pm.thrd(t).owning_cntr;
        if let Err(e) = self.pm.charge(cntr, 1) {
            return err(e.into());
        }
        let m = self.mem.domain();
        match m.vm.iommu.create_domain(&mut m.alloc) {
            Ok(id) => {
                m.iommu_owner.insert(id, cntr);
                ok([id as u64, 0, 0, 0])
            }
            Err(_) => {
                self.pm.uncharge(cntr, 1);
                err(SyscallError::NoMem)
            }
        }
    }

    /// Attaches `device` to `domain` (authorized containers only).
    pub(crate) fn sys_iommu_attach(&mut self, t: ThrdPtr, domain: u32, device: DeviceId) -> Ret {
        self.charge(self.costs.syscall_validate);
        let cntr = self.pm.thrd(t).owning_cntr;
        let m = self.mem.domain();
        if !m.iommu_owner.contains_key(&domain) {
            return err(SyscallError::NotFound);
        }
        if !m.iommu_authorized(domain, cntr) {
            return err(SyscallError::Denied);
        }
        if m.vm.iommu.attach_device(domain, device) {
            ok([0, 0, 0, 0])
        } else {
            err(SyscallError::WrongState)
        }
    }

    /// Detaches `device` from whatever domain it is attached to.
    pub(crate) fn sys_iommu_detach(&mut self, t: ThrdPtr, device: DeviceId) -> Ret {
        self.charge(self.costs.syscall_validate);
        let cntr = self.pm.thrd(t).owning_cntr;
        let m = self.mem.domain();
        match m.vm.iommu.domain_of(device) {
            Some(domain) if m.iommu_authorized(domain, cntr) => {
                m.vm.iommu.detach_device(device);
                ok([0, 0, 0, 0])
            }
            Some(_) => err(SyscallError::Denied),
            None => err(SyscallError::NotFound),
        }
    }

    /// Maps the frame backing the caller's `va` at `iova` in `domain`,
    /// making it DMA-visible. The IOMMU mapping holds its own reference
    /// to the frame.
    pub(crate) fn sys_iommu_map(&mut self, t: ThrdPtr, domain: u32, iova: usize, va: usize) -> Ret {
        let costs = self.costs;
        self.charge(costs.syscall_validate + 3 * costs.pt_level_read + costs.pt_level_write);
        let (proc_ptr, cntr) = {
            let th = self.pm.thrd(t);
            (th.owning_proc, th.owning_cntr)
        };
        let as_id = self.pm.proc(proc_ptr).addr_space;
        let m = self.mem.domain();
        if !m.iommu_owner.contains_key(&domain) {
            return err(SyscallError::NotFound);
        }
        if !m.iommu_authorized(domain, cntr) {
            return err(SyscallError::Denied);
        }
        let va_page = VAddr(va).align_down(atmo_hw::PAGE_SIZE_4K).as_usize();
        // DMA pinning inside a transparently promoted region demotes it
        // back to 4 KiB entries first: the IOMMU maps (and references)
        // individual frames, so the CPU-side view must expose the same
        // granularity. The IOMMU view after the round trip is identical
        // to what it would be had the region never been promoted.
        let head = va_page & !(atmo_hw::PAGE_SIZE_2M - 1);
        if m.vm.is_promoted(as_id, head) {
            let frames_2m = PageSize::Size2M.frames() as u64;
            self.meter.charge(
                costs.pt_level_alloc + costs.pt_level_write + frames_2m * costs.pt_fill_write,
            );
            let frame_head = {
                let pt = m.vm.table_mut(as_id).expect("space exists");
                let fh = pt
                    .demote_2m(&mut m.alloc, VAddr(head))
                    .expect("promoted entries are live 2 MiB mappings");
                pt.defer_shootdown(VAddr(head), frames_2m);
                let flushed = pt.flush_shootdowns();
                debug_assert!(flushed >= frames_2m);
                fh
            };
            m.alloc.split_mapped_2m(frame_head);
            m.vm.clear_promoted(as_id, head);
            self.meter.charge(costs.tlb_shootdown_batch);
            m.vm.trace_vm(atmo_trace::VmOutcome::SuperpageDemotion, 1);
            m.vm.trace_vm(atmo_trace::VmOutcome::ShootdownDeferred, frames_2m);
            m.vm.trace_vm(atmo_trace::VmOutcome::ShootdownFlushed, frames_2m);
        }
        // Resolve the caller's mapping (only your own memory can be made
        // DMA-visible — the isolation-preserving rule).
        let frame = {
            let pt = m.vm.table(as_id).expect("space exists");
            match pt.map_4k.index(&va_page) {
                Some(e) => e.frame,
                None => return err(SyscallError::Fault),
            }
        };
        m.alloc.inc_map_ref(frame);
        match m.vm.iommu.map_4k(
            &mut m.alloc,
            domain,
            VAddr(iova),
            frame,
            EntryFlags::user_rw(),
        ) {
            Ok(()) => ok([iova as u64, 0, 0, 0]),
            Err(e) => {
                m.alloc.dec_map_ref(frame);
                err(e.into())
            }
        }
    }

    /// Unmaps `iova` from `domain`, dropping the DMA reference.
    pub(crate) fn sys_iommu_unmap(&mut self, t: ThrdPtr, domain: u32, iova: usize) -> Ret {
        let costs = self.costs;
        self.charge(costs.syscall_validate + costs.pt_level_write);
        let cntr = self.pm.thrd(t).owning_cntr;
        let m = self.mem.domain();
        if !m.iommu_owner.contains_key(&domain) {
            return err(SyscallError::NotFound);
        }
        if !m.iommu_authorized(domain, cntr) {
            return err(SyscallError::Denied);
        }
        match m.vm.iommu.unmap_4k(domain, VAddr(iova)) {
            Ok(frame) => {
                m.alloc.dec_map_ref(frame);
                ok([0, 0, 0, 0])
            }
            Err(e) => err(e.into()),
        }
    }

    /// Tears down every IOMMU domain owned by a container in `dead`:
    /// detaches devices, unmaps IOVAs (dropping frame references), frees
    /// the translation tables, and removes access entries.
    pub(crate) fn cleanup_iommu_for(&mut self, dead: &[usize]) {
        let m = self.mem.domain();
        let doomed: Vec<u32> = m
            .iommu_owner
            .iter()
            .filter(|(_, owner)| dead.contains(owner))
            .map(|(id, _)| *id)
            .collect();
        for id in doomed {
            for dev in m.vm.iommu.attached_devices(id).to_vec() {
                m.vm.iommu.detach_device(dev);
            }
            for iova in m.vm.iommu.domain_iovas(id) {
                let frame =
                    m.vm.iommu
                        .unmap_4k(id, VAddr(iova))
                        .expect("listed iova unmaps");
                m.alloc.dec_map_ref(frame);
            }
            m.vm.iommu.destroy_domain(&mut m.alloc, id);
            let owner = m.iommu_owner.remove(&id).expect("owned domain");
            if self.pm.cntr_perms.contains(owner) {
                self.pm.uncharge(owner, 1);
            }
            m.iommu_access.remove(&id);
        }
        // Dead containers also lose any granted access to surviving
        // domains.
        for acl in m.iommu_access.values_mut() {
            acl.retain(|c| !dead.contains(c));
        }
    }

    /// Grants the receiving thread's container access to `domain` (the
    /// delivery half of an `iommu_grant`). No-op for unknown domains.
    pub(crate) fn deliver_iommu_grant(&mut self, receiver: ThrdPtr, domain: u32) {
        let cntr = self.pm.thrd(receiver).owning_cntr;
        let m = self.mem.domain();
        if !m.iommu_owner.contains_key(&domain) {
            return;
        }
        let acl = m.iommu_access.entry(domain).or_default();
        if !acl.contains(&cntr) && m.iommu_owner.get(&domain) != Some(&cntr) {
            acl.push(cntr);
        }
    }
}
