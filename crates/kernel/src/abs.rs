//! The abstract kernel state Ψ.
//!
//! Specifications in the paper quantify over the kernel state before and
//! after a transition (`Ψ` and `Ψ'` in Listing 1). [`AbstractKernel`] is
//! that state: a pure, comparable value assembled from the abstract views
//! of every subsystem — the process manager's object maps, each process's
//! abstract address space, and the allocator's page sets.

use atmo_hw::addr::PAGE_SIZE_4K;
use atmo_mem::{PagePtr, PageSize};
use atmo_pm::manager::PmView;
use atmo_pm::{Container, Endpoint, Process, Thread};
use atmo_ptable::MapEntry;
use atmo_spec::{Map, Set};

use crate::vm::AsId;

/// One process's abstract address space: va → (entry, size).
pub type AbsSpace = Map<usize, (MapEntry, PageSize)>;

/// The abstract kernel state Ψ.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AbstractKernel {
    /// Process-manager object maps (containers, processes, threads,
    /// endpoints) and the root container.
    pub pm: PmView,
    /// Abstract address spaces, keyed by address-space id.
    pub spaces: Map<AsId, AbsSpace>,
    /// The allocator's free 4 KiB pages.
    pub free_4k: Set<PagePtr>,
    /// Pages backing kernel objects and page tables.
    pub allocated: Set<PagePtr>,
    /// Mapped user block heads.
    pub mapped: Set<PagePtr>,
}

impl AbstractKernel {
    /// The domain of live threads (`Ψ.thread_dom()`, Listing 1).
    pub fn thread_dom(&self) -> Set<usize> {
        self.pm.threads.dom()
    }

    /// A thread's abstract state (`Ψ.get_thread(t_ptr)`).
    pub fn get_thread(&self, t: usize) -> Option<&Thread> {
        self.pm.threads.index(&t)
    }

    /// A container's abstract state (`Ψ.get_cntr(c_ptr)`).
    pub fn get_container(&self, c: usize) -> Option<&Container> {
        self.pm.containers.index(&c)
    }

    /// A process's abstract state.
    pub fn get_process(&self, p: usize) -> Option<&Process> {
        self.pm.processes.index(&p)
    }

    /// An endpoint's abstract state.
    pub fn get_endpoint(&self, e: usize) -> Option<&Endpoint> {
        self.pm.endpoints.index(&e)
    }

    /// A process's abstract address space
    /// (`Ψ.get_address_space(proc_ptr)`, Listing 1). Empty when the
    /// process or its space is unknown.
    pub fn get_address_space(&self, proc_ptr: usize) -> AbsSpace {
        match self.pm.processes.index(&proc_ptr) {
            Some(p) => self
                .spaces
                .index(&p.addr_space)
                .cloned()
                .unwrap_or_default(),
            None => Map::empty(),
        }
    }

    /// A thread's endpoint descriptor table
    /// (`Ψ.get_thrd_edpt_descriptors(t_ptr)`, §4.3).
    pub fn get_thrd_edpt_descriptors(&self, t: usize) -> Vec<Option<usize>> {
        self.pm
            .threads
            .index(&t)
            .map(|th| th.edpt_descriptors.to_vec())
            .unwrap_or_default()
    }

    /// `Ψ.page_is_free(page)` (Listing 1 line 22).
    pub fn page_is_free(&self, page: PagePtr) -> bool {
        self.free_4k.contains(&page)
    }

    /// The set of frames mapped anywhere in the system.
    pub fn all_mapped_frames(&self) -> Set<PagePtr> {
        let mut s = Set::empty();
        for (_id, space) in self.spaces.iter() {
            for (_va, (e, _sz)) in space.iter() {
                s = s.insert(e.frame);
            }
        }
        s
    }
}

// ----- representation-independent space views --------------------------

/// Looks up the entry covering the 4 KiB page at `va` in `space`,
/// whatever the representation: an exact `Size4K` entry, or a superpage
/// entry whose range contains `va`. Returns `(base va, entry, size)` of
/// the covering entry.
pub fn space_covering(space: &AbsSpace, va: usize) -> Option<(usize, MapEntry, PageSize)> {
    space
        .iter()
        .find(|(base, (_e, sz))| va >= **base && va < **base + sz.bytes())
        .map(|(base, (e, sz))| (*base, *e, *sz))
}

/// Expands every entry of `space` into its per-4 KiB coverage: a
/// `Size2M`/`Size1G` entry becomes `frames()` consecutive 4 KiB entries
/// with `frame = head + offset` and the huge bit cleared. Two spaces
/// mapping the same frames with the same permissions normalize
/// identically regardless of representation — this is the view the
/// batched `Mmap`/`Munmap` specs and the promotion-equivalence fuzz
/// compare (§4.3 adapted to superpages).
pub fn normalize_space_4k(space: &AbsSpace) -> Map<usize, MapEntry> {
    let mut items = Vec::new();
    for (base, (e, sz)) in space.iter() {
        for k in 0..sz.frames() {
            let mut flags = e.flags;
            flags.huge = false;
            items.push((
                *base + k * PAGE_SIZE_4K,
                MapEntry {
                    frame: e.frame + k * PAGE_SIZE_4K,
                    flags,
                },
            ));
        }
    }
    items.into_iter().collect()
}

// ----- frame-condition helpers used by every transition spec -----------

/// All threads unchanged between Ψ and Ψ' (Listing 1 lines 7–11).
pub fn threads_unchanged(pre: &AbstractKernel, post: &AbstractKernel) -> bool {
    pre.pm.threads == post.pm.threads
}

/// All threads except those in `except` unchanged.
pub fn threads_unchanged_except(
    pre: &AbstractKernel,
    post: &AbstractKernel,
    except: &[usize],
) -> bool {
    let pred = |k: &usize| !except.contains(k);
    pre.pm.threads.restrict(pred) == post.pm.threads.restrict(pred)
}

/// All containers except those in `except` unchanged.
pub fn containers_unchanged_except(
    pre: &AbstractKernel,
    post: &AbstractKernel,
    except: &[usize],
) -> bool {
    let pred = |k: &usize| !except.contains(k);
    pre.pm.containers.restrict(pred) == post.pm.containers.restrict(pred)
}

/// All processes except those in `except` unchanged.
pub fn processes_unchanged_except(
    pre: &AbstractKernel,
    post: &AbstractKernel,
    except: &[usize],
) -> bool {
    let pred = |k: &usize| !except.contains(k);
    pre.pm.processes.restrict(pred) == post.pm.processes.restrict(pred)
}

/// All endpoints except those in `except` unchanged.
pub fn endpoints_unchanged_except(
    pre: &AbstractKernel,
    post: &AbstractKernel,
    except: &[usize],
) -> bool {
    let pred = |k: &usize| !except.contains(k);
    pre.pm.endpoints.restrict(pred) == post.pm.endpoints.restrict(pred)
}

/// All address spaces except those in `except` unchanged (Listing 1
/// lines 13–18 generalize this per-address; spaces are compared whole
/// here and per-address in the mmap spec).
pub fn spaces_unchanged_except(
    pre: &AbstractKernel,
    post: &AbstractKernel,
    except: &[AsId],
) -> bool {
    let pred = |k: &AsId| !except.contains(k);
    pre.spaces.restrict(pred) == post.spaces.restrict(pred)
}

#[cfg(test)]
mod tests {
    use super::*;
    use atmo_pm::manager::PmView;

    fn empty_abs() -> AbstractKernel {
        AbstractKernel {
            pm: PmView {
                root: 0x1000,
                containers: Map::empty(),
                processes: Map::empty(),
                threads: Map::empty(),
                endpoints: Map::empty(),
            },
            spaces: Map::empty(),
            free_4k: Set::empty(),
            allocated: Set::empty(),
            mapped: Set::empty(),
        }
    }

    #[test]
    fn empty_state_accessors() {
        let a = empty_abs();
        assert!(a.thread_dom().is_empty());
        assert!(a.get_thread(1).is_none());
        assert!(a.get_address_space(1).is_empty());
        assert!(a.get_thrd_edpt_descriptors(1).is_empty());
        assert!(!a.page_is_free(0x1000));
    }

    #[test]
    fn frame_helpers_detect_changes() {
        let a = empty_abs();
        let mut b = a.clone();
        assert!(threads_unchanged(&a, &b));
        b.pm.threads = b.pm.threads.insert(0x3000, Thread::new(0x2000, 0x1000));
        assert!(!threads_unchanged(&a, &b));
        assert!(threads_unchanged_except(&a, &b, &[0x3000]));
        assert!(!threads_unchanged_except(&a, &b, &[0x4000]));
    }

    #[test]
    fn space_helpers_restrict_properly() {
        let a = empty_abs();
        let mut b = a.clone();
        b.spaces = b.spaces.insert(5, Map::empty());
        assert!(spaces_unchanged_except(&a, &b, &[5]));
        assert!(!spaces_unchanged_except(&a, &b, &[]));
    }
}
