//! The system-call interface.
//!
//! Every entry point follows the paper's discipline: resolve the calling
//! thread through the flat permission maps (Listing 1 lines 35–40),
//! validate arguments, perform the transition, and either succeed having
//! changed exactly what the specification allows or fail having changed
//! nothing (error paths roll back). Costs are charged to the calling
//! CPU's cycle meter according to the calibrated [`atmo_hw::CostModel`].

use atmo_hw::addr::{VAddr, VaRange4K};
use atmo_hw::paging::EntryFlags;
use atmo_mem::{PagePtr, PageSize};
use atmo_pm::manager::{RecvOutcome, SendOutcome};
use atmo_pm::types::{CpuId, CtnrPtr, EdptIdx, IpcPayload, PmError, ProcPtr, ThrdPtr};
use atmo_ptable::MapError;

use crate::kernel::Kernel;

/// System-call arguments (the union of all entry points).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SyscallArgs {
    /// Map `len` fresh 4 KiB pages at `va_base` into the caller's space.
    Mmap {
        /// First virtual address (4 KiB aligned).
        va_base: usize,
        /// Number of pages.
        len: usize,
        /// Writable mapping?
        writable: bool,
    },
    /// Unmap `len` pages starting at `va_base` from the caller's space.
    Munmap {
        /// First virtual address.
        va_base: usize,
        /// Number of pages.
        len: usize,
    },
    /// Create a child container under the caller's container.
    NewContainer {
        /// Page reservation for the child.
        quota: usize,
        /// CPU cores passed to the child.
        cpus: Vec<CpuId>,
    },
    /// Terminate a (direct or indirect) child container.
    TerminateContainer {
        /// The doomed container.
        cntr: CtnrPtr,
    },
    /// Create a top-level process in a container of the caller's subtree.
    NewProcess {
        /// Target container.
        cntr: CtnrPtr,
    },
    /// Create a child process under the caller's own process (same
    /// container; the per-container process tree of §3).
    NewChildProcess,
    /// Terminate the calling thread (exit). The CPU dispatches the next
    /// ready thread.
    Exit,
    /// Terminate a process of the caller's container subtree.
    TerminateProcess {
        /// The doomed process.
        proc: ProcPtr,
    },
    /// Create a thread in a process of the caller's subtree, homed on `cpu`.
    NewThread {
        /// Owning process.
        proc: ProcPtr,
        /// Home CPU (must be reserved by the owning container).
        cpu: CpuId,
    },
    /// Create an endpoint in descriptor `slot` of the calling thread.
    NewEndpoint {
        /// Target descriptor slot.
        slot: EdptIdx,
    },
    /// Send on the endpoint in `slot`.
    Send {
        /// Descriptor slot.
        slot: EdptIdx,
        /// Scalar payload.
        scalars: [u64; 4],
        /// Optionally grant the page mapped at this VA (shared memory).
        grant_page_va: Option<usize>,
        /// Optionally grant the endpoint in this descriptor slot.
        grant_endpoint_slot: Option<EdptIdx>,
        /// Optionally grant access to this IOMMU protection domain.
        grant_iommu_domain: Option<u32>,
    },
    /// Receive on the endpoint in `slot`.
    Recv {
        /// Descriptor slot.
        slot: EdptIdx,
    },
    /// Non-blocking receive on the endpoint in `slot`.
    Poll {
        /// Descriptor slot.
        slot: EdptIdx,
    },
    /// Call (send + await reply) on the endpoint in `slot`.
    Call {
        /// Descriptor slot.
        slot: EdptIdx,
        /// Scalar payload.
        scalars: [u64; 4],
    },
    /// Reply to the caller this thread owes a reply.
    Reply {
        /// Scalar payload.
        scalars: [u64; 4],
    },
    /// Take the delivered message (scalars; stashes any page grant).
    TakeMsg,
    /// Map the pending granted page at `va`.
    MapGranted {
        /// Target virtual address in the caller's space.
        va: usize,
    },
    /// Discard the pending granted page (releases its reference).
    DropGrant,
    /// Map one 2 MiB superpage at `va_base` (512 pages of quota).
    MmapHuge2M {
        /// 2 MiB-aligned virtual address.
        va_base: usize,
        /// Writable mapping?
        writable: bool,
    },
    /// Unmap the 2 MiB superpage at `va_base`.
    MunmapHuge2M {
        /// 2 MiB-aligned virtual address.
        va_base: usize,
    },
    /// Create an IOMMU protection domain owned by the caller's container.
    IommuCreateDomain,
    /// Attach a device to an IOMMU domain.
    IommuAttach {
        /// Target domain.
        domain: u32,
        /// PCI-style device id.
        device: u16,
    },
    /// Detach a device from its IOMMU domain.
    IommuDetach {
        /// PCI-style device id.
        device: u16,
    },
    /// Make the caller's page at `va` DMA-visible at `iova` in `domain`.
    IommuMap {
        /// Target domain.
        domain: u32,
        /// Device-visible address.
        iova: usize,
        /// Caller-space virtual address of the page.
        va: usize,
    },
    /// Remove the DMA mapping at `iova` in `domain`.
    IommuUnmap {
        /// Target domain.
        domain: u32,
        /// Device-visible address.
        iova: usize,
    },
    /// Yield the CPU (round-robin rotation).
    Yield,
    /// Read-only: publish a merged trace snapshot (per-CPU rings,
    /// latency histograms, subsystem counters) for the caller to
    /// retrieve via [`Kernel::take_trace_snapshot`]. Changes no
    /// abstract kernel state.
    TraceSnapshot,
}

impl SyscallArgs {
    /// The trace discriminant of this call (for per-kind histograms and
    /// counters).
    pub fn trace_kind(&self) -> atmo_trace::SyscallKind {
        use atmo_trace::SyscallKind as K;
        match self {
            SyscallArgs::Mmap { .. } => K::Mmap,
            SyscallArgs::Munmap { .. } => K::Munmap,
            SyscallArgs::NewContainer { .. } => K::NewContainer,
            SyscallArgs::TerminateContainer { .. } => K::TerminateContainer,
            SyscallArgs::NewProcess { .. } => K::NewProcess,
            SyscallArgs::NewChildProcess => K::NewChildProcess,
            SyscallArgs::Exit => K::Exit,
            SyscallArgs::TerminateProcess { .. } => K::TerminateProcess,
            SyscallArgs::NewThread { .. } => K::NewThread,
            SyscallArgs::NewEndpoint { .. } => K::NewEndpoint,
            SyscallArgs::Send { .. } => K::Send,
            SyscallArgs::Recv { .. } => K::Recv,
            SyscallArgs::Poll { .. } => K::Poll,
            SyscallArgs::Call { .. } => K::Call,
            SyscallArgs::Reply { .. } => K::Reply,
            SyscallArgs::TakeMsg => K::TakeMsg,
            SyscallArgs::MapGranted { .. } => K::MapGranted,
            SyscallArgs::DropGrant => K::DropGrant,
            SyscallArgs::MmapHuge2M { .. } => K::MmapHuge2M,
            SyscallArgs::MunmapHuge2M { .. } => K::MunmapHuge2M,
            SyscallArgs::IommuCreateDomain => K::IommuCreateDomain,
            SyscallArgs::IommuAttach { .. } => K::IommuAttach,
            SyscallArgs::IommuDetach { .. } => K::IommuDetach,
            SyscallArgs::IommuMap { .. } => K::IommuMap,
            SyscallArgs::IommuUnmap { .. } => K::IommuUnmap,
            SyscallArgs::Yield => K::Yield,
            SyscallArgs::TraceSnapshot => K::TraceSnapshot,
        }
    }
}

/// System-call error codes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SyscallError {
    /// Out of physical memory.
    NoMem,
    /// Container quota exhausted.
    Quota,
    /// A fixed capacity (children, threads, queue, slots) is full.
    Capacity,
    /// Referenced object does not exist.
    NotFound,
    /// Malformed arguments.
    Invalid,
    /// The caller lacks authority over the target.
    Denied,
    /// The calling thread is not in the right state.
    WrongState,
    /// Address translation failed (unmapped or conflicting VA).
    Fault,
}

impl From<PmError> for SyscallError {
    fn from(e: PmError) -> Self {
        match e {
            PmError::QuotaExceeded => SyscallError::Quota,
            PmError::OutOfMemory => SyscallError::NoMem,
            PmError::CapacityExceeded | PmError::EndpointFull => SyscallError::Capacity,
            PmError::NotFound => SyscallError::NotFound,
            PmError::InvalidArgument => SyscallError::Invalid,
            PmError::CpuNotOwned | PmError::Denied => SyscallError::Denied,
            PmError::NotEmpty | PmError::WrongState => SyscallError::WrongState,
        }
    }
}

impl From<MapError> for SyscallError {
    fn from(e: MapError) -> Self {
        match e {
            MapError::OutOfMemory => SyscallError::NoMem,
            MapError::Misaligned | MapError::NonCanonical => SyscallError::Invalid,
            MapError::AlreadyMapped | MapError::NotMapped | MapError::SizeConflict => {
                SyscallError::Fault
            }
        }
    }
}

/// The system-call return structure (the paper's `SyscallReturnStruct`).
#[must_use = "a syscall's return carries its error class and must be checked"]
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SyscallReturn {
    /// Success payload (up to four scalar values) or the error code.
    pub result: Result<[u64; 4], SyscallError>,
}

impl SyscallReturn {
    fn ok(vals: [u64; 4]) -> Self {
        SyscallReturn { result: Ok(vals) }
    }

    fn err(e: SyscallError) -> Self {
        SyscallReturn { result: Err(e) }
    }

    /// `true` on success.
    pub fn is_ok(&self) -> bool {
        self.result.is_ok()
    }

    /// First scalar of a successful return.
    ///
    /// # Panics
    ///
    /// Panics on an error return.
    pub fn val0(&self) -> u64 {
        self.result.expect("syscall failed")[0]
    }

    /// The trace class of this return.
    pub fn trace_class(&self) -> atmo_trace::ReturnClass {
        use atmo_trace::ReturnClass as C;
        match self.result {
            Ok(_) => C::Ok,
            Err(SyscallError::NoMem) => C::NoMem,
            Err(SyscallError::Quota) => C::Quota,
            Err(SyscallError::Capacity) => C::Capacity,
            Err(SyscallError::NotFound) => C::NotFound,
            Err(SyscallError::Invalid) => C::Invalid,
            Err(SyscallError::Denied) => C::Denied,
            Err(SyscallError::WrongState) => C::WrongState,
            Err(SyscallError::Fault) => C::Fault,
        }
    }
}

impl Kernel {
    /// The system-call trap handler for `cpu`.
    ///
    /// Resolves the current thread, dispatches, and charges entry/exit
    /// trampoline costs (the assembly of §5, item 8).
    pub fn syscall(&mut self, cpu: CpuId, args: SyscallArgs) -> SyscallReturn {
        let costs = self.machine.costs;
        let kind = args.trace_kind();
        let entered = self.cycles(cpu);
        self.trace.syscall_enter(cpu, kind);
        self.charge(cpu, costs.syscall_entry);
        let ret = match self.pm.sched.current(cpu) {
            Some(t) => self.dispatch(cpu, t, args),
            None => SyscallReturn::err(SyscallError::WrongState),
        };
        self.charge(cpu, costs.syscall_exit);
        self.trace
            .syscall_exit(cpu, kind, ret.trace_class(), self.cycles(cpu) - entered);
        ret
    }

    fn dispatch(&mut self, cpu: CpuId, t: ThrdPtr, args: SyscallArgs) -> SyscallReturn {
        match args {
            SyscallArgs::Mmap {
                va_base,
                len,
                writable,
            } => self.sys_mmap(cpu, t, va_base, len, writable),
            SyscallArgs::Munmap { va_base, len } => self.sys_munmap(cpu, t, va_base, len),
            SyscallArgs::NewContainer { quota, cpus } => {
                self.sys_new_container(cpu, t, quota, &cpus)
            }
            SyscallArgs::TerminateContainer { cntr } => self.sys_terminate_container(cpu, t, cntr),
            SyscallArgs::NewProcess { cntr } => self.sys_new_process(cpu, t, cntr),
            SyscallArgs::NewChildProcess => self.sys_new_child_process(cpu, t),
            SyscallArgs::Exit => self.sys_exit(cpu, t),
            SyscallArgs::TerminateProcess { proc } => self.sys_terminate_process(cpu, t, proc),
            SyscallArgs::NewThread { proc, cpu: home } => self.sys_new_thread(cpu, t, proc, home),
            SyscallArgs::NewEndpoint { slot } => self.sys_new_endpoint(cpu, t, slot),
            SyscallArgs::Send {
                slot,
                scalars,
                grant_page_va,
                grant_endpoint_slot,
                grant_iommu_domain,
            } => self.sys_send(
                cpu,
                t,
                slot,
                scalars,
                grant_page_va,
                grant_endpoint_slot,
                grant_iommu_domain,
            ),
            SyscallArgs::Recv { slot } => self.sys_recv(cpu, t, slot),
            SyscallArgs::Poll { slot } => self.sys_poll(cpu, t, slot),
            SyscallArgs::Call { slot, scalars } => self.sys_call(cpu, t, slot, scalars),
            SyscallArgs::Reply { scalars } => self.sys_reply(cpu, t, scalars),
            SyscallArgs::TakeMsg => self.sys_take_msg(cpu, t),
            SyscallArgs::MapGranted { va } => self.sys_map_granted(cpu, t, va),
            SyscallArgs::DropGrant => self.sys_drop_grant(cpu, t),
            SyscallArgs::MmapHuge2M { va_base, writable } => {
                self.sys_mmap_huge_2m(cpu, t, va_base, writable)
            }
            SyscallArgs::MunmapHuge2M { va_base } => self.sys_munmap_huge_2m(cpu, t, va_base),
            SyscallArgs::IommuCreateDomain => self.sys_iommu_create_domain(cpu, t),
            SyscallArgs::IommuAttach { domain, device } => {
                self.sys_iommu_attach(cpu, t, domain, device)
            }
            SyscallArgs::IommuDetach { device } => self.sys_iommu_detach(cpu, t, device),
            SyscallArgs::IommuMap { domain, iova, va } => {
                self.sys_iommu_map(cpu, t, domain, iova, va)
            }
            SyscallArgs::IommuUnmap { domain, iova } => self.sys_iommu_unmap(cpu, t, domain, iova),
            SyscallArgs::Yield => self.sys_yield(cpu, t),
            SyscallArgs::TraceSnapshot => self.sys_trace_snapshot(cpu, t),
        }
    }

    /// `trace_snapshot`: publishes the merged trace snapshot (a read of
    /// ghost/diagnostic state — Ψ is unchanged, so the audit holds it to
    /// the no-op specification). The scalars summarize; the full
    /// [`atmo_trace::Snapshot`] is stashed for
    /// [`Kernel::take_trace_snapshot`].
    fn sys_trace_snapshot(&mut self, cpu: CpuId, _t: ThrdPtr) -> SyscallReturn {
        let costs = self.machine.costs;
        self.charge(cpu, costs.syscall_validate);
        let snap = self.trace.snapshot();
        let ret = SyscallReturn::ok([
            snap.total_syscall_exits(),
            snap.total_events,
            snap.total_dropped,
            snap.per_cpu.len() as u64,
        ]);
        self.last_trace_snapshot = Some(snap);
        ret
    }

    // ----- memory management ----------------------------------------------

    /// `mmap` (Listing 1): allocate `len` fresh physical pages and map
    /// them at `va_base..va_base+len*4K` in the caller's address space.
    fn sys_mmap(
        &mut self,
        cpu: CpuId,
        t: ThrdPtr,
        va_base: usize,
        len: usize,
        writable: bool,
    ) -> SyscallReturn {
        let costs = self.machine.costs;
        self.charge(cpu, costs.syscall_validate);
        let Some(range) = VaRange4K::new(VAddr(va_base), len) else {
            return SyscallReturn::err(SyscallError::Invalid);
        };
        if len == 0 {
            return SyscallReturn::err(SyscallError::Invalid);
        }
        // Listing 1 lines 35–40: resolve the thread, then its process.
        let (proc_ptr, cntr) = {
            let thread = self.pm.thrd(t);
            (thread.owning_proc, thread.owning_cntr)
        };
        let as_id = self.pm.proc(proc_ptr).addr_space;
        // The whole range must be unmapped (otherwise nothing changes).
        {
            let pt = self.vm.table(as_id).expect("process without address space");
            for va in range.iter() {
                if pt.resolve(va).is_some() {
                    return SyscallReturn::err(SyscallError::Fault);
                }
            }
        }
        // Charge quota for the new frames.
        if let Err(e) = self.pm.charge(cntr, len) {
            return SyscallReturn::err(e.into());
        }
        let flags = if writable {
            EntryFlags::user_rw()
        } else {
            EntryFlags::user_ro()
        };
        let mut mapped: Vec<(VAddr, PagePtr)> = Vec::with_capacity(len);
        for va in range.iter() {
            self.charge(
                cpu,
                costs.page_alloc_4k
                    + costs.quota_account
                    + 3 * costs.pt_level_read
                    + costs.pt_level_write
                    + costs.page_state_update
                    + costs.tlb_invalidate,
            );
            let frame = match self.alloc.alloc_mapped(PageSize::Size4K) {
                Ok(f) => f,
                Err(_) => {
                    self.rollback_mmap(cntr, as_id, len, &mapped);
                    return SyscallReturn::err(SyscallError::NoMem);
                }
            };
            let pt = self.vm.table_mut(as_id).expect("space exists");
            match pt.map_4k_page(&mut self.alloc, va, frame, flags) {
                Ok(()) => mapped.push((va, frame)),
                Err(e) => {
                    self.alloc.dec_map_ref(frame);
                    self.rollback_mmap(cntr, as_id, len, &mapped);
                    return SyscallReturn::err(e.into());
                }
            }
        }
        SyscallReturn::ok([va_base as u64, len as u64, 0, 0])
    }

    fn rollback_mmap(
        &mut self,
        cntr: CtnrPtr,
        as_id: crate::vm::AsId,
        charged: usize,
        mapped: &[(VAddr, PagePtr)],
    ) {
        for (va, frame) in mapped {
            let pt = self.vm.table_mut(as_id).expect("space exists");
            pt.unmap_4k_page(*va).expect("rollback of a fresh mapping");
            self.alloc.dec_map_ref(*frame);
        }
        self.pm.uncharge(cntr, charged);
    }

    /// `munmap`: remove `len` 4 KiB mappings, dropping the frames'
    /// references and releasing quota.
    fn sys_munmap(&mut self, cpu: CpuId, t: ThrdPtr, va_base: usize, len: usize) -> SyscallReturn {
        let costs = self.machine.costs;
        self.charge(cpu, costs.syscall_validate);
        let Some(range) = VaRange4K::new(VAddr(va_base), len) else {
            return SyscallReturn::err(SyscallError::Invalid);
        };
        if len == 0 {
            return SyscallReturn::err(SyscallError::Invalid);
        }
        let (proc_ptr, cntr) = {
            let thread = self.pm.thrd(t);
            (thread.owning_proc, thread.owning_cntr)
        };
        let as_id = self.pm.proc(proc_ptr).addr_space;
        // All pages must be mapped 4 KiB for the call to change anything.
        {
            let pt = self.vm.table(as_id).expect("space exists");
            for va in range.iter() {
                if !pt.map_4k.contains_key(&va.as_usize()) {
                    return SyscallReturn::err(SyscallError::Fault);
                }
            }
        }
        for va in range.iter() {
            self.charge(
                cpu,
                costs.pt_level_write + costs.page_state_update + costs.tlb_invalidate,
            );
            let pt = self.vm.table_mut(as_id).expect("space exists");
            let frame = pt.unmap_4k_page(va).expect("checked above");
            self.alloc.dec_map_ref(frame);
        }
        self.pm.uncharge(cntr, len);
        SyscallReturn::ok([len as u64, 0, 0, 0])
    }

    // ----- containers / processes / threads --------------------------------

    fn sys_new_container(
        &mut self,
        cpu: CpuId,
        t: ThrdPtr,
        quota: usize,
        cpus: &[CpuId],
    ) -> SyscallReturn {
        let costs = self.machine.costs;
        self.charge(
            cpu,
            costs.syscall_validate + costs.page_alloc_4k + costs.quota_account,
        );
        let parent = self.pm.thrd(t).owning_cntr;
        match self.pm.new_container(&mut self.alloc, parent, quota, cpus) {
            Ok(c) => SyscallReturn::ok([c as u64, 0, 0, 0]),
            Err(e) => SyscallReturn::err(e.into()),
        }
    }

    fn sys_terminate_container(&mut self, cpu: CpuId, t: ThrdPtr, cntr: CtnrPtr) -> SyscallReturn {
        let costs = self.machine.costs;
        self.charge(cpu, costs.syscall_validate);
        let caller_cntr = self.pm.thrd(t).owning_cntr;
        if !self.pm.cntr_perms.contains(cntr) {
            return SyscallReturn::err(SyscallError::NotFound);
        }
        // Authority: only direct/indirect children may be terminated (§3).
        if !self.pm.cntr(caller_cntr).subtree.contains(&cntr) {
            return SyscallReturn::err(SyscallError::Denied);
        }
        // Release kernel-held grant references of every dying thread.
        let mut dying_threads: Vec<ThrdPtr> = Vec::new();
        let mut dead_cntrs: Vec<CtnrPtr> = self.pm.cntr(cntr).subtree.to_vec();
        dead_cntrs.push(cntr);
        for dc in &dead_cntrs {
            dying_threads.extend(self.pm.cntr(*dc).owned_thrds.iter().copied());
        }
        self.release_pending_grants(&dying_threads);
        self.cleanup_iommu_for(&dead_cntrs);

        match self.pm.terminate_container(&mut self.alloc, cntr) {
            Ok(freed_spaces) => {
                for as_id in freed_spaces {
                    self.charge(cpu, costs.page_free_4k);
                    self.vm.destroy_space(&mut self.alloc, as_id);
                }
                SyscallReturn::ok([0, 0, 0, 0])
            }
            Err(e) => SyscallReturn::err(e.into()),
        }
    }

    fn sys_new_process(&mut self, cpu: CpuId, t: ThrdPtr, cntr: CtnrPtr) -> SyscallReturn {
        let costs = self.machine.costs;
        self.charge(
            cpu,
            costs.syscall_validate + costs.page_alloc_4k + costs.quota_account,
        );
        let caller_cntr = self.pm.thrd(t).owning_cntr;
        if !self.pm.cntr_perms.contains(cntr) {
            return SyscallReturn::err(SyscallError::NotFound);
        }
        if cntr != caller_cntr && !self.pm.cntr(caller_cntr).subtree.contains(&cntr) {
            return SyscallReturn::err(SyscallError::Denied);
        }
        let p = match self.pm.new_process(&mut self.alloc, cntr, None) {
            Ok(p) => p,
            Err(e) => return SyscallReturn::err(e.into()),
        };
        let as_id = self.pm.proc(p).addr_space;
        if self.vm.create_space(&mut self.alloc, as_id).is_err() {
            // Roll back the half-created process.
            let _ = self.pm.terminate_process(&mut self.alloc, p);
            return SyscallReturn::err(SyscallError::NoMem);
        }
        SyscallReturn::ok([p as u64, 0, 0, 0])
    }

    /// Creates a child process under the caller's process, in the same
    /// container (§3: per-container process trees with parent-child
    /// tracking).
    fn sys_new_child_process(&mut self, cpu: CpuId, t: ThrdPtr) -> SyscallReturn {
        let costs = self.machine.costs;
        self.charge(
            cpu,
            costs.syscall_validate + costs.page_alloc_4k + costs.quota_account,
        );
        let (parent_proc, cntr) = {
            let th = self.pm.thrd(t);
            (th.owning_proc, th.owning_cntr)
        };
        let p = match self
            .pm
            .new_process(&mut self.alloc, cntr, Some(parent_proc))
        {
            Ok(p) => p,
            Err(e) => return SyscallReturn::err(e.into()),
        };
        let as_id = self.pm.proc(p).addr_space;
        if self.vm.create_space(&mut self.alloc, as_id).is_err() {
            let _ = self.pm.terminate_process(&mut self.alloc, p);
            return SyscallReturn::err(SyscallError::NoMem);
        }
        SyscallReturn::ok([p as u64, 0, 0, 0])
    }

    /// Terminates the calling thread. If it was the last thread of its
    /// process, the process itself stays (an empty process a parent can
    /// reuse or terminate) — matching the paper's explicit lifecycle.
    fn sys_exit(&mut self, cpu: CpuId, t: ThrdPtr) -> SyscallReturn {
        let costs = self.machine.costs;
        self.charge(cpu, costs.thread_switch + costs.page_free_4k);
        self.release_pending_grants(&[t]);
        match self.pm.terminate_thread(&mut self.alloc, t) {
            Ok(()) => {
                // The CPU is idle now; pick up the next ready thread.
                if self.pm.sched.current(cpu).is_none() {
                    if let Some(next) = self.pm.sched.dispatch(cpu) {
                        use atmo_pm::ThreadState;
                        let p = atmo_spec::PPtr::<atmo_pm::Thread>::from_usize(next);
                        p.borrow_mut(self.pm.thrd_perms.tracked_borrow_mut(next))
                            .state = ThreadState::Running(cpu);
                    }
                }
                SyscallReturn::ok([0, 0, 0, 0])
            }
            Err(e) => SyscallReturn::err(e.into()),
        }
    }

    fn sys_terminate_process(&mut self, cpu: CpuId, t: ThrdPtr, proc: ProcPtr) -> SyscallReturn {
        let costs = self.machine.costs;
        self.charge(cpu, costs.syscall_validate);
        if !self.pm.proc_perms.contains(proc) {
            return SyscallReturn::err(SyscallError::NotFound);
        }
        let caller_cntr = self.pm.thrd(t).owning_cntr;
        let caller_proc = self.pm.thrd(t).owning_proc;
        let target_cntr = self.pm.proc(proc).owning_container;
        // Authority: own process tree (self or descendant) or a process in
        // a child container.
        let same_tree = proc == caller_proc || self.pm.proc(proc).path.contains(&caller_proc);
        let child_cntr = self.pm.cntr(caller_cntr).subtree.contains(&target_cntr);
        if !(same_tree || child_cntr) {
            return SyscallReturn::err(SyscallError::Denied);
        }
        // Collect (container, mapped-page-count, as_id) per dying process
        // so quota can be released after teardown.
        let mut stack = vec![proc];
        let mut doomed = Vec::new();
        while let Some(q) = stack.pop() {
            let pr = self.pm.proc(q);
            doomed.push((pr.owning_container, pr.addr_space));
            stack.extend(pr.children.iter());
        }
        let mut dying_threads = Vec::new();
        {
            let mut stack = vec![proc];
            while let Some(q) = stack.pop() {
                dying_threads.extend(self.pm.proc(q).threads.iter());
                stack.extend(self.pm.proc(q).children.iter());
            }
        }
        self.release_pending_grants(&dying_threads);

        match self.pm.terminate_process(&mut self.alloc, proc) {
            Ok(_freed) => {
                for (cntr, as_id) in doomed {
                    self.charge(cpu, costs.page_free_4k);
                    let removed = self.vm.destroy_space(&mut self.alloc, as_id);
                    if self.pm.cntr_perms.contains(cntr) {
                        self.pm.uncharge(cntr, removed);
                    }
                }
                SyscallReturn::ok([0, 0, 0, 0])
            }
            Err(e) => SyscallReturn::err(e.into()),
        }
    }

    fn release_pending_grants(&mut self, threads: &[ThrdPtr]) {
        for t in threads {
            if let Some(frame) = self.pending_grants.remove(t) {
                self.alloc.dec_map_ref(frame);
            }
        }
    }

    fn sys_new_thread(
        &mut self,
        cpu: CpuId,
        t: ThrdPtr,
        proc: ProcPtr,
        home: CpuId,
    ) -> SyscallReturn {
        let costs = self.machine.costs;
        self.charge(
            cpu,
            costs.syscall_validate + costs.page_alloc_4k + costs.quota_account,
        );
        if !self.pm.proc_perms.contains(proc) {
            return SyscallReturn::err(SyscallError::NotFound);
        }
        let caller_cntr = self.pm.thrd(t).owning_cntr;
        let target_cntr = self.pm.proc(proc).owning_container;
        if target_cntr != caller_cntr && !self.pm.cntr(caller_cntr).subtree.contains(&target_cntr) {
            return SyscallReturn::err(SyscallError::Denied);
        }
        match self.pm.new_thread(&mut self.alloc, proc, home) {
            Ok(nt) => SyscallReturn::ok([nt as u64, 0, 0, 0]),
            Err(e) => SyscallReturn::err(e.into()),
        }
    }

    // ----- endpoints and IPC ------------------------------------------------

    fn sys_new_endpoint(&mut self, cpu: CpuId, t: ThrdPtr, slot: EdptIdx) -> SyscallReturn {
        let costs = self.machine.costs;
        self.charge(cpu, costs.page_alloc_4k + costs.quota_account);
        match self.pm.new_endpoint(&mut self.alloc, t, slot) {
            Ok(e) => SyscallReturn::ok([e as u64, 0, 0, 0]),
            Err(e) => SyscallReturn::err(e.into()),
        }
    }

    fn build_payload(
        &mut self,
        t: ThrdPtr,
        scalars: [u64; 4],
        grant_page_va: Option<usize>,
        grant_endpoint_slot: Option<EdptIdx>,
        grant_iommu_domain: Option<u32>,
    ) -> Result<IpcPayload, SyscallError> {
        let mut payload = IpcPayload::scalars(scalars);
        if let Some(domain) = grant_iommu_domain {
            // Only domains the sender is authorized for may be granted.
            let cntr = self.pm.thrd(t).owning_cntr;
            if !self.iommu_authorized(domain, cntr) {
                return Err(SyscallError::Denied);
            }
            payload.iommu_grant = Some(domain);
        }
        if let Some(slot) = grant_endpoint_slot {
            let e = self
                .pm
                .thrd(t)
                .descriptor(slot)
                .ok_or(SyscallError::Invalid)?;
            payload.endpoint_grant = Some(e);
        }
        if let Some(va) = grant_page_va {
            let as_id = self.pm.proc(self.pm.thrd(t).owning_proc).addr_space;
            let pt = self.vm.table(as_id).expect("space exists");
            let frame = *pt
                .map_4k
                .index(&VAddr(va).align_down(atmo_hw::PAGE_SIZE_4K).as_usize())
                .map(|e| &e.frame)
                .ok_or(SyscallError::Fault)?;
            // The in-flight grant holds a mapping reference.
            self.alloc.inc_map_ref(frame);
            payload.page_grant = Some(frame);
        }
        Ok(payload)
    }

    fn charge_ipc(&mut self, cpu: CpuId) {
        let costs = self.machine.costs;
        self.charge(
            cpu,
            costs.endpoint_queue_op + costs.ipc_transfer + costs.thread_switch,
        );
    }

    #[allow(clippy::too_many_arguments)]
    fn sys_send(
        &mut self,
        cpu: CpuId,
        t: ThrdPtr,
        slot: EdptIdx,
        scalars: [u64; 4],
        grant_page_va: Option<usize>,
        grant_endpoint_slot: Option<EdptIdx>,
        grant_iommu_domain: Option<u32>,
    ) -> SyscallReturn {
        self.charge_ipc(cpu);
        let payload = match self.build_payload(
            t,
            scalars,
            grant_page_va,
            grant_endpoint_slot,
            grant_iommu_domain,
        ) {
            Ok(p) => p,
            Err(e) => return SyscallReturn::err(e),
        };
        if grant_page_va.is_some() {
            self.charge(cpu, self.machine.costs.ipc_cap_transfer);
        }
        match self.pm.send(t, cpu, slot, payload) {
            Ok(SendOutcome::Delivered(r)) => SyscallReturn::ok([1, r as u64, 0, 0]),
            Ok(SendOutcome::Blocked) => SyscallReturn::ok([0, 0, 0, 0]),
            Err(e) => {
                // Roll back the in-flight grant reference.
                if let Some(frame) = payload.page_grant {
                    self.alloc.dec_map_ref(frame);
                }
                SyscallReturn::err(e.into())
            }
        }
    }

    fn sys_recv(&mut self, cpu: CpuId, t: ThrdPtr, slot: EdptIdx) -> SyscallReturn {
        self.charge_ipc(cpu);
        match self.pm.recv(t, cpu, slot) {
            Ok(RecvOutcome::Received(_)) => self.sys_take_msg(cpu, t),
            Ok(RecvOutcome::Blocked) => SyscallReturn::ok([0, 0, 0, 0]),
            Err(e) => SyscallReturn::err(e.into()),
        }
    }

    /// Non-blocking receive: returns the message scalars when a sender
    /// was waiting, or `[0, 0, 0, u64::MAX]` when the endpoint was empty.
    fn sys_poll(&mut self, cpu: CpuId, t: ThrdPtr, slot: EdptIdx) -> SyscallReturn {
        self.charge(cpu, self.machine.costs.endpoint_queue_op);
        match self.pm.try_recv(t, cpu, slot) {
            Ok(Some(_payload)) => {
                self.charge(cpu, self.machine.costs.ipc_transfer);
                self.sys_take_msg(cpu, t)
            }
            Ok(None) => SyscallReturn::ok([0, 0, 0, u64::MAX]),
            Err(e) => SyscallReturn::err(e.into()),
        }
    }

    fn sys_call(
        &mut self,
        cpu: CpuId,
        t: ThrdPtr,
        slot: EdptIdx,
        scalars: [u64; 4],
    ) -> SyscallReturn {
        self.charge_ipc(cpu);
        let payload = IpcPayload::scalars(scalars);
        match self.pm.call(t, cpu, slot, payload) {
            Ok(_) => SyscallReturn::ok([0, 0, 0, 0]),
            Err(e) => SyscallReturn::err(e.into()),
        }
    }

    fn sys_reply(&mut self, cpu: CpuId, t: ThrdPtr, scalars: [u64; 4]) -> SyscallReturn {
        self.charge_ipc(cpu);
        match self.pm.reply(t, cpu, IpcPayload::scalars(scalars)) {
            Ok(caller) => SyscallReturn::ok([caller as u64, 0, 0, 0]),
            Err(e) => SyscallReturn::err(e.into()),
        }
    }

    /// Takes the delivered message: returns its scalars, stashing a page
    /// grant (if any) as the thread's pending grant.
    fn sys_take_msg(&mut self, _cpu: CpuId, t: ThrdPtr) -> SyscallReturn {
        match self.pm.take_message(t) {
            Some(payload) => {
                if let Some(domain) = payload.iommu_grant {
                    self.deliver_iommu_grant(t, domain);
                }
                if let Some(frame) = payload.page_grant {
                    // At most one pending grant per thread; a second grant
                    // replaces the first, whose reference is dropped.
                    if let Some(old) = self.pending_grants.insert(t, frame) {
                        self.alloc.dec_map_ref(old);
                    }
                }
                let e_grant = payload.endpoint_grant.map(|e| e as u64).unwrap_or(0);
                let has_page = payload.page_grant.is_some() as u64;
                SyscallReturn::ok([payload.scalars[0], payload.scalars[1], e_grant, has_page])
            }
            None => SyscallReturn::err(SyscallError::WrongState),
        }
    }

    /// Maps the pending granted frame at `va` in the caller's space,
    /// charging one page of quota (shared mappings are charged to every
    /// container that maps them — a conservative upper bound).
    fn sys_map_granted(&mut self, cpu: CpuId, t: ThrdPtr, va: usize) -> SyscallReturn {
        let costs = self.machine.costs;
        self.charge(
            cpu,
            costs.syscall_validate + costs.quota_account + costs.pt_level_write,
        );
        let Some(&frame) = self.pending_grants.get(&t) else {
            return SyscallReturn::err(SyscallError::WrongState);
        };
        let va = VAddr(va);
        if !va.is_aligned(atmo_hw::PAGE_SIZE_4K) || !va.is_canonical() {
            return SyscallReturn::err(SyscallError::Invalid);
        }
        let (proc_ptr, cntr) = {
            let th = self.pm.thrd(t);
            (th.owning_proc, th.owning_cntr)
        };
        let as_id = self.pm.proc(proc_ptr).addr_space;
        if let Err(e) = self.pm.charge(cntr, 1) {
            return SyscallReturn::err(e.into());
        }
        let pt = self.vm.table_mut(as_id).expect("space exists");
        match pt.map_4k_page(&mut self.alloc, va, frame, EntryFlags::user_rw()) {
            Ok(()) => {
                // The mapping consumes the grant's reference.
                self.pending_grants.remove(&t);
                SyscallReturn::ok([va.as_usize() as u64, 0, 0, 0])
            }
            Err(e) => {
                self.pm.uncharge(cntr, 1);
                SyscallReturn::err(e.into())
            }
        }
    }

    fn sys_drop_grant(&mut self, _cpu: CpuId, t: ThrdPtr) -> SyscallReturn {
        match self.pending_grants.remove(&t) {
            Some(frame) => {
                self.alloc.dec_map_ref(frame);
                SyscallReturn::ok([0, 0, 0, 0])
            }
            None => SyscallReturn::err(SyscallError::WrongState),
        }
    }

    fn sys_yield(&mut self, cpu: CpuId, t: ThrdPtr) -> SyscallReturn {
        let costs = self.machine.costs;
        self.charge(cpu, costs.thread_switch);
        let _ = t;
        let next = self.pm.timer_tick(cpu);
        SyscallReturn::ok([next.unwrap_or(0) as u64, 0, 0, 0])
    }
}
