//! The system-call interface.
//!
//! Every entry point follows the paper's discipline: resolve the calling
//! thread through the flat permission maps (Listing 1 lines 35–40),
//! validate arguments, perform the transition, and either succeed having
//! changed exactly what the specification allows or fail having changed
//! nothing (error paths roll back). Costs are charged to the calling
//! CPU's cycle meter according to the calibrated [`atmo_hw::CostModel`].
//!
//! Since the lock-domain split, handlers run against an [`ExecCtx`]: a
//! borrowed view of the pm domain plus a [`MemAccess`] that either
//! points straight into the unified kernel's [`MemDomain`]
//! (single-threaded callers, the big lock) or lazily acquires the
//! sharded kernel's mem lock the first time a handler actually touches
//! memory state. Handlers that never do — `yield`, plain IPC, thread
//! creation served from the per-CPU page cache — therefore run under
//! the pm lock alone, which is exactly the "acquire only the domains
//! the syscall touches" dispatch rule of the sharded kernel.

use atmo_hw::addr::{VAddr, VaRange4K, PAGE_SIZE_2M, PAGE_SIZE_4K};
use atmo_hw::cycles::{CostModel, CycleMeter};
use atmo_hw::paging::EntryFlags;
use atmo_mem::alloc::AllocError;
use atmo_mem::{PageCache, PagePermission, PagePtr, PageSize, PageSource};
use atmo_pm::manager::{RecvOutcome, ReplyRecvOutcome, SendOutcome};
use atmo_pm::types::{CpuId, CtnrPtr, EdptIdx, IpcPayload, PmError, ProcPtr, ThrdPtr};
use atmo_pm::ProcessManager;
use atmo_ptable::MapError;
use atmo_trace::{AuditDelta, NrOutcome, Snapshot, TraceHandle, VmOutcome};

use crate::domain::{DomainGuard, DomainLock};
use crate::kernel::{Kernel, MemDomain};

/// System-call arguments (the union of all entry points).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SyscallArgs {
    /// Map `len` fresh 4 KiB pages at `va_base` into the caller's space.
    Mmap {
        /// First virtual address (4 KiB aligned).
        va_base: usize,
        /// Number of pages.
        len: usize,
        /// Writable mapping?
        writable: bool,
    },
    /// Unmap `len` pages starting at `va_base` from the caller's space.
    Munmap {
        /// First virtual address.
        va_base: usize,
        /// Number of pages.
        len: usize,
    },
    /// Create a child container under the caller's container.
    NewContainer {
        /// Page reservation for the child.
        quota: usize,
        /// CPU cores passed to the child.
        cpus: Vec<CpuId>,
    },
    /// Terminate a (direct or indirect) child container.
    TerminateContainer {
        /// The doomed container.
        cntr: CtnrPtr,
    },
    /// Create a top-level process in a container of the caller's subtree.
    NewProcess {
        /// Target container.
        cntr: CtnrPtr,
    },
    /// Create a child process under the caller's own process (same
    /// container; the per-container process tree of §3).
    NewChildProcess,
    /// Terminate the calling thread (exit). The CPU dispatches the next
    /// ready thread.
    Exit,
    /// Terminate a process of the caller's container subtree.
    TerminateProcess {
        /// The doomed process.
        proc: ProcPtr,
    },
    /// Create a thread in a process of the caller's subtree, homed on `cpu`.
    NewThread {
        /// Owning process.
        proc: ProcPtr,
        /// Home CPU (must be reserved by the owning container).
        cpu: CpuId,
    },
    /// Create an endpoint in descriptor `slot` of the calling thread.
    NewEndpoint {
        /// Target descriptor slot.
        slot: EdptIdx,
    },
    /// Send on the endpoint in `slot`.
    Send {
        /// Descriptor slot.
        slot: EdptIdx,
        /// Scalar payload.
        scalars: [u64; 4],
        /// Optionally grant the page mapped at this VA (shared memory).
        grant_page_va: Option<usize>,
        /// Optionally grant the endpoint in this descriptor slot.
        grant_endpoint_slot: Option<EdptIdx>,
        /// Optionally grant access to this IOMMU protection domain.
        grant_iommu_domain: Option<u32>,
    },
    /// Receive on the endpoint in `slot`.
    Recv {
        /// Descriptor slot.
        slot: EdptIdx,
    },
    /// Non-blocking receive on the endpoint in `slot`.
    Poll {
        /// Descriptor slot.
        slot: EdptIdx,
    },
    /// Call (send + await reply) on the endpoint in `slot`.
    Call {
        /// Descriptor slot.
        slot: EdptIdx,
        /// Scalar payload.
        scalars: [u64; 4],
    },
    /// Reply to the caller this thread owes a reply.
    Reply {
        /// Scalar payload.
        scalars: [u64; 4],
    },
    /// Combined reply + receive in one trap: answer the pending caller
    /// and re-open the endpoint in `slot` for the next request. The
    /// server loop's steady-state syscall — eligible for the direct
    /// handoff fast path.
    ReplyRecv {
        /// Descriptor slot to receive on after the reply.
        slot: EdptIdx,
        /// Scalar reply payload.
        scalars: [u64; 4],
    },
    /// Take the delivered message (scalars; stashes any page grant).
    TakeMsg,
    /// Map the pending granted page at `va`.
    MapGranted {
        /// Target virtual address in the caller's space.
        va: usize,
    },
    /// Discard the pending granted page (releases its reference).
    DropGrant,
    /// Map one 2 MiB superpage at `va_base` (512 pages of quota).
    MmapHuge2M {
        /// 2 MiB-aligned virtual address.
        va_base: usize,
        /// Writable mapping?
        writable: bool,
    },
    /// Unmap the 2 MiB superpage at `va_base`.
    MunmapHuge2M {
        /// 2 MiB-aligned virtual address.
        va_base: usize,
    },
    /// Create an IOMMU protection domain owned by the caller's container.
    IommuCreateDomain,
    /// Attach a device to an IOMMU domain.
    IommuAttach {
        /// Target domain.
        domain: u32,
        /// PCI-style device id.
        device: u16,
    },
    /// Detach a device from its IOMMU domain.
    IommuDetach {
        /// PCI-style device id.
        device: u16,
    },
    /// Make the caller's page at `va` DMA-visible at `iova` in `domain`.
    IommuMap {
        /// Target domain.
        domain: u32,
        /// Device-visible address.
        iova: usize,
        /// Caller-space virtual address of the page.
        va: usize,
    },
    /// Remove the DMA mapping at `iova` in `domain`.
    IommuUnmap {
        /// Target domain.
        domain: u32,
        /// Device-visible address.
        iova: usize,
    },
    /// Post a batch of block-I/O submission entries on a queue pair and
    /// ring the doorbell once (the io_uring-shaped zero-copy submit).
    BlkSubmitBatch {
        /// Target queue pair.
        queue: usize,
        /// Submission entries (each names a DMA-pinned buffer by IOVA).
        ops: Vec<crate::blk::BlkOp>,
    },
    /// Harvest up to `max` finished block completions from a queue pair
    /// into the caller's completion ring.
    BlkReapBatch {
        /// Target queue pair.
        queue: usize,
        /// Completion-ring capacity this reap may fill.
        max: usize,
        /// Block until at least one completion is ready (delivered via
        /// the IPC fast-path wakeup) instead of returning 0.
        wait: bool,
    },
    /// Yield the CPU (round-robin rotation).
    Yield,
    /// Read-only: publish a merged trace snapshot (per-CPU rings,
    /// latency histograms, subsystem counters) for the caller to
    /// retrieve via [`Kernel::take_trace_snapshot`]. Changes no
    /// abstract kernel state.
    TraceSnapshot,
    /// Read-only: the calling thread's owning process and container.
    /// Node-replicated on the sharded kernel (served from the local
    /// pm replica when enabled).
    Getpid,
    /// Read-only: a thread's owning process and container.
    ThreadLookup {
        /// The thread to look up.
        thread: ThrdPtr,
    },
    /// Read-only: the endpoint in descriptor `slot` of the calling
    /// thread.
    DescriptorResolve {
        /// Descriptor slot to resolve.
        slot: EdptIdx,
    },
    /// Read-only: whether `va` is mapped in the caller's address space
    /// (and writable). Node-replicated on the sharded kernel (served
    /// from the local mem replica when enabled).
    VmResolve {
        /// The virtual address to translate.
        va: usize,
    },
    /// Set the scheduling weight of a container strictly below the
    /// caller in the hierarchy (never the caller's own — budgets are
    /// imposed from above). Weight 0 tears the budget account down
    /// and refunds its remaining budget; a positive weight creates or
    /// resizes the account the container's CPU ticks are charged to.
    SchedSetWeight {
        /// Target container.
        cntr: CtnrPtr,
        /// Units granted per refill period (0 = unmetered).
        weight: u32,
    },
    /// Administratively throttle (park off the run queues) or
    /// unthrottle a weighted container strictly below the caller in
    /// the hierarchy (never the caller's own).
    SchedThrottle {
        /// Target container.
        cntr: CtnrPtr,
        /// `true` parks, `false` re-enqueues.
        throttle: bool,
    },
}

impl SyscallArgs {
    /// The trace discriminant of this call (for per-kind histograms and
    /// counters).
    pub fn trace_kind(&self) -> atmo_trace::SyscallKind {
        use atmo_trace::SyscallKind as K;
        match self {
            SyscallArgs::Mmap { .. } => K::Mmap,
            SyscallArgs::Munmap { .. } => K::Munmap,
            SyscallArgs::NewContainer { .. } => K::NewContainer,
            SyscallArgs::TerminateContainer { .. } => K::TerminateContainer,
            SyscallArgs::NewProcess { .. } => K::NewProcess,
            SyscallArgs::NewChildProcess => K::NewChildProcess,
            SyscallArgs::Exit => K::Exit,
            SyscallArgs::TerminateProcess { .. } => K::TerminateProcess,
            SyscallArgs::NewThread { .. } => K::NewThread,
            SyscallArgs::NewEndpoint { .. } => K::NewEndpoint,
            SyscallArgs::Send { .. } => K::Send,
            SyscallArgs::Recv { .. } => K::Recv,
            SyscallArgs::Poll { .. } => K::Poll,
            SyscallArgs::Call { .. } => K::Call,
            SyscallArgs::Reply { .. } => K::Reply,
            SyscallArgs::ReplyRecv { .. } => K::ReplyRecv,
            SyscallArgs::TakeMsg => K::TakeMsg,
            SyscallArgs::MapGranted { .. } => K::MapGranted,
            SyscallArgs::DropGrant => K::DropGrant,
            SyscallArgs::MmapHuge2M { .. } => K::MmapHuge2M,
            SyscallArgs::MunmapHuge2M { .. } => K::MunmapHuge2M,
            SyscallArgs::IommuCreateDomain => K::IommuCreateDomain,
            SyscallArgs::IommuAttach { .. } => K::IommuAttach,
            SyscallArgs::IommuDetach { .. } => K::IommuDetach,
            SyscallArgs::IommuMap { .. } => K::IommuMap,
            SyscallArgs::IommuUnmap { .. } => K::IommuUnmap,
            SyscallArgs::BlkSubmitBatch { .. } => K::BlkSubmitBatch,
            SyscallArgs::BlkReapBatch { .. } => K::BlkReapBatch,
            SyscallArgs::Yield => K::Yield,
            SyscallArgs::TraceSnapshot => K::TraceSnapshot,
            SyscallArgs::Getpid => K::Getpid,
            SyscallArgs::ThreadLookup { .. } => K::ThreadLookup,
            SyscallArgs::DescriptorResolve { .. } => K::DescriptorResolve,
            SyscallArgs::VmResolve { .. } => K::VmResolve,
            SyscallArgs::SchedSetWeight { .. } => K::SchedSetWeight,
            SyscallArgs::SchedThrottle { .. } => K::SchedThrottle,
        }
    }

    /// `true` for the read-only calls the sharded kernel may serve from
    /// a per-CPU node replica instead of the locked domain path.
    pub fn nr_read(&self) -> bool {
        matches!(
            self,
            SyscallArgs::Getpid
                | SyscallArgs::ThreadLookup { .. }
                | SyscallArgs::DescriptorResolve { .. }
                | SyscallArgs::VmResolve { .. }
        )
    }

    /// `true` when the sharded kernel serves this call with the staged
    /// two-phase locking protocol (pm for validation/quota, then mem
    /// alone for the page work) instead of holding pm throughout.
    pub fn staged_mem(&self) -> bool {
        matches!(self, SyscallArgs::Mmap { .. } | SyscallArgs::Munmap { .. })
    }
}

/// System-call error codes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SyscallError {
    /// Out of physical memory.
    NoMem,
    /// Container quota exhausted.
    Quota,
    /// A fixed capacity (children, threads, queue, slots) is full.
    Capacity,
    /// Referenced object does not exist.
    NotFound,
    /// Malformed arguments.
    Invalid,
    /// The caller lacks authority over the target.
    Denied,
    /// The calling thread is not in the right state.
    WrongState,
    /// Address translation failed (unmapped or conflicting VA).
    Fault,
}

impl From<PmError> for SyscallError {
    fn from(e: PmError) -> Self {
        match e {
            PmError::QuotaExceeded => SyscallError::Quota,
            PmError::OutOfMemory => SyscallError::NoMem,
            PmError::CapacityExceeded | PmError::EndpointFull => SyscallError::Capacity,
            PmError::NotFound => SyscallError::NotFound,
            PmError::InvalidArgument => SyscallError::Invalid,
            PmError::CpuNotOwned | PmError::Denied => SyscallError::Denied,
            PmError::NotEmpty | PmError::WrongState => SyscallError::WrongState,
        }
    }
}

impl From<MapError> for SyscallError {
    fn from(e: MapError) -> Self {
        match e {
            MapError::OutOfMemory => SyscallError::NoMem,
            MapError::Misaligned | MapError::NonCanonical => SyscallError::Invalid,
            MapError::AlreadyMapped | MapError::NotMapped | MapError::SizeConflict => {
                SyscallError::Fault
            }
        }
    }
}

/// The system-call return structure (the paper's `SyscallReturnStruct`).
#[must_use = "a syscall's return carries its error class and must be checked"]
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SyscallReturn {
    /// Success payload (up to four scalar values) or the error code.
    pub result: Result<[u64; 4], SyscallError>,
}

impl SyscallReturn {
    pub(crate) fn ok(vals: [u64; 4]) -> Self {
        SyscallReturn { result: Ok(vals) }
    }

    pub(crate) fn err(e: SyscallError) -> Self {
        SyscallReturn { result: Err(e) }
    }

    /// `true` on success.
    pub fn is_ok(&self) -> bool {
        self.result.is_ok()
    }

    /// First scalar of a successful return.
    ///
    /// # Panics
    ///
    /// Panics on an error return.
    pub fn val0(&self) -> u64 {
        self.result.expect("syscall failed")[0]
    }

    /// The trace class of this return.
    pub fn trace_class(&self) -> atmo_trace::ReturnClass {
        use atmo_trace::ReturnClass as C;
        match self.result {
            Ok(_) => C::Ok,
            Err(SyscallError::NoMem) => C::NoMem,
            Err(SyscallError::Quota) => C::Quota,
            Err(SyscallError::Capacity) => C::Capacity,
            Err(SyscallError::NotFound) => C::NotFound,
            Err(SyscallError::Invalid) => C::Invalid,
            Err(SyscallError::Denied) => C::Denied,
            Err(SyscallError::WrongState) => C::WrongState,
            Err(SyscallError::Fault) => C::Fault,
        }
    }
}

/// How a handler reaches the memory domain.
///
/// The unified kernel hands out a direct borrow; the sharded kernel
/// hands out the mem [`DomainLock`] plus the calling CPU's page cache,
/// and the lock is taken *lazily* — only if the handler actually
/// dereferences the domain. Kernel-object page allocation and free go
/// through the [`PageSource`] impl, which serves them from the per-CPU
/// cache without the mem lock whenever possible (batch refill/drain
/// under brief acquisitions otherwise).
pub(crate) enum MemAccess<'a> {
    /// The caller already owns the memory domain (unified kernel, or a
    /// sharded stage that locked it itself).
    Direct(&'a mut MemDomain),
    /// Sharded dispatch: lock on demand, allocate through the cache.
    Shard {
        /// The calling CPU (lock-acquisition attribution).
        cpu: usize,
        /// The mem domain's lock.
        lock: &'a DomainLock<Option<MemDomain>>,
        /// The calling CPU's page cache (its lock is held by the caller).
        cache: &'a mut PageCache,
        /// The lazily acquired mem guard, once any handler touched it.
        guard: Option<DomainGuard<'a, Option<MemDomain>>>,
    },
}

impl MemAccess<'_> {
    /// The memory domain, acquiring the mem lock first if this is a
    /// sharded access that has not touched it yet.
    pub(crate) fn domain(&mut self) -> &mut MemDomain {
        match self {
            MemAccess::Direct(m) => m,
            MemAccess::Shard {
                cpu, lock, guard, ..
            } => {
                if guard.is_none() {
                    *guard = Some(lock.lock(*cpu));
                }
                guard
                    .as_mut()
                    .expect("just acquired")
                    .as_mut()
                    .expect("mem domain present under its lock")
            }
        }
    }

    /// `true` when the shared mem lock is (lazily) held.
    pub(crate) fn holds_shared(&self) -> bool {
        match self {
            MemAccess::Direct(_) => false,
            MemAccess::Shard { guard, .. } => guard.is_some(),
        }
    }
}

impl PageSource for MemAccess<'_> {
    fn alloc_page_4k(&mut self) -> Result<(PagePtr, PagePermission), AllocError> {
        match self {
            MemAccess::Direct(m) => m.alloc.alloc_page_4k(),
            MemAccess::Shard {
                cpu,
                lock,
                cache,
                guard,
            } => {
                if let Some(g) = guard {
                    // Mem already locked: no point going through the cache.
                    return g
                        .as_mut()
                        .expect("mem domain present under its lock")
                        .alloc
                        .alloc_page_4k();
                }
                if let Some(got) = cache.pop() {
                    return Ok(got);
                }
                // Batch refill under a brief mem acquisition, then retry
                // the cache (ascending order: Cache is held, Mem is above).
                let mut g = lock.lock(*cpu);
                cache.refill_from(&mut g.as_mut().expect("mem domain present").alloc)?;
                drop(g);
                cache.pop().ok_or(AllocError::OutOfMemory)
            }
        }
    }

    fn free_page_4k(&mut self, perm: PagePermission) {
        match self {
            MemAccess::Direct(m) => m.alloc.free_page_4k(perm),
            MemAccess::Shard {
                cpu,
                lock,
                cache,
                guard,
            } => {
                if let Some(g) = guard {
                    g.as_mut()
                        .expect("mem domain present under its lock")
                        .alloc
                        .free_page_4k(perm);
                    return;
                }
                let page = perm.addr();
                cache.push(page, perm);
                if cache.needs_drain() {
                    let mut g = lock.lock(*cpu);
                    cache.drain_excess_to(&mut g.as_mut().expect("mem domain present").alloc);
                }
            }
        }
    }

    fn dec_map_ref(&mut self, p: PagePtr) -> bool {
        match self {
            MemAccess::Direct(m) => m.alloc.dec_map_ref(p),
            MemAccess::Shard {
                cpu, lock, guard, ..
            } => {
                if let Some(g) = guard {
                    return g
                        .as_mut()
                        .expect("mem domain present under its lock")
                        .alloc
                        .dec_map_ref(p);
                }
                // Mapped frames are never cached: brief shared access.
                lock.lock(*cpu)
                    .as_mut()
                    .expect("mem domain present")
                    .alloc
                    .dec_map_ref(p)
            }
        }
    }
}

/// The execution context a system call runs against: the pm domain and
/// the per-CPU meter borrowed mutably, the trace handle shared, and the
/// memory domain reachable through [`MemAccess`].
pub(crate) struct ExecCtx<'a> {
    /// The machine's calibrated cost model (copied; it is plain data).
    pub(crate) costs: CostModel,
    /// The calling CPU's cycle meter.
    pub(crate) meter: &'a mut CycleMeter,
    /// The pm domain: scheduler, containers, processes, endpoints.
    pub(crate) pm: &'a mut ProcessManager,
    /// The (internally sharded) trace sink.
    pub(crate) trace: &'a TraceHandle,
    /// Where `TraceSnapshot` publishes its result, when the caller
    /// provides the slot (the sharded kernel locks it only for that
    /// call).
    pub(crate) last_snapshot: Option<&'a mut Option<Snapshot>>,
    /// The memory domain (direct or lazily locked).
    pub(crate) mem: MemAccess<'a>,
}

/// Runs one system call against `ctx`: trace enter/exit, trampoline
/// costs, thread resolution, dispatch. Shared by the unified kernel and
/// the sharded wrapper.
pub(crate) fn run_syscall(ctx: &mut ExecCtx<'_>, cpu: CpuId, args: SyscallArgs) -> SyscallReturn {
    let kind = args.trace_kind();
    let entered = ctx.meter.now();
    ctx.trace.syscall_enter(cpu, kind);
    ctx.charge(ctx.costs.syscall_entry);
    let ret = dispatch_current(ctx, cpu, args);
    ctx.charge(ctx.costs.syscall_exit);
    ctx.trace
        .syscall_exit(cpu, kind, ret.trace_class(), ctx.meter.now() - entered);
    ret
}

/// Resolves the current thread on `cpu` and dispatches — the part of a
/// system call that genuinely needs the pm domain. The sharded kernel
/// calls this directly so the entry/exit trampolines (per-CPU work)
/// stay outside the pm critical section.
pub(crate) fn dispatch_current(
    ctx: &mut ExecCtx<'_>,
    cpu: CpuId,
    args: SyscallArgs,
) -> SyscallReturn {
    match ctx.pm.sched.current(cpu) {
        Some(t) => ctx.dispatch(cpu, t, args),
        None => SyscallReturn::err(SyscallError::WrongState),
    }
}

impl Kernel {
    /// The system-call trap handler for `cpu`.
    ///
    /// Resolves the current thread, dispatches, and charges entry/exit
    /// trampoline costs (the assembly of §5, item 8).
    pub fn syscall(&mut self, cpu: CpuId, args: SyscallArgs) -> SyscallReturn {
        let costs = self.machine.costs;
        let mut ctx = ExecCtx {
            costs,
            meter: self.machine.meter(cpu),
            pm: &mut self.pm,
            trace: &self.trace,
            last_snapshot: Some(&mut self.last_trace_snapshot),
            mem: MemAccess::Direct(&mut self.mem),
        };
        run_syscall(&mut ctx, cpu, args)
    }
}

impl ExecCtx<'_> {
    /// Charges `cost` cycles to the calling CPU's meter.
    pub(crate) fn charge(&mut self, cost: u64) {
        self.meter.charge(cost);
    }

    fn dispatch(&mut self, cpu: CpuId, t: ThrdPtr, args: SyscallArgs) -> SyscallReturn {
        match args {
            SyscallArgs::Mmap {
                va_base,
                len,
                writable,
            } => self.sys_mmap(t, va_base, len, writable),
            SyscallArgs::Munmap { va_base, len } => self.sys_munmap(t, va_base, len),
            SyscallArgs::NewContainer { quota, cpus } => self.sys_new_container(t, quota, &cpus),
            SyscallArgs::TerminateContainer { cntr } => self.sys_terminate_container(t, cntr),
            SyscallArgs::NewProcess { cntr } => self.sys_new_process(t, cntr),
            SyscallArgs::NewChildProcess => self.sys_new_child_process(t),
            SyscallArgs::Exit => self.sys_exit(cpu, t),
            SyscallArgs::TerminateProcess { proc } => self.sys_terminate_process(t, proc),
            SyscallArgs::NewThread { proc, cpu: home } => self.sys_new_thread(t, proc, home),
            SyscallArgs::NewEndpoint { slot } => self.sys_new_endpoint(t, slot),
            SyscallArgs::Send {
                slot,
                scalars,
                grant_page_va,
                grant_endpoint_slot,
                grant_iommu_domain,
            } => self.sys_send(
                cpu,
                t,
                slot,
                scalars,
                grant_page_va,
                grant_endpoint_slot,
                grant_iommu_domain,
            ),
            SyscallArgs::Recv { slot } => self.sys_recv(cpu, t, slot),
            SyscallArgs::Poll { slot } => self.sys_poll(cpu, t, slot),
            SyscallArgs::Call { slot, scalars } => self.sys_call(cpu, t, slot, scalars),
            SyscallArgs::Reply { scalars } => self.sys_reply(cpu, t, scalars),
            SyscallArgs::ReplyRecv { slot, scalars } => self.sys_reply_recv(cpu, t, slot, scalars),
            SyscallArgs::TakeMsg => self.sys_take_msg(t),
            SyscallArgs::MapGranted { va } => self.sys_map_granted(t, va),
            SyscallArgs::DropGrant => self.sys_drop_grant(t),
            SyscallArgs::MmapHuge2M { va_base, writable } => {
                self.sys_mmap_huge_2m(t, va_base, writable)
            }
            SyscallArgs::MunmapHuge2M { va_base } => self.sys_munmap_huge_2m(t, va_base),
            SyscallArgs::IommuCreateDomain => self.sys_iommu_create_domain(t),
            SyscallArgs::IommuAttach { domain, device } => self.sys_iommu_attach(t, domain, device),
            SyscallArgs::IommuDetach { device } => self.sys_iommu_detach(t, device),
            SyscallArgs::IommuMap { domain, iova, va } => self.sys_iommu_map(t, domain, iova, va),
            SyscallArgs::IommuUnmap { domain, iova } => self.sys_iommu_unmap(t, domain, iova),
            SyscallArgs::BlkSubmitBatch { queue, ops } => self.sys_blk_submit(t, queue, &ops),
            SyscallArgs::BlkReapBatch { queue, max, wait } => {
                self.sys_blk_reap(t, queue, max, wait)
            }
            SyscallArgs::Yield => self.sys_yield(cpu, t),
            SyscallArgs::TraceSnapshot => self.sys_trace_snapshot(t),
            SyscallArgs::Getpid => self.sys_getpid(t),
            SyscallArgs::ThreadLookup { thread } => self.sys_thread_lookup(thread),
            SyscallArgs::DescriptorResolve { slot } => self.sys_descriptor_resolve(t, slot),
            SyscallArgs::VmResolve { va } => self.sys_vm_resolve(t, va),
            SyscallArgs::SchedSetWeight { cntr, weight } => {
                self.sys_sched_set_weight(t, cntr, weight)
            }
            SyscallArgs::SchedThrottle { cntr, throttle } => {
                self.sys_sched_throttle(t, cntr, throttle)
            }
        }
    }

    // ----- read-only lookups (node-replicated on the sharded kernel) ------

    /// `getpid`: the calling thread's owning process and container.
    /// This is the *locked* path — the semantic anchor the per-CPU
    /// replicas are cross-checked against; the sharded kernel routes
    /// here only when node replication is off (counted as a fallback).
    fn sys_getpid(&mut self, t: ThrdPtr) -> SyscallReturn {
        self.charge(self.costs.syscall_validate);
        self.trace.nr_event(NrOutcome::FallbackLocked, 1);
        let th = self.pm.thrd(t);
        SyscallReturn::ok([th.owning_proc as u64, th.owning_cntr as u64, 0, 0])
    }

    /// `thread_lookup`: a thread's owning process and container.
    fn sys_thread_lookup(&mut self, thread: ThrdPtr) -> SyscallReturn {
        self.charge(self.costs.syscall_validate);
        self.trace.nr_event(NrOutcome::FallbackLocked, 1);
        if !self.pm.thrd_perms.contains(thread) {
            return SyscallReturn::err(SyscallError::NotFound);
        }
        let th = self.pm.thrd(thread);
        SyscallReturn::ok([th.owning_proc as u64, th.owning_cntr as u64, 0, 0])
    }

    /// `descriptor_resolve`: the endpoint in `slot` of the caller's
    /// descriptor table.
    fn sys_descriptor_resolve(&mut self, t: ThrdPtr, slot: EdptIdx) -> SyscallReturn {
        self.charge(self.costs.syscall_validate);
        self.trace.nr_event(NrOutcome::FallbackLocked, 1);
        match self
            .pm
            .thrd(t)
            .edpt_descriptors
            .get(slot)
            .copied()
            .flatten()
        {
            Some(e) => SyscallReturn::ok([e as u64, 0, 0, 0]),
            None => SyscallReturn::err(SyscallError::NotFound),
        }
    }

    /// `vm_resolve`: whether `va` is mapped in the caller's address
    /// space. Returns `[mapped, writable, 0, 0]` — an unmapped address
    /// is a successful "no", not a fault. On the sharded kernel this
    /// locked path takes the mem lock (the fallback the replica path
    /// avoids).
    fn sys_vm_resolve(&mut self, t: ThrdPtr, va: usize) -> SyscallReturn {
        let costs = self.costs;
        self.charge(costs.syscall_validate + costs.pt_walk_cached_read);
        self.trace.nr_event(NrOutcome::FallbackLocked, 1);
        let proc_ptr = self.pm.thrd(t).owning_proc;
        let as_id = self.pm.proc(proc_ptr).addr_space;
        let writable = self
            .mem
            .domain()
            .vm
            .table(as_id)
            .and_then(|table| table.map_4k.index(&(va & !0xFFF)).map(|e| e.flags.writable));
        match writable {
            Some(w) => SyscallReturn::ok([1, w as u64, 0, 0]),
            None => SyscallReturn::ok([0, 0, 0, 0]),
        }
    }

    /// `trace_snapshot`: publishes the merged trace snapshot (a read of
    /// ghost/diagnostic state — Ψ is unchanged, so the audit holds it to
    /// the no-op specification). The scalars summarize; the full
    /// [`atmo_trace::Snapshot`] is stashed for
    /// [`Kernel::take_trace_snapshot`].
    fn sys_trace_snapshot(&mut self, _t: ThrdPtr) -> SyscallReturn {
        self.charge(self.costs.syscall_validate);
        let snap = self.trace.snapshot();
        let ret = SyscallReturn::ok([
            snap.total_syscall_exits(),
            snap.total_events,
            snap.total_dropped,
            snap.per_cpu.len() as u64,
        ]);
        if let Some(slot) = self.last_snapshot.as_mut() {
            **slot = Some(snap);
        }
        ret
    }

    // ----- memory management ----------------------------------------------

    /// `mmap` (Listing 1): allocate `len` fresh physical pages and map
    /// them at `va_base..va_base+len*4K` in the caller's address space.
    ///
    /// The pm-side work (thread resolution, quota) happens here; the
    /// allocator/page-table work is [`mmap_stage_mem`] — the *same*
    /// function stage 2 of the sharded kernel runs, so the unified and
    /// staged paths charge identical cycles and take the identical
    /// batched/per-page datapath by construction.
    fn sys_mmap(
        &mut self,
        t: ThrdPtr,
        va_base: usize,
        len: usize,
        writable: bool,
    ) -> SyscallReturn {
        let costs = self.costs;
        self.charge(costs.syscall_validate);
        let Some(range) = VaRange4K::new(VAddr(va_base), len) else {
            return SyscallReturn::err(SyscallError::Invalid);
        };
        if len == 0 {
            return SyscallReturn::err(SyscallError::Invalid);
        }
        // Listing 1 lines 35–40: resolve the thread, then its process.
        let (proc_ptr, cntr) = {
            let thread = self.pm.thrd(t);
            (thread.owning_proc, thread.owning_cntr)
        };
        let as_id = self.pm.proc(proc_ptr).addr_space;
        // The whole range must be unmapped (otherwise nothing changes).
        {
            let m = self.mem.domain();
            let pt = m.vm.table(as_id).expect("process without address space");
            for va in range.iter() {
                if pt.resolve(va).is_some() {
                    return SyscallReturn::err(SyscallError::Fault);
                }
            }
        }
        // Charge quota for the new frames.
        if let Err(e) = self.pm.charge(cntr, len) {
            return SyscallReturn::err(e.into());
        }
        let plan = MemStagePlan {
            cntr,
            as_id,
            range,
            len,
            writable,
        };
        let meter = &mut *self.meter;
        let ret = mmap_stage_mem(&costs, meter, self.mem.domain(), &plan);
        if !ret.is_ok() {
            self.pm.uncharge(cntr, len);
        }
        ret
    }

    /// `munmap`: remove `len` 4 KiB mappings, dropping the frames'
    /// references and releasing quota. Shares [`munmap_stage_mem`] with
    /// the sharded kernel's stage 2 (see [`ExecCtx::sys_mmap`]).
    fn sys_munmap(&mut self, t: ThrdPtr, va_base: usize, len: usize) -> SyscallReturn {
        let costs = self.costs;
        self.charge(costs.syscall_validate);
        let Some(range) = VaRange4K::new(VAddr(va_base), len) else {
            return SyscallReturn::err(SyscallError::Invalid);
        };
        if len == 0 {
            return SyscallReturn::err(SyscallError::Invalid);
        }
        let (proc_ptr, cntr) = {
            let thread = self.pm.thrd(t);
            (thread.owning_proc, thread.owning_cntr)
        };
        let as_id = self.pm.proc(proc_ptr).addr_space;
        let plan = MemStagePlan {
            cntr,
            as_id,
            range,
            len,
            writable: false,
        };
        let meter = &mut *self.meter;
        let ret = munmap_stage_mem(&costs, meter, self.mem.domain(), &plan);
        if ret.is_ok() {
            self.pm.uncharge(cntr, len);
        }
        ret
    }

    // ----- containers / processes / threads --------------------------------

    fn sys_new_container(&mut self, t: ThrdPtr, quota: usize, cpus: &[CpuId]) -> SyscallReturn {
        let costs = self.costs;
        self.charge(costs.syscall_validate + costs.page_alloc_4k + costs.quota_account);
        let parent = self.pm.thrd(t).owning_cntr;
        match self.pm.new_container(&mut self.mem, parent, quota, cpus) {
            Ok(c) => SyscallReturn::ok([c as u64, 0, 0, 0]),
            Err(e) => SyscallReturn::err(e.into()),
        }
    }

    fn sys_terminate_container(&mut self, t: ThrdPtr, cntr: CtnrPtr) -> SyscallReturn {
        let costs = self.costs;
        self.charge(costs.syscall_validate);
        let caller_cntr = self.pm.thrd(t).owning_cntr;
        if !self.pm.cntr_perms.contains(cntr) {
            return SyscallReturn::err(SyscallError::NotFound);
        }
        // Authority: only direct/indirect children may be terminated (§3).
        if !self.pm.cntr(caller_cntr).subtree.contains(&cntr) {
            return SyscallReturn::err(SyscallError::Denied);
        }
        // Release kernel-held grant references of every dying thread.
        let mut dying_threads: Vec<ThrdPtr> = Vec::new();
        let mut dead_cntrs: Vec<CtnrPtr> = self.pm.cntr(cntr).subtree.to_vec();
        dead_cntrs.push(cntr);
        for dc in &dead_cntrs {
            dying_threads.extend(self.pm.cntr(*dc).owned_thrds.iter().copied());
        }
        self.release_pending_grants(&dying_threads);
        self.cleanup_iommu_for(&dead_cntrs);

        match self.pm.terminate_container(&mut self.mem, cntr) {
            Ok(freed_spaces) => {
                for as_id in freed_spaces {
                    self.charge(costs.page_free_4k);
                    let m = self.mem.domain();
                    m.vm.destroy_space(&mut m.alloc, as_id);
                }
                SyscallReturn::ok([0, 0, 0, 0])
            }
            Err(e) => SyscallReturn::err(e.into()),
        }
    }

    /// Authority shared by the scheduler-control calls: the target must
    /// be a strict member of the caller's subtree — the
    /// terminate-container rule (§3), which deliberately excludes the
    /// caller's own container. Budgets are imposed from above; a
    /// container that could retarget its own account would simply tear
    /// it down (`weight 0`), raise its weight, or lift a throttle, and
    /// run unmetered past whatever its parent granted.
    fn check_sched_authority(&self, t: ThrdPtr, cntr: CtnrPtr) -> Result<(), SyscallError> {
        if !self.pm.cntr_perms.contains(cntr) {
            return Err(SyscallError::NotFound);
        }
        let caller_cntr = self.pm.thrd(t).owning_cntr;
        if !self.pm.cntr(caller_cntr).subtree.contains(&cntr) {
            return Err(SyscallError::Denied);
        }
        Ok(())
    }

    fn sys_sched_set_weight(&mut self, t: ThrdPtr, cntr: CtnrPtr, weight: u32) -> SyscallReturn {
        let costs = self.costs;
        self.charge(costs.syscall_validate + costs.quota_account);
        if let Err(e) = self.check_sched_authority(t, cntr) {
            return SyscallReturn::err(e);
        }
        match self.pm.sched_set_weight(cntr, weight) {
            Ok(()) => SyscallReturn::ok([0, 0, 0, 0]),
            Err(e) => SyscallReturn::err(e.into()),
        }
    }

    fn sys_sched_throttle(&mut self, t: ThrdPtr, cntr: CtnrPtr, throttle: bool) -> SyscallReturn {
        let costs = self.costs;
        self.charge(costs.syscall_validate + costs.quota_account);
        if let Err(e) = self.check_sched_authority(t, cntr) {
            return SyscallReturn::err(e);
        }
        match self.pm.sched_throttle(cntr, throttle) {
            Ok(()) => SyscallReturn::ok([0, 0, 0, 0]),
            Err(e) => SyscallReturn::err(e.into()),
        }
    }

    fn sys_new_process(&mut self, t: ThrdPtr, cntr: CtnrPtr) -> SyscallReturn {
        let costs = self.costs;
        self.charge(costs.syscall_validate + costs.page_alloc_4k + costs.quota_account);
        let caller_cntr = self.pm.thrd(t).owning_cntr;
        if !self.pm.cntr_perms.contains(cntr) {
            return SyscallReturn::err(SyscallError::NotFound);
        }
        if cntr != caller_cntr && !self.pm.cntr(caller_cntr).subtree.contains(&cntr) {
            return SyscallReturn::err(SyscallError::Denied);
        }
        let p = match self.pm.new_process(&mut self.mem, cntr, None) {
            Ok(p) => p,
            Err(e) => return SyscallReturn::err(e.into()),
        };
        let as_id = self.pm.proc(p).addr_space;
        let m = self.mem.domain();
        if m.vm.create_space(&mut m.alloc, as_id).is_err() {
            // Roll back the half-created process.
            let _ = self.pm.terminate_process(&mut self.mem, p);
            return SyscallReturn::err(SyscallError::NoMem);
        }
        SyscallReturn::ok([p as u64, 0, 0, 0])
    }

    /// Creates a child process under the caller's process, in the same
    /// container (§3: per-container process trees with parent-child
    /// tracking).
    fn sys_new_child_process(&mut self, t: ThrdPtr) -> SyscallReturn {
        let costs = self.costs;
        self.charge(costs.syscall_validate + costs.page_alloc_4k + costs.quota_account);
        let (parent_proc, cntr) = {
            let th = self.pm.thrd(t);
            (th.owning_proc, th.owning_cntr)
        };
        let p = match self.pm.new_process(&mut self.mem, cntr, Some(parent_proc)) {
            Ok(p) => p,
            Err(e) => return SyscallReturn::err(e.into()),
        };
        let as_id = self.pm.proc(p).addr_space;
        let m = self.mem.domain();
        if m.vm.create_space(&mut m.alloc, as_id).is_err() {
            let _ = self.pm.terminate_process(&mut self.mem, p);
            return SyscallReturn::err(SyscallError::NoMem);
        }
        SyscallReturn::ok([p as u64, 0, 0, 0])
    }

    /// Terminates the calling thread. If it was the last thread of its
    /// process, the process itself stays (an empty process a parent can
    /// reuse or terminate) — matching the paper's explicit lifecycle.
    fn sys_exit(&mut self, cpu: CpuId, t: ThrdPtr) -> SyscallReturn {
        let costs = self.costs;
        self.charge(costs.thread_switch + costs.page_free_4k);
        self.release_pending_grants(&[t]);
        match self.pm.terminate_thread(&mut self.mem, t) {
            Ok(()) => {
                // The CPU is idle now; pick up the next ready thread.
                if self.pm.sched.current(cpu).is_none() {
                    if let Some(next) = self.pm.sched.dispatch(cpu) {
                        use atmo_pm::ThreadState;
                        let p = atmo_spec::PPtr::<atmo_pm::Thread>::from_usize(next);
                        p.borrow_mut(self.pm.thrd_perms.tracked_borrow_mut(next))
                            .state = ThreadState::Running(cpu);
                    }
                }
                SyscallReturn::ok([0, 0, 0, 0])
            }
            Err(e) => SyscallReturn::err(e.into()),
        }
    }

    fn sys_terminate_process(&mut self, t: ThrdPtr, proc: ProcPtr) -> SyscallReturn {
        let costs = self.costs;
        self.charge(costs.syscall_validate);
        if !self.pm.proc_perms.contains(proc) {
            return SyscallReturn::err(SyscallError::NotFound);
        }
        let caller_cntr = self.pm.thrd(t).owning_cntr;
        let caller_proc = self.pm.thrd(t).owning_proc;
        let target_cntr = self.pm.proc(proc).owning_container;
        // Authority: own process tree (self or descendant) or a process in
        // a child container.
        let same_tree = proc == caller_proc || self.pm.proc(proc).path.contains(&caller_proc);
        let child_cntr = self.pm.cntr(caller_cntr).subtree.contains(&target_cntr);
        if !(same_tree || child_cntr) {
            return SyscallReturn::err(SyscallError::Denied);
        }
        // Collect (container, mapped-page-count, as_id) per dying process
        // so quota can be released after teardown.
        let mut stack = vec![proc];
        let mut doomed = Vec::new();
        while let Some(q) = stack.pop() {
            let pr = self.pm.proc(q);
            doomed.push((pr.owning_container, pr.addr_space));
            stack.extend(pr.children.iter());
        }
        let mut dying_threads = Vec::new();
        {
            let mut stack = vec![proc];
            while let Some(q) = stack.pop() {
                dying_threads.extend(self.pm.proc(q).threads.iter());
                stack.extend(self.pm.proc(q).children.iter());
            }
        }
        self.release_pending_grants(&dying_threads);

        match self.pm.terminate_process(&mut self.mem, proc) {
            Ok(_freed) => {
                for (cntr, as_id) in doomed {
                    self.charge(costs.page_free_4k);
                    let m = self.mem.domain();
                    let removed = m.vm.destroy_space(&mut m.alloc, as_id);
                    if self.pm.cntr_perms.contains(cntr) {
                        self.pm.uncharge(cntr, removed);
                    }
                }
                SyscallReturn::ok([0, 0, 0, 0])
            }
            Err(e) => SyscallReturn::err(e.into()),
        }
    }

    fn release_pending_grants(&mut self, threads: &[ThrdPtr]) {
        let trace = self.trace;
        let m = self.mem.domain();
        for t in threads {
            if let Some(frame) = m.pending_grants.remove(t) {
                trace.audit_delta(AuditDelta::RefDec(frame));
                m.alloc.dec_map_ref(frame);
            }
        }
    }

    fn sys_new_thread(&mut self, t: ThrdPtr, proc: ProcPtr, home: CpuId) -> SyscallReturn {
        let costs = self.costs;
        self.charge(costs.syscall_validate + costs.page_alloc_4k + costs.quota_account);
        if !self.pm.proc_perms.contains(proc) {
            return SyscallReturn::err(SyscallError::NotFound);
        }
        let caller_cntr = self.pm.thrd(t).owning_cntr;
        let target_cntr = self.pm.proc(proc).owning_container;
        if target_cntr != caller_cntr && !self.pm.cntr(caller_cntr).subtree.contains(&target_cntr) {
            return SyscallReturn::err(SyscallError::Denied);
        }
        match self.pm.new_thread(&mut self.mem, proc, home) {
            Ok(nt) => SyscallReturn::ok([nt as u64, 0, 0, 0]),
            Err(e) => SyscallReturn::err(e.into()),
        }
    }

    // ----- endpoints and IPC ------------------------------------------------

    fn sys_new_endpoint(&mut self, t: ThrdPtr, slot: EdptIdx) -> SyscallReturn {
        let costs = self.costs;
        self.charge(costs.page_alloc_4k + costs.quota_account);
        match self.pm.new_endpoint(&mut self.mem, t, slot) {
            Ok(e) => SyscallReturn::ok([e as u64, 0, 0, 0]),
            Err(e) => SyscallReturn::err(e.into()),
        }
    }

    fn build_payload(
        &mut self,
        t: ThrdPtr,
        scalars: [u64; 4],
        grant_page_va: Option<usize>,
        grant_endpoint_slot: Option<EdptIdx>,
        grant_iommu_domain: Option<u32>,
    ) -> Result<IpcPayload, SyscallError> {
        let mut payload = IpcPayload::scalars(scalars);
        if let Some(domain) = grant_iommu_domain {
            // Only domains the sender is authorized for may be granted.
            let cntr = self.pm.thrd(t).owning_cntr;
            if !self.mem.domain().iommu_authorized(domain, cntr) {
                return Err(SyscallError::Denied);
            }
            payload.iommu_grant = Some(domain);
        }
        if let Some(slot) = grant_endpoint_slot {
            let e = self
                .pm
                .thrd(t)
                .descriptor(slot)
                .ok_or(SyscallError::Invalid)?;
            payload.endpoint_grant = Some(e);
        }
        if let Some(va) = grant_page_va {
            let as_id = self.pm.proc(self.pm.thrd(t).owning_proc).addr_space;
            let m = self.mem.domain();
            let pt = m.vm.table(as_id).expect("space exists");
            let frame = *pt
                .map_4k
                .index(&VAddr(va).align_down(atmo_hw::PAGE_SIZE_4K).as_usize())
                .map(|e| &e.frame)
                .ok_or(SyscallError::Fault)?;
            // The in-flight grant holds a mapping reference.
            m.alloc.inc_map_ref(frame);
            self.trace.audit_delta(AuditDelta::RefInc(frame));
            payload.page_grant = Some(frame);
        }
        Ok(payload)
    }

    fn charge_ipc(&mut self) {
        let costs = self.costs;
        self.charge(costs.endpoint_queue_op + costs.ipc_transfer + costs.thread_switch);
    }

    #[allow(clippy::too_many_arguments)]
    fn sys_send(
        &mut self,
        cpu: CpuId,
        t: ThrdPtr,
        slot: EdptIdx,
        scalars: [u64; 4],
        grant_page_va: Option<usize>,
        grant_endpoint_slot: Option<EdptIdx>,
        grant_iommu_domain: Option<u32>,
    ) -> SyscallReturn {
        self.charge_ipc();
        let payload = match self.build_payload(
            t,
            scalars,
            grant_page_va,
            grant_endpoint_slot,
            grant_iommu_domain,
        ) {
            Ok(p) => p,
            Err(e) => return SyscallReturn::err(e),
        };
        if grant_page_va.is_some() {
            self.charge(self.costs.ipc_cap_transfer);
        }
        match self.pm.send(t, cpu, slot, payload) {
            Ok(SendOutcome::Delivered(r)) => SyscallReturn::ok([1, r as u64, 0, 0]),
            Ok(SendOutcome::Blocked) => SyscallReturn::ok([0, 0, 0, 0]),
            Err(e) => {
                // Roll back the in-flight grant reference.
                if let Some(frame) = payload.page_grant {
                    self.trace.audit_delta(AuditDelta::RefDec(frame));
                    self.mem.dec_map_ref(frame);
                }
                SyscallReturn::err(e.into())
            }
        }
    }

    fn sys_recv(&mut self, cpu: CpuId, t: ThrdPtr, slot: EdptIdx) -> SyscallReturn {
        self.charge_ipc();
        match self.pm.recv(t, cpu, slot) {
            Ok(RecvOutcome::Received(_)) => self.sys_take_msg(t),
            Ok(RecvOutcome::Blocked) => SyscallReturn::ok([0, 0, 0, 0]),
            Err(e) => SyscallReturn::err(e.into()),
        }
    }

    /// Non-blocking receive: returns the message scalars when a sender
    /// was waiting, or `[0, 0, 0, u64::MAX]` when the endpoint was empty.
    fn sys_poll(&mut self, cpu: CpuId, t: ThrdPtr, slot: EdptIdx) -> SyscallReturn {
        self.charge(self.costs.endpoint_queue_op);
        match self.pm.try_recv(t, cpu, slot) {
            Ok(Some(_payload)) => {
                self.charge(self.costs.ipc_transfer);
                self.sys_take_msg(t)
            }
            Ok(None) => SyscallReturn::ok([0, 0, 0, u64::MAX]),
            Err(e) => SyscallReturn::err(e.into()),
        }
    }

    /// `call`: send + block-for-reply in one trap. Attempts the direct
    /// handoff first; the cycle charge depends on which path ran — the
    /// fast path's `ipc_fastpath` body is strictly cheaper than the slow
    /// rendezvous body (queue op + transfer + full context switch).
    /// Scalar-only payloads by construction, so the handler is pm-pure:
    /// the mem domain is never touched on either path.
    fn sys_call(
        &mut self,
        cpu: CpuId,
        t: ThrdPtr,
        slot: EdptIdx,
        scalars: [u64; 4],
    ) -> SyscallReturn {
        let payload = IpcPayload::scalars(scalars);
        match self.pm.call_fast(t, cpu, slot, payload) {
            Ok((out, true)) => {
                self.charge(self.costs.ipc_fastpath);
                let r = match out {
                    SendOutcome::Delivered(r) => r as u64,
                    SendOutcome::Blocked => 0,
                };
                SyscallReturn::ok([1, r, 0, 0])
            }
            Ok((_, false)) => {
                self.charge_ipc();
                SyscallReturn::ok([0, 0, 0, 0])
            }
            Err(e) => {
                self.charge_ipc();
                SyscallReturn::err(e.into())
            }
        }
    }

    fn sys_reply(&mut self, cpu: CpuId, t: ThrdPtr, scalars: [u64; 4]) -> SyscallReturn {
        self.charge_ipc();
        match self.pm.reply(t, cpu, IpcPayload::scalars(scalars)) {
            Ok(caller) => SyscallReturn::ok([caller as u64, 0, 0, 0]),
            Err(e) => SyscallReturn::err(e.into()),
        }
    }

    /// `reply_recv`: answer the pending caller and re-open the endpoint
    /// in `slot`, in one trap. The fast path hands the CPU straight back
    /// to the caller and parks this thread as the endpoint's receiver;
    /// misses decompose into the slow `reply` + `recv` pair (same
    /// abstract transitions, full rendezvous cost). pm-pure like
    /// `sys_call`.
    fn sys_reply_recv(
        &mut self,
        cpu: CpuId,
        t: ThrdPtr,
        slot: EdptIdx,
        scalars: [u64; 4],
    ) -> SyscallReturn {
        match self
            .pm
            .reply_recv(t, cpu, slot, IpcPayload::scalars(scalars))
        {
            Ok((ReplyRecvOutcome::Handoff(caller), _)) => {
                self.charge(self.costs.ipc_fastpath);
                SyscallReturn::ok([1, caller as u64, 0, 0])
            }
            Ok((ReplyRecvOutcome::Received(_), _)) => {
                self.charge_ipc();
                // The next request is already in the mailbox.
                self.sys_take_msg(t)
            }
            Ok((ReplyRecvOutcome::Blocked, _)) => {
                self.charge_ipc();
                SyscallReturn::ok([0, 0, 0, 0])
            }
            Err(e) => {
                self.charge_ipc();
                SyscallReturn::err(e.into())
            }
        }
    }

    /// Takes the delivered message: returns its scalars, stashing a page
    /// grant (if any) as the thread's pending grant.
    fn sys_take_msg(&mut self, t: ThrdPtr) -> SyscallReturn {
        match self.pm.take_message(t) {
            Some(payload) => {
                if let Some(domain) = payload.iommu_grant {
                    self.deliver_iommu_grant(t, domain);
                }
                if let Some(frame) = payload.page_grant {
                    // At most one pending grant per thread; a second grant
                    // replaces the first, whose reference is dropped.
                    let trace = self.trace;
                    let m = self.mem.domain();
                    if let Some(old) = m.pending_grants.insert(t, frame) {
                        trace.audit_delta(AuditDelta::RefDec(old));
                        m.alloc.dec_map_ref(old);
                    }
                }
                let e_grant = payload.endpoint_grant.map(|e| e as u64).unwrap_or(0);
                let has_page = payload.page_grant.is_some() as u64;
                SyscallReturn::ok([payload.scalars[0], payload.scalars[1], e_grant, has_page])
            }
            None => SyscallReturn::err(SyscallError::WrongState),
        }
    }

    /// Maps the pending granted frame at `va` in the caller's space,
    /// charging one page of quota (shared mappings are charged to every
    /// container that maps them — a conservative upper bound).
    fn sys_map_granted(&mut self, t: ThrdPtr, va: usize) -> SyscallReturn {
        let costs = self.costs;
        self.charge(costs.syscall_validate + costs.quota_account + costs.pt_level_write);
        let Some(&frame) = self.mem.domain().pending_grants.get(&t) else {
            return SyscallReturn::err(SyscallError::WrongState);
        };
        let va = VAddr(va);
        if !va.is_aligned(atmo_hw::PAGE_SIZE_4K) || !va.is_canonical() {
            return SyscallReturn::err(SyscallError::Invalid);
        }
        let (proc_ptr, cntr) = {
            let th = self.pm.thrd(t);
            (th.owning_proc, th.owning_cntr)
        };
        let as_id = self.pm.proc(proc_ptr).addr_space;
        if let Err(e) = self.pm.charge(cntr, 1) {
            return SyscallReturn::err(e.into());
        }
        let m = self.mem.domain();
        let pt = m.vm.table_mut(as_id).expect("space exists");
        match pt.map_4k_page(&mut m.alloc, va, frame, EntryFlags::user_rw()) {
            Ok(()) => {
                // The mapping consumes the grant's reference: the pending-
                // grant site disappears, the new leaf site (RefInc'd by the
                // page table) takes over.
                m.pending_grants.remove(&t);
                self.trace.audit_delta(AuditDelta::RefDec(frame));
                SyscallReturn::ok([va.as_usize() as u64, 0, 0, 0])
            }
            Err(e) => {
                self.pm.uncharge(cntr, 1);
                SyscallReturn::err(e.into())
            }
        }
    }

    fn sys_drop_grant(&mut self, t: ThrdPtr) -> SyscallReturn {
        let trace = self.trace;
        let m = self.mem.domain();
        match m.pending_grants.remove(&t) {
            Some(frame) => {
                trace.audit_delta(AuditDelta::RefDec(frame));
                m.alloc.dec_map_ref(frame);
                SyscallReturn::ok([0, 0, 0, 0])
            }
            None => SyscallReturn::err(SyscallError::WrongState),
        }
    }

    fn sys_yield(&mut self, cpu: CpuId, t: ThrdPtr) -> SyscallReturn {
        let costs = self.costs;
        self.charge(costs.thread_switch);
        let _ = t;
        let next = self.pm.timer_tick(cpu);
        SyscallReturn::ok([next.unwrap_or(0) as u64, 0, 0, 0])
    }
}

// ----- staged two-phase mmap/munmap for the sharded kernel ----------------
//
// The sharded kernel does not hold the pm lock across an mmap's page
// loop: stage 1 validates and charges quota under pm alone, stage 2 does
// the allocator/page-table work under mem alone, and a failed stage 2
// re-acquires pm just to release the quota. The abstract specs allow
// this: `syscall_mmap_spec` constrains only the success shape and the
// noop-on-error rule, and quota over-reservation between the stages errs
// in the safe direction. Cycle charges are identical to the unified path.

/// What stage 1 of a staged `mmap`/`munmap` resolved under the pm lock.
#[derive(Clone, Copy, Debug)]
pub(crate) struct MemStagePlan {
    /// The charged container (uncharge target on stage-2 failure).
    pub(crate) cntr: CtnrPtr,
    /// The caller's address space.
    pub(crate) as_id: crate::vm::AsId,
    /// The validated page range.
    pub(crate) range: VaRange4K,
    /// Number of pages.
    pub(crate) len: usize,
    /// Writable mapping (mmap only)?
    pub(crate) writable: bool,
}

/// Stage 0 of a staged `mmap`/`munmap`: the argument checks and the
/// validation charge. Pure per-CPU work — the sharded kernel runs it
/// *before* taking any shared lock, so bad arguments never serialize
/// behind the pm domain. (Precedence nit: with no current thread *and*
/// bad arguments this reports `Invalid` where the unified path reports
/// `WrongState`; both are noop errors, which is all the spec pins.)
pub(crate) fn stage_validate(
    costs: &CostModel,
    meter: &mut CycleMeter,
    va_base: usize,
    len: usize,
) -> Result<VaRange4K, SyscallReturn> {
    meter.charge(costs.syscall_validate);
    let Some(range) = VaRange4K::new(VAddr(va_base), len) else {
        return Err(SyscallReturn::err(SyscallError::Invalid));
    };
    if len == 0 {
        return Err(SyscallReturn::err(SyscallError::Invalid));
    }
    Ok(range)
}

/// Stage 1 of a staged `mmap`: thread resolution and the quota charge —
/// the only parts that need the pm domain. No cycles are charged here;
/// the pm hold stays as short as the work it protects.
pub(crate) fn mmap_stage_pm(
    pm: &mut ProcessManager,
    cpu: CpuId,
    range: VaRange4K,
    len: usize,
    writable: bool,
) -> Result<MemStagePlan, SyscallReturn> {
    let Some(t) = pm.sched.current(cpu) else {
        return Err(SyscallReturn::err(SyscallError::WrongState));
    };
    let (proc_ptr, cntr) = {
        let thread = pm.thrd(t);
        (thread.owning_proc, thread.owning_cntr)
    };
    let as_id = pm.proc(proc_ptr).addr_space;
    if let Err(e) = pm.charge(cntr, len) {
        return Err(SyscallReturn::err(e.into()));
    }
    Ok(MemStagePlan {
        cntr,
        as_id,
        range,
        len,
        writable,
    })
}

/// Stage 2 of a staged `mmap`: the allocator and page-table work, under
/// the mem domain alone. On an error return the caller must release the
/// stage-1 quota with [`uncharge_stage_pm`]. Degrades to `Fault` when
/// the address space vanished between the stages (its container was
/// terminated concurrently).
pub(crate) fn mmap_stage_mem(
    costs: &CostModel,
    meter: &mut CycleMeter,
    mem: &mut MemDomain,
    plan: &MemStagePlan,
) -> SyscallReturn {
    if mem.vm.table(plan.as_id).is_none() {
        return SyscallReturn::err(SyscallError::Fault);
    }
    for va in plan.range.iter() {
        if mem
            .vm
            .table(plan.as_id)
            .expect("checked above")
            .resolve(va)
            .is_some()
        {
            return SyscallReturn::err(SyscallError::Fault);
        }
    }
    let flags = if plan.writable {
        EntryFlags::user_rw()
    } else {
        EntryFlags::user_ro()
    };
    if mem.vm.batch_enabled() && plan.len >= BATCH_MIN_PAGES {
        mmap_batched_mem(costs, meter, mem, plan, flags)
    } else {
        mmap_per_page_mem(costs, meter, mem, plan, flags)
    }
}

/// Smallest request the batched datapath pays off for. A single-page
/// call cannot amortize anything: it pays the full first-page walk plus
/// one batched shootdown (`tlb_shootdown_batch`, 420) where the
/// per-page body pays one plain `tlb_invalidate` (160) — 2244 vs 1984
/// cycles end to end. From two pages on, every walk-cached fill saves
/// `map_fill_first_page - map_fill_next_page` cycles and the batched
/// path is strictly cheaper, so requests below this floor take the
/// per-page body even with batching enabled (mirroring real kernels,
/// which skip batch machinery for single-PTE faults).
pub const BATCH_MIN_PAGES: usize = 2;

/// The original per-page `mmap` datapath: full L3→L2→L1 walk, ledger
/// update, and TLB invalidation for every page. Kept callable (batch
/// toggle off) as the measured baseline and as the reference execution
/// the batched path must refine to the same abstract state.
fn mmap_per_page_mem(
    costs: &CostModel,
    meter: &mut CycleMeter,
    mem: &mut MemDomain,
    plan: &MemStagePlan,
    flags: EntryFlags,
) -> SyscallReturn {
    let mut mapped: Vec<(VAddr, PagePtr)> = Vec::with_capacity(plan.len);
    let rollback = |mem: &mut MemDomain, mapped: &[(VAddr, PagePtr)]| {
        for (va, frame) in mapped {
            let pt = mem.vm.table_mut(plan.as_id).expect("space exists");
            pt.unmap_4k_page(*va).expect("rollback of a fresh mapping");
            mem.alloc.dec_map_ref(*frame);
        }
    };
    for va in plan.range.iter() {
        meter.charge(
            costs.page_alloc_4k
                + costs.quota_account
                + 3 * costs.pt_level_read
                + costs.pt_level_write
                + costs.page_state_update
                + costs.tlb_invalidate,
        );
        let frame = match mem.alloc.alloc_mapped(PageSize::Size4K) {
            Ok(f) => f,
            Err(_) => {
                rollback(mem, &mapped);
                return SyscallReturn::err(SyscallError::NoMem);
            }
        };
        let pt = mem.vm.table_mut(plan.as_id).expect("space exists");
        match pt.map_4k_page(&mut mem.alloc, va, frame, flags) {
            Ok(()) => mapped.push((va, frame)),
            Err(e) => {
                mem.alloc.dec_map_ref(frame);
                rollback(mem, &mapped);
                return SyscallReturn::err(e.into());
            }
        }
    }
    SyscallReturn::ok([plan.range.base.as_usize() as u64, plan.len as u64, 0, 0])
}

/// Undoes a partially executed batched `mmap`: promoted superpages are
/// unmapped and their 2 MiB blocks split back into the exact 4 KiB free
/// set they were merged from; batched 4 KiB segments are unmapped
/// per page. The shootdown queue is drained so the mem domain is
/// released quiescent even on the error path.
fn mmap_batched_rollback(
    mem: &mut MemDomain,
    as_id: crate::vm::AsId,
    promoted: &[(usize, PagePtr)],
    mapped_4k: &[(usize, Vec<PagePtr>)],
) {
    for (va, head) in promoted {
        let pt = mem.vm.table_mut(as_id).expect("space exists");
        pt.unmap_2m_page(VAddr(*va))
            .expect("rollback of a fresh superpage");
        mem.vm.clear_promoted(as_id, *va);
        mem.alloc.dec_map_ref(*head);
        mem.alloc.split_2m(*head);
    }
    for (seg, frames) in mapped_4k {
        for (i, frame) in frames.iter().enumerate() {
            let pt = mem.vm.table_mut(as_id).expect("space exists");
            pt.unmap_4k_page(VAddr(seg + i * PAGE_SIZE_4K))
                .expect("rollback of a fresh mapping");
            mem.alloc.dec_map_ref(*frame);
        }
    }
    let flushed = {
        let pt = mem.vm.table_mut(as_id).expect("space exists");
        pt.flush_shootdowns()
    };
    mem.vm.trace_vm(VmOutcome::ShootdownFlushed, flushed);
}

/// The batched `mmap` datapath (the tentpole):
///
/// * 2 MiB-aligned, fully covered 512-page runs are **promoted**: one
///   physically contiguous block (merged from the 4 KiB free list, so
///   every constituent frame was free — exactly what the spec's
///   `page_is_free` clause demands) mapped by a single L2 leaf write;
/// * everything else is filled through the **walk cache**: the
///   L3→L2→L1 chain is resolved once per L1 run, subsequent PTEs in the
///   same table charge `pt_walk_cached_read + pt_fill_write` instead of
///   the full walk, and page-state updates batch;
/// * the quota ledger is touched **once** per call, not once per page;
/// * TLB invalidations are **deferred** to one batched shootdown in the
///   epilogue, still inside the same mem critical section (the queue is
///   empty again before the mem lock is released, so the pm→mem lock
///   order and the quiescence audit are untouched).
fn mmap_batched_mem(
    costs: &CostModel,
    meter: &mut CycleMeter,
    mem: &mut MemDomain,
    plan: &MemStagePlan,
    flags: EntryFlags,
) -> SyscallReturn {
    let base = plan.range.base.as_usize();
    let end = base + plan.len * PAGE_SIZE_4K;
    let frames_2m = PageSize::Size2M.frames() as u64;
    // One ledger update for the whole call (stage 1 charged the quota in
    // a single operation).
    meter.charge(costs.quota_account);
    let mut promoted: Vec<(usize, PagePtr)> = Vec::new();
    let mut mapped_4k: Vec<(usize, Vec<PagePtr>)> = Vec::new();
    let mut va = base;
    while va < end {
        // Promotion candidate: aligned and fully covered. Permissions
        // are uniform across a single mmap call by construction.
        if va.is_multiple_of(PAGE_SIZE_2M) && va + PAGE_SIZE_2M <= end {
            if let Some(head) = mem.alloc.try_alloc_contiguous_2m() {
                let promoted_ok = {
                    let pt = mem.vm.table_mut(plan.as_id).expect("space exists");
                    match pt.map_2m_page(&mut mem.alloc, VAddr(va), head, flags) {
                        Ok(()) => {
                            pt.defer_shootdown(VAddr(va), frames_2m);
                            true
                        }
                        // A SizeConflict (an L1 table already hangs off
                        // this L2 slot) or any other failure falls back
                        // to the 4 KiB fill below.
                        Err(_) => false,
                    }
                };
                if promoted_ok {
                    meter.charge(
                        costs.page_alloc_4k
                            + 2 * costs.pt_level_read
                            + costs.pt_level_write
                            + costs.page_state_update,
                    );
                    mem.vm.note_promoted(plan.as_id, va);
                    mem.vm.trace_vm(VmOutcome::SuperpagePromotion, 1);
                    mem.vm.trace_vm(VmOutcome::ShootdownDeferred, frames_2m);
                    promoted.push((va, head));
                    va += PAGE_SIZE_2M;
                    continue;
                }
                mem.alloc.dec_map_ref(head);
                mem.alloc.split_2m(head);
            }
        }
        // 4 KiB segment: up to the next promotion-eligible boundary (or
        // the end of the range).
        let mut seg_end = va + PAGE_SIZE_4K;
        while seg_end < end
            && !(seg_end.is_multiple_of(PAGE_SIZE_2M) && seg_end + PAGE_SIZE_2M <= end)
        {
            seg_end += PAGE_SIZE_4K;
        }
        let npages = (seg_end - va) / PAGE_SIZE_4K;
        let mut frames: Vec<PagePtr> = Vec::with_capacity(npages);
        for _ in 0..npages {
            match mem.alloc.alloc_mapped(PageSize::Size4K) {
                Ok(f) => frames.push(f),
                Err(_) => {
                    for f in &frames {
                        mem.alloc.dec_map_ref(*f);
                    }
                    mmap_batched_rollback(mem, plan.as_id, &promoted, &mapped_4k);
                    return SyscallReturn::err(SyscallError::NoMem);
                }
            }
        }
        let mapped = {
            let pt = mem.vm.table_mut(plan.as_id).expect("space exists");
            let r = pt.map_range(&mut mem.alloc, VAddr(va), &frames, flags);
            if r.is_ok() {
                pt.defer_shootdown(VAddr(va), npages as u64);
            }
            r
        };
        match mapped {
            Ok(stats) => {
                meter.charge(
                    stats.first_walks as u64 * costs.map_fill_first_page()
                        + stats.cached_fills as u64 * costs.map_fill_next_page(),
                );
                mem.vm
                    .trace_vm(VmOutcome::MapBatchHit, stats.cached_fills as u64);
                mem.vm.trace_vm(VmOutcome::ShootdownDeferred, npages as u64);
                mapped_4k.push((va, frames));
            }
            Err(e) => {
                // map_range already unmapped its own partial progress.
                for f in &frames {
                    mem.alloc.dec_map_ref(*f);
                }
                mmap_batched_rollback(mem, plan.as_id, &promoted, &mapped_4k);
                return SyscallReturn::err(e.into());
            }
        }
        va = seg_end;
    }
    // Epilogue: one batched shootdown covers every run this call queued,
    // before the mem domain is released.
    let flushed = {
        let pt = mem.vm.table_mut(plan.as_id).expect("space exists");
        pt.flush_shootdowns()
    };
    if flushed > 0 {
        meter.charge(costs.tlb_shootdown_batch);
    }
    mem.vm.trace_vm(VmOutcome::ShootdownFlushed, flushed);
    SyscallReturn::ok([plan.range.base.as_usize() as u64, plan.len as u64, 0, 0])
}

/// Stage 1 of a staged `munmap`: thread resolution under the pm domain.
/// No quota moves yet — `munmap` *releases* quota, which happens after
/// a successful stage 2.
pub(crate) fn munmap_stage_pm(
    pm: &mut ProcessManager,
    cpu: CpuId,
    range: VaRange4K,
    len: usize,
) -> Result<MemStagePlan, SyscallReturn> {
    let Some(t) = pm.sched.current(cpu) else {
        return Err(SyscallReturn::err(SyscallError::WrongState));
    };
    let (proc_ptr, cntr) = {
        let thread = pm.thrd(t);
        (thread.owning_proc, thread.owning_cntr)
    };
    let as_id = pm.proc(proc_ptr).addr_space;
    Ok(MemStagePlan {
        cntr,
        as_id,
        range,
        len,
        writable: false,
    })
}

/// Stage 2 of a staged `munmap`: unmapping under the mem domain. On
/// success the caller re-acquires pm and releases `plan.len` pages of
/// quota with [`uncharge_stage_pm`].
pub(crate) fn munmap_stage_mem(
    costs: &CostModel,
    meter: &mut CycleMeter,
    mem: &mut MemDomain,
    plan: &MemStagePlan,
) -> SyscallReturn {
    let Some(pt) = mem.vm.table(plan.as_id) else {
        return SyscallReturn::err(SyscallError::Fault);
    };
    // A sub-threshold unmap takes the per-page body too — unless the
    // range touches a transparently promoted superpage, which only the
    // batched body knows how to demote.
    let touches_promoted = plan.range.iter().any(|va| {
        let head = va.as_usize() & !(PAGE_SIZE_2M - 1);
        mem.vm.is_promoted(plan.as_id, head)
    });
    if !mem.vm.batch_enabled() || (plan.len < BATCH_MIN_PAGES && !touches_promoted) {
        // Original per-page path: every page must be mapped 4 KiB, then
        // each is unmapped with its own leaf write and TLB invalidation.
        for va in plan.range.iter() {
            if !pt.map_4k.contains_key(&va.as_usize()) {
                return SyscallReturn::err(SyscallError::Fault);
            }
        }
        for va in plan.range.iter() {
            meter.charge(costs.pt_level_write + costs.page_state_update + costs.tlb_invalidate);
            let pt = mem.vm.table_mut(plan.as_id).expect("space exists");
            let frame = pt.unmap_4k_page(va).expect("checked above");
            mem.alloc.dec_map_ref(frame);
        }
        return SyscallReturn::ok([plan.len as u64, 0, 0, 0]);
    }
    // Batched path. Classify every page before touching anything
    // (all-or-nothing): a page is either mapped 4 KiB, or covered by a
    // *transparently promoted* 2 MiB entry — which will be demoted so
    // the pages outside the requested range survive. Explicit
    // `MmapHuge2M` superpages still fault, preserving their
    // all-or-nothing contract.
    let frames_2m = PageSize::Size2M.frames() as u64;
    let mut demote_heads: Vec<usize> = Vec::new();
    for va in plan.range.iter() {
        let v = va.as_usize();
        if pt.map_4k.contains_key(&v) {
            continue;
        }
        let head = v & !(PAGE_SIZE_2M - 1);
        if mem.vm.is_promoted(plan.as_id, head) && pt.map_2m.contains_key(&head) {
            if demote_heads.last() != Some(&head) {
                demote_heads.push(head);
            }
        } else {
            return SyscallReturn::err(SyscallError::Fault);
        }
    }
    // Demote each promoted region the range touches: the single L2 leaf
    // becomes a fresh L1 table with 512 PTEs over the same frames with
    // the same permissions (a pure representation change — the
    // normalized abstract space is untouched), and the allocator's
    // 2 MiB block splits to match.
    for head in demote_heads {
        meter.charge(costs.pt_level_alloc + costs.pt_level_write + frames_2m * costs.pt_fill_write);
        let frame_head = {
            let pt = mem.vm.table_mut(plan.as_id).expect("space exists");
            let fh = pt
                .demote_2m(&mut mem.alloc, VAddr(head))
                .expect("prechecked promoted 2 MiB entry");
            pt.defer_shootdown(VAddr(head), frames_2m);
            fh
        };
        mem.alloc.split_mapped_2m(frame_head);
        mem.vm.clear_promoted(plan.as_id, head);
        mem.vm.trace_vm(VmOutcome::SuperpageDemotion, 1);
        mem.vm.trace_vm(VmOutcome::ShootdownDeferred, frames_2m);
    }
    // Walk-cached batched unmap of the (now uniformly 4 KiB) range.
    let (frames, stats) = {
        let pt = mem.vm.table_mut(plan.as_id).expect("space exists");
        let r = pt
            .unmap_range(plan.range.base, plan.len)
            .expect("prechecked range");
        pt.defer_shootdown(plan.range.base, plan.len as u64);
        r
    };
    meter.charge(
        stats.first_walks as u64
            * (3 * costs.pt_level_read + costs.pt_level_write + costs.page_state_update)
            + stats.cached_fills as u64 * costs.unmap_fill_page(),
    );
    mem.vm
        .trace_vm(VmOutcome::MapBatchHit, stats.cached_fills as u64);
    mem.vm
        .trace_vm(VmOutcome::ShootdownDeferred, plan.len as u64);
    for frame in frames {
        mem.alloc.dec_map_ref(frame);
    }
    // Epilogue: one batched shootdown, inside the mem critical section.
    let flushed = {
        let pt = mem.vm.table_mut(plan.as_id).expect("space exists");
        pt.flush_shootdowns()
    };
    if flushed > 0 {
        meter.charge(costs.tlb_shootdown_batch);
    }
    mem.vm.trace_vm(VmOutcome::ShootdownFlushed, flushed);
    SyscallReturn::ok([plan.len as u64, 0, 0, 0])
}

/// The pm-side epilogue of a staged call: releases `pages` of quota,
/// guarded against the container having died between the stages.
pub(crate) fn uncharge_stage_pm(pm: &mut ProcessManager, cntr: CtnrPtr, pages: usize) {
    if pm.cntr_perms.contains(cntr) {
        pm.uncharge(cntr, pages);
    }
}
