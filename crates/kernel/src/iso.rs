//! Isolation invariants: `memory_iso`, `endpoint_iso`, and the flat
//! construction of container-group domains (§4.3).
//!
//! The non-interference proof quantifies over the sets `C_X` (all
//! containers recursively created from X), `P_X` (their processes) and
//! `T_X` (their threads). Thanks to flat permission storage and the ghost
//! `subtree` field, each is a direct union — no recursive tree walk.

use atmo_pm::types::{CtnrPtr, ProcPtr, ThrdPtr};
use atmo_spec::Set;

use crate::abs::AbstractKernel;

/// The domain of one container group: `C_X`, `P_X`, `T_X`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DomainSets {
    /// The group's root container.
    pub root: CtnrPtr,
    /// All containers of the group (root + subtree).
    pub containers: Set<CtnrPtr>,
    /// All processes of those containers.
    pub processes: Set<ProcPtr>,
    /// All threads of those containers.
    pub threads: Set<ThrdPtr>,
}

/// Builds the domain sets of the container group rooted at `root`,
/// directly from the flat state (the `T_A_wf` construction of §4.3).
pub fn domain_sets(psi: &AbstractKernel, root: CtnrPtr) -> DomainSets {
    let mut containers = Set::from_slice(&[root]);
    if let Some(c) = psi.get_container(root) {
        containers = containers.union(c.subtree.view());
    }
    let mut processes = Set::empty();
    let mut threads = Set::empty();
    for c_ptr in containers.iter() {
        if let Some(c) = psi.get_container(*c_ptr) {
            processes = processes.union(c.owned_procs.view());
            threads = threads.union(c.owned_thrds.view());
        }
    }
    DomainSets {
        root,
        containers,
        processes,
        threads,
    }
}

/// The paper's bidirectional `T_A_wf` invariant: `threads` contains all
/// and only the threads of the group's containers.
pub fn t_x_wf(psi: &AbstractKernel, root: CtnrPtr, threads: &Set<ThrdPtr>) -> bool {
    let group = domain_sets(psi, root);
    // Direction 1: every thread owned by a group container is in the set.
    for (t_ptr, t) in psi.pm.threads.iter() {
        if group.containers.contains(&t.owning_cntr) && !threads.contains(t_ptr) {
            return false;
        }
    }
    // Direction 2: every thread in the set belongs to a group container.
    for t_ptr in threads.iter() {
        match psi.get_thread(*t_ptr) {
            Some(t) if group.containers.contains(&t.owning_cntr) => {}
            _ => return false,
        }
    }
    true
}

/// `memory_iso` (§4.3): no physical frame is mapped by both an address
/// space of `p_a` and an address space of `p_b`.
pub fn memory_iso(psi: &AbstractKernel, p_a: &Set<ProcPtr>, p_b: &Set<ProcPtr>) -> bool {
    let frames = |procs: &Set<ProcPtr>| -> Set<usize> {
        let mut s = Set::empty();
        for p in procs.iter() {
            for (_va, (e, _sz)) in psi.get_address_space(*p).iter() {
                s = s.insert(e.frame);
            }
        }
        s
    };
    frames(p_a).disjoint(&frames(p_b))
}

/// `endpoint_iso` (§4.3): no endpoint is reachable from a descriptor of
/// both a thread in `t_a` and a thread in `t_b`.
pub fn endpoint_iso(psi: &AbstractKernel, t_a: &Set<ThrdPtr>, t_b: &Set<ThrdPtr>) -> bool {
    let edpts = |threads: &Set<ThrdPtr>| -> Set<usize> {
        let mut s = Set::empty();
        for t in threads.iter() {
            for d in psi.get_thrd_edpt_descriptors(*t).into_iter().flatten() {
                s = s.insert(d);
            }
        }
        s
    };
    edpts(t_a).disjoint(&edpts(t_b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{Kernel, KernelConfig};
    use crate::syscall::SyscallArgs;

    /// Boots a kernel and creates two sibling containers, each with a
    /// process and a thread.
    fn two_domains() -> (Kernel, CtnrPtr, CtnrPtr) {
        let mut k = Kernel::boot(KernelConfig {
            mem_mib: 64,
            ncpus: 4,
            root_quota: 1024,
        });
        let a = k
            .syscall(
                0,
                SyscallArgs::NewContainer {
                    quota: 128,
                    cpus: vec![1],
                },
            )
            .val0() as usize;
        let b = k
            .syscall(
                0,
                SyscallArgs::NewContainer {
                    quota: 128,
                    cpus: vec![2],
                },
            )
            .val0() as usize;
        for (c, cpu) in [(a, 1), (b, 2)] {
            let p = k.syscall(0, SyscallArgs::NewProcess { cntr: c }).val0() as usize;
            let _ = k.syscall(0, SyscallArgs::NewThread { proc: p, cpu });
        }
        (k, a, b)
    }

    #[test]
    fn domain_sets_are_complete_and_disjoint() {
        let (k, a, b) = two_domains();
        let psi = k.view();
        let da = domain_sets(&psi, a);
        let db = domain_sets(&psi, b);
        assert_eq!(da.processes.len(), 1);
        assert_eq!(da.threads.len(), 1);
        assert!(da.containers.disjoint(&db.containers));
        assert!(da.threads.disjoint(&db.threads));
        assert!(t_x_wf(&psi, a, &da.threads));
        assert!(!t_x_wf(&psi, a, &db.threads), "wrong set rejected");
    }

    #[test]
    fn fresh_domains_satisfy_both_isolation_invariants() {
        let (k, a, b) = two_domains();
        let psi = k.view();
        let da = domain_sets(&psi, a);
        let db = domain_sets(&psi, b);
        assert!(memory_iso(&psi, &da.processes, &db.processes));
        assert!(endpoint_iso(&psi, &da.threads, &db.threads));
    }

    #[test]
    fn mmap_in_both_domains_preserves_memory_iso() {
        let (mut k, a, b) = two_domains();
        // Run each domain's thread and have it map pages.
        for cpu in [1, 2] {
            // Dispatch the ready thread on that CPU.
            k.pm.timer_tick(cpu);
            let ret = k.syscall(
                cpu,
                SyscallArgs::Mmap {
                    va_base: 0x40_0000,
                    len: 8,
                    writable: true,
                },
            );
            assert!(ret.is_ok(), "{ret:?}");
        }
        let psi = k.view();
        let da = domain_sets(&psi, a);
        let db = domain_sets(&psi, b);
        assert!(memory_iso(&psi, &da.processes, &db.processes));
    }

    #[test]
    fn t_x_wf_is_bidirectional() {
        let (k, a, _b) = two_domains();
        let psi = k.view();
        let da = domain_sets(&psi, a);
        // Remove one thread: direction 1 fails.
        if let Some(t) = da.threads.choose() {
            assert!(!t_x_wf(&psi, a, &da.threads.remove(t)));
        }
        // Add a foreign pointer: direction 2 fails.
        assert!(!t_x_wf(&psi, a, &da.threads.insert(0xdead)));
    }
}
