//! The virtual-memory subsystem: all page tables plus the IOMMU.
//!
//! "The virtual memory management subsystem owns the memory of all page
//! tables and IOMMU page tables. The subsystem maintains a set of
//! invariants to ensure that each page table and IOMMU table's
//! `page_closure()` are pairwise disjoint, and their union is equal to the
//! `page_closure()` of the virtual memory management subsystem" (§4.2).

use std::collections::{BTreeMap, BTreeSet};

use atmo_mem::{closure_partition_wf, AllocError, PageAllocator, PageClosure, PagePtr};
use atmo_ptable::{refinement_wf, Iommu, PageTable};
use atmo_spec::harness::{check, Invariant, VerifResult};
use atmo_spec::{Map, Set};
use atmo_trace::{AuditDelta, TraceHandle, TraceShare, VmOutcome};

/// Address-space identifier (one per process; see
/// [`atmo_pm::Process::addr_space`]).
pub type AsId = usize;

/// The VM subsystem.
#[derive(Debug)]
pub struct VmSubsystem {
    tables: BTreeMap<AsId, PageTable>,
    /// The IOMMU and its per-device translation domains.
    pub iommu: Iommu,
    /// Map/unmap event sink, propagated to every page table (existing and
    /// future).
    trace: TraceShare,
    /// Batched datapath toggle: when set (the default), `Mmap`/`Munmap`
    /// use the walk-cached range operations, promote eligible 512-page
    /// runs to 2 MiB entries, and defer TLB shootdowns to the syscall
    /// epilogue. When cleared they take the original per-page path —
    /// both produce the same abstract address space.
    batch: bool,
    /// Base addresses of transparently promoted 2 MiB entries, per
    /// space. Only these are demoted back to 4 KiB by a partial
    /// `Munmap` or a DMA pin; explicitly requested superpages
    /// (`MmapHuge2M`) keep their all-or-nothing semantics.
    promoted: BTreeMap<AsId, BTreeSet<usize>>,
}

impl VmSubsystem {
    /// An empty subsystem.
    pub fn new() -> Self {
        VmSubsystem {
            tables: BTreeMap::new(),
            iommu: Iommu::new(),
            trace: TraceShare::detached(),
            batch: true,
            promoted: BTreeMap::new(),
        }
    }

    /// `true` when the batched VM datapath is enabled.
    pub fn batch_enabled(&self) -> bool {
        self.batch
    }

    /// Enables or disables the batched datapath (benchmarks measure the
    /// per-page baseline with it off).
    pub fn set_batch(&mut self, on: bool) {
        self.batch = on;
    }

    /// Records that the 2 MiB entry at `va` in `as_id` was transparently
    /// promoted from a 512-page run.
    pub fn note_promoted(&mut self, as_id: AsId, va: usize) {
        self.promoted.entry(as_id).or_default().insert(va);
    }

    /// Forgets a promotion (after demotion or unmap of the entry).
    pub fn clear_promoted(&mut self, as_id: AsId, va: usize) {
        if let Some(set) = self.promoted.get_mut(&as_id) {
            set.remove(&va);
            if set.is_empty() {
                self.promoted.remove(&as_id);
            }
        }
    }

    /// `true` when the 2 MiB entry at `va` in `as_id` came from
    /// transparent promotion.
    pub fn is_promoted(&self, as_id: AsId, va: usize) -> bool {
        self.promoted
            .get(&as_id)
            .is_some_and(|set| set.contains(&va))
    }

    /// Counts `n` batched-datapath observations into the trace sink
    /// (no-op when detached).
    pub fn trace_vm(&self, outcome: VmOutcome, n: u64) {
        self.trace.vm(outcome, n);
    }

    /// Routes map/unmap events from every page table — current and
    /// subsequently created — into `sink`.
    pub fn attach_trace(&mut self, sink: TraceHandle) {
        for pt in self.tables.values_mut() {
            pt.attach_trace(sink.clone());
        }
        self.iommu.attach_trace(sink.clone());
        self.trace.attach(sink);
    }

    /// Creates the page table for a new address space.
    ///
    /// # Panics
    ///
    /// Panics when `as_id` already exists (process creation assigns fresh
    /// identifiers).
    pub fn create_space(
        &mut self,
        alloc: &mut PageAllocator,
        as_id: AsId,
    ) -> Result<(), AllocError> {
        assert!(!self.tables.contains_key(&as_id), "duplicate address space");
        let mut pt = PageTable::new(alloc)?;
        if let Some(sink) = self.trace.handle() {
            pt.attach_trace(sink.clone());
        }
        // The root frame was allocated before the table could observe the
        // sink; account for it here.
        self.trace.audit(AuditDelta::VmAcquire(pt.cr3));
        self.trace.audit(AuditDelta::SpaceCreate(as_id));
        self.tables.insert(as_id, pt);
        Ok(())
    }

    /// Tears down an address space: unmaps every frame (dropping mapping
    /// references), then releases the table frames.
    ///
    /// Returns the number of mapping entries that were removed (for quota
    /// release by the caller).
    pub fn destroy_space(&mut self, alloc: &mut PageAllocator, as_id: AsId) -> usize {
        let mut pt = self.tables.remove(&as_id).expect("unknown address space");
        self.promoted.remove(&as_id);
        let mut removed = 0;
        for (va, (_e, size)) in pt.address_space().iter() {
            let frame = match size {
                atmo_mem::PageSize::Size4K => pt.unmap_4k_page(atmo_hw::VAddr(*va)).unwrap(),
                atmo_mem::PageSize::Size2M => pt.unmap_2m_page(atmo_hw::VAddr(*va)).unwrap(),
                atmo_mem::PageSize::Size1G => pt.unmap_1g_page(atmo_hw::VAddr(*va)).unwrap(),
            };
            alloc.dec_map_ref(frame);
            removed += 1;
        }
        pt.release(alloc);
        self.trace.audit(AuditDelta::SpaceDestroy(as_id));
        removed
    }

    /// Immutable access to an address space's page table.
    pub fn table(&self, as_id: AsId) -> Option<&PageTable> {
        self.tables.get(&as_id)
    }

    /// Mutable access to an address space's page table.
    pub fn table_mut(&mut self, as_id: AsId) -> Option<&mut PageTable> {
        self.tables.get_mut(&as_id)
    }

    /// The identifiers of all live address spaces.
    pub fn spaces(&self) -> Set<AsId> {
        self.tables.keys().copied().collect()
    }

    /// The abstract view: per-space abstract mappings (the
    /// `get_address_space()` of §4.3).
    pub fn view(&self) -> Map<AsId, Map<usize, (atmo_ptable::MapEntry, atmo_mem::PageSize)>> {
        self.tables
            .iter()
            .map(|(id, pt)| (*id, pt.address_space()))
            .collect()
    }
}

impl Default for VmSubsystem {
    fn default() -> Self {
        VmSubsystem::new()
    }
}

impl PageClosure for VmSubsystem {
    fn page_closure(&self) -> Set<PagePtr> {
        let mut s = self.iommu.page_closure();
        for pt in self.tables.values() {
            s = s.union(&pt.page_closure());
        }
        s
    }
}

impl Invariant for VmSubsystem {
    /// Per-table structure + refinement, IOMMU well-formedness, and the
    /// §4.2 closure partition at this level of the hierarchy.
    fn wf(&self) -> VerifResult {
        let mut closures = Vec::new();
        for (id, pt) in &self.tables {
            pt.wf()?;
            refinement_wf(pt)?;
            check(
                !pt.address_space().is_empty() || pt.table_frame_count() >= 1,
                "vm",
                format!("space {id} lost its root table"),
            )?;
            // Deferred-shootdown quiescence: the queue is drained by the
            // issuing syscall's epilogue before the mem domain is
            // released, so no audit point may observe a pending entry.
            check(
                pt.pending_shootdowns() == 0,
                "vm",
                format!(
                    "space {id} released with {} pages of un-broadcast shootdowns",
                    pt.pending_shootdowns()
                ),
            )?;
            closures.push(pt.page_closure());
        }
        // Every recorded promotion is a live 2 MiB entry of its space.
        for (id, vas) in &self.promoted {
            let pt = self.tables.get(id);
            for va in vas {
                check(
                    pt.is_some_and(|pt| pt.map_2m.contains_key(va)),
                    "vm",
                    format!("promoted entry {va:#x} of space {id} has no 2 MiB mapping"),
                )?;
            }
        }
        self.iommu.wf()?;
        closures.push(self.iommu.page_closure());
        closure_partition_wf("vm", &self.page_closure(), &closures)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atmo_hw::boot::BootInfo;
    use atmo_hw::paging::EntryFlags;
    use atmo_hw::VAddr;
    use atmo_mem::PageSize;

    fn setup() -> (PageAllocator, VmSubsystem) {
        (
            PageAllocator::new(&BootInfo::simulated(16, 1, "")),
            VmSubsystem::new(),
        )
    }

    #[test]
    fn create_and_destroy_space_is_leak_free() {
        let (mut a, mut vm) = setup();
        let allocated0 = a.allocated_pages().len();
        vm.create_space(&mut a, 1).unwrap();
        assert!(vm.is_wf());

        let frame = a.alloc_mapped(PageSize::Size4K).unwrap();
        vm.table_mut(1)
            .unwrap()
            .map_4k_page(&mut a, VAddr(0x40_0000), frame, EntryFlags::user_rw())
            .unwrap();
        assert!(vm.is_wf());

        let removed = vm.destroy_space(&mut a, 1);
        assert_eq!(removed, 1);
        assert_eq!(a.allocated_pages().len(), allocated0);
        assert!(a.mapped_pages().is_empty());
        assert!(vm.spaces().is_empty());
    }

    #[test]
    fn two_spaces_have_disjoint_closures() {
        let (mut a, mut vm) = setup();
        vm.create_space(&mut a, 1).unwrap();
        vm.create_space(&mut a, 2).unwrap();
        let f1 = a.alloc_mapped(PageSize::Size4K).unwrap();
        let f2 = a.alloc_mapped(PageSize::Size4K).unwrap();
        vm.table_mut(1)
            .unwrap()
            .map_4k_page(&mut a, VAddr(0x40_0000), f1, EntryFlags::user_rw())
            .unwrap();
        vm.table_mut(2)
            .unwrap()
            .map_4k_page(&mut a, VAddr(0x40_0000), f2, EntryFlags::user_rw())
            .unwrap();
        assert!(vm.wf().is_ok(), "{:?}", vm.wf());
        assert_eq!(vm.page_closure(), a.allocated_pages());
    }

    #[test]
    #[should_panic(expected = "duplicate address space")]
    fn duplicate_space_rejected() {
        let (mut a, mut vm) = setup();
        vm.create_space(&mut a, 1).unwrap();
        vm.create_space(&mut a, 1).unwrap();
    }

    #[test]
    fn view_projects_abstract_mappings() {
        let (mut a, mut vm) = setup();
        vm.create_space(&mut a, 7).unwrap();
        let f = a.alloc_mapped(PageSize::Size4K).unwrap();
        vm.table_mut(7)
            .unwrap()
            .map_4k_page(&mut a, VAddr(0x1000), f, EntryFlags::user_ro())
            .unwrap();
        let v = vm.view();
        let space = v.index(&7).unwrap();
        let (entry, size) = space.index(&0x1000).unwrap();
        assert_eq!(entry.frame, f);
        assert_eq!(*size, PageSize::Size4K);
    }
}
