//! Interrupt dispatch (§3: "interrupt dispatch"; §5 item 8: the trusted
//! APIC/IDT initialization and entry trampolines).
//!
//! Devices raise vectors on the interrupt controller; the kernel's trap
//! handler acknowledges the highest-priority pending vector under the big
//! lock and dispatches: the timer vector drives round-robin preemption,
//! device vectors wake the driver thread registered for them (the
//! user-space driver model of §6.5 — drivers normally poll, but the
//! interrupt path exists for the blocking configuration).

use atmo_pm::types::{CpuId, ThrdPtr};

use crate::kernel::Kernel;

/// The timer interrupt vector (local APIC timer).
pub const TIMER_VECTOR: u8 = 32;

/// First vector available to devices.
pub const DEVICE_VECTOR_BASE: u8 = 48;

impl Kernel {
    /// Registers `thread` to be woken when `vector` fires.
    ///
    /// Returns `false` when the vector is reserved (below
    /// [`DEVICE_VECTOR_BASE`]) or already claimed.
    pub fn register_irq_handler(&mut self, vector: u8, thread: ThrdPtr) -> bool {
        if vector < DEVICE_VECTOR_BASE || !self.pm.thrd_perms.contains(thread) {
            return false;
        }
        if self.irq_handlers.contains_key(&vector) {
            return false;
        }
        self.irq_handlers.insert(vector, thread);
        true
    }

    /// Removes the handler registration for `vector`.
    pub fn unregister_irq_handler(&mut self, vector: u8) -> Option<ThrdPtr> {
        self.irq_handlers.remove(&vector)
    }

    /// A device raises `vector` (DMA completion, link event, ...).
    pub fn raise_irq(&mut self, vector: u8) {
        self.machine.intc.raise(vector);
    }

    /// The interrupt trap handler for `cpu`: acknowledges and dispatches
    /// every pending unmasked vector, charging trampoline costs. Returns
    /// the number of vectors handled.
    pub fn handle_interrupts(&mut self, cpu: CpuId) -> usize {
        let costs = self.machine.costs;
        let mut handled = 0;
        while let Some(vector) = self.machine.intc.ack() {
            self.charge(cpu, costs.syscall_entry + costs.syscall_exit);
            handled += 1;
            if vector == TIMER_VECTOR {
                // Preemption tick.
                self.charge(cpu, costs.thread_switch);
                self.pm.timer_tick(cpu);
            } else if let Some(&t) = self.irq_handlers.get(&vector) {
                // Wake the registered driver thread if it is blocked
                // receiving (the interrupt models a doorbell on its
                // notification endpoint); runnable threads just see the
                // interrupt as a no-op.
                if self.pm.thrd_perms.contains(t) {
                    self.charge(cpu, costs.endpoint_queue_op);
                    self.pm.wake_if_blocked(&mut self.mem.alloc, t);
                }
            }
        }
        handled
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelConfig;
    use crate::syscall::SyscallArgs;
    use atmo_pm::ThreadState;
    use atmo_spec::harness::Invariant;

    #[test]
    fn timer_interrupt_preempts_round_robin() {
        let mut k = Kernel::boot(KernelConfig::default());
        let init_proc = k.init_proc;
        let t2 = k
            .syscall(
                0,
                SyscallArgs::NewThread {
                    proc: init_proc,
                    cpu: 0,
                },
            )
            .val0() as usize;

        k.raise_irq(TIMER_VECTOR);
        assert_eq!(k.handle_interrupts(0), 1);
        assert_eq!(k.pm.sched.current(0), Some(t2));
        assert!(k.wf().is_ok(), "{:?}", k.wf());
    }

    #[test]
    fn device_interrupt_wakes_registered_driver() {
        let mut k = Kernel::boot(KernelConfig::default());
        let init_proc = k.init_proc;
        let t_drv = k
            .syscall(
                0,
                SyscallArgs::NewThread {
                    proc: init_proc,
                    cpu: 0,
                },
            )
            .val0() as usize;
        let e = k.syscall(0, SyscallArgs::NewEndpoint { slot: 0 }).val0() as usize;
        k.pm.install_descriptor(t_drv, 0, e).unwrap();
        assert!(k.register_irq_handler(DEVICE_VECTOR_BASE, t_drv));

        // The driver blocks in recv; the device interrupt wakes it.
        k.pm.timer_tick(0);
        assert_eq!(k.pm.sched.current(0), Some(t_drv));
        let _ = k.syscall(0, SyscallArgs::Recv { slot: 0 });
        assert!(matches!(
            k.pm.thrd(t_drv).state,
            ThreadState::BlockedRecv(_)
        ));

        k.raise_irq(DEVICE_VECTOR_BASE);
        assert_eq!(k.handle_interrupts(0), 1);
        assert!(matches!(
            k.pm.thrd(t_drv).state,
            ThreadState::Ready | ThreadState::Running(_)
        ));
        assert!(k.wf().is_ok(), "{:?}", k.wf());
    }

    #[test]
    fn unregistered_vector_is_ignored() {
        let mut k = Kernel::boot(KernelConfig::default());
        k.raise_irq(DEVICE_VECTOR_BASE + 3);
        assert_eq!(k.handle_interrupts(0), 1, "acked but no handler");
        assert!(k.wf().is_ok());
    }

    #[test]
    fn handler_registration_rules() {
        let mut k = Kernel::boot(KernelConfig::default());
        let t = k.init_thread;
        assert!(!k.register_irq_handler(TIMER_VECTOR, t), "reserved vector");
        assert!(
            !k.register_irq_handler(DEVICE_VECTOR_BASE, 0xdead),
            "dead thread"
        );
        assert!(k.register_irq_handler(DEVICE_VECTOR_BASE, t));
        assert!(
            !k.register_irq_handler(DEVICE_VECTOR_BASE, t),
            "double claim"
        );
        assert_eq!(k.unregister_irq_handler(DEVICE_VECTOR_BASE), Some(t));
    }
}
