//! The kernel state Ψ, boot, the lock domains it splits into, and the
//! big-lock SMP wrapper kept as the sharded kernel's baseline.
//!
//! PR 2 shards the original big lock: the monolithic [`Kernel`] is now
//! assembled from two *lock domains* plus the already-concurrent trace
//! handle:
//!
//! * the **pm domain** — the process manager (scheduler, containers,
//!   processes, threads, endpoints) plus IRQ-handler registrations;
//! * the **mem domain** ([`MemDomain`]) — the page allocator, the VM
//!   subsystem (page tables + IOMMU), and the grant/IOMMU bookkeeping
//!   that lives next to them;
//! * the **trace domain** — [`TraceHandle`], internally sharded per CPU
//!   and safe to use from any context.
//!
//! A unified `Kernel` value still exists (boot, single-threaded tests,
//! the refinement harness, and the stop-the-world sections of
//! [`SmpKernel`](crate::smp::SmpKernel) all use it); the sharded wrapper
//! in [`crate::smp`] splits one apart, runs syscalls under per-domain
//! locks in the documented `pm → mem → trace` order, and reassembles it
//! for audits. [`BigLockKernel`] is the original one-global-lock wrapper
//! (§3), retained unchanged in behavior as the `repro-smp-scaling`
//! baseline.

use std::collections::BTreeMap;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use atmo_hw::machine::Machine;
use atmo_mem::{PageAllocator, PagePtr};
use atmo_pm::types::{CpuId, CtnrPtr, ProcPtr, ThrdPtr};
use atmo_pm::ProcessManager;
use atmo_spec::{into_inner_recovering, lock_recovering};
use atmo_trace::{Snapshot, TraceHandle, TraceSink, DEFAULT_RING_CAPACITY};

use crate::abs::AbstractKernel;
use crate::syscall::{SyscallArgs, SyscallReturn};
use crate::vm::VmSubsystem;

/// Boot-time configuration of the simulated machine and kernel.
#[derive(Clone, Copy, Debug)]
pub struct KernelConfig {
    /// Usable RAM in MiB.
    pub mem_mib: usize,
    /// CPU cores.
    pub ncpus: usize,
    /// Page quota granted to the root container.
    pub root_quota: usize,
}

impl Default for KernelConfig {
    fn default() -> Self {
        KernelConfig {
            mem_mib: 64,
            ncpus: 4,
            root_quota: 2048,
        }
    }
}

/// The memory lock domain: everything guarded by the mem lock in the
/// sharded kernel — the page allocator, the VM subsystem, and the
/// grant/IOMMU tables whose entries reference frames.
#[derive(Debug)]
pub struct MemDomain {
    /// The page allocator (§4.2).
    pub alloc: PageAllocator,
    /// The virtual-memory subsystem (§4.2).
    pub vm: VmSubsystem,
    /// Page grants delivered to a thread but not yet mapped
    /// ([`crate::syscall`]'s `MapGranted`/`DropGrant` consume them).
    pub(crate) pending_grants: BTreeMap<ThrdPtr, PagePtr>,
    /// IOMMU protection-domain ownership: domain → creating container.
    pub(crate) iommu_owner: BTreeMap<u32, CtnrPtr>,
    /// Containers granted access to a domain via IPC (`iommu_grant`).
    pub(crate) iommu_access: BTreeMap<u32, Vec<CtnrPtr>>,
    /// The block submission/completion queue pairs (§6.5.2's datapath as
    /// a syscall surface); their entries reference frames only through
    /// IOMMU translations, so they live next to the tables that validate
    /// them.
    pub blk: crate::blk::BlkState,
}

impl MemDomain {
    /// `true` when `cntr` may operate on IOMMU `domain`: it owns it or
    /// was granted access through an endpoint (§3: IPC passes "IOMMU
    /// identifiers").
    pub fn iommu_authorized(&self, domain: u32, cntr: CtnrPtr) -> bool {
        self.iommu_owner.get(&domain) == Some(&cntr)
            || self
                .iommu_access
                .get(&domain)
                .is_some_and(|v| v.contains(&cntr))
    }
}

/// The Atmosphere kernel: machine + pm domain + mem domain + trace.
#[derive(Debug)]
pub struct Kernel {
    /// The simulated machine (cores, meters, cost model, interrupts).
    pub machine: Machine,
    /// The process manager (§4.1) — the pm lock domain.
    pub pm: ProcessManager,
    /// The memory lock domain (allocator, VM, grant/IOMMU tables).
    pub mem: MemDomain,
    /// The boot container.
    pub root_container: CtnrPtr,
    /// The init process.
    pub init_proc: ProcPtr,
    /// The init thread (running on CPU 0 after boot).
    pub init_thread: ThrdPtr,
    /// Device interrupt vector → driver thread to wake (pm domain).
    pub(crate) irq_handlers: BTreeMap<u8, ThrdPtr>,
    /// The tracing subsystem: per-CPU event rings, syscall latency
    /// histograms and subsystem counters (shared with the allocator, pm
    /// and vm, which emit through clones of this handle).
    pub trace: TraceHandle,
    /// The snapshot published by the most recent
    /// [`SyscallArgs::TraceSnapshot`](crate::SyscallArgs::TraceSnapshot)
    /// call (trace state is diagnostic, not part of Ψ).
    pub(crate) last_trace_snapshot: Option<Snapshot>,
}

impl Kernel {
    /// Boots the kernel on a fresh simulated c220g5-class machine.
    ///
    /// # Panics
    ///
    /// Panics when the configuration is unbootable (no CPU, no memory) —
    /// boot failures are fail-stop.
    pub fn boot(cfg: KernelConfig) -> Self {
        let machine = Machine::boot_c220g5(cfg.mem_mib, cfg.ncpus, "");
        let mut alloc = PageAllocator::new(&machine.boot);
        let (pm, root, init_proc, init_thread) =
            ProcessManager::boot(&mut alloc, cfg.ncpus, cfg.root_quota)
                .expect("process-manager boot failed");
        let mut vm = VmSubsystem::new();
        vm.create_space(&mut alloc, pm.proc(init_proc).addr_space)
            .expect("init address space allocation failed");
        // Tracing starts at the end of boot: the sink is created after
        // the boot-time allocations so post-boot counts reconcile with
        // issued syscalls, then shared with every emitting subsystem.
        let trace = TraceSink::new(cfg.ncpus, DEFAULT_RING_CAPACITY);
        let freq_hz = machine.profile.freq_hz;
        alloc.attach_trace(trace.clone());
        let mut pm = pm;
        pm.attach_trace(trace.clone());
        vm.attach_trace(trace.clone());
        Kernel {
            machine,
            pm,
            mem: MemDomain {
                alloc,
                vm,
                pending_grants: BTreeMap::new(),
                iommu_owner: BTreeMap::new(),
                iommu_access: BTreeMap::new(),
                blk: crate::blk::BlkState::new(freq_hz),
            },
            root_container: root,
            init_proc,
            init_thread,
            irq_handlers: BTreeMap::new(),
            trace,
            last_trace_snapshot: None,
        }
    }

    /// `true` when `cntr` may operate on IOMMU `domain`.
    pub fn iommu_authorized(&self, domain: u32, cntr: CtnrPtr) -> bool {
        self.mem.iommu_authorized(domain, cntr)
    }

    /// Charges `cost` cycles to `cpu`'s meter.
    pub fn charge(&mut self, cpu: usize, cost: u64) {
        self.machine.meter(cpu).charge(cost);
    }

    /// Cycle count of `cpu`'s meter.
    pub fn cycles(&self, cpu: usize) -> u64 {
        self.machine.cores[cpu].meter.now()
    }

    /// Builds a coherent merged trace snapshot (rings, histograms,
    /// counters across all CPUs).
    pub fn trace_snapshot(&self) -> Snapshot {
        self.trace.snapshot()
    }

    /// Takes the snapshot published by the most recent
    /// `TraceSnapshot` syscall, if any.
    pub fn take_trace_snapshot(&mut self) -> Option<Snapshot> {
        self.last_trace_snapshot.take()
    }

    /// Projects the abstract kernel state Ψ.
    pub fn view(&self) -> AbstractKernel {
        AbstractKernel {
            pm: self.pm.view(),
            spaces: self.mem.vm.view(),
            free_4k: self.mem.alloc.free_pages_4k(),
            allocated: self.mem.alloc.allocated_pages(),
            mapped: self.mem.alloc.mapped_pages(),
        }
    }
}

/// The big-lock multiprocessor kernel (§3): every system call and
/// interrupt acquires one global lock, so kernel code runs strictly
/// serialized even when issued from many simulated CPUs concurrently.
///
/// Kept as the baseline the sharded [`SmpKernel`](crate::smp::SmpKernel)
/// is measured against: [`syscall`](BigLockKernel::syscall) models the
/// serialization in *modeled cycles* too, so the `repro-smp-scaling`
/// benchmark can compare modeled aggregate throughput on any host.
pub struct BigLockKernel {
    inner: Mutex<Kernel>,
    /// Modeled cycle count at which the big lock was last released; the
    /// next [`syscall`](Self::syscall) cannot start before it.
    lock_time: AtomicU64,
}

impl BigLockKernel {
    /// Wraps a booted kernel behind the big lock.
    pub fn new(kernel: Kernel) -> Self {
        BigLockKernel {
            inner: Mutex::new(kernel),
            lock_time: AtomicU64::new(0),
        }
    }

    /// Executes `f` under the big lock, as a trap handler on `cpu` would.
    pub fn with_kernel<R>(&self, f: impl FnOnce(&mut Kernel) -> R) -> R {
        // A panic under the big lock is a kernel bug; later entries
        // continue against the poisoned-but-consistent state, matching
        // the fail-stop reading of the paper's verified kernel.
        let mut guard = lock_recovering(&self.inner);
        f(&mut guard)
    }

    /// A system call through the big lock, with the serialization made
    /// visible to the modeled clock: `cpu`'s meter is advanced to the
    /// lock's last modeled release time before the handler runs, exactly
    /// as a core spinning on the global lock would burn cycles until the
    /// holder exits.
    pub fn syscall(&self, cpu: CpuId, args: SyscallArgs) -> SyscallReturn {
        let mut guard = lock_recovering(&self.inner);
        let k = &mut *guard;
        k.machine
            .meter(cpu)
            .sync_to(self.lock_time.load(Ordering::Acquire));
        let ret = k.syscall(cpu, args);
        self.lock_time.fetch_max(k.cycles(cpu), Ordering::AcqRel);
        ret
    }

    /// Aggregates the per-CPU trace rings into one coherent merged
    /// snapshot, taken under the big lock so no event is lost or
    /// double-counted while merging.
    pub fn trace_snapshot(&self) -> Snapshot {
        self.with_kernel(|k| k.trace_snapshot())
    }

    /// Consumes the wrapper, returning the kernel.
    pub fn into_inner(self) -> Kernel {
        into_inner_recovering(self.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atmo_spec::harness::Invariant;

    #[test]
    fn boot_produces_running_init_thread() {
        let k = Kernel::boot(KernelConfig::default());
        assert_eq!(k.pm.sched.current(0), Some(k.init_thread));
        assert!(k.pm.wf().is_ok());
        assert!(k.mem.vm.wf().is_ok());
        assert_eq!(k.mem.vm.spaces().len(), 1);
    }

    #[test]
    fn view_is_reproducible() {
        let k = Kernel::boot(KernelConfig::default());
        assert_eq!(k.view(), k.view());
    }

    #[test]
    fn two_boots_are_deterministic() {
        // Determinism underpins the output-consistency proof (§4.3).
        let a = Kernel::boot(KernelConfig::default());
        let b = Kernel::boot(KernelConfig::default());
        assert_eq!(a.view(), b.view());
    }

    #[test]
    fn single_page_calls_skip_the_batch_machinery() {
        // Below BATCH_MIN_PAGES the per-page body runs even with
        // batching on: the cycle charge matches the batch-off kernel
        // exactly (the Table 3 anchor relies on this) and no batch
        // telemetry is emitted. From the threshold on, the batched body
        // kicks in and is strictly cheaper.
        let run = |batch: bool, len: usize| {
            let mut k = Kernel::boot(KernelConfig::default());
            k.mem.vm.set_batch(batch);
            let warm = k.syscall(
                0,
                SyscallArgs::Mmap {
                    va_base: 0x40_0000,
                    len: 1,
                    writable: true,
                },
            );
            assert!(warm.is_ok());
            let start = k.cycles(0);
            let r = k.syscall(
                0,
                SyscallArgs::Mmap {
                    va_base: 0x50_0000,
                    len,
                    writable: true,
                },
            );
            assert!(r.is_ok());
            let mid = k.cycles(0);
            let r = k.syscall(
                0,
                SyscallArgs::Munmap {
                    va_base: 0x50_0000,
                    len,
                },
            );
            assert!(r.is_ok());
            let vm = k.trace_snapshot().counters.vm;
            (mid - start, k.cycles(0) - mid, vm)
        };
        let (map_off, unmap_off, _) = run(false, 1);
        let (map_on, unmap_on, vm) = run(true, 1);
        assert_eq!(map_on, map_off, "1-page mmap must take the per-page body");
        assert_eq!(unmap_on, unmap_off, "1-page munmap too");
        assert_eq!(vm.map_batch_hits, 0);
        assert_eq!(vm.tlb_shootdowns_deferred, 0);

        let (map_off2, unmap_off2, _) = run(false, crate::syscall::BATCH_MIN_PAGES);
        let (map_on2, unmap_on2, vm2) = run(true, crate::syscall::BATCH_MIN_PAGES);
        assert!(map_on2 < map_off2, "{map_on2} vs {map_off2}");
        assert!(unmap_on2 < unmap_off2, "{unmap_on2} vs {unmap_off2}");
        assert!(vm2.map_batch_hits > 0);
        assert!(vm2.tlb_shootdowns_flushed == vm2.tlb_shootdowns_deferred);
    }

    #[test]
    fn big_lock_serializes_access() {
        use std::sync::Arc;
        let smp = Arc::new(BigLockKernel::new(Kernel::boot(KernelConfig::default())));
        let mut handles = Vec::new();
        for cpu in 0..4 {
            let smp = Arc::clone(&smp);
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    smp.with_kernel(|k| k.charge(cpu, 1));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let k = Arc::try_unwrap(smp).ok().unwrap().into_inner();
        for cpu in 0..4 {
            assert_eq!(k.cycles(cpu), 100);
        }
    }

    #[test]
    fn big_lock_syscalls_serialize_in_modeled_time() {
        let smp = BigLockKernel::new(Kernel::boot(KernelConfig::default()));
        let a = smp.syscall(0, SyscallArgs::Yield);
        assert!(a.is_ok());
        let before = smp.with_kernel(|k| k.cycles(1));
        assert_eq!(before, 0);
        // CPU 1 has no current thread after boot; the call errors but
        // still pays the modeled lock serialization + entry cost.
        let _ = smp.syscall(1, SyscallArgs::Yield);
        let (c0, c1) = smp.with_kernel(|k| (k.cycles(0), k.cycles(1)));
        assert!(
            c1 > c0,
            "CPU 1's syscall must start after CPU 0's modeled release ({c1} vs {c0})"
        );
    }
}
