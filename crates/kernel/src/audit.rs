//! The incremental well-formedness auditor: O(touched) ledger folds.
//!
//! The stop-the-world `total_wf` audit
//! ([`SmpKernel::audit_total_wf`](crate::smp::SmpKernel::audit_total_wf))
//! re-establishes the §4.2 cross-domain equations by taking every lock,
//! draining every per-CPU page cache, and rebuilding the page-closure
//! sets from scratch — O(kernel). This module is the incremental
//! alternative: every mutation emits an
//! [`AuditDelta`] into its CPU's trace-shard ledger, and
//! [`AuditState`] maintains each audited set as a commutative
//! [`SetFold`]/[`RefFold`] so re-checking the equations after a batch of
//! syscalls costs O(touched ledger entries) — no domain locks, no cache
//! drain, no stop-the-world.
//!
//! The audited equations are the incremental images of
//! [`cross_domain_wf`](crate::refine::cross_domain_wf):
//!
//! * **closure-partition** — `pm ⊎ vm ⊎ cached == allocated`: the
//!   process manager's closure, the VM subsystem's closure, and the
//!   per-CPU cache-resident frames partition the allocator's
//!   `Allocated` set. (The flat audit drains caches first, so its
//!   version has no `cached` term; the incremental one audits *through*
//!   the caches.)
//! * **space-bijection** — `spaces == proc_spaces`: live address spaces
//!   are exactly the spaces live processes claim.
//! * **leak-freedom** — `support(refs) == mapped`: the frames with at
//!   least one live reference *site* (page-table leaf, pending grant,
//!   IPC-buffer grant, IOMMU leaf) are exactly the allocator's mapped
//!   heads.
//! * **handle-ledger** — folded net/blk pool-handle deltas equal the
//!   sink's in-flight gauges (and never go negative).
//! * **budget-conservation** — scheduler CPU budget is a linear
//!   resource: `granted == consumed + refunded + remaining` and
//!   `remaining >= 0`, folded from the grant/charge/refund deltas the
//!   multi-tenant scheduler emits and cross-checked against the
//!   scheduler's lifetime totals (live plus retired accounts).
//!
//! Soundness: folds compare in O(1) but are fingerprints, so equality
//! is probabilistic (see [`atmo_spec::fold`]). The epoch-boundary flat
//! audit therefore [`cross_check`](AuditState::cross_check)s the
//! incremental folds against a fresh full scan
//! ([`AuditState::from_kernel`]) bit-for-bit, bounding how long a
//! fingerprint collision could survive.

use atmo_mem::PageClosure;
use atmo_spec::fold::{RefFold, SetFold};
use atmo_spec::harness::{check_eqn, VerifResult};
use atmo_trace::AuditDelta;

use crate::kernel::Kernel;

/// The folded image of every cross-domain audited set.
///
/// Maintained two ways: incrementally ([`apply`](AuditState::apply) per
/// ledger delta) and by full scan ([`from_kernel`](AuditState::from_kernel));
/// the epoch audit compares the two.
#[derive(Clone, Debug, Default)]
pub struct AuditState {
    /// The process manager's page closure (kernel-object frames).
    pub pm: SetFold,
    /// The VM subsystem's page closure (page-table and IOMMU frames).
    pub vm: SetFold,
    /// Frames resident in a per-CPU page cache (allocated, no closure).
    pub cached: SetFold,
    /// The allocator's `Allocated` set.
    pub allocated: SetFold,
    /// The allocator's mapped heads.
    pub mapped: SetFold,
    /// Reference sites over frames (leaf entries, grants, IOMMU leaves).
    pub refs: RefFold,
    /// Live address spaces in the VM subsystem.
    pub spaces: SetFold,
    /// Address spaces claimed by live processes.
    pub proc_spaces: SetFold,
    /// Live endpoint capabilities.
    pub caps: SetFold,
    /// Net-pool handles in flight.
    pub net_handles: i64,
    /// Blk-pool handles in flight.
    pub blk_handles: i64,
    /// Ops appended to the node-replication logs since recording began.
    /// A running sum, not a fold: the epoch audit balances it against
    /// the logs' published tails (minus the tails at baseline), so a
    /// mutation that skipped the log is named. Zero when node
    /// replication is off; [`from_kernel`](AuditState::from_kernel)
    /// leaves it zero (the flat kernel has no logs), so
    /// [`cross_check`](AuditState::cross_check) does not compare it —
    /// the replica audit in `audit_total_wf` owns that equation.
    pub nr_appended: u64,
    /// Lifetime scheduler budget units granted by refills (monotone).
    pub budget_granted: u64,
    /// Lifetime budget units consumed by running threads (monotone).
    pub budget_consumed: u64,
    /// Lifetime budget units refunded at account teardown (monotone).
    pub budget_refunded: u64,
    /// Budget units currently spendable. Signed so a double charge
    /// drives it negative and the conservation check names it instead
    /// of wrapping.
    pub budget_remaining: i64,
}

impl AuditState {
    /// The empty state (a kernel with nothing allocated).
    pub fn new() -> Self {
        AuditState::default()
    }

    /// Folds one ledger delta. O(1); commutative with any other delta,
    /// so per-CPU ledgers may be folded in any interleaving.
    pub fn apply(&mut self, d: AuditDelta) {
        match d {
            AuditDelta::PmAcquire(p) => self.pm.insert(p as u64),
            AuditDelta::PmRelease(p) => self.pm.remove(p as u64),
            AuditDelta::VmAcquire(p) => self.vm.insert(p as u64),
            AuditDelta::VmRelease(p) => self.vm.remove(p as u64),
            AuditDelta::Allocated(p) => self.allocated.insert(p as u64),
            AuditDelta::Freed(p) => self.allocated.remove(p as u64),
            AuditDelta::MapInsert(p) => self.mapped.insert(p as u64),
            AuditDelta::MapRemove(p) => self.mapped.remove(p as u64),
            AuditDelta::RefInc(p) => self.refs.inc(p as u64),
            AuditDelta::RefDec(p) => self.refs.dec(p as u64),
            AuditDelta::CacheFill(p) => self.cached.insert(p as u64),
            AuditDelta::CacheDrain(p) => self.cached.remove(p as u64),
            AuditDelta::SpaceCreate(s) => self.spaces.insert(s as u64),
            AuditDelta::SpaceDestroy(s) => self.spaces.remove(s as u64),
            AuditDelta::ProcSpace(s) => self.proc_spaces.insert(s as u64),
            AuditDelta::ProcSpaceGone(s) => self.proc_spaces.remove(s as u64),
            AuditDelta::CapCreate(e) => self.caps.insert(e as u64),
            AuditDelta::CapDestroy(e) => self.caps.remove(e as u64),
            AuditDelta::HandleNet(n) => self.net_handles += n,
            AuditDelta::HandleBlk(n) => self.blk_handles += n,
            AuditDelta::NrAppended(n) => self.nr_appended += n,
            AuditDelta::BudgetGrant(n) => {
                self.budget_granted += n;
                self.budget_remaining += n as i64;
            }
            AuditDelta::BudgetCharge(n) => {
                self.budget_consumed += n;
                self.budget_remaining -= n as i64;
            }
            AuditDelta::BudgetRefund(n) => {
                self.budget_refunded += n;
                self.budget_remaining -= n as i64;
            }
        }
    }

    /// Checks the global equations against the folded state. O(1) — no
    /// set is materialized. `net_expect`/`blk_expect` are the trace
    /// sink's in-flight gauges at the audit point (the audit runs at
    /// quiescent points, so the gauges are stable).
    pub fn check(&self, net_expect: i64, blk_expect: i64) -> VerifResult {
        check_eqn(
            self.pm
                .disjoint_union(&self.vm)
                .disjoint_union(&self.cached)
                == self.allocated,
            "audit_ledger",
            "pm+mem",
            "closure-partition",
            || {
                format!(
                    "pm ⊎ vm ⊎ cached != allocated (counts {}+{}+{} vs {})",
                    self.pm.count, self.vm.count, self.cached.count, self.allocated.count
                )
            },
        )?;
        check_eqn(
            self.spaces == self.proc_spaces,
            "audit_ledger",
            "pm+mem",
            "space-bijection",
            || {
                format!(
                    "address-space folds diverge ({} spaces vs {} process claims)",
                    self.spaces.count, self.proc_spaces.count
                )
            },
        )?;
        check_eqn(
            self.refs.support() == self.mapped,
            "audit_ledger",
            "pm+mem",
            "leak-freedom",
            || {
                format!(
                    "referenced-frame support != mapped heads ({} supported, {} sites, {} mapped)",
                    self.refs.support().count,
                    self.refs.total(),
                    self.mapped.count
                )
            },
        )?;
        check_eqn(
            self.net_handles >= 0 && self.net_handles == net_expect,
            "audit_ledger",
            "trace",
            "handle-ledger",
            || {
                format!(
                    "net handle fold {} != in-flight gauge {net_expect}",
                    self.net_handles
                )
            },
        )?;
        check_eqn(
            self.blk_handles >= 0 && self.blk_handles == blk_expect,
            "audit_ledger",
            "trace",
            "handle-ledger",
            || {
                format!(
                    "blk handle fold {} != in-flight gauge {blk_expect}",
                    self.blk_handles
                )
            },
        )?;
        check_eqn(
            self.budget_remaining >= 0
                && self.budget_granted
                    == self.budget_consumed + self.budget_refunded + self.budget_remaining as u64,
            "audit_ledger",
            "scheduler",
            "budget-conservation",
            || {
                format!(
                    "budget not conserved: {} granted != {} consumed + {} refunded + {} remaining",
                    self.budget_granted,
                    self.budget_consumed,
                    self.budget_refunded,
                    self.budget_remaining
                )
            },
        )
    }

    /// Rebuilds the folded state by a full scan of a flat kernel — the
    /// O(kernel) baseline and the epoch cross-check's ground truth.
    ///
    /// Must run with the caches drained (the state a
    /// [`with_kernel`](crate::smp::SmpKernel::with_kernel) closure
    /// observes): cache-resident frames are invisible to the flat scan,
    /// so `cached` starts empty.
    pub fn from_kernel(k: &Kernel) -> Self {
        let mut s = AuditState::new();
        for p in k.pm.page_closure().iter() {
            s.pm.insert(*p as u64);
        }
        for p in k.mem.vm.page_closure().iter() {
            s.vm.insert(*p as u64);
        }
        for p in k.mem.alloc.allocated_pages().iter() {
            s.allocated.insert(*p as u64);
        }
        for p in k.mem.alloc.mapped_pages().iter() {
            s.mapped.insert(*p as u64);
        }
        // Reference *sites*, multiplicity preserved: every page-table
        // leaf entry, every IOMMU leaf, every pending grant, every
        // in-buffer grant is one site.
        for id in k.mem.vm.spaces().iter() {
            k.mem
                .vm
                .table(*id)
                .expect("space")
                .visit_leaf_sites(|f| s.refs.inc(f as u64));
            s.spaces.insert(*id as u64);
        }
        k.mem.vm.iommu.visit_leaf_sites(|f| s.refs.inc(f as u64));
        for (_t, frame) in k.mem.pending_grants.iter() {
            s.refs.inc(*frame as u64);
        }
        for (_t, perm) in k.pm.thrd_perms.iter() {
            if let Some(buf) = perm.value().ipc_buf {
                if let Some(frame) = buf.page_grant {
                    s.refs.inc(frame as u64);
                }
            }
        }
        for (_p, perm) in k.pm.proc_perms.iter() {
            s.proc_spaces.insert(perm.value().addr_space as u64);
        }
        for (e, _) in k.pm.edpt_perms.iter() {
            s.caps.insert(e as u64);
        }
        s.net_handles = k.trace.net_in_flight();
        s.blk_handles = k.trace.blk_in_flight();
        let (granted, consumed, refunded, remaining) = k.pm.sched.budget_totals();
        s.budget_granted = granted;
        s.budget_consumed = consumed;
        s.budget_refunded = refunded;
        s.budget_remaining = remaining as i64;
        s
    }

    /// Compares this (incrementally maintained) state against a freshly
    /// scanned `flat` one, component by component. This is the epoch
    /// boundary's bit-for-bit reconciliation: any drift between the
    /// ledger fold and the real kernel state — a missed delta, a double
    /// emission, a fingerprint collision — is named here.
    pub fn cross_check(&self, flat: &AuditState) -> VerifResult {
        let folds = [
            ("pm closure", "closure-partition", self.pm, flat.pm),
            ("vm closure", "closure-partition", self.vm, flat.vm),
            (
                "cached frames",
                "closure-partition",
                self.cached,
                flat.cached,
            ),
            (
                "allocated set",
                "closure-partition",
                self.allocated,
                flat.allocated,
            ),
            ("mapped heads", "leak-freedom", self.mapped, flat.mapped),
            ("space set", "space-bijection", self.spaces, flat.spaces),
            (
                "process spaces",
                "space-bijection",
                self.proc_spaces,
                flat.proc_spaces,
            ),
            ("capability set", "cap-ledger", self.caps, flat.caps),
        ];
        for (name, eqn, inc, full) in folds {
            check_eqn(inc == full, "audit_ledger", "pm+mem", eqn, || {
                format!(
                    "incremental {name} fold (count {}, fp {:#x}) != full scan (count {}, fp {:#x})",
                    inc.count, inc.fp, full.count, full.fp
                )
            })?;
        }
        check_eqn(
            self.refs == flat.refs,
            "audit_ledger",
            "pm+mem",
            "leak-freedom",
            || {
                format!(
                    "incremental reference fold ({} sites, {} supported) != full scan ({} sites, {} supported)",
                    self.refs.total(),
                    self.refs.support().count,
                    flat.refs.total(),
                    flat.refs.support().count
                )
            },
        )?;
        check_eqn(
            self.net_handles == flat.net_handles && self.blk_handles == flat.blk_handles,
            "audit_ledger",
            "trace",
            "handle-ledger",
            || {
                format!(
                    "incremental handle gauges (net {}, blk {}) != sink gauges (net {}, blk {})",
                    self.net_handles, self.blk_handles, flat.net_handles, flat.blk_handles
                )
            },
        )?;
        check_eqn(
            self.budget_granted == flat.budget_granted
                && self.budget_consumed == flat.budget_consumed
                && self.budget_refunded == flat.budget_refunded
                && self.budget_remaining == flat.budget_remaining,
            "audit_ledger",
            "scheduler",
            "budget-conservation",
            || {
                format!(
                    "incremental budget ledger ({}/{}/{}/{}) != scheduler totals ({}/{}/{}/{})",
                    self.budget_granted,
                    self.budget_consumed,
                    self.budget_refunded,
                    self.budget_remaining,
                    flat.budget_granted,
                    flat.budget_consumed,
                    flat.budget_refunded,
                    flat.budget_remaining
                )
            },
        )
    }
}

/// The auditor a sharded kernel carries: the folded state plus a
/// reusable drain buffer, so the steady-state incremental audit
/// allocates nothing.
#[derive(Debug, Default)]
pub struct Auditor {
    /// The incrementally maintained folds.
    pub state: AuditState,
    /// Reusable ledger-drain scratch; grows to the high-water mark of
    /// deltas per audit interval and is then reused forever.
    pub scratch: Vec<AuditDelta>,
    /// The node-replication logs' (pm, mem) published tails at baseline
    /// time. `audit_total_wf` balances `state.nr_appended` — the sum of
    /// [`AuditDelta::NrAppended`] entries folded since the baseline —
    /// against the tails' growth past this point. `(0, 0)` when node
    /// replication is off (the tails also sit at their creation value,
    /// so the equation degenerates to `0 == growth`).
    pub nr_base: (u64, u64),
}

impl Auditor {
    /// An auditor baselined on a freshly scanned flat kernel.
    pub fn baselined(k: &Kernel) -> Self {
        Auditor {
            state: AuditState::from_kernel(k),
            scratch: Vec::new(),
            nr_base: (0, 0),
        }
    }

    /// Folds every delta in the scratch buffer into the state,
    /// returning how many were folded. The buffer is left intact so a
    /// failing audit can name its entries.
    pub fn fold_scratch(&mut self) -> u64 {
        for d in self.scratch.iter() {
            self.state.apply(*d);
        }
        self.scratch.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelConfig;

    #[test]
    fn boot_scan_passes_equations() {
        let k = Kernel::boot(KernelConfig::default());
        let s = AuditState::from_kernel(&k);
        let r = s.check(0, 0);
        assert!(r.is_ok(), "{r:?}");
        assert!(s.cross_check(&AuditState::from_kernel(&k)).is_ok());
    }

    #[test]
    fn deltas_fold_to_the_rescanned_state() {
        // A syscall's worth of mutations, emitted as deltas by hand,
        // must carry the boot fold to the post-state fold.
        let mut k = Kernel::boot(KernelConfig::default());
        let mut s = AuditState::from_kernel(&k);
        k.trace.set_audit_recording(true);
        let ret = k.syscall(
            0,
            crate::syscall::SyscallArgs::Mmap {
                va_base: 0x40_0000,
                len: 4,
                writable: true,
            },
        );
        assert!(ret.is_ok());
        let mut ledger = Vec::new();
        k.trace.drain_audit_ledgers(&mut ledger);
        assert!(!ledger.is_empty(), "mmap must emit deltas");
        for d in ledger {
            s.apply(d);
        }
        let flat = AuditState::from_kernel(&k);
        let r = s.cross_check(&flat);
        assert!(r.is_ok(), "{r:?}");
        assert!(s.check(0, 0).is_ok());
    }

    #[test]
    fn a_dropped_delta_is_named_by_the_cross_check() {
        let k = Kernel::boot(KernelConfig::default());
        let mut s = AuditState::from_kernel(&k);
        // Simulate a lost MapInsert: the fold diverges from the rescan.
        s.mapped.remove(0xdead);
        let e = s.cross_check(&AuditState::from_kernel(&k)).unwrap_err();
        assert_eq!(e.equation, Some("leak-freedom"));
        assert_eq!(e.domain, Some("pm+mem"));
        assert!(e.detail.contains("mapped heads"), "{e}");
    }

    #[test]
    fn handle_gauge_divergence_is_caught() {
        let mut s = AuditState::new();
        s.apply(AuditDelta::HandleNet(2));
        s.apply(AuditDelta::HandleNet(-1));
        assert_eq!(s.net_handles, 1);
        let e = s.check(0, 0).unwrap_err();
        assert_eq!(e.equation, Some("handle-ledger"));
    }
}
