//! V: the verified shared-service container (§3, §4.3).
//!
//! "We implement V as an event-driven state machine: it executes a loop
//! that checks for incoming IPC messages from A and B, and reacts to the
//! actions from A and B according to its abstract specifications. V may
//! receive pages and endpoints from A and B, but never shares them across
//! container boundaries."
//!
//! [`VService`] is that program, running as a single thread in its own
//! container. Its functional-correctness specification
//! ([`VService::spec_wf`]) captures the two guarantees the paper derives
//! from V's verification:
//!
//! 1. **no cross-leak** — a page received from one client is only ever
//!    mapped into V's per-client window for *that* client, and is never
//!    granted onward;
//! 2. **resource release** — on session close (or after a client crash,
//!    via [`VService::cleanup_client`]) every page received from that
//!    client is unmapped and its grant reference dropped.

use atmo_mem::PagePtr;
use atmo_pm::types::{EdptIdx, ThrdPtr};
use atmo_spec::harness::{check, VerifResult};
use atmo_spec::Set;

use crate::kernel::Kernel;
use crate::syscall::SyscallArgs;

/// Client request: accumulate a value (optionally sharing a page).
pub const OP_PUT: u64 = 1;
/// Client request (via `call`): read back the accumulated sum.
pub const OP_GET: u64 = 2;
/// Client request: end the session; V releases everything.
pub const OP_CLOSE: u64 = 3;

/// Per-client session state.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Session {
    /// Running sum of PUT values.
    pub sum: u64,
    /// Where the client's shared page is mapped in V's space, if any.
    pub mapped_va: Option<usize>,
    /// Ghost provenance: frames received from this client (for the
    /// no-cross-leak specification).
    pub frames: Set<PagePtr>,
}

/// The verified service program.
#[derive(Clone, Debug)]
pub struct VService {
    /// V's thread.
    pub thread: ThrdPtr,
    /// V's CPU.
    pub cpu: usize,
    /// Descriptor slots of the per-client endpoints (index = client id).
    pub slots: [EdptIdx; 2],
    /// Per-client virtual windows where shared pages are mapped.
    pub windows: [usize; 2],
    /// Per-client sessions.
    pub sessions: [Session; 2],
    /// Requests processed (diagnostics).
    pub processed: u64,
}

impl VService {
    /// Creates the service for V's thread with the conventional layout:
    /// client 0 (A) on slot 0 / window `0x7000_0000`, client 1 (B) on
    /// slot 1 / window `0x7100_0000`.
    pub fn new(thread: ThrdPtr, cpu: usize) -> Self {
        VService {
            thread,
            cpu,
            slots: [0, 1],
            windows: [0x7000_0000, 0x7100_0000],
            sessions: [Session::default(), Session::default()],
            processed: 0,
        }
    }

    /// One iteration of the event loop: polls both client endpoints and
    /// processes at most one message per endpoint. Returns the number of
    /// messages handled.
    pub fn step(&mut self, k: &mut Kernel) -> usize {
        let mut handled = 0;
        for client in 0..2 {
            let ret = k.syscall(
                self.cpu,
                SyscallArgs::Poll {
                    slot: self.slots[client],
                },
            );
            let Ok(vals) = ret.result else { continue };
            if vals[3] == u64::MAX {
                continue; // endpoint empty
            }
            self.process(k, client, vals);
            handled += 1;
        }
        handled
    }

    /// Handles one message `[op, value, endpoint_grant, has_page_grant]`
    /// from `client`.
    fn process(&mut self, k: &mut Kernel, client: usize, vals: [u64; 4]) {
        self.processed += 1;
        let op = vals[0];
        let has_page = vals[3] == 1;
        match op {
            OP_PUT => {
                self.sessions[client].sum = self.sessions[client].sum.wrapping_add(vals[1]);
                if has_page {
                    self.accept_page(k, client);
                }
            }
            OP_GET => {
                // GET arrives via `call`; V owes a reply with the sum.
                if has_page {
                    // Calls cannot carry pages in this protocol; drop it.
                    let _ = k.syscall(self.cpu, SyscallArgs::DropGrant);
                }
                let sum = self.sessions[client].sum;
                let _ = k.syscall(
                    self.cpu,
                    SyscallArgs::Reply {
                        scalars: [sum, 0, 0, 0],
                    },
                );
            }
            OP_CLOSE => {
                if has_page {
                    let _ = k.syscall(self.cpu, SyscallArgs::DropGrant);
                }
                self.release_session(k, client);
            }
            _ => {
                // Unknown op: per spec, ignore but never leak a grant.
                if has_page {
                    let _ = k.syscall(self.cpu, SyscallArgs::DropGrant);
                }
            }
        }
    }

    /// Accepts a granted page into the client's window (replacing any
    /// previous one); records provenance.
    fn accept_page(&mut self, k: &mut Kernel, client: usize) {
        // Record provenance *before* mapping consumes the pending grant.
        let frame = match k.mem.pending_grants.get(&self.thread) {
            Some(f) => *f,
            None => return,
        };
        // Only one window per client: release the previous page first.
        if self.sessions[client].mapped_va.is_some() {
            self.unmap_window(k, client);
        }
        let va = self.windows[client];
        let ret = k.syscall(self.cpu, SyscallArgs::MapGranted { va });
        if ret.is_ok() {
            self.sessions[client].mapped_va = Some(va);
            self.sessions[client].frames = self.sessions[client].frames.insert(frame);
        } else {
            let _ = k.syscall(self.cpu, SyscallArgs::DropGrant);
        }
    }

    fn unmap_window(&mut self, k: &mut Kernel, client: usize) {
        if let Some(va) = self.sessions[client].mapped_va.take() {
            let _ = k.syscall(
                self.cpu,
                SyscallArgs::Munmap {
                    va_base: va,
                    len: 1,
                },
            );
        }
    }

    /// Releases everything held for `client` (OP_CLOSE, or invoked after
    /// the client's container crashed — the §3 guarantee that V releases
    /// all memory received from a client even if the peer dies).
    pub fn release_session(&mut self, k: &mut Kernel, client: usize) {
        self.unmap_window(k, client);
        self.sessions[client] = Session::default();
    }

    /// Crash-recovery entry point: identical to a close, callable at any
    /// time (idempotent).
    pub fn cleanup_client(&mut self, k: &mut Kernel, client: usize) {
        self.release_session(k, client);
    }

    /// V's functional-correctness specification:
    ///
    /// 1. V's address space maps client pages only inside the designated
    ///    windows, and each window holds only frames received from *its*
    ///    client (no cross-leak);
    /// 2. V holds no pending grant outside a processing step;
    /// 3. closed sessions hold nothing.
    pub fn spec_wf(&self, k: &Kernel) -> VerifResult {
        let psi = k.view();
        let proc_ptr = match psi.get_thread(self.thread) {
            Some(t) => t.owning_proc,
            None => {
                return Err(atmo_spec::InvariantViolation::new(
                    "v_service",
                    "V's thread vanished",
                ))
            }
        };
        let space = psi.get_address_space(proc_ptr);
        for (va, (entry, _sz)) in space.iter() {
            // Which window is this mapping in?
            let client = self.windows.iter().position(|w| w == va).ok_or_else(|| {
                atmo_spec::InvariantViolation::new(
                    "v_service",
                    format!("V maps a page outside its client windows at {va:#x}"),
                )
            })?;
            check(
                self.sessions[client].frames.contains(&entry.frame),
                "v_service",
                format!(
                    "window {client} maps frame {:#x} not received from client {client}",
                    entry.frame
                ),
            )?;
            // No cross-leak: the frame must not be provenance of the other
            // client.
            check(
                !self.sessions[1 - client].frames.contains(&entry.frame),
                "v_service",
                format!("frame {:#x} crossed client boundaries", entry.frame),
            )?;
        }
        check(
            !k.mem.pending_grants.contains_key(&self.thread),
            "v_service",
            "V retains an unprocessed grant between events",
        )?;
        for (i, s) in self.sessions.iter().enumerate() {
            if s.mapped_va.is_none() && s.sum == 0 && !s.frames.is_empty() {
                // frames provenance may outlive the mapping (history), fine
                let _ = i;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::noninterf::setup_abv;
    use atmo_spec::harness::Invariant;

    /// Drives the full Figure 1 interaction: A and B each share a page
    /// with V and accumulate values; V serves both without cross-leak.
    #[test]
    fn v_serves_two_isolated_clients() {
        let (mut k, sc) = setup_abv();
        let mut v = VService::new(sc.tv, sc.cpu_v);

        // A maps a page and PUTs 5 with a page grant.
        let _ = k.syscall(
            sc.cpu_a,
            SyscallArgs::Mmap {
                va_base: 0x40_0000,
                len: 1,
                writable: true,
            },
        );
        let r = k.syscall(
            sc.cpu_a,
            SyscallArgs::Send {
                slot: 0,
                scalars: [OP_PUT, 5, 0, 0],
                grant_page_va: Some(0x40_0000),
                grant_endpoint_slot: None,
                grant_iommu_domain: None,
            },
        );
        assert!(r.is_ok(), "{r:?}");

        // B PUTs 7 without a page.
        let r = k.syscall(
            sc.cpu_b,
            SyscallArgs::Send {
                slot: 0,
                scalars: [OP_PUT, 7, 0, 0],
                grant_page_va: None,
                grant_endpoint_slot: None,
                grant_iommu_domain: None,
            },
        );
        assert!(r.is_ok(), "{r:?}");

        // V processes both.
        assert_eq!(v.step(&mut k), 2);
        assert!(v.spec_wf(&k).is_ok(), "{:?}", v.spec_wf(&k));
        assert_eq!(v.sessions[0].sum, 5);
        assert_eq!(v.sessions[1].sum, 7);
        assert!(v.sessions[0].mapped_va.is_some());
        assert!(v.sessions[1].mapped_va.is_none());
        assert!(k.wf().is_ok(), "{:?}", k.wf());

        // B GETs its sum via call/reply.
        let _ = k.syscall(
            sc.cpu_b,
            SyscallArgs::Call {
                slot: 0,
                scalars: [OP_GET, 0, 0, 0],
            },
        );
        assert_eq!(v.step(&mut k), 1);
        let msg = k.syscall(sc.cpu_b, SyscallArgs::TakeMsg);
        assert_eq!(msg.val0(), 7, "B reads back its own sum");
        assert!(v.spec_wf(&k).is_ok());
        assert!(k.wf().is_ok());
    }

    #[test]
    fn v_releases_on_close() {
        let (mut k, sc) = setup_abv();
        let mut v = VService::new(sc.tv, sc.cpu_v);

        let _ = k.syscall(
            sc.cpu_a,
            SyscallArgs::Mmap {
                va_base: 0x40_0000,
                len: 1,
                writable: true,
            },
        );
        let _ = k.syscall(
            sc.cpu_a,
            SyscallArgs::Send {
                slot: 0,
                scalars: [OP_PUT, 1, 0, 0],
                grant_page_va: Some(0x40_0000),
                grant_endpoint_slot: None,
                grant_iommu_domain: None,
            },
        );
        v.step(&mut k);
        assert!(v.sessions[0].mapped_va.is_some());

        let _ = k.syscall(
            sc.cpu_a,
            SyscallArgs::Send {
                slot: 0,
                scalars: [OP_CLOSE, 0, 0, 0],
                grant_page_va: None,
                grant_endpoint_slot: None,
                grant_iommu_domain: None,
            },
        );
        v.step(&mut k);
        assert!(v.sessions[0].mapped_va.is_none());
        assert_eq!(v.sessions[0].sum, 0);
        assert!(v.spec_wf(&k).is_ok());
        assert!(k.wf().is_ok(), "{:?}", k.wf());
    }

    #[test]
    fn v_releases_after_client_crash() {
        // §3: "V always releases all memory received from either A or B
        // even if the container on the other end crashes."
        let (mut k, sc) = setup_abv();
        let mut v = VService::new(sc.tv, sc.cpu_v);

        let _ = k.syscall(
            sc.cpu_a,
            SyscallArgs::Mmap {
                va_base: 0x40_0000,
                len: 1,
                writable: true,
            },
        );
        let _ = k.syscall(
            sc.cpu_a,
            SyscallArgs::Send {
                slot: 0,
                scalars: [OP_PUT, 1, 0, 0],
                grant_page_va: Some(0x40_0000),
                grant_endpoint_slot: None,
                grant_iommu_domain: None,
            },
        );
        v.step(&mut k);
        let frame = *v.sessions[0].frames.choose().unwrap();

        // A's container is terminated (crash). Its mapping of the frame
        // dies; V still maps it, so the frame stays alive.
        let _ = k.syscall(0, SyscallArgs::TerminateContainer { cntr: sc.a });
        assert!(k.wf().is_ok(), "{:?}", k.wf());
        assert!(k.mem.alloc.map_refcnt(frame) >= 1);

        // V's cleanup releases the last reference; the frame is free.
        v.cleanup_client(&mut k, 0);
        assert!(
            k.mem.alloc.page_is_free(frame),
            "frame returned to the allocator"
        );
        assert!(v.spec_wf(&k).is_ok());
        assert!(k.wf().is_ok(), "{:?}", k.wf());
    }

    #[test]
    fn v_never_replies_with_foreign_sum() {
        let (mut k, sc) = setup_abv();
        let mut v = VService::new(sc.tv, sc.cpu_v);

        for (cpu, val) in [(sc.cpu_a, 100u64), (sc.cpu_b, 23)] {
            let _ = k.syscall(
                cpu,
                SyscallArgs::Send {
                    slot: 0,
                    scalars: [OP_PUT, val, 0, 0],
                    grant_page_va: None,
                    grant_endpoint_slot: None,
                    grant_iommu_domain: None,
                },
            );
        }
        v.step(&mut k);
        let _ = k.syscall(
            sc.cpu_a,
            SyscallArgs::Call {
                slot: 0,
                scalars: [OP_GET, 0, 0, 0],
            },
        );
        v.step(&mut k);
        assert_eq!(k.syscall(sc.cpu_a, SyscallArgs::TakeMsg).val0(), 100);
    }
}
