//! Per-syscall transition specifications (Listing 1 of the paper).
//!
//! Each `syscall_*_spec(Ψ, Ψ', args, ret) -> bool` captures how the
//! abstract kernel state changes across the call: what must change, what
//! must *not* change (the frame conditions), and how the return value
//! relates to the states. The refinement harness ([`crate::refine`])
//! asserts the matching spec after every audited system call; failed
//! syscalls must satisfy [`syscall_noop_spec`] — error paths change
//! nothing.

use atmo_hw::addr::VaRange4K;
use atmo_hw::VAddr;

use crate::abs::{
    containers_unchanged_except, endpoints_unchanged_except, normalize_space_4k,
    processes_unchanged_except, space_covering, spaces_unchanged_except, threads_unchanged,
    threads_unchanged_except, AbstractKernel,
};
use crate::syscall::SyscallReturn;

/// Failed (and state-neutral) syscalls leave Ψ untouched.
pub fn syscall_noop_spec(pre: &AbstractKernel, post: &AbstractKernel) -> bool {
    pre == post
}

/// `syscall_mmap_spec` (Listing 1, lines 5–27).
pub fn syscall_mmap_spec(
    pre: &AbstractKernel,
    post: &AbstractKernel,
    t_ptr: usize,
    va_range: VaRange4K,
    ret: &SyscallReturn,
) -> bool {
    if ret.result.is_err() {
        return syscall_noop_spec(pre, post);
    }
    let Some(thread) = pre.get_thread(t_ptr) else {
        return false;
    };
    let proc_ptr = thread.owning_proc;
    let cntr = thread.owning_cntr;
    let as_id = match pre.get_process(proc_ptr) {
        Some(p) => p.addr_space,
        None => return false,
    };

    // The state of each thread is unchanged (lines 7–11).
    if !threads_unchanged(pre, post) {
        return false;
    }
    // Processes and endpoints unchanged; containers unchanged except the
    // caller's (its quota charge grew by len).
    if !processes_unchanged_except(pre, post, &[])
        || !endpoints_unchanged_except(pre, post, &[])
        || !containers_unchanged_except(pre, post, &[cntr])
    {
        return false;
    }
    let (pre_c, post_c) = match (pre.get_container(cntr), post.get_container(cntr)) {
        (Some(a), Some(b)) => (a, b),
        _ => return false,
    };
    if post_c.used != pre_c.used + va_range.len {
        return false;
    }

    // Other address spaces are unchanged.
    if !spaces_unchanged_except(pre, post, &[as_id]) {
        return false;
    }
    let pre_space = pre.get_address_space(proc_ptr);
    let post_space = post.get_address_space(proc_ptr);

    // Virtual addresses outside va_range are not changed (lines 13–18).
    let outside_ok = pre_space
        .iter()
        .all(|(va, e)| va_range.contains(VAddr(*va)) || post_space.index(va) == Some(e))
        && post_space
            .iter()
            .all(|(va, e)| va_range.contains(VAddr(*va)) || pre_space.index(va) == Some(e));
    if !outside_ok {
        return false;
    }

    // Each virtual address in va_range maps a page that was free before
    // (lines 19–22) and pages are pairwise distinct (lines 23–26). The
    // clauses are stated over the *covering* entry so the batched,
    // promoted and per-page executions all satisfy the same transition: a
    // `Size4K` entry covers exactly its va, while a promoted `Size2M`
    // entry covers 512 of them with per-va frame `head + offset` (the
    // promotion path assembles its run from the 4 KiB freelist, so each
    // constituent frame individually satisfies `page_is_free`).
    let mut seen = std::collections::BTreeSet::new();
    let range_start = va_range.base.as_usize();
    let range_end = range_start + va_range.len * 0x1000;
    for va in va_range.iter() {
        let Some((base, entry, size)) = space_covering(&post_space, va.as_usize()) else {
            return false;
        };
        // A covering superpage must lie entirely inside the requested
        // range — promotion never maps beyond what was asked for.
        if base < range_start || base + size.bytes() > range_end {
            return false;
        }
        let frame = entry.frame + (va.as_usize() - base);
        if !pre.page_is_free(frame) {
            return false;
        }
        if !seen.insert(frame) {
            return false;
        }
        // The range was previously unmapped (at any page size).
        if space_covering(&pre_space, va.as_usize()).is_some() {
            return false;
        }
        // And the allocator now records the covering block as mapped,
        // with none of its frames free.
        if post.free_4k.contains(&frame) || !post.mapped.contains(&entry.frame) {
            return false;
        }
    }
    true
}

/// `munmap`: the range disappears from the caller's space, frames return
/// toward the allocator, quota is released, everything else unchanged.
pub fn syscall_munmap_spec(
    pre: &AbstractKernel,
    post: &AbstractKernel,
    t_ptr: usize,
    va_range: VaRange4K,
    ret: &SyscallReturn,
) -> bool {
    if ret.result.is_err() {
        return syscall_noop_spec(pre, post);
    }
    let Some(thread) = pre.get_thread(t_ptr) else {
        return false;
    };
    let proc_ptr = thread.owning_proc;
    let cntr = thread.owning_cntr;
    let as_id = match pre.get_process(proc_ptr) {
        Some(p) => p.addr_space,
        None => return false,
    };

    if !threads_unchanged(pre, post)
        || !processes_unchanged_except(pre, post, &[])
        || !endpoints_unchanged_except(pre, post, &[])
        || !containers_unchanged_except(pre, post, &[cntr])
        || !spaces_unchanged_except(pre, post, &[as_id])
    {
        return false;
    }
    let (pre_c, post_c) = match (pre.get_container(cntr), post.get_container(cntr)) {
        (Some(a), Some(b)) => (a, b),
        _ => return false,
    };
    if pre_c.used != post_c.used + va_range.len {
        return false;
    }
    let pre_space = pre.get_address_space(proc_ptr);
    let post_space = post.get_address_space(proc_ptr);
    // Every page of the range was mapped (at any size) and is gone, and
    // outside the range the per-4K coverage is unchanged. The comparison
    // runs over the normalized (per-4K expanded) views so that demoting a
    // promoted superpage to unmap part of it — a pure representation
    // change for the surviving pages — satisfies the same transition as
    // the per-page path.
    let pre_n = normalize_space_4k(&pre_space);
    let post_n = normalize_space_4k(&post_space);
    for va in va_range.iter() {
        if !pre_n.contains_key(&va.as_usize()) || post_n.contains_key(&va.as_usize()) {
            return false;
        }
    }
    pre_n
        .iter()
        .all(|(va, e)| va_range.contains(VAddr(*va)) || post_n.index(va) == Some(e))
        && post_n
            .iter()
            .all(|(va, e)| va_range.contains(VAddr(*va)) || pre_n.index(va) == Some(e))
}

/// `new_container` (Listing 3's `new_container_ensures`, adapted to the
/// syscall boundary): a fresh container appears under the caller's
/// container, the parent's charge grows by `quota + 1`, the parent's CPU
/// set shrinks by the passed cores, ancestors' subtrees grow by exactly
/// the child, and nothing else changes.
pub fn syscall_new_container_spec(
    pre: &AbstractKernel,
    post: &AbstractKernel,
    t_ptr: usize,
    quota: usize,
    cpus: &[usize],
    ret: &SyscallReturn,
) -> bool {
    let Ok(vals) = ret.result else {
        return syscall_noop_spec(pre, post);
    };
    let child = vals[0] as usize;
    let Some(thread) = pre.get_thread(t_ptr) else {
        return false;
    };
    let parent = thread.owning_cntr;

    if pre.get_container(child).is_some() {
        return false; // the pointer must be fresh
    }
    let Some(child_c) = post.get_container(child) else {
        return false;
    };
    let (Some(pre_p), Some(post_p)) = (pre.get_container(parent), post.get_container(parent))
    else {
        return false;
    };

    // Child shape.
    if child_c.parent != Some(parent)
        || child_c.quota != quota
        || child_c.used != 0
        || child_c.depth != pre_p.depth + 1
        || !child_c.subtree.is_empty()
        || *child_c.path.view() != pre_p.path.push(parent)
    {
        return false;
    }
    for cpu in cpus {
        if !child_c.owned_cpus.contains(cpu) || post_p.owned_cpus.contains(cpu) {
            return false;
        }
    }
    // Parent bookkeeping.
    if post_p.used != pre_p.used + quota + 1 || !post_p.children.contains(&child) {
        return false;
    }

    // Ancestors' subtrees grew by exactly the child; all other containers
    // unchanged (Listing 3 lines 14–21).
    let ancestors: Vec<usize> = {
        let mut v = pre_p.path.to_vec();
        v.push(parent);
        v
    };
    for (c_ptr, pre_c) in pre.pm.containers.iter() {
        let Some(post_c) = post.get_container(*c_ptr) else {
            return false;
        };
        if ancestors.contains(c_ptr) {
            if *post_c.subtree.view() != pre_c.subtree.insert(child) {
                return false;
            }
        } else if *c_ptr != parent && post_c != pre_c {
            return false;
        }
    }

    // The child's object page came from the free set.
    if !pre.free_4k.contains(&child) || post.free_4k.contains(&child) {
        return false;
    }

    threads_unchanged(pre, post)
        && processes_unchanged_except(pre, post, &[])
        && endpoints_unchanged_except(pre, post, &[])
        && spaces_unchanged_except(pre, post, &[])
}

/// `new_endpoint`: a fresh endpoint appears, installed in the caller's
/// descriptor table, charged to the caller's container; nothing else
/// changes (Listing 4's postcondition shape).
pub fn syscall_new_endpoint_spec(
    pre: &AbstractKernel,
    post: &AbstractKernel,
    t_ptr: usize,
    slot: usize,
    ret: &SyscallReturn,
) -> bool {
    let Ok(vals) = ret.result else {
        return syscall_noop_spec(pre, post);
    };
    let e_ptr = vals[0] as usize;
    let Some(thread) = pre.get_thread(t_ptr) else {
        return false;
    };
    let cntr = thread.owning_cntr;

    if pre.get_endpoint(e_ptr).is_some() {
        return false;
    }
    let Some(e) = post.get_endpoint(e_ptr) else {
        return false;
    };
    if e.refcount != 1 || e.owning_cntr != cntr || !e.queue.is_empty() {
        return false;
    }
    // The page was free (Listing 4: "newly allocated page was previously
    // not allocated").
    if !pre.page_is_free(e_ptr) || post.free_4k.contains(&e_ptr) {
        return false;
    }
    // The caller's descriptor table gained exactly this endpoint.
    let (Some(pre_t), Some(post_t)) = (pre.get_thread(t_ptr), post.get_thread(t_ptr)) else {
        return false;
    };
    if post_t.edpt_descriptors[slot] != Some(e_ptr) || pre_t.edpt_descriptors[slot].is_some() {
        return false;
    }
    // Container charge grew by one.
    match (pre.get_container(cntr), post.get_container(cntr)) {
        (Some(a), Some(b)) if b.used == a.used + 1 => {}
        _ => return false,
    }
    threads_unchanged_except(pre, post, &[t_ptr])
        && containers_unchanged_except(pre, post, &[cntr])
        && processes_unchanged_except(pre, post, &[])
        && endpoints_unchanged_except(pre, post, &[e_ptr])
        && spaces_unchanged_except(pre, post, &[])
}

/// IPC operations (`send`/`recv`/`call`/`reply`): address spaces, the
/// process tree and container quotas are untouched (except in-flight
/// grant accounting); only the participating threads, the endpoint, and
/// scheduler-visible thread states may change.
pub fn syscall_ipc_frame_spec(
    pre: &AbstractKernel,
    post: &AbstractKernel,
    touched_threads: &[usize],
    touched_endpoints: &[usize],
) -> bool {
    threads_unchanged_except(pre, post, touched_threads)
        && endpoints_unchanged_except(pre, post, touched_endpoints)
        && processes_unchanged_except(pre, post, &[])
        && containers_unchanged_except(pre, post, &[])
        && spaces_unchanged_except(pre, post, &[])
        && pre.allocated == post.allocated
}

/// `yield` / timer tick: only thread scheduling states change; the set of
/// threads, all memory and all other objects are untouched.
pub fn syscall_yield_spec(pre: &AbstractKernel, post: &AbstractKernel) -> bool {
    if pre.thread_dom() != post.thread_dom() {
        return false;
    }
    // Threads may differ only in their `state` field.
    for (t, pre_t) in pre.pm.threads.iter() {
        let Some(post_t) = post.get_thread(*t) else {
            return false;
        };
        let mut normalized = post_t.clone();
        normalized.state = pre_t.state;
        if &normalized != pre_t {
            return false;
        }
    }
    pre.pm.containers == post.pm.containers
        && pre.pm.processes == post.pm.processes
        && pre.pm.endpoints == post.pm.endpoints
        && pre.spaces == post.spaces
        && pre.free_4k == post.free_4k
        && pre.allocated == post.allocated
        && pre.mapped == post.mapped
}

/// `terminate_container`: the target and its whole subtree vanish; their
/// pages return to the free set; the parent recovers the reservation and
/// CPUs; containers outside the dead set (other than ancestors, whose
/// subtrees shrink) are unchanged.
pub fn syscall_terminate_container_spec(
    pre: &AbstractKernel,
    post: &AbstractKernel,
    cntr: usize,
    ret: &SyscallReturn,
) -> bool {
    if ret.result.is_err() {
        return syscall_noop_spec(pre, post);
    }
    let Some(pre_c) = pre.get_container(cntr) else {
        return false;
    };
    let Some(parent) = pre_c.parent else {
        return false;
    };
    let mut dead: Vec<usize> = pre_c.subtree.to_vec();
    dead.push(cntr);

    // Dead containers (and their processes/threads) are gone.
    for d in &dead {
        if post.get_container(*d).is_some() {
            return false;
        }
    }
    for (p_ptr, p) in pre.pm.processes.iter() {
        if dead.contains(&p.owning_container) && post.get_process(*p_ptr).is_some() {
            return false;
        }
    }
    for (t_ptr, t) in pre.pm.threads.iter() {
        if dead.contains(&t.owning_cntr) && post.get_thread(*t_ptr).is_some() {
            return false;
        }
    }
    // Parent recovered the reservation.
    let (Some(pre_p), Some(post_p)) = (pre.get_container(parent), post.get_container(parent))
    else {
        return false;
    };
    if pre_p.used < pre_c.quota + 1 {
        return false;
    }
    // (Endpoint-charge transfers may add to the parent; allow ≥.)
    if post_p.used + pre_c.quota + 1 < pre_p.used {
        return false;
    }
    if post_p.children.contains(&cntr) {
        return false;
    }
    // Ancestors' subtrees shrank by the dead set; unrelated containers
    // unchanged except quota-neutral fields.
    for (c_ptr, pre_other) in pre.pm.containers.iter() {
        if dead.contains(c_ptr) || *c_ptr == parent {
            continue;
        }
        let Some(post_other) = post.get_container(*c_ptr) else {
            return false;
        };
        let on_path = pre_c.path.contains(c_ptr);
        if on_path {
            let expected: atmo_spec::Set<usize> = dead
                .iter()
                .fold(pre_other.subtree.view().clone(), |acc, d| acc.remove(d));
            if *post_other.subtree.view() != expected {
                return false;
            }
        } else if post_other != pre_other {
            return false;
        }
    }
    true
}

/// `new_process`: a fresh process appears in `cntr` with a fresh, empty
/// address space; the container is charged one page; nothing else
/// changes.
pub fn syscall_new_process_spec(
    pre: &AbstractKernel,
    post: &AbstractKernel,
    cntr: usize,
    ret: &SyscallReturn,
) -> bool {
    let Ok(vals) = ret.result else {
        return syscall_noop_spec(pre, post);
    };
    let p_ptr = vals[0] as usize;
    if pre.get_process(p_ptr).is_some() {
        return false; // pointer freshness
    }
    let Some(p) = post.get_process(p_ptr) else {
        return false;
    };
    if p.owning_container != cntr || p.parent.is_some() || !p.threads.is_empty() {
        return false;
    }
    // Fresh address space, empty.
    if pre.spaces.contains_key(&p.addr_space) {
        return false;
    }
    match post.spaces.index(&p.addr_space) {
        Some(space) if space.is_empty() => {}
        _ => return false,
    }
    // Container bookkeeping: +1 page, process recorded.
    let (Some(pre_c), Some(post_c)) = (pre.get_container(cntr), post.get_container(cntr)) else {
        return false;
    };
    if post_c.used != pre_c.used + 1
        || !post_c.owned_procs.contains(&p_ptr)
        || !post_c.root_procs.contains(&p_ptr)
    {
        return false;
    }
    // The object page came from the free set.
    if !pre.page_is_free(p_ptr) || post.free_4k.contains(&p_ptr) {
        return false;
    }
    threads_unchanged(pre, post)
        && containers_unchanged_except(pre, post, &[cntr])
        && processes_unchanged_except(pre, post, &[p_ptr])
        && endpoints_unchanged_except(pre, post, &[])
        && spaces_unchanged_except(pre, post, &[p.addr_space])
}

/// `new_thread`: a fresh, Ready thread appears in `proc`; its process
/// and container record it; one page of quota is charged.
pub fn syscall_new_thread_spec(
    pre: &AbstractKernel,
    post: &AbstractKernel,
    proc: usize,
    ret: &SyscallReturn,
) -> bool {
    let Ok(vals) = ret.result else {
        return syscall_noop_spec(pre, post);
    };
    let t_ptr = vals[0] as usize;
    if pre.get_thread(t_ptr).is_some() {
        return false;
    }
    let Some(t) = post.get_thread(t_ptr) else {
        return false;
    };
    if t.owning_proc != proc
        || t.state != atmo_pm::ThreadState::Ready
        || t.ipc_buf.is_some()
        || t.edpt_descriptors.iter().any(|d| d.is_some())
    {
        return false;
    }
    let (Some(pre_p), Some(post_p)) = (pre.get_process(proc), post.get_process(proc)) else {
        return false;
    };
    if !post_p.threads.contains(&t_ptr) || post_p.threads.len() != pre_p.threads.len() + 1 {
        return false;
    }
    let cntr = pre_p.owning_container;
    match (pre.get_container(cntr), post.get_container(cntr)) {
        (Some(a), Some(b)) if b.used == a.used + 1 && b.owned_thrds.contains(&t_ptr) => {}
        _ => return false,
    }
    if !pre.page_is_free(t_ptr) || post.free_4k.contains(&t_ptr) {
        return false;
    }
    threads_unchanged_except(pre, post, &[t_ptr])
        && containers_unchanged_except(pre, post, &[cntr])
        && processes_unchanged_except(pre, post, &[proc])
        && endpoints_unchanged_except(pre, post, &[])
        && spaces_unchanged_except(pre, post, &[])
}

/// `terminate_process`: the process, its descendants, their threads and
/// their address spaces vanish; the owning container's charge shrinks by
/// the objects plus mapped pages; other containers untouched.
pub fn syscall_terminate_process_spec(
    pre: &AbstractKernel,
    post: &AbstractKernel,
    proc: usize,
    ret: &SyscallReturn,
) -> bool {
    if ret.result.is_err() {
        return syscall_noop_spec(pre, post);
    }
    let Some(root) = pre.get_process(proc) else {
        return false;
    };
    let cntr = root.owning_container;
    // Collect the doomed subtree from the *pre* view.
    let mut stack = vec![proc];
    let mut doomed_procs = Vec::new();
    while let Some(q) = stack.pop() {
        doomed_procs.push(q);
        if let Some(p) = pre.get_process(q) {
            stack.extend(p.children.iter());
        }
    }
    let mut doomed_threads = Vec::new();
    let mut doomed_spaces = Vec::new();
    let mut mapped_pages = 0usize;
    for &q in &doomed_procs {
        let p = pre.get_process(q).expect("doomed proc in pre");
        doomed_threads.extend(p.threads.iter());
        doomed_spaces.push(p.addr_space);
        mapped_pages += pre
            .spaces
            .index(&p.addr_space)
            .map(|s| s.values().map(|(_e, sz)| sz.frames()).sum::<usize>())
            .unwrap_or(0);
    }
    // Everything doomed is gone.
    if doomed_procs.iter().any(|p| post.get_process(*p).is_some())
        || doomed_threads.iter().any(|t| post.get_thread(*t).is_some())
        || doomed_spaces.iter().any(|s| post.spaces.contains_key(s))
    {
        return false;
    }
    // Quota: objects (procs + threads) + mapped pages released. Endpoint
    // pages may also be released when their last descriptor dies, so the
    // container's use may shrink further.
    let released_min = doomed_procs.len() + doomed_threads.len() + mapped_pages;
    match (pre.get_container(cntr), post.get_container(cntr)) {
        (Some(a), Some(b)) if a.used >= released_min && b.used <= a.used - released_min => {}
        _ => return false,
    }
    containers_unchanged_except(pre, post, &[cntr])
        && spaces_unchanged_except(pre, post, &doomed_spaces)
}

/// Success-path frame conditions shared by the pure IPC operations
/// (`send`/`recv`/`call`/`reply`/`poll`/`take_msg`): the object
/// *populations* and all memory state are untouched; only thread and
/// endpoint contents may change.
pub fn syscall_ipc_population_spec(pre: &AbstractKernel, post: &AbstractKernel) -> bool {
    pre.thread_dom() == post.thread_dom()
        && pre.pm.endpoints.dom() == post.pm.endpoints.dom()
        && pre.pm.processes == post.pm.processes
        && pre.pm.containers == post.pm.containers
        && pre.spaces == post.spaces
        && pre.allocated == post.allocated
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{Kernel, KernelConfig};
    use crate::syscall::SyscallArgs;

    #[test]
    fn noop_spec_accepts_identical_states() {
        let k = Kernel::boot(KernelConfig::default());
        let v = k.view();
        assert!(syscall_noop_spec(&v, &v));
    }

    #[test]
    fn mmap_spec_accepts_real_mmap() {
        let mut k = Kernel::boot(KernelConfig::default());
        let t = k.init_thread;
        let pre = k.view();
        let ret = k.syscall(
            0,
            SyscallArgs::Mmap {
                va_base: 0x40_0000,
                len: 3,
                writable: true,
            },
        );
        assert!(ret.is_ok());
        let post = k.view();
        let range = VaRange4K::new(VAddr(0x40_0000), 3).unwrap();
        assert!(syscall_mmap_spec(&pre, &post, t, range, &ret));
        // The spec is discriminating: a wrong thread pointer fails it.
        assert!(!syscall_mmap_spec(&pre, &post, 0xdead, range, &ret));
        // And a wrong range fails the outside-unchanged clause.
        let wrong = VaRange4K::new(VAddr(0x50_0000), 3).unwrap();
        assert!(!syscall_mmap_spec(&pre, &post, t, wrong, &ret));
    }

    #[test]
    fn failed_mmap_is_a_noop() {
        let mut k = Kernel::boot(KernelConfig::default());
        let t = k.init_thread;
        let pre = k.view();
        // Non-canonical base address.
        let ret = k.syscall(
            0,
            SyscallArgs::Mmap {
                va_base: 0x0000_8000_0000_0000,
                len: 1,
                writable: true,
            },
        );
        assert!(!ret.is_ok());
        let post = k.view();
        assert!(syscall_noop_spec(&pre, &post));
        let _ = t;
    }
}
