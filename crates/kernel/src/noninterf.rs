//! Non-interference: observable state, unwinding conditions, and the
//! A/B/V scenario (§4.3).
//!
//! The paper proves non-interference between two untrusted containers A
//! and B that may each communicate with a verified shared container V,
//! via the unwinding conditions of Nelson et al.:
//!
//! * **Output consistency (OC)** — system calls are deterministic
//!   functions of the pre-state and arguments; two identical kernels
//!   running identical traces produce identical outputs and states.
//! * **Step consistency (SC)** — the observable state of container group
//!   B is unchanged across *any* system call (with arbitrary arguments)
//!   issued by a thread of group A, and vice versa.
//! * **Local respect (LR)** — with only A and B isolated, LR coincides
//!   with SC (paper §4.3).
//!
//! [`run_noninterference_trial`] is the executable theorem: it boots the
//! three-container configuration, fires long sequences of *arbitrary*
//! system calls (including garbage pointers and denied operations) from A
//! and B, and checks after every step that `total_wf` holds, that
//! `memory_iso` / `endpoint_iso` are preserved, and that the other
//! domain's observable state is byte-identical.

use atmo_pm::types::{CtnrPtr, EdptPtr, ProcPtr, ThrdPtr};
use atmo_spec::harness::{check, Invariant, VerifResult};
use atmo_spec::Map;

use crate::abs::{AbsSpace, AbstractKernel};
use crate::iso::{domain_sets, endpoint_iso, memory_iso};
use crate::kernel::{Kernel, KernelConfig};
use crate::syscall::SyscallArgs;

/// A tiny deterministic PRNG (xorshift64*), so the fuzzer needs no
/// external dependency and every trial is reproducible from its seed.
#[derive(Clone, Debug)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Seeds the generator (zero is remapped).
    pub fn new(seed: u64) -> Self {
        XorShift64 {
            state: if seed == 0 { 0x9e3779b97f4a7c15 } else { seed },
        }
    }

    /// Next pseudo-random 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545f4914f6cdd1d)
    }

    /// Uniform value in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// Handles of the three-container configuration of Figure 1.
#[derive(Clone, Copy, Debug)]
pub struct AbvScenario {
    /// Untrusted container A and its process/thread.
    pub a: CtnrPtr,
    /// A's single process.
    pub pa: ProcPtr,
    /// A's single thread (runs on CPU 1).
    pub ta: ThrdPtr,
    /// Untrusted container B.
    pub b: CtnrPtr,
    /// B's single process.
    pub pb: ProcPtr,
    /// B's single thread (runs on CPU 2).
    pub tb: ThrdPtr,
    /// The verified shared container V.
    pub v: CtnrPtr,
    /// V's single process.
    pub pv: ProcPtr,
    /// V's single thread (runs on CPU 3).
    pub tv: ThrdPtr,
    /// Endpoint shared between V and A (V slot 0, A slot 0).
    pub ea: EdptPtr,
    /// Endpoint shared between V and B (V slot 1, B slot 0).
    pub eb: EdptPtr,
    /// A's CPU.
    pub cpu_a: usize,
    /// B's CPU.
    pub cpu_b: usize,
    /// V's CPU.
    pub cpu_v: usize,
}

/// Boots a kernel configured as in Figure 1: isolated containers A and B,
/// the verified service container V, and communication endpoints A↔V and
/// B↔V distributed by init (the trusted system composition step).
pub fn setup_abv() -> (Kernel, AbvScenario) {
    let mut k = Kernel::boot(KernelConfig {
        mem_mib: 64,
        ncpus: 4,
        root_quota: 2048,
    });

    let mk = |k: &mut Kernel, quota: usize, cpu: usize| -> (CtnrPtr, ProcPtr, ThrdPtr) {
        let c = k
            .syscall(
                0,
                SyscallArgs::NewContainer {
                    quota,
                    cpus: vec![cpu],
                },
            )
            .val0() as usize;
        let p = k.syscall(0, SyscallArgs::NewProcess { cntr: c }).val0() as usize;
        let t = k.syscall(0, SyscallArgs::NewThread { proc: p, cpu }).val0() as usize;
        // Dispatch the thread so it is running on its CPU.
        k.pm.timer_tick(cpu);
        (c, p, t)
    };

    let (a, pa, ta) = mk(&mut k, 256, 1);
    let (b, pb, tb) = mk(&mut k, 256, 2);
    let (v, pv, tv) = mk(&mut k, 256, 3);

    // V creates its two service endpoints (slots 0 and 1) while running.
    let ea = k.syscall(3, SyscallArgs::NewEndpoint { slot: 0 }).val0() as usize;
    let eb = k.syscall(3, SyscallArgs::NewEndpoint { slot: 1 }).val0() as usize;
    // Init distributes the capabilities: A gets ea, B gets eb.
    k.pm.install_descriptor(ta, 0, ea).unwrap();
    k.pm.install_descriptor(tb, 0, eb).unwrap();

    (
        k,
        AbvScenario {
            a,
            pa,
            ta,
            b,
            pb,
            tb,
            v,
            pv,
            tv,
            ea,
            eb,
            cpu_a: 1,
            cpu_b: 2,
            cpu_v: 3,
        },
    )
}

/// The observable state of one container group: everything a program in
/// the group could learn through the system-call interface about its own
/// objects — containers, processes, threads, the endpoints it can name,
/// and its address spaces.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ObsState {
    containers: Map<usize, atmo_pm::Container>,
    processes: Map<usize, atmo_pm::Process>,
    threads: Map<usize, atmo_pm::Thread>,
    endpoints: Map<usize, atmo_pm::Endpoint>,
    spaces: Map<usize, AbsSpace>,
}

/// Projects the observable state of the group rooted at `root`.
pub fn observable_state(psi: &AbstractKernel, root: CtnrPtr) -> ObsState {
    let dom = domain_sets(psi, root);
    let containers = psi.pm.containers.restrict(|c| dom.containers.contains(c));
    let processes = psi.pm.processes.restrict(|p| dom.processes.contains(p));
    let threads = psi.pm.threads.restrict(|t| dom.threads.contains(t));
    // Endpoints the group can name: referenced by a descriptor of one of
    // its threads, or charged to one of its containers.
    let mut reachable = atmo_spec::Set::empty();
    for t in dom.threads.iter() {
        for d in psi.get_thrd_edpt_descriptors(*t).into_iter().flatten() {
            reachable = reachable.insert(d);
        }
    }
    let endpoints = psi.pm.endpoints.restrict(|e| {
        reachable.contains(e) || {
            psi.get_endpoint(*e)
                .map(|ep| dom.containers.contains(&ep.owning_cntr))
                .unwrap_or(false)
        }
    });
    let mut spaces = Map::empty();
    for p in dom.processes.iter() {
        if let Some(proc) = psi.get_process(*p) {
            if let Some(space) = psi.spaces.index(&proc.addr_space) {
                spaces = spaces.insert(proc.addr_space, space.clone());
            }
        }
    }
    ObsState {
        containers,
        processes,
        threads,
        endpoints,
        spaces,
    }
}

/// Generates an arbitrary system call with arbitrary (often invalid)
/// arguments, as the non-interference theorem requires ("arbitrary system
/// calls with arbitrary system call arguments", §4.3).
pub fn arbitrary_syscall(rng: &mut XorShift64, scenario: &AbvScenario) -> SyscallArgs {
    // A grab-bag of pointers: own objects, foreign objects, garbage.
    let ptrs = [
        scenario.a,
        scenario.b,
        scenario.v,
        scenario.pa,
        scenario.pb,
        scenario.ta,
        scenario.tb,
        scenario.ea,
        scenario.eb,
        0xdead_b000,
        0,
    ];
    let pick_ptr = |rng: &mut XorShift64| ptrs[rng.below(ptrs.len() as u64) as usize];
    let va = (0x40_0000 + rng.below(64) * 0x1000) as usize;
    match rng.below(14) {
        0 => SyscallArgs::Mmap {
            va_base: va,
            len: 1 + rng.below(4) as usize,
            writable: rng.below(2) == 0,
        },
        1 => SyscallArgs::Munmap {
            va_base: va,
            len: 1 + rng.below(4) as usize,
        },
        2 => SyscallArgs::NewContainer {
            quota: rng.below(32) as usize,
            cpus: vec![],
        },
        3 => SyscallArgs::TerminateContainer {
            cntr: pick_ptr(rng),
        },
        4 => SyscallArgs::NewProcess {
            cntr: pick_ptr(rng),
        },
        5 => SyscallArgs::TerminateProcess {
            proc: pick_ptr(rng),
        },
        6 => SyscallArgs::NewThread {
            proc: pick_ptr(rng),
            cpu: rng.below(4) as usize,
        },
        7 => SyscallArgs::NewEndpoint {
            slot: rng.below(18) as usize,
        },
        8 => SyscallArgs::Send {
            slot: rng.below(3) as usize,
            scalars: [rng.next_u64(), 0, 0, 0],
            grant_page_va: if rng.below(3) == 0 { Some(va) } else { None },
            grant_endpoint_slot: if rng.below(4) == 0 { Some(0) } else { None },
            grant_iommu_domain: None,
        },
        9 => SyscallArgs::Poll {
            slot: rng.below(3) as usize,
        },
        10 => SyscallArgs::Reply {
            scalars: [rng.next_u64(), 0, 0, 0],
        },
        11 => SyscallArgs::TakeMsg,
        12 => SyscallArgs::MapGranted { va },
        _ => SyscallArgs::Yield,
    }
}

/// Runs one non-interference trial: `steps` arbitrary syscalls fired
/// alternately (pseudo-randomly) from A's and B's threads. After each
/// step checks `total_wf`, preservation of both isolation invariants, and
/// step consistency for the *other* domain.
pub fn run_noninterference_trial(steps: usize, seed: u64) -> VerifResult {
    let (mut k, sc) = setup_abv();
    let mut rng = XorShift64::new(seed);

    let psi0 = k.view();
    let da0 = domain_sets(&psi0, sc.a);
    let db0 = domain_sets(&psi0, sc.b);
    check(
        memory_iso(&psi0, &da0.processes, &db0.processes),
        "noninterference",
        "initial memory_iso violated",
    )?;
    check(
        endpoint_iso(&psi0, &da0.threads, &db0.threads),
        "noninterference",
        "initial endpoint_iso violated",
    )?;

    for step in 0..steps {
        let from_a = rng.below(2) == 0;
        let (cpu, other_root) = if from_a {
            (sc.cpu_a, sc.b)
        } else {
            (sc.cpu_b, sc.a)
        };
        // The acting domain must have a running thread; if its only thread
        // blocked, unblock the CPU via a tick (idle CPUs skip the step).
        if k.pm.sched.current(cpu).is_none() && k.pm.timer_tick(cpu).is_none() {
            continue;
        }

        let pre = k.view();
        let obs_other_pre = observable_state(&pre, other_root);
        let args = arbitrary_syscall(&mut rng, &sc);
        let _ret = k.syscall(cpu, args.clone());

        k.wf()?;
        let post = k.view();

        // Step consistency: the other domain's observable state is
        // untouched by this arbitrary syscall.
        let obs_other_post = observable_state(&post, other_root);
        check(
            obs_other_pre == obs_other_post,
            "noninterference",
            format!(
                "step {step}: `{args:?}` from {} changed the other domain",
                if from_a { "A" } else { "B" }
            ),
        )?;

        // Isolation invariants are preserved.
        let da = domain_sets(&post, sc.a);
        let db = domain_sets(&post, sc.b);
        check(
            memory_iso(&post, &da.processes, &db.processes),
            "noninterference",
            format!("step {step}: memory_iso violated after `{args:?}`"),
        )?;
        check(
            endpoint_iso(&post, &da.threads, &db.threads),
            "noninterference",
            format!("step {step}: endpoint_iso violated after `{args:?}`"),
        )?;
    }
    Ok(())
}

/// Output consistency: replaying an identical trace on two identically
/// booted kernels yields identical return values and final states.
pub fn check_output_consistency(steps: usize, seed: u64) -> VerifResult {
    let run = |steps: usize, seed: u64| {
        let (mut k, sc) = setup_abv();
        let mut rng = XorShift64::new(seed);
        let mut rets = Vec::new();
        for _ in 0..steps {
            let from_a = rng.below(2) == 0;
            let cpu = if from_a { sc.cpu_a } else { sc.cpu_b };
            if k.pm.sched.current(cpu).is_none() && k.pm.timer_tick(cpu).is_none() {
                continue;
            }
            let args = arbitrary_syscall(&mut rng, &sc);
            rets.push(k.syscall(cpu, args));
        }
        (k.view(), rets)
    };
    let (v1, r1) = run(steps, seed);
    let (v2, r2) = run(steps, seed);
    check(
        r1 == r2,
        "noninterference",
        "output consistency: returns differ",
    )?;
    check(
        v1 == v2,
        "noninterference",
        "output consistency: states differ",
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use atmo_spec::harness::Invariant;

    #[test]
    fn abv_setup_is_wf_and_isolated() {
        let (k, sc) = setup_abv();
        assert!(k.wf().is_ok(), "{:?}", k.wf());
        let psi = k.view();
        let da = domain_sets(&psi, sc.a);
        let db = domain_sets(&psi, sc.b);
        let dv = domain_sets(&psi, sc.v);
        assert!(memory_iso(&psi, &da.processes, &db.processes));
        assert!(endpoint_iso(&psi, &da.threads, &db.threads));
        // A and V deliberately share ea — they are NOT endpoint-isolated.
        assert!(!endpoint_iso(&psi, &da.threads, &dv.threads));
    }

    #[test]
    fn short_noninterference_trial_passes() {
        run_noninterference_trial(60, 0xabcd).unwrap();
    }

    #[test]
    fn output_consistency_short() {
        check_output_consistency(40, 7).unwrap();
    }

    #[test]
    fn observable_state_sees_own_objects_only() {
        let (k, sc) = setup_abv();
        let psi = k.view();
        let obs_a = observable_state(&psi, sc.a);
        assert!(obs_a.containers.contains_key(&sc.a));
        assert!(!obs_a.containers.contains_key(&sc.b));
        assert!(obs_a.threads.contains_key(&sc.ta));
        assert!(!obs_a.threads.contains_key(&sc.tb));
        // A can name ea (shared with V) but not eb.
        assert!(obs_a.endpoints.contains_key(&sc.ea));
        assert!(!obs_a.endpoints.contains_key(&sc.eb));
    }

    #[test]
    fn prng_is_deterministic() {
        let mut a = XorShift64::new(42);
        let mut b = XorShift64::new(42);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        assert_ne!(XorShift64::new(1).next_u64(), XorShift64::new(2).next_u64());
    }
}
