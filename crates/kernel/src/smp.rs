//! The sharded SMP kernel: per-subsystem lock domains instead of one
//! big lock.
//!
//! [`BigLockKernel`](crate::kernel::BigLockKernel) serializes *every*
//! system call behind a single mutex — correct, and exactly the model
//! the refinement proof covers, but all cores contend on one lock.
//! [`SmpKernel`] splits the kernel state into independently locked
//! domains so a dispatch acquires only the domains its system call
//! touches:
//!
//! * **pm domain** — the process manager (containers, processes,
//!   threads, endpoints, scheduler) plus the IRQ handler table. Every
//!   syscall takes this lock: the current thread lives here.
//! * **mem domain** — the page allocator, the VM subsystem (page
//!   tables, IOMMU) and the grant/IOMMU bookkeeping tables. Taken
//!   *lazily*: pm-only calls (yield, IPC, thread creation served from
//!   the page cache) never touch it.
//! * **trace** — already internally concurrent
//!   ([`TraceHandle`](atmo_trace::TraceHandle) shards per CPU); never
//!   needs an outer lock.
//!
//! plus per-CPU leaves: each CPU's cycle meter and its free-page cache.
//! The cache gives the hot allocation path its fast path — kernel
//! objects are built from cached frames without the mem lock, which is
//! only taken briefly for batch refill/drain.
//!
//! # Lock order
//!
//! The total acquisition order (checked at runtime under the
//! `lock-order-checks` feature) is
//!
//! ```text
//! meter(cpu) → pm → hw → snapshot → cache(cpu) → mem      [trace: leaf]
//! ```
//!
//! Publicly: **pm before mem before trace**. The multi-acquire levels
//! (meters, caches) are only taken for more than one CPU by the
//! stop-the-world path, in ascending CPU order.
//!
//! # Staged calls
//!
//! `Mmap`/`Munmap` need pm (quota) *and* mem (frames, tables) for many
//! pages. Holding both for the whole loop would serialize pm-only
//! traffic behind page zeroing, so they run *staged*: validate and
//! charge under pm, release pm, do the page work under mem, and on
//! failure re-acquire pm (order-legal — mem was released first) to
//! return the quota. Between the stages another CPU can observe the
//! quota charged but no pages mapped; that errs in the safe direction
//! and the abstract spec (`noop-on-error`, exact-on-success) still
//! holds at the return point.
//!
//! # `total_wf`
//!
//! Per-domain invariants hold under each domain's own lock; the
//! cross-domain equations (closure partition, leak freedom) are only
//! meaningful with *all* locks held and every per-CPU cache drained.
//! [`SmpKernel::audit_total_wf`] is that stop-the-world audit: it
//! assembles the domains back into a flat [`Kernel`] and runs its
//! `wf()`.

use std::collections::BTreeMap;

use atmo_hw::cycles::{CostModel, CycleMeter};
use atmo_hw::machine::Machine;
use atmo_mem::{CacheStats, PageCache};
use atmo_nr::AppendStats;
use atmo_pm::types::{CpuId, CtnrPtr, ProcPtr, ThrdPtr};
use atmo_pm::ProcessManager;
use atmo_spec::harness::{check, Invariant, VerifResult};
use atmo_spec::lock_recovering;
use atmo_trace::{LockDomain, NrOutcome, Snapshot, TraceHandle};

use crate::audit::{AuditState, Auditor};
use crate::domain::{DomainLock, LockLevel};
use crate::kernel::{Kernel, MemDomain};
use crate::nr::{pm_update_class, KernelNr, MemOp, MemView, PmOp, PmUpdateClass, PmView};
use crate::syscall::{
    dispatch_current, mmap_stage_mem, mmap_stage_pm, munmap_stage_mem, munmap_stage_pm,
    stage_validate, uncharge_stage_pm, ExecCtx, MemAccess, SyscallArgs, SyscallError,
    SyscallReturn,
};

/// The pm lock domain's contents: the process manager and the IRQ
/// handler table (interrupt dispatch reads the scheduler anyway, so the
/// table rides in the same domain).
pub struct PmShard {
    /// Containers, processes, threads, endpoints, scheduler.
    pub pm: ProcessManager,
    /// vector → driver thread registrations.
    pub(crate) irq_handlers: BTreeMap<u8, ThrdPtr>,
}

/// The sharded kernel: one lock per domain, per-CPU meters and page
/// caches, a concurrent trace sink.
///
/// The domain slots are `Option`s so the stop-the-world path can `take`
/// them and assemble a flat [`Kernel`]; a successful lock acquisition
/// outside that path always observes `Some`.
pub struct SmpKernel {
    /// The modeled cost table (immutable after boot; copied freely).
    costs: CostModel,
    /// The root container (immutable identity).
    root_container: CtnrPtr,
    /// The init process (immutable identity).
    init_proc: ProcPtr,
    /// The init thread (immutable identity).
    init_thread: ThrdPtr,
    /// Number of CPUs (== meters.len() == caches.len()).
    ncpus: usize,
    /// Per-CPU cycle meters — level 0, the first thing a dispatch takes.
    meters: Vec<DomainLock<CycleMeter>>,
    /// The pm domain.
    pm: DomainLock<Option<PmShard>>,
    /// The hardware shell (interrupt controller; meters live above).
    hw: DomainLock<Option<Machine>>,
    /// The last-snapshot slot served by `SyscallArgs::TraceSnapshot`.
    snap: DomainLock<Option<Snapshot>>,
    /// Per-CPU free-page caches.
    caches: Vec<DomainLock<PageCache>>,
    /// The mem domain.
    mem: DomainLock<Option<MemDomain>>,
    /// The concurrent trace sink (leaf; internally sharded).
    trace: TraceHandle,
    /// The incremental auditor: folded cross-domain state plus its
    /// reusable ledger-drain scratch. `None` until
    /// [`enable_incremental_audit`](Self::enable_incremental_audit)
    /// baselines it. Ordered *above* every domain lock: it is always
    /// taken first and never while a domain lock is held, so the audit
    /// path cannot deadlock against dispatch.
    auditor: std::sync::Mutex<Option<Auditor>>,
    /// The node-replicated read layer: per-CPU [`PmView`]/[`MemView`]
    /// replicas over per-domain op logs (see [`crate::nr`]). `None`
    /// until [`enable_nr`](Self::enable_nr) baselines it — and with it
    /// unset, every dispatch is cycle-for-cycle identical to the plain
    /// sharded kernel (no appends, no replica charges). All replica
    /// internals are leaf mutexes, orderable under any domain lock.
    nr: std::sync::OnceLock<KernelNr>,
}

impl SmpKernel {
    /// Shards a booted [`Kernel`] into lock domains.
    pub fn new(kernel: Kernel) -> Self {
        let Kernel {
            machine,
            pm,
            mem,
            root_container,
            init_proc,
            init_thread,
            irq_handlers,
            trace,
            last_trace_snapshot,
        } = kernel;
        let costs = machine.costs;
        let ncpus = machine.cores.len();
        let meters = machine
            .cores
            .iter()
            .map(|c| DomainLock::new(c.meter.clone(), LockLevel::Meter, None, trace.clone()))
            .collect();
        let caches = (0..ncpus)
            .map(|c| {
                let mut cache = PageCache::new(c);
                // Cache fills/drains move frames in and out of the
                // closure equations; the incremental auditor needs them
                // in the ledger.
                cache.attach_trace(trace.clone());
                DomainLock::new(cache, LockLevel::Cache, None, trace.clone())
            })
            .collect();
        SmpKernel {
            costs,
            root_container,
            init_proc,
            init_thread,
            ncpus,
            meters,
            pm: DomainLock::new(
                Some(PmShard { pm, irq_handlers }),
                LockLevel::Pm,
                Some(LockDomain::Pm),
                trace.clone(),
            ),
            hw: DomainLock::new(Some(machine), LockLevel::Hw, None, trace.clone()),
            snap: DomainLock::new(
                last_trace_snapshot,
                LockLevel::Snapshot,
                None,
                trace.clone(),
            ),
            caches,
            mem: DomainLock::new(
                Some(mem),
                LockLevel::Mem,
                Some(LockDomain::Mem),
                trace.clone(),
            ),
            trace,
            auditor: std::sync::Mutex::new(None),
            nr: std::sync::OnceLock::new(),
        }
    }

    /// Turns on node-replicated reads: projects the authoritative pm
    /// and mem state (under both domain locks, so the baselines are a
    /// consistent cut) into per-CPU replicas. From here on the
    /// replicated read syscalls (`getpid`, `thread_lookup`,
    /// `descriptor_resolve`, `vm_resolve`) are served from the calling
    /// CPU's replica without touching any domain lock or model clock,
    /// and every locked mutation appends its summary op to the logs.
    ///
    /// Idempotent: a second call is a no-op (the live logs already
    /// carry the history; re-baselining would fork it).
    pub fn enable_nr(&self) {
        let mut pm_g = self.pm.lock(0);
        let mut mem_g = self.mem.lock(0);
        let shard = pm_g.as_mut().expect("pm domain present under its lock");
        let pm_view = PmView::project(&shard.pm, self.ncpus);
        let mem_view = MemView::project(
            &mem_g
                .as_mut()
                .expect("mem domain present under its lock")
                .vm,
        );
        let _ = self.nr.set(KernelNr::new(self.ncpus, pm_view, mem_view));
    }

    /// The node-replication layer, when [`enable_nr`](Self::enable_nr)
    /// has baselined it.
    pub fn nr(&self) -> Option<&KernelNr> {
        self.nr.get()
    }

    /// Number of CPUs.
    pub fn ncpus(&self) -> usize {
        self.ncpus
    }

    /// The root container's pointer.
    pub fn root_container(&self) -> CtnrPtr {
        self.root_container
    }

    /// The init process's pointer.
    pub fn init_proc(&self) -> ProcPtr {
        self.init_proc
    }

    /// The init thread's pointer.
    pub fn init_thread(&self) -> ThrdPtr {
        self.init_thread
    }

    /// The shared trace handle.
    pub fn trace(&self) -> &TraceHandle {
        &self.trace
    }

    /// The system-call trap handler for `cpu` — the sharded counterpart
    /// of [`Kernel::syscall`]. Acquires only the domains the call
    /// touches; modeled time serializes through each domain's release
    /// timestamp exactly like the big lock's, but per domain.
    pub fn syscall(&self, cpu: CpuId, args: SyscallArgs) -> SyscallReturn {
        assert!(cpu < self.ncpus, "cpu {cpu} out of range");
        // Attribute this OS thread's trace emissions to `cpu`.
        self.trace.set_cpu(cpu);
        let mut meter_g = self.meters[cpu].lock(cpu);
        if args.staged_mem() {
            return self.syscall_staged(cpu, &mut meter_g, args);
        }
        // Node-replicated reads bypass every domain lock *and clock*:
        // the answer comes from the calling CPU's replica, so sixteen
        // readers never serialize through the pm domain's model time.
        if args.nr_read() {
            if let Some(nr) = self.nr.get() {
                return self.syscall_nr_read(cpu, &mut meter_g, nr, args);
            }
        }

        // The entry trampoline is per-CPU work — trap, save state,
        // decode — so it runs before any shared lock is taken.
        let kind = args.trace_kind();
        let entered = meter_g.now();
        self.trace.syscall_enter(cpu, kind);
        meter_g.charge(self.costs.syscall_entry);
        // How this call's pm-side effects will be summarized into the
        // replication log (computed up front; `args` moves into the
        // dispatcher).
        let nr_class = pm_update_class(&args);

        let mut pm_g = self.pm.lock(cpu);
        // Lock serialization in modeled time: a CPU entering the domain
        // observes at least the clock of the CPU that left it last.
        self.sync_meter(&mut meter_g, self.pm.model_time(), LockDomain::Pm);
        // The snapshot slot is its own domain, locked only by the one
        // call that writes it.
        let mut snap_g = if matches!(args, SyscallArgs::TraceSnapshot) {
            Some(self.snap.lock(cpu))
        } else {
            None
        };
        let mut cache_g = self.caches[cpu].lock(cpu);
        // Pre-dispatch scheduler snapshot: lets the append below elide
        // the `CurrentAll` op when the call turns out not to have moved
        // any CPU's `current` (the common single-runnable-thread yield).
        let nr_pre_current = match (self.nr.get(), nr_class) {
            (Some(_), PmUpdateClass::Current) | (Some(_), PmUpdateClass::Structural) => {
                let shard = pm_g.as_ref().expect("pm domain present under its lock");
                Some(PmView::current_all(&shard.pm, self.ncpus))
            }
            _ => None,
        };
        let shard = pm_g.as_mut().expect("pm domain present under its lock");
        let mut ctx = ExecCtx {
            costs: self.costs,
            meter: &mut meter_g,
            pm: &mut shard.pm,
            trace: &self.trace,
            last_snapshot: snap_g.as_deref_mut(),
            mem: MemAccess::Shard {
                cpu,
                lock: &self.mem,
                cache: &mut cache_g,
                guard: None,
            },
        };
        let ret = dispatch_current(&mut ctx, cpu, args);
        let touched_mem = ctx.mem.holds_shared();
        // Mem-side replication append, under the still-held (lazily
        // acquired) mem guard — log order equals mem-lock order.
        if touched_mem {
            if let Some(nr) = self.nr.get() {
                let view = MemView::project(&ctx.mem.domain().vm);
                let stats = nr.mem.append(cpu, vec![MemOp::Reset(view)]);
                self.nr_append_charge(ctx.meter, stats);
            }
        }
        let now = ctx.meter.now();
        drop(ctx);
        if touched_mem {
            self.mem.set_model_time(now);
        }
        // Pm-side replication append, still under the pm lock.
        if let Some(nr) = self.nr.get() {
            if let Some(pre) = nr_pre_current {
                let shard = pm_g.as_ref().expect("pm domain present under its lock");
                let op = if nr_class == PmUpdateClass::Structural && ret.is_ok() {
                    Some(PmOp::Reset(PmView::project(&shard.pm, self.ncpus)))
                } else {
                    // Cheap class, or an error return (noop on the
                    // object tables by spec — only the scheduler's
                    // `current` may have moved, and when it did not,
                    // there is nothing to replicate).
                    let now = PmView::current_all(&shard.pm, self.ncpus);
                    (now != pre).then_some(PmOp::CurrentAll(now))
                };
                if let Some(op) = op {
                    let stats = nr.pm.append(cpu, vec![op]);
                    self.nr_append_charge(&mut meter_g, stats);
                }
            }
        }
        self.pm.set_model_time(meter_g.now());
        drop(cache_g);
        drop(snap_g);
        drop(pm_g);

        // The exit trampoline (restore state, sysret) is per-CPU again:
        // it charges after the domains' release timestamps were
        // published, so it never serializes behind another CPU.
        meter_g.charge(self.costs.syscall_exit);
        self.trace
            .syscall_exit(cpu, kind, ret.trace_class(), meter_g.now() - entered);
        ret
    }

    /// Syncs `meter` to a domain lock's release timestamp, recording
    /// the modeled wait — how far the acquirer's clock had to jump to
    /// observe the domain — into the per-domain `lock.wait_cycles`
    /// histogram (zero-wait acquisitions are recorded too; they are the
    /// uncontended baseline the percentiles are measured against).
    fn sync_meter(&self, meter: &mut CycleMeter, lock_model_time: u64, domain: LockDomain) {
        self.trace
            .lock_wait(domain, lock_model_time.saturating_sub(meter.now()));
        meter.sync_to(lock_model_time);
    }

    /// Charges and counts one replication-log append batch: a modeled
    /// cacheline copy per op appended and replayed, one ring doorbell
    /// per flat-combining flush. Ledger recording (for the incremental
    /// auditor's `NrAppended` balance) rides on the `Append` event.
    fn nr_append_charge(&self, meter: &mut CycleMeter, stats: AppendStats) {
        meter.charge(
            self.costs.copy_cacheline * (stats.appended + stats.replayed)
                + self.costs.ring_op * stats.combine_batches,
        );
        self.trace.nr_event(NrOutcome::Append, stats.appended);
        self.trace
            .nr_event(NrOutcome::CombineBatch, stats.combine_batches);
        self.trace.nr_event(NrOutcome::Replay, stats.replayed);
    }

    /// Charges and counts a read-side replica catch-up (a modeled
    /// cacheline copy per op replayed).
    fn nr_read_charge(&self, meter: &mut CycleMeter, replayed: u64) {
        meter.charge(self.costs.copy_cacheline * replayed);
        self.trace.nr_event(NrOutcome::Replay, replayed);
    }

    /// Serves a replicated read from `cpu`'s local replicas: replay to
    /// the published tail, answer from local state. No domain lock is
    /// taken and — the scaling point — the meter never syncs to a
    /// domain's model time, so concurrent readers advance only their
    /// own clocks. Error mapping matches the locked handlers exactly
    /// (the epoch cross-check keeps the states bit-identical, so the
    /// answers can only lag the authoritative state, never disagree
    /// with the tail they linearize at).
    fn syscall_nr_read(
        &self,
        cpu: CpuId,
        meter: &mut CycleMeter,
        nr: &KernelNr,
        args: SyscallArgs,
    ) -> SyscallReturn {
        let kind = args.trace_kind();
        let entered = meter.now();
        self.trace.syscall_enter(cpu, kind);
        meter.charge(self.costs.syscall_entry + self.costs.syscall_validate);
        let ret = match args {
            SyscallArgs::Getpid => {
                let (ans, rs) = nr.pm.execute_ro(cpu, |v| v.getpid(cpu));
                self.nr_read_charge(meter, rs.replayed);
                match ans {
                    Some((p, c)) => SyscallReturn::ok([p as u64, c as u64, 0, 0]),
                    None => SyscallReturn::err(SyscallError::WrongState),
                }
            }
            SyscallArgs::ThreadLookup { thread } => {
                let (ans, rs) = nr.pm.execute_ro(cpu, |v| {
                    (v.current_thread(cpu).is_some(), v.thread_lookup(thread))
                });
                self.nr_read_charge(meter, rs.replayed);
                match ans {
                    (false, _) => SyscallReturn::err(SyscallError::WrongState),
                    (true, Some((p, c))) => SyscallReturn::ok([p as u64, c as u64, 0, 0]),
                    (true, None) => SyscallReturn::err(SyscallError::NotFound),
                }
            }
            SyscallArgs::DescriptorResolve { slot } => {
                let (ans, rs) = nr.pm.execute_ro(cpu, |v| {
                    (
                        v.current_thread(cpu).is_some(),
                        v.descriptor_resolve(cpu, slot),
                    )
                });
                self.nr_read_charge(meter, rs.replayed);
                match ans {
                    (false, _) => SyscallReturn::err(SyscallError::WrongState),
                    (true, Some(e)) => SyscallReturn::ok([e as u64, 0, 0, 0]),
                    (true, None) => SyscallReturn::err(SyscallError::NotFound),
                }
            }
            SyscallArgs::VmResolve { va } => {
                meter.charge(self.costs.pt_walk_cached_read);
                let (space, rs) = nr.pm.execute_ro(cpu, |v| v.current_addr_space(cpu));
                self.nr_read_charge(meter, rs.replayed);
                match space {
                    None => SyscallReturn::err(SyscallError::WrongState),
                    Some(as_id) => {
                        // Cross-domain read: the mapping answer comes
                        // from the mem replica, no staler than *its*
                        // log's tail.
                        let (w, rs) = nr.mem.execute_ro(cpu, |m| m.resolve(as_id, va));
                        self.nr_read_charge(meter, rs.replayed);
                        match w {
                            Some(w) => SyscallReturn::ok([1, w as u64, 0, 0]),
                            // An unmapped address is a successful "no".
                            None => SyscallReturn::ok([0, 0, 0, 0]),
                        }
                    }
                }
            }
            _ => unreachable!("nr_read() admits only replica-served reads"),
        };
        self.trace.nr_event(NrOutcome::ReadLocal, 1);
        meter.charge(self.costs.syscall_exit);
        self.trace
            .syscall_exit(cpu, kind, ret.trace_class(), meter.now() - entered);
        ret
    }

    /// The staged two-phase trampoline for `Mmap`/`Munmap` (see the
    /// module docs): pm stage, release pm, mem stage, then a pm
    /// epilogue for the quota adjustment.
    fn syscall_staged(
        &self,
        cpu: CpuId,
        meter: &mut CycleMeter,
        args: SyscallArgs,
    ) -> SyscallReturn {
        let kind = args.trace_kind();
        let entered = meter.now();
        self.trace.syscall_enter(cpu, kind);
        meter.charge(self.costs.syscall_entry);

        let ret = match args {
            SyscallArgs::Mmap {
                va_base,
                len,
                writable,
            } => self.staged_mmap(cpu, meter, va_base, len, writable),
            SyscallArgs::Munmap { va_base, len } => self.staged_munmap(cpu, meter, va_base, len),
            _ => unreachable!("staged_mem() admits only Mmap/Munmap"),
        };

        meter.charge(self.costs.syscall_exit);
        self.trace
            .syscall_exit(cpu, kind, ret.trace_class(), meter.now() - entered);
        ret
    }

    /// Staged `mmap`: validate (lock-free) → pm stage (quota) → mem
    /// stage (allocator + page tables) → pm epilogue on failure.
    fn staged_mmap(
        &self,
        cpu: CpuId,
        meter: &mut CycleMeter,
        va_base: usize,
        len: usize,
        writable: bool,
    ) -> SyscallReturn {
        let range = match stage_validate(&self.costs, meter, va_base, len) {
            Ok(range) => range,
            Err(ret) => return ret,
        };
        let plan = {
            let mut pm_g = self.pm.lock(cpu);
            self.sync_meter(meter, self.pm.model_time(), LockDomain::Pm);
            let shard = pm_g.as_mut().expect("pm domain present");
            let r = mmap_stage_pm(&mut shard.pm, cpu, range, len, writable);
            if let Ok(plan) = &r {
                // The quota charge is the stage's only pm mutation:
                // append its absolute gauge while the lock still
                // serializes us.
                self.nr_append_quota(cpu, meter, &shard.pm, plan.cntr);
            }
            drop(pm_g);
            self.pm.set_model_time(meter.now());
            r
        };
        let plan = match plan {
            Ok(plan) => plan,
            Err(ret) => return ret,
        };
        let ret = {
            let mut mem_g = self.mem.lock(cpu);
            self.sync_meter(meter, self.mem.model_time(), LockDomain::Mem);
            let m = mem_g.as_mut().expect("mem domain present");
            let r = mmap_stage_mem(&self.costs, meter, m, &plan);
            if r.is_ok() {
                self.nr_append_range(cpu, meter, m, &plan);
            }
            drop(mem_g);
            self.mem.set_model_time(meter.now());
            r
        };
        if !ret.is_ok() {
            // Stage 2 failed: give the quota back. Mem is released, so
            // re-taking pm respects the order.
            self.staged_uncharge(cpu, meter, plan.cntr, plan.len);
        }
        ret
    }

    /// Staged `munmap`: validate (lock-free) → pm stage → mem stage →
    /// pm epilogue on success (quota release).
    fn staged_munmap(
        &self,
        cpu: CpuId,
        meter: &mut CycleMeter,
        va_base: usize,
        len: usize,
    ) -> SyscallReturn {
        let range = match stage_validate(&self.costs, meter, va_base, len) {
            Ok(range) => range,
            Err(ret) => return ret,
        };
        let plan = {
            let mut pm_g = self.pm.lock(cpu);
            self.sync_meter(meter, self.pm.model_time(), LockDomain::Pm);
            let shard = pm_g.as_mut().expect("pm domain present");
            let r = munmap_stage_pm(&mut shard.pm, cpu, range, len);
            drop(pm_g);
            self.pm.set_model_time(meter.now());
            r
        };
        let plan = match plan {
            Ok(plan) => plan,
            Err(ret) => return ret,
        };
        let ret = {
            let mut mem_g = self.mem.lock(cpu);
            self.sync_meter(meter, self.mem.model_time(), LockDomain::Mem);
            let m = mem_g.as_mut().expect("mem domain present");
            let r = munmap_stage_mem(&self.costs, meter, m, &plan);
            if r.is_ok() {
                self.nr_append_range(cpu, meter, m, &plan);
            }
            drop(mem_g);
            self.mem.set_model_time(meter.now());
            r
        };
        if ret.is_ok() {
            // Unmap succeeded: release the quota.
            self.staged_uncharge(cpu, meter, plan.cntr, plan.len);
        }
        ret
    }

    /// The pm-side quota epilogue of a staged call.
    fn staged_uncharge(&self, cpu: CpuId, meter: &mut CycleMeter, cntr: CtnrPtr, pages: usize) {
        let mut pm_g = self.pm.lock(cpu);
        self.sync_meter(meter, self.pm.model_time(), LockDomain::Pm);
        let shard = pm_g.as_mut().expect("pm domain present");
        uncharge_stage_pm(&mut shard.pm, cntr, pages);
        self.nr_append_quota(cpu, meter, &shard.pm, cntr);
        drop(pm_g);
        self.pm.set_model_time(meter.now());
    }

    /// Appends one container's post-mutation quota gauge to the pm log
    /// (no-op with replication off). Caller holds the pm lock.
    fn nr_append_quota(
        &self,
        cpu: CpuId,
        meter: &mut CycleMeter,
        pm: &ProcessManager,
        cntr: CtnrPtr,
    ) {
        if let Some(nr) = self.nr.get() {
            let c = pm.cntr(cntr);
            let stats = nr.pm.append(
                cpu,
                vec![PmOp::QuotaSet {
                    cntr,
                    used: c.used,
                    quota: c.quota,
                }],
            );
            self.nr_append_charge(meter, stats);
        }
    }

    /// Appends the staged range's post-commit mapping summaries — read
    /// back from the authoritative page table, so the op states exactly
    /// what the locked mutation produced — to the mem log (no-op with
    /// replication off). Caller holds the mem lock. Serves both staged
    /// calls: after an mmap every page reads back `Some`, after a
    /// munmap `None`.
    fn nr_append_range(
        &self,
        cpu: CpuId,
        meter: &mut CycleMeter,
        m: &MemDomain,
        plan: &crate::syscall::MemStagePlan,
    ) {
        if let Some(nr) = self.nr.get() {
            let pages = plan
                .range
                .iter()
                .map(|va| {
                    let w =
                        m.vm.table(plan.as_id)
                            .and_then(|t| t.map_4k.index(&va.as_usize()).map(|e| e.flags.writable));
                    (va.as_usize(), w)
                })
                .collect();
            let stats = nr.mem.append(
                cpu,
                vec![MemOp::MapRange {
                    space: plan.as_id,
                    pages,
                }],
            );
            self.nr_append_charge(meter, stats);
        }
    }

    /// Stops the world: takes *every* lock in order, drains the per-CPU
    /// page caches, assembles the domains into a flat [`Kernel`], and
    /// runs `f` on it. This is the compatibility bridge for everything
    /// that wants the unified view — interrupt dispatch, the verified
    /// services, and above all the `total_wf` audit.
    ///
    /// Meters are *not* synchronized here: the bridge is bookkeeping,
    /// not a modeled serialization point.
    pub fn with_kernel<R>(&self, f: impl FnOnce(&mut Kernel) -> R) -> R {
        // Every lock, ascending level; multi-acquire levels in CPU order.
        let mut meter_gs: Vec<_> = (0..self.ncpus).map(|c| self.meters[c].lock(c)).collect();
        let mut pm_g = self.pm.lock(0);
        let mut hw_g = self.hw.lock(0);
        let mut snap_g = self.snap.lock(0);
        let mut cache_gs: Vec<_> = (0..self.ncpus).map(|c| self.caches[c].lock(c)).collect();
        let mut mem_g = self.mem.lock(0);

        let shard = pm_g.take().expect("pm domain present");
        let mut machine = hw_g.take().expect("machine present");
        let mut mem = mem_g.take().expect("mem domain present");

        // Cached frames belong to no closure; the flat invariants only
        // hold with every cache drained back to the allocator.
        for cg in cache_gs.iter_mut() {
            cg.drain_all_to(&mut mem.alloc);
        }
        // The authoritative meters live in the meter locks.
        assert_eq!(machine.cores.len(), self.ncpus);
        for (core, mg) in machine.cores.iter_mut().zip(meter_gs.iter()) {
            core.meter = (**mg).clone();
        }

        let mut k = Kernel {
            machine,
            pm: shard.pm,
            mem,
            root_container: self.root_container,
            init_proc: self.init_proc,
            init_thread: self.init_thread,
            irq_handlers: shard.irq_handlers,
            trace: self.trace.clone(),
            last_trace_snapshot: snap_g.take(),
        };
        let r = f(&mut k);

        // The bridge's `f` may mutate anything — interrupt dispatch,
        // test plumbing, the verified services all come through here —
        // so with replication on, re-baseline both logs with absolute
        // `Reset` ops before the locks release. Bookkeeping, not a
        // modeled serialization point: events are counted (and the
        // ledger keeps its `NrAppended` balance) but no cycles charge.
        if let Some(nr) = self.nr.get() {
            let s1 = nr
                .pm
                .append(0, vec![PmOp::Reset(PmView::project(&k.pm, self.ncpus))]);
            let s2 = nr
                .mem
                .append(0, vec![MemOp::Reset(MemView::project(&k.mem.vm))]);
            self.trace
                .nr_event(NrOutcome::Append, s1.appended + s2.appended);
            self.trace.nr_event(
                NrOutcome::CombineBatch,
                s1.combine_batches + s2.combine_batches,
            );
            self.trace
                .nr_event(NrOutcome::Replay, s1.replayed + s2.replayed);
        }

        // Disassemble back into the domains.
        let Kernel {
            machine,
            pm,
            mem,
            irq_handlers,
            last_trace_snapshot,
            ..
        } = k;
        let mut now = 0;
        for (mg, core) in meter_gs.iter_mut().zip(machine.cores.iter()) {
            **mg = core.meter.clone();
            now = now.max(core.meter.now());
        }
        *pm_g = Some(PmShard { pm, irq_handlers });
        *hw_g = Some(machine);
        *snap_g = last_trace_snapshot;
        *mem_g = Some(mem);
        self.pm.set_model_time(now);
        self.mem.set_model_time(now);
        r
    }

    /// Baselines (or re-baselines) the incremental auditor and turns
    /// ledger recording on: a stop-the-world full scan captures the
    /// folded image of every audited set, stale ledger entries are
    /// discarded, and from here on every mutation's delta lands in its
    /// CPU's ledger for [`audit_incremental`](Self::audit_incremental)
    /// to fold.
    pub fn enable_incremental_audit(&self) {
        let mut aud = lock_recovering(&self.auditor);
        *aud = Some(self.with_kernel(|k| {
            // Stop recording while baselining and discard anything
            // recorded since the last baseline (including the deltas
            // this very stop-the-world's cache drain just emitted) —
            // the full scan already accounts for all of it.
            k.trace.set_audit_recording(false);
            let mut stale = Vec::new();
            k.trace.drain_audit_ledgers(&mut stale);
            let mut a = Auditor::baselined(k);
            // All locks are held here: the replication logs' tails are
            // quiescent, so this is a consistent zero for the
            // `NrAppended` balance. (The bridge's own trailing `Reset`
            // appends land *after* this capture, with recording back
            // on — ledger and tails grow together.)
            a.nr_base = self.nr.get().map(KernelNr::tails).unwrap_or((0, 0));
            k.trace.set_audit_recording(true);
            a
        }));
    }

    /// The incremental well-formedness audit: drains the per-CPU
    /// ledgers into the auditor's reusable scratch, folds each delta in
    /// O(1), and re-checks the cross-domain equations in O(1) — total
    /// cost O(touched ledger entries), with **no domain lock taken and
    /// no cache drained**. A failure names the lock domain, the refuted
    /// equation, and the ledger tail that was folded into it.
    ///
    /// # Panics
    ///
    /// Panics when [`enable_incremental_audit`](Self::enable_incremental_audit)
    /// has not baselined the auditor.
    pub fn audit_incremental(&self) -> VerifResult {
        let mut aud = lock_recovering(&self.auditor);
        let a = aud
            .as_mut()
            .expect("enable_incremental_audit() must run before audit_incremental()");
        Self::fold_and_check(&self.trace, a)
    }

    /// Drains, folds and checks under an already-held auditor lock;
    /// records the audit in the trace counters/histograms.
    fn fold_and_check(trace: &TraceHandle, a: &mut Auditor) -> VerifResult {
        let start = std::time::Instant::now();
        a.scratch.clear();
        trace.drain_audit_ledgers(&mut a.scratch);
        let touched = a.fold_scratch();
        let r = a
            .state
            .check(trace.net_in_flight(), trace.blk_in_flight())
            .map_err(|e| match a.scratch.last() {
                Some(d) => e.with_ledger_entry(format!("last of {touched} folded entries: {d:?}")),
                None => e,
            });
        trace.audit_event(true, touched, start.elapsed().as_nanos() as u64);
        r
    }

    /// The stop-the-world `total_wf` audit: all locks held, caches
    /// drained, flat invariants checked (per-domain wf, cross-domain
    /// memory equations, trace coherence). When the incremental auditor
    /// is live, the flat audit additionally reconciles the ledger folds
    /// against a fresh full scan bit-for-bit
    /// ([`AuditState::cross_check`]) — the epoch boundary that bounds
    /// how long a missed delta or fingerprint collision could survive.
    ///
    /// Every epoch audit is also an incremental audit point (the
    /// pending ledger is folded first), so the `incremental ≥ full`
    /// counter invariant holds by construction.
    pub fn audit_total_wf(&self) -> VerifResult {
        let mut aud = lock_recovering(&self.auditor);
        match aud.as_mut() {
            Some(a) => Self::fold_and_check(&self.trace, a)?,
            None => {
                // No ledger machinery: still count the paired
                // incremental audit point (zero entries touched).
                self.trace.audit_event(true, 0, 0);
            }
        }
        let start = std::time::Instant::now();
        let r = self.with_kernel(|k| {
            k.wf()?;
            if let Some(a) = aud.as_mut() {
                // The stop-the-world entry drained every cache,
                // emitting deltas after the incremental fold above;
                // fold them too before comparing against the flat scan.
                a.scratch.clear();
                k.trace.drain_audit_ledgers(&mut a.scratch);
                a.fold_scratch();
                let flat = AuditState::from_kernel(k);
                a.state.cross_check(&flat)?;
            }
            // Replica linearization at the epoch boundary: every
            // replica, synced to its log's tail, must be bit-for-bit
            // the projection of the authoritative locked state — and
            // the ledger's `NrAppended` running sum must balance the
            // tails' growth since the audit baseline.
            if let Some(nr) = self.nr.get() {
                nr.sync_all();
                nr.nr_wf()?;
                let pm_view = PmView::project(&k.pm, self.ncpus);
                let mem_view = MemView::project(&k.mem.vm);
                for cpu in 0..self.ncpus {
                    nr.pm.peek(cpu, |s, tail| {
                        check(
                            s == &pm_view,
                            "nr_epoch",
                            format!(
                                "pm replica {cpu} at tail {tail} diverges from the \
                                 authoritative projection"
                            ),
                        )
                    })?;
                    nr.mem.peek(cpu, |s, tail| {
                        check(
                            s == &mem_view,
                            "nr_epoch",
                            format!(
                                "mem replica {cpu} at tail {tail} diverges from the \
                                 authoritative projection"
                            ),
                        )
                    })?;
                }
                if let Some(a) = aud.as_ref() {
                    let (pt, mt) = nr.tails();
                    let grown = (pt - a.nr_base.0) + (mt - a.nr_base.1);
                    check(
                        a.state.nr_appended == grown,
                        "nr_epoch",
                        format!(
                            "ledger NrAppended sum {} != log-tail growth {grown} \
                             (pm {pt}, mem {mt}, base {:?})",
                            a.state.nr_appended, a.nr_base
                        ),
                    )?;
                }
            }
            Ok(())
        });
        self.trace
            .audit_event(false, 0, start.elapsed().as_nanos() as u64);
        r
    }

    /// Drains every per-CPU page cache back into the shared allocator
    /// (without assembling a flat kernel). After this, the allocator's
    /// free count reflects every cached frame again.
    pub fn drain_caches(&self) {
        let mut cache_gs: Vec<_> = (0..self.ncpus).map(|c| self.caches[c].lock(c)).collect();
        let mut mem_g = self.mem.lock(0);
        let m = mem_g.as_mut().expect("mem domain present");
        for cg in cache_gs.iter_mut() {
            cg.drain_all_to(&mut m.alloc);
        }
    }

    /// A point-in-time statistics snapshot of `cpu`'s page cache.
    pub fn cache_stats(&self, cpu: CpuId) -> CacheStats {
        self.caches[cpu].lock(cpu).stats()
    }

    /// Modeled cycles elapsed on `cpu`.
    pub fn cycles(&self, cpu: CpuId) -> u64 {
        self.meters[cpu].lock(cpu).now()
    }

    /// Snapshots the concurrent trace sink (no kernel locks needed —
    /// trace is a leaf domain with its own internal sharding).
    pub fn trace_snapshot(&self) -> Snapshot {
        self.trace.snapshot()
    }

    /// Dissolves the sharding and returns the flat [`Kernel`], caches
    /// drained.
    pub fn into_inner(self) -> Kernel {
        let SmpKernel {
            costs: _,
            root_container,
            init_proc,
            init_thread,
            ncpus: _,
            meters,
            pm,
            hw,
            snap,
            caches,
            mem,
            trace,
            auditor: _,
            nr: _,
        } = self;
        let shard = pm.into_inner().expect("pm domain present");
        let mut machine = hw.into_inner().expect("machine present");
        let mut mem = mem.into_inner().expect("mem domain present");
        for cache in caches {
            cache.into_inner().drain_all_to(&mut mem.alloc);
        }
        for (core, m) in machine.cores.iter_mut().zip(meters) {
            core.meter = m.into_inner();
        }
        Kernel {
            machine,
            pm: shard.pm,
            mem,
            root_container,
            init_proc,
            init_thread,
            irq_handlers: shard.irq_handlers,
            trace,
            last_trace_snapshot: snap.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelConfig;

    fn smp(ncpus: usize) -> SmpKernel {
        SmpKernel::new(Kernel::boot(KernelConfig {
            ncpus,
            ..KernelConfig::default()
        }))
    }

    #[test]
    fn sharded_boot_passes_total_wf_audit() {
        let k = smp(4);
        let audit = k.audit_total_wf();
        assert!(audit.is_ok(), "{audit:?}");
    }

    #[test]
    fn pm_only_syscall_never_takes_mem_lock() {
        let k = smp(2);
        let before = k.trace_snapshot().counters.locks.mem.acquisitions;
        let ret = k.syscall(0, SyscallArgs::Yield);
        assert!(ret.is_ok(), "{ret:?}");
        let after = k.trace_snapshot().counters.locks.mem.acquisitions;
        assert_eq!(before, after, "yield must not touch the mem domain");
    }

    #[test]
    fn fastpath_ipc_is_pm_only_and_audits_green() {
        // The tentpole lock-order claim, asserted: direct-handoff Call
        // and ReplyRecv acquire the pm domain only — the mem lock's
        // acquisition counter must not move across either trap.
        let k = smp(1);
        let init_proc = k.init_proc();
        let ret = k.syscall(0, SyscallArgs::NewEndpoint { slot: 0 });
        assert!(ret.is_ok(), "{ret:?}");
        let e = ret.val0() as usize;
        let ret = k.syscall(
            0,
            SyscallArgs::NewThread {
                proc: init_proc,
                cpu: 0,
            },
        );
        assert!(ret.is_ok(), "{ret:?}");
        let t2 = ret.val0() as usize;
        k.with_kernel(|flat| flat.pm.install_descriptor(t2, 0, e).unwrap());

        // Park t2 as the endpoint's receiver (see the pm-level tests):
        // t1 recv-blocks, t2 sends it awake, t2 recv-blocks.
        assert!(k.syscall(0, SyscallArgs::Recv { slot: 0 }).is_ok());
        let ret = k.syscall(
            0,
            SyscallArgs::Send {
                slot: 0,
                scalars: [0; 4],
                grant_page_va: None,
                grant_endpoint_slot: None,
                grant_iommu_domain: None,
            },
        );
        assert!(ret.is_ok(), "{ret:?}");
        assert!(k.syscall(0, SyscallArgs::Recv { slot: 0 }).is_ok());
        let _ = k.syscall(0, SyscallArgs::TakeMsg);

        let before = k.trace_snapshot().counters.locks.mem.acquisitions;
        let ret = k.syscall(
            0,
            SyscallArgs::Call {
                slot: 0,
                scalars: [1; 4],
            },
        );
        assert!(ret.is_ok(), "{ret:?}");
        assert_eq!(ret.val0(), 1, "expected the direct handoff");
        let _ = k.syscall(0, SyscallArgs::TakeMsg);
        let ret = k.syscall(
            0,
            SyscallArgs::ReplyRecv {
                slot: 0,
                scalars: [2; 4],
            },
        );
        assert!(ret.is_ok(), "{ret:?}");
        assert_eq!(ret.val0(), 1, "expected the direct handoff");
        let after = k.trace_snapshot().counters.locks.mem.acquisitions;
        assert_eq!(before, after, "fastpath IPC must never take the mem lock");

        let snap = k.trace_snapshot();
        assert_eq!(snap.counters.pm.fastpath.hits, 2);
        let audit = k.audit_total_wf();
        assert!(audit.is_ok(), "{audit:?}");
    }

    #[test]
    fn staged_mmap_matches_unified_cycle_charges() {
        // The same call on the unified kernel and the sharded kernel
        // must charge identical cycles (the staged protocol reshuffles
        // *when* costs are paid, never *how much*).
        let mut uni = Kernel::boot(KernelConfig::default());
        let args = SyscallArgs::Mmap {
            va_base: 0x40_0000,
            len: 8,
            writable: true,
        };
        let r1 = uni.syscall(0, args.clone());
        assert!(r1.is_ok());
        let uni_cycles = uni.cycles(0);

        let shard = smp(1);
        let r2 = shard.syscall(0, args);
        assert!(r2.is_ok());
        assert_eq!(r2.result, r1.result);
        assert_eq!(shard.cycles(0), uni_cycles);
    }

    #[test]
    fn staged_mmap_failure_refunds_quota() {
        let k = smp(1);
        let ret = k.syscall(
            0,
            SyscallArgs::Mmap {
                va_base: 0x50_0000,
                len: 4,
                writable: true,
            },
        );
        assert!(ret.is_ok());
        // Second map over the same range faults in stage 2 (already
        // mapped) — stage 1's quota charge must be refunded.
        let used_before = k.with_kernel(|flat| flat.pm.cntr(flat.root_container).used);
        let ret = k.syscall(
            0,
            SyscallArgs::Mmap {
                va_base: 0x50_0000,
                len: 4,
                writable: true,
            },
        );
        assert!(!ret.is_ok(), "double map must fail");
        let used_after = k.with_kernel(|flat| flat.pm.cntr(flat.root_container).used);
        assert_eq!(used_before, used_after, "stage-2 failure leaked quota");
        assert!(k.audit_total_wf().is_ok());
    }

    #[test]
    fn mmap_munmap_roundtrip_on_shards_is_wf() {
        let k = smp(2);
        let ret = k.syscall(
            0,
            SyscallArgs::Mmap {
                va_base: 0x40_0000,
                len: 16,
                writable: true,
            },
        );
        assert!(ret.is_ok(), "{ret:?}");
        assert!(k.audit_total_wf().is_ok());
        let ret = k.syscall(
            0,
            SyscallArgs::Munmap {
                va_base: 0x40_0000,
                len: 16,
            },
        );
        assert!(ret.is_ok(), "{ret:?}");
        let audit = k.audit_total_wf();
        assert!(audit.is_ok(), "{audit:?}");
    }

    #[test]
    fn cache_refill_and_audit_balance() {
        let k = smp(1);
        // Thread creation allocates kernel objects through the per-CPU
        // cache; afterwards the cache holds the rest of the refill batch.
        let init_proc = k.init_proc();
        let ret = k.syscall(
            0,
            SyscallArgs::NewThread {
                proc: init_proc,
                cpu: 0,
            },
        );
        assert!(ret.is_ok(), "{ret:?}");
        assert!(
            k.cache_stats(0).refills > 0,
            "thread creation should have refilled the cache"
        );
        // The audit drains the caches, so the closure equations balance.
        let audit = k.audit_total_wf();
        assert!(audit.is_ok(), "{audit:?}");
    }

    #[test]
    fn domain_model_time_serializes_cross_cpu_syscalls() {
        let k = smp(2);
        let c0 = {
            let r = k.syscall(0, SyscallArgs::Yield);
            assert!(r.is_ok());
            k.cycles(0)
        };
        // CPU 1 has no current thread (errors), but its dispatch still
        // syncs to the pm domain's release time — modeled serialization.
        // Its exit trampoline charges after the sync, so it lands at
        // least at cpu 0's release stamp plus its own exit cost, which
        // is >= c0 (cpu 0's exit also charged outside the lock).
        let _ = k.syscall(1, SyscallArgs::Yield);
        assert!(
            k.cycles(1) >= c0,
            "cpu 1 must observe pm's release timestamp plus its own costs"
        );
    }

    #[test]
    fn incremental_audit_tracks_syscalls_without_domain_locks() {
        let k = smp(2);
        k.enable_incremental_audit();
        let pm_before = k.trace_snapshot().counters.locks.pm.acquisitions;
        let mem_before = k.trace_snapshot().counters.locks.mem.acquisitions;
        let audit = k.audit_incremental();
        assert!(audit.is_ok(), "{audit:?}");
        let snap = k.trace_snapshot();
        assert_eq!(
            snap.counters.locks.pm.acquisitions, pm_before,
            "incremental audit must not take the pm lock"
        );
        assert_eq!(
            snap.counters.locks.mem.acquisitions, mem_before,
            "incremental audit must not take the mem lock"
        );

        let ret = k.syscall(
            0,
            SyscallArgs::Mmap {
                va_base: 0x40_0000,
                len: 8,
                writable: true,
            },
        );
        assert!(ret.is_ok(), "{ret:?}");
        let audit = k.audit_incremental();
        assert!(audit.is_ok(), "{audit:?}");
        let ret = k.syscall(
            0,
            SyscallArgs::Munmap {
                va_base: 0x40_0000,
                len: 8,
            },
        );
        assert!(ret.is_ok(), "{ret:?}");
        let audit = k.audit_incremental();
        assert!(audit.is_ok(), "{audit:?}");

        // The epoch boundary reconciles folds against the full rescan.
        let audit = k.audit_total_wf();
        assert!(audit.is_ok(), "{audit:?}");
        let snap = k.trace_snapshot();
        assert!(snap.counters.audit.incremental >= snap.counters.audit.full);
        assert!(snap.counters.audit.touched_entries > 0);
    }

    #[test]
    fn incremental_audit_survives_cache_resident_frames() {
        // Thread creation leaves refill-batch frames in the per-CPU
        // cache; the incremental equations must hold *through* the
        // cache (closure-partition's `cached` term), with no drain.
        let k = smp(1);
        k.enable_incremental_audit();
        let init_proc = k.init_proc();
        let ret = k.syscall(
            0,
            SyscallArgs::NewThread {
                proc: init_proc,
                cpu: 0,
            },
        );
        assert!(ret.is_ok(), "{ret:?}");
        assert!(k.cache_stats(0).refills > 0);
        let audit = k.audit_incremental();
        assert!(audit.is_ok(), "{audit:?}");
        let audit = k.audit_total_wf();
        assert!(audit.is_ok(), "{audit:?}");
    }

    #[test]
    fn rebaseline_discards_stale_ledger() {
        let k = smp(1);
        k.enable_incremental_audit();
        let _ = k.syscall(
            0,
            SyscallArgs::Mmap {
                va_base: 0x40_0000,
                len: 4,
                writable: true,
            },
        );
        // Re-baselining must absorb the un-folded deltas into the new
        // baseline instead of double-folding them later.
        k.enable_incremental_audit();
        let audit = k.audit_incremental();
        assert!(audit.is_ok(), "{audit:?}");
        let audit = k.audit_total_wf();
        assert!(audit.is_ok(), "{audit:?}");
    }

    #[test]
    fn nr_reads_serve_from_replicas_without_pm_lock() {
        let k = smp(2);
        k.enable_nr();
        k.enable_incremental_audit();
        let pm_before = k.trace_snapshot().counters.locks.pm.acquisitions;
        let ret = k.syscall(0, SyscallArgs::Getpid);
        assert!(ret.is_ok(), "{ret:?}");
        assert_eq!(ret.val0() as usize, k.init_proc());
        let ret = k.syscall(
            0,
            SyscallArgs::ThreadLookup {
                thread: k.init_thread(),
            },
        );
        assert!(ret.is_ok(), "{ret:?}");
        let ret = k.syscall(0, SyscallArgs::ThreadLookup { thread: 9999 });
        assert_eq!(ret.result, Err(SyscallError::NotFound));
        let snap = k.trace_snapshot();
        assert_eq!(
            snap.counters.locks.pm.acquisitions, pm_before,
            "replica reads must not take the pm lock"
        );
        assert_eq!(snap.counters.nr.read_local, 3);
        assert_eq!(snap.counters.nr.fallback_locked, 0);
        let audit = k.audit_total_wf();
        assert!(audit.is_ok(), "{audit:?}");
    }

    #[test]
    fn nr_off_reads_fall_back_to_locked_path() {
        let k = smp(1);
        let ret = k.syscall(0, SyscallArgs::Getpid);
        assert!(ret.is_ok(), "{ret:?}");
        let snap = k.trace_snapshot();
        assert_eq!(snap.counters.nr.read_local, 0);
        assert_eq!(snap.counters.nr.fallback_locked, 1);
        assert_eq!(snap.counters.nr.appended, 0, "no log without enable_nr");
    }

    #[test]
    fn nr_read_skips_the_pm_model_clock() {
        // The scaling mechanism itself: a replica read on CPU 1 never
        // syncs to the pm domain's release timestamp, so its clock
        // stays far below CPU 0's after CPU 0 ran the write traffic.
        let k = smp(2);
        k.enable_nr();
        let ret = k.syscall(
            0,
            SyscallArgs::NewThread {
                proc: k.init_proc(),
                cpu: 1,
            },
        );
        assert!(ret.is_ok(), "{ret:?}");
        // Schedule it on CPU 1 through the bridge (whose trailing Reset
        // carries the new `current` into the replicas).
        k.with_kernel(|flat| {
            flat.pm.timer_tick(1);
        });
        for _ in 0..10 {
            assert!(k.syscall(0, SyscallArgs::Yield).is_ok());
        }
        let ret = k.syscall(1, SyscallArgs::Getpid);
        assert!(ret.is_ok(), "{ret:?}");
        assert!(
            k.cycles(1) < k.cycles(0),
            "replica read serialized behind the pm clock: cpu1 {} >= cpu0 {}",
            k.cycles(1),
            k.cycles(0)
        );
        let audit = k.audit_total_wf();
        assert!(audit.is_ok(), "{audit:?}");
    }

    #[test]
    fn nr_vm_resolve_tracks_staged_mmap_and_munmap() {
        let k = smp(1);
        k.enable_nr();
        k.enable_incremental_audit();
        let va = 0x40_0000usize;
        let ret = k.syscall(0, SyscallArgs::VmResolve { va });
        assert!(ret.is_ok());
        assert_eq!(ret.val0(), 0, "nothing mapped yet");
        let ret = k.syscall(
            0,
            SyscallArgs::Mmap {
                va_base: va,
                len: 4,
                writable: true,
            },
        );
        assert!(ret.is_ok(), "{ret:?}");
        let ret = k.syscall(0, SyscallArgs::VmResolve { va: va + 0x1234 });
        assert!(ret.is_ok());
        assert_eq!(ret.result, Ok([1, 1, 0, 0]), "mapped and writable");
        assert!(k.audit_incremental().is_ok());
        let ret = k.syscall(
            0,
            SyscallArgs::Munmap {
                va_base: va,
                len: 4,
            },
        );
        assert!(ret.is_ok(), "{ret:?}");
        let ret = k.syscall(0, SyscallArgs::VmResolve { va });
        assert_eq!(ret.result, Ok([0, 0, 0, 0]), "unmapped again");
        let snap = k.trace_snapshot();
        assert!(snap.counters.nr.appended > 0, "staged ops must append");
        let audit = k.audit_total_wf();
        assert!(audit.is_ok(), "{audit:?}");
    }

    #[test]
    fn nr_epoch_cross_check_survives_with_kernel_mutations() {
        // `with_kernel` mutations bypass the per-syscall appends; the
        // bridge's trailing Reset must keep the replicas convergent.
        let k = smp(2);
        k.enable_nr();
        k.enable_incremental_audit();
        let ret = k.syscall(0, SyscallArgs::NewEndpoint { slot: 0 });
        assert!(ret.is_ok(), "{ret:?}");
        let e = ret.val0() as usize;
        // Install a descriptor through the flat bridge (slot 1), past
        // the per-syscall append path.
        k.with_kernel(|flat| {
            let t = flat.init_thread;
            flat.pm.install_descriptor(t, 1, e).unwrap()
        });
        let ret = k.syscall(0, SyscallArgs::DescriptorResolve { slot: 1 });
        assert!(
            ret.is_ok(),
            "replicas must see the bridged mutation: {ret:?}"
        );
        assert_eq!(ret.val0() as usize, e);
        let audit = k.audit_total_wf();
        assert!(audit.is_ok(), "{audit:?}");
    }

    #[test]
    fn lock_wait_histograms_record_cross_cpu_contention() {
        let k = smp(2);
        let _ = k.syscall(0, SyscallArgs::Yield);
        let _ = k.syscall(1, SyscallArgs::Yield);
        let snap = k.trace_snapshot();
        assert!(
            snap.lock_wait_pm_hist.count() >= 2,
            "every pm acquisition records its modeled wait"
        );
        // CPU 1 entered behind CPU 0's release stamp: a nonzero wait.
        assert!(snap.lock_wait_pm_hist.max() > 0);
    }

    #[test]
    fn into_inner_roundtrip_preserves_wf() {
        let k = smp(2);
        let _ = k.syscall(
            0,
            SyscallArgs::Mmap {
                va_base: 0x40_0000,
                len: 4,
                writable: true,
            },
        );
        let flat = k.into_inner();
        assert!(flat.wf().is_ok());
    }
}
