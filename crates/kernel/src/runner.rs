//! User programs and the system runner.
//!
//! In the real Atmosphere, user code executes on the CPU until it traps;
//! in this reproduction a *user program* is a state machine that, each
//! time its thread is running, decides the next system call
//! ([`UserProgram::next`]) and later observes the result. The
//! [`SystemRunner`] drives a whole machine: on each step it asks the
//! program of the currently running thread on each CPU for its syscall,
//! executes it, delivers results, and injects timer preemption — a
//! deterministic, schedulable model of multi-program execution on top of
//! the kernel.

use std::collections::BTreeMap;

use atmo_pm::types::{CpuId, ThrdPtr};

use crate::interrupt::TIMER_VECTOR;
use crate::kernel::Kernel;
use crate::syscall::{SyscallArgs, SyscallReturn};

/// What a program does when it gets the CPU.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Action {
    /// Perform this system call.
    Syscall(SyscallArgs),
    /// Spin for one quantum (compute-bound work).
    Compute,
    /// The program is finished; its thread exits.
    Done,
}

/// A user program: a deterministic state machine over syscall results.
pub trait UserProgram {
    /// Decides the next action. `last` is the result of the previous
    /// syscall this program performed (if any).
    fn next(&mut self, last: Option<SyscallReturn>) -> Action;
}

/// Drives registered programs against the kernel.
pub struct SystemRunner {
    programs: BTreeMap<ThrdPtr, Box<dyn UserProgram>>,
    pending_result: BTreeMap<ThrdPtr, SyscallReturn>,
    /// Threads whose program returned [`Action::Done`].
    pub finished: Vec<ThrdPtr>,
}

impl SystemRunner {
    /// An empty runner.
    pub fn new() -> Self {
        SystemRunner {
            programs: BTreeMap::new(),
            pending_result: BTreeMap::new(),
            finished: Vec::new(),
        }
    }

    /// Binds `program` to thread `t`.
    pub fn register(&mut self, t: ThrdPtr, program: Box<dyn UserProgram>) {
        self.programs.insert(t, program);
    }

    /// Number of registered, unfinished programs.
    pub fn live_programs(&self) -> usize {
        self.programs.len()
    }

    /// Runs one scheduling quantum on `cpu`: the current thread's program
    /// chooses an action; syscalls execute through the kernel. Returns
    /// `false` when the CPU is idle or its thread has no program.
    pub fn step(&mut self, k: &mut Kernel, cpu: CpuId) -> bool {
        let Some(t) = k.pm.sched.current(cpu) else {
            // Idle CPU: try to dispatch someone.
            k.pm.timer_tick(cpu);
            return false;
        };
        let Some(program) = self.programs.get_mut(&t) else {
            // A thread without a program (e.g. init) idles; the caller's
            // preemption rotates past it. (Yielding here as well would
            // rotate twice per quantum and can parity-trap a thread.)
            return false;
        };
        match program.next(self.pending_result.remove(&t)) {
            Action::Syscall(args) => {
                let ret = k.syscall(cpu, args);
                self.pending_result.insert(t, ret);
                true
            }
            Action::Compute => {
                k.charge(cpu, 10_000); // one quantum of user work
                true
            }
            Action::Done => {
                self.programs.remove(&t);
                self.finished.push(t);
                let _ = k.syscall(cpu, SyscallArgs::Exit);
                true
            }
        }
    }

    /// Runs up to `quanta` scheduling quanta across all CPUs, injecting a
    /// timer interrupt every `preempt_every` quanta per CPU. Stops early
    /// when every program has finished.
    pub fn run(&mut self, k: &mut Kernel, quanta: usize, preempt_every: usize) {
        let ncpus = k.pm.sched.ncpus();
        for q in 0..quanta {
            if self.programs.is_empty() {
                break;
            }
            for cpu in 0..ncpus {
                self.step(k, cpu);
                if preempt_every > 0 && q % preempt_every == preempt_every - 1 {
                    k.raise_irq(TIMER_VECTOR);
                    k.handle_interrupts(cpu);
                }
            }
        }
    }
}

impl Default for SystemRunner {
    fn default() -> Self {
        SystemRunner::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelConfig;
    use atmo_spec::harness::Invariant;

    /// Maps `pages` pages one at a time, then unmaps them, then exits.
    struct MapWorker {
        base: usize,
        pages: usize,
        done_maps: usize,
        done_unmaps: usize,
    }

    impl UserProgram for MapWorker {
        fn next(&mut self, last: Option<SyscallReturn>) -> Action {
            if let Some(r) = last {
                assert!(r.is_ok(), "worker syscall failed: {r:?}");
            }
            if self.done_maps < self.pages {
                let va = self.base + self.done_maps * 0x1000;
                self.done_maps += 1;
                Action::Syscall(SyscallArgs::Mmap {
                    va_base: va,
                    len: 1,
                    writable: true,
                })
            } else if self.done_unmaps < self.pages {
                let va = self.base + self.done_unmaps * 0x1000;
                self.done_unmaps += 1;
                Action::Syscall(SyscallArgs::Munmap {
                    va_base: va,
                    len: 1,
                })
            } else {
                Action::Done
            }
        }
    }

    #[test]
    fn two_workers_share_a_cpu_under_preemption() {
        let mut k = Kernel::boot(KernelConfig {
            mem_mib: 64,
            ncpus: 1,
            root_quota: 2048,
        });
        let mut runner = SystemRunner::new();
        for i in 0..2 {
            let p = k.syscall(0, SyscallArgs::NewChildProcess).val0() as usize;
            let t = k
                .syscall(0, SyscallArgs::NewThread { proc: p, cpu: 0 })
                .val0() as usize;
            runner.register(
                t,
                Box::new(MapWorker {
                    base: 0x4000_0000 + i * 0x100_0000,
                    pages: 6,
                    done_maps: 0,
                    done_unmaps: 0,
                }),
            );
        }
        runner.run(&mut k, 400, 3);
        assert_eq!(runner.live_programs(), 0, "both workers completed");
        assert_eq!(runner.finished.len(), 2);
        assert!(k.mem.alloc.mapped_pages().is_empty(), "workers cleaned up");
        assert!(k.wf().is_ok(), "{:?}", k.wf());
    }

    #[test]
    fn workers_on_distinct_cpus_run_in_parallel() {
        let mut k = Kernel::boot(KernelConfig {
            mem_mib: 64,
            ncpus: 3,
            root_quota: 2048,
        });
        let mut runner = SystemRunner::new();
        for cpu in 1..3usize {
            let c = k
                .syscall(
                    0,
                    SyscallArgs::NewContainer {
                        quota: 64,
                        cpus: vec![cpu],
                    },
                )
                .val0() as usize;
            let p = k.syscall(0, SyscallArgs::NewProcess { cntr: c }).val0() as usize;
            let t = k.syscall(0, SyscallArgs::NewThread { proc: p, cpu }).val0() as usize;
            k.pm.timer_tick(cpu);
            runner.register(
                t,
                Box::new(MapWorker {
                    base: 0x4000_0000,
                    pages: 4,
                    done_maps: 0,
                    done_unmaps: 0,
                }),
            );
        }
        runner.run(&mut k, 200, 0);
        assert_eq!(runner.live_programs(), 0);
        // Both worker CPUs burned cycles.
        assert!(k.cycles(1) > 0 && k.cycles(2) > 0);
        assert!(k.wf().is_ok(), "{:?}", k.wf());
    }

    #[test]
    fn compute_bound_program_is_preempted_fairly() {
        struct Spinner {
            quanta: usize,
        }
        impl UserProgram for Spinner {
            fn next(&mut self, _last: Option<SyscallReturn>) -> Action {
                if self.quanta == 0 {
                    return Action::Done;
                }
                self.quanta -= 1;
                Action::Compute
            }
        }
        let mut k = Kernel::boot(KernelConfig {
            mem_mib: 64,
            ncpus: 1,
            root_quota: 2048,
        });
        let mut runner = SystemRunner::new();
        let init_proc = k.init_proc;
        for _ in 0..2 {
            let t = k
                .syscall(
                    0,
                    SyscallArgs::NewThread {
                        proc: init_proc,
                        cpu: 0,
                    },
                )
                .val0() as usize;
            runner.register(t, Box::new(Spinner { quanta: 10 }));
        }
        runner.run(&mut k, 200, 1); // preempt every quantum
        assert_eq!(
            runner.live_programs(),
            0,
            "both spinners finished despite hogging"
        );
        assert!(k.wf().is_ok(), "{:?}", k.wf());
    }
}
