//! The refinement and well-formedness harness.
//!
//! The paper proves two theorems (§4): *well-formedness* — `total_wf(Ψ')`
//! holds after every transition — and *refinement* — each transition
//! satisfies its abstract specification. [`audited_syscall`] is the
//! executable form: it snapshots Ψ, executes the system call, re-checks
//! `total_wf`, and validates the transition against the matching
//! specification from [`crate::spec`].
//!
//! `total_wf` itself lives here too: it conjoins the process manager's
//! and VM subsystem's invariants with the two *kernel-wide* memory
//! equations of §4.2:
//!
//! 1. **safety** — the page closures of the process manager and the VM
//!    subsystem are disjoint, and their union is exactly the allocator's
//!    `allocated` set;
//! 2. **leak freedom** — every frame the allocator says is `mapped` is
//!    mapped by at least one address space, and vice versa.

use atmo_hw::addr::{VAddr, VaRange4K};
use atmo_mem::PageClosure;
use atmo_pm::{ProcessManager, ThreadState};
use atmo_spec::harness::{check, check_eqn, Invariant, VerifResult};
use atmo_trace::TraceHandle;

use crate::abs::{threads_unchanged_except, AbstractKernel};
use crate::kernel::{Kernel, MemDomain};
use crate::spec;
use crate::syscall::{SyscallArgs, SyscallReturn};

/// The pm domain's own well-formedness (restated per-domain for the
/// sharded kernel: it holds under the pm lock alone).
pub fn pm_domain_wf(pm: &ProcessManager) -> VerifResult {
    pm.wf()
}

/// The mem domain's own well-formedness: the VM subsystem's closure
/// hierarchy and the allocator's page-state invariant. Holds under the
/// mem lock alone.
pub fn mem_domain_wf(mem: &MemDomain) -> VerifResult {
    mem.vm.wf()?;
    mem.alloc.wf()?;
    // The block queue pairs live in the mem domain (their entries are
    // validated against the IOMMU tables): completion order, capacity,
    // cookie distinctness and the submit/reap ledger audit with it.
    mem.blk.wf()
}

/// The cross-domain equations of §4.2 — these quantify over *both*
/// domains at once, so the sharded kernel can only establish them with
/// every domain lock held and every per-CPU page cache drained (the
/// stop-the-world `total_wf` audit).
pub fn cross_domain_wf(pm: &ProcessManager, mem: &MemDomain) -> VerifResult {
    // Safety: kernel objects and table frames partition `allocated`.
    let pm_closure = pm.page_closure();
    let vm_closure = mem.vm.page_closure();
    check_eqn(
        pm_closure.disjoint(&vm_closure),
        "kernel_memory",
        "pm+mem",
        "closure-partition",
        || "process-manager and VM closures overlap".to_string(),
    )?;
    check_eqn(
        pm_closure.union(&vm_closure) == mem.alloc.allocated_pages(),
        "kernel_memory",
        "pm+mem",
        "closure-partition",
        || {
            "subsystem closures do not cover exactly the allocated pages (leak or corruption)"
                .to_string()
        },
    )?;

    // Every live process has exactly its own address space.
    let proc_spaces: atmo_spec::Set<usize> = pm
        .proc_perms
        .iter()
        .map(|(_, p)| p.value().addr_space)
        .collect();
    check_eqn(
        proc_spaces == mem.vm.spaces(),
        "kernel_memory",
        "pm+mem",
        "space-bijection",
        || "process address spaces and VM spaces diverge".to_string(),
    )?;

    // Leak freedom for user frames: the allocator's mapped heads are
    // exactly the frames referenced by some address space or an
    // in-flight grant.
    let mut referenced = atmo_spec::Set::empty();
    for id in mem.vm.spaces().iter() {
        referenced = referenced.union(&mem.vm.table(*id).expect("space").mapped_frames());
    }
    for (_t, frame) in mem.pending_grants.iter() {
        referenced = referenced.insert(*frame);
    }
    // DMA-visible frames hold IOMMU references.
    referenced = referenced.union(&mem.vm.iommu.mapped_frames());
    // In-flight grants inside IPC buffers also hold references.
    for (_t, perm) in pm.thrd_perms.iter() {
        if let Some(p) = perm.value().ipc_buf {
            if let Some(frame) = p.page_grant {
                referenced = referenced.insert(frame);
            }
        }
    }
    check_eqn(
        referenced == mem.alloc.mapped_pages(),
        "kernel_memory",
        "pm+mem",
        "leak-freedom",
        || "mapped frames and address-space references diverge (leak)".to_string(),
    )
}

/// Fastpath refinement: a successful direct-handoff `Call`/`ReplyRecv`
/// must land in a state the slow rendezvous also reaches — the shared
/// IPC population spec holds, and additionally the fast path satisfies
/// a *stronger* frame than the slow one: only the two rendezvous
/// participants changed at all (the slow path may additionally dispatch
/// a ready-queue thread; the scheduler has that liberty), the partner
/// ends up running, and the caller ends up parked in a blocked IPC
/// state. Together with [`pm_domain_wf`] after the transition, this is
/// the executable form of "fast and slow paths map to the same abstract
/// send/recv transitions".
pub fn fastpath_refines_rendezvous(
    pre: &AbstractKernel,
    post: &AbstractKernel,
    t: usize,
    partner: usize,
) -> bool {
    if !spec::syscall_ipc_population_spec(pre, post) {
        return false;
    }
    if !threads_unchanged_except(pre, post, &[t, partner]) {
        return false;
    }
    let (Some(post_t), Some(post_p)) = (post.get_thread(t), post.get_thread(partner)) else {
        return false;
    };
    matches!(post_p.state, ThreadState::Running(_))
        && matches!(
            post_t.state,
            ThreadState::BlockedReply(_) | ThreadState::BlockedRecv(_)
        )
}

/// Crash-recovery refinement for the log-structured store (§4.3's
/// refinement discipline applied to persistence): the entries a store
/// reports after replaying a (possibly torn) crash image must be
/// exactly the abstract map over the *committed prefix* of operations —
/// every committed operation survives, and no torn record surfaces.
///
/// The kernel sees only the abstract shapes (`atmo-spec`'s
/// [`atmo_spec::storage::AbstractKv`]); the concrete store under test
/// supplies its recovered entries, the workload harness supplies the
/// committed-prefix ops.
pub fn recovery_refines(
    committed: &atmo_spec::storage::AbstractKv,
    recovered: &[(Vec<u8>, Vec<u8>)],
) -> VerifResult {
    let rebuilt = atmo_spec::storage::AbstractKv::from_entries(recovered);
    check(
        rebuilt.len() == recovered.len(),
        "recovery",
        "recovered entries contain a duplicate key",
    )?;
    check(
        &rebuilt == committed,
        "recovery",
        format!(
            "recovered state ({} entries) diverges from the committed abstract map ({} entries)",
            rebuilt.len(),
            committed.len()
        ),
    )
}

/// `total_wf` over the assembled parts: per-domain invariants, the
/// cross-domain memory equations, and the trace subsystem's coherence.
/// This is what the sharded kernel's stop-the-world audit evaluates
/// after draining every per-CPU page cache.
pub fn total_wf_parts(pm: &ProcessManager, mem: &MemDomain, trace: &TraceHandle) -> VerifResult {
    pm_domain_wf(pm)?;
    mem_domain_wf(mem)?;
    cross_domain_wf(pm, mem)?;
    // The trace subsystem audits like any other: coherent rings,
    // histogram/counter reconciliation, monotone counters.
    atmo_trace::trace_wf(trace)
}

impl Invariant for Kernel {
    /// The kernel's `total_wf()` (Listing 1 line 31).
    fn wf(&self) -> VerifResult {
        total_wf_parts(&self.pm, &self.mem, &self.trace)
    }
}

/// Executes a system call under full audit: snapshots Ψ, runs the call,
/// asserts `total_wf(Ψ')`, and checks the transition specification for the
/// given arguments. Returns the syscall result and the audit verdict.
pub fn audited_syscall(
    k: &mut Kernel,
    cpu: usize,
    args: SyscallArgs,
) -> (SyscallReturn, VerifResult) {
    let pre = k.view();
    let t = k.pm.sched.current(cpu).unwrap_or(0);
    let ret = k.syscall(cpu, args.clone());
    let audit = (|| -> VerifResult {
        k.wf()?;
        let post = k.view();
        let holds = match &args {
            SyscallArgs::Mmap { va_base, len, .. } => match VaRange4K::new(VAddr(*va_base), *len) {
                Some(range) => spec::syscall_mmap_spec(&pre, &post, t, range, &ret),
                None => spec::syscall_noop_spec(&pre, &post),
            },
            SyscallArgs::Munmap { va_base, len } => match VaRange4K::new(VAddr(*va_base), *len) {
                Some(range) => spec::syscall_munmap_spec(&pre, &post, t, range, &ret),
                None => spec::syscall_noop_spec(&pre, &post),
            },
            SyscallArgs::NewContainer { quota, cpus } => {
                spec::syscall_new_container_spec(&pre, &post, t, *quota, cpus, &ret)
            }
            SyscallArgs::NewEndpoint { slot } => {
                spec::syscall_new_endpoint_spec(&pre, &post, t, *slot, &ret)
            }
            SyscallArgs::TerminateContainer { cntr } => {
                spec::syscall_terminate_container_spec(&pre, &post, *cntr, &ret)
            }
            SyscallArgs::Yield => spec::syscall_yield_spec(&pre, &post),
            SyscallArgs::NewProcess { cntr } => {
                spec::syscall_new_process_spec(&pre, &post, *cntr, &ret)
            }
            SyscallArgs::NewThread { proc, .. } => {
                spec::syscall_new_thread_spec(&pre, &post, *proc, &ret)
            }
            SyscallArgs::TerminateProcess { proc } => {
                spec::syscall_terminate_process_spec(&pre, &post, *proc, &ret)
            }
            SyscallArgs::Send { .. }
            | SyscallArgs::Recv { .. }
            | SyscallArgs::Reply { .. }
            | SyscallArgs::Poll { .. }
            | SyscallArgs::TakeMsg => {
                if ret.result.is_err() {
                    spec::syscall_noop_spec(&pre, &post)
                } else {
                    spec::syscall_ipc_population_spec(&pre, &post)
                }
            }
            SyscallArgs::Call { .. } | SyscallArgs::ReplyRecv { .. } => {
                match ret.result {
                    Err(_) => spec::syscall_noop_spec(&pre, &post),
                    // val0 == 1 flags a direct handoff; val1 carries the
                    // partner. The fast path must refine the rendezvous.
                    Ok(v) if v[0] == 1 && v[1] != 0 => {
                        fastpath_refines_rendezvous(&pre, &post, t, v[1] as usize)
                    }
                    Ok(_) => spec::syscall_ipc_population_spec(&pre, &post),
                }
            }
            // Reading the trace is not a transition of Ψ at all: the
            // snapshot lives outside the abstract state.
            SyscallArgs::TraceSnapshot => spec::syscall_noop_spec(&pre, &post),
            // Pure lookups: success or failure, Ψ must be untouched.
            SyscallArgs::Getpid
            | SyscallArgs::ThreadLookup { .. }
            | SyscallArgs::DescriptorResolve { .. }
            | SyscallArgs::VmResolve { .. } => spec::syscall_noop_spec(&pre, &post),
            // Scheduler-control calls touch only the budget side
            // tables, which Ψ does not project: parked threads stay
            // Ready and no thread changes state, so success and failure
            // alike must leave Ψ untouched.
            SyscallArgs::SchedSetWeight { .. } | SyscallArgs::SchedThrottle { .. } => {
                spec::syscall_noop_spec(&pre, &post)
            }
            // The remaining calls are audited against well-formedness and
            // the no-op-on-error rule; their positive frame conditions are
            // exercised by dedicated tests.
            _ => {
                if ret.result.is_err() {
                    // Error paths must not change Ψ — except IPC calls,
                    // which may legitimately have charged nothing anyway.
                    spec::syscall_noop_spec(&pre, &post)
                } else {
                    true
                }
            }
        };
        check(
            holds,
            "refinement",
            format!("transition `{args:?}` violates its specification"),
        )
    })();
    (ret, audit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelConfig;

    #[test]
    fn boot_state_is_totally_wf() {
        let k = Kernel::boot(KernelConfig::default());
        assert!(k.wf().is_ok(), "{:?}", k.wf());
    }

    #[test]
    fn audited_mmap_munmap_cycle() {
        let mut k = Kernel::boot(KernelConfig::default());
        let (ret, audit) = audited_syscall(
            &mut k,
            0,
            SyscallArgs::Mmap {
                va_base: 0x40_0000,
                len: 4,
                writable: true,
            },
        );
        assert!(ret.is_ok());
        assert!(audit.is_ok(), "{audit:?}");

        let (ret, audit) = audited_syscall(
            &mut k,
            0,
            SyscallArgs::Munmap {
                va_base: 0x40_0000,
                len: 4,
            },
        );
        assert!(ret.is_ok());
        assert!(audit.is_ok(), "{audit:?}");
    }

    #[test]
    fn audited_container_lifecycle() {
        let mut k = Kernel::boot(KernelConfig::default());
        let (ret, audit) = audited_syscall(
            &mut k,
            0,
            SyscallArgs::NewContainer {
                quota: 64,
                cpus: vec![1],
            },
        );
        assert!(ret.is_ok());
        assert!(audit.is_ok(), "{audit:?}");
        let child = ret.val0() as usize;

        let (ret, audit) =
            audited_syscall(&mut k, 0, SyscallArgs::TerminateContainer { cntr: child });
        assert!(ret.is_ok());
        assert!(audit.is_ok(), "{audit:?}");
    }

    #[test]
    fn audited_error_paths_are_noops() {
        let mut k = Kernel::boot(KernelConfig::default());
        for args in [
            SyscallArgs::Mmap {
                va_base: 0x123, // unaligned
                len: 1,
                writable: true,
            },
            SyscallArgs::Munmap {
                va_base: 0x40_0000, // not mapped
                len: 1,
            },
            SyscallArgs::NewContainer {
                quota: 1 << 40, // exceeds quota
                cpus: vec![],
            },
            SyscallArgs::TerminateContainer { cntr: 0xdead },
            SyscallArgs::Reply { scalars: [0; 4] }, // nothing to reply to
            SyscallArgs::TakeMsg,                   // no message
        ] {
            let (ret, audit) = audited_syscall(&mut k, 0, args.clone());
            assert!(!ret.is_ok(), "{args:?} unexpectedly succeeded");
            assert!(audit.is_ok(), "{args:?}: {audit:?}");
        }
    }

    #[test]
    fn audited_endpoint_creation() {
        let mut k = Kernel::boot(KernelConfig::default());
        let (ret, audit) = audited_syscall(&mut k, 0, SyscallArgs::NewEndpoint { slot: 2 });
        assert!(ret.is_ok());
        assert!(audit.is_ok(), "{audit:?}");
    }

    #[test]
    fn audited_yield() {
        let mut k = Kernel::boot(KernelConfig::default());
        let (ret, audit) = audited_syscall(&mut k, 0, SyscallArgs::Yield);
        assert!(ret.is_ok());
        assert!(audit.is_ok(), "{audit:?}");
    }

    #[test]
    fn audited_fastpath_call_and_reply_recv() {
        // Drives a full client/server exchange through the audit: the
        // direct-handoff Call and the combined ReplyRecv must both pass
        // `total_wf` *and* `fastpath_refines_rendezvous`.
        let mut k = Kernel::boot(KernelConfig::default());
        let t1 = k.init_thread;
        let (ret, audit) = audited_syscall(&mut k, 0, SyscallArgs::NewEndpoint { slot: 0 });
        assert!(audit.is_ok(), "{audit:?}");
        let e = ret.val0() as usize;
        let init_proc = k.init_proc;
        let (ret, audit) = audited_syscall(
            &mut k,
            0,
            SyscallArgs::NewThread {
                proc: init_proc,
                cpu: 0,
            },
        );
        assert!(audit.is_ok(), "{audit:?}");
        let t2 = ret.val0() as usize;
        k.pm.install_descriptor(t2, 0, e).unwrap();

        // Park t2 as the receiver: t1 recv-blocks (t2 dispatched), t2
        // sends t1 awake, then t2 recv-blocks and t1 runs again.
        let (ret, audit) = audited_syscall(&mut k, 0, SyscallArgs::Recv { slot: 0 });
        assert!(ret.is_ok() && audit.is_ok(), "{audit:?}");
        let (ret, audit) = audited_syscall(
            &mut k,
            0,
            SyscallArgs::Send {
                slot: 0,
                scalars: [0; 4],
                grant_page_va: None,
                grant_endpoint_slot: None,
                grant_iommu_domain: None,
            },
        );
        assert!(ret.is_ok() && audit.is_ok(), "{audit:?}");
        let (ret, audit) = audited_syscall(&mut k, 0, SyscallArgs::Recv { slot: 0 });
        assert!(ret.is_ok() && audit.is_ok(), "{audit:?}");
        assert_eq!(k.pm.sched.current(0), Some(t1));
        let _ = k.syscall(0, SyscallArgs::TakeMsg);

        // The audited fastpath Call: direct handoff to t2.
        let (ret, audit) = audited_syscall(
            &mut k,
            0,
            SyscallArgs::Call {
                slot: 0,
                scalars: [11, 0, 0, 0],
            },
        );
        assert!(ret.is_ok());
        assert_eq!(ret.val0(), 1, "expected the direct handoff");
        assert!(audit.is_ok(), "{audit:?}");
        assert_eq!(k.pm.sched.current(0), Some(t2));
        let _ = k.syscall(0, SyscallArgs::TakeMsg);

        // The audited fastpath ReplyRecv: CPU hands straight back to t1.
        let (ret, audit) = audited_syscall(
            &mut k,
            0,
            SyscallArgs::ReplyRecv {
                slot: 0,
                scalars: [22, 0, 0, 0],
            },
        );
        assert!(ret.is_ok());
        assert_eq!(ret.val0(), 1, "expected the direct handoff");
        assert!(audit.is_ok(), "{audit:?}");
        assert_eq!(k.pm.sched.current(0), Some(t1));
    }
}
