//! Node-replicated read projections of the pm and mem domains.
//!
//! The sharded kernel's read-mostly syscalls (`getpid`, thread lookup,
//! descriptor resolve, VM resolve) spend almost their entire budget on
//! the pm domain lock — not on hold time, but on the serialization the
//! lock *models*: every acquirer syncs its meter to the domain's model
//! time, so sixteen readers advance one shared clock. This module turns
//! those paths into NrOS-style node replication ([`atmo_nr`]): each CPU
//! keeps a local, read-optimized projection of the pm and mem state
//! ([`PmView`], [`MemView`]), kept consistent by per-domain operation
//! logs. Writers still run under the authoritative domain locks — the
//! locked state remains the semantic anchor — and append a summary op
//! ([`PmOp`], [`MemOp`]) *while still holding the lock that serialized
//! the mutation*, so log order equals lock order. Readers replay their
//! local replica to the published tail and answer without touching any
//! domain lock or model clock.
//!
//! Correctness is *replica linearization*, checked at two strengths:
//!
//! * [`atmo_nr::NodeReplicated::nr_wf`] — every replica at tail `t`
//!   equals the fold of the op sequence `[0, t)` (cheap, no kernel
//!   locks);
//! * the epoch cross-check in
//!   [`SmpKernel::audit_total_wf`](crate::smp::SmpKernel::audit_total_wf)
//!   — each replica, synced to the tail, is compared **bit for bit**
//!   against a fresh projection of the authoritative locked state, and
//!   the audit ledger's `NrAppended` running sum is balanced against
//!   the logs' published tails.
//!
//! The projections deliberately keep only what the replicated reads
//! need: ownership edges, quota gauges, descriptor tables, scheduler
//! `current`, and per-space mapping summaries. Thread run states, IPC
//! buffers and queue contents stay exclusive to the locked pm domain.

use std::collections::{BTreeMap, BTreeSet};

use atmo_nr::{NodeReplicated, NrDispatch};
use atmo_pm::ProcessManager;
use atmo_spec::harness::VerifResult;

use crate::syscall::SyscallArgs;
use crate::vm::VmSubsystem;

/// The pm domain's read-optimized projection: one instance per CPU.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PmView {
    /// Scheduler `current` per CPU (`getpid`'s and descriptor
    /// resolution's entry point).
    pub current: Vec<Option<usize>>,
    /// thread → (owning process, owning container).
    pub threads: BTreeMap<usize, (usize, usize)>,
    /// process → (owning container, address space).
    pub procs: BTreeMap<usize, (usize, usize)>,
    /// container → (used, quota) gauge.
    pub quotas: BTreeMap<usize, (usize, usize)>,
    /// Live endpoint capabilities.
    pub endpoints: BTreeSet<usize>,
    /// (thread, slot) → endpoint descriptor table.
    pub descriptors: BTreeMap<(usize, usize), usize>,
}

impl PmView {
    /// Projects the authoritative pm state. Called under the pm lock
    /// (boot, structural-op append, epoch cross-check), so the view is
    /// a consistent cut.
    pub fn project(pm: &ProcessManager, ncpus: usize) -> PmView {
        let mut v = PmView {
            current: Self::current_all(pm, ncpus),
            ..PmView::default()
        };
        for (t, perm) in pm.thrd_perms.iter() {
            let th = perm.value();
            v.threads.insert(t, (th.owning_proc, th.owning_cntr));
            for (slot, d) in th.edpt_descriptors.iter().enumerate() {
                if let Some(e) = d {
                    v.descriptors.insert((t, slot), *e);
                }
            }
        }
        for (p, perm) in pm.proc_perms.iter() {
            let pr = perm.value();
            v.procs.insert(p, (pr.owning_container, pr.addr_space));
        }
        for (c, perm) in pm.cntr_perms.iter() {
            let cn = perm.value();
            v.quotas.insert(c, (cn.used, cn.quota));
        }
        for (e, _) in pm.edpt_perms.iter() {
            v.endpoints.insert(e);
        }
        v
    }

    /// The scheduler's `current` for every CPU — the payload of the
    /// cheap [`PmOp::CurrentAll`] op.
    pub fn current_all(pm: &ProcessManager, ncpus: usize) -> Vec<Option<usize>> {
        (0..ncpus).map(|c| pm.sched.current(c)).collect()
    }

    /// The thread running on `cpu`, per this replica.
    pub fn current_thread(&self, cpu: usize) -> Option<usize> {
        self.current.get(cpu).copied().flatten()
    }

    /// `getpid` against this replica: (owning process, owning
    /// container) of `cpu`'s current thread.
    pub fn getpid(&self, cpu: usize) -> Option<(usize, usize)> {
        self.threads.get(&self.current_thread(cpu)?).copied()
    }

    /// Thread lookup against this replica.
    pub fn thread_lookup(&self, t: usize) -> Option<(usize, usize)> {
        self.threads.get(&t).copied()
    }

    /// Descriptor-slot resolution for `cpu`'s current thread.
    pub fn descriptor_resolve(&self, cpu: usize, slot: usize) -> Option<usize> {
        let t = self.current_thread(cpu)?;
        self.descriptors.get(&(t, slot)).copied()
    }

    /// The address space of `cpu`'s current thread's process.
    pub fn current_addr_space(&self, cpu: usize) -> Option<usize> {
        let (proc_ptr, _) = self.getpid(cpu)?;
        Some(self.procs.get(&proc_ptr)?.1)
    }
}

/// One pm-log entry: the summary of what a locked pm mutation changed.
/// All variants are *absolute* (set, not delta), so replay is trivially
/// idempotent per entry and correctness reduces to log order — which
/// equals pm-lock order by construction.
#[derive(Clone, Debug)]
pub enum PmOp {
    /// Scheduler `current` for every CPU (cheap class: yield, call,
    /// reply and error returns, which can context-switch but never
    /// touch object tables or quotas).
    CurrentAll(Vec<Option<usize>>),
    /// One container's quota gauge (the staged mmap/munmap quota
    /// phases, which adjust `used` without structural changes).
    QuotaSet {
        /// The container whose gauge moved.
        cntr: usize,
        /// Pages charged after the op.
        used: usize,
        /// The reservation (unchanged by charges; carried so the op is
        /// a complete absolute statement).
        quota: usize,
    },
    /// Full re-projection (structural class: create/terminate,
    /// grant-carrying IPC, anything that may move objects or quota in
    /// ways a cheaper summary could miss).
    Reset(PmView),
}

impl NrDispatch for PmView {
    type Op = PmOp;

    fn apply(&mut self, op: &PmOp) {
        match op {
            PmOp::CurrentAll(c) => self.current = c.clone(),
            PmOp::QuotaSet { cntr, used, quota } => {
                self.quotas.insert(*cntr, (*used, *quota));
            }
            PmOp::Reset(v) => *self = v.clone(),
        }
    }
}

/// The mem domain's read-optimized projection: address space →
/// (page-aligned va → writable) mapping summaries, including empty
/// spaces (their existence is observable).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MemView {
    /// space → va → writable. Superpage promotion is transparent: the
    /// authoritative ghost `map_4k` keeps per-4K entries either way.
    pub spaces: BTreeMap<usize, BTreeMap<usize, bool>>,
}

impl MemView {
    /// Projects the authoritative VM state. Called under the mem lock.
    pub fn project(vm: &VmSubsystem) -> MemView {
        let mut spaces = BTreeMap::new();
        for id in vm.spaces().iter() {
            let table = vm.table(*id).expect("live space has a table");
            let mut pages = BTreeMap::new();
            for (va, entry) in table.map_4k.iter() {
                pages.insert(*va, entry.flags.writable);
            }
            spaces.insert(*id, pages);
        }
        MemView { spaces }
    }

    /// `vm_resolve` against this replica: `Some(writable)` when the
    /// page containing `va` is mapped in `space`.
    pub fn resolve(&self, space: usize, va: usize) -> Option<bool> {
        self.spaces.get(&space)?.get(&(va & !0xFFF)).copied()
    }
}

/// One mem-log entry.
#[derive(Clone, Debug)]
pub enum MemOp {
    /// Absolute mapping summaries for a va set in one space: `Some(w)`
    /// sets, `None` clears (the staged mmap/munmap commit, read back
    /// from the authoritative table under the mem lock).
    MapRange {
        /// Target address space.
        space: usize,
        /// (page-aligned va, writable-or-unmapped) pairs.
        pages: Vec<(usize, Option<bool>)>,
    },
    /// Full re-projection (space create/destroy, grant maps, superpage
    /// ops — anything beyond a staged commit's own range).
    Reset(MemView),
}

impl NrDispatch for MemView {
    type Op = MemOp;

    fn apply(&mut self, op: &MemOp) {
        match op {
            MemOp::MapRange { space, pages } => {
                let s = self.spaces.entry(*space).or_default();
                for (va, w) in pages {
                    match w {
                        Some(w) => {
                            s.insert(*va, *w);
                        }
                        None => {
                            s.remove(va);
                        }
                    }
                }
            }
            MemOp::Reset(v) => *self = v.clone(),
        }
    }
}

/// How a syscall's pm-side effects are summarized into the log.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PmUpdateClass {
    /// Read-only / trace-only: nothing to append.
    None,
    /// Only the scheduler's per-CPU `current` can change.
    Current,
    /// Object tables or quotas can change: re-project on success.
    Structural,
}

/// Classifies `args` for the post-dispatch append. Conservative: any
/// call that *might* move quota or objects (grant-carrying IPC, message
/// take, create/terminate) is `Structural`; only calls whose pm-side
/// effect is provably limited to a context switch are `Current`. The
/// epoch cross-check enforces this claim bit for bit.
pub fn pm_update_class(args: &SyscallArgs) -> PmUpdateClass {
    match args {
        SyscallArgs::TraceSnapshot
        | SyscallArgs::Getpid
        | SyscallArgs::ThreadLookup { .. }
        | SyscallArgs::DescriptorResolve { .. }
        | SyscallArgs::VmResolve { .. } => PmUpdateClass::None,
        // Scheduler-control calls mutate only the scheduler's budget
        // side tables, which the pm view does not project.
        SyscallArgs::SchedSetWeight { .. } | SyscallArgs::SchedThrottle { .. } => {
            PmUpdateClass::None
        }
        SyscallArgs::Yield | SyscallArgs::Call { .. } | SyscallArgs::Reply { .. } => {
            PmUpdateClass::Current
        }
        _ => PmUpdateClass::Structural,
    }
}

/// Both replicated structures of one sharded kernel: separate logs for
/// the pm and mem projections, so each domain's ops commute with the
/// other's by construction (cross-domain reads like `vm_resolve`
/// consult both replicas; each answer is individually no staler than
/// its log's tail).
pub struct KernelNr {
    /// Per-CPU pm replicas.
    pub pm: NodeReplicated<PmView>,
    /// Per-CPU mem replicas.
    pub mem: NodeReplicated<MemView>,
}

impl KernelNr {
    /// Replicas for `ncpus` CPUs, baselined on freshly projected views
    /// (taken under the respective domain locks by the caller).
    pub fn new(ncpus: usize, pm_init: PmView, mem_init: MemView) -> Self {
        KernelNr {
            pm: NodeReplicated::new(ncpus, pm_init),
            mem: NodeReplicated::new(ncpus, mem_init),
        }
    }

    /// Replica linearization for both logs.
    pub fn nr_wf(&self) -> VerifResult {
        self.pm.nr_wf()?;
        self.mem.nr_wf()
    }

    /// Replays every replica of both structures to its log's tail;
    /// returns total ops applied.
    pub fn sync_all(&self) -> u64 {
        self.pm.sync_all() + self.mem.sync_all()
    }

    /// Published tails of the (pm, mem) logs — the audit balances the
    /// ledger's `NrAppended` sum against their growth.
    pub fn tails(&self) -> (u64, u64) {
        (self.pm.tail(), self.mem.tail())
    }
}

impl std::fmt::Debug for KernelNr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KernelNr")
            .field("ncpus", &self.pm.ncpus())
            .field("pm_tail", &self.pm.tail())
            .field("mem_tail", &self.mem.tail())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{Kernel, KernelConfig};

    #[test]
    fn boot_projection_answers_reads() {
        let k = Kernel::boot(KernelConfig::default());
        let v = PmView::project(&k.pm, 4);
        let (p, c) = v.getpid(0).expect("init thread runs on CPU 0");
        assert_eq!(p, k.init_proc);
        assert_eq!(c, k.root_container);
        assert_eq!(v.thread_lookup(k.init_thread), Some((p, c)));
        assert_eq!(v.current_thread(1), None, "other CPUs idle at boot");
        let (used, quota) = v.quotas[&k.root_container];
        assert!(used <= quota);
        let m = MemView::project(&k.mem.vm);
        let as_id = v.current_addr_space(0).expect("init has a space");
        assert!(m.spaces.contains_key(&as_id), "init space projected");
    }

    #[test]
    fn ops_replay_to_the_reprojected_state() {
        let mut k = Kernel::boot(KernelConfig::default());
        let before = PmView::project(&k.pm, 4);
        let mem_before = MemView::project(&k.mem.vm);
        let r = k.syscall(
            0,
            SyscallArgs::Mmap {
                va_base: 0x40_0000,
                len: 2,
                writable: true,
            },
        );
        assert!(r.is_ok());
        // A Reset op carries any mutation; MapRange carries the staged
        // commit. Both must land on the fresh projection.
        let mut v = before.clone();
        v.apply(&PmOp::Reset(PmView::project(&k.pm, 4)));
        assert_eq!(v, PmView::project(&k.pm, 4));
        let mut m = mem_before.clone();
        let as_id = before.current_addr_space(0).unwrap();
        m.apply(&MemOp::MapRange {
            space: as_id,
            pages: vec![(0x40_0000, Some(true)), (0x40_1000, Some(true))],
        });
        assert_eq!(m, MemView::project(&k.mem.vm));
        assert_eq!(m.resolve(as_id, 0x40_0123), Some(true));
        m.apply(&MemOp::MapRange {
            space: as_id,
            pages: vec![(0x40_0000, None)],
        });
        assert_eq!(m.resolve(as_id, 0x40_0000), None);
    }

    #[test]
    fn quota_set_is_absolute() {
        let mut v = PmView::default();
        v.apply(&PmOp::QuotaSet {
            cntr: 7,
            used: 10,
            quota: 64,
        });
        v.apply(&PmOp::QuotaSet {
            cntr: 7,
            used: 8,
            quota: 64,
        });
        assert_eq!(v.quotas[&7], (8, 64));
    }

    #[test]
    fn update_class_is_conservative() {
        assert_eq!(pm_update_class(&SyscallArgs::Yield), PmUpdateClass::Current);
        assert_eq!(pm_update_class(&SyscallArgs::Getpid), PmUpdateClass::None);
        assert_eq!(
            pm_update_class(&SyscallArgs::TakeMsg),
            PmUpdateClass::Structural
        );
        assert_eq!(
            pm_update_class(&SyscallArgs::Recv { slot: 0 }),
            PmUpdateClass::Structural,
            "receive can consume a grant"
        );
    }
}
