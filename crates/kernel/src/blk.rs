//! The kernel-side block datapath: io_uring-shaped submission /
//! completion queue pairs over the NVMe device model.
//!
//! User space drives block I/O through two system calls —
//! `BlkSubmitBatch` posts a batch of submission entries (each naming a
//! DMA-pinned buffer by its IOVA) and rings the doorbell once;
//! `BlkReapBatch` harvests finished completions, optionally sleeping
//! until the next one via the IPC fast-path wakeup. The kernel never
//! touches payload bytes: it validates each entry's IOVA against the
//! IOMMU tables (a DMA outside the caller's pinned window is refused
//! before any state changes) and tracks cookies, so the datapath stays
//! zero-copy end to end.
//!
//! The timing model ([`BlkTiming`]) is the same P3700-class completion
//! model the driver crate's `NvmeSpec` uses — `complete = max(submit +
//! latency, prev_complete_of_same_kind + service)` — restated here
//! because the kernel sits *below* the driver crate in the dependency
//! order. A root-level test asserts the two stay numerically identical.

use std::collections::VecDeque;

use atmo_ptable::DeviceId;
use atmo_spec::harness::{check, Invariant, VerifResult};

/// Submission-queue capacity per queue pair (in-flight ceiling).
pub const BLK_SQ_CAPACITY: usize = 64;

/// PCI-style device id of the modeled NVMe controller — the device a
/// pinned pool's IOMMU domain attaches to.
pub const BLK_DEVICE_ID: DeviceId = 7;

/// Extra device-side service cycles per write (the per-write doorbell
/// interaction of §6.5.2's 10% write overhead); mirrors the driver
/// crate's `nvme_write_extra`.
pub const BLK_WRITE_PENALTY: u64 = 900;

/// One submission-queue entry: a 4 KiB transfer between the pinned
/// buffer at `iova` and logical block `lba`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlkOp {
    /// Caller-chosen completion cookie (returned by `BlkReapBatch`).
    pub cookie: u64,
    /// Device-visible address of the buffer (must translate through the
    /// IOMMU domain the queue's device is attached to).
    pub iova: usize,
    /// Target logical block address.
    pub lba: u64,
    /// `true` for a write, `false` for a read.
    pub write: bool,
}

/// Device timing parameters, in cycles of the host clock — the kernel's
/// copy of the P3700 completion model (see the module docs for why it
/// is restated here).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlkTiming {
    /// Read completion latency (flash array read).
    pub read_latency: u64,
    /// Write completion latency (write cache hit).
    pub write_latency: u64,
    /// Minimum spacing between read completions (1 / peak read IOPS).
    pub read_service: u64,
    /// Minimum spacing between write completions (1 / peak write IOPS).
    pub write_service: u64,
}

impl BlkTiming {
    /// P3700 400 GB-class timings: 76 µs read latency, ~450 K IOPS peak
    /// 4 KiB reads, ~3.9 µs cached write latency, 256 K IOPS peak
    /// writes.
    pub const fn p3700(freq_hz: u64) -> Self {
        let per_us = freq_hz / 1_000_000;
        BlkTiming {
            read_latency: 76 * per_us,
            write_latency: 4 * per_us,
            read_service: freq_hz / 450_000,
            write_service: freq_hz / 256_000,
        }
    }
}

/// One submission/completion queue pair: in-flight entries ordered by
/// completion time, finished cookies awaiting reap, and the reaped
/// cookies staged for the caller's completion ring.
#[derive(Debug)]
pub struct BlkQueuePair {
    timing: BlkTiming,
    device: DeviceId,
    /// `(complete_at, cookie)`, ascending by completion time.
    inflight: Vec<(u64, u64)>,
    /// Completed cookies not yet reaped, completion order.
    done: VecDeque<u64>,
    /// Cookies the last reap delivered — the modeled user-visible CQ
    /// ring memory (a syscall return carries only scalars, so the host
    /// harness reads the ring through [`BlkQueuePair::drain_reaped`]).
    reaped_cookies: VecDeque<u64>,
    last_read_complete: u64,
    last_write_complete: u64,
    submitted: u64,
    reaped: u64,
}

impl BlkQueuePair {
    /// A fresh queue pair for `device` with the given timing.
    pub fn new(timing: BlkTiming, device: DeviceId) -> Self {
        BlkQueuePair {
            timing,
            device,
            inflight: Vec::new(),
            done: VecDeque::new(),
            reaped_cookies: VecDeque::new(),
            last_read_complete: 0,
            last_write_complete: 0,
            submitted: 0,
            reaped: 0,
        }
    }

    /// The device this queue pair is bound to.
    pub fn device(&self) -> DeviceId {
        self.device
    }

    /// Entries the device currently owns.
    pub fn in_flight(&self) -> usize {
        self.inflight.len()
    }

    /// Completions finished but not yet reaped.
    pub fn done_pending(&self) -> usize {
        self.done.len()
    }

    /// Entries submitted in total.
    pub fn submitted(&self) -> u64 {
        self.submitted
    }

    /// Cookies reaped in total.
    pub fn reaped(&self) -> u64 {
        self.reaped
    }

    /// `true` when `cookie` is already pending (in flight or awaiting
    /// reap) — duplicate cookies would make completions ambiguous.
    pub fn cookie_pending(&self, cookie: u64) -> bool {
        self.inflight.iter().any(|&(_, c)| c == cookie) || self.done.contains(&cookie)
    }

    /// Submits one entry at time `now`, computing its completion time
    /// under the per-kind latency/service model.
    pub fn submit(&mut self, now: u64, op: &BlkOp) {
        let (lat, service, penalty, last) = if op.write {
            (
                self.timing.write_latency,
                self.timing.write_service,
                BLK_WRITE_PENALTY,
                &mut self.last_write_complete,
            )
        } else {
            (
                self.timing.read_latency,
                self.timing.read_service,
                0,
                &mut self.last_read_complete,
            )
        };
        let complete = (now + lat).max(*last + service + penalty);
        *last = complete;
        let pos = self
            .inflight
            .iter()
            .position(|&(c, _)| c > complete)
            .unwrap_or(self.inflight.len());
        self.inflight.insert(pos, (complete, op.cookie));
        self.submitted += 1;
    }

    /// Moves every entry finished by `now` to the done queue; returns
    /// how many completed.
    pub fn poll(&mut self, now: u64) -> usize {
        let mut n = 0;
        while let Some(&(c, cookie)) = self.inflight.first() {
            if c <= now {
                self.inflight.remove(0);
                self.done.push_back(cookie);
                n += 1;
            } else {
                break;
            }
        }
        n
    }

    /// Cycles from `now` until the next in-flight completion (0 when one
    /// is ready, `None` when nothing is in flight).
    pub fn cycles_until_completion(&self, now: u64) -> Option<u64> {
        self.inflight.first().map(|&(c, _)| c.saturating_sub(now))
    }

    /// Reaps up to `max` finished cookies into the user-visible CQ ring,
    /// returning how many moved.
    pub fn take_done(&mut self, max: usize) -> usize {
        let n = max.min(self.done.len());
        for _ in 0..n {
            let cookie = self.done.pop_front().expect("counted above");
            self.reaped_cookies.push_back(cookie);
        }
        self.reaped += n as u64;
        n
    }

    /// Drains the user-visible CQ ring (what the caller would read from
    /// its mapped completion-queue memory after `BlkReapBatch` returns).
    pub fn drain_reaped(&mut self) -> Vec<u64> {
        self.reaped_cookies.drain(..).collect()
    }
}

impl Invariant for BlkQueuePair {
    /// Queue-pair well-formedness: in-flight entries are ordered by
    /// completion time, capacity is respected, pending cookies are
    /// distinct, and the ledger balances —
    /// `submitted == reaped + in_flight + done`.
    fn wf(&self) -> VerifResult {
        check(
            self.inflight.windows(2).all(|w| w[0].0 <= w[1].0),
            "blk_queue",
            "in-flight entries out of completion order",
        )?;
        check(
            self.inflight.len() <= BLK_SQ_CAPACITY,
            "blk_queue",
            "in-flight entries exceed the SQ capacity",
        )?;
        let mut cookies: Vec<u64> = self
            .inflight
            .iter()
            .map(|&(_, c)| c)
            .chain(self.done.iter().copied())
            .collect();
        let total = cookies.len();
        cookies.sort_unstable();
        cookies.dedup();
        check(
            cookies.len() == total,
            "blk_queue",
            "duplicate pending cookie",
        )?;
        check(
            self.submitted == self.reaped + (self.inflight.len() + self.done.len()) as u64,
            "blk_queue",
            format!(
                "ledger imbalance: {} submitted != {} reaped + {} in flight + {} done",
                self.submitted,
                self.reaped,
                self.inflight.len(),
                self.done.len()
            ),
        )
    }
}

/// The kernel's block-queue state, one entry per queue pair; lives in
/// the mem domain so both the unified and sharded kernels reach it
/// through the same `MemAccess` plumbing the other mem syscalls use.
#[derive(Debug)]
pub struct BlkState {
    /// Queue pairs, indexed by the `queue` syscall argument.
    pub queues: Vec<BlkQueuePair>,
}

impl BlkState {
    /// Boot state: one queue pair bound to the modeled NVMe controller
    /// ([`BLK_DEVICE_ID`]) with P3700 timing at the machine frequency.
    pub fn new(freq_hz: u64) -> Self {
        BlkState {
            queues: vec![BlkQueuePair::new(BlkTiming::p3700(freq_hz), BLK_DEVICE_ID)],
        }
    }

    /// The queue pair at `idx`.
    pub fn queue_mut(&mut self, idx: usize) -> Option<&mut BlkQueuePair> {
        self.queues.get_mut(idx)
    }
}

impl Invariant for BlkState {
    fn wf(&self) -> VerifResult {
        for q in &self.queues {
            q.wf()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FREQ: u64 = 2_200_000_000;

    fn op(cookie: u64, write: bool) -> BlkOp {
        BlkOp {
            cookie,
            iova: 0x10_0000,
            lba: cookie,
            write,
        }
    }

    #[test]
    fn completions_obey_latency_then_service_rate() {
        let t = BlkTiming::p3700(FREQ);
        let mut q = BlkQueuePair::new(t, BLK_DEVICE_ID);
        for c in 0..3 {
            q.submit(0, &op(c, false));
        }
        assert!(q.is_wf());
        assert_eq!(q.poll(t.read_latency - 1), 0, "nothing before latency");
        assert_eq!(q.poll(t.read_latency), 1);
        assert_eq!(q.poll(t.read_latency + t.read_service), 1);
        assert_eq!(q.poll(t.read_latency + 2 * t.read_service), 1);
        assert_eq!(q.take_done(8), 3);
        assert_eq!(q.drain_reaped(), vec![0, 1, 2], "completion order");
        assert!(q.is_wf());
    }

    #[test]
    fn writes_pay_the_per_write_penalty() {
        let t = BlkTiming::p3700(FREQ);
        let mut q = BlkQueuePair::new(t, BLK_DEVICE_ID);
        q.submit(0, &op(1, true));
        q.submit(0, &op(2, true));
        // Per-kind chain: each write completes no earlier than the
        // previous one plus service time plus the per-write penalty.
        let first = t.write_latency.max(t.write_service + BLK_WRITE_PENALTY);
        let second = t
            .write_latency
            .max(first + t.write_service + BLK_WRITE_PENALTY);
        assert_eq!(q.poll(first - 1), 0);
        assert_eq!(q.poll(first), 1);
        assert_eq!(q.poll(second - 1), 0);
        assert_eq!(q.poll(second), 1);
    }

    #[test]
    fn cycles_until_completion_tracks_the_head() {
        let t = BlkTiming::p3700(FREQ);
        let mut q = BlkQueuePair::new(t, BLK_DEVICE_ID);
        assert_eq!(q.cycles_until_completion(0), None);
        q.submit(0, &op(9, false));
        assert_eq!(q.cycles_until_completion(0), Some(t.read_latency));
        assert_eq!(q.cycles_until_completion(t.read_latency + 5), Some(0));
    }

    #[test]
    fn duplicate_cookies_are_detectable() {
        let t = BlkTiming::p3700(FREQ);
        let mut q = BlkQueuePair::new(t, BLK_DEVICE_ID);
        q.submit(0, &op(7, false));
        assert!(q.cookie_pending(7));
        assert!(!q.cookie_pending(8));
    }

    #[test]
    fn boot_state_is_wf() {
        let s = BlkState::new(FREQ);
        assert!(s.is_wf());
        assert_eq!(s.queues.len(), 1);
        assert_eq!(s.queues[0].device(), BLK_DEVICE_ID);
    }
}
