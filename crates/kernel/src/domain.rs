//! Lock domains: ordered, instrumented mutexes for the sharded kernel.
//!
//! The sharded [`SmpKernel`](crate::smp::SmpKernel) replaces the big
//! lock with one lock per domain. Deadlock freedom comes from a *total
//! lock order* over [`LockLevel`]s — every code path acquires locks in
//! strictly ascending level order:
//!
//! ```text
//! Meter(0) → Pm(1) → Hw(2) → Snapshot(3) → Cache(4) → Mem(5) → trace shards (leaf)
//! ```
//!
//! Publicly that is the documented `pm → mem → trace` order; `Meter`,
//! `Hw`, `Snapshot` and `Cache` are auxiliary leaf-ish levels slotted
//! around them (a CPU's meter is taken before its syscall touches pm,
//! the per-CPU page caches sit between pm and mem because a cache
//! refill/drain must take the mem lock while holding the cache). Trace
//! shard locks are internal to `atmo-trace`, never acquire anything,
//! and are only ever taken last.
//!
//! `Meter` and `Cache` are *multi-acquire* levels: the stop-the-world
//! `with_kernel` path locks every CPU's meter (then every cache) in
//! CPU-index order, which is deadlock-free because that inner order is
//! itself total and no other path ever holds two of them.
//!
//! With the `lock-order-checks` feature enabled, every acquisition is
//! checked against a thread-local table of held levels and any
//! violation of the total order panics immediately — no external
//! dependencies, just a `thread_local!` array.
//!
//! Every [`DomainLock`] also carries a modeled-time stamp
//! ([`model_time`](DomainLock::model_time)): the release time, in
//! modeled cycles, of the last critical section. Callers sync their
//! CPU's [`CycleMeter`](atmo_hw::cycles::CycleMeter) to it on acquire,
//! which makes lock serialization visible to the modeled clock — the
//! basis of the `repro-smp-scaling` benchmark on a single-core host.

use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, TryLockError};
use std::time::Instant;

use atmo_spec::{into_inner_recovering, lock_recovering};
use atmo_trace::{ns_to_cycles, LockDomain, TraceHandle};

/// Position of a lock in the total acquisition order (ascending only).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(usize)]
pub enum LockLevel {
    /// Per-CPU cycle meters (multi-acquire, CPU-index order).
    Meter = 0,
    /// The process-manager domain.
    Pm = 1,
    /// The machine (interrupt controller, cost model, boot info).
    Hw = 2,
    /// The published trace-snapshot slot.
    Snapshot = 3,
    /// Per-CPU page caches (multi-acquire, CPU-index order).
    Cache = 4,
    /// The memory domain.
    Mem = 5,
}

/// Number of distinct lock levels.
pub const NUM_LOCK_LEVELS: usize = 6;

impl LockLevel {
    /// `true` when several locks of this level may be held at once
    /// (acquired in CPU-index order by the stop-the-world path).
    pub fn multi_acquire(self) -> bool {
        matches!(self, LockLevel::Meter | LockLevel::Cache)
    }
}

#[cfg(feature = "lock-order-checks")]
mod order {
    use super::{LockLevel, NUM_LOCK_LEVELS};
    use std::cell::RefCell;

    thread_local! {
        /// How many locks of each level this OS thread currently holds.
        static HELD: RefCell<[u8; NUM_LOCK_LEVELS]> = const { RefCell::new([0; NUM_LOCK_LEVELS]) };
    }

    pub fn acquiring(level: LockLevel) {
        HELD.with_borrow_mut(|held| {
            let l = level as usize;
            for (above, &count) in held.iter().enumerate().skip(l + 1) {
                assert!(
                    count == 0,
                    "lock-order violation: acquiring {level:?} (level {l}) while holding a \
                     level-{above} lock"
                );
            }
            assert!(
                held[l] == 0 || level.multi_acquire(),
                "lock-order violation: acquiring a second {level:?} lock"
            );
            held[l] += 1;
        });
    }

    pub fn released(level: LockLevel) {
        HELD.with_borrow_mut(|held| {
            let l = level as usize;
            debug_assert!(held[l] > 0, "releasing a {level:?} lock that was not held");
            held[l] = held[l].saturating_sub(1);
        });
    }
}

#[cfg(not(feature = "lock-order-checks"))]
mod order {
    use super::LockLevel;
    pub fn acquiring(_level: LockLevel) {}
    pub fn released(_level: LockLevel) {}
}

/// One domain's lock: an ordered, optionally instrumented mutex with a
/// modeled release timestamp.
#[derive(Debug)]
pub struct DomainLock<T> {
    mutex: Mutex<T>,
    level: LockLevel,
    /// When set, every acquisition is recorded into the trace sink's
    /// per-domain lock counters.
    instrument: Option<LockDomain>,
    trace: TraceHandle,
    /// Modeled cycle count at which the last critical section released
    /// the lock; acquirers `sync_to` their meter so serialization shows
    /// up in modeled time.
    model_time: AtomicU64,
}

impl<T> DomainLock<T> {
    /// A lock at `level`, instrumented as `instrument` (if any) into
    /// `trace`.
    pub fn new(
        value: T,
        level: LockLevel,
        instrument: Option<LockDomain>,
        trace: TraceHandle,
    ) -> Self {
        DomainLock {
            mutex: Mutex::new(value),
            level,
            instrument,
            trace,
            model_time: AtomicU64::new(0),
        }
    }

    /// Acquires the lock for `cpu`, checking the total order and
    /// recording contention. Panics on a lock-order violation when the
    /// `lock-order-checks` feature is on.
    pub fn lock(&self, cpu: usize) -> DomainGuard<'_, T> {
        order::acquiring(self.level);
        let (guard, contended) = match self.mutex.try_lock() {
            Ok(g) => (g, false),
            Err(TryLockError::Poisoned(e)) => (e.into_inner(), false),
            Err(TryLockError::WouldBlock) => (lock_recovering(&self.mutex), true),
        };
        DomainGuard {
            guard: Some(guard),
            lock: self,
            cpu,
            contended,
            acquired_at: Instant::now(),
        }
    }

    /// The modeled release time of the last critical section.
    pub fn model_time(&self) -> u64 {
        self.model_time.load(Ordering::Acquire)
    }

    /// Advances the modeled release time to `now` (monotone).
    pub fn set_model_time(&self, now: u64) {
        self.model_time.fetch_max(now, Ordering::AcqRel);
    }

    /// Consumes the lock, recovering the value even if poisoned.
    pub fn into_inner(self) -> T {
        into_inner_recovering(self.mutex)
    }
}

/// Guard for a [`DomainLock`]; releases the lock, reports the hold to
/// the trace sink, and pops the held-level table on drop.
pub struct DomainGuard<'a, T> {
    guard: Option<MutexGuard<'a, T>>,
    lock: &'a DomainLock<T>,
    cpu: usize,
    contended: bool,
    acquired_at: Instant,
}

impl<T> Deref for DomainGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present until drop")
    }
}

impl<T> DerefMut for DomainGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard present until drop")
    }
}

impl<T> Drop for DomainGuard<'_, T> {
    fn drop(&mut self) {
        drop(self.guard.take());
        order::released(self.lock.level);
        if let Some(domain) = self.lock.instrument {
            let held = ns_to_cycles(self.acquired_at.elapsed().as_nanos() as u64);
            self.lock
                .trace
                .lock_event(self.cpu, domain, self.contended, held);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atmo_trace::TraceSink;

    #[test]
    fn lock_reports_instrumented_acquisitions() {
        let trace = TraceSink::new(1, 16);
        let lock = DomainLock::new(5u32, LockLevel::Pm, Some(LockDomain::Pm), trace.clone());
        {
            let mut g = lock.lock(0);
            *g += 1;
        }
        let snap = trace.snapshot();
        assert_eq!(snap.counters.locks.pm.acquisitions, 1);
        assert_eq!(snap.counters.locks.pm.contended, 0);
        assert_eq!(lock.into_inner(), 6);
    }

    #[test]
    fn contention_is_detected() {
        use std::sync::Arc;
        let trace = TraceSink::new(1, 16);
        let lock = Arc::new(DomainLock::new(
            0u64,
            LockLevel::Mem,
            Some(LockDomain::Mem),
            trace.clone(),
        ));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let lock = Arc::clone(&lock);
            handles.push(std::thread::spawn(move || {
                for _ in 0..2000 {
                    *lock.lock(0) += 1;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let snap = trace.snapshot();
        assert_eq!(snap.counters.locks.mem.acquisitions, 8000);
        assert_eq!(*lock.lock(0), 8000);
    }

    #[test]
    fn model_time_is_monotone() {
        let trace = TraceSink::new(1, 4);
        let lock = DomainLock::new((), LockLevel::Pm, None, trace);
        lock.set_model_time(100);
        lock.set_model_time(40);
        assert_eq!(lock.model_time(), 100, "never rewinds");
        lock.set_model_time(250);
        assert_eq!(lock.model_time(), 250);
    }

    #[cfg(feature = "lock-order-checks")]
    #[test]
    fn order_checker_rejects_descending_acquire() {
        let trace = TraceSink::new(1, 4);
        let pm = DomainLock::new((), LockLevel::Pm, None, trace.clone());
        let mem = DomainLock::new((), LockLevel::Mem, None, trace);
        // Ascending is fine.
        {
            let _a = pm.lock(0);
            let _b = mem.lock(0);
        }
        // Descending must panic.
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _b = mem.lock(0);
            let _a = pm.lock(0);
        }));
        assert!(err.is_err(), "mem→pm acquisition must be rejected");
    }
}
