//! Source-line classification: executable vs. specification vs. proof.
//!
//! The paper reports 6K lines of executable code, 14.3K of specification
//! and 5.8K of proofs/hints (§1). In this reproduction the proof artefacts
//! are executable checkers and tests, so the classifier maps:
//!
//! * **Exec** — ordinary code lines outside test modules, outside
//!   spec-role modules;
//! * **Spec** — lines of modules whose role is specification: abstract
//!   state, transition specs, invariant (`*_wf`) definitions;
//! * **Proof** — test modules (`#[cfg(test)]` to end of file), files under
//!   `tests/`, and property-based suites — the artefacts that *discharge*
//!   the obligations;
//! * comments and blank lines are counted separately and excluded from
//!   the ratio.
//!
//! Module roles are declared in the (private) `module_role` table; the measurement itself
//! is mechanical.

use std::fs;
use std::path::{Path, PathBuf};

/// Classification of one source line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LineClass {
    /// Executable code.
    Exec,
    /// Specification (abstract state, spec functions, invariants).
    Spec,
    /// Proof (tests, property suites, refinement drivers).
    Proof,
    /// Comment or documentation.
    Comment,
    /// Blank.
    Blank,
}

/// Aggregated line counts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LocReport {
    /// Executable lines.
    pub exec: usize,
    /// Specification lines.
    pub spec: usize,
    /// Proof lines.
    pub proof: usize,
    /// Comment/doc lines.
    pub comment: usize,
    /// Blank lines.
    pub blank: usize,
}

impl LocReport {
    /// Total classified lines.
    pub fn total(&self) -> usize {
        self.exec + self.spec + self.proof + self.comment + self.blank
    }

    /// The proof-to-code ratio: (spec + proof) / exec.
    pub fn proof_to_code(&self) -> f64 {
        if self.exec == 0 {
            return 0.0;
        }
        (self.spec + self.proof) as f64 / self.exec as f64
    }

    fn add(&mut self, class: LineClass) {
        match class {
            LineClass::Exec => self.exec += 1,
            LineClass::Spec => self.spec += 1,
            LineClass::Proof => self.proof += 1,
            LineClass::Comment => self.comment += 1,
            LineClass::Blank => self.blank += 1,
        }
    }
}

/// Role of a module's non-test lines, decided from its workspace path.
///
/// Spec-role modules are the ones holding abstract state, transition
/// specifications and invariant definitions — the reproduction's
/// counterparts of the paper's ghost code.
fn module_role(path: &Path) -> LineClass {
    let p = path.to_string_lossy().replace('\\', "/");
    // Anything under a crate's tests/ directory is proof by construction.
    if p.contains("/tests/") {
        return LineClass::Proof;
    }
    const SPEC_MARKERS: [&str; 10] = [
        "crates/spec/",
        "/abs.rs",
        "/spec.rs",
        "/iso.rs",
        "/noninterf.rs",
        "/refine.rs",
        "/closure.rs",
        "crates/verif/",
        "/wf.rs",
        "/meta.rs",
    ];
    if SPEC_MARKERS.iter().any(|m| p.contains(m)) {
        return LineClass::Spec;
    }
    LineClass::Exec
}

/// Classifies one file's contents given its path-derived role.
pub fn classify_file(path: &Path, contents: &str) -> LocReport {
    let role = module_role(path);
    let mut report = LocReport::default();
    let mut in_tests = false;
    for line in contents.lines() {
        let trimmed = line.trim();
        if trimmed.contains("#[cfg(test)]") {
            // Test modules run to end of file in this codebase's layout.
            in_tests = true;
        }
        let class = if trimmed.is_empty() {
            LineClass::Blank
        } else if trimmed.starts_with("//") {
            LineClass::Comment
        } else if in_tests {
            LineClass::Proof
        } else {
            role
        };
        report.add(class);
    }
    report
}

/// Walks `root` (a workspace checkout) and classifies every `.rs` file
/// under `crates/`, `src/`, `tests/` and `examples/`.
pub fn classify_workspace(root: &Path) -> LocReport {
    let mut report = LocReport::default();
    let mut stack: Vec<PathBuf> = ["crates", "src", "tests", "examples"]
        .iter()
        .map(|d| root.join(d))
        .filter(|p| p.exists())
        .collect();
    while let Some(dir) = stack.pop() {
        let Ok(entries) = fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                // Skip build artefacts.
                if path.file_name().is_some_and(|n| n == "target") {
                    continue;
                }
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                if let Ok(contents) = fs::read_to_string(&path) {
                    let file_report = classify_file(&path, &contents);
                    report.exec += file_report.exec;
                    report.spec += file_report.spec;
                    report.proof += file_report.proof;
                    report.comment += file_report.comment;
                    report.blank += file_report.blank;
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exec_file_classification() {
        let src = "fn main() {\n    let x = 1;\n\n    // a comment\n}\n";
        let r = classify_file(Path::new("crates/kernel/src/syscall.rs"), src);
        assert_eq!(r.exec, 3);
        assert_eq!(r.comment, 1);
        assert_eq!(r.blank, 1);
    }

    #[test]
    fn spec_module_lines_are_spec() {
        let src = "pub fn syscall_mmap_spec() -> bool { true }\n";
        let r = classify_file(Path::new("crates/kernel/src/spec.rs"), src);
        assert_eq!(r.spec, 1);
        assert_eq!(r.exec, 0);
    }

    #[test]
    fn test_modules_count_as_proof() {
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\n";
        let r = classify_file(Path::new("crates/mem/src/alloc.rs"), src);
        assert_eq!(r.exec, 1);
        assert_eq!(r.proof, 4, "cfg(test) line onward is proof");
    }

    #[test]
    fn integration_tests_are_proof() {
        let src = "fn probe() {}\n";
        let r = classify_file(Path::new("crates/pm/tests/manager_ops.rs"), src);
        assert_eq!(r.proof, 1);
    }

    #[test]
    fn ratio_arithmetic() {
        let r = LocReport {
            exec: 100,
            spec: 250,
            proof: 82,
            comment: 10,
            blank: 5,
        };
        assert!((r.proof_to_code() - 3.32).abs() < 1e-9);
        assert_eq!(r.total(), 447);
        assert_eq!(LocReport::default().proof_to_code(), 0.0);
    }

    #[test]
    fn classify_this_workspace_finds_substantial_code() {
        // The crate lives at <root>/crates/verif; hop two levels up.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .unwrap()
            .parent()
            .unwrap();
        let r = classify_workspace(root);
        assert!(r.exec > 1000, "exec lines: {}", r.exec);
        assert!(r.spec > 500, "spec lines: {}", r.spec);
        assert!(r.proof > 1000, "proof lines: {}", r.proof);
    }
}
