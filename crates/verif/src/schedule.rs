//! Parallel verification scheduling (Table 2, §6.1 wall-clock times).
//!
//! Verus dispatches per-function SMT queries to a pool of worker threads
//! in declaration order. [`simulate_verification`] replays a catalog
//! through that policy: a list scheduler assigning each task to the
//! earliest-free worker. The makespan plus the serial startup cost is the
//! verification wall time; dividing by a CPU profile's single-thread
//! speedup translates c220g5 times onto other machines (the i9-13900HX
//! laptop of §6.1).

use crate::tasks::{catalog_total_ms, VerifTask, STARTUP_MS};

/// Result of one simulated verification run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScheduleResult {
    /// Worker threads used.
    pub threads: usize,
    /// Wall-clock seconds.
    pub wall_s: f64,
    /// Total CPU seconds across workers (excludes startup).
    pub cpu_s: f64,
    /// Number of tasks verified.
    pub tasks: usize,
    /// The longest single task in seconds (the scaling limiter).
    pub critical_s: f64,
}

/// Simulates verifying `tasks` on `threads` workers of a machine whose
/// single-thread performance is `speedup`× the c220g5 (1.0 = c220g5).
///
/// # Panics
///
/// Panics when `threads == 0` or `speedup <= 0`.
pub fn simulate_verification(tasks: &[VerifTask], threads: usize, speedup: f64) -> ScheduleResult {
    assert!(threads > 0, "at least one verification worker");
    assert!(speedup > 0.0, "speedup must be positive");
    // List scheduling in catalog order: each task goes to the worker that
    // frees up first.
    let mut workers = vec![0u64; threads];
    for t in tasks {
        let (idx, _) = workers
            .iter()
            .enumerate()
            .min_by_key(|(_, w)| **w)
            .expect("nonempty worker pool");
        workers[idx] += t.cost_ms;
    }
    let makespan_ms = workers.iter().copied().max().unwrap_or(0) + STARTUP_MS;
    let critical = tasks.iter().map(|t| t.cost_ms).max().unwrap_or(0);
    ScheduleResult {
        threads,
        wall_s: makespan_ms as f64 / 1000.0 / speedup,
        cpu_s: catalog_total_ms(tasks) as f64 / 1000.0 / speedup,
        tasks: tasks.len(),
        critical_s: critical as f64 / 1000.0 / speedup,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tasks::{system_catalog, SystemId};

    fn within(actual: f64, expected: f64, tol_frac: f64) -> bool {
        (actual - expected).abs() <= expected * tol_frac
    }

    #[test]
    fn atmosphere_matches_table2() {
        let cat = system_catalog(SystemId::Atmosphere);
        let t1 = simulate_verification(&cat, 1, 1.0);
        let t8 = simulate_verification(&cat, 8, 1.0);
        // Table 2: 3m29s and 1m7s.
        assert!(within(t1.wall_s, 209.0, 0.02), "1t: {}", t1.wall_s);
        assert!(within(t8.wall_s, 67.0, 0.10), "8t: {}", t8.wall_s);
    }

    #[test]
    fn atmosphere_matches_laptop_times() {
        // §6.1: 15 s on 32 threads, 47 s on one thread (i9-13900HX).
        let cat = system_catalog(SystemId::Atmosphere);
        let speedup = 4.45;
        let t1 = simulate_verification(&cat, 1, speedup);
        let t32 = simulate_verification(&cat, 32, speedup);
        assert!(within(t1.wall_s, 47.0, 0.05), "1t: {}", t1.wall_s);
        assert!(within(t32.wall_s, 15.0, 0.10), "32t: {}", t32.wall_s);
    }

    #[test]
    fn nros_pt_matches_table2() {
        let cat = system_catalog(SystemId::NrosPageTable);
        let t1 = simulate_verification(&cat, 1, 1.0);
        let t8 = simulate_verification(&cat, 8, 1.0);
        assert!(within(t1.wall_s, 112.0, 0.02), "1t: {}", t1.wall_s);
        assert!(within(t8.wall_s, 51.0, 0.10), "8t: {}", t8.wall_s);
    }

    #[test]
    fn atmo_pt_matches_table2() {
        let cat = system_catalog(SystemId::AtmoPageTable);
        let t1 = simulate_verification(&cat, 1, 1.0);
        assert!(within(t1.wall_s, 33.0, 0.03), "1t: {}", t1.wall_s);
    }

    #[test]
    fn mimalloc_matches_table2() {
        let cat = system_catalog(SystemId::Mimalloc);
        let t1 = simulate_verification(&cat, 1, 1.0);
        let t8 = simulate_verification(&cat, 8, 1.0);
        assert!(within(t1.wall_s, 492.0, 0.02), "1t: {}", t1.wall_s);
        assert!(within(t8.wall_s, 100.0, 0.10), "8t: {}", t8.wall_s);
    }

    #[test]
    fn verismo_matches_table2() {
        let cat = system_catalog(SystemId::VeriSmo);
        let t1 = simulate_verification(&cat, 1, 1.0);
        let t8 = simulate_verification(&cat, 8, 1.0);
        assert!(within(t1.wall_s, 3684.0, 0.02), "1t: {}", t1.wall_s);
        assert!(within(t8.wall_s, 731.0, 0.10), "8t: {}", t8.wall_s);
    }

    #[test]
    fn scaling_is_limited_by_the_critical_task() {
        let cat = system_catalog(SystemId::Atmosphere);
        let t64 = simulate_verification(&cat, 64, 1.0);
        assert!(
            t64.wall_s >= t64.critical_s,
            "wall {} < critical {}",
            t64.wall_s,
            t64.critical_s
        );
        // More threads cannot beat the pole + startup.
        let t8 = simulate_verification(&cat, 8, 1.0);
        assert!(t64.wall_s <= t8.wall_s);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_threads_rejected() {
        let _ = simulate_verification(&[], 0, 1.0);
    }
}
