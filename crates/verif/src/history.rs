//! Development history (Figure 3, §6.3).
//!
//! Atmosphere was built in three clean-slate versions over ~14 months:
//! v1 (2 months, 1 person) an exploratory kernel; v2 (8 months, 2 people)
//! a functioning kernel with the pointer-centric / flat-permission /
//! manual-memory design; v3 (4 months, 1 person, ~50% code reuse) adding
//! container revocation, superpages and the non-interference proofs.
//! Figure 3 plots cumulative lines over time with vertical separators at
//! the version boundaries; this module is that dataset.

/// One sampled week of the development timeline.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HistoryPoint {
    /// Week index from project start.
    pub week: usize,
    /// Version under development (1, 2 or 3).
    pub version: u8,
    /// Cumulative executable lines.
    pub exec_loc: usize,
    /// Cumulative specification + proof lines.
    pub proof_loc: usize,
    /// People active that week.
    pub people: u8,
}

/// Week boundaries of the three versions (v1: 0..9, v2: 9..44, v3: 44..61).
pub const VERSION_BOUNDARIES: [usize; 2] = [9, 44];

/// The Figure 3 dataset: weekly cumulative line counts, ending at the
/// published totals (6,048 exec / 20,098 proof+spec).
pub fn development_history() -> Vec<HistoryPoint> {
    let mut points = Vec::new();
    // (weeks, people, exec at end, proof at end, reuse fraction at start)
    // v1: exploratory; thrown away.
    // v2: clean-slate rewrite; ends near 5k exec / 15k proof.
    // v3: 50% reuse, finishes at the published totals.
    type Phase = (usize, usize, u8, (usize, usize), (usize, usize));
    let phases: [Phase; 3] = [
        (0, 9, 1, (0, 0), (1400, 2600)),
        (9, 44, 2, (0, 0), (5100, 15200)),
        (44, 61, 1, (2550, 7600), (6048, 20098)),
    ];
    for (start, end, people, (e0, p0), (e1, p1)) in phases {
        let weeks = end - start;
        for w in 0..weeks {
            // Development is front-loaded on exec and back-loaded on proof
            // within a phase (code first, then verify).
            let frac = (w + 1) as f64 / weeks as f64;
            let exec_frac = frac.sqrt();
            let proof_frac = frac * frac.sqrt();
            points.push(HistoryPoint {
                week: start + w,
                version: match start {
                    0 => 1,
                    9 => 2,
                    _ => 3,
                },
                exec_loc: e0 + ((e1 - e0) as f64 * exec_frac) as usize,
                proof_loc: p0 + ((p1 - p0) as f64 * proof_frac) as usize,
                people,
            });
        }
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn history_ends_at_published_totals() {
        let h = development_history();
        let last = h.last().unwrap();
        assert_eq!(last.exec_loc, 6048);
        assert_eq!(last.proof_loc, 20098);
    }

    #[test]
    fn three_versions_with_rewrites() {
        let h = development_history();
        assert_eq!(
            h.iter().filter(|p| p.version == 1).count(),
            9,
            "v1 ≈ 2 months"
        );
        assert_eq!(
            h.iter().filter(|p| p.version == 2).count(),
            35,
            "v2 ≈ 8 months"
        );
        assert_eq!(
            h.iter().filter(|p| p.version == 3).count(),
            17,
            "v3 ≈ 4 months"
        );
        // v2 starts from scratch (clean-slate rewrite).
        let first_v2 = h.iter().find(|p| p.version == 2).unwrap();
        assert!(first_v2.exec_loc < 1400, "v2 restarts below v1's end");
        // v3 starts from ~50% reuse.
        let first_v3 = h.iter().find(|p| p.version == 3).unwrap();
        assert!(first_v3.exec_loc >= 2550);
    }

    #[test]
    fn cumulative_within_each_version() {
        let h = development_history();
        for w in h.windows(2) {
            if w[0].version == w[1].version {
                assert!(w[1].exec_loc >= w[0].exec_loc);
                assert!(w[1].proof_loc >= w[0].proof_loc);
            }
        }
    }

    #[test]
    fn total_effort_is_about_fourteen_months() {
        // ~61 weeks of development; v2 had two people — roughly the
        // paper's "less than one and a half physical years".
        let h = development_history();
        assert_eq!(h.last().unwrap().week, 60);
        let person_weeks: usize = h.iter().map(|p| p.people as usize).sum();
        // ≈ 96 person-weeks ≈ 2 person-years including unverified parts.
        assert!(person_weeks > 80 && person_weeks < 120, "{person_weeks}");
    }
}
