//! Published proof-effort data (Table 1 of the paper).

/// One row of Table 1: a verified-systems project and its proof effort.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PublishedRatio {
    /// Project name.
    pub name: &'static str,
    /// Implementation language.
    pub language: &'static str,
    /// Specification/proof language.
    pub spec_language: &'static str,
    /// Proof-to-code ratio as published.
    pub ratio: f64,
}

/// The rows of Table 1, as published.
pub fn published_ratios() -> Vec<PublishedRatio> {
    vec![
        PublishedRatio {
            name: "seL4",
            language: "C+Asm",
            spec_language: "Isabelle/HOL",
            ratio: 20.0,
        },
        PublishedRatio {
            name: "CertiKOS",
            language: "C+Asm",
            spec_language: "Coq",
            ratio: 14.9,
        },
        PublishedRatio {
            name: "SeKVM",
            language: "C+Asm",
            spec_language: "Coq",
            ratio: 6.9,
        },
        PublishedRatio {
            name: "Ironclad",
            language: "Dafny",
            spec_language: "Dafny",
            ratio: 4.8,
        },
        PublishedRatio {
            name: "NrOS",
            language: "Rust",
            spec_language: "Verus",
            ratio: 10.0,
        },
        PublishedRatio {
            name: "VeriSMo",
            language: "Rust",
            spec_language: "Verus",
            ratio: 2.0,
        },
        PublishedRatio {
            name: "Atmosphere",
            language: "Rust",
            spec_language: "Verus",
            ratio: 3.32,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_all_published_rows() {
        let rows = published_ratios();
        assert_eq!(rows.len(), 7);
        assert!(rows.iter().any(|r| r.name == "seL4" && r.ratio == 20.0));
        assert!(rows
            .iter()
            .any(|r| r.name == "Atmosphere" && r.ratio == 3.32));
    }

    #[test]
    fn atmosphere_improves_on_interactive_provers() {
        let rows = published_ratios();
        let atmo = rows.iter().find(|r| r.name == "Atmosphere").unwrap();
        let sel4 = rows.iter().find(|r| r.name == "seL4").unwrap();
        let certikos = rows.iter().find(|r| r.name == "CertiKOS").unwrap();
        assert!(atmo.ratio < sel4.ratio && atmo.ratio < certikos.ratio);
    }
}
