//! Verification-effort substrate (§6.1–6.3 of the paper).
//!
//! The paper's first evaluation question is *practicality*: proof-to-code
//! ratios (Table 1), verification wall-times on 1 vs. 8 threads (Table 2,
//! Figure 2), and development effort over time (Figure 3). This crate
//! reproduces that apparatus:
//!
//! * [`loc`] — a source-line classifier that measures *this repository's*
//!   executable / specification / proof line counts, so the artefact's own
//!   proof-to-code ratio is a measured quantity, not a constant;
//! * [`catalog`] — the published per-system data (seL4, CertiKOS, SeKVM,
//!   Ironclad, NrOS, VeriSMo, Atmosphere) for Table 1;
//! * [`tasks`] — deterministic per-function verification-task catalogs
//!   for the systems of Table 2. A catalog models each function's SMT
//!   query time on the c220g5; Figure 2 is the task-duration
//!   distribution;
//! * [`schedule`] — a list scheduler that replays a catalog on *n*
//!   worker threads and a given CPU profile, producing the wall-clock
//!   verification times of Table 2 and §6.1;
//! * [`history`] — the three-version development timeline of Figure 3.

pub mod catalog;
pub mod history;
pub mod loc;
pub mod schedule;
pub mod tasks;

pub use catalog::{published_ratios, PublishedRatio};
pub use history::{development_history, HistoryPoint};
pub use loc::{classify_workspace, LineClass, LocReport};
pub use schedule::{simulate_verification, ScheduleResult};
pub use tasks::{system_catalog, SystemId, VerifTask};
