//! Per-function verification-task catalogs (Table 2, Figure 2).
//!
//! A *catalog* models one system's verification workload: one task per
//! function, with the single-thread Z3 query time on the CloudLab c220g5.
//! Catalog shapes are calibrated to the published wall-clock times:
//! the total equals the 1-thread time, and each catalog's *longest pole*
//! (the hardest function) dominates the 8-thread time — which is exactly
//! why verification does not scale linearly (§6.1, Table 2).
//!
//! Filler tasks are drawn from a deterministic long-tail generator, so
//! Figure 2's distribution (many sub-second functions, a handful of
//! multi-second poles) is reproducible bit-for-bit.

/// The systems measured in Table 2.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SystemId {
    /// The NrOS verified page table (recursive-ownership design).
    NrosPageTable,
    /// Atmosphere's page table (flat design, §6.2).
    AtmoPageTable,
    /// Verified mimalloc.
    Mimalloc,
    /// VeriSMo.
    VeriSmo,
    /// The full Atmosphere kernel.
    Atmosphere,
}

/// One verification task (one function's SMT queries).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VerifTask {
    /// Function name.
    pub name: String,
    /// Owning module (used to group Figure 2 output).
    pub module: &'static str,
    /// Single-thread query time on the c220g5, in milliseconds.
    pub cost_ms: u64,
}

/// Published proof / executable line counts per system (Table 2).
pub fn system_loc(id: SystemId) -> (usize, usize) {
    match id {
        SystemId::NrosPageTable => (5329, 400),
        SystemId::AtmoPageTable => (2168, 496),
        SystemId::Mimalloc => (13703, 3178),
        SystemId::VeriSmo => (16101, 7915),
        SystemId::Atmosphere => (20098, 6048),
    }
}

/// Startup overhead of a verification run (crate loading, SMT context),
/// in milliseconds of c220g5 single-thread time.
pub const STARTUP_MS: u64 = 4_000;

struct Xs(u64);

impl Xs {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545f4914f6cdd1d)
    }

    /// Long-tailed sample in `[lo, hi)` ms, biased toward `lo`.
    fn tail(&mut self, lo: u64, hi: u64) -> u64 {
        let u = (self.next() % 1000) as f64 / 1000.0;
        let x = u * u * u; // cubic bias toward small values
        lo + ((hi - lo) as f64 * x) as u64
    }
}

/// Generates `n` filler tasks in `module` summing to exactly `total_ms`.
fn filler(seed: u64, module: &'static str, n: usize, total_ms: u64) -> Vec<VerifTask> {
    let mut rng = Xs(seed);
    let mut costs: Vec<u64> = (0..n).map(|_| 50 + rng.tail(0, 2_000)).collect();
    // Rescale to the exact total.
    let sum: u64 = costs.iter().sum();
    let mut acc = 0u64;
    for (i, c) in costs.iter_mut().enumerate() {
        let scaled = (*c as u128 * total_ms as u128 / sum as u128) as u64;
        *c = scaled.max(1);
        acc += *c;
        if i + 1 == n {
            // Absorb rounding drift in the last task.
            *c = (*c + total_ms).saturating_sub(acc).max(1);
        }
    }
    let fixed: u64 = costs.iter().take(n - 1).sum();
    let last = total_ms.saturating_sub(fixed).max(1);
    let len = costs.len();
    costs[len - 1] = last;
    costs
        .into_iter()
        .enumerate()
        .map(|(i, cost_ms)| VerifTask {
            name: format!("{module}::fn_{i:03}"),
            module,
            cost_ms,
        })
        .collect()
}

fn pole(name: &str, module: &'static str, cost_ms: u64) -> VerifTask {
    VerifTask {
        name: name.to_string(),
        module,
        cost_ms,
    }
}

/// The verification catalog of a system. Deterministic; task order is the
/// order Verus would dispatch them (declaration order), which the
/// scheduler replays.
pub fn system_catalog(id: SystemId) -> Vec<VerifTask> {
    match id {
        // NrOS page table: 1t = 1m52s (112 s); dominated by the manually
        // unrolled recursive map_frame_aux proof (§6.2).
        SystemId::NrosPageTable => {
            let mut v = filler(11, "nros_pt", 38, 63_000);
            v.insert(3, pole("nros_pt::map_frame_aux", "nros_pt", 45_000));
            v
        }
        // Atmosphere page table: 1t = 33 s, flat proofs — no large pole.
        SystemId::AtmoPageTable => {
            let mut v = filler(13, "atmo_pt", 30, 21_000);
            v.insert(5, pole("atmo_pt::map_4k_page", "atmo_pt", 8_000));
            v
        }
        // Mimalloc: 1t = 8m12s (492 s), 8t = 1m40s.
        SystemId::Mimalloc => {
            let mut v = filler(17, "mimalloc", 160, 396_000);
            v.insert(10, pole("mimalloc::page_free_list_wf", "mimalloc", 92_000));
            v
        }
        // VeriSMo: 1t = 61m24s (3684 s), 8t = 12m11s — relaxed timeout,
        // one enormous pole.
        SystemId::VeriSmo => {
            let mut v = filler(19, "verismo", 260, 2_965_000);
            v.insert(20, pole("verismo::rmp_entry_update", "verismo", 715_000));
            v
        }
        // The full Atmosphere kernel: 1t = 3m29s (209 s), 8t = 1m7s.
        // ~400 functions; the non-interference step theorem is the pole.
        SystemId::Atmosphere => {
            let mut v = Vec::new();
            v.extend(filler(23, "page_alloc", 60, 18_000));
            v.extend(filler(29, "page_table", 31, 29_000));
            v.push(pole(
                "noninterf::step_consistency",
                "noninterference",
                62_000,
            ));
            v.extend(filler(31, "process_manager", 140, 52_000));
            v.extend(filler(37, "syscalls", 120, 31_000));
            v.extend(filler(41, "noninterference", 50, 13_000));
            v
        }
    }
}

/// Total single-thread verification time of a catalog (ms), excluding
/// startup.
pub fn catalog_total_ms(tasks: &[VerifTask]) -> u64 {
    tasks.iter().map(|t| t.cost_ms).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogs_are_deterministic() {
        assert_eq!(
            system_catalog(SystemId::Atmosphere),
            system_catalog(SystemId::Atmosphere)
        );
    }

    #[test]
    fn atmosphere_total_matches_published_single_thread_time() {
        // 3m29s = 209 s; catalog + startup = 209 s.
        let total = catalog_total_ms(&system_catalog(SystemId::Atmosphere)) + STARTUP_MS;
        let err = (total as i64 - 209_000).abs();
        assert!(err < 2_000, "total {total} ms");
    }

    #[test]
    fn verismo_total_matches_published_single_thread_time() {
        let total = catalog_total_ms(&system_catalog(SystemId::VeriSmo)) + STARTUP_MS;
        let err = (total as i64 - 3_684_000).abs();
        assert!(err < 20_000, "total {total} ms");
    }

    #[test]
    fn atmo_pt_is_over_3x_faster_than_nros_pt() {
        // §6.2: "on a single thread, verification of the Atmosphere's
        // page table is over 3x faster".
        let atmo = catalog_total_ms(&system_catalog(SystemId::AtmoPageTable));
        let nros = catalog_total_ms(&system_catalog(SystemId::NrosPageTable));
        assert!(nros > 3 * atmo, "nros {nros} vs atmo {atmo}");
    }

    #[test]
    fn figure2_distribution_is_long_tailed() {
        let tasks = system_catalog(SystemId::Atmosphere);
        assert!(tasks.len() > 350, "{} functions", tasks.len());
        let sub_second = tasks.iter().filter(|t| t.cost_ms < 1_000).count();
        assert!(
            sub_second * 10 >= tasks.len() * 7,
            "most functions verify in under a second ({sub_second}/{})",
            tasks.len()
        );
        let max = tasks.iter().map(|t| t.cost_ms).max().unwrap();
        assert_eq!(max, 62_000, "the pole is the step-consistency theorem");
    }

    #[test]
    fn loc_table_rows() {
        let (p, e) = system_loc(SystemId::Atmosphere);
        assert_eq!(p, 20098);
        assert_eq!(e, 6048);
        assert!((p as f64 / e as f64 - 3.32).abs() < 0.01);
    }
}
