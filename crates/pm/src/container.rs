//! Containers and the container tree (§3, §4.1).
//!
//! A container is a group of processes with a guaranteed memory quota and
//! CPU-core reservation. Containers form one unbounded tree rooted at the
//! boot container; each node stores its direct children (internal-storage
//! list) and a reverse pointer to its parent — the pointer-centric layout
//! of Listing 2 — plus two ghost fields that make *non-recursive*
//! specifications possible:
//!
//! * `path` — the sequence of ancestors from the root (paper:  "direct and
//!   indirect parents");
//! * `subtree` — the set of all reachable descendants.
//!
//! [`container_tree_wf`] is the structural invariant. It is stated flat
//! over the container permission map, including the paper's
//! `resolve_path_wf` ("for any node *n* at depth *d* on the path of
//! container *c*, *c*'s subpath from the root to *d* equals the path of
//! *n*") and the bidirectional path/subtree duality that replaces
//! recursive subtree reasoning.

use atmo_spec::harness::{check, Invariant, VerifResult};
use atmo_spec::{Ghost, PermMap, Seq, Set};

use crate::staticlist::StaticList;
use crate::types::{
    CpuId, CtnrPtr, EdptPtr, ProcPtr, ThrdPtr, MAX_CHILD_CONTAINERS, MAX_CHILD_PROCESSES,
};

/// A container kernel object (one per 4 KiB page).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Container {
    /// Parent container; `None` only for the root.
    pub parent: Option<CtnrPtr>,
    /// Direct children (internal storage, Listing 2 line 10).
    pub children: StaticList<CtnrPtr, MAX_CHILD_CONTAINERS>,
    /// Distance from the root (root = 0).
    pub depth: usize,
    /// Ghost: ancestors from the root, excluding `self`.
    pub path: Ghost<Seq<CtnrPtr>>,
    /// Ghost: every container reachable below this one.
    pub subtree: Ghost<Set<CtnrPtr>>,
    /// Top-level processes of this container (process-tree roots).
    pub root_procs: StaticList<ProcPtr, MAX_CHILD_PROCESSES>,
    /// Ghost: all processes belonging to this container.
    pub owned_procs: Ghost<Set<ProcPtr>>,
    /// Ghost: all threads belonging to this container.
    pub owned_thrds: Ghost<Set<ThrdPtr>>,
    /// Ghost: all endpoints charged to this container.
    pub owned_edpts: Ghost<Set<EdptPtr>>,
    /// Total page reservation (the container quota, §3).
    pub quota: usize,
    /// Pages currently charged: kernel objects, user mappings, and the
    /// reservations passed to child containers.
    pub used: usize,
    /// CPU cores reserved for this container's threads.
    pub owned_cpus: Set<CpuId>,
}

impl Container {
    /// A fresh container below `parent` (ghost state supplied by the
    /// caller, who has the flat view needed to compute it).
    pub fn new_child(
        parent: CtnrPtr,
        parent_path: &Seq<CtnrPtr>,
        depth: usize,
        quota: usize,
        cpus: Set<CpuId>,
    ) -> Self {
        Container {
            parent: Some(parent),
            children: StaticList::new(),
            depth,
            path: Ghost::new(parent_path.push(parent)),
            subtree: Ghost::new(Set::empty()),
            root_procs: StaticList::new(),
            owned_procs: Ghost::new(Set::empty()),
            owned_thrds: Ghost::new(Set::empty()),
            owned_edpts: Ghost::new(Set::empty()),
            quota,
            used: 0,
            owned_cpus: cpus,
        }
    }

    /// The boot (root) container.
    pub fn new_root(quota: usize, cpus: Set<CpuId>) -> Self {
        Container {
            parent: None,
            children: StaticList::new(),
            depth: 0,
            path: Ghost::new(Seq::empty()),
            subtree: Ghost::new(Set::empty()),
            root_procs: StaticList::new(),
            owned_procs: Ghost::new(Set::empty()),
            owned_thrds: Ghost::new(Set::empty()),
            owned_edpts: Ghost::new(Set::empty()),
            quota,
            used: 0,
            owned_cpus: cpus,
        }
    }

    /// Remaining quota available for new charges.
    pub fn quota_available(&self) -> usize {
        self.quota.saturating_sub(self.used)
    }
}

/// The container tree's structural invariant (closed spec function of
/// Listing 3), stated flat over the permission map.
pub fn container_tree_wf(root: CtnrPtr, cntrs: &PermMap<Container>) -> VerifResult {
    check(
        cntrs.contains(root),
        "container_tree",
        "root not in the map",
    )?;
    let root_c = cntrs.value(root);
    check(
        root_c.parent.is_none() && root_c.depth == 0 && root_c.path.is_empty(),
        "container_tree",
        "root has a parent, nonzero depth or nonempty path",
    )?;

    let dom = cntrs.dom();
    for c_ptr in dom.iter() {
        let c = cntrs.value(*c_ptr);

        // Child lists are duplicate-free and reverse pointers agree.
        check(
            c.children.no_duplicates(),
            "container_tree",
            format!("container {c_ptr:#x} has duplicate children"),
        )?;
        for child in c.children.iter() {
            check(
                dom.contains(&child),
                "container_tree",
                format!("child {child:#x} of {c_ptr:#x} not in the map"),
            )?;
            check(
                cntrs.value(child).parent == Some(*c_ptr),
                "container_tree",
                format!("child {child:#x} does not point back to {c_ptr:#x}"),
            )?;
        }

        match c.parent {
            None => {
                check(
                    *c_ptr == root,
                    "container_tree",
                    format!("non-root container {c_ptr:#x} has no parent"),
                )?;
            }
            Some(p) => {
                check(
                    dom.contains(&p),
                    "container_tree",
                    format!("parent {p:#x} of {c_ptr:#x} not in the map"),
                )?;
                let parent = cntrs.value(p);
                check(
                    parent.children.contains(c_ptr),
                    "container_tree",
                    format!("parent {p:#x} does not list child {c_ptr:#x}"),
                )?;
                check(
                    c.depth == parent.depth + 1,
                    "container_tree",
                    format!("depth of {c_ptr:#x} is not parent depth + 1"),
                )?;
                check(
                    *c.path.view() == parent.path.push(p),
                    "container_tree",
                    format!("path of {c_ptr:#x} is not parent path + parent"),
                )?;
            }
        }

        // The paper's resolve_path_wf: each prefix of a node's path is the
        // path of the ancestor at that depth — checked without recursion
        // thanks to the flat map.
        check(
            c.path.len() == c.depth,
            "container_tree",
            format!("path length of {c_ptr:#x} differs from its depth"),
        )?;
        for d in 0..c.path.len() {
            let anc = *c.path.index(d);
            check(
                dom.contains(&anc),
                "container_tree",
                format!("ancestor {anc:#x} of {c_ptr:#x} not in the map"),
            )?;
            check(
                c.path.subrange(0, d) == *cntrs.value(anc).path.view(),
                "container_tree",
                format!("path prefix of {c_ptr:#x} at depth {d} mismatches ancestor"),
            )?;
        }
        check(
            !c.path.contains(c_ptr),
            "container_tree",
            format!("container {c_ptr:#x} appears on its own path (cycle)"),
        )?;
    }

    // Path/subtree duality: a.subtree ∋ b  ⟺  b.path ∋ a. This single flat
    // biconditional replaces all recursive subtree reasoning (§4.3).
    for a in dom.iter() {
        let a_sub = cntrs.value(*a).subtree.view();
        // Subtrees may only name live containers (otherwise the duality
        // below would vacuously skip dangling entries).
        for b in a_sub.iter() {
            check(
                dom.contains(b),
                "container_tree",
                format!("subtree of {a:#x} names dead container {b:#x}"),
            )?;
        }
        for b in dom.iter() {
            let b_path = cntrs.value(*b).path.view();
            check(
                a_sub.contains(b) == b_path.contains(a),
                "container_tree",
                format!("subtree/path duality violated for ({a:#x}, {b:#x})"),
            )?;
        }
    }
    Ok(())
}

/// Quota well-formedness: charges never exceed reservations, and the sum
/// of child reservations plus local charges equals `used`. Local charges
/// are tracked explicitly in ghost bookkeeping by the manager; here we
/// check the inequality form that holds unconditionally.
pub fn quota_wf(cntrs: &PermMap<Container>) -> VerifResult {
    for (ptr, perm) in cntrs.iter() {
        let c = perm.value();
        check(
            c.used <= c.quota,
            "container_quota",
            format!("container {ptr:#x} uses {} of quota {}", c.used, c.quota),
        )?;
        let child_quota: usize = c.children.iter().map(|ch| cntrs.value(ch).quota).sum();
        check(
            child_quota <= c.used,
            "container_quota",
            format!("container {ptr:#x} children reserve more than its recorded use"),
        )?;
    }
    Ok(())
}

/// CPU-reservation well-formedness: the CPU sets of any two containers are
/// disjoint (cores are *passed*, not shared — this is what makes per-core
/// scheduling non-interfering).
pub fn cpu_partition_wf(cntrs: &PermMap<Container>) -> VerifResult {
    let doms: Vec<_> = cntrs
        .iter()
        .map(|(p, c)| (p, c.value().owned_cpus.clone()))
        .collect();
    for i in 0..doms.len() {
        for j in (i + 1)..doms.len() {
            check(
                doms[i].1.disjoint(&doms[j].1),
                "container_cpus",
                format!(
                    "containers {:#x} and {:#x} share a CPU",
                    doms[i].0, doms[j].0
                ),
            )?;
        }
    }
    Ok(())
}

/// Convenience wrapper bundling a root pointer with a permission map so
/// tree checks can be expressed as a single [`Invariant`].
pub struct ContainerTree<'a> {
    /// Root container pointer.
    pub root: CtnrPtr,
    /// Flat permission map holding every container.
    pub cntrs: &'a PermMap<Container>,
}

impl Invariant for ContainerTree<'_> {
    fn wf(&self) -> VerifResult {
        container_tree_wf(self.root, self.cntrs)?;
        quota_wf(self.cntrs)?;
        cpu_partition_wf(self.cntrs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atmo_spec::PointsTo;

    /// Builds a flat map with a root (0x1000) and two children (0x2000,
    /// 0x3000), one grandchild (0x4000) under 0x2000.
    fn sample_tree() -> (CtnrPtr, PermMap<Container>) {
        let root = 0x1000;
        let a = 0x2000;
        let b = 0x3000;
        let ga = 0x4000;

        let mut r = Container::new_root(1000, Set::from_slice(&[0, 1]));
        r.children.push(a);
        r.children.push(b);
        r.subtree.assign(Set::from_slice(&[a, b, ga]));
        r.used = 300;

        let mut ca = Container::new_child(root, &Seq::empty(), 1, 200, Set::from_slice(&[2]));
        ca.children.push(ga);
        ca.subtree.assign(Set::from_slice(&[ga]));
        ca.used = 50;

        let cb = Container::new_child(root, &Seq::empty(), 1, 100, Set::from_slice(&[3]));

        let cga = Container::new_child(a, &Seq::empty().push(root), 2, 50, Set::empty());

        let mut m = PermMap::new();
        m.tracked_insert(root, PointsTo::new_init(root, r));
        m.tracked_insert(a, PointsTo::new_init(a, ca));
        m.tracked_insert(b, PointsTo::new_init(b, cb));
        m.tracked_insert(ga, PointsTo::new_init(ga, cga));
        (root, m)
    }

    #[test]
    fn sample_tree_is_wf() {
        let (root, m) = sample_tree();
        assert!(container_tree_wf(root, &m).is_ok());
        assert!(quota_wf(&m).is_ok());
        assert!(cpu_partition_wf(&m).is_ok());
        assert!(ContainerTree { root, cntrs: &m }.is_wf());
    }

    #[test]
    fn detects_broken_reverse_pointer() {
        let (root, mut m) = sample_tree();
        // 0x4000's parent claims 0x3000, but 0x3000 does not list it.
        m.tracked_borrow_mut(0x4000).value().clone().parent.unwrap();
        let ptr = atmo_spec::PPtr::<Container>::from_usize(0x4000);
        ptr.borrow_mut(m.tracked_borrow_mut(0x4000)).parent = Some(0x3000);
        assert!(container_tree_wf(root, &m).is_err());
    }

    #[test]
    fn detects_wrong_path() {
        let (root, mut m) = sample_tree();
        let ptr = atmo_spec::PPtr::<Container>::from_usize(0x4000);
        ptr.borrow_mut(m.tracked_borrow_mut(0x4000))
            .path
            .assign(Seq::from_slice(&[0x1000, 0x3000]));
        assert!(container_tree_wf(root, &m).is_err());
    }

    #[test]
    fn detects_subtree_drift() {
        let (root, mut m) = sample_tree();
        // Remove the grandchild from the root's subtree: duality breaks.
        let ptr = atmo_spec::PPtr::<Container>::from_usize(0x1000);
        ptr.borrow_mut(m.tracked_borrow_mut(0x1000))
            .subtree
            .assign(Set::from_slice(&[0x2000, 0x3000]));
        let err = container_tree_wf(root, &m).unwrap_err();
        assert!(err.detail.contains("duality"));
    }

    #[test]
    fn detects_cycle_via_path() {
        let (root, mut m) = sample_tree();
        let ptr = atmo_spec::PPtr::<Container>::from_usize(0x2000);
        {
            let c = ptr.borrow_mut(m.tracked_borrow_mut(0x2000));
            c.path.assign(Seq::from_slice(&[0x1000, 0x2000]));
            c.depth = 2;
        }
        assert!(container_tree_wf(root, &m).is_err());
    }

    #[test]
    fn detects_quota_overrun() {
        let (_root, mut m) = sample_tree();
        let ptr = atmo_spec::PPtr::<Container>::from_usize(0x3000);
        ptr.borrow_mut(m.tracked_borrow_mut(0x3000)).used = 101;
        assert!(quota_wf(&m).is_err());
    }

    #[test]
    fn detects_cpu_sharing() {
        let (_root, mut m) = sample_tree();
        let ptr = atmo_spec::PPtr::<Container>::from_usize(0x3000);
        ptr.borrow_mut(m.tracked_borrow_mut(0x3000)).owned_cpus = Set::from_slice(&[2]);
        assert!(cpu_partition_wf(&m).is_err());
    }

    #[test]
    fn quota_available_saturates() {
        let mut c = Container::new_root(10, Set::empty());
        c.used = 4;
        assert_eq!(c.quota_available(), 6);
        c.used = 12; // transiently inconsistent
        assert_eq!(c.quota_available(), 0);
    }
}
